// FlagParser contract tests: typed binding, --name=value and --name value
// forms, switch semantics, the single optional positional, rejection of
// unknown/incomplete/malformed flags, and the generated help text.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/flags.h"

namespace wafp::util {
namespace {

/// Build a mutable argv from string literals (parse takes char**).
class Argv {
 public:
  explicit Argv(std::initializer_list<const char*> args) {
    storage_.emplace_back("prog");
    for (const char* arg : args) storage_.emplace_back(arg);
    for (std::string& s : storage_) pointers_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(pointers_.size()); }
  [[nodiscard]] char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

struct Flags {
  FlagParser parser{"prog", "test binary"};
  std::string dir;
  std::size_t count = 7;
  std::uint64_t period = 0;
  double ratio = 1.5;
  bool fast = false;
  std::size_t positional = 100;

  Flags() {
    parser.flag("--dir", &dir, "a string flag");
    parser.flag("--count", &count, "a size_t flag");
    parser.flag("--period", &period, "a uint64 flag");
    parser.flag("--ratio", &ratio, "a double flag");
    parser.flag("--fast", &fast, "a switch");
    parser.positional("items", &positional, "item count", /*min=*/1);
  }
};

TEST(FlagParserTest, DefaultsSurviveAnEmptyCommandLine) {
  Flags f;
  Argv argv({});
  EXPECT_TRUE(f.parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(f.dir, "");
  EXPECT_EQ(f.count, 7u);
  EXPECT_FALSE(f.fast);
  EXPECT_EQ(f.positional, 100u);
}

TEST(FlagParserTest, BindsEveryTypeInBothForms) {
  Flags f;
  Argv argv({"42", "--dir", "/tmp/x", "--count=9", "--period", "31",
             "--ratio=0.25", "--fast"});
  ASSERT_TRUE(f.parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(f.positional, 42u);
  EXPECT_EQ(f.dir, "/tmp/x");
  EXPECT_EQ(f.count, 9u);
  EXPECT_EQ(f.period, 31u);
  EXPECT_DOUBLE_EQ(f.ratio, 0.25);
  EXPECT_TRUE(f.fast);
}

TEST(FlagParserTest, UnknownFlagIsAHardError) {
  Flags f;
  Argv argv({"--bogus"});
  EXPECT_FALSE(f.parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(f.parser.exit_code(), 2);
}

TEST(FlagParserTest, MissingValueIsAHardError) {
  // The classic hand-rolled-loop bug: a trailing value flag must not
  // silently parse as "flag ignored" or eat a neighboring argument.
  Flags f;
  Argv argv({"--count"});
  EXPECT_FALSE(f.parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(f.parser.exit_code(), 2);
}

TEST(FlagParserTest, MalformedNumbersAreRejected) {
  for (const char* bad : {"--count=abc", "--count=12x", "--count=-3",
                          "--count=99999999999999999999", "--ratio=zz"}) {
    Flags f;
    Argv argv({bad});
    EXPECT_FALSE(f.parser.parse(argv.argc(), argv.argv())) << bad;
    EXPECT_EQ(f.parser.exit_code(), 2) << bad;
  }
}

TEST(FlagParserTest, SwitchRejectsAValue) {
  Flags f;
  Argv argv({"--fast=1"});
  EXPECT_FALSE(f.parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(f.parser.exit_code(), 2);
}

TEST(FlagParserTest, PositionalValidatesMinimumAndArity) {
  {
    Flags f;
    Argv argv({"0"});  // below min=1
    EXPECT_FALSE(f.parser.parse(argv.argc(), argv.argv()));
  }
  {
    Flags f;
    Argv argv({"5", "6"});  // only one positional is declared
    EXPECT_FALSE(f.parser.parse(argv.argc(), argv.argv()));
  }
  {
    Flags f;
    Argv argv({"five"});
    EXPECT_FALSE(f.parser.parse(argv.argc(), argv.argv()));
  }
}

TEST(FlagParserTest, HelpStopsParsingWithExitCodeZero) {
  Flags f;
  Argv argv({"--help"});
  EXPECT_FALSE(f.parser.parse(argv.argc(), argv.argv()));
  EXPECT_EQ(f.parser.exit_code(), 0);
}

TEST(FlagParserTest, HelpTextListsEveryFlagWithDefaults) {
  Flags f;
  const std::string help = f.parser.help_text();
  for (const char* expected :
       {"usage: prog", "items", "--dir", "--count", "--period", "--ratio",
        "--fast", "(default: 7)", "(default: false)", "test binary"}) {
    EXPECT_NE(help.find(expected), std::string::npos)
        << "help text missing " << expected << "\n" << help;
  }
}

TEST(FlagParserTest, RangeCheckedAgainstTheTargetWidth) {
  FlagParser parser("prog", "");
  std::uint32_t narrow = 0;
  parser.flag("--narrow", &narrow, "a uint32 flag");
  {
    Argv argv({"--narrow=4294967295"});
    EXPECT_TRUE(parser.parse(argv.argc(), argv.argv()));
    EXPECT_EQ(narrow, 4294967295u);
  }
  {
    FlagParser strict("prog", "");
    std::uint32_t target = 0;
    strict.flag("--narrow", &target, "a uint32 flag");
    Argv argv({"--narrow=4294967296"});  // one past the type's range
    EXPECT_FALSE(strict.parse(argv.argc(), argv.argv()));
  }
}

}  // namespace
}  // namespace wafp::util
