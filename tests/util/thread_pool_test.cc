#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace wafp::util {
namespace {

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  pool.parallel_for_each(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> seen(kN);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) seen[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunkBoundariesRespectGrain) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(
      103,
      [&](std::size_t begin, std::size_t end) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(begin, end);
      },
      10);
  ASSERT_EQ(chunks.size(), 11u);  // ceil(103 / 10)
  std::sort(chunks.begin(), chunks.end());
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c].first, c * 10);
    EXPECT_EQ(chunks[c].second, std::min<std::size_t>(103, c * 10 + 10));
  }
}

TEST(ThreadPoolTest, DegreeOnePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran;
  pool.parallel_for(5, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      ran.push_back(std::this_thread::get_id());
    }
  });
  ASSERT_EQ(ran.size(), 5u);
  for (const auto id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t) {
                          if (begin >= 40) throw std::runtime_error("boom");
                        },
                        10),
      std::runtime_error);
}

TEST(ThreadPoolTest, UsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_each(
                   10, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for_each(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
      std::size_t local = 0;
      for (std::size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), 499500u) << "round " << round;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for_each(8, [&](std::size_t) {
    // A task scheduling onto its own pool must not wait on a queue its own
    // worker is supposed to drain; inline execution makes this safe.
    pool.parallel_for_each(10, [&](std::size_t j) { inner_total += j; });
  });
  EXPECT_EQ(inner_total.load(), 8u * 45u);
}

TEST(ThreadPoolTest, SharedPoolResizable) {
  ThreadPool::set_shared_threads(3);
  EXPECT_EQ(ThreadPool::shared().thread_count(), 3u);
  ThreadPool::set_shared_threads(1);
  EXPECT_EQ(ThreadPool::shared().thread_count(), 1u);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPoolTest, ParseThreadCountAcceptsDecimalIntegers) {
  EXPECT_EQ(parse_thread_count("1"), 1u);
  EXPECT_EQ(parse_thread_count("8"), 8u);
  EXPECT_EQ(parse_thread_count("0016"), 16u);  // leading zeros are fine
  EXPECT_EQ(parse_thread_count("4096"), 4096u);  // the cap itself
}

TEST(ThreadPoolTest, ParseThreadCountRejectsGarbageWithClearErrors) {
  // Regression: WAFP_THREADS used to go through atoi-style parsing, where
  // "8x" silently became 8 and "abc" silently became the hardware count.
  EXPECT_THROW((void)parse_thread_count(""), std::invalid_argument);
  EXPECT_THROW((void)parse_thread_count("0"), std::invalid_argument);
  EXPECT_THROW((void)parse_thread_count("-1"), std::invalid_argument);
  EXPECT_THROW((void)parse_thread_count("+4"), std::invalid_argument);
  EXPECT_THROW((void)parse_thread_count("8x"), std::invalid_argument);
  EXPECT_THROW((void)parse_thread_count("abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_thread_count(" 8"), std::invalid_argument);
  EXPECT_THROW((void)parse_thread_count("4097"),  // > cap
               std::invalid_argument);
  EXPECT_THROW((void)parse_thread_count("99999999999999999999"),  // overflow
               std::invalid_argument);
  try {
    (void)parse_thread_count("8x");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message names the offending value so a bad env var is debuggable.
    EXPECT_NE(std::string(e.what()).find("8x"), std::string::npos);
  }
}

}  // namespace
}  // namespace wafp::util
