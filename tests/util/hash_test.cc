#include "util/hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace wafp::util {
namespace {

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(sha256("").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(sha256("abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(hasher.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64-byte input exercises the padding-into-second-block path.
  const std::string input(64, 'x');
  EXPECT_EQ(sha256(input), sha256(input));
  EXPECT_NE(sha256(input), sha256(std::string(63, 'x')));
  EXPECT_NE(sha256(input), sha256(std::string(65, 'x')));
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha256 hasher;
    hasher.update(std::string_view(data).substr(0, split));
    hasher.update(std::string_view(data).substr(split));
    EXPECT_EQ(hasher.finish(), sha256(data)) << "split=" << split;
  }
}

TEST(Sha256Test, FloatSpanIsBitExact) {
  std::vector<float> a = {1.0f, 2.0f, 3.0f};
  std::vector<float> b = a;
  EXPECT_EQ(sha256(std::span<const float>(a)),
            sha256(std::span<const float>(b)));
  // One-ULP change must alter the digest — the property the whole
  // fingerprinting scheme rests on.
  b[1] = std::nextafter(b[1], 10.0f);
  EXPECT_NE(sha256(std::span<const float>(a)),
            sha256(std::span<const float>(b)));
}

TEST(Sha256Test, NegativeZeroDiffersFromPositiveZero) {
  std::vector<float> pos = {0.0f};
  std::vector<float> neg = {-0.0f};
  EXPECT_NE(sha256(std::span<const float>(pos)),
            sha256(std::span<const float>(neg)));
}

TEST(Sha256Test, UpdateU64IsLittleEndian) {
  Sha256 a;
  a.update_u64(0x0102030405060708ULL);
  Sha256 b;
  const std::uint8_t bytes[8] = {8, 7, 6, 5, 4, 3, 2, 1};
  b.update(std::span<const std::uint8_t>(bytes));
  EXPECT_EQ(a.finish(), b.finish());
}

TEST(DigestTest, HexAndShortHex) {
  const Digest d = sha256("abc");
  EXPECT_EQ(d.hex().size(), 64u);
  EXPECT_EQ(d.short_hex(), d.hex().substr(0, 8));
}

TEST(DigestTest, Prefix64StableUnderMapUse) {
  const Digest d = sha256("abc");
  EXPECT_EQ(d.prefix64(), d.prefix64());
  EXPECT_NE(sha256("a").prefix64(), sha256("b").prefix64());
}

TEST(DigestTest, Ordering) {
  const Digest a = sha256("a");
  const Digest b = sha256("b");
  EXPECT_TRUE(a == a);
  EXPECT_TRUE((a < b) != (b < a));
}

TEST(Fnv1aTest, KnownValues) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1aTest, MixChainsMatchConcatenation) {
  const std::uint64_t chained = fnv1a64_mix(fnv1a64("foo"), "bar");
  EXPECT_EQ(chained, fnv1a64("foobar"));
}

TEST(Fnv1aTest, MixWithIntegerIsOrderSensitive) {
  const std::uint64_t seed = fnv1a64("seed");
  EXPECT_NE(fnv1a64_mix(seed, std::uint64_t{1}),
            fnv1a64_mix(seed, std::uint64_t{2}));
}

TEST(HexTest, Encode) {
  const std::uint8_t bytes[] = {0x00, 0xff, 0x0a};
  EXPECT_EQ(to_hex(bytes), "00ff0a");
}

}  // namespace
}  // namespace wafp::util
