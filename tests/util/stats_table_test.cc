#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"
#include "util/table.h"

namespace wafp::util {
namespace {

TEST(StatsTest, MeanAndStddev) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(values), 5.0);
  EXPECT_DOUBLE_EQ(stddev(values), 2.0);
}

TEST(StatsTest, EmptyAndSingle) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_EQ(stddev(one), 0.0);
  EXPECT_EQ(min_value({}), 0.0);
}

TEST(StatsTest, MinMax) {
  const std::vector<double> values = {3.0, -1.0, 7.0};
  EXPECT_EQ(min_value(values), -1.0);
  EXPECT_EQ(max_value(values), 7.0);
}

TEST(StatsTest, ValueCounts) {
  const std::vector<int> values = {1, 2, 2, 3, 3, 3};
  const auto counts = value_counts(std::span<const int>(values));
  EXPECT_EQ(counts.at(1), 1u);
  EXPECT_EQ(counts.at(2), 2u);
  EXPECT_EQ(counts.at(3), 3u);
}

TEST(StatsTest, LogFactorial) {
  EXPECT_NEAR(ln_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(ln_factorial(5), std::log(120.0), 1e-9);
  EXPECT_NEAR(log_factorial(10), std::log2(3628800.0), 1e-9);
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"Name", "Value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| Name  | Value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"A", "B", "C"});
  table.add_row({"x"});
  EXPECT_NO_THROW((void)table.render());
}

TEST(TextTableTest, NumberFormatting) {
  EXPECT_EQ(TextTable::fmt(1.23456, 3), "1.235");
  EXPECT_EQ(TextTable::fmt(std::size_t{42}), "42");
}

TEST(BarChartTest, ScalesToMax) {
  const std::vector<std::string> labels = {"a", "bb"};
  const std::vector<double> values = {2.0, 4.0};
  const std::string out = render_bar_chart(labels, values, 10);
  EXPECT_NE(out.find("a  | ##### 2"), std::string::npos);
  EXPECT_NE(out.find("bb | ########## 4"), std::string::npos);
}

TEST(BarChartTest, AllZeroValuesDoNotCrash) {
  const std::vector<std::string> labels = {"a"};
  const std::vector<double> values = {0.0};
  EXPECT_NO_THROW((void)render_bar_chart(labels, values));
}

TEST(HeatmapTest, RendersCells) {
  const std::vector<std::string> labels = {"r1", "r2"};
  const std::vector<std::vector<double>> m = {{1.0, 0.0}, {0.5, 1.0}};
  const std::string out = render_heatmap(labels, m);
  EXPECT_NE(out.find("r1"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_NE(out.find("0.50"), std::string::npos);
}

TEST(SeriesTest, RendersRows) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {0.5, 1.0};
  const std::string out = render_series(xs, ys, 10);
  EXPECT_NE(out.find("*"), std::string::npos);
}

}  // namespace
}  // namespace wafp::util
