// WAFP_CHECK / WAFP_DCHECK semantics: failure message shape, streamed
// context, evaluation guarantees, and the assert-style on/off behaviour of
// the debug variant.
#include "util/check.h"

#include <gtest/gtest.h>

#include <string>

namespace wafp::util {
namespace {

TEST(CheckTest, PassingCheckIsANoOp) {
  int evaluations = 0;
  WAFP_CHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);  // condition evaluated exactly once
}

TEST(CheckTest, PassingCheckDoesNotEvaluateMessageOperands) {
  int message_evaluations = 0;
  const auto expensive = [&] {
    ++message_evaluations;
    return std::string("never built");
  };
  WAFP_CHECK(true) << expensive();
  EXPECT_EQ(message_evaluations, 0);
}

TEST(CheckDeathTest, FailureNamesConditionFileAndLine) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The message must carry enough to debug from a crash log alone:
  // the literal condition text and the file:line of the check.
  EXPECT_DEATH(WAFP_CHECK(1 + 1 == 3),
               "WAFP_CHECK failed: 1 \\+ 1 == 3 at .*check_test\\.cc:[0-9]+");
}

TEST(CheckDeathTest, StreamedContextIsAppended) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const int frames = 17;
  EXPECT_DEATH(WAFP_CHECK(frames % 2 == 0) << "odd frame count " << frames,
               "WAFP_CHECK failed: frames % 2 == 0 at .*: "
               "odd frame count 17");
}

TEST(CheckDeathTest, DcheckDiesExactlyWhenEnabled) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  if constexpr (kDcheckIsOn) {
    EXPECT_DEATH(WAFP_DCHECK(false) << "debug contract",
                 "WAFP_CHECK failed: false");
  } else {
    WAFP_DCHECK(false) << "compiled out";  // must be a silent no-op
  }
}

TEST(CheckTest, DisabledDcheckEvaluatesNothing) {
  // When DCHECK is off, neither the condition nor the message operands may
  // run (assert() semantics). When on, the condition runs — use a passing
  // one so the test body is the same in both build types.
  int condition_evaluations = 0;
  int message_evaluations = 0;
  const auto count_condition = [&] {
    ++condition_evaluations;
    return true;
  };
  const auto count_message = [&] {
    ++message_evaluations;
    return "ctx";
  };
  WAFP_DCHECK(count_condition()) << count_message();
  EXPECT_EQ(condition_evaluations, kDcheckIsOn ? 1 : 0);
  EXPECT_EQ(message_evaluations, 0);  // messages never run on success
}

TEST(CheckTest, CheckIsUsableInsideIfWithoutBraces) {
  // The ternary expansion must not swallow a dangling else.
  if (true)
    WAFP_CHECK(true) << "then-branch";
  else
    WAFP_CHECK(false) << "else-branch";  // would abort if mis-associated
}

}  // namespace
}  // namespace wafp::util
