#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace wafp::util {
namespace {

TEST(CsvTest, SimpleRows) {
  CsvWriter writer;
  writer.add_row({"a", "b", "c"});
  writer.add_row({"1", "2", "3"});
  EXPECT_EQ(writer.str(), "a,b,c\n1,2,3\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  CsvWriter writer;
  writer.add_row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  EXPECT_EQ(writer.str(),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(CsvTest, ParseSimple) {
  const auto rows = parse_csv("a,b\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, ParseQuotedFields) {
  const auto rows = parse_csv("\"x,y\",\"he said \"\"hi\"\"\"\nplain,2\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "x,y");
  EXPECT_EQ(rows[0][1], "he said \"hi\"");
}

TEST(CsvTest, ParseCrlf) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(CsvTest, ParseMissingTrailingNewline) {
  const auto rows = parse_csv("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(CsvTest, RoundTripArbitraryContent) {
  CsvWriter writer;
  const std::vector<std::string> nasty = {"", ",", "\"", "\n", "a\"b,c\nd"};
  writer.add_row(nasty);
  const auto rows = parse_csv(writer.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], nasty);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = "csv_test_tmp.csv";
  CsvWriter writer;
  writer.add_row({"x", "1"});
  writer.add_row({"y", "2"});
  ASSERT_TRUE(writer.write_file(path));
  const auto rows = read_csv_file(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "y");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileReturnsEmpty) {
  EXPECT_TRUE(read_csv_file("does_not_exist_12345.csv").empty());
}

TEST(CsvTest, LoneCarriageReturnEndsRow) {
  // Regression: a bare CR (old-Mac line ending) used to be dropped from the
  // cell, silently merging two rows into "a,bc,d".
  const auto rows = parse_csv("a,b\rc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, MixedLineEndingsInOneDocument) {
  const auto rows = parse_csv("a\nb\r\nc\rd");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[1][0], "b");
  EXPECT_EQ(rows[2][0], "c");
  EXPECT_EQ(rows[3][0], "d");
}

TEST(CsvTest, QuotedCrlfIsPreservedVerbatim) {
  // Regression: inside quotes, CR and CRLF are cell content, not row
  // terminators -- and the CR must not be eaten.
  const auto rows = parse_csv("\"x\r\ny\",z\n\"lone\rcr\",w\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "x\r\ny");
  EXPECT_EQ(rows[0][1], "z");
  EXPECT_EQ(rows[1][0], "lone\rcr");
}

TEST(CsvTest, LoneQuoteAtEofYieldsAccumulatedCell) {
  // Regression: an unterminated quote at end-of-file used to drop the row.
  const auto lone = parse_csv("a,\"");
  ASSERT_EQ(lone.size(), 1u);
  EXPECT_EQ(lone[0], (std::vector<std::string>{"a", ""}));
  const auto partial = parse_csv("x\n\"unclosed,cell");
  ASSERT_EQ(partial.size(), 2u);
  EXPECT_EQ(partial[1], (std::vector<std::string>{"unclosed,cell"}));
}

TEST(CsvTest, RoundTripExhaustiveOverDelimiterAlphabet) {
  // Property test: every cell of length <= 3 over the full delimiter
  // alphabet, paired exhaustively into two-cell rows, must round-trip
  // through CsvWriter -> parse_csv byte-for-byte. This covers every CR/LF/
  // quote/comma adjacency the satellite bugs lived in (156^2 rows).
  const std::string alphabet = "a,\"\n\r";
  std::vector<std::string> cells = {""};
  std::size_t prev_begin = 0;
  for (int len = 1; len <= 3; ++len) {
    const std::size_t prev_end = cells.size();
    for (std::size_t i = prev_begin; i < prev_end; ++i) {
      for (const char c : alphabet) cells.push_back(cells[i] + c);
    }
    prev_begin = prev_end;
  }
  ASSERT_EQ(cells.size(), 156u);  // 1 + 5 + 25 + 125

  CsvWriter writer;
  std::vector<std::vector<std::string>> expected;
  expected.reserve(cells.size() * cells.size());
  for (const auto& left : cells) {
    for (const auto& right : cells) {
      writer.add_row({left, right});
      expected.push_back({left, right});
    }
  }
  const auto parsed = parse_csv(writer.str());
  ASSERT_EQ(parsed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(parsed[i], expected[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace wafp::util
