#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace wafp::util {
namespace {

TEST(CsvTest, SimpleRows) {
  CsvWriter writer;
  writer.add_row({"a", "b", "c"});
  writer.add_row({"1", "2", "3"});
  EXPECT_EQ(writer.str(), "a,b,c\n1,2,3\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  CsvWriter writer;
  writer.add_row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  EXPECT_EQ(writer.str(),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(CsvTest, ParseSimple) {
  const auto rows = parse_csv("a,b\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, ParseQuotedFields) {
  const auto rows = parse_csv("\"x,y\",\"he said \"\"hi\"\"\"\nplain,2\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "x,y");
  EXPECT_EQ(rows[0][1], "he said \"hi\"");
}

TEST(CsvTest, ParseCrlf) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(CsvTest, ParseMissingTrailingNewline) {
  const auto rows = parse_csv("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(CsvTest, RoundTripArbitraryContent) {
  CsvWriter writer;
  const std::vector<std::string> nasty = {"", ",", "\"", "\n", "a\"b,c\nd"};
  writer.add_row(nasty);
  const auto rows = parse_csv(writer.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], nasty);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = "csv_test_tmp.csv";
  CsvWriter writer;
  writer.add_row({"x", "1"});
  writer.add_row({"y", "2"});
  ASSERT_TRUE(writer.write_file(path));
  const auto rows = read_csv_file(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "y");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileReturnsEmpty) {
  EXPECT_TRUE(read_csv_file("does_not_exist_12345.csv").empty());
}

}  // namespace
}  // namespace wafp::util
