#include "util/wav.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

namespace wafp::util {
namespace {

WavData make_test_data() {
  WavData data;
  data.sample_rate = 44100;
  data.channels.resize(2);
  for (int i = 0; i < 500; ++i) {
    data.channels[0].push_back(
        static_cast<float>(std::sin(2.0 * 3.14159 * 440.0 * i / 44100.0)));
    data.channels[1].push_back(static_cast<float>(i % 100) / 100.0f - 0.5f);
  }
  return data;
}

TEST(WavTest, Float32RoundTripIsBitExact) {
  const std::string path = "wav_test_f32.wav";
  const WavData data = make_test_data();
  ASSERT_TRUE(write_wav_f32(path, data));
  const WavData loaded = read_wav(path);
  ASSERT_EQ(loaded.channels.size(), 2u);
  EXPECT_EQ(loaded.sample_rate, 44100u);
  for (std::size_t c = 0; c < 2; ++c) {
    ASSERT_EQ(loaded.channels[c].size(), data.channels[c].size());
    for (std::size_t i = 0; i < data.channels[c].size(); ++i) {
      ASSERT_EQ(loaded.channels[c][i], data.channels[c][i]) << c << "," << i;
    }
  }
  std::remove(path.c_str());
}

TEST(WavTest, Pcm16RoundTripWithinQuantization) {
  const std::string path = "wav_test_pcm.wav";
  const WavData data = make_test_data();
  ASSERT_TRUE(write_wav_pcm16(path, data));
  const WavData loaded = read_wav(path);
  ASSERT_EQ(loaded.channels.size(), 2u);
  for (std::size_t i = 0; i < data.channels[0].size(); ++i) {
    ASSERT_NEAR(loaded.channels[0][i], data.channels[0][i], 1.0f / 32000.0f);
  }
  std::remove(path.c_str());
}

TEST(WavTest, Pcm16ClampsOutOfRange) {
  const std::string path = "wav_test_clamp.wav";
  WavData data;
  data.channels = {{2.0f, -3.0f, 0.0f}};
  ASSERT_TRUE(write_wav_pcm16(path, data));
  const WavData loaded = read_wav(path);
  ASSERT_EQ(loaded.channels.size(), 1u);
  EXPECT_NEAR(loaded.channels[0][0], 1.0f, 1e-4f);
  EXPECT_NEAR(loaded.channels[0][1], -1.0f, 1e-4f);
  std::remove(path.c_str());
}

TEST(WavTest, RejectsInvalidData) {
  WavData empty;
  EXPECT_FALSE(write_wav_f32("nope.wav", empty));
  WavData ragged;
  ragged.channels = {{1.0f, 2.0f}, {1.0f}};
  EXPECT_FALSE(write_wav_f32("nope.wav", ragged));
}

TEST(WavTest, ReadMissingOrGarbageFile) {
  EXPECT_TRUE(read_wav("does_not_exist.wav").channels.empty());
  const std::string path = "wav_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("definitely not a wav file", f);
  std::fclose(f);
  EXPECT_TRUE(read_wav(path).channels.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wafp::util
