#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace wafp::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.next_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(5);
  int truths = 0;
  for (int i = 0; i < 10000; ++i) truths += rng.next_bool(0.3);
  EXPECT_NEAR(truths / 10000.0, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  const Rng root(99);
  Rng a = root.fork("alpha");
  Rng a2 = root.fork("alpha");
  Rng b = root.fork("beta");
  EXPECT_EQ(a.next_u64(), a2.next_u64());
  EXPECT_NE(a.next_u64(), b.next_u64());

  Rng i0 = root.fork(std::uint64_t{0});
  Rng i1 = root.fork(std::uint64_t{1});
  EXPECT_NE(i0.next_u64(), i1.next_u64());
}

TEST(DeriveSeedTest, LabelAndIndexSensitive) {
  EXPECT_EQ(derive_seed(1, "x"), derive_seed(1, "x"));
  EXPECT_NE(derive_seed(1, "x"), derive_seed(1, "y"));
  EXPECT_NE(derive_seed(1, "x"), derive_seed(2, "x"));
  EXPECT_NE(derive_seed(1, std::uint64_t{5}), derive_seed(1, std::uint64_t{6}));
}

TEST(CategoricalSamplerTest, MatchesWeights) {
  const std::array weights = {0.5, 0.3, 0.2};
  const CategoricalSampler sampler{weights};
  Rng rng(17);
  std::array<int, 3> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.2, 0.01);
}

TEST(CategoricalSamplerTest, ZeroWeightNeverSampled) {
  const std::array weights = {0.7, 0.0, 0.3};
  const CategoricalSampler sampler{weights};
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(sampler.sample(rng), 1u);
}

TEST(CategoricalSamplerTest, SingleCategory) {
  const std::array weights = {2.0};
  const CategoricalSampler sampler{weights};
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(ZipfSamplerTest, RankPopularityDecreases) {
  const ZipfSampler zipf(20, 1.2);
  Rng rng(31);
  std::array<int, 20> counts{};
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[15]);
}

TEST(ZipfSamplerTest, InRange) {
  const ZipfSampler zipf(5, 1.0);
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 5u);
}

}  // namespace
}  // namespace wafp::util
