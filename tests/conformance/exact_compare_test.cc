// The comparison-policy guard (see src/testing/compare.h): hash-shaped
// quantities are compared bit-exactly, full stop. This suite fails if any
// layer of the conformance machinery ever became tolerant — a one-ULP
// change in a single sample MUST flunk the PCM comparison — and pins the
// one sanctioned tolerance to its documented bound from both sides.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "dsp/math_library.h"
#include "testing/compare.h"
#include "testing/pcm_digest.h"
#include "testing/stacks.h"

namespace wafp::testing {
namespace {

std::vector<float> ramp(std::size_t n) {
  std::vector<float> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples[i] = 0.25f + 1e-4f * static_cast<float>(i);
  }
  return samples;
}

float one_ulp_up(float v) {
  return std::bit_cast<float>(std::bit_cast<std::uint32_t>(v) + 1);
}

TEST(ExactCompareTest, OneUlpChangeFailsThePcmComparison) {
  // 3 blocks worth of samples; perturb one interior sample by one ULP at a
  // time and require a reported divergence at (or bounding) that index.
  std::vector<float> samples = ramp(3 * PcmFingerprint::kBlockSamples);
  const PcmFingerprint golden = fingerprint_pcm(samples);
  ASSERT_FALSE(diverges_from(golden, samples).has_value());

  const std::size_t interior = PcmFingerprint::kBlockSamples + 17;
  samples[interior] = one_ulp_up(samples[interior]);
  const auto divergence = diverges_from(golden, samples);
  ASSERT_TRUE(divergence.has_value())
      << "a one-ULP change slipped through — the comparison has gone "
         "approximate";
  EXPECT_FALSE(divergence->exact);
  EXPECT_EQ(divergence->sample_index, PcmFingerprint::kBlockSamples);
}

TEST(ExactCompareTest, HeadAndTailDivergencesAreSampleExact) {
  std::vector<float> samples = ramp(3 * PcmFingerprint::kBlockSamples);
  const PcmFingerprint golden = fingerprint_pcm(samples);

  std::vector<float> head_broken = samples;
  head_broken[5] = one_ulp_up(head_broken[5]);
  auto divergence = diverges_from(golden, head_broken);
  ASSERT_TRUE(divergence.has_value());
  EXPECT_TRUE(divergence->exact);
  EXPECT_EQ(divergence->sample_index, 5u);

  std::vector<float> tail_broken = samples;
  const std::size_t tail_index = tail_broken.size() - 3;
  tail_broken[tail_index] = one_ulp_up(tail_broken[tail_index]);
  divergence = diverges_from(golden, tail_broken);
  ASSERT_TRUE(divergence.has_value());
  EXPECT_TRUE(divergence->exact);
  EXPECT_EQ(divergence->sample_index, tail_index);
}

TEST(ExactCompareTest, LengthChangesAreDivergences) {
  const std::vector<float> samples = ramp(4096);
  const PcmFingerprint golden = fingerprint_pcm(samples);
  const std::vector<float> truncated(samples.begin(), samples.end() - 1);
  const auto divergence = diverges_from(golden, truncated);
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->sample_index, truncated.size());
}

TEST(ExactCompareTest, RollingDigestSeesEveryLaneAndTheLength) {
  const std::vector<float> samples = ramp(512);
  const std::uint64_t base = rolling_digest64(samples);
  std::vector<float> perturbed = samples;
  perturbed[300] = one_ulp_up(perturbed[300]);
  EXPECT_NE(rolling_digest64(perturbed), base);
  // Same prefix, shorter stream: length is mixed into the seed.
  EXPECT_NE(rolling_digest64({samples.data(), samples.size() - 1}), base);
  // Zero vs negative zero differ in bits, so they differ in digest.
  std::vector<float> zeros(8, 0.0f);
  std::vector<float> negzeros(8, -0.0f);
  EXPECT_NE(rolling_digest64(zeros), rolling_digest64(negzeros));
}

TEST(ExactCompareTest, SanctionedToleranceRejectsBeyondItsBound) {
  // Inside: reordering-scale noise passes.
  EXPECT_TRUE(metric_close(0.731205881, 0.731205881 + 1e-13));
  EXPECT_TRUE(metric_close(0.0, 0.0));
  EXPECT_TRUE(metric_close(1.0, 1.0 + 0.5 * kMetricRelTolerance));
  // Outside: anything semantically meaningful fails.
  EXPECT_FALSE(metric_close(1.0, 1.0 + 10.0 * kMetricRelTolerance));
  EXPECT_FALSE(metric_close(0.73, 0.74));
  EXPECT_FALSE(metric_close(0.0, 1e-8));
}

TEST(ExactCompareTest, GoldenStacksNeverTouchHostLibm) {
  // Satellite guard for cross-toolchain goldens: reference math must route
  // through src/dsp/math_library (kPrecise delegates to the host libm,
  // whose kernels drift across glibc releases — the very drift the paper
  // measures in browsers, and exactly what a committed golden cannot
  // tolerate).
  for (const GoldenStack& gs : golden_stacks()) {
    EXPECT_NE(gs.stack.math, dsp::MathVariant::kPrecise)
        << "stack '" << gs.name << "'";
  }
}

}  // namespace
}  // namespace wafp::testing
