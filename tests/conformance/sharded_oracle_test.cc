// Differential testing of the *sharded* collation engine: the same
// 540-sequence brute-force oracle budget as the single-engine suite
// (260 clean + 160 fault-injected + 120 kill-every-k durable sequences),
// but every sequence is replayed at several shard counts and the merged
// partition checksum must agree with BOTH the brute-force
// RefBipartiteGraph oracle and a single-shard CollationService run on the
// byte-identical trace. Sharding is an implementation detail of the
// engine; if any shard count can be told apart through
// component_checksum(), that is a routing, merge, or recovery bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "service/sharded_collation_service.h"
#include "testing/oracles.h"

namespace wafp::testing {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 8};
constexpr std::size_t kOpsPerSequence = 120;

/// Replay `trace` through a single-loop CollationService (via the engine
/// interface) and return its partition checksum — the second witness the
/// sharded runs must agree with.
std::uint64_t single_checksum(const std::vector<service::RawSubmission>& trace,
                              const service::ServiceConfig& config) {
  const auto svc = service::make_engine(config, /*shards=*/0);
  for (const auto& raw : trace) {
    EXPECT_TRUE(svc->submit(raw).accepted());
  }
  svc->pump();
  return svc->component_checksum();
}

// 260 clean in-memory sequences, each replayed at 1/2/8 shards: merged
// checksum == brute force == single engine, and the aggregate stats agree
// with the single engine's ingest counters.
TEST(ShardedOracleTest, CleanParityAcrossShardCounts) {
  for (std::uint64_t seed = 1; seed <= 260; ++seed) {
    const auto trace = make_submission_trace(seed, kOpsPerSequence);
    const std::uint64_t oracle = brute_force_submission_checksum(trace);
    const service::ServiceConfig config;
    const std::uint64_t single = single_checksum(trace, config);
    ASSERT_EQ(single, oracle) << "seed " << seed;
    for (const std::size_t shards : kShardCounts) {
      const auto svc = service::make_engine(config, shards);
      for (const auto& raw : trace) {
        ASSERT_TRUE(svc->submit(raw).accepted())
            << "seed " << seed << " shards " << shards;
      }
      svc->pump();
      ASSERT_EQ(svc->component_checksum(), oracle)
          << "seed " << seed << " shards " << shards
          << ": sharded partition diverged";
      const auto stats = svc->stats();
      ASSERT_EQ(stats.accepted, trace.size());
      ASSERT_EQ(stats.applied, trace.size());
    }
  }
}

// 160 fault-injected sequences: network faults (drop/duplicate) run at the
// router with global ordinals and storage faults run per shard, so every
// shard count must land on the identical checksum — the brute-force drop
// model for drops, bit-parity for everything else.
TEST(ShardedOracleTest, FaultInjectedParityAcrossShardCounts) {
  const std::uint64_t drop_periods[] = {0, 3, 5, 11};
  for (std::uint64_t seed = 1; seed <= 160; ++seed) {
    const auto trace = make_submission_trace(seed, kOpsPerSequence);
    service::ServiceConfig config;
    config.faults.drop_every = drop_periods[seed % 4];
    config.faults.duplicate_every = (seed % 3 == 0) ? 7 : 0;
    config.faults.reorder_every = (seed % 2 == 0) ? 5 : 0;
    const std::uint64_t oracle =
        brute_force_submission_checksum(trace, config.faults.drop_every);
    const std::uint64_t single = single_checksum(trace, config);
    ASSERT_EQ(single, oracle) << "seed " << seed;
    const std::size_t shards = kShardCounts[seed % 3];
    const auto svc = service::make_engine(config, shards);
    for (const auto& raw : trace) {
      ASSERT_TRUE(svc->submit(raw).accepted());
    }
    svc->pump();
    ASSERT_EQ(svc->component_checksum(), oracle)
        << "seed " << seed << " shards " << shards << " drop_every "
        << config.faults.drop_every
        << ": faults visible through the sharded partition";
    if (config.faults.drop_every != 0) {
      ASSERT_EQ(svc->stats().dropped_by_fault,
                trace.size() / config.faults.drop_every)
          << "router drop schedule diverged from global ordinals";
    }
  }
}

// 120 durable kill-every-k sequences across shard counts: every shard
// recovers from its own snapshot + WAL after each kill, the router re-arms
// its global clocks from the recovered shards, and the merged partition
// must still match the brute-force oracle.
TEST(ShardedOracleTest, KillEveryKRecoveryParityPerShardCount) {
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const auto trace = make_submission_trace(seed, kOpsPerSequence);
    const std::size_t shards = kShardCounts[seed % 3];
    const std::string dir =
        ::testing::TempDir() + "sharded_oracle_crash_" + std::to_string(seed);
    std::filesystem::remove_all(dir);
    const auto make_config = [&] {
      service::ServiceConfig config;
      config.state_dir = dir;
      config.snapshot_every = 32;  // several per-shard snapshot cycles
      config.faults.duplicate_every = 6;
      config.faults.reorder_every = 9;
      return config;
    };
    auto svc = service::make_engine(make_config(), shards);
    const std::size_t kill_every = 17 + seed % 13;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ASSERT_TRUE(svc->submit(trace[i]).accepted())
          << "seed " << seed << " submission " << i;
      svc->pump();  // durable on the owning shard before the crash window
      if ((i + 1) % kill_every == 0) {
        svc->crash();
        svc = service::make_engine(make_config(), shards);
      }
    }
    svc->pump();
    EXPECT_EQ(svc->component_checksum(),
              brute_force_submission_checksum(trace))
        << "seed " << seed << " shards " << shards
        << ": recovered sharded partition diverged from the oracle";
    svc.reset();
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace wafp::testing
