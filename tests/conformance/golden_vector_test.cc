// Golden-vector conformance: every audio fingerprint vector rendered on
// every golden stack must match the committed digest AND the committed PCM
// fingerprint bit-for-bit. Any DSP change — intended or not — fails here
// with the vector, the stack, and the first diverging sample index; an
// intended change re-blesses via `cmake --build build --target
// regen_goldens`.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fingerprint/vector_registry.h"
#include "testing/golden.h"
#include "testing/stacks.h"

namespace wafp::testing {
namespace {

#ifndef WAFP_CONFORMANCE_DIR
#error "build must define WAFP_CONFORMANCE_DIR (see tests/CMakeLists.txt)"
#endif

const GoldenFile& goldens() {
  static const GoldenFile file =
      GoldenFile::load(std::string(WAFP_CONFORMANCE_DIR) +
                       "/goldens/audio_vectors.golden");
  return file;
}

std::vector<const fingerprint::VectorEntry*> audio_entries() {
  std::vector<const fingerprint::VectorEntry*> entries;
  for (const fingerprint::VectorEntry& entry :
       fingerprint::VectorRegistry::instance().all()) {
    if (entry.caps.audio) entries.push_back(&entry);
  }
  return entries;
}

TEST(GoldenVectorTest, FileCoversEveryVectorOnEveryStack) {
  // Acceptance floor: all audio vectors (7 study + 2 extension) x >= 3
  // stacks. The committed file must cover the full cross product so a
  // skipped render can't silently shrink coverage.
  const auto entries = audio_entries();
  ASSERT_GE(entries.size(), 7u);
  ASSERT_GE(golden_stacks().size(), 3u);
  EXPECT_EQ(goldens().records.size(),
            entries.size() * golden_stacks().size());
  for (const GoldenStack& gs : golden_stacks()) {
    for (const fingerprint::VectorEntry* entry : entries) {
      EXPECT_NE(goldens().find(gs.name, entry->name), nullptr)
          << "no golden record for stack '" << gs.name << "' vector '"
          << entry->name << "'";
    }
  }
}

TEST(GoldenVectorTest, StampIsSanitizerClean) {
  EXPECT_TRUE(goldens().stamp.clean());
}

TEST(GoldenVectorTest, EveryRenderMatchesItsGolden) {
  for (const GoldenStack& gs : golden_stacks()) {
    const platform::PlatformProfile profile = profile_for(gs.stack);
    for (const fingerprint::VectorEntry* entry : audio_entries()) {
      const GoldenRecord* rec = goldens().find(gs.name, entry->name);
      ASSERT_NE(rec, nullptr);
      std::vector<float> capture;
      const util::Digest digest =
          entry->vector->run(profile, webaudio::RenderJitter{}, &capture);
      EXPECT_EQ(digest.hex(), rec->digest_hex)
          << "digest changed: vector '" << entry->name << "' on stack '"
          << gs.name << "'";
      const auto divergence = diverges_from(rec->pcm, capture);
      if (divergence.has_value()) {
        ADD_FAILURE() << "PCM diverges: vector '" << entry->name
                      << "' on stack '" << gs.name << "': "
                      << divergence->detail;
      }
    }
  }
}

TEST(GoldenVectorTest, CaptureDoesNotPerturbTheDigest) {
  const GoldenStack& gs = golden_stacks()[0];
  const platform::PlatformProfile profile = profile_for(gs.stack);
  for (const fingerprint::VectorEntry* entry : audio_entries()) {
    std::vector<float> capture;
    const util::Digest with_capture =
        entry->vector->run(profile, webaudio::RenderJitter{}, &capture);
    const util::Digest without =
        entry->vector->run(profile, webaudio::RenderJitter{});
    EXPECT_EQ(with_capture, without) << entry->name;
    EXPECT_FALSE(capture.empty()) << entry->name;
  }
}

TEST(GoldenVectorTest, DcIgnoresJitterButFftDoesNot) {
  // The committed goldens are rendered jitter-free; the paper's fickleness
  // model says DC must still match them under jitter while the analyser
  // path (FFT) must not (engine_config.h, RenderJitter).
  const GoldenStack& gs = golden_stacks()[0];
  const platform::PlatformProfile profile = profile_for(gs.stack);
  const webaudio::RenderJitter skew{.state = 3, .chaos_seed = 0};

  const auto& registry = fingerprint::VectorRegistry::instance();
  const util::Digest dc =
      registry.entry(fingerprint::VectorId::kDc).vector->run(profile, skew);
  EXPECT_EQ(dc.hex(),
            goldens().find(gs.name, "DC")->digest_hex);

  const util::Digest fft =
      registry.entry(fingerprint::VectorId::kFft).vector->run(profile, skew);
  EXPECT_NE(fft.hex(), goldens().find(gs.name, "FFT")->digest_hex);
}

TEST(GoldenVectorTest, LoaderRejectsSanitizedStamp) {
  const std::string dir = ::testing::TempDir();
  GoldenFile file = goldens();
  file.stamp.sanitizer = "address,undefined";
  const std::string path = dir + "/sanitized.golden";
  file.save(path);
  EXPECT_THROW((void)GoldenFile::load(path), std::runtime_error);
}

TEST(GoldenVectorTest, LoaderRejectsMalformedInput) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/roundtrip.golden";
  goldens().save(path);
  const GoldenFile reloaded = GoldenFile::load(path);
  EXPECT_EQ(reloaded.records, goldens().records);
  EXPECT_EQ(reloaded.stamp, goldens().stamp);

  // Appending an unknown key must be a hard load error, never a skip.
  {
    std::ofstream out(path, std::ios::app);
    out << "record\nstack x\nvector y\nwhatever z\nend\n";
  }
  EXPECT_THROW((void)GoldenFile::load(path), std::runtime_error);
}

}  // namespace
}  // namespace wafp::testing
