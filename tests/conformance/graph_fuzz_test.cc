// Seeded graph fuzzing over the shared generator (src/testing/graph_gen.h):
// >= 200 random-but-valid Web Audio graphs rendered on the portable engine
// config, holding the render invariants the digest layer depends on — no
// NaN/Inf ever, denormals flushed when the stack says FTZ, bit-identical
// repeat renders, and bit-identical results whether the batch runs on 1, 2,
// or 8 threads.
#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <vector>

#include "testing/graph_gen.h"
#include "testing/pcm_digest.h"
#include "util/thread_pool.h"
#include "webaudio/audio_buffer.h"

namespace wafp::testing {
namespace {

constexpr std::uint64_t kFuzzSeeds = 200;

std::uint64_t buffer_digest(const webaudio::AudioBuffer& buffer) {
  std::uint64_t digest = 0;
  for (std::size_t c = 0; c < buffer.channel_count(); ++c) {
    digest ^= rolling_digest64(buffer.channel(c),
                               static_cast<std::uint32_t>(c + 1));
  }
  return digest;
}

TEST(GraphFuzzTest, RendersAreFiniteFlushedAndRepeatable) {
  for (std::uint64_t seed = 1; seed <= kFuzzSeeds; ++seed) {
    const webaudio::AudioBuffer first =
        render_seeded_graph(seed, portable_engine_config());
    for (std::size_t c = 0; c < first.channel_count(); ++c) {
      for (std::size_t i = 0; i < first.length(); ++i) {
        const float v = first.channel(c)[i];
        ASSERT_TRUE(std::isfinite(v))
            << "seed " << seed << " channel " << c << " frame " << i;
        // The portable config renders flush-to-zero: a surviving denormal
        // means some kernel skipped the denormal policy.
        ASSERT_TRUE(v == 0.0f || std::fabs(v) >= FLT_MIN)
            << "denormal survived FTZ render: seed " << seed << " channel "
            << c << " frame " << i << " value " << v;
      }
    }
    const webaudio::AudioBuffer second =
        render_seeded_graph(seed, portable_engine_config());
    ASSERT_EQ(buffer_digest(first), buffer_digest(second))
        << "repeat render diverged for seed " << seed;
  }
}

TEST(GraphFuzzTest, BatchDigestsAreThreadCountInvariant) {
  // Render the same seed batch at parallelism 1, 2, and 8; every digest
  // must be byte-identical to the serial result. Each graph renders in its
  // own context, so any cross-render contamination (shared scratch, global
  // state, denormal-mode leakage between pool workers) shows up here.
  constexpr std::uint64_t kBatch = 48;
  std::vector<std::uint64_t> serial(kBatch);
  for (std::uint64_t i = 0; i < kBatch; ++i) {
    serial[i] = seeded_graph_digest(i + 1);
  }
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    std::vector<std::uint64_t> parallel(kBatch);
    pool.parallel_for_each(kBatch, [&](std::size_t i) {
      parallel[i] = seeded_graph_digest(i + 1);
    });
    EXPECT_EQ(parallel, serial) << "thread count " << threads;
  }
}

}  // namespace
}  // namespace wafp::testing
