// Metamorphic checks over the study/analysis layer: properties that must
// hold for *any* dataset, checked on a small real one. AMI and the match
// pipeline cannot care what order users arrive in or what integers name the
// clusters; entropy cannot grow when clusters merge; and the render cache
// must be a pure memoization — hit, miss, and direct render all produce the
// same digest. These are the invariances the paper's tables silently assume
// (its user ids and cluster labels are arbitrary), made executable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "analysis/ami.h"
#include "analysis/entropy.h"
#include "collation/fingerprint_graph.h"
#include "fingerprint/render_cache.h"
#include "fingerprint/vector_registry.h"
#include "study/dataset.h"
#include "study/experiments.h"
#include "testing/compare.h"
#include "testing/stacks.h"
#include "util/rng.h"

namespace wafp::testing {
namespace {

/// One small collected dataset shared by the study-layer checks (collection
/// renders through the cache, so 40 users cost a handful of renders).
const study::Dataset& dataset() {
  static const study::Dataset ds = [] {
    study::StudyConfig config;
    config.num_users = 40;
    config.iterations = 5;
    config.seed = 777;
    config.threads = 1;
    return study::Dataset::collect(config);
  }();
  return ds;
}

std::vector<std::size_t> cluster_sizes(const std::vector<int>& labels) {
  int max_label = -1;
  for (int label : labels) max_label = std::max(max_label, label);
  std::vector<std::size_t> sizes(static_cast<std::size_t>(max_label + 1), 0);
  for (int label : labels) ++sizes[static_cast<std::size_t>(label)];
  return sizes;
}

TEST(MetamorphicStudyTest, AmiIsInvariantUnderUserPermutation) {
  const study::Dataset& ds = dataset();
  const std::vector<int> a =
      study::collated_clustering(ds, fingerprint::VectorId::kHybrid).labels;
  const std::vector<int> b =
      study::collated_clustering(ds, fingerprint::VectorId::kFft).labels;
  ASSERT_EQ(a.size(), b.size());
  const double base_ami = analysis::adjusted_mutual_information(a, b);
  const double base_nmi = analysis::normalized_mutual_information(a, b);

  // Shuffle the *users* (the same permutation applied to both labelings):
  // agreement between the clusterings is a property of the pairing, not of
  // the order the users are listed in.
  std::vector<std::size_t> perm(a.size());
  std::iota(perm.begin(), perm.end(), 0);
  util::Rng rng(20260807);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  std::vector<int> pa(a.size()), pb(b.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    pa[i] = a[perm[i]];
    pb[i] = b[perm[i]];
  }
  EXPECT_TRUE(metric_close(analysis::adjusted_mutual_information(pa, pb),
                           base_ami))
      << "AMI moved under a user permutation";
  EXPECT_TRUE(metric_close(analysis::normalized_mutual_information(pa, pb),
                           base_nmi))
      << "NMI moved under a user permutation";
}

TEST(MetamorphicStudyTest, AmiIsInvariantUnderLabelRenaming) {
  const study::Dataset& ds = dataset();
  const auto ca =
      study::collated_clustering(ds, fingerprint::VectorId::kHybrid);
  const auto cb = study::collated_clustering(ds, fingerprint::VectorId::kAm);
  const double base_ami =
      analysis::adjusted_mutual_information(ca.labels, cb.labels);

  // Rename cluster ids through a bijection (reverse the dense range): the
  // integers naming the clusters are arbitrary bookkeeping.
  std::vector<int> renamed = ca.labels;
  for (int& label : renamed) label = (ca.num_clusters - 1) - label;
  EXPECT_TRUE(metric_close(
      analysis::adjusted_mutual_information(renamed, cb.labels), base_ami))
      << "AMI moved under a cluster-label renaming";
  // Self-agreement is exactly chance-corrected 1 and survives renaming too.
  EXPECT_TRUE(metric_close(
      analysis::adjusted_mutual_information(ca.labels, renamed), 1.0));
}

TEST(MetamorphicStudyTest, EntropyNeverGrowsWhenClustersMerge) {
  const study::Dataset& ds = dataset();
  const std::vector<int> labels =
      study::collated_clustering(ds, fingerprint::VectorId::kDc).labels;
  std::vector<std::size_t> sizes = cluster_sizes(labels);
  ASSERT_GE(sizes.size(), 2u)
      << "degenerate dataset: need >= 2 clusters to merge";
  const double base = analysis::shannon_entropy_bits(sizes);

  // Making the users of two clusters indistinguishable merges the clusters;
  // diversity must not increase, for every choice of pair.
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    for (std::size_t j = i + 1; j < sizes.size(); ++j) {
      std::vector<std::size_t> merged = sizes;
      merged[i] += merged[j];
      merged.erase(merged.begin() + static_cast<std::ptrdiff_t>(j));
      const double after = analysis::shannon_entropy_bits(merged);
      ASSERT_LE(after, base + 1e-12) << "merging clusters " << i << " and "
                                     << j << " increased entropy";
    }
  }

  // Cloning the whole population (every cluster size doubled) changes no
  // proportion, hence no entropy.
  std::vector<std::size_t> doubled = sizes;
  for (std::size_t& s : doubled) s *= 2;
  EXPECT_TRUE(metric_close(analysis::shannon_entropy_bits(doubled), base));

  // And the normalized form is 1 exactly when everyone is unique.
  const std::vector<std::size_t> singletons(labels.size(), 1);
  EXPECT_TRUE(metric_close(
      analysis::normalized_entropy(singletons, labels.size()), 1.0));
}

TEST(MetamorphicStudyTest, MatchIsInvariantUnderProbePermutation) {
  const study::Dataset& ds = dataset();
  const auto id = fingerprint::VectorId::kHybrid;
  // Train on iterations [0,3), probe with [3,5) — the §3.3 split.
  const collation::FingerprintGraph graph = study::build_graph(ds, id, 0, 3);
  for (std::size_t user = 0; user < ds.num_users(); ++user) {
    std::vector<util::Digest> probe;
    for (std::uint32_t it = 3; it < ds.iterations(); ++it) {
      probe.push_back(ds.audio_observation(user, id, it));
    }
    const auto forward = graph.match(probe);
    std::reverse(probe.begin(), probe.end());
    const auto reversed = graph.match(probe);
    ASSERT_EQ(forward, reversed)
        << "user " << user << ": match() depends on probe order";
  }
}

TEST(MetamorphicStudyTest, CacheHitAndMissAndDirectRenderAgree) {
  const GoldenStack* gs = find_golden_stack("gecko-fastpoly-splitradix");
  ASSERT_NE(gs, nullptr);
  const platform::PlatformProfile profile = profile_for(gs->stack);
  fingerprint::RenderCache cache;
  std::size_t checked = 0;
  for (const fingerprint::VectorEntry& entry :
       fingerprint::VectorRegistry::instance().all()) {
    if (!entry.caps.audio) continue;
    for (const std::uint32_t jitter_state : {0u, 3u}) {
      const util::Digest direct = entry.vector->run(
          profile, webaudio::RenderJitter{.state = jitter_state});
      const util::Digest miss = cache.get(*entry.vector, profile,
                                          jitter_state);
      const util::Digest hit = cache.get(*entry.vector, profile,
                                         jitter_state);
      ASSERT_EQ(miss, direct) << entry.name << " jitter " << jitter_state
                              << ": cache-miss render diverged";
      ASSERT_EQ(hit, miss) << entry.name << " jitter " << jitter_state
                           << ": cache hit returned different bits";
      ++checked;
    }
  }
  EXPECT_GE(checked, 14u);  // 7 audio vectors x 2 jitter states minimum
  EXPECT_EQ(cache.misses(), checked);
  EXPECT_EQ(cache.hits(), checked);
}

}  // namespace
}  // namespace wafp::testing
