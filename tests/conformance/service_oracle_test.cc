// Differential testing of the collation service under fault injection:
// deterministic submission traces (from the shared op-sequence generator)
// run through a CollationEngine with drop/duplicate/reorder/append-fail
// fault plans and kill-every-k crash-recovery loops, and the resulting
// partition checksum is compared against the brute-force RefBipartiteGraph
// — an oracle that shares no code with the union-find, the WAL, or the
// snapshot path. Duplicates, reorders, transient append failures, and
// crashes must be invisible in the checksum; drops must match an explicit
// brute-force drop model, not merely "some other" result.
//
// Everything here drives the abstract CollationEngine interface (via
// make_engine), so the same assertions hold verbatim for any engine; the
// sharded engine's suite (sharded_oracle_test.cc) reuses the same shared
// trace and oracle helpers.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "service/sharded_collation_service.h"
#include "testing/oracles.h"

namespace wafp::testing {
namespace {

TEST(ServiceOracleTest, CleanRunMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto trace = make_submission_trace(seed, 200);
    const auto svc = service::make_engine(service::ServiceConfig{},
                                          /*shards=*/0);
    for (const auto& raw : trace) {
      ASSERT_TRUE(svc->submit(raw).accepted());
    }
    svc->pump();
    EXPECT_EQ(svc->component_checksum(),
              brute_force_submission_checksum(trace))
        << "seed " << seed;
  }
}

TEST(ServiceOracleTest, DuplicateReorderAndAppendFaultsAreInvisible) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto trace = make_submission_trace(seed, 200);
    const std::string dir =
        ::testing::TempDir() + "svc_oracle_faults_" + std::to_string(seed);
    std::filesystem::remove_all(dir);
    service::ServiceConfig config;
    config.state_dir = dir;
    config.snapshot_every = 64;
    config.faults.duplicate_every = 7;
    config.faults.reorder_every = 5;
    config.faults.fail_append_at = 3;     // one transient failure early...
    config.faults.fail_append_every = 41; // ...and recurring ones after
    config.sleeper = [](std::chrono::milliseconds) {};  // no real backoff
    const auto svc = service::make_engine(config, /*shards=*/0);
    for (const auto& raw : trace) {
      ASSERT_TRUE(svc->submit(raw).accepted());
    }
    svc->pump();
    const auto stats = svc->stats();
    EXPECT_GT(stats.duplicated_by_fault, 0u);
    EXPECT_GT(stats.wal_retries, 0u);
    EXPECT_EQ(svc->component_checksum(),
              brute_force_submission_checksum(trace))
        << "seed " << seed
        << ": duplicates/reorders/retries leaked into the partition";
    std::filesystem::remove_all(dir);
  }
}

TEST(ServiceOracleTest, DropFaultsMatchTheBruteForceDropModel) {
  const std::uint64_t drop_periods[] = {3, 5, 7, 11};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::uint64_t drop_every = drop_periods[seed % 4];
    const auto trace = make_submission_trace(seed, 200);
    service::ServiceConfig config;
    config.faults.drop_every = drop_every;
    const auto svc = service::make_engine(config, /*shards=*/0);
    for (const auto& raw : trace) {
      ASSERT_TRUE(svc->submit(raw).accepted());  // drops still ack
    }
    svc->pump();
    const auto stats = svc->stats();
    EXPECT_EQ(stats.dropped_by_fault, trace.size() / drop_every);
    EXPECT_EQ(svc->component_checksum(),
              brute_force_submission_checksum(trace, drop_every))
        << "seed " << seed << " drop_every " << drop_every;
  }
}

TEST(ServiceOracleTest, KillEveryKRecoveryMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto trace = make_submission_trace(seed, 200);
    const std::string dir =
        ::testing::TempDir() + "svc_oracle_crash_" + std::to_string(seed);
    std::filesystem::remove_all(dir);
    const auto make_config = [&] {
      service::ServiceConfig config;
      config.state_dir = dir;
      config.snapshot_every = 32;  // several snapshot+truncate cycles
      config.faults.duplicate_every = 6;
      config.faults.reorder_every = 9;
      return config;
    };
    auto svc = service::make_engine(make_config(), /*shards=*/0);
    const std::size_t kill_every = 17 + seed;  // vary the crash cadence
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ASSERT_TRUE(svc->submit(trace[i]).accepted()) << "submission " << i;
      svc->pump();  // durable before the crash window opens
      if ((i + 1) % kill_every == 0) {
        svc->crash();
        svc = service::make_engine(make_config(), /*shards=*/0);
      }
    }
    svc->pump();
    EXPECT_EQ(svc->component_checksum(),
              brute_force_submission_checksum(trace))
        << "seed " << seed
        << ": recovered partition diverged from the brute-force oracle";
    svc.reset();
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace wafp::testing
