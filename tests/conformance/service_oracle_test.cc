// Differential testing of the collation service under fault injection:
// deterministic submission traces (from the shared op-sequence generator)
// run through a CollationService with drop/duplicate/reorder/append-fail
// fault plans and kill-every-k crash-recovery loops, and the resulting
// partition checksum is compared against the brute-force RefBipartiteGraph
// — an oracle that shares no code with the union-find, the WAL, or the
// snapshot path. Duplicates, reorders, transient append failures, and
// crashes must be invisible in the checksum; drops must match an explicit
// brute-force drop model, not merely "some other" result.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "service/collation_service.h"
#include "testing/oracles.h"

namespace wafp::testing {
namespace {

std::vector<service::RawSubmission> make_trace(std::uint64_t seed,
                                               std::size_t length) {
  const std::vector<CollationOp> ops =
      make_op_sequence(seed, length, /*with_expiry=*/false);
  std::vector<service::RawSubmission> trace;
  trace.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    service::RawSubmission raw;
    raw.user = ops[i].user;
    raw.vector = static_cast<std::uint32_t>(i % 7);  // the 7 audio vectors
    raw.timestamp = ops[i].timestamp;
    raw.efp_hex = test_digest(ops[i].efp_id).hex();
    trace.push_back(std::move(raw));
  }
  return trace;
}

/// Parse the hex the service would parse, so the oracle sees the exact
/// digests the graph sees.
util::Digest digest_from_hex(const std::string& hex) {
  util::Digest d;
  for (std::size_t i = 0; i < d.bytes.size(); ++i) {
    const auto nibble = [&](char c) -> std::uint8_t {
      return c <= '9' ? static_cast<std::uint8_t>(c - '0')
                      : static_cast<std::uint8_t>(c - 'a' + 10);
    };
    d.bytes[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                           nibble(hex[2 * i + 1]));
  }
  return d;
}

std::uint64_t brute_force_checksum(
    const std::vector<service::RawSubmission>& trace,
    std::uint64_t drop_every = 0) {
  RefBipartiteGraph ref;
  std::uint64_t ordinal = 0;
  for (const service::RawSubmission& raw : trace) {
    ++ordinal;
    if (drop_every != 0 && ordinal % drop_every == 0) continue;
    ref.add_observation(raw.user, digest_from_hex(raw.efp_hex), 0);
  }
  return ref.component_checksum();
}

TEST(ServiceOracleTest, CleanRunMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto trace = make_trace(seed, 200);
    service::CollationService svc{service::ServiceConfig{}};
    for (const auto& raw : trace) {
      ASSERT_TRUE(svc.submit(raw).accepted());
    }
    svc.pump();
    EXPECT_EQ(svc.component_checksum(), brute_force_checksum(trace))
        << "seed " << seed;
  }
}

TEST(ServiceOracleTest, DuplicateReorderAndAppendFaultsAreInvisible) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto trace = make_trace(seed, 200);
    const std::string dir =
        ::testing::TempDir() + "svc_oracle_faults_" + std::to_string(seed);
    std::filesystem::remove_all(dir);
    service::ServiceConfig config;
    config.state_dir = dir;
    config.snapshot_every = 64;
    config.faults.duplicate_every = 7;
    config.faults.reorder_every = 5;
    config.faults.fail_append_at = 3;     // one transient failure early...
    config.faults.fail_append_every = 41; // ...and recurring ones after
    config.sleeper = [](std::chrono::milliseconds) {};  // no real backoff
    service::CollationService svc{std::move(config)};
    for (const auto& raw : trace) {
      ASSERT_TRUE(svc.submit(raw).accepted());
    }
    svc.pump();
    const auto stats = svc.stats();
    EXPECT_GT(stats.duplicated_by_fault, 0u);
    EXPECT_GT(stats.wal_retries, 0u);
    EXPECT_EQ(svc.component_checksum(), brute_force_checksum(trace))
        << "seed " << seed
        << ": duplicates/reorders/retries leaked into the partition";
    std::filesystem::remove_all(dir);
  }
}

TEST(ServiceOracleTest, DropFaultsMatchTheBruteForceDropModel) {
  const std::uint64_t drop_periods[] = {3, 5, 7, 11};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::uint64_t drop_every = drop_periods[seed % 4];
    const auto trace = make_trace(seed, 200);
    service::ServiceConfig config;
    config.faults.drop_every = drop_every;
    service::CollationService svc{std::move(config)};
    for (const auto& raw : trace) {
      ASSERT_TRUE(svc.submit(raw).accepted());  // drops still ack
    }
    svc.pump();
    const auto stats = svc.stats();
    EXPECT_EQ(stats.dropped_by_fault, trace.size() / drop_every);
    EXPECT_EQ(svc.component_checksum(),
              brute_force_checksum(trace, drop_every))
        << "seed " << seed << " drop_every " << drop_every;
  }
}

TEST(ServiceOracleTest, KillEveryKRecoveryMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto trace = make_trace(seed, 200);
    const std::string dir =
        ::testing::TempDir() + "svc_oracle_crash_" + std::to_string(seed);
    std::filesystem::remove_all(dir);
    const auto make_config = [&] {
      service::ServiceConfig config;
      config.state_dir = dir;
      config.snapshot_every = 32;  // several snapshot+truncate cycles
      config.faults.duplicate_every = 6;
      config.faults.reorder_every = 9;
      return config;
    };
    auto svc = std::make_unique<service::CollationService>(make_config());
    const std::size_t kill_every = 17 + seed;  // vary the crash cadence
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ASSERT_TRUE(svc->submit(trace[i]).accepted()) << "submission " << i;
      svc->pump();  // durable before the crash window opens
      if ((i + 1) % kill_every == 0) {
        svc->crash();
        svc = std::make_unique<service::CollationService>(make_config());
      }
    }
    svc->pump();
    EXPECT_EQ(svc->component_checksum(), brute_force_checksum(trace))
        << "seed " << seed
        << ": recovered partition diverged from the brute-force oracle";
    svc.reset();
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace wafp::testing
