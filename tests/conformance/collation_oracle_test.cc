// Differential testing of the collation structures against brute-force
// oracles (src/testing/oracles.h): randomized op sequences drive the
// production structure and an O(V*E) recompute-from-scratch reference in
// lockstep, comparing cluster counts, membership queries, and the canonical
// component checksum at fixed checkpoints. 540 sequences total across the
// three structures — deterministic seeds, so a divergence is a replayable
// one-line reproducer.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "collation/dynamic_connectivity.h"
#include "collation/expiring_graph.h"
#include "collation/fingerprint_graph.h"
#include "testing/oracles.h"
#include "util/rng.h"

namespace wafp::testing {
namespace {

constexpr std::size_t kUnionFindSequences = 260;
constexpr std::size_t kExpiringSequences = 160;
constexpr std::size_t kConnectivitySequences = 120;
constexpr std::size_t kOpsPerSequence = 120;
constexpr std::size_t kCheckEvery = 30;

TEST(CollationOracleTest, FingerprintGraphMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= kUnionFindSequences; ++seed) {
    const std::vector<CollationOp> ops =
        make_op_sequence(seed, kOpsPerSequence, /*with_expiry=*/false);
    collation::FingerprintGraph graph;
    RefBipartiteGraph ref;
    util::Rng probe_rng(seed ^ 0x9E3779B97F4A7C15ULL);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const CollationOp& op = ops[i];
      graph.add_observation(op.user, test_digest(op.efp_id));
      ref.add_observation(op.user, test_digest(op.efp_id), op.timestamp);
      if ((i + 1) % kCheckEvery != 0 && i + 1 != ops.size()) continue;

      ASSERT_EQ(graph.cluster_count(), ref.cluster_count())
          << "seed " << seed << " op " << i;
      ASSERT_EQ(graph.user_count(), ref.active_user_count())
          << "seed " << seed << " op " << i;
      ASSERT_EQ(graph.fingerprint_count(), ref.active_fingerprint_count())
          << "seed " << seed << " op " << i;
      ASSERT_EQ(graph.component_checksum(), ref.component_checksum())
          << "seed " << seed << " op " << i
          << ": partition checksum diverged";
      for (int probe = 0; probe < 4; ++probe) {
        const auto a = static_cast<std::uint32_t>(probe_rng.next_below(48));
        const auto b = static_cast<std::uint32_t>(probe_rng.next_below(48));
        ASSERT_EQ(graph.same_cluster(a, b), ref.same_cluster(a, b))
            << "seed " << seed << " op " << i << " users " << a << "," << b;
      }
    }
  }
}

TEST(CollationOracleTest, ExpiringGraphMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= kExpiringSequences; ++seed) {
    const std::vector<CollationOp> ops =
        make_op_sequence(seed, kOpsPerSequence, /*with_expiry=*/true);
    collation::ExpiringFingerprintGraph graph(/*max_nodes=*/256);
    RefBipartiteGraph ref;
    util::Rng probe_rng(seed ^ 0xA5A5A5A5ULL);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const CollationOp& op = ops[i];
      if (op.kind == CollationOp::Kind::kExpire) {
        graph.expire_before(op.timestamp);
        ref.expire_before(op.timestamp);
      } else {
        graph.add_observation(op.user, test_digest(op.efp_id), op.timestamp);
        ref.add_observation(op.user, test_digest(op.efp_id), op.timestamp);
      }
      if ((i + 1) % kCheckEvery != 0 && i + 1 != ops.size()) continue;

      ASSERT_EQ(graph.observation_count(), ref.observation_count())
          << "seed " << seed << " op " << i;
      ASSERT_EQ(graph.active_user_count(), ref.active_user_count())
          << "seed " << seed << " op " << i;
      ASSERT_EQ(graph.cluster_count(), ref.cluster_count())
          << "seed " << seed << " op " << i;
      ASSERT_EQ(graph.live_observations(), ref.live_observations())
          << "seed " << seed << " op " << i << ": live edge set diverged";
      for (int probe = 0; probe < 4; ++probe) {
        const auto a = static_cast<std::uint32_t>(probe_rng.next_below(48));
        const auto b = static_cast<std::uint32_t>(probe_rng.next_below(48));
        ASSERT_EQ(graph.same_cluster(a, b), ref.same_cluster(a, b))
            << "seed " << seed << " op " << i << " users " << a << "," << b;
      }
    }
  }
}

TEST(CollationOracleTest, DynamicConnectivityMatchesBruteForce) {
  constexpr std::size_t kVertices = 48;
  for (std::uint64_t seed = 1; seed <= kConnectivitySequences; ++seed) {
    util::Rng rng(seed * 0x51eeb4u + 7);
    collation::DynamicConnectivity dyn(kVertices);
    RefConnectivity ref(kVertices);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> live_edges;
    for (std::size_t i = 0; i < 150; ++i) {
      // Deletions target known-live edges so they actually exercise the
      // replacement search, not the absent-edge no-op path.
      const bool do_delete = !live_edges.empty() && rng.next_bool(0.35);
      if (do_delete) {
        const std::size_t pick = rng.next_below(live_edges.size());
        const auto [u, v] = live_edges[pick];
        ASSERT_EQ(dyn.delete_edge(u, v), ref.delete_edge(u, v))
            << "seed " << seed << " op " << i;
        live_edges[pick] = live_edges.back();
        live_edges.pop_back();
      } else {
        const auto u = static_cast<std::uint32_t>(rng.next_below(kVertices));
        const auto v = static_cast<std::uint32_t>(rng.next_below(kVertices));
        const bool inserted_ref = ref.insert_edge(u, v);
        ASSERT_EQ(dyn.insert_edge(u, v), inserted_ref)
            << "seed " << seed << " op " << i;
        if (inserted_ref) live_edges.emplace_back(u, v);
      }
      ASSERT_EQ(dyn.edge_count(), ref.edge_count());
      for (int probe = 0; probe < 3; ++probe) {
        const auto a = static_cast<std::uint32_t>(rng.next_below(kVertices));
        const auto b = static_cast<std::uint32_t>(rng.next_below(kVertices));
        ASSERT_EQ(dyn.connected(a, b), ref.connected(a, b))
            << "seed " << seed << " op " << i << " pair " << a << "," << b;
      }
      if ((i + 1) % 25 == 0 || i + 1 == 150) {
        ASSERT_EQ(dyn.component_count(), ref.component_count())
            << "seed " << seed << " op " << i;
        const auto probe =
            static_cast<std::uint32_t>(rng.next_below(kVertices));
        ASSERT_EQ(dyn.component_size(probe), ref.component_size(probe))
            << "seed " << seed << " op " << i << " vertex " << probe;
      }
    }
  }
}

}  // namespace
}  // namespace wafp::testing
