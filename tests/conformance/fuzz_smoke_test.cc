// Short-budget fuzz smoke: a small slice of the seeded-graph fuzzer and the
// collation oracle, asserting only *invariants* (finite output, oracle
// agreement) and never committed digests. This is the binary the sanitizer
// sweeps run — ASan/UBSan/TSan builds may legally change floating-point
// codegen, so byte-exact golden comparisons belong to the conformance label,
// while memory/UB/race coverage of the exact same code paths belongs here.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "collation/fingerprint_graph.h"
#include "testing/graph_gen.h"
#include "testing/oracles.h"
#include "util/thread_pool.h"
#include "webaudio/audio_buffer.h"

namespace wafp::testing {
namespace {

TEST(FuzzSmokeTest, RenderedGraphsStayFinite) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const webaudio::AudioBuffer buffer =
        render_seeded_graph(seed, portable_engine_config());
    ASSERT_GT(buffer.length(), 0u);
    for (std::size_t c = 0; c < buffer.channel_count(); ++c) {
      for (std::size_t i = 0; i < buffer.length(); ++i) {
        ASSERT_TRUE(std::isfinite(buffer.channel(c)[i]))
            << "seed " << seed << " channel " << c << " frame " << i;
      }
    }
  }
}

TEST(FuzzSmokeTest, ParallelBatchRenderIsRaceClean) {
  // Drive renders from a pool so TSan sees concurrent engine use; results
  // are intentionally not compared against committed digests here.
  util::ThreadPool pool(4);
  std::vector<std::uint64_t> digests(16);
  pool.parallel_for_each(digests.size(), [&](std::size_t i) {
    digests[i] = seeded_graph_digest(static_cast<std::uint64_t>(i) + 1);
  });
  for (std::size_t i = 0; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], seeded_graph_digest(i + 1))
        << "seed " << i + 1 << " diverged between pool and serial render";
  }
}

TEST(FuzzSmokeTest, CollationOracleSmoke) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const std::vector<CollationOp> ops =
        make_op_sequence(seed, 80, /*with_expiry=*/false);
    collation::FingerprintGraph graph;
    RefBipartiteGraph ref;
    for (const CollationOp& op : ops) {
      graph.add_observation(op.user, test_digest(op.efp_id));
      ref.add_observation(op.user, test_digest(op.efp_id), op.timestamp);
    }
    ASSERT_EQ(graph.cluster_count(), ref.cluster_count()) << "seed " << seed;
    ASSERT_EQ(graph.component_checksum(), ref.component_checksum())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace wafp::testing
