// Golden conformance for the WebAssembly-style compute vectors: both
// batteries evaluated on every golden stack must match the committed
// digest AND the committed float-stream fingerprint bit-for-bit, exactly
// like the audio goldens. Re-bless intended changes with the
// `regen_goldens` build target (which now also rewrites
// goldens/wasm_vectors.golden).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fingerprint/vector_registry.h"
#include "testing/golden.h"
#include "testing/pcm_digest.h"
#include "testing/stacks.h"

namespace wafp::testing {
namespace {

#ifndef WAFP_CONFORMANCE_DIR
#error "build must define WAFP_CONFORMANCE_DIR (see tests/CMakeLists.txt)"
#endif

const GoldenFile& goldens() {
  static const GoldenFile file = GoldenFile::load(
      std::string(WAFP_CONFORMANCE_DIR) + "/goldens/wasm_vectors.golden");
  return file;
}

TEST(WasmGoldenTest, FileCoversBothVectorsOnEveryStack) {
  const auto compute_ids =
      fingerprint::VectorRegistry::instance().compute_ids();
  ASSERT_EQ(compute_ids.size(), 2u);
  ASSERT_GE(golden_stacks().size(), 3u);
  EXPECT_EQ(goldens().records.size(),
            compute_ids.size() * golden_stacks().size());
  for (const GoldenStack& gs : golden_stacks()) {
    for (const fingerprint::VectorId id : compute_ids) {
      EXPECT_NE(goldens().find(gs.name, fingerprint::to_string(id)), nullptr)
          << "no golden record for stack '" << gs.name << "' vector '"
          << fingerprint::to_string(id) << "'";
    }
  }
}

TEST(WasmGoldenTest, StampIsSanitizerClean) {
  EXPECT_TRUE(goldens().stamp.clean());
}

TEST(WasmGoldenTest, EveryBatteryMatchesItsGolden) {
  for (const GoldenStack& gs : golden_stacks()) {
    const platform::PlatformProfile profile = profile_for(gs.stack);
    for (const fingerprint::VectorId id :
         fingerprint::VectorRegistry::instance().compute_ids()) {
      const GoldenRecord* rec =
          goldens().find(gs.name, fingerprint::to_string(id));
      ASSERT_NE(rec, nullptr);
      std::vector<float> capture;
      const util::Digest digest =
          fingerprint::run_compute_vector(id, profile, &capture);
      EXPECT_EQ(digest.hex(), rec->digest_hex)
          << "digest changed: vector '" << fingerprint::to_string(id)
          << "' on stack '" << gs.name << "'";
      const auto divergence = diverges_from(rec->pcm, capture);
      if (divergence.has_value()) {
        ADD_FAILURE() << "float stream diverges: vector '"
                      << fingerprint::to_string(id) << "' on stack '"
                      << gs.name << "': " << divergence->detail;
      }
    }
  }
}

TEST(WasmGoldenTest, CaptureDoesNotPerturbTheDigest) {
  const platform::PlatformProfile profile =
      profile_for(golden_stacks()[0].stack);
  for (const fingerprint::VectorId id :
       fingerprint::VectorRegistry::instance().compute_ids()) {
    std::vector<float> capture;
    const util::Digest with_capture =
        fingerprint::run_compute_vector(id, profile, &capture);
    const util::Digest without = fingerprint::run_compute_vector(id, profile);
    EXPECT_EQ(with_capture, without) << fingerprint::to_string(id);
    EXPECT_FALSE(capture.empty()) << fingerprint::to_string(id);
  }
}

TEST(WasmGoldenTest, DigestsAreDistinctAcrossStacks) {
  // The batteries exist to discriminate browser binaries: on the four
  // golden stacks (distinct math variants; one with FMA contraction) every
  // (vector, stack) digest must be unique.
  std::set<std::string> seen;
  for (const GoldenRecord& rec : goldens().records) {
    EXPECT_TRUE(seen.insert(rec.digest_hex).second)
        << "duplicate digest across stacks: vector '" << rec.vector_name
        << "' stack '" << rec.stack << "'";
  }
}

}  // namespace
}  // namespace wafp::testing
