// Corpus replay: every committed `<seed> <digest>` reproducer must render
// to exactly its recorded digest on the portable engine config. The corpus
// pins past fuzz findings (and a baseline seed range) so a regression that
// only one particular topology triggers stays caught forever.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "testing/graph_gen.h"

namespace wafp::testing {
namespace {

struct CorpusEntry {
  std::string file;
  std::uint64_t seed = 0;
  std::uint64_t digest = 0;
};

std::vector<CorpusEntry> load_corpus() {
  const std::string dir = std::string(WAFP_CONFORMANCE_DIR) + "/corpus";
  std::vector<CorpusEntry> entries;
  std::vector<std::filesystem::path> files;
  for (const auto& item : std::filesystem::directory_iterator(dir)) {
    if (item.path().extension() == ".corpus") files.push_back(item.path());
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& path : files) {
    std::ifstream in(path);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      CorpusEntry entry;
      entry.file = path.filename().string();
      std::istringstream fields(line);
      std::string digest_hex;
      if (!(fields >> entry.seed >> digest_hex) || digest_hex.size() != 16) {
        ADD_FAILURE() << entry.file << ":" << line_no
                      << ": malformed corpus line '" << line << "'";
        continue;
      }
      entry.digest = std::stoull(digest_hex, nullptr, 16);
      entries.push_back(entry);
    }
  }
  return entries;
}

TEST(CorpusTest, EveryReproducerStillMatches) {
  const std::vector<CorpusEntry> corpus = load_corpus();
  ASSERT_GE(corpus.size(), 16u) << "corpus went missing or nearly empty";
  for (const CorpusEntry& entry : corpus) {
    const std::uint64_t live = seeded_graph_digest(entry.seed);
    char expected[24], got[24];
    std::snprintf(expected, sizeof(expected), "%016llx",
                  static_cast<unsigned long long>(entry.digest));
    std::snprintf(got, sizeof(got), "%016llx",
                  static_cast<unsigned long long>(live));
    EXPECT_EQ(live, entry.digest)
        << entry.file << " seed " << entry.seed << ": expected digest "
        << expected << ", rendered " << got;
  }
}

}  // namespace
}  // namespace wafp::testing
