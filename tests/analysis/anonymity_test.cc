#include "analysis/anonymity.h"

#include <gtest/gtest.h>

namespace wafp::analysis {
namespace {

TEST(AnonymityTest, SetSizesPerUser) {
  const std::vector<int> labels = {0, 0, 0, 1, 2, 2};
  const auto sizes = anonymity_set_sizes(labels);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3, 3, 1, 2, 2}));
}

TEST(AnonymityTest, StatsOnMixedClusters) {
  const std::vector<int> labels = {0, 0, 0, 0, 0, 1, 2, 2, 3, 3};
  const AnonymityStats stats = anonymity_from_labels(labels);
  EXPECT_EQ(stats.min_k, 1u);
  EXPECT_EQ(stats.max_k, 5u);
  EXPECT_EQ(stats.unique_users, 1u);
  EXPECT_EQ(stats.below_5, 5u);   // the 1 + two pairs
  EXPECT_EQ(stats.below_20, 10u);
  EXPECT_NEAR(stats.expected_k, (5 * 5 + 1 * 1 + 2 * 2 + 2 * 2) / 10.0,
              1e-12);
}

TEST(AnonymityTest, EveryoneUnique) {
  const std::vector<int> labels = {0, 1, 2, 3};
  const AnonymityStats stats = anonymity_from_labels(labels);
  EXPECT_EQ(stats.min_k, 1u);
  EXPECT_EQ(stats.median_k, 1u);
  EXPECT_EQ(stats.unique_users, 4u);
  EXPECT_DOUBLE_EQ(stats.expected_k, 1.0);
}

TEST(AnonymityTest, OneBigCrowd) {
  const std::vector<int> labels(100, 7);
  const AnonymityStats stats = anonymity_from_labels(labels);
  EXPECT_EQ(stats.min_k, 100u);
  EXPECT_EQ(stats.unique_users, 0u);
  EXPECT_EQ(stats.below_20, 0u);
  EXPECT_DOUBLE_EQ(stats.expected_k, 100.0);
}

TEST(AnonymityTest, EmptyInput) {
  const AnonymityStats stats = anonymity_from_labels({});
  EXPECT_EQ(stats.min_k, 0u);
  EXPECT_EQ(stats.max_k, 0u);
}

}  // namespace
}  // namespace wafp::analysis
