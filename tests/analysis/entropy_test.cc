#include "analysis/entropy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace wafp::analysis {
namespace {

TEST(EntropyTest, UniformDistribution) {
  const std::vector<std::size_t> sizes = {25, 25, 25, 25};
  EXPECT_NEAR(shannon_entropy_bits(sizes), 2.0, 1e-12);
}

TEST(EntropyTest, SingleCluster) {
  const std::vector<std::size_t> sizes = {100};
  EXPECT_EQ(shannon_entropy_bits(sizes), 0.0);
}

TEST(EntropyTest, KnownAsymmetricCase) {
  // p = {0.5, 0.25, 0.25} -> H = 1.5 bits.
  const std::vector<std::size_t> sizes = {2, 1, 1};
  EXPECT_NEAR(shannon_entropy_bits(sizes), 1.5, 1e-12);
}

TEST(EntropyTest, EmptyAndZeroClusters) {
  EXPECT_EQ(shannon_entropy_bits({}), 0.0);
  const std::vector<std::size_t> sizes = {10, 0, 0};
  EXPECT_EQ(shannon_entropy_bits(sizes), 0.0);
}

TEST(NormalizedEntropyTest, AllUniqueIsOne) {
  const std::vector<std::size_t> sizes(64, 1);
  EXPECT_NEAR(normalized_entropy(sizes, 64), 1.0, 1e-12);
}

TEST(NormalizedEntropyTest, MatchesPaperFormula) {
  // e_norm = e / log2(U); check with the paper's own numbers: DC has
  // e = 1.935 over U = 2093 -> e_norm = 1.935 / log2(2093) = 0.1754.
  EXPECT_NEAR(1.935 / std::log2(2093.0), 0.175, 0.001);
}

TEST(DiversityStatsTest, CountsDistinctAndUnique) {
  const std::vector<int> labels = {0, 0, 1, 2, 2, 2, 3};
  const DiversityStats stats = diversity_from_labels(labels);
  EXPECT_EQ(stats.distinct, 4u);
  EXPECT_EQ(stats.unique, 2u);  // labels 1 and 3
  EXPECT_GT(stats.entropy, 0.0);
  EXPECT_LT(stats.normalized, 1.0);
}

TEST(DiversityStatsTest, AllSameLabel) {
  const std::vector<int> labels(50, 7);
  const DiversityStats stats = diversity_from_labels(labels);
  EXPECT_EQ(stats.distinct, 1u);
  EXPECT_EQ(stats.unique, 0u);
  EXPECT_EQ(stats.entropy, 0.0);
}

TEST(CombineLabelsTest, TupleSemantics) {
  const std::vector<std::vector<int>> sets = {
      {0, 0, 1, 1},
      {0, 1, 0, 0},
  };
  const std::vector<int> combined = combine_labels(sets);
  // Tuples: (0,0), (0,1), (1,0), (1,0) -> 3 distinct.
  EXPECT_EQ(combined[0] == combined[1], false);
  EXPECT_EQ(combined[2], combined[3]);
  EXPECT_EQ(diversity_from_labels(combined).distinct, 3u);
}

TEST(CombineLabelsTest, CombinationAtLeastAsDiverse) {
  // §4: "the diversity of a combination vector will at least be as much as
  // the diversity of the most diverse component vector."
  const std::vector<std::vector<int>> sets = {
      {0, 1, 2, 0, 1, 2, 0, 1},
      {0, 0, 0, 0, 1, 1, 1, 1},
  };
  const std::vector<int> combined = combine_labels(sets);
  const auto combined_stats = diversity_from_labels(combined);
  for (const auto& set : sets) {
    EXPECT_GE(combined_stats.distinct, diversity_from_labels(set).distinct);
    EXPECT_GE(combined_stats.entropy,
              diversity_from_labels(set).entropy - 1e-12);
  }
}

TEST(CombineLabelsTest, SingleSetIsIsomorphic) {
  const std::vector<std::vector<int>> sets = {{5, 7, 5, 9}};
  const std::vector<int> combined = combine_labels(sets);
  EXPECT_EQ(combined[0], combined[2]);
  EXPECT_NE(combined[0], combined[1]);
  EXPECT_NE(combined[1], combined[3]);
}

TEST(CombineLabelsTest, EmptyInput) {
  EXPECT_TRUE(combine_labels({}).empty());
}

}  // namespace
}  // namespace wafp::analysis
