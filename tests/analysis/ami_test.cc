#include "analysis/ami.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace wafp::analysis {
namespace {

TEST(ContingencyTest, BuildsCorrectTable) {
  const std::vector<int> a = {0, 0, 1, 1, 1};
  const std::vector<int> b = {0, 1, 1, 1, 0};
  const ContingencyTable table = build_contingency(a, b);
  EXPECT_EQ(table.total, 5u);
  EXPECT_EQ(table.row_sums.size(), 2u);
  EXPECT_EQ(table.col_sums.size(), 2u);
  EXPECT_EQ(table.cells[0][0], 1u);
  EXPECT_EQ(table.cells[0][1], 1u);
  EXPECT_EQ(table.cells[1][1], 2u);
  EXPECT_EQ(table.cells[1][0], 1u);
}

TEST(MutualInformationTest, IdenticalClusteringsEqualEntropy) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  const ContingencyTable table = build_contingency(a, a);
  const double mi = mutual_information(table);
  const double h = marginal_entropy(table.row_sums, table.total);
  EXPECT_NEAR(mi, h, 1e-12);
  EXPECT_NEAR(h, std::log(3.0), 1e-12);
}

TEST(MutualInformationTest, IndependentClusteringsNearZero) {
  const std::vector<int> a = {0, 0, 1, 1};
  const std::vector<int> b = {0, 1, 0, 1};
  EXPECT_NEAR(mutual_information(build_contingency(a, b)), 0.0, 1e-12);
}

TEST(AmiTest, IdenticalIsOne) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2, 3, 3};
  EXPECT_NEAR(adjusted_mutual_information(a, a), 1.0, 1e-9);
}

TEST(AmiTest, LabelPermutationInvariant) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  const std::vector<int> b = {7, 7, 5, 5, 9, 9};  // same partition, renamed
  EXPECT_NEAR(adjusted_mutual_information(a, b), 1.0, 1e-9);
}

TEST(AmiTest, Symmetric) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2, 0, 1};
  const std::vector<int> b = {0, 1, 1, 1, 2, 0, 0, 2};
  EXPECT_NEAR(adjusted_mutual_information(a, b),
              adjusted_mutual_information(b, a), 1e-12);
}

TEST(AmiTest, RandomClusteringsNearZero) {
  // The whole point of the chance adjustment: random label assignments
  // score ~0 even though raw MI is positive.
  util::Rng rng(99);
  std::vector<int> a(600), b(600);
  for (auto& v : a) v = static_cast<int>(rng.next_below(12));
  for (auto& v : b) v = static_cast<int>(rng.next_below(12));
  const double ami = adjusted_mutual_information(a, b);
  EXPECT_LT(std::fabs(ami), 0.06);
  // NMI without correction stays clearly positive here.
  EXPECT_GT(normalized_mutual_information(a, b), 0.02);
}

TEST(AmiTest, SingleClusterBothSidesIsOne) {
  const std::vector<int> a(10, 0);
  EXPECT_EQ(adjusted_mutual_information(a, a), 1.0);
}

TEST(AmiTest, OneUserMovedStaysHigh) {
  // Clustering disagreement from a single user must barely dent the score
  // (this is why the paper's collated fingerprints score ~0.99).
  std::vector<int> a(100), b(100);
  for (int i = 0; i < 100; ++i) a[i] = b[i] = i / 25;
  b[0] = 3;  // one user moves cluster
  const double ami = adjusted_mutual_information(a, b);
  EXPECT_GT(ami, 0.9);
  EXPECT_LT(ami, 1.0);
}

TEST(AmiTest, PartialAgreementBetweenZeroAndOne) {
  const std::vector<int> a = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<int> b = {0, 0, 0, 1, 1, 1, 1, 1};
  const double ami = adjusted_mutual_information(a, b);
  EXPECT_GT(ami, 0.0);
  EXPECT_LT(ami, 1.0);
}

TEST(AmiTest, RefinementScoresBelowOne) {
  // Splitting one cluster into two is a real disagreement.
  const std::vector<int> coarse = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<int> fine = {0, 0, 2, 2, 1, 1, 3, 3};
  const double ami = adjusted_mutual_information(coarse, fine);
  EXPECT_GT(ami, 0.2);
  EXPECT_LT(ami, 0.9);
}

TEST(EmiTest, ExpectedMiPositiveAndBelowEntropy) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2, 3, 3};
  const std::vector<int> b = {0, 1, 2, 3, 0, 1, 2, 3};
  const ContingencyTable table = build_contingency(a, b);
  const double emi = expected_mutual_information(table);
  const double h = marginal_entropy(table.row_sums, table.total);
  EXPECT_GT(emi, 0.0);
  EXPECT_LT(emi, h);
}

TEST(NmiTest, BoundsAndIdentity) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(normalized_mutual_information(a, a), 1.0, 1e-12);
  const std::vector<int> b = {0, 1, 0, 1, 0, 1};
  const double nmi = normalized_mutual_information(a, b);
  EXPECT_GE(nmi, 0.0);
  EXPECT_LE(nmi, 1.0);
}

}  // namespace
}  // namespace wafp::analysis
