#include "analysis/bootstrap.h"

#include <gtest/gtest.h>

#include "analysis/entropy.h"
#include "util/rng.h"

namespace wafp::analysis {
namespace {

double entropy_statistic(std::span<const int> labels) {
  return diversity_from_labels(labels).entropy;
}

TEST(BootstrapTest, PointEstimateMatchesDirectComputation) {
  const std::vector<int> labels = {0, 0, 1, 1, 2, 2, 3, 3};
  const BootstrapInterval interval =
      bootstrap_labels(labels, entropy_statistic, 200, 0.95, 7);
  EXPECT_DOUBLE_EQ(interval.point, 3.0 - 1.0);  // H = 2 bits for 4 equal
}

TEST(BootstrapTest, IntervalContainsPointForLargeSamples) {
  util::Rng rng(5);
  std::vector<int> labels(2000);
  for (auto& v : labels) v = static_cast<int>(rng.next_below(16));
  const BootstrapInterval interval =
      bootstrap_labels(labels, entropy_statistic, 300, 0.95, 11);
  EXPECT_LE(interval.low, interval.point + 0.02);
  EXPECT_GE(interval.high, interval.point - 0.02);
  EXPECT_LT(interval.high - interval.low, 0.3);
  EXPECT_GT(interval.std_error, 0.0);
}

TEST(BootstrapTest, WiderConfidenceWiderInterval) {
  util::Rng rng(9);
  std::vector<int> labels(300);
  for (auto& v : labels) v = static_cast<int>(rng.next_below(30));
  const auto narrow = bootstrap_labels(labels, entropy_statistic, 400, 0.5, 3);
  const auto wide = bootstrap_labels(labels, entropy_statistic, 400, 0.99, 3);
  EXPECT_GE(wide.high - wide.low, narrow.high - narrow.low);
}

TEST(BootstrapTest, DeterministicForSeed) {
  const std::vector<int> labels = {0, 1, 1, 2, 2, 2, 3};
  const auto a = bootstrap_labels(labels, entropy_statistic, 100, 0.9, 42);
  const auto b = bootstrap_labels(labels, entropy_statistic, 100, 0.9, 42);
  EXPECT_EQ(a.low, b.low);
  EXPECT_EQ(a.high, b.high);
}

TEST(BootstrapTest, EmptyInputsAreSafe) {
  const auto interval =
      bootstrap_labels({}, entropy_statistic, 100, 0.95, 1);
  EXPECT_EQ(interval.point, 0.0);
  const std::vector<int> labels = {1, 2};
  const auto zero_resamples =
      bootstrap_labels(labels, entropy_statistic, 0, 0.95, 1);
  EXPECT_EQ(zero_resamples.low, 0.0);
}

}  // namespace
}  // namespace wafp::analysis
