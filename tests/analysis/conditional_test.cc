#include "analysis/conditional.h"

#include <gtest/gtest.h>

#include "analysis/entropy.h"

namespace wafp::analysis {
namespace {

TEST(ConditionalEntropyTest, IdenticalVectorsLeaveNothing) {
  const std::vector<int> x = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(conditional_entropy_bits(x, x), 0.0, 1e-12);
}

TEST(ConditionalEntropyTest, IndependentVectorsLeaveEverything) {
  const std::vector<int> x = {0, 0, 1, 1, 0, 0, 1, 1};
  const std::vector<int> y = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(conditional_entropy_bits(x, y), 1.0, 1e-12);  // H(x) = 1 bit
  EXPECT_NEAR(mutual_information_bits(x, y), 0.0, 1e-12);
}

TEST(ConditionalEntropyTest, RefinementIsFullyDetermined) {
  // y refines x: knowing y determines x entirely.
  const std::vector<int> x = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<int> y = {0, 0, 1, 1, 2, 2, 3, 3};
  EXPECT_NEAR(conditional_entropy_bits(x, y), 0.0, 1e-12);
  // ... but not the other way around.
  EXPECT_NEAR(conditional_entropy_bits(y, x), 1.0, 1e-12);
}

TEST(ConditionalEntropyTest, ChainRuleHolds) {
  const std::vector<int> x = {0, 1, 2, 0, 1, 2, 0, 1, 2, 1};
  const std::vector<int> y = {0, 0, 1, 1, 2, 2, 0, 1, 2, 0};
  const double h_x = diversity_from_labels(x).entropy;
  const double mi = mutual_information_bits(x, y);
  EXPECT_NEAR(conditional_entropy_bits(x, y), h_x - mi, 1e-12);
  // Symmetric MI.
  EXPECT_NEAR(mutual_information_bits(x, y), mutual_information_bits(y, x),
              1e-12);
}

TEST(ConditionalEntropyTest, MatrixDiagonalZeroAndShape) {
  const std::vector<std::vector<int>> sets = {
      {0, 0, 1, 1}, {0, 1, 0, 1}, {0, 1, 2, 3}};
  const auto matrix = conditional_entropy_matrix(sets);
  ASSERT_EQ(matrix.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(matrix[i][i], 0.0);
    // Conditioning on the all-distinct vector leaves nothing.
    EXPECT_NEAR(matrix[i][2], 0.0, 1e-12);
  }
  // The all-distinct vector retains entropy given the coarse ones.
  EXPECT_GT(matrix[2][0], 0.9);
}

}  // namespace
}  // namespace wafp::analysis
