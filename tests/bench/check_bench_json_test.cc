// check_bench_json's CLI contract for the parallel-speedup gate: a
// --require-min-parallel floor is enforced exactly like --require-min when
// the bench file records hardware_concurrency >= 2, and is SKIPPED — with
// a visible note, exit 0 — when the bench ran on a single-core host, where
// any speedup figure is timeslicing noise. Exercised end-to-end through
// the real binary (path baked in by tests/CMakeLists.txt) because the gate
// is a CI shell step, not a library call.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef WAFP_CHECK_BENCH_JSON_BIN
#error "build must define WAFP_CHECK_BENCH_JSON_BIN (see tests/CMakeLists.txt)"
#endif

struct CheckerResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CheckerResult run_checker(const std::string& json_body,
                          const std::string& args, const std::string& tag) {
  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "check_bench_" + tag + ".json";
  const std::string log_path = dir + "check_bench_" + tag + ".log";
  {
    std::ofstream out(json_path);
    out << json_body;
  }
  const std::string command = std::string(WAFP_CHECK_BENCH_JSON_BIN) + " " +
                              json_path + " " + args + " > " + log_path +
                              " 2>&1";
  const int status = std::system(command.c_str());
  CheckerResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream log(log_path);
  std::ostringstream buf;
  buf << log.rdbuf();
  result.output = buf.str();
  return result;
}

constexpr const char* kSingleCoreJson = R"({
  "benchmark": "parallel_pipeline",
  "hardware_concurrency": 1,
  "effective_parallelism": 1.0,
  "speedup_max_threads_vs_serial": 0.4
})";

constexpr const char* kMultiCoreJson = R"({
  "benchmark": "parallel_pipeline",
  "hardware_concurrency": 8,
  "effective_parallelism": 1.1,
  "speedup_max_threads_vs_serial": 1.1
})";

TEST(CheckBenchJsonTest, ParallelFloorSkippedOnSingleCoreHost) {
  const CheckerResult result = run_checker(
      kSingleCoreJson, "--require-min-parallel effective_parallelism 1.5",
      "skip_single_core");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("skipping parallel floor"), std::string::npos)
      << "the waiver must be visible in the CI log, got: " << result.output;
}

TEST(CheckBenchJsonTest, ParallelFloorSkippedWhenConcurrencyUnrecorded) {
  const CheckerResult result = run_checker(
      R"({"benchmark": "x", "effective_parallelism": 0.9})",
      "--require-min-parallel effective_parallelism 1.5", "skip_unrecorded");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("skipping parallel floor"), std::string::npos)
      << result.output;
}

TEST(CheckBenchJsonTest, ParallelFloorEnforcedOnMultiCoreHost) {
  const CheckerResult failing = run_checker(
      kMultiCoreJson, "--require-min-parallel effective_parallelism 1.5",
      "enforce_fail");
  EXPECT_EQ(failing.exit_code, 1) << failing.output;
  EXPECT_NE(failing.output.find("below the required minimum"),
            std::string::npos)
      << failing.output;

  const CheckerResult passing = run_checker(
      kMultiCoreJson, "--require-min-parallel effective_parallelism 1.05",
      "enforce_pass");
  EXPECT_EQ(passing.exit_code, 0) << passing.output;
}

TEST(CheckBenchJsonTest, PlainRequireMinIgnoresHardwareConcurrency) {
  // The unconditional floor must NOT inherit the single-core waiver.
  const CheckerResult result =
      run_checker(kSingleCoreJson, "--require-min effective_parallelism 1.5",
                  "plain_min");
  EXPECT_EQ(result.exit_code, 1) << result.output;
}

TEST(CheckBenchJsonTest, RequiredKeysStillCheckedAlongsideSkip) {
  const CheckerResult result = run_checker(
      kSingleCoreJson,
      "--require-min-parallel effective_parallelism 1.5 --require missing_key",
      "skip_plus_missing");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("missing required key"), std::string::npos)
      << result.output;
}

}  // namespace
