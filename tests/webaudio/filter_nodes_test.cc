#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "webaudio/biquad_filter_node.h"
#include "webaudio/channel_merger_node.h"
#include "webaudio/delay_node.h"
#include "webaudio/gain_node.h"
#include "webaudio/offline_audio_context.h"
#include "webaudio/oscillator_node.h"
#include "webaudio/source_nodes.h"
#include "webaudio/wave_shaper_node.h"

namespace wafp::webaudio {
namespace {

constexpr double kSampleRate = 44100.0;

/// RMS of a tone after passing through a biquad of the given type/config.
double filtered_rms(BiquadFilterType type, double filter_hz, double tone_hz,
                    double q = 1.0, double gain_db = 0.0) {
  OfflineAudioContext ctx(1, 16384, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(tone_hz);
  auto& filter = ctx.create<BiquadFilterNode>();
  filter.set_type(type);
  filter.frequency().set_value(filter_hz);
  filter.q().set_value(q);
  filter.gain().set_value(gain_db);
  osc.connect(filter);
  filter.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer buffer = ctx.start_rendering();
  double acc = 0.0;
  // Skip the settle-in transient.
  for (std::size_t i = 8192; i < 16384; ++i) {
    acc += static_cast<double>(buffer.channel(0)[i]) * buffer.channel(0)[i];
  }
  return std::sqrt(acc / 8192.0);
}

TEST(BiquadFilterTest, LowpassPassesLowRejectsHigh) {
  const double low = filtered_rms(BiquadFilterType::kLowpass, 1000.0, 200.0);
  const double high = filtered_rms(BiquadFilterType::kLowpass, 1000.0, 8000.0);
  EXPECT_GT(low, 0.5);
  EXPECT_LT(high, 0.1);
}

TEST(BiquadFilterTest, HighpassPassesHighRejectsLow) {
  const double low = filtered_rms(BiquadFilterType::kHighpass, 2000.0, 200.0);
  const double high =
      filtered_rms(BiquadFilterType::kHighpass, 2000.0, 10000.0);
  EXPECT_LT(low, 0.1);
  EXPECT_GT(high, 0.5);
}

TEST(BiquadFilterTest, BandpassSelectsCentre) {
  const double centre =
      filtered_rms(BiquadFilterType::kBandpass, 3000.0, 3000.0, 5.0);
  const double off = filtered_rms(BiquadFilterType::kBandpass, 3000.0, 500.0,
                                  5.0);
  EXPECT_GT(centre, 3.0 * off);
}

TEST(BiquadFilterTest, NotchRejectsCentre) {
  const double centre =
      filtered_rms(BiquadFilterType::kNotch, 3000.0, 3000.0, 10.0);
  const double off =
      filtered_rms(BiquadFilterType::kNotch, 3000.0, 500.0, 10.0);
  EXPECT_LT(centre, off / 3.0);
}

TEST(BiquadFilterTest, PeakingBoostsCentre) {
  const double boosted =
      filtered_rms(BiquadFilterType::kPeaking, 3000.0, 3000.0, 2.0, 12.0);
  const double flat =
      filtered_rms(BiquadFilterType::kPeaking, 3000.0, 3000.0, 2.0, 0.0);
  EXPECT_GT(boosted, flat * 1.5);
}

TEST(BiquadFilterTest, AllpassPreservesMagnitude) {
  const double through =
      filtered_rms(BiquadFilterType::kAllpass, 3000.0, 1000.0);
  EXPECT_NEAR(through, 1.0 / std::numbers::sqrt2, 0.05);  // sine RMS
}

TEST(BiquadFilterTest, ShelvesBoostTheirBand) {
  const double low_boosted =
      filtered_rms(BiquadFilterType::kLowshelf, 2000.0, 300.0, 1.0, 12.0);
  const double low_flat =
      filtered_rms(BiquadFilterType::kLowshelf, 2000.0, 300.0, 1.0, 0.0);
  EXPECT_GT(low_boosted, low_flat * 1.5);

  const double high_boosted =
      filtered_rms(BiquadFilterType::kHighshelf, 2000.0, 10000.0, 1.0, 12.0);
  const double high_flat =
      filtered_rms(BiquadFilterType::kHighshelf, 2000.0, 10000.0, 1.0, 0.0);
  EXPECT_GT(high_boosted, high_flat * 1.5);
}

TEST(BiquadFilterTest, FrequencyResponseMatchesTimeDomain) {
  OfflineAudioContext ctx(1, 128, kSampleRate, EngineConfig::reference());
  auto& filter = ctx.create<BiquadFilterNode>();
  filter.set_type(BiquadFilterType::kLowpass);
  filter.frequency().set_value(1000.0);

  const std::vector<float> freqs = {200.0f, 1000.0f, 8000.0f};
  std::vector<float> mag(3), phase(3);
  filter.get_frequency_response(freqs, mag, phase);
  EXPECT_NEAR(mag[0], 1.0f, 0.1f);   // passband
  EXPECT_LT(mag[2], 0.1f);           // stopband
  EXPECT_GT(mag[1], mag[2]);
  // Phase is within (-pi, pi].
  for (const float p : phase) {
    EXPECT_GE(p, -static_cast<float>(std::numbers::pi) - 1e-5f);
    EXPECT_LE(p, static_cast<float>(std::numbers::pi) + 1e-5f);
  }
}

TEST(BiquadFilterTest, FrequencyResponseLengthValidation) {
  OfflineAudioContext ctx(1, 128, kSampleRate, EngineConfig::reference());
  auto& filter = ctx.create<BiquadFilterNode>();
  const std::vector<float> freqs = {100.0f, 200.0f};
  std::vector<float> mag(2), phase(3);
  EXPECT_THROW(filter.get_frequency_response(freqs, mag, phase),
               std::invalid_argument);
}

TEST(BiquadFilterTest, MathVariantVisibleInResponse) {
  // The extension-vector premise: the filter response carries the libm
  // flavour.
  auto response_with = [](dsp::MathVariant variant) {
    EngineConfig cfg;
    cfg.math = dsp::make_math_library(variant);
    cfg.fft = dsp::make_fft_engine(dsp::FftVariant::kRadix2, cfg.math);
    OfflineAudioContext ctx(1, 128, kSampleRate, std::move(cfg));
    auto& filter = ctx.create<BiquadFilterNode>();
    filter.set_type(BiquadFilterType::kPeaking);
    filter.frequency().set_value(3000.0);
    filter.gain().set_value(6.0);
    std::vector<float> freqs(64), mag(64), phase(64);
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      freqs[i] = static_cast<float>(100.0 + 300.0 * static_cast<double>(i));
    }
    filter.get_frequency_response(freqs, mag, phase);
    return mag;
  };
  EXPECT_NE(response_with(dsp::MathVariant::kPrecise),
            response_with(dsp::MathVariant::kFastPoly));
}

TEST(DelayNodeTest, IntegerDelayShiftsSignal) {
  OfflineAudioContext ctx(1, 4096, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& delay = ctx.create<DelayNode>(1.0);
  delay.delay_time().set_value(100.0 / kSampleRate);  // 100 frames
  osc.connect(delay);
  delay.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer delayed = ctx.start_rendering();

  OfflineAudioContext ref_ctx(1, 4096, kSampleRate,
                              EngineConfig::reference());
  auto& ref_osc = ref_ctx.create<OscillatorNode>(OscillatorType::kSine);
  ref_osc.frequency().set_value(440.0);
  ref_osc.connect(ref_ctx.destination());
  ref_osc.start(0.0);
  const AudioBuffer reference = ref_ctx.start_rendering();

  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(delayed.channel(0)[i], 0.0f) << i;
  }
  for (std::size_t i = 100; i < 4096; ++i) {
    ASSERT_NEAR(delayed.channel(0)[i], reference.channel(0)[i - 100], 1e-5)
        << i;
  }
}

TEST(DelayNodeTest, ZeroDelayPassesThrough) {
  OfflineAudioContext ctx(1, 1024, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& delay = ctx.create<DelayNode>(0.5);
  osc.connect(delay);
  delay.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer out = ctx.start_rendering();
  bool active = false;
  for (const float v : out.channel(0)) active |= v != 0.0f;
  EXPECT_TRUE(active);
}

TEST(DelayNodeTest, MaxDelayValidation) {
  OfflineAudioContext ctx(1, 128, kSampleRate, EngineConfig::reference());
  EXPECT_THROW(ctx.create<DelayNode>(0.0), std::invalid_argument);
  EXPECT_THROW(ctx.create<DelayNode>(200.0), std::invalid_argument);
}

TEST(WaveShaperTest, EmptyCurvePassesThrough) {
  OfflineAudioContext ctx(1, 1024, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& shaper = ctx.create<WaveShaperNode>();
  osc.connect(shaper);
  shaper.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer shaped = ctx.start_rendering();

  OfflineAudioContext ref(1, 1024, kSampleRate, EngineConfig::reference());
  auto& ref_osc = ref.create<OscillatorNode>(OscillatorType::kSine);
  ref_osc.frequency().set_value(440.0);
  ref_osc.connect(ref.destination());
  ref_osc.start(0.0);
  const AudioBuffer plain = ref.start_rendering();
  for (std::size_t i = 0; i < 1024; ++i) {
    ASSERT_EQ(shaped.channel(0)[i], plain.channel(0)[i]);
  }
}

TEST(WaveShaperTest, HardClipCurveClips) {
  OfflineAudioContext ctx(1, 4096, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& boost = ctx.create<GainNode>();
  boost.gain().set_value(4.0);
  auto& shaper = ctx.create<WaveShaperNode>();
  shaper.set_curve({-0.5f, 0.5f});  // linear curve saturating at +-0.5
  osc.connect(boost);
  boost.connect(shaper);
  shaper.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer out = ctx.start_rendering();
  float max_abs = 0.0f;
  for (const float v : out.channel(0)) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  EXPECT_NEAR(max_abs, 0.5f, 1e-4f);
}

TEST(WaveShaperTest, SinglePointCurveRejected) {
  OfflineAudioContext ctx(1, 128, kSampleRate, EngineConfig::reference());
  auto& shaper = ctx.create<WaveShaperNode>();
  EXPECT_THROW(shaper.set_curve({1.0f}), std::invalid_argument);
}

TEST(WaveShaperTest, OversamplingChangesNonlinearResult) {
  auto render = [](OverSampleType type) {
    OfflineAudioContext ctx(1, 4096, kSampleRate, EngineConfig::reference());
    auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
    osc.frequency().set_value(10000.0);
    auto& shaper = ctx.create<WaveShaperNode>();
    // A strongly nonlinear (cubic-ish) curve.
    std::vector<float> curve(9);
    for (std::size_t i = 0; i < curve.size(); ++i) {
      const float x = static_cast<float>(i) / 4.0f - 1.0f;
      curve[i] = x * x * x;
    }
    shaper.set_curve(std::move(curve));
    shaper.set_oversample(type);
    osc.connect(shaper);
    shaper.connect(ctx.destination());
    osc.start(0.0);
    const AudioBuffer out = ctx.start_rendering();
    return std::vector<float>(out.channel(0).begin(), out.channel(0).end());
  };
  const auto none = render(OverSampleType::kNone);
  const auto two = render(OverSampleType::k2x);
  const auto four = render(OverSampleType::k4x);
  EXPECT_NE(none, two);
  EXPECT_NE(two, four);
}

TEST(ConstantSourceTest, EmitsOffset) {
  OfflineAudioContext ctx(1, 512, kSampleRate, EngineConfig::reference());
  auto& source = ctx.create<ConstantSourceNode>();
  source.offset().set_value(0.75);
  source.connect(ctx.destination());
  source.start(0.0);
  const AudioBuffer out = ctx.start_rendering();
  for (const float v : out.channel(0)) EXPECT_EQ(v, 0.75f);
}

TEST(ConstantSourceTest, ModulatesParameters) {
  // ConstantSource into a gain param acts as a static gain change.
  OfflineAudioContext ctx(1, 1024, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& gain = ctx.create<GainNode>();
  gain.gain().set_value(0.0);
  auto& mod = ctx.create<ConstantSourceNode>();
  mod.offset().set_value(0.5);
  mod.connect(gain.gain());
  osc.connect(gain);
  gain.connect(ctx.destination());
  osc.start(0.0);
  mod.start(0.0);
  const AudioBuffer out = ctx.start_rendering();
  float max_abs = 0.0f;
  for (const float v : out.channel(0)) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  EXPECT_NEAR(max_abs, 0.5f, 0.02f);
}

TEST(BufferSourceTest, PlaysBufferVerbatimAtUnitRate) {
  auto buffer = std::make_shared<AudioBuffer>(1, 300, kSampleRate);
  for (std::size_t i = 0; i < 300; ++i) {
    buffer->channel(0)[i] = static_cast<float>(i) / 300.0f;
  }
  OfflineAudioContext ctx(1, 512, kSampleRate, EngineConfig::reference());
  auto& source = ctx.create<AudioBufferSourceNode>();
  source.set_buffer(buffer);
  source.connect(ctx.destination());
  source.start(0.0);
  const AudioBuffer out = ctx.start_rendering();
  for (std::size_t i = 0; i < 300; ++i) {
    ASSERT_NEAR(out.channel(0)[i], buffer->channel(0)[i], 1e-6) << i;
  }
  for (std::size_t i = 301; i < 512; ++i) {
    EXPECT_EQ(out.channel(0)[i], 0.0f) << i;  // ended, not looping
  }
}

TEST(BufferSourceTest, LoopWrapsAround) {
  auto buffer = std::make_shared<AudioBuffer>(1, 100, kSampleRate);
  for (std::size_t i = 0; i < 100; ++i) buffer->channel(0)[i] = 1.0f;
  OfflineAudioContext ctx(1, 512, kSampleRate, EngineConfig::reference());
  auto& source = ctx.create<AudioBufferSourceNode>();
  source.set_buffer(buffer);
  source.set_loop(true);
  source.connect(ctx.destination());
  source.start(0.0);
  const AudioBuffer out = ctx.start_rendering();
  for (std::size_t i = 0; i < 512; ++i) EXPECT_EQ(out.channel(0)[i], 1.0f);
}

TEST(BufferSourceTest, DoublePlaybackRateHalvesDuration) {
  auto buffer = std::make_shared<AudioBuffer>(1, 400, kSampleRate);
  for (std::size_t i = 0; i < 400; ++i) buffer->channel(0)[i] = 1.0f;
  OfflineAudioContext ctx(1, 512, kSampleRate, EngineConfig::reference());
  auto& source = ctx.create<AudioBufferSourceNode>();
  source.set_buffer(buffer);
  source.playback_rate().set_value(2.0);
  source.connect(ctx.destination());
  source.start(0.0);
  const AudioBuffer out = ctx.start_rendering();
  EXPECT_NE(out.channel(0)[150], 0.0f);
  EXPECT_EQ(out.channel(0)[250], 0.0f);  // done after ~200 frames
}

TEST(BufferSourceTest, NullBufferRejected) {
  OfflineAudioContext ctx(1, 128, kSampleRate, EngineConfig::reference());
  auto& source = ctx.create<AudioBufferSourceNode>();
  EXPECT_THROW(source.set_buffer(nullptr), std::invalid_argument);
}

TEST(StereoPannerTest, HardLeftSilencesRight) {
  OfflineAudioContext ctx(2, 1024, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& panner = ctx.create<StereoPannerNode>();
  panner.pan().set_value(-1.0);
  osc.connect(panner);
  panner.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer out = ctx.start_rendering();
  float left = 0.0f, right = 0.0f;
  for (std::size_t i = 0; i < 1024; ++i) {
    left = std::max(left, std::fabs(out.channel(0)[i]));
    right = std::max(right, std::fabs(out.channel(1)[i]));
  }
  EXPECT_GT(left, 0.5f);
  EXPECT_NEAR(right, 0.0f, 1e-6f);
}

TEST(StereoPannerTest, CentreIsBalanced) {
  OfflineAudioContext ctx(2, 1024, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& panner = ctx.create<StereoPannerNode>();
  panner.pan().set_value(0.0);
  osc.connect(panner);
  panner.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer out = ctx.start_rendering();
  for (std::size_t i = 0; i < 1024; ++i) {
    ASSERT_NEAR(out.channel(0)[i], out.channel(1)[i], 1e-4f) << i;
  }
}

TEST(ChannelSplitterTest, SelectsRequestedChannel) {
  OfflineAudioContext ctx(1, 512, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& merger = ctx.create<ChannelMergerNode>(2);
  osc.connect(merger, 1);  // signal only on channel 1
  auto& splitter0 = ctx.create<ChannelSplitterNode>(0);
  auto& splitter1 = ctx.create<ChannelSplitterNode>(1);
  merger.connect(splitter0);
  merger.connect(splitter1);
  auto& sink = ctx.create<GainNode>();
  splitter1.connect(sink);
  sink.connect(ctx.destination());
  splitter0.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer out = ctx.start_rendering();
  bool active = false;
  for (const float v : out.channel(0)) active |= std::fabs(v) > 0.1f;
  EXPECT_TRUE(active);  // channel 1 carried the tone through splitter1
  EXPECT_THROW(ctx.create<ChannelSplitterNode>(kMaxChannels),
               std::invalid_argument);
}

}  // namespace
}  // namespace wafp::webaudio
