#include "webaudio/oscillator_node.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "webaudio/offline_audio_context.h"

namespace wafp::webaudio {
namespace {

constexpr double kSampleRate = 44100.0;

AudioBuffer render_oscillator(OscillatorType type, double frequency,
                              std::size_t length = 8192) {
  OfflineAudioContext ctx(1, length, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(type);
  osc.frequency().set_value(frequency);
  osc.connect(ctx.destination());
  osc.start(0.0);
  return ctx.start_rendering();
}

/// Count positive-going zero crossings to estimate frequency.
double estimate_frequency(std::span<const float> samples) {
  int crossings = 0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i - 1] <= 0.0f && samples[i] > 0.0f) ++crossings;
  }
  return static_cast<double>(crossings) * kSampleRate /
         static_cast<double>(samples.size());
}

class OscillatorShapeTest : public ::testing::TestWithParam<OscillatorType> {};

TEST_P(OscillatorShapeTest, FrequencyMatchesRequest) {
  const AudioBuffer buffer = render_oscillator(GetParam(), 440.0);
  EXPECT_NEAR(estimate_frequency(buffer.channel(0)), 440.0, 10.0);
}

TEST_P(OscillatorShapeTest, AmplitudeNormalizedToOne) {
  const AudioBuffer buffer = render_oscillator(GetParam(), 440.0);
  float max_abs = 0.0f;
  for (const float v : buffer.channel(0)) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  EXPECT_GT(max_abs, 0.5f);
  EXPECT_LE(max_abs, 1.001f);
}

TEST_P(OscillatorShapeTest, DeterministicAcrossRenders) {
  const AudioBuffer a = render_oscillator(GetParam(), 10000.0);
  const AudioBuffer b = render_oscillator(GetParam(), 10000.0);
  for (std::size_t i = 0; i < a.length(); ++i) {
    ASSERT_EQ(a.channel(0)[i], b.channel(0)[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    StandardShapes, OscillatorShapeTest,
    ::testing::Values(OscillatorType::kSine, OscillatorType::kSquare,
                      OscillatorType::kSawtooth, OscillatorType::kTriangle),
    [](const auto& info) { return std::string(to_string(info.param)); });

TEST(OscillatorTest, SineMatchesAnalyticWaveform) {
  const AudioBuffer buffer = render_oscillator(OscillatorType::kSine, 441.0);
  // Compare against std::sin up to wavetable interpolation error.
  for (std::size_t i = 200; i < 1000; ++i) {
    const double t = static_cast<double>(i) / kSampleRate;
    const double want = std::sin(2.0 * std::numbers::pi * 441.0 * t);
    EXPECT_NEAR(buffer.channel(0)[i], want, 0.01) << i;
  }
}

TEST(OscillatorTest, SquareIsBandLimitedNotNaive) {
  // A band-limited square exhibits Gibbs ripple near the edges rather than
  // ideal flat +-1 plateaus.
  const AudioBuffer buffer = render_oscillator(OscillatorType::kSquare, 440.0);
  float max_abs = 0.0f;
  for (const float v : buffer.channel(0)) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  EXPECT_GT(max_abs, 0.9f);  // overshoot or full amplitude present
}

TEST(OscillatorTest, StartIsRequiredForOutput) {
  OfflineAudioContext ctx(1, 4096, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.connect(ctx.destination());
  // No start() call: silence.
  const AudioBuffer buffer = ctx.start_rendering();
  for (const float v : buffer.channel(0)) EXPECT_EQ(v, 0.0f);
}

TEST(OscillatorTest, StopSilencesTail) {
  OfflineAudioContext ctx(1, 8192, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  osc.connect(ctx.destination());
  osc.start(0.0);
  osc.stop(4096.0 / kSampleRate);
  const AudioBuffer buffer = ctx.start_rendering();
  bool head_active = false;
  for (std::size_t i = 0; i < 4000; ++i) {
    if (buffer.channel(0)[i] != 0.0f) head_active = true;
  }
  EXPECT_TRUE(head_active);
  for (std::size_t i = 4200; i < 8192; ++i) {
    EXPECT_EQ(buffer.channel(0)[i], 0.0f) << i;
  }
}

TEST(OscillatorTest, DoubleStartThrows) {
  OfflineAudioContext ctx(1, 1024, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.start(0.0);
  EXPECT_THROW(osc.start(0.0), std::runtime_error);
}

TEST(OscillatorTest, StopBeforeStartThrows) {
  OfflineAudioContext ctx(1, 1024, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  EXPECT_THROW(osc.stop(0.5), std::runtime_error);
}

TEST(OscillatorTest, CustomTypeRequiresPeriodicWave) {
  OfflineAudioContext ctx(1, 1024, kSampleRate, EngineConfig::reference());
  EXPECT_THROW(ctx.create<OscillatorNode>(OscillatorType::kCustom),
               std::invalid_argument);
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  EXPECT_THROW(osc.set_type(OscillatorType::kCustom), std::invalid_argument);
}

TEST(OscillatorTest, CustomWaveRenders) {
  OfflineAudioContext ctx(1, 4096, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  const std::vector<double> real = {0.0, 0.5, 0.25};
  const std::vector<double> imag = {0.0, 1.0, 0.0};
  osc.set_periodic_wave(std::make_shared<const PeriodicWave>(
      real, imag, kSampleRate, ctx.config()));
  EXPECT_EQ(osc.type(), OscillatorType::kCustom);
  osc.frequency().set_value(440.0);
  osc.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer buffer = ctx.start_rendering();
  float max_abs = 0.0f;
  for (const float v : buffer.channel(0)) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  EXPECT_GT(max_abs, 0.5f);
}

TEST(OscillatorTest, DetuneShiftsFrequency) {
  OfflineAudioContext ctx(1, 16384, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  osc.detune().set_value(1200.0);  // one octave up
  osc.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer buffer = ctx.start_rendering();
  EXPECT_NEAR(estimate_frequency(buffer.channel(0)), 880.0, 15.0);
}

TEST(PeriodicWaveTest, NormalizationScalesPeakToOne) {
  const EngineConfig cfg = EngineConfig::reference();
  const std::vector<double> real = {0.0, 0.0};
  const std::vector<double> imag = {0.0, 0.001};  // tiny sine coefficient
  const PeriodicWave wave(real, imag, kSampleRate, cfg, /*normalize=*/true);
  float max_abs = 0.0f;
  for (double phase = 0.0; phase < 1.0; phase += 1.0 / 1024.0) {
    max_abs = std::max(max_abs, std::fabs(wave.sample(phase, 440.0)));
  }
  EXPECT_NEAR(max_abs, 1.0f, 1e-3);
}

TEST(PeriodicWaveTest, HighFundamentalUsesFewerPartials) {
  const EngineConfig cfg = EngineConfig::reference();
  const auto wave =
      PeriodicWave::standard(OscillatorType::kSquare, kSampleRate, cfg);
  // Near Nyquist the band-limited table is nearly a pure sine, so its shape
  // at phase 0.25 approaches sin amplitude; at low fundamentals the square
  // plateau is near 1 over a wide phase range.
  const float low_f = wave->sample(0.125, 100.0);
  const float high_f = wave->sample(0.125, 20000.0);
  EXPECT_GT(low_f, 0.8f);
  // same sign region, different shape
  EXPECT_LT(std::fabs(high_f - low_f), 1.0f);
  EXPECT_NE(low_f, high_f);
}

}  // namespace
}  // namespace wafp::webaudio
