// Robustness sweep: build random audio graphs from the full node set and
// render them. Whatever the topology (fan-in, fan-out, chains, mergers,
// splitters, parameter modulation), the engine must finish, produce finite
// samples, and stay deterministic. Catches lifetime/ordering bugs no
// targeted test reaches.
//
// The graphs come from the shared conformance generator
// (src/testing/graph_gen.h) — the same seeds render here, in the
// conformance fuzz suite, and in the committed corpus
// (tests/conformance/corpus/), so a failure in any of them is a one-line
// `seed` reproducer in all of them.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "testing/graph_gen.h"
#include "webaudio/audio_buffer.h"
#include "webaudio/engine_config.h"

namespace wafp::webaudio {
namespace {

class EngineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzzTest, RandomGraphRendersFiniteAndDeterministic) {
  // The reference config (not the portable conformance config): this suite
  // guards the engine itself, under the exact settings the unit tests use.
  const AudioBuffer first =
      testing::render_seeded_graph(GetParam(), EngineConfig::reference());
  for (std::size_t c = 0; c < first.channel_count(); ++c) {
    for (const float v : first.channel(c)) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }
  const AudioBuffer second =
      testing::render_seeded_graph(GetParam(), EngineConfig::reference());
  ASSERT_EQ(first.length(), second.length());
  ASSERT_EQ(first.channel_count(), second.channel_count());
  for (std::size_t c = 0; c < first.channel_count(); ++c) {
    for (std::size_t i = 0; i < first.length(); ++i) {
      ASSERT_EQ(first.channel(c)[i], second.channel(c)[i])
          << "channel " << c << " frame " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace wafp::webaudio
