// Robustness sweep: build random audio graphs from the full node set and
// render them. Whatever the topology (fan-in, fan-out, chains, parameter
// modulation), the engine must finish, produce finite samples, and stay
// deterministic. Catches lifetime/ordering bugs no targeted test reaches.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"
#include "webaudio/analyser_node.h"
#include "webaudio/biquad_filter_node.h"
#include "webaudio/channel_merger_node.h"
#include "webaudio/delay_node.h"
#include "webaudio/dynamics_compressor_node.h"
#include "webaudio/gain_node.h"
#include "webaudio/offline_audio_context.h"
#include "webaudio/oscillator_node.h"
#include "webaudio/source_nodes.h"
#include "webaudio/wave_shaper_node.h"

namespace wafp::webaudio {
namespace {

constexpr double kSampleRate = 44100.0;

/// Build a random graph of up to `max_nodes` processing nodes fed by a few
/// sources, all funnelled into the destination.
AudioBuffer render_random_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  OfflineAudioContext ctx(1 + rng.next_below(2), 2048 + rng.next_below(4096),
                          kSampleRate, EngineConfig::reference());

  std::vector<AudioNode*> nodes;

  // Sources.
  const std::size_t num_sources = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < num_sources; ++i) {
    if (rng.next_bool(0.8)) {
      auto& osc = ctx.create<OscillatorNode>(static_cast<OscillatorType>(
          rng.next_below(4)));
      osc.frequency().set_value(20.0 + rng.next_double() * 15000.0);
      osc.start(0.0);
      nodes.push_back(&osc);
    } else {
      auto& constant = ctx.create<ConstantSourceNode>();
      constant.offset().set_value(rng.next_double() * 2.0 - 1.0);
      constant.start(0.0);
      nodes.push_back(&constant);
    }
  }

  // Processors, each connected to 1-2 already-created nodes (keeps the
  // graph acyclic by construction).
  const std::size_t num_processors = 2 + rng.next_below(8);
  for (std::size_t i = 0; i < num_processors; ++i) {
    AudioNode* node = nullptr;
    switch (rng.next_below(6)) {
      case 0: {
        auto& gain = ctx.create<GainNode>();
        gain.gain().set_value(rng.next_double() * 2.0);
        node = &gain;
        break;
      }
      case 1: {
        auto& filter = ctx.create<BiquadFilterNode>();
        filter.set_type(static_cast<BiquadFilterType>(rng.next_below(8)));
        filter.frequency().set_value(50.0 + rng.next_double() * 18000.0);
        filter.q().set_value(0.5 + rng.next_double() * 10.0);
        filter.gain().set_value(rng.next_double() * 20.0 - 10.0);
        node = &filter;
        break;
      }
      case 2: {
        auto& delay = ctx.create<DelayNode>(0.2);
        delay.delay_time().set_value(rng.next_double() * 0.2);
        node = &delay;
        break;
      }
      case 3: {
        auto& shaper = ctx.create<WaveShaperNode>();
        std::vector<float> curve(65);
        for (std::size_t k = 0; k < curve.size(); ++k) {
          const float x = static_cast<float>(k) / 32.0f - 1.0f;
          curve[k] = std::tanh(3.0f * x);
        }
        shaper.set_curve(std::move(curve));
        shaper.set_oversample(
            static_cast<OverSampleType>(rng.next_below(3)));
        node = &shaper;
        break;
      }
      case 4: {
        node = &ctx.create<DynamicsCompressorNode>();
        break;
      }
      default: {
        node = &ctx.create<AnalyserNode>();
        break;
      }
    }
    const std::size_t fan_in = 1 + rng.next_below(2);
    for (std::size_t f = 0; f < fan_in; ++f) {
      nodes[rng.next_below(nodes.size())]->connect(*node);
    }
    nodes.push_back(node);
  }

  // Occasionally modulate a parameter with an early source.
  if (rng.next_bool(0.5)) {
    auto& mod_gain = ctx.create<GainNode>();
    mod_gain.gain().set_value(rng.next_double() * 50.0);
    nodes[0]->connect(mod_gain);
    auto& carrier = ctx.create<OscillatorNode>(OscillatorType::kSine);
    carrier.frequency().set_value(440.0);
    carrier.start(0.0);
    mod_gain.connect(carrier.frequency());
    carrier.connect(ctx.destination());
  }

  // Funnel the last few nodes into the destination.
  for (std::size_t i = nodes.size() >= 3 ? nodes.size() - 3 : 0;
       i < nodes.size(); ++i) {
    nodes[i]->connect(ctx.destination());
  }
  return ctx.start_rendering();
}

class EngineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzzTest, RandomGraphRendersFiniteAndDeterministic) {
  const AudioBuffer first = render_random_graph(GetParam());
  for (std::size_t c = 0; c < first.channel_count(); ++c) {
    for (const float v : first.channel(c)) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }
  const AudioBuffer second = render_random_graph(GetParam());
  ASSERT_EQ(first.length(), second.length());
  for (std::size_t c = 0; c < first.channel_count(); ++c) {
    for (std::size_t i = 0; i < first.length(); ++i) {
      ASSERT_EQ(first.channel(c)[i], second.channel(c)[i])
          << "channel " << c << " frame " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace wafp::webaudio
