// DelayNode interpolation-seam tests. The regression case: a delay smaller
// than ~half an ulp of the ring length used to round the wrapped read
// position up to exactly ring_frames_, indexing one sample past the ring
// buffer (see delay_node.cc). The pinning cases fix the interpolation
// behaviour at delay = 0, half a frame, and maxDelay.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "webaudio/delay_node.h"
#include "webaudio/offline_audio_context.h"
#include "webaudio/source_nodes.h"

namespace wafp::webaudio {
namespace {

constexpr double kSampleRate = 44100.0;

/// Render `input` through a DelayNode with the given settings.
AudioBuffer render_through_delay(const std::vector<float>& input,
                                 double max_delay_seconds,
                                 float delay_seconds) {
  OfflineAudioContext ctx(1, input.size(), kSampleRate,
                          EngineConfig::reference());
  auto buffer =
      std::make_shared<AudioBuffer>(1, input.size(), kSampleRate);
  std::copy(input.begin(), input.end(), buffer->channel(0).begin());
  auto& source = ctx.create<AudioBufferSourceNode>();
  source.set_buffer(buffer);
  auto& delay = ctx.create<DelayNode>(max_delay_seconds);
  delay.delay_time().set_value(delay_seconds);
  source.connect(delay);
  delay.connect(ctx.destination());
  source.start(0.0);
  return ctx.start_rendering();
}

TEST(DelayNodeSeamTest, TinyDelayDoesNotReadPastTheRing) {
  // Regression: delay 1e-20 s (a normal float, immune to flush-to-zero)
  // is 4.4e-16 frames -- far below half an ulp of the ring length, so the
  // wrapped read position at the write head rounded to exactly ring_frames_
  // and read out of bounds. A delay this small must behave as passthrough.
  std::vector<float> input(512, 0.0f);
  input[0] = 0.625f;  // distinctive first sample: the old OOB read hit here
  input[1] = -0.25f;
  input[300] = 1.0f;
  const AudioBuffer out = render_through_delay(input, 1.0, 1e-20f);
  for (std::size_t i = 0; i < input.size(); ++i) {
    ASSERT_TRUE(std::isfinite(out.channel(0)[i])) << i;
    EXPECT_NEAR(out.channel(0)[i], input[i], 1e-6f) << i;
  }
}

TEST(DelayNodeSeamTest, ZeroDelayIsBitExactPassthrough) {
  std::vector<float> input(256);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = std::sin(0.1f * static_cast<float>(i));
  }
  const AudioBuffer out = render_through_delay(input, 0.5, 0.0f);
  for (std::size_t i = 0; i < input.size(); ++i) {
    // delay_frames == 0 means the read head sits on the just-written
    // sample with frac == 0: exact, not merely approximate.
    EXPECT_EQ(out.channel(0)[i], input[i]) << i;
  }
}

TEST(DelayNodeSeamTest, HalfFrameDelayInterpolatesImpulse) {
  // A 0.5-frame delay of a unit impulse must split it across two samples.
  std::vector<float> input(128, 0.0f);
  input[0] = 1.0f;
  const AudioBuffer out = render_through_delay(
      input, 0.5, static_cast<float>(0.5 / kSampleRate));
  EXPECT_NEAR(out.channel(0)[0], 0.5f, 1e-3f);
  EXPECT_NEAR(out.channel(0)[1], 0.5f, 1e-3f);
  for (std::size_t i = 2; i < input.size(); ++i) {
    EXPECT_NEAR(out.channel(0)[i], 0.0f, 1e-6f) << i;
  }
}

TEST(DelayNodeSeamTest, FullScaleDelayShiftsByMaxDelay) {
  // delayTime == maxDelay: output is silent for maxDelay frames, then the
  // input appears (within interpolation error on a smooth ramp).
  constexpr double kMaxDelay = 0.01;  // 441 frames at 44.1 kHz
  constexpr std::size_t kDelayFrames = 441;
  std::vector<float> input(1024);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(i) / 1000.0f;  // smooth ramp from 0
  }
  const AudioBuffer out = render_through_delay(
      input, kMaxDelay, static_cast<float>(kMaxDelay));
  for (std::size_t i = 0; i < kDelayFrames; ++i) {
    EXPECT_NEAR(out.channel(0)[i], 0.0f, 1e-3f) << i;
  }
  for (std::size_t i = kDelayFrames; i < input.size(); ++i) {
    ASSERT_NEAR(out.channel(0)[i], input[i - kDelayFrames], 2e-3f) << i;
  }
}

}  // namespace
}  // namespace wafp::webaudio
