#include "webaudio/analyser_node.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "webaudio/gain_node.h"
#include "webaudio/offline_audio_context.h"
#include "webaudio/oscillator_node.h"
#include "webaudio/script_processor_node.h"

namespace wafp::webaudio {
namespace {

constexpr double kSampleRate = 44100.0;

/// Render a sine through an analyser, capturing the spectrum at the end.
std::vector<float> analyse_tone(double frequency,
                                EngineConfig cfg = EngineConfig::reference(),
                                std::size_t fft_size = 2048) {
  OfflineAudioContext ctx(1, 16384, kSampleRate, std::move(cfg));
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(frequency);
  auto& analyser = ctx.create<AnalyserNode>();
  analyser.set_fft_size(fft_size);
  auto& script = ctx.create<ScriptProcessorNode>(2048);
  auto& mute = ctx.create<GainNode>();
  mute.gain().set_value(0.0);
  osc.connect(analyser);
  analyser.connect(script);
  script.connect(mute);
  mute.connect(ctx.destination());
  osc.start(0.0);

  std::vector<float> freq(analyser.frequency_bin_count());
  script.set_on_audio_process([&](std::span<const float>, std::size_t) {
    analyser.get_float_frequency_data(freq);
  });
  (void)ctx.start_rendering();
  return freq;
}

TEST(AnalyserTest, PeakBinMatchesToneFrequency) {
  const double frequency = 4306.6;  // centre of bin 200 at fftSize 2048
  const std::vector<float> spectrum = analyse_tone(frequency);
  std::size_t peak_bin = 0;
  for (std::size_t k = 1; k < spectrum.size(); ++k) {
    if (spectrum[k] > spectrum[peak_bin]) peak_bin = k;
  }
  const double bin_hz = kSampleRate / 2048.0;
  EXPECT_NEAR(static_cast<double>(peak_bin) * bin_hz, frequency, bin_hz * 1.5);
}

TEST(AnalyserTest, PeakWellAboveLeakageFloor) {
  const std::vector<float> spectrum = analyse_tone(4306.6);
  float peak = -1000.0f, floor_sample = 0.0f;
  for (const float v : spectrum) peak = std::max(peak, v);
  floor_sample = spectrum[900];  // far from the tone
  EXPECT_GT(peak - floor_sample, 40.0f);
}

TEST(AnalyserTest, FftSizeValidation) {
  OfflineAudioContext ctx(1, 2048, kSampleRate, EngineConfig::reference());
  auto& analyser = ctx.create<AnalyserNode>();
  EXPECT_THROW(analyser.set_fft_size(1000), std::invalid_argument);
  EXPECT_THROW(analyser.set_fft_size(16), std::invalid_argument);
  EXPECT_THROW(analyser.set_fft_size(65536), std::invalid_argument);
  analyser.set_fft_size(1024);
  EXPECT_EQ(analyser.frequency_bin_count(), 512u);
}

TEST(AnalyserTest, SmoothingValidation) {
  OfflineAudioContext ctx(1, 2048, kSampleRate, EngineConfig::reference());
  auto& analyser = ctx.create<AnalyserNode>();
  EXPECT_THROW(analyser.set_smoothing_time_constant(1.0),
               std::invalid_argument);
  EXPECT_THROW(analyser.set_smoothing_time_constant(-0.1),
               std::invalid_argument);
  analyser.set_smoothing_time_constant(0.5);
  EXPECT_DOUBLE_EQ(analyser.smoothing_time_constant(), 0.5);
}

TEST(AnalyserTest, DefaultSmoothingFromConfig) {
  EngineConfig cfg = EngineConfig::reference();
  cfg.analyser.smoothing = 0.79;
  OfflineAudioContext ctx(1, 2048, kSampleRate, std::move(cfg));
  auto& analyser = ctx.create<AnalyserNode>();
  EXPECT_DOUBLE_EQ(analyser.smoothing_time_constant(), 0.79);
}

TEST(AnalyserTest, PassesInputThroughUnchanged) {
  OfflineAudioContext ctx(1, 4096, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& analyser = ctx.create<AnalyserNode>();
  osc.connect(analyser);
  analyser.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer with_analyser = ctx.start_rendering();

  OfflineAudioContext ctx2(1, 4096, kSampleRate, EngineConfig::reference());
  auto& osc2 = ctx2.create<OscillatorNode>(OscillatorType::kSine);
  osc2.frequency().set_value(440.0);
  osc2.connect(ctx2.destination());
  osc2.start(0.0);
  const AudioBuffer direct = ctx2.start_rendering();

  for (std::size_t i = 0; i < 4096; ++i) {
    ASSERT_EQ(with_analyser.channel(0)[i], direct.channel(0)[i]) << i;
  }
}

TEST(AnalyserTest, TimeDomainDataReturnsRecentSamples) {
  OfflineAudioContext ctx(1, 4096, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& analyser = ctx.create<AnalyserNode>();
  osc.connect(analyser);
  analyser.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer rendered = ctx.start_rendering();

  std::vector<float> time_data(2048);
  analyser.get_float_time_domain_data(time_data);
  // Last 2048 rendered samples must appear verbatim.
  for (std::size_t i = 0; i < 2048; ++i) {
    ASSERT_EQ(time_data[i], rendered.channel(0)[4096 - 2048 + i]) << i;
  }
}

TEST(AnalyserTest, JitterStateChangesSpectrumDeterministically) {
  EngineConfig stable = EngineConfig::reference();
  EngineConfig skewed = EngineConfig::reference();
  skewed.jitter.state = 2;

  const std::vector<float> a = analyse_tone(10000.0, stable);
  const std::vector<float> b = analyse_tone(10000.0, skewed);
  EXPECT_NE(a, b);

  EngineConfig skewed2 = EngineConfig::reference();
  skewed2.jitter.state = 2;
  const std::vector<float> b2 = analyse_tone(10000.0, skewed2);
  EXPECT_EQ(b, b2);  // same state -> bit-identical
}

TEST(AnalyserTest, ChaosSeedPerturbsFewBins) {
  EngineConfig chaotic = EngineConfig::reference();
  chaotic.jitter.chaos_seed = 12345;
  const std::vector<float> clean = analyse_tone(10000.0);
  const std::vector<float> glitched = analyse_tone(10000.0, chaotic);
  std::size_t differing = 0;
  for (std::size_t k = 0; k < clean.size(); ++k) {
    if (clean[k] != glitched[k]) {
      ++differing;
      // One-ULP nudges stay within numerical breathing distance.
      EXPECT_NEAR(clean[k], glitched[k], std::fabs(clean[k]) * 1e-5 + 1e-5);
    }
  }
  EXPECT_GE(differing, 1u);
  EXPECT_LE(differing, 8u);
}

TEST(AnalyserTest, DifferentChaosSeedsDiffer) {
  EngineConfig a = EngineConfig::reference();
  a.jitter.chaos_seed = 1;
  EngineConfig b = EngineConfig::reference();
  b.jitter.chaos_seed = 2;
  EXPECT_NE(analyse_tone(10000.0, a), analyse_tone(10000.0, b));
}

TEST(AnalyserTest, FftBuildVisibleInFloatSpectrum) {
  // The core FFT-vector premise after the float-pipeline fix: different FFT
  // builds must produce visibly different dB floats on identical input.
  EngineConfig radix2 = EngineConfig::reference();
  EngineConfig radix4 = EngineConfig::reference();
  radix4.fft = dsp::make_fft_engine(dsp::FftVariant::kRadix4, radix4.math);

  const std::vector<float> a = analyse_tone(10000.0, std::move(radix2));
  const std::vector<float> b = analyse_tone(10000.0, std::move(radix4));
  std::size_t differing = 0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] != b[k]) ++differing;
  }
  EXPECT_GT(differing, 10u);
}

TEST(AnalyserTest, TwiddleModeVisibleInFloatSpectrum) {
  EngineConfig direct = EngineConfig::reference();
  EngineConfig recur = EngineConfig::reference();
  recur.fft = dsp::make_fft_engine(dsp::FftVariant::kRadix2, recur.math,
                                   dsp::TwiddleMode::kRecurrence);
  const std::vector<float> a = analyse_tone(10000.0, std::move(direct));
  const std::vector<float> b = analyse_tone(10000.0, std::move(recur));
  EXPECT_NE(a, b);
}

TEST(AnalyserTest, BlackmanAlphaVisibleInSpectrum) {
  EngineConfig classic = EngineConfig::reference();
  EngineConfig variant = EngineConfig::reference();
  variant.analyser.blackman_alpha = 0.158;
  EXPECT_NE(analyse_tone(10000.0, std::move(classic)),
            analyse_tone(10000.0, std::move(variant)));
}

}  // namespace
}  // namespace wafp::webaudio
