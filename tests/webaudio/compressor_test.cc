#include "webaudio/dynamics_compressor_node.h"

#include <gtest/gtest.h>

#include <cmath>

#include "webaudio/gain_node.h"
#include "webaudio/offline_audio_context.h"
#include "webaudio/oscillator_node.h"

namespace wafp::webaudio {
namespace {

constexpr double kSampleRate = 44100.0;

struct CompressorRun {
  float peak_out = 0.0f;
  float reduction_db = 0.0f;
  AudioBuffer buffer{1, 1, kSampleRate};
};

CompressorRun run_compressor(double input_amplitude, double ratio = 12.0,
                             double threshold_db = -24.0,
                             EngineConfig cfg = EngineConfig::reference()) {
  OfflineAudioContext ctx(1, 44100, kSampleRate, std::move(cfg));
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& pre_gain = ctx.create<GainNode>();
  pre_gain.gain().set_value(input_amplitude);
  auto& compressor = ctx.create<DynamicsCompressorNode>();
  compressor.ratio().set_value(ratio);
  compressor.threshold().set_value(threshold_db);
  osc.connect(pre_gain);
  pre_gain.connect(compressor);
  compressor.connect(ctx.destination());
  osc.start(0.0);

  CompressorRun result{0.0f, 0.0f, ctx.start_rendering()};
  // Measure the steady-state tail (skip attack transient + pre-delay).
  const auto samples = result.buffer.channel(0);
  for (std::size_t i = samples.size() / 2; i < samples.size(); ++i) {
    result.peak_out = std::max(result.peak_out, std::fabs(samples[i]));
  }
  result.reduction_db = compressor.reduction();
  return result;
}

TEST(CompressorTest, LoudSignalIsAttenuated) {
  // +6 dB over full scale is far above the -24 dB threshold: the static
  // curve must pull it down relative to its input.
  const CompressorRun loud = run_compressor(2.0);
  EXPECT_LT(loud.peak_out, 2.0f * 0.8f);
  EXPECT_LT(loud.reduction_db, -1.0f);  // meter reports active reduction
}

TEST(CompressorTest, CompressionIsProgressive) {
  // Output/input ratio must shrink as input level rises.
  const CompressorRun quiet = run_compressor(0.03);
  const CompressorRun mid = run_compressor(0.5);
  const CompressorRun loud = run_compressor(4.0);
  const double gain_quiet = quiet.peak_out / 0.03;
  const double gain_mid = mid.peak_out / 0.5;
  const double gain_loud = loud.peak_out / 4.0;
  EXPECT_GT(gain_quiet, gain_mid);
  EXPECT_GT(gain_mid, gain_loud);
}

TEST(CompressorTest, HigherRatioCompressesHarder) {
  const CompressorRun gentle = run_compressor(4.0, /*ratio=*/2.0);
  const CompressorRun hard = run_compressor(4.0, /*ratio=*/20.0);
  EXPECT_GT(gentle.peak_out, hard.peak_out);
}

TEST(CompressorTest, LowerThresholdCompressesMore) {
  const CompressorRun high_thresh = run_compressor(1.0, 12.0, -10.0);
  const CompressorRun low_thresh = run_compressor(1.0, 12.0, -50.0);
  EXPECT_GT(high_thresh.peak_out, low_thresh.peak_out);
}

TEST(CompressorTest, DeterministicAcrossRuns) {
  const CompressorRun a = run_compressor(1.0);
  const CompressorRun b = run_compressor(1.0);
  for (std::size_t i = 0; i < a.buffer.length(); ++i) {
    ASSERT_EQ(a.buffer.channel(0)[i], b.buffer.channel(0)[i]) << i;
  }
}

TEST(CompressorTest, PreDelayIntroducesLatency) {
  // The look-ahead delay means the first ~6 ms of output are (near) zero.
  const CompressorRun run = run_compressor(1.0);
  const auto samples = run.buffer.channel(0);
  const auto delay_frames = static_cast<std::size_t>(0.006 * kSampleRate);
  for (std::size_t i = 0; i + 1 < delay_frames; ++i) {
    EXPECT_EQ(samples[i], 0.0f) << i;
  }
  bool active_after = false;
  for (std::size_t i = delay_frames; i < delay_frames + 2000; ++i) {
    if (samples[i] != 0.0f) active_after = true;
  }
  EXPECT_TRUE(active_after);
}

TEST(CompressorTest, MathVariantChangesOutputBits) {
  EngineConfig precise_cfg = EngineConfig::reference();
  EngineConfig poly_cfg;
  poly_cfg.math = dsp::make_math_library(dsp::MathVariant::kFastPoly);
  poly_cfg.fft = dsp::make_fft_engine(dsp::FftVariant::kRadix2, poly_cfg.math);

  const CompressorRun a =
      run_compressor(1.0, 12.0, -24.0, std::move(precise_cfg));
  const CompressorRun b = run_compressor(1.0, 12.0, -24.0, std::move(poly_cfg));
  bool any_diff = false;
  for (std::size_t i = 0; i < a.buffer.length(); ++i) {
    if (a.buffer.channel(0)[i] != b.buffer.channel(0)[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(CompressorTest, TuningVariantChangesOutputBits) {
  EngineConfig cfg_a = EngineConfig::reference();
  EngineConfig cfg_b = EngineConfig::reference();
  cfg_b.compressor.release_zone2 = 1.24;

  const CompressorRun a = run_compressor(1.0, 12.0, -24.0, std::move(cfg_a));
  const CompressorRun b = run_compressor(1.0, 12.0, -24.0, std::move(cfg_b));
  bool any_diff = false;
  for (std::size_t i = 0; i < a.buffer.length(); ++i) {
    if (a.buffer.channel(0)[i] != b.buffer.channel(0)[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(CompressorTest, DeepCompressionOnlyTuningInvisibleToGentleSignals) {
  // A release-zone-4 tweak only matters under deep compression — the
  // mechanism behind the paper's Combined > Hybrid diversity (our AM/FM
  // vectors reach it, the plain triangle does not).
  EngineConfig cfg_a = EngineConfig::reference();
  EngineConfig cfg_b = EngineConfig::reference();
  cfg_b.compressor.release_zone4 = 3.35;

  const CompressorRun gentle_a = run_compressor(1.0, 12.0, -24.0, cfg_a);
  const CompressorRun gentle_b = run_compressor(1.0, 12.0, -24.0, cfg_b);
  bool gentle_diff = false;
  for (std::size_t i = 0; i < gentle_a.buffer.length(); ++i) {
    if (gentle_a.buffer.channel(0)[i] != gentle_b.buffer.channel(0)[i]) {
      gentle_diff = true;
      break;
    }
  }
  EXPECT_FALSE(gentle_diff);
}

TEST(CompressorTest, ReductionMeterIsNonPositive) {
  const CompressorRun quiet = run_compressor(0.01);
  EXPECT_LE(quiet.reduction_db, 0.0f);
  EXPECT_GT(quiet.reduction_db, -3.0f);  // barely any reduction when quiet
}

TEST(CompressorTest, DefaultParametersMatchSpec) {
  OfflineAudioContext ctx(1, 128, kSampleRate, EngineConfig::reference());
  auto& c = ctx.create<DynamicsCompressorNode>();
  EXPECT_DOUBLE_EQ(c.threshold().value(), -24.0);
  EXPECT_DOUBLE_EQ(c.knee().value(), 30.0);
  EXPECT_DOUBLE_EQ(c.ratio().value(), 12.0);
  EXPECT_DOUBLE_EQ(c.attack().value(), 0.003);
  EXPECT_DOUBLE_EQ(c.release().value(), 0.25);
}

}  // namespace
}  // namespace wafp::webaudio
