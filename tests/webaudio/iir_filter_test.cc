#include "webaudio/iir_filter_node.h"

#include <gtest/gtest.h>

#include <cmath>

#include "webaudio/biquad_filter_node.h"
#include "webaudio/offline_audio_context.h"
#include "webaudio/oscillator_node.h"

namespace wafp::webaudio {
namespace {

constexpr double kSampleRate = 44100.0;

TEST(IIRFilterTest, CoefficientValidation) {
  OfflineAudioContext ctx(1, 128, kSampleRate, EngineConfig::reference());
  EXPECT_THROW(ctx.create<IIRFilterNode>(std::vector<double>{},
                                         std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(ctx.create<IIRFilterNode>(std::vector<double>{1.0},
                                         std::vector<double>{0.0}),
               std::invalid_argument);
  EXPECT_THROW(ctx.create<IIRFilterNode>(std::vector<double>{0.0, 0.0},
                                         std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(ctx.create<IIRFilterNode>(std::vector<double>(21, 1.0),
                                         std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(IIRFilterTest, IdentityCoefficientsPassThrough) {
  OfflineAudioContext ctx(1, 2048, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& iir = ctx.create<IIRFilterNode>(std::vector<double>{1.0},
                                        std::vector<double>{1.0});
  osc.connect(iir);
  iir.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer filtered = ctx.start_rendering();

  OfflineAudioContext ref(1, 2048, kSampleRate, EngineConfig::reference());
  auto& ref_osc = ref.create<OscillatorNode>(OscillatorType::kSine);
  ref_osc.frequency().set_value(440.0);
  ref_osc.connect(ref.destination());
  ref_osc.start(0.0);
  const AudioBuffer plain = ref.start_rendering();
  for (std::size_t i = 0; i < 2048; ++i) {
    ASSERT_EQ(filtered.channel(0)[i], plain.channel(0)[i]) << i;
  }
}

TEST(IIRFilterTest, ScalingCoefficientScales) {
  OfflineAudioContext ctx(1, 1024, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  // b = [0.5], a = [2.0]: overall gain 0.25.
  auto& iir = ctx.create<IIRFilterNode>(std::vector<double>{0.5},
                                        std::vector<double>{2.0});
  osc.connect(iir);
  iir.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer out = ctx.start_rendering();
  float max_abs = 0.0f;
  for (const float v : out.channel(0)) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  EXPECT_NEAR(max_abs, 0.25f, 0.01f);
}

TEST(IIRFilterTest, MatchesEquivalentBiquad) {
  // Feed the biquad's lowpass coefficients into the generic IIR node; the
  // two must produce identical filtering behaviour at double precision.
  OfflineAudioContext coeff_ctx(1, 128, kSampleRate,
                                EngineConfig::reference());
  auto& biquad = coeff_ctx.create<BiquadFilterNode>();
  biquad.set_type(BiquadFilterType::kLowpass);
  biquad.frequency().set_value(1500.0);
  std::vector<float> probe = {400.0f, 1500.0f, 8000.0f};
  std::vector<float> biquad_mag(3), biquad_phase(3);
  biquad.get_frequency_response(probe, biquad_mag, biquad_phase);

  // Reconstruct the same normalized coefficients the biquad derived (via
  // its analytic response at a dense probe) by sampling is overkill; use
  // the textbook formula directly with precise math instead.
  const double w0 = std::numbers::pi * 1500.0 / (kSampleRate / 2.0);
  const double alpha = std::sin(w0) / (2.0 * std::pow(10.0, 1.0 / 20.0));
  const double a0 = 1.0 + alpha;
  const std::vector<double> b = {(1.0 - std::cos(w0)) / 2.0,
                                 1.0 - std::cos(w0),
                                 (1.0 - std::cos(w0)) / 2.0};
  const std::vector<double> a = {a0, -2.0 * std::cos(w0), 1.0 - alpha};

  OfflineAudioContext ctx(1, 128, kSampleRate, EngineConfig::reference());
  auto& iir = ctx.create<IIRFilterNode>(b, a);
  std::vector<float> iir_mag(3), iir_phase(3);
  iir.get_frequency_response(probe, iir_mag, iir_phase);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(iir_mag[i], biquad_mag[i], 1e-4f) << i;
    EXPECT_NEAR(iir_phase[i], biquad_phase[i], 1e-4f) << i;
  }
}

TEST(IIRFilterTest, OnePoleLowpassAttenuatesHighs) {
  // y[n] = 0.05 x[n] + 0.95 y[n-1]: heavy lowpass.
  auto render = [](double tone_hz) {
    OfflineAudioContext ctx(1, 16384, kSampleRate, EngineConfig::reference());
    auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
    osc.frequency().set_value(tone_hz);
    auto& iir = ctx.create<IIRFilterNode>(std::vector<double>{0.05},
                                          std::vector<double>{1.0, -0.95});
    osc.connect(iir);
    iir.connect(ctx.destination());
    osc.start(0.0);
    const AudioBuffer out = ctx.start_rendering();
    double acc = 0.0;
    for (std::size_t i = 8192; i < 16384; ++i) {
      acc += static_cast<double>(out.channel(0)[i]) * out.channel(0)[i];
    }
    return std::sqrt(acc / 8192.0);
  };
  EXPECT_GT(render(100.0), 5.0 * render(8000.0));
}

TEST(IIRFilterTest, ResponseLengthValidation) {
  OfflineAudioContext ctx(1, 128, kSampleRate, EngineConfig::reference());
  auto& iir = ctx.create<IIRFilterNode>(std::vector<double>{1.0},
                                        std::vector<double>{1.0});
  std::vector<float> freqs(2), mag(2), phase(3);
  EXPECT_THROW(iir.get_frequency_response(freqs, mag, phase),
               std::invalid_argument);
}

}  // namespace
}  // namespace wafp::webaudio
