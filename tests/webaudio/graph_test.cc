#include <gtest/gtest.h>

#include <vector>

#include "webaudio/channel_merger_node.h"
#include "webaudio/gain_node.h"
#include "webaudio/offline_audio_context.h"
#include "webaudio/oscillator_node.h"
#include "webaudio/script_processor_node.h"

namespace wafp::webaudio {
namespace {

constexpr double kSampleRate = 44100.0;

TEST(OfflineContextTest, ConstructorValidation) {
  EXPECT_THROW(
      OfflineAudioContext(0, 128, kSampleRate, EngineConfig::reference()),
      std::invalid_argument);
  EXPECT_THROW(
      OfflineAudioContext(1, 0, kSampleRate, EngineConfig::reference()),
      std::invalid_argument);
  EXPECT_THROW(OfflineAudioContext(1, 128, 0.0, EngineConfig::reference()),
               std::invalid_argument);
  EXPECT_THROW(OfflineAudioContext(1, 128, kSampleRate, EngineConfig{}),
               std::invalid_argument);  // missing math/fft
}

TEST(OfflineContextTest, RenderTwiceThrows) {
  OfflineAudioContext ctx(1, 256, kSampleRate, EngineConfig::reference());
  (void)ctx.start_rendering();
  EXPECT_THROW((void)ctx.start_rendering(), std::runtime_error);
}

TEST(OfflineContextTest, RenderLengthNotQuantumAligned) {
  OfflineAudioContext ctx(1, 300, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(1000.0);
  osc.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer buffer = ctx.start_rendering();
  EXPECT_EQ(buffer.length(), 300u);
  EXPECT_NE(buffer.channel(0)[299], 0.0f);
}

// Delay-free cycles are a contract violation and die at connect() — the
// offending call site is still on the stack instead of surfacing as a
// mystery throw deep inside start_rendering(). The connect-time validator
// has its own test file (graph_validator_test.cc); these two document the
// changed failure mode of the historical render-time tests.
TEST(OfflineContextDeathTest, CycleDetectedAtConnectTime) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  OfflineAudioContext ctx(1, 256, kSampleRate, EngineConfig::reference());
  auto& a = ctx.create<GainNode>();
  auto& b = ctx.create<GainNode>();
  a.connect(b);
  EXPECT_DEATH(b.connect(a), "closes a cycle with no DelayNode");
}

TEST(OfflineContextDeathTest, ParamModulationCycleDetectedAtConnectTime) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  OfflineAudioContext ctx(1, 256, kSampleRate, EngineConfig::reference());
  auto& a = ctx.create<GainNode>();
  auto& b = ctx.create<GainNode>();
  a.connect(b);
  EXPECT_DEATH(b.connect(a.gain()),
               "closes a cycle with no DelayNode");  // parameter edge
}

TEST(OfflineContextTest, CrossContextConnectThrows) {
  OfflineAudioContext ctx1(1, 256, kSampleRate, EngineConfig::reference());
  OfflineAudioContext ctx2(1, 256, kSampleRate, EngineConfig::reference());
  auto& a = ctx1.create<GainNode>();
  EXPECT_THROW(a.connect(ctx2.destination()), std::invalid_argument);
}

TEST(OfflineContextTest, UnconnectedNodesDoNotAffectOutput) {
  OfflineAudioContext ctx(1, 512, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.start(0.0);  // started but never connected
  const AudioBuffer buffer = ctx.start_rendering();
  for (const float v : buffer.channel(0)) EXPECT_EQ(v, 0.0f);
}

TEST(OfflineContextTest, FanInSumsSources) {
  OfflineAudioContext ctx(1, 4096, kSampleRate, EngineConfig::reference());
  auto& osc1 = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc1.frequency().set_value(440.0);
  auto& osc2 = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc2.frequency().set_value(440.0);
  osc1.connect(ctx.destination());
  osc2.connect(ctx.destination());
  osc1.start(0.0);
  osc2.start(0.0);
  const AudioBuffer two = ctx.start_rendering();

  OfflineAudioContext ctx2(1, 4096, kSampleRate, EngineConfig::reference());
  auto& solo = ctx2.create<OscillatorNode>(OscillatorType::kSine);
  solo.frequency().set_value(440.0);
  solo.connect(ctx2.destination());
  solo.start(0.0);
  const AudioBuffer one = ctx2.start_rendering();

  for (std::size_t i = 0; i < 4096; ++i) {
    ASSERT_FLOAT_EQ(two.channel(0)[i], 2.0f * one.channel(0)[i]) << i;
  }
}

TEST(ChannelMergerTest, RoutesInputsToChannels) {
  OfflineAudioContext ctx(2, 512, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& merger = ctx.create<ChannelMergerNode>(2);
  osc.connect(merger, 0);  // channel 0 only
  merger.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer buffer = ctx.start_rendering();
  bool ch0_active = false;
  for (std::size_t i = 0; i < 512; ++i) {
    if (buffer.channel(0)[i] != 0.0f) ch0_active = true;
    ASSERT_EQ(buffer.channel(1)[i], 0.0f) << i;
  }
  EXPECT_TRUE(ch0_active);
}

TEST(ChannelMergerTest, InputCountValidation) {
  OfflineAudioContext ctx(1, 128, kSampleRate, EngineConfig::reference());
  EXPECT_THROW(ctx.create<ChannelMergerNode>(0), std::invalid_argument);
  EXPECT_THROW(ctx.create<ChannelMergerNode>(kMaxChannels + 1),
               std::invalid_argument);
  auto& merger = ctx.create<ChannelMergerNode>(4);
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  EXPECT_THROW(osc.connect(merger, 4), std::out_of_range);
}

TEST(ScriptProcessorTest, FiresOncePerCompleteBlock) {
  OfflineAudioContext ctx(1, 4096 + 100, kSampleRate,
                          EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& script = ctx.create<ScriptProcessorNode>(1024);
  osc.connect(script);
  script.connect(ctx.destination());
  osc.start(0.0);

  std::vector<std::size_t> fire_frames;
  script.set_on_audio_process(
      [&](std::span<const float> block, std::size_t frame) {
        EXPECT_EQ(block.size(), 1024u);
        fire_frames.push_back(frame);
      });
  (void)ctx.start_rendering();
  ASSERT_EQ(fire_frames.size(), 4u);  // 4196 frames -> 4 complete blocks
  EXPECT_EQ(fire_frames[0], 1024u);
  EXPECT_EQ(fire_frames[3], 4096u);
}

TEST(ScriptProcessorTest, BufferSizeValidation) {
  OfflineAudioContext ctx(1, 128, kSampleRate, EngineConfig::reference());
  EXPECT_THROW(ctx.create<ScriptProcessorNode>(100), std::invalid_argument);
  EXPECT_THROW(ctx.create<ScriptProcessorNode>(128), std::invalid_argument);
  EXPECT_THROW(ctx.create<ScriptProcessorNode>(32768), std::invalid_argument);
}

TEST(ScriptProcessorTest, BlockContainsRenderedAudio) {
  OfflineAudioContext ctx(1, 2048, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& script = ctx.create<ScriptProcessorNode>(2048);
  osc.connect(script);
  script.connect(ctx.destination());
  osc.start(0.0);

  std::vector<float> captured;
  script.set_on_audio_process(
      [&](std::span<const float> block, std::size_t) {
        captured.assign(block.begin(), block.end());
      });
  const AudioBuffer rendered = ctx.start_rendering();
  ASSERT_EQ(captured.size(), 2048u);
  for (std::size_t i = 0; i < 2048; ++i) {
    ASSERT_EQ(captured[i], rendered.channel(0)[i]) << i;
  }
}

TEST(AudioBusTest, MonoToStereoReplicates) {
  AudioBus mono(1), stereo(2);
  mono.channel(0)[0] = 0.5f;
  stereo.sum_from(mono);
  EXPECT_EQ(stereo.channel(0)[0], 0.5f);
  EXPECT_EQ(stereo.channel(1)[0], 0.5f);
}

TEST(AudioBusTest, StereoToMonoAverages) {
  AudioBus stereo(2), mono(1);
  stereo.channel(0)[0] = 1.0f;
  stereo.channel(1)[0] = 0.0f;
  mono.sum_from(stereo);
  EXPECT_FLOAT_EQ(mono.channel(0)[0], 0.5f);
}

TEST(AudioBusTest, SumAccumulates) {
  AudioBus a(1), b(1);
  a.channel(0)[0] = 1.0f;
  b.channel(0)[0] = 2.0f;
  a.sum_from(b);
  a.sum_from(b);
  EXPECT_FLOAT_EQ(a.channel(0)[0], 5.0f);
}

}  // namespace
}  // namespace wafp::webaudio
