// Connect-time graph validation: delay-free cycles, channel-count rules,
// and buffer sample-rate sanity die at the offending call, not 30 renders
// later as a plausible-but-wrong digest.
#include "webaudio/graph_validator.h"

#include <gtest/gtest.h>

#include <memory>

#include "webaudio/audio_buffer.h"
#include "webaudio/channel_merger_node.h"
#include "webaudio/delay_node.h"
#include "webaudio/gain_node.h"
#include "webaudio/offline_audio_context.h"
#include "webaudio/oscillator_node.h"
#include "webaudio/source_nodes.h"

namespace wafp::webaudio {
namespace {

constexpr double kSampleRate = 44100.0;

OfflineAudioContext make_context() {
  return OfflineAudioContext(1, 256, kSampleRate, EngineConfig::reference());
}

TEST(GraphValidatorDeathTest, DirectCycleWithoutDelayDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto ctx = make_context();
  auto& a = ctx.create<GainNode>();
  auto& b = ctx.create<GainNode>();
  a.connect(b);
  EXPECT_DEATH(b.connect(a), "closes a cycle with no DelayNode");
}

TEST(GraphValidatorDeathTest, SelfLoopWithoutDelayDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto ctx = make_context();
  auto& a = ctx.create<GainNode>();
  EXPECT_DEATH(a.connect(a), "closes a cycle with no DelayNode");
}

TEST(GraphValidatorDeathTest, LongCycleWithoutDelayDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto ctx = make_context();
  auto& a = ctx.create<GainNode>();
  auto& b = ctx.create<GainNode>();
  auto& c = ctx.create<GainNode>();
  a.connect(b);
  b.connect(c);
  EXPECT_DEATH(c.connect(a), "closes a cycle with no DelayNode");
}

TEST(GraphValidatorDeathTest, ParamEdgeCycleWithoutDelayDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto ctx = make_context();
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  auto& gain = ctx.create<GainNode>();
  osc.connect(gain);
  // gain modulating the oscillator that feeds it: a feedback loop through
  // a parameter edge, just as unrenderable as an audio-edge loop.
  EXPECT_DEATH(gain.connect(osc.frequency()),
               "closes a cycle with no DelayNode");
}

TEST(GraphValidatorTest, CycleThroughDelayIsAcceptedAtConnectTime) {
  auto ctx = make_context();
  auto& gain = ctx.create<GainNode>();
  auto& delay = ctx.create<DelayNode>(0.1);
  gain.connect(delay);
  delay.connect(gain);  // classic feedback echo: legal Web Audio
  gain.connect(ctx.destination());
  // This engine does not *render* feedback yet; that limitation stays a
  // recoverable error, distinct from the contract-violation abort above.
  EXPECT_THROW((void)ctx.start_rendering(), std::runtime_error);
}

TEST(GraphValidatorTest, DelaySelfLoopIsAcceptedAtConnectTime) {
  auto ctx = make_context();
  auto& delay = ctx.create<DelayNode>(0.1);
  delay.connect(delay);
  SUCCEED();
}

TEST(GraphValidatorDeathTest, MergerInputMustBeMono) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto ctx = make_context();
  auto& merger = ctx.create<ChannelMergerNode>(4);
  auto& stereo = ctx.create<GainNode>(/*channels=*/2);
  EXPECT_DEATH(stereo.connect(merger, 1),
               "ChannelMergerNode input 1 must be mono");
}

TEST(GraphValidatorTest, MergerAcceptsMonoInputs) {
  auto ctx = make_context();
  auto& merger = ctx.create<ChannelMergerNode>(4);
  auto& mono = ctx.create<GainNode>();
  mono.connect(merger, 0);
  mono.connect(merger, 3);
  SUCCEED();
}

TEST(GraphValidatorDeathTest, SplitterChannelMustExistInSource) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto ctx = make_context();
  auto& stereo = ctx.create<GainNode>(/*channels=*/2);
  auto& splitter = ctx.create<ChannelSplitterNode>(/*channel=*/3);
  EXPECT_DEATH(stereo.connect(splitter),
               "ChannelSplitterNode selects channel 3");
}

TEST(GraphValidatorTest, SplitterAcceptsInRangeChannel) {
  auto ctx = make_context();
  auto& stereo = ctx.create<GainNode>(/*channels=*/2);
  auto& splitter = ctx.create<ChannelSplitterNode>(/*channel=*/1);
  stereo.connect(splitter);
  SUCCEED();
}

TEST(GraphValidatorDeathTest, BufferSampleRateFarFromContextDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto ctx = make_context();
  auto& source = ctx.create<AudioBufferSourceNode>();
  // 1 kHz into a 44.1 kHz context is a 44x ratio: linear interpolation
  // over that gap produces aliasing garbage, not a resampled signal.
  auto buffer = std::make_shared<AudioBuffer>(1, 64, 1000.0);
  EXPECT_DEATH(source.set_buffer(buffer),
               "out of the supported resampling band");
}

TEST(GraphValidatorTest, BufferSampleRateWithinBandIsAccepted) {
  auto ctx = make_context();
  auto& source = ctx.create<AudioBufferSourceNode>();
  source.set_buffer(std::make_shared<AudioBuffer>(1, 64, 8000.0));
  source.set_buffer(std::make_shared<AudioBuffer>(1, 64, 96000.0));
  SUCCEED();
}

TEST(GraphValidatorTest, CrossContextParamConnectThrows) {
  auto ctx1 = make_context();
  auto ctx2 = make_context();
  auto& osc = ctx1.create<OscillatorNode>(OscillatorType::kSine);
  auto& gain = ctx2.create<GainNode>();
  // Previously unchecked: the modulation edge was silently added across
  // contexts and the foreign node was then processed out of order (or not
  // at all) by the other context's renderer.
  EXPECT_THROW(osc.connect(gain.gain()), std::invalid_argument);
}

TEST(GraphValidatorTest, ReachabilityHelperWalksParamEdges) {
  auto ctx = make_context();
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  auto& gain = ctx.create<GainNode>();
  osc.connect(gain.gain());
  EXPECT_TRUE(closes_delay_free_cycle(gain, osc));
  EXPECT_FALSE(closes_delay_free_cycle(osc, gain));
}

}  // namespace
}  // namespace wafp::webaudio
