#include <gtest/gtest.h>

#include <cmath>

#include "webaudio/gain_node.h"
#include "webaudio/offline_audio_context.h"
#include "webaudio/oscillator_node.h"

namespace wafp::webaudio {
namespace {

constexpr double kSampleRate = 44100.0;

TEST(GainNodeTest, ScalesInput) {
  OfflineAudioContext ctx(1, 4096, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& gain = ctx.create<GainNode>();
  gain.gain().set_value(0.25);
  osc.connect(gain);
  gain.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer buffer = ctx.start_rendering();
  float max_abs = 0.0f;
  for (const float v : buffer.channel(0)) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  EXPECT_NEAR(max_abs, 0.25f, 0.01f);
}

TEST(GainNodeTest, ZeroGainMutesExactly) {
  // The paper's graphs route through a zero-gain node so fingerprinting is
  // inaudible (Fig. 2); the output must be exactly zero.
  OfflineAudioContext ctx(1, 4096, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kTriangle);
  osc.frequency().set_value(10000.0);
  auto& gain = ctx.create<GainNode>();
  gain.gain().set_value(0.0);
  osc.connect(gain);
  gain.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer buffer = ctx.start_rendering();
  for (const float v : buffer.channel(0)) EXPECT_EQ(v, 0.0f);
}

TEST(AudioParamTest, SetValueAtTimeSwitchesMidRender) {
  OfflineAudioContext ctx(1, 8192, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(440.0);
  auto& gain = ctx.create<GainNode>();
  gain.gain().set_value(1.0);
  gain.gain().set_value_at_time(0.0, 4096.0 / kSampleRate);
  osc.connect(gain);
  gain.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer buffer = ctx.start_rendering();
  bool head_active = false;
  for (std::size_t i = 0; i < 4096; ++i) {
    if (buffer.channel(0)[i] != 0.0f) head_active = true;
  }
  EXPECT_TRUE(head_active);
  for (std::size_t i = 4096; i < 8192; ++i) {
    EXPECT_EQ(buffer.channel(0)[i], 0.0f) << i;
  }
}

TEST(AudioParamTest, LinearRampInterpolates) {
  const auto math = dsp::make_math_library(dsp::MathVariant::kPrecise);
  AudioParam param("test", 0.0, -1000.0, 1000.0);
  param.set_value_at_time(0.0, 0.0);
  param.linear_ramp_to_value_at_time(10.0, 1.0);
  EXPECT_NEAR(param.value_at_time(0.0, *math), 0.0, 1e-12);
  EXPECT_NEAR(param.value_at_time(0.25, *math), 2.5, 1e-12);
  EXPECT_NEAR(param.value_at_time(0.5, *math), 5.0, 1e-12);
  EXPECT_NEAR(param.value_at_time(1.0, *math), 10.0, 1e-12);
  EXPECT_NEAR(param.value_at_time(2.0, *math), 10.0, 1e-12);  // holds after
}

TEST(AudioParamTest, ExponentialRampIsGeometric) {
  const auto math = dsp::make_math_library(dsp::MathVariant::kPrecise);
  AudioParam param("test", 0.0, 0.0, 1000.0);
  param.set_value_at_time(1.0, 0.0);
  param.exponential_ramp_to_value_at_time(100.0, 1.0);
  EXPECT_NEAR(param.value_at_time(0.5, *math), 10.0, 1e-9);
  EXPECT_NEAR(param.value_at_time(1.0, *math), 100.0, 1e-9);
}

TEST(AudioParamTest, ExponentialRampToZeroThrows) {
  AudioParam param("test", 1.0, 0.0, 10.0);
  EXPECT_THROW(param.exponential_ramp_to_value_at_time(0.0, 1.0),
               std::invalid_argument);
}

TEST(AudioParamTest, NonMonotonicEventTimesThrow) {
  AudioParam param("test", 0.0, 0.0, 10.0);
  param.set_value_at_time(1.0, 2.0);
  EXPECT_THROW(param.set_value_at_time(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(param.linear_ramp_to_value_at_time(2.0, 1.5),
               std::invalid_argument);
}

TEST(AudioParamTest, ValuesClampedToRange) {
  const auto math = dsp::make_math_library(dsp::MathVariant::kPrecise);
  AudioParam param("test", 5.0, 0.0, 1.0);
  std::array<float, 4> values{};
  param.compute_values(values, 0.0, kSampleRate, *math);
  for (const float v : values) EXPECT_EQ(v, 1.0f);
}

TEST(AudioParamTest, ModulationInputSumsOntoBase) {
  // AM-style: oscillator drives a gain parameter (paper Fig. 8).
  OfflineAudioContext ctx(1, 8192, kSampleRate, EngineConfig::reference());
  auto& carrier = ctx.create<OscillatorNode>(OscillatorType::kSine);
  carrier.frequency().set_value(4000.0);
  auto& mod = ctx.create<OscillatorNode>(OscillatorType::kSine);
  mod.frequency().set_value(50.0);
  auto& gain = ctx.create<GainNode>();
  gain.gain().set_value(1.0);
  mod.connect(gain.gain());
  carrier.connect(gain);
  gain.connect(ctx.destination());
  carrier.start(0.0);
  mod.start(0.0);
  const AudioBuffer buffer = ctx.start_rendering();
  // Effective gain swings between ~0 and ~2, so peaks approach 2.0.
  float max_abs = 0.0f;
  for (const float v : buffer.channel(0)) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  EXPECT_GT(max_abs, 1.5f);
}

TEST(AudioParamTest, FrequencyModulationChangesSpectrumOverTime) {
  // FM-style: oscillator drives another oscillator's frequency parameter.
  OfflineAudioContext ctx(1, 8192, kSampleRate, EngineConfig::reference());
  auto& carrier = ctx.create<OscillatorNode>(OscillatorType::kSine);
  carrier.frequency().set_value(440.0);
  auto& mod = ctx.create<OscillatorNode>(OscillatorType::kSine);
  mod.frequency().set_value(5.0);
  auto& mod_gain = ctx.create<GainNode>();
  mod_gain.gain().set_value(200.0);
  mod.connect(mod_gain);
  mod_gain.connect(carrier.frequency());
  carrier.connect(ctx.destination());
  carrier.start(0.0);
  mod.start(0.0);
  const AudioBuffer buffer = ctx.start_rendering();

  // Instantaneous frequency varies: zero-crossing spacing is not constant.
  std::vector<std::size_t> crossings;
  for (std::size_t i = 1; i < buffer.length(); ++i) {
    if (buffer.channel(0)[i - 1] <= 0.0f && buffer.channel(0)[i] > 0.0f) {
      crossings.push_back(i);
    }
  }
  ASSERT_GT(crossings.size(), 10u);
  std::size_t min_gap = 1u << 30, max_gap = 0;
  for (std::size_t i = 1; i < crossings.size(); ++i) {
    const std::size_t gap = crossings[i] - crossings[i - 1];
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
  }
  EXPECT_GT(max_gap, min_gap + min_gap / 4);
}

}  // namespace
}  // namespace wafp::webaudio
