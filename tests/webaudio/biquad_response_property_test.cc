// Property sweep: for every biquad type, the magnitude measured from a
// rendered steady-state tone must agree with getFrequencyResponse at that
// frequency — the time-domain kernel and the analytic response are two
// implementations of the same transfer function.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "webaudio/biquad_filter_node.h"
#include "webaudio/offline_audio_context.h"
#include "webaudio/oscillator_node.h"

namespace wafp::webaudio {
namespace {

constexpr double kSampleRate = 44100.0;

using ResponseParam = std::tuple<BiquadFilterType, double /*tone_hz*/>;

class BiquadResponseProperty : public ::testing::TestWithParam<ResponseParam> {
};

TEST_P(BiquadResponseProperty, MeasuredGainMatchesAnalyticResponse) {
  const auto [type, tone_hz] = GetParam();

  OfflineAudioContext ctx(1, 32768, kSampleRate, EngineConfig::reference());
  auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
  osc.frequency().set_value(tone_hz);
  auto& filter = ctx.create<BiquadFilterNode>();
  filter.set_type(type);
  filter.frequency().set_value(2500.0);
  filter.q().set_value(2.0);
  filter.gain().set_value(9.0);
  osc.connect(filter);
  filter.connect(ctx.destination());
  osc.start(0.0);
  const AudioBuffer buffer = ctx.start_rendering();

  // Steady-state RMS over the back half -> measured |H|.
  double acc = 0.0;
  for (std::size_t i = 16384; i < 32768; ++i) {
    acc += static_cast<double>(buffer.channel(0)[i]) * buffer.channel(0)[i];
  }
  const double measured_gain =
      std::sqrt(acc / 16384.0) * std::numbers::sqrt2;  // sine RMS -> peak

  const std::vector<float> freqs = {static_cast<float>(tone_hz)};
  std::vector<float> mag(1), phase(1);
  filter.get_frequency_response(freqs, mag, phase);

  // Band-limited oscillator amplitudes and transient leakage put a few
  // percent of slack on the comparison.
  EXPECT_NEAR(measured_gain, static_cast<double>(mag[0]),
              0.08 * std::max(1.0, static_cast<double>(mag[0])))
      << to_string(type) << " @ " << tone_hz << " Hz";
}

INSTANTIATE_TEST_SUITE_P(
    AllTypesAndTones, BiquadResponseProperty,
    ::testing::Combine(
        ::testing::Values(BiquadFilterType::kLowpass,
                          BiquadFilterType::kHighpass,
                          BiquadFilterType::kBandpass,
                          BiquadFilterType::kLowshelf,
                          BiquadFilterType::kHighshelf,
                          BiquadFilterType::kPeaking,
                          BiquadFilterType::kNotch,
                          BiquadFilterType::kAllpass),
        ::testing::Values(400.0, 2500.0, 9000.0)),
    [](const ::testing::TestParamInfo<ResponseParam>& info) {
      std::string name(to_string(std::get<0>(info.param)));
      name += "_" + std::to_string(static_cast<int>(std::get<1>(info.param)));
      return name;
    });

}  // namespace
}  // namespace wafp::webaudio
