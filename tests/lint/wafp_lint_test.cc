// Self-tests for wafp_lint (tools/lint): every fixture under
// tools/lint/testdata/ carries `expect-lint: <check>` markers (trailing on
// the offending line) or `expect-lint-next: <check>` markers (on the line
// above, for findings whose anchor *is* a comment line), and the suite
// asserts the reported (file, line, check) set equals the marker set
// exactly — no missing findings, no extras. Registry-hygiene findings
// anchor to the registry file and are asserted explicitly.
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "checks.h"
#include "gtest/gtest.h"
#include "lexer.h"

namespace wafp::lint {
namespace {

#ifndef WAFP_LINT_TESTDATA_DIR
#error "WAFP_LINT_TESTDATA_DIR must point at tools/lint/testdata"
#endif

const char* const kFixtures[] = {
    "libm_fixture.cc",   "effects_fixture.cc", "guarded_fixture.cc",
    "metrics_fixture.cc", "dcheck_fixture.cc", "pragma_fixture.cc",
};

std::string testdata(const std::string& name) {
  return std::string(WAFP_LINT_TESTDATA_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "unreadable fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

using Key = std::tuple<std::string, int, std::string>;  // file, line, check

/// Collects `expect-lint:` / `expect-lint-next:` markers from one fixture.
void collect_markers(const std::string& path, std::set<Key>* out) {
  std::istringstream in(slurp(path));
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  auto check_after = [](const std::string& line, std::size_t pos,
                        std::size_t taglen) {
    std::string rest = line.substr(pos + taglen);
    const auto b = rest.find_first_not_of(" \t");
    if (b == std::string::npos) return std::string();
    const auto e = rest.find_first_of(" \t", b);
    return rest.substr(b, e == std::string::npos ? e : e - b);
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto pos = lines[i].find("expect-lint: ");
    if (pos != std::string::npos) {
      out->insert({path, static_cast<int>(i + 1),
                   check_after(lines[i], pos, 13)});
      continue;
    }
    pos = lines[i].find("expect-lint-next: ");
    if (pos == std::string::npos) continue;
    // Anchor on the next line that is not itself a -next marker.
    std::size_t target = i + 1;
    while (target < lines.size() &&
           lines[target].find("expect-lint-next:") != std::string::npos) {
      ++target;
    }
    out->insert({path, static_cast<int>(target + 1),
                 check_after(lines[i], pos, 18)});
  }
}

Project load_fixture_project() {
  Project project;
  for (const char* name : kFixtures) {
    LexedFile f;
    EXPECT_TRUE(lex_path(testdata(name), &f)) << name;
    project.files.push_back(std::move(f));
  }
  project.registry_path = testdata("registry_fixture.txt");
  project.registry = parse_registry(slurp(project.registry_path));
  build_project_model(&project);
  return project;
}

TEST(WafpLintFixtures, FindingsMatchMarkersExactly) {
  const Project project = load_fixture_project();
  const std::vector<Finding> findings = run_checks(project);

  std::set<Key> expected;
  for (const char* name : kFixtures) collect_markers(testdata(name), &expected);

  std::set<Key> actual;
  for (const Finding& f : findings) {
    if (f.file == project.registry_path) continue;  // asserted separately
    EXPECT_TRUE(f.error) << f.file << ":" << f.line << " " << f.message;
    actual.insert({f.file, f.line, f.check});
  }

  for (const Key& k : expected) {
    EXPECT_TRUE(actual.contains(k))
        << "missing finding: " << std::get<0>(k) << ":" << std::get<1>(k)
        << " [" << std::get<2>(k) << "]";
  }
  for (const Key& k : actual) {
    EXPECT_TRUE(expected.contains(k))
        << "unexpected finding: " << std::get<0>(k) << ":" << std::get<1>(k)
        << " [" << std::get<2>(k) << "]";
  }
}

TEST(WafpLintFixtures, RegistryHygiene) {
  const Project project = load_fixture_project();
  const std::vector<Finding> findings = run_checks(project);

  // registry_fixture.txt: line 5 breaks sorted order; line 6 is malformed
  // and (because of case) also breaks order; lines 4-6 are never used by
  // any literal, so each draws a stale-entry warning.
  std::set<std::pair<int, bool>> got;  // (line, error)
  int errors = 0, warnings = 0;
  for (const Finding& f : findings) {
    if (f.file != project.registry_path) continue;
    EXPECT_EQ(f.check, "metric-name");
    got.insert({f.line, f.error});
    (f.error ? errors : warnings)++;
  }
  EXPECT_EQ(errors, 3);
  EXPECT_EQ(warnings, 3);
  const std::set<std::pair<int, bool>> want = {
      {5, true}, {6, true}, {4, false}, {5, false}, {6, false},
  };
  EXPECT_EQ(got, want);
}

TEST(WafpLintFixtures, VaryingLibmClassification) {
  EXPECT_TRUE(is_varying_libm("sin"));
  EXPECT_TRUE(is_varying_libm("sinf"));
  EXPECT_TRUE(is_varying_libm("atan2l"));
  EXPECT_TRUE(is_varying_libm("lgamma_r"));
  EXPECT_TRUE(is_varying_libm("erf"));  // 'f' tail is part of the base name
  EXPECT_FALSE(is_varying_libm("sqrt"));
  EXPECT_FALSE(is_varying_libm("fabs"));
  EXPECT_FALSE(is_varying_libm("fma"));
  EXPECT_FALSE(is_varying_libm("floor"));
  EXPECT_FALSE(is_varying_libm("frexp"));
}

TEST(WafpLintFixtures, PragmaScope) {
  const LexedFile f = lex_file(
      "mem.cc",
      "int a;\n"
      "// wafp-lint: allow(nonallocating): standalone covers next line\n"
      "int b;\n"
      "int c;  // wafp-lint: allow(guarded-by): trailing covers own line\n"
      "int d;\n");
  EXPECT_TRUE(f.allowed("nonallocating", 2));
  EXPECT_TRUE(f.allowed("nonallocating", 3));
  EXPECT_FALSE(f.allowed("nonallocating", 4));
  EXPECT_FALSE(f.allowed("guarded-by", 3));
  EXPECT_TRUE(f.allowed("guarded-by", 4));
  EXPECT_FALSE(f.allowed("guarded-by", 5));

  const LexedFile g = lex_file(
      "file.cc",
      "// wafp-lint: allow-file(no-host-libm): whole file\n"
      "int a;\n");
  EXPECT_TRUE(g.allowed("no-host-libm", 999));
  EXPECT_FALSE(g.allowed("nonallocating", 999));
}

}  // namespace
}  // namespace wafp::lint
