// Metamorphic properties of the drift scenario (DESIGN.md §3k):
//
//   * Zero drift is the static study: the rendered stream reproduces
//     study::Dataset::collect digests bit-for-bit, and the runner's final
//     partition equals the §6 collated clustering (cluster count and
//     anonymity-set stats bit-identically).
//   * Metrics depend only on equality structure: permuting engine user ids
//     and relabeling submission timestamps change nothing.
//   * FNMR is structurally monotone in the stack-swap drift rate (the
//     coupled-lattice contract in drift_model.h makes this exact, not
//     statistical).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/anonymity.h"
#include "fingerprint/vector_registry.h"
#include "scenario/scenario.h"
#include "study/experiments.h"

namespace wafp::scenario {
namespace {

// The rendered zero-drift stream is the static dataset, digest for digest:
// epoch e of user u's audio vector v equals Dataset iteration e.
TEST(ScenarioMetamorphicTest, ZeroDriftStreamReproducesDatasetDigests) {
  study::StudyConfig study_config;
  study_config.num_users = 20;
  study_config.iterations = 4;
  study_config.seed = 777;
  study_config.threads = 1;
  const study::Dataset dataset = study::Dataset::collect(study_config);

  const auto audio_ids = fingerprint::VectorRegistry::instance().audio_ids();
  ScenarioPopulation population(study_config.num_users, study_config.seed,
                                study_config.tuning, DriftModel{});
  ScenarioStream stream(
      population, ObservationSource::kRendered,
      std::vector<fingerprint::VectorId>(audio_ids.begin(), audio_ids.end()),
      /*threads=*/1);
  for (std::uint32_t e = 0; e < study_config.iterations; ++e) {
    const std::vector<Observation> observations = stream.epoch(e);
    ASSERT_EQ(observations.size(), study_config.num_users * audio_ids.size());
    for (const Observation& obs : observations) {
      ASSERT_EQ(obs.digest,
                dataset.audio_observation(obs.user, obs.vector, e))
          << "user " << obs.user << " vector "
          << fingerprint::to_string(obs.vector) << " epoch " << e;
    }
  }
  EXPECT_EQ(stream.drift_events(), 0U);
}

// The runner's final partition under zero drift equals the §6 collated
// clustering of the same vector — count and anonymity stats bit-identical.
TEST(ScenarioMetamorphicTest, ZeroDriftPartitionMatchesSection6Clustering) {
  study::StudyConfig study_config;
  study_config.num_users = 64;
  study_config.iterations = 5;
  study_config.seed = 909;
  study_config.threads = 1;
  const study::Dataset dataset = study::Dataset::collect(study_config);
  const collation::Clustering clustering =
      study::collated_clustering(dataset, fingerprint::VectorId::kDc);

  ScenarioConfig config;
  config.num_users = study_config.num_users;
  config.epochs = study_config.iterations;
  config.seed = study_config.seed;
  config.tuning = study_config.tuning;
  config.source = ObservationSource::kRendered;
  config.vectors = {fingerprint::VectorId::kDc};
  const ScenarioResult result = ScenarioRunner(config).run();

  const VerificationEpoch& final_epoch = result.epochs.back();
  EXPECT_EQ(final_epoch.cluster_count,
            static_cast<std::size_t>(clustering.num_clusters));
  EXPECT_EQ(final_epoch.anonymity,
            analysis::anonymity_from_labels(clustering.labels));
  EXPECT_EQ(result.drift_events, 0U);
}

ScenarioConfig synthetic_config() {
  ScenarioConfig config;
  config.num_users = 48;
  config.epochs = 6;
  config.seed = 1234;
  config.drift.stack_swap_rate = 0.12;
  config.drift.simd_tier_rate = 0.08;
  config.drift.jitter_regime_rate = 0.07;
  return config;
}

// Engine user ids are opaque: a seeded permutation of them changes no
// metric (the scorecards consume only equality structure).
TEST(ScenarioMetamorphicTest, UserIdPermutationInvariance) {
  ScenarioConfig config = synthetic_config();
  const ScenarioResult identity = ScenarioRunner(config).run();
  for (const std::uint64_t salt : {0xBEEFULL, 0x5151AAULL}) {
    config.user_id_salt = salt;
    const ScenarioResult permuted = ScenarioRunner(config).run();
    EXPECT_EQ(permuted.epochs, identity.epochs) << "salt " << salt;
  }
}

// Submission timestamps are bookkeeping: any (base, stride) relabeling
// leaves every metric AND the canonical partition checksum unchanged.
TEST(ScenarioMetamorphicTest, TimestampRelabelingInvariance) {
  ScenarioConfig config = synthetic_config();
  const ScenarioResult baseline = ScenarioRunner(config).run();
  const struct {
    std::uint64_t base;
    std::uint64_t stride;
  } relabelings[] = {{1000, 1}, {1, 977}, {123456789, 3600}};
  for (const auto& relabeling : relabelings) {
    config.timestamp_base = relabeling.base;
    config.timestamp_stride = relabeling.stride;
    const ScenarioResult relabeled = ScenarioRunner(config).run();
    EXPECT_EQ(relabeled.epochs, baseline.epochs)
        << "base " << relabeling.base << " stride " << relabeling.stride;
    EXPECT_EQ(relabeled.component_checksum, baseline.component_checksum)
        << "base " << relabeling.base << " stride " << relabeling.stride;
  }
}

// With pinned zero flakiness and fresh variants, a false non-match happens
// exactly when a stack swap lands (never-seen digests), and the lattice
// nests event sets across rates — so FNMR is exactly monotone, with zero
// drift giving zero FNMR.
TEST(ScenarioMetamorphicTest, FnmrIsMonotoneInStackSwapRate) {
  ScenarioConfig config;
  config.num_users = 64;
  config.epochs = 8;
  config.seed = 31337;
  config.flakiness_override = 0.0;
  config.drift.fresh_variants = true;
  config.drift.simd_tier_rate = 0.0;
  config.drift.jitter_regime_rate = 0.0;

  std::uint64_t previous_fnm = 0;
  bool first = true;
  for (const double rate : {0.0, 0.05, 0.2, 0.5}) {
    config.drift.stack_swap_rate = rate;
    const ScenarioResult result = ScenarioRunner(config).run();
    const analysis::VerificationCounts totals = result.totals();
    if (rate == 0.0) {
      EXPECT_EQ(totals.false_non_matches, 0U);
      EXPECT_EQ(totals.genuine_accepts, totals.probes);
      EXPECT_EQ(result.drift_events, 0U);
    }
    if (!first) {
      EXPECT_GE(totals.false_non_matches, previous_fnm)
          << "FNMR regressed when raising stack_swap_rate to " << rate;
    }
    previous_fnm = totals.false_non_matches;
    first = false;
  }
  EXPECT_GT(previous_fnm, 0U) << "rate 0.5 over 8 epochs must swap someone";
}

// Zero drift + zero flakiness: the partition never moves after enrollment
// — no churn, no false non-matches, constant anonymity stats.
TEST(ScenarioMetamorphicTest, ZeroDriftZeroFlakinessIsStationary) {
  ScenarioConfig config;
  config.num_users = 96;
  config.epochs = 7;
  config.seed = 555;
  config.flakiness_override = 0.0;
  const ScenarioResult result = ScenarioRunner(config).run();

  ASSERT_EQ(result.epochs.size(), config.epochs);
  const VerificationEpoch& enrollment = result.epochs.front();
  EXPECT_EQ(enrollment.verification, analysis::VerificationCounts{});
  EXPECT_EQ(enrollment.churn, (analysis::PairChurn{}));
  for (const VerificationEpoch& epoch : result.epochs) {
    EXPECT_EQ(epoch.drift_events, 0U) << "epoch " << epoch.epoch;
    EXPECT_EQ(epoch.churn, (analysis::PairChurn{})) << "epoch " << epoch.epoch;
    EXPECT_EQ(epoch.anonymity, enrollment.anonymity)
        << "epoch " << epoch.epoch;
    EXPECT_EQ(epoch.cluster_count, enrollment.cluster_count)
        << "epoch " << epoch.epoch;
    if (epoch.epoch >= 1) {
      EXPECT_EQ(epoch.verification.false_non_matches, 0U)
          << "epoch " << epoch.epoch;
      EXPECT_EQ(epoch.verification.genuine_accepts,
                epoch.verification.probes)
          << "epoch " << epoch.epoch;
    }
  }
}

}  // namespace
}  // namespace wafp::scenario
