#include "ref_verifier.h"

#include <algorithm>
#include <deque>
#include <optional>

#include "util/check.h"

namespace wafp::testing {

RefVerifier::RefVerifier(std::size_t num_users)
    : num_users_(num_users), user_digests_(num_users) {}

std::vector<int> RefVerifier::components(
    std::unordered_map<std::string, int>* digest_labels) const {
  std::vector<int> labels(num_users_, -1);
  int next = 0;
  for (std::size_t root = 0; root < num_users_; ++root) {
    if (labels[root] != -1) continue;
    const int label = next++;
    std::deque<std::uint32_t> frontier{static_cast<std::uint32_t>(root)};
    labels[root] = label;
    while (!frontier.empty()) {
      const std::uint32_t u = frontier.front();
      frontier.pop_front();
      for (const std::string& digest : user_digests_[u]) {
        if (digest_labels != nullptr) (*digest_labels)[digest] = label;
        for (const std::uint32_t v : digest_users_.at(digest)) {
          if (labels[v] == -1) {
            labels[v] = label;
            frontier.push_back(v);
          }
        }
      }
    }
  }
  return labels;
}

scenario::VerificationEpoch RefVerifier::epoch(
    std::uint32_t epoch, std::span<const scenario::Observation> observations,
    std::uint64_t drift_events) {
  WAFP_CHECK(observations.size() % num_users_ == 0)
      << "observations must cover every user uniformly";
  const std::size_t per_user = observations.size() / num_users_;

  scenario::VerificationEpoch record;
  record.epoch = epoch;
  record.drift_events = drift_events;

  if (epoch >= 1) {
    // Pre-ingest partition: per-user labels, per-digest labels, and the
    // per-cluster user census.
    std::unordered_map<std::string, int> digest_labels;
    const std::vector<int> labels = components(&digest_labels);
    std::unordered_map<int, std::uint64_t> census;
    for (const int label : labels) ++census[label];

    for (std::size_t u = 0; u < num_users_; ++u) {
      // Per-digest votes in probe order; plurality, ties to the cluster
      // whose first vote came earliest.
      std::vector<int> vote_order;
      std::unordered_map<int, std::uint64_t> votes;
      for (std::size_t v = 0; v < per_user; ++v) {
        const scenario::Observation& obs = observations[u * per_user + v];
        WAFP_CHECK(obs.user == u) << "observation stream out of order";
        const auto it = digest_labels.find(obs.digest.hex());
        if (it == digest_labels.end()) continue;
        auto [vote, inserted] = votes.try_emplace(it->second, 0);
        if (inserted) vote_order.push_back(it->second);
        ++vote->second;
      }
      std::optional<int> winner;
      std::uint64_t best = 0;
      for (const int cluster : vote_order) {
        if (votes[cluster] > best) {
          best = votes[cluster];
          winner = cluster;
        }
      }

      ++record.verification.probes;
      record.verification.imposter_trials += num_users_ - 1;
      if (winner.has_value() && *winner == labels[u]) {
        ++record.verification.genuine_accepts;
      } else {
        ++record.verification.false_non_matches;
      }
      if (winner.has_value()) {
        record.verification.false_matches +=
            census[*winner] - (*winner == labels[u] ? 1 : 0);
      }
    }
  }

  // Ingest epoch digests into the bipartite record.
  for (const scenario::Observation& obs : observations) {
    const std::string hex = obs.digest.hex();
    auto [it, inserted] = digest_users_.try_emplace(hex);
    auto& users = it->second;
    if (std::find(users.begin(), users.end(), obs.user) == users.end()) {
      users.push_back(obs.user);
      user_digests_[obs.user].push_back(hex);
    }
  }

  // Post-ingest partition scoring. Churn by literal pair enumeration —
  // the O(n^2) ground truth for analysis::pair_churn.
  const std::vector<int> labels = components(nullptr);
  record.cluster_count =
      static_cast<std::size_t>(
          *std::max_element(labels.begin(), labels.end())) +
      1;
  record.anonymity = analysis::anonymity_from_labels(labels);
  if (epoch >= 1) {
    for (std::size_t i = 0; i < num_users_; ++i) {
      for (std::size_t j = i + 1; j < num_users_; ++j) {
        const bool before = previous_labels_[i] == previous_labels_[j];
        const bool now = labels[i] == labels[j];
        if (!before && now) ++record.churn.merge_pairs;
        if (before && !now) ++record.churn.split_pairs;
      }
    }
  }
  previous_labels_ = labels;
  return record;
}

}  // namespace wafp::testing
