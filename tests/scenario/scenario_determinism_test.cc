// Seeded determinism of the drift-scenario machinery: the observation
// stream, drift trajectories, and full runner results are pure functions
// of the config — invariant across generation thread counts, engine shard
// counts, and repeated runs (the property every oracle and metamorphic
// comparison in this directory silently relies on).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "scenario/scenario.h"

namespace wafp::scenario {
namespace {

ScenarioConfig base_config() {
  ScenarioConfig config;
  config.num_users = 64;
  config.epochs = 6;
  config.seed = 606;
  config.drift.stack_swap_rate = 0.12;
  config.drift.simd_tier_rate = 0.08;
  config.drift.jitter_regime_rate = 0.07;
  return config;
}

// Digest generation is embarrassingly parallel over users; the thread
// count must never leak into a single digest or metric.
TEST(ScenarioDeterminismTest, ThreadCountIsInvisible) {
  ScenarioConfig config = base_config();
  config.threads = 1;
  const ScenarioResult baseline = ScenarioRunner(config).run();
  for (const std::size_t threads : {2, 8}) {
    config.threads = threads;
    const ScenarioResult result = ScenarioRunner(config).run();
    EXPECT_EQ(result.epochs, baseline.epochs) << "threads " << threads;
    EXPECT_EQ(result.component_checksum, baseline.component_checksum)
        << "threads " << threads;
    EXPECT_EQ(result.drift_events, baseline.drift_events)
        << "threads " << threads;
  }
}

// Sharding is an engine implementation detail: identical scorecards AND
// identical canonical partition checksum at 0 (single loop), 1, 2, 8.
TEST(ScenarioDeterminismTest, ShardCountIsInvisible) {
  ScenarioConfig config = base_config();
  config.shards = 0;
  const ScenarioResult baseline = ScenarioRunner(config).run();
  for (const std::size_t shards : {1, 2, 8}) {
    config.shards = shards;
    const ScenarioResult result = ScenarioRunner(config).run();
    EXPECT_EQ(result.epochs, baseline.epochs) << "shards " << shards;
    EXPECT_EQ(result.component_checksum, baseline.component_checksum)
        << "shards " << shards;
  }
}

TEST(ScenarioDeterminismTest, RepeatedRunsAreBitIdentical) {
  const ScenarioConfig config = base_config();
  const ScenarioResult first = ScenarioRunner(config).run();
  const ScenarioResult second = ScenarioRunner(config).run();
  EXPECT_EQ(first.epochs, second.epochs);
  EXPECT_EQ(first.component_checksum, second.component_checksum);
  EXPECT_EQ(first.drift_events, second.drift_events);
}

// Two independently constructed streams over the same population emit the
// byte-identical observation sequence, epoch by epoch — including the
// multi-threaded one.
TEST(ScenarioDeterminismTest, StreamIsReplayable) {
  const ScenarioConfig config = base_config();
  ScenarioPopulation population(config.num_users, config.seed, config.tuning,
                                config.drift);
  ScenarioStream serial(population, ObservationSource::kSynthetic,
                        default_scenario_vectors(), /*threads=*/1);
  ScenarioStream threaded(population, ObservationSource::kSynthetic,
                          default_scenario_vectors(), /*threads=*/4);
  for (std::uint32_t e = 0; e < config.epochs; ++e) {
    const std::vector<Observation> a = serial.epoch(e);
    const std::vector<Observation> b = threaded.epoch(e);
    ASSERT_EQ(a.size(), b.size()) << "epoch " << e;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].user, b[i].user) << "epoch " << e << " index " << i;
      ASSERT_EQ(a[i].vector, b[i].vector) << "epoch " << e << " index " << i;
      ASSERT_EQ(a[i].digest, b[i].digest) << "epoch " << e << " index " << i;
    }
    ASSERT_EQ(serial.drift_events(), threaded.drift_events()) << "epoch " << e;
  }
}

// O(epoch) random access (state_at) agrees with the incremental advance
// the stream uses — same lattice, same replay order.
TEST(ScenarioDeterminismTest, StateAtMatchesIncrementalAdvance) {
  const ScenarioConfig config = base_config();
  ScenarioPopulation population(config.num_users, config.seed, config.tuning,
                                config.drift);
  std::vector<DriftState> states(population.size());
  std::uint64_t events = 0;
  for (std::uint32_t e = 1; e <= config.epochs; ++e) {
    events += population.advance(states, e);
    for (std::size_t u = 0; u < population.size(); ++u) {
      ASSERT_EQ(population.state_at(u, e), states[u])
          << "user " << u << " epoch " << e;
    }
  }
  EXPECT_GT(events, 0U) << "drift rates chosen to produce events";
}

// Zero drift state reconstructs the enrolled user bit-identically — the
// anchor of the zero-drift tie-back in the metamorphic suite.
TEST(ScenarioDeterminismTest, ZeroStateReconstructsBaseUser) {
  const ScenarioConfig config = base_config();
  ScenarioPopulation population(config.num_users, config.seed, config.tuning,
                                config.drift);
  for (std::size_t u = 0; u < population.size(); ++u) {
    const platform::StudyUser evolved = population.user_at(u, DriftState{});
    const platform::StudyUser& base = population.base_user(u);
    EXPECT_EQ(evolved.seed, base.seed) << "user " << u;
    EXPECT_EQ(evolved.profile.audio, base.profile.audio) << "user " << u;
    EXPECT_EQ(evolved.profile.simd_tier, base.profile.simd_tier)
        << "user " << u;
    EXPECT_EQ(evolved.profile.fickle.flakiness, base.profile.fickle.flakiness)
        << "user " << u;
  }
}

}  // namespace
}  // namespace wafp::scenario
