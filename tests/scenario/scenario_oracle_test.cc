// Lockstep differential testing of the streamed drift-scenario verifier:
// every epoch's FMR/FNMR counts, anonymity-set stats, cluster count, and
// pair churn out of ScenarioRunner (which streams through a real
// CollationEngine) must equal the brute-force RefVerifier — re-implemented
// from the normative spec comment in src/scenario/scenario.h with no
// shared code — at every shard count, including kill-every-k durable runs
// where the engine crashes and recovers mid-scenario.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "ref_verifier.h"
#include "scenario/scenario.h"

namespace wafp::testing {
namespace {

constexpr std::size_t kShardCounts[] = {0, 1, 2, 8};

/// Replay the scenario's observation stream (regenerated independently of
/// the runner) through the brute-force verifier, in lockstep.
std::vector<scenario::VerificationEpoch> reference_epochs(
    const scenario::ScenarioConfig& config) {
  scenario::ScenarioPopulation population(config.num_users, config.seed,
                                          config.tuning, config.drift,
                                          config.flakiness_override);
  std::vector<fingerprint::VectorId> vectors = config.vectors;
  if (vectors.empty()) vectors = scenario::default_scenario_vectors();
  scenario::ScenarioStream stream(population, config.source, vectors,
                                  /*threads=*/1);
  RefVerifier ref(config.num_users);
  std::vector<scenario::VerificationEpoch> epochs;
  std::uint64_t previous_events = 0;
  for (std::uint32_t e = 0; e < config.epochs; ++e) {
    const std::vector<scenario::Observation> observations = stream.epoch(e);
    const std::uint64_t events = stream.drift_events() - previous_events;
    previous_events = stream.drift_events();
    epochs.push_back(ref.epoch(e, observations, events));
  }
  return epochs;
}

void expect_epochs_equal(const std::vector<scenario::VerificationEpoch>& got,
                         const std::vector<scenario::VerificationEpoch>& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t e = 0; e < want.size(); ++e) {
    if (got[e] == want[e]) continue;
    ADD_FAILURE() << context << ": epoch " << e << " diverged — "
                  << "probes " << got[e].verification.probes << "/"
                  << want[e].verification.probes << ", genuine "
                  << got[e].verification.genuine_accepts << "/"
                  << want[e].verification.genuine_accepts << ", fnm "
                  << got[e].verification.false_non_matches << "/"
                  << want[e].verification.false_non_matches << ", fm "
                  << got[e].verification.false_matches << "/"
                  << want[e].verification.false_matches << ", clusters "
                  << got[e].cluster_count << "/" << want[e].cluster_count
                  << ", churn +" << got[e].churn.merge_pairs << "/-"
                  << got[e].churn.split_pairs << " vs +"
                  << want[e].churn.merge_pairs << "/-"
                  << want[e].churn.split_pairs << ", min_k "
                  << got[e].anonymity.min_k << "/" << want[e].anonymity.min_k
                  << ", drift " << got[e].drift_events << "/"
                  << want[e].drift_events;
    return;
  }
}

// Moderate-drift synthetic scenarios at three seeds: the streamed runner
// matches the oracle at every shard count, and the canonical partition
// checksum is shard-count-invariant.
TEST(ScenarioOracleTest, SyntheticLockstepAcrossShardCountsAndSeeds) {
  for (const std::uint64_t seed : {11U, 22U, 33U}) {
    scenario::ScenarioConfig config;
    config.num_users = 48;
    config.epochs = 8;
    config.seed = seed;
    config.drift.stack_swap_rate = 0.10;
    config.drift.simd_tier_rate = 0.06;
    config.drift.jitter_regime_rate = 0.05;
    config.drift.seed = seed * 1000 + 7;
    const auto want = reference_epochs(config);

    std::uint64_t first_checksum = 0;
    for (const std::size_t shards : kShardCounts) {
      config.shards = shards;
      scenario::ScenarioRunner runner(config);
      const scenario::ScenarioResult result = runner.run();
      expect_epochs_equal(result.epochs, want,
                          "seed " + std::to_string(seed) + " shards " +
                              std::to_string(shards));
      std::uint64_t total_events = 0;
      for (const auto& epoch : result.epochs) {
        total_events += epoch.drift_events;
      }
      EXPECT_EQ(result.drift_events, total_events);
      EXPECT_NE(result.component_checksum, 0U);
      if (shards == 0) {
        first_checksum = result.component_checksum;
      } else {
        EXPECT_EQ(result.component_checksum, first_checksum)
            << "seed " << seed << " shards " << shards
            << ": sharded partition diverged from the single engine";
      }
    }
  }
}

// fresh_variants + pinned flakiness is the adversarial regime for the
// verifier (every swap lands on never-seen digests): still bit-exact
// against the oracle.
TEST(ScenarioOracleTest, FreshVariantHighDriftLockstep) {
  scenario::ScenarioConfig config;
  config.num_users = 40;
  config.epochs = 10;
  config.seed = 4242;
  config.drift.stack_swap_rate = 0.35;
  config.drift.simd_tier_rate = 0.20;
  config.drift.jitter_regime_rate = 0.15;
  config.drift.fresh_variants = true;
  config.flakiness_override = 0.4;
  const auto want = reference_epochs(config);
  for (const std::size_t shards : kShardCounts) {
    config.shards = shards;
    const scenario::ScenarioResult result =
        scenario::ScenarioRunner(config).run();
    expect_epochs_equal(result.epochs, want,
                        "shards " + std::to_string(shards));
  }
}

// Kill-every-k durable soak: the engine is crashed (no checkpoint) and
// recovered from WAL + snapshots every 3 epochs; all probes and label
// read-backs after recovery must still match the oracle, at every shard
// count.
TEST(ScenarioOracleTest, KillEveryKRecoveryLockstepPerShardCount) {
  scenario::ScenarioConfig config;
  config.num_users = 40;
  config.epochs = 9;
  config.seed = 99;
  config.drift.stack_swap_rate = 0.12;
  config.drift.simd_tier_rate = 0.08;
  config.drift.jitter_regime_rate = 0.06;
  config.kill_every = 3;
  const auto want = reference_epochs(config);
  for (const std::size_t shards : {1, 2, 8}) {
    const std::string dir = ::testing::TempDir() + "scenario_oracle_crash_" +
                            std::to_string(shards);
    std::filesystem::remove_all(dir);
    config.shards = shards;
    config.service.state_dir = dir;
    config.service.snapshot_every = 64;
    const scenario::ScenarioResult result =
        scenario::ScenarioRunner(config).run();
    expect_epochs_equal(result.epochs, want,
                        "kill-every-3 shards " + std::to_string(shards));
    std::filesystem::remove_all(dir);
  }
}

// The rendered source (real DSP through FingerprintCollector plus the WASM
// compute batteries) obeys the same spec: lockstep parity on a small
// cohort, single and sharded.
TEST(ScenarioOracleTest, RenderedSourceLockstep) {
  scenario::ScenarioConfig config;
  config.num_users = 16;
  config.epochs = 4;
  config.seed = 314;
  config.source = scenario::ObservationSource::kRendered;
  config.vectors = {fingerprint::VectorId::kDc, fingerprint::VectorId::kFm,
                    fingerprint::VectorId::kWasmFloat,
                    fingerprint::VectorId::kWasmSimd};
  config.drift.stack_swap_rate = 0.15;
  config.drift.simd_tier_rate = 0.10;
  config.drift.jitter_regime_rate = 0.10;
  const auto want = reference_epochs(config);
  for (const std::size_t shards : {0, 2}) {
    config.shards = shards;
    const scenario::ScenarioResult result =
        scenario::ScenarioRunner(config).run();
    expect_epochs_equal(result.epochs, want,
                        "rendered shards " + std::to_string(shards));
  }
}

}  // namespace
}  // namespace wafp::testing
