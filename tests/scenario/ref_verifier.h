// RefVerifier: the brute-force reference implementation of the drift
// scenario's verification spec (src/scenario/scenario.h — the spec comment
// there is the ONLY thing this file shares with the streamed runner; no
// collation, service, or scenario verification code is reused).
//
// State is the raw bipartite record: which digests each user has ever
// submitted. Every query recomputes connected components by breadth-first
// search, matches each probe digest individually against the pre-ingest
// partition, applies the documented plurality rule, and counts
// FMR/FNMR/churn from first principles (churn by literal iteration over
// all user pairs). Deliberately quadratic and allocation-happy: its only
// job is to be obviously correct.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "scenario/scenario.h"

namespace wafp::testing {

class RefVerifier {
 public:
  explicit RefVerifier(std::size_t num_users);

  /// Score one epoch in lockstep with the streamed runner: probe (epochs
  /// >= 1), then ingest, then score the post-ingest partition. Must be
  /// called with epoch = 0, 1, 2, ... in order. `drift_events` is copied
  /// into the record (the ref verifier does not model drift; events are
  /// observable only through the digests).
  [[nodiscard]] scenario::VerificationEpoch epoch(
      std::uint32_t epoch, std::span<const scenario::Observation> observations,
      std::uint64_t drift_events);

 private:
  /// Dense per-user component labels of the current bipartite graph, by
  /// BFS, numbered in ascending lowest-member-user order; also fills the
  /// digest -> label map.
  [[nodiscard]] std::vector<int> components(
      std::unordered_map<std::string, int>* digest_labels) const;

  std::size_t num_users_;
  // user -> every distinct digest (hex) it ever submitted, and the reverse.
  std::vector<std::vector<std::string>> user_digests_;
  std::unordered_map<std::string, std::vector<std::uint32_t>> digest_users_;
  std::vector<int> previous_labels_;
};

}  // namespace wafp::testing
