#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>
#include <vector>

#include "util/rng.h"

namespace wafp::dsp {
namespace {

std::shared_ptr<const MathLibrary> precise() {
  static const std::shared_ptr<const MathLibrary> math =
      make_math_library(MathVariant::kPrecise);
  return math;
}

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.next_double() * 2.0 - 1.0;
  return out;
}

using FftParam = std::tuple<FftVariant, TwiddleMode, std::size_t>;

class FftAccuracyTest : public ::testing::TestWithParam<FftParam> {};

TEST_P(FftAccuracyTest, MatchesNaiveDft) {
  const auto [variant, mode, n] = GetParam();
  const auto engine = make_fft_engine(variant, precise(), mode);
  ASSERT_TRUE(engine->supports_size(n));

  std::vector<double> re = random_signal(n, 1);
  std::vector<double> im = random_signal(n, 2);
  std::vector<double> want_re(n), want_im(n);
  naive_dft(re, im, want_re, want_im, *precise());

  engine->forward(re, im);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(re[k], want_re[k], 1e-8 * static_cast<double>(n))
        << "bin " << k;
    EXPECT_NEAR(im[k], want_im[k], 1e-8 * static_cast<double>(n))
        << "bin " << k;
  }
}

TEST_P(FftAccuracyTest, InverseRoundTrip) {
  const auto [variant, mode, n] = GetParam();
  const auto engine = make_fft_engine(variant, precise(), mode);

  const std::vector<double> orig_re = random_signal(n, 3);
  const std::vector<double> orig_im = random_signal(n, 4);
  std::vector<double> re = orig_re, im = orig_im;
  engine->forward(re, im);
  engine->inverse(re, im);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(re[k], orig_re[k], 1e-9);
    EXPECT_NEAR(im[k], orig_im[k], 1e-9);
  }
}

TEST_P(FftAccuracyTest, ImpulseGivesFlatSpectrum) {
  const auto [variant, mode, n] = GetParam();
  const auto engine = make_fft_engine(variant, precise(), mode);
  std::vector<double> re(n, 0.0), im(n, 0.0);
  re[0] = 1.0;
  engine->forward(re, im);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(re[k], 1.0, 1e-10);
    EXPECT_NEAR(im[k], 0.0, 1e-10);
  }
}

TEST_P(FftAccuracyTest, ParsevalHolds) {
  const auto [variant, mode, n] = GetParam();
  const auto engine = make_fft_engine(variant, precise(), mode);
  std::vector<double> re = random_signal(n, 5);
  std::vector<double> im(n, 0.0);
  double time_energy = 0.0;
  for (const double v : re) time_energy += v * v;
  engine->forward(re, im);
  double freq_energy = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    freq_energy += re[k] * re[k] + im[k] * im[k];
  }
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-7 * time_energy);
}

TEST_P(FftAccuracyTest, Linearity) {
  const auto [variant, mode, n] = GetParam();
  const auto engine = make_fft_engine(variant, precise(), mode);
  std::vector<double> a = random_signal(n, 6);
  std::vector<double> b = random_signal(n, 7);
  std::vector<double> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + b[i];

  std::vector<double> a_im(n, 0.0), b_im(n, 0.0), sum_im(n, 0.0);
  engine->forward(a, a_im);
  engine->forward(b, b_im);
  engine->forward(sum, sum_im);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(sum[k], 2.0 * a[k] + b[k], 1e-8);
    EXPECT_NEAR(sum_im[k], 2.0 * a_im[k] + b_im[k], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAndSizes, FftAccuracyTest,
    ::testing::Combine(
        ::testing::Values(FftVariant::kRadix2, FftVariant::kRadix4,
                          FftVariant::kSplitRadix, FftVariant::kBluestein),
        ::testing::Values(TwiddleMode::kDirect, TwiddleMode::kRecurrence),
        ::testing::Values(std::size_t{2}, std::size_t{8}, std::size_t{64},
                          std::size_t{256}, std::size_t{2048})),
    [](const ::testing::TestParamInfo<FftParam>& info) {
      std::string name(to_string(std::get<0>(info.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      name += std::get<1>(info.param) == TwiddleMode::kDirect ? "_direct"
                                                              : "_recur";
      name += "_n" + std::to_string(std::get<2>(info.param));
      return name;
    });

TEST(BluesteinTest, SupportsNonPowerOfTwoSizes) {
  const auto engine =
      make_fft_engine(FftVariant::kBluestein, precise(), TwiddleMode::kDirect);
  for (const std::size_t n : {3u, 5u, 7u, 12u, 100u, 441u}) {
    ASSERT_TRUE(engine->supports_size(n));
    std::vector<double> re = random_signal(n, n);
    std::vector<double> im = random_signal(n, n + 1);
    std::vector<double> want_re(n), want_im(n);
    naive_dft(re, im, want_re, want_im, *precise());
    engine->forward(re, im);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(re[k], want_re[k], 1e-7) << "n=" << n << " k=" << k;
      EXPECT_NEAR(im[k], want_im[k], 1e-7) << "n=" << n << " k=" << k;
    }
  }
}

TEST(FftEngineTest, PowerOfTwoOnlyEnginesRejectOtherSizes) {
  for (const FftVariant v :
       {FftVariant::kRadix2, FftVariant::kRadix4, FftVariant::kSplitRadix}) {
    const auto engine = make_fft_engine(v, precise());
    EXPECT_TRUE(engine->supports_size(1024));
    EXPECT_FALSE(engine->supports_size(1000));
    EXPECT_FALSE(engine->supports_size(0));
  }
}

TEST(FftEngineTest, VariantsDifferInLowOrderBits) {
  // The fingerprinting premise: all engines compute the same DFT, but at
  // least some of them disagree in the exact bits.
  constexpr std::size_t n = 2048;
  const std::vector<double> signal = random_signal(n, 11);

  std::vector<std::vector<double>> spectra;
  for (const FftVariant v :
       {FftVariant::kRadix2, FftVariant::kRadix4, FftVariant::kSplitRadix,
        FftVariant::kBluestein}) {
    std::vector<double> re = signal, im(n, 0.0);
    make_fft_engine(v, precise())->forward(re, im);
    spectra.push_back(std::move(re));
  }
  int differing_pairs = 0;
  for (std::size_t i = 0; i < spectra.size(); ++i) {
    for (std::size_t j = i + 1; j < spectra.size(); ++j) {
      if (spectra[i] != spectra[j]) ++differing_pairs;
    }
  }
  EXPECT_EQ(differing_pairs, 6);  // all pairs differ bit-wise
}

TEST(FftEngineTest, TwiddleModesDifferInLowOrderBits) {
  constexpr std::size_t n = 2048;
  const std::vector<double> signal = random_signal(n, 13);
  std::vector<double> re_a = signal, im_a(n, 0.0);
  std::vector<double> re_b = signal, im_b(n, 0.0);
  make_fft_engine(FftVariant::kRadix2, precise(), TwiddleMode::kDirect)
      ->forward(re_a, im_a);
  make_fft_engine(FftVariant::kRadix2, precise(), TwiddleMode::kRecurrence)
      ->forward(re_b, im_b);
  EXPECT_NE(re_a, re_b);
}

TEST(FftEngineTest, MathVariantChangesBits) {
  constexpr std::size_t n = 1024;
  const std::vector<double> signal = random_signal(n, 17);
  std::vector<double> re_a = signal, im_a(n, 0.0);
  std::vector<double> re_b = signal, im_b(n, 0.0);
  make_fft_engine(FftVariant::kRadix2, precise())->forward(re_a, im_a);
  make_fft_engine(FftVariant::kRadix2,
                  make_math_library(MathVariant::kFdlibm))
      ->forward(re_b, im_b);
  EXPECT_NE(re_a, re_b);
}

TEST(FftEngineTest, DeterministicAcrossCalls) {
  constexpr std::size_t n = 512;
  const auto engine = make_fft_engine(FftVariant::kSplitRadix, precise());
  const std::vector<double> signal = random_signal(n, 19);
  std::vector<double> re_a = signal, im_a(n, 0.0);
  std::vector<double> re_b = signal, im_b(n, 0.0);
  engine->forward(re_a, im_a);
  engine->forward(re_b, im_b);
  EXPECT_EQ(re_a, re_b);
  EXPECT_EQ(im_a, im_b);
}

TEST(NaiveDftTest, SingleToneLandsInOneBin) {
  constexpr std::size_t n = 64;
  std::vector<double> re(n), im(n, 0.0), out_re(n), out_im(n);
  for (std::size_t t = 0; t < n; ++t) {
    re[t] = std::cos(2.0 * std::numbers::pi * 4.0 * static_cast<double>(t) /
                     static_cast<double>(n));
  }
  naive_dft(re, im, out_re, out_im, *precise());
  EXPECT_NEAR(out_re[4], static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(out_re[n - 4], static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(out_re[5], 0.0, 1e-9);
}

}  // namespace
}  // namespace wafp::dsp
