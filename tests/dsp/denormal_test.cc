#include "dsp/denormal.h"

#include <gtest/gtest.h>

#include <limits>

#include "dsp/fma.h"

namespace wafp::dsp {
namespace {

TEST(DenormalTest, FlushToZeroFlushesSubnormals) {
  const float sub = std::numeric_limits<float>::denorm_min() * 8.0f;
  ASSERT_GT(sub, 0.0f);
  ASSERT_LT(sub, std::numeric_limits<float>::min());
  EXPECT_EQ(flush_denormal(sub, DenormalPolicy::kFlushToZero), 0.0f);
  EXPECT_EQ(flush_denormal(-sub, DenormalPolicy::kFlushToZero), 0.0f);
}

TEST(DenormalTest, PreserveKeepsSubnormals) {
  const float sub = std::numeric_limits<float>::denorm_min() * 8.0f;
  EXPECT_EQ(flush_denormal(sub, DenormalPolicy::kPreserve), sub);
}

TEST(DenormalTest, NormalsUntouchedByEitherPolicy) {
  for (const double v : {1.0, -3.5, 1e-300, 0.0}) {
    EXPECT_EQ(flush_denormal(v, DenormalPolicy::kFlushToZero), v);
    EXPECT_EQ(flush_denormal(v, DenormalPolicy::kPreserve), v);
  }
}

TEST(DenormalTest, DoubleSubnormalFlushed) {
  const double sub = std::numeric_limits<double>::denorm_min() * 4.0;
  EXPECT_EQ(flush_denormal(sub, DenormalPolicy::kFlushToZero), 0.0);
  EXPECT_EQ(flush_denormal(sub, DenormalPolicy::kPreserve), sub);
}

TEST(FmaTest, FusedAndUnfusedAgreeApproximately) {
  const double a = 1.0 / 3.0, b = 3.0000000001, c = -1.0;
  EXPECT_NEAR(mul_add(a, b, c, true), mul_add(a, b, c, false), 1e-12);
}

TEST(FmaTest, FusedAndUnfusedDifferInBits) {
  // Find at least one triple where single vs double rounding is visible —
  // the one-ULP surface real builds expose.
  bool found = false;
  for (int i = 1; i < 200 && !found; ++i) {
    const double a = 1.0 / (3.0 + i);
    const double b = 7.0 / (11.0 + i);
    const double c = -a * b * (1.0 + 1e-17);
    found = mul_add(a, b, c, true) != mul_add(a, b, c, false);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace wafp::dsp
