#include "dsp/window.h"

#include <gtest/gtest.h>

#include <cmath>

namespace wafp::dsp {
namespace {

std::shared_ptr<const MathLibrary> precise() {
  return make_math_library(MathVariant::kPrecise);
}

TEST(BlackmanWindowTest, ClassicEndpointsNearZero) {
  const auto w = blackman_window(256, *precise());
  ASSERT_EQ(w.size(), 256u);
  // a0 - a1 + a2 = 0.42 - 0.5 + 0.08 = 0 at i = 0.
  EXPECT_NEAR(w[0], 0.0, 1e-12);
}

TEST(BlackmanWindowTest, PeakNearCentre) {
  const auto w = blackman_window(512, *precise());
  EXPECT_NEAR(w[256], 1.0, 1e-9);  // a0 + a1 + a2 = 1 at i = N/2
  for (const double v : w) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(BlackmanWindowTest, SymmetricAboutCentre) {
  const auto w = blackman_window(128, *precise());
  for (std::size_t i = 1; i < 64; ++i) {
    EXPECT_NEAR(w[i], w[128 - i], 1e-12) << i;
  }
}

TEST(BlackmanWindowTest, AlphaChangesWindow) {
  const auto classic = blackman_window(64, *precise(), 0.16);
  const auto variant = blackman_window(64, *precise(), 0.158);
  EXPECT_NE(classic, variant);
  // ... but only slightly: same shape.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(classic[i], variant[i], 0.01);
  }
}

TEST(BlackmanWindowTest, MathVariantChangesBits) {
  const auto a = blackman_window(64, *precise());
  const auto b = blackman_window(64, *make_math_library(MathVariant::kTable));
  EXPECT_NE(a, b);
}

TEST(ApplyWindowTest, MultipliesElementwise) {
  std::vector<double> data = {1.0, 2.0, 3.0};
  const std::vector<double> window = {0.5, 1.0, 0.0};
  apply_window(data, window);
  EXPECT_DOUBLE_EQ(data[0], 0.5);
  EXPECT_DOUBLE_EQ(data[1], 2.0);
  EXPECT_DOUBLE_EQ(data[2], 0.0);
}

}  // namespace
}  // namespace wafp::dsp
