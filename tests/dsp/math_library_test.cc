#include "dsp/math_library.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>
#include <vector>

namespace wafp::dsp {
namespace {

const std::vector<MathVariant> kAllVariants = {
    MathVariant::kPrecise,      MathVariant::kFdlibm,
    MathVariant::kFdlibmLegacy, MathVariant::kFastPoly,
    MathVariant::kFastPolyTrim, MathVariant::kVectorized,
    MathVariant::kTable,        MathVariant::kSimdSse2,
    MathVariant::kSimdAvx2,
};

/// Worst acceptable absolute error per variant on moderate arguments.
double tolerance(MathVariant v) {
  switch (v) {
    case MathVariant::kPrecise: return 1e-15;
    case MathVariant::kFdlibm: return 1e-12;
    case MathVariant::kFdlibmLegacy: return 1e-10;
    case MathVariant::kFastPoly: return 1e-6;
    case MathVariant::kFastPolyTrim: return 1e-5;
    case MathVariant::kVectorized: return 1e-4;  // float precision
    case MathVariant::kTable: return 2e-3;       // linear interpolation
    // The SIMD schemes round through a float lane (results for the Estrin
    // scheme, arguments for the FMA scheme), so their error floor is the
    // single-precision ulp (~6e-8), scaled by the argument for kSimdAvx2.
    case MathVariant::kSimdSse2: return 1e-6;
    case MathVariant::kSimdAvx2: return 1e-6;
  }
  return 1e-3;
}

class MathVariantTest : public ::testing::TestWithParam<MathVariant> {
 protected:
  std::shared_ptr<const MathLibrary> lib_ = make_math_library(GetParam());
  double tol_ = tolerance(GetParam());
};

TEST_P(MathVariantTest, SinCosAccuracy) {
  for (double x = -10.0; x <= 10.0; x += 0.0917) {
    EXPECT_NEAR(lib_->sin(x), std::sin(x), tol_ * 2.0) << "x=" << x;
    EXPECT_NEAR(lib_->cos(x), std::cos(x), tol_ * 2.0) << "x=" << x;
  }
}

TEST_P(MathVariantTest, PythagoreanIdentity) {
  for (double x = -6.0; x <= 6.0; x += 0.371) {
    const double s = lib_->sin(x);
    const double c = lib_->cos(x);
    EXPECT_NEAR(s * s + c * c, 1.0, tol_ * 8.0) << "x=" << x;
  }
}

TEST_P(MathVariantTest, ExpAccuracy) {
  for (double x = -20.0; x <= 20.0; x += 0.477) {
    const double want = std::exp(x);
    EXPECT_NEAR(lib_->exp(x), want, tol_ * want * 4.0 + 1e-300) << "x=" << x;
  }
}

TEST_P(MathVariantTest, LogAccuracy) {
  for (double x = 1e-6; x <= 1e6; x *= 3.7) {
    EXPECT_NEAR(lib_->log(x), std::log(x), tol_ * 16.0) << "x=" << x;
  }
}

TEST_P(MathVariantTest, Log10ConsistentWithLog) {
  // Native log10 implementations round independently of log/ln10, so only
  // demand agreement to a few parts in 1e9.
  for (double x = 0.001; x <= 1000.0; x *= 2.3) {
    EXPECT_NEAR(lib_->log10(x), lib_->log(x) / std::numbers::ln10,
                tol_ * 8.0 + 1e-9)
        << "x=" << x;
  }
}

TEST_P(MathVariantTest, PowAccuracy) {
  for (double base = 0.1; base <= 10.0; base *= 2.1) {
    for (double e = -3.0; e <= 3.0; e += 0.7) {
      const double want = std::pow(base, e);
      EXPECT_NEAR(lib_->pow(base, e), want, tol_ * want * 32.0 + tol_)
          << base << "^" << e;
    }
  }
}

TEST_P(MathVariantTest, TanhAccuracyAndSaturation) {
  for (double x = -10.0; x <= 10.0; x += 0.23) {
    EXPECT_NEAR(lib_->tanh(x), std::tanh(x), tol_ * 16.0 + 2e-5) << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(lib_->tanh(40.0), 1.0);
  EXPECT_DOUBLE_EQ(lib_->tanh(-40.0), -1.0);
}

TEST_P(MathVariantTest, AtanAccuracy) {
  for (double x = -20.0; x <= 20.0; x += 0.313) {
    EXPECT_NEAR(lib_->atan(x), std::atan(x), tol_ * 8.0 + 3e-5) << "x=" << x;
  }
}

TEST_P(MathVariantTest, Expm1NearZero) {
  for (double x = -0.4; x <= 0.4; x += 0.037) {
    EXPECT_NEAR(lib_->expm1(x), std::expm1(x), tol_ * 4.0 + 1e-12)
        << "x=" << x;
  }
}

TEST_P(MathVariantTest, SpecialValues) {
  EXPECT_TRUE(std::isnan(lib_->sin(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(lib_->log(-1.0)));
  EXPECT_EQ(lib_->log(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(lib_->exp(-1000.0), 0.0);
  EXPECT_EQ(lib_->pow(5.0, 0.0), 1.0);
  EXPECT_EQ(lib_->pow(0.0, 2.0), 0.0);
}

TEST_P(MathVariantTest, DecibelConversionsRoundTrip) {
  for (double db = -90.0; db <= 20.0; db += 7.3) {
    const double linear = lib_->decibels_to_linear(db);
    EXPECT_NEAR(lib_->linear_to_decibels(linear), db, 1e-3) << db;
  }
  EXPECT_EQ(lib_->linear_to_decibels(0.0), -1000.0);
}

TEST_P(MathVariantTest, NameMatchesVariant) {
  EXPECT_EQ(lib_->variant(), GetParam());
  EXPECT_EQ(lib_->name(), to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllVariants, MathVariantTest,
                         ::testing::ValuesIn(kAllVariants),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(MathLibraryTest, VariantsDifferBitwise) {
  // Every pair of variants must disagree in at least one battery value —
  // otherwise two "different" platforms would collapse.
  const std::vector<double> args = {0.5, 1.0, 2.0, 3.3, 7.7, 123.456};
  int indistinguishable_pairs = 0;
  for (std::size_t i = 0; i < kAllVariants.size(); ++i) {
    for (std::size_t j = i + 1; j < kAllVariants.size(); ++j) {
      const auto a = make_math_library(kAllVariants[i]);
      const auto b = make_math_library(kAllVariants[j]);
      bool differs = false;
      for (const double x : args) {
        if (a->sin(x) != b->sin(x) || a->exp(x) != b->exp(x) ||
            a->log(x) != b->log(x) || a->tanh(x) != b->tanh(x)) {
          differs = true;
          break;
        }
      }
      if (!differs) ++indistinguishable_pairs;
    }
  }
  EXPECT_EQ(indistinguishable_pairs, 0);
}

TEST(MathLibraryTest, BatchEntryPointsMatchScalarBitwise) {
  // The batch API is an execution-strategy knob, not a semantics knob: for
  // every variant, batched results must equal the scalar virtuals exactly.
  std::vector<double> xs;
  for (double x = -30.0; x <= 30.0; x += 0.217) xs.push_back(x);
  xs.push_back(0.0);
  xs.push_back(1e-300);
  xs.push_back(std::numeric_limits<double>::quiet_NaN());
  for (const auto variant : kAllVariants) {
    const auto lib = make_math_library(variant);
    std::vector<double> got(xs.size());
    const auto check = [&](const char* what, double scalar, double batched) {
      const bool equal =
          scalar == batched || (std::isnan(scalar) && std::isnan(batched));
      EXPECT_TRUE(equal) << to_string(variant) << " " << what
                         << " scalar=" << scalar << " batch=" << batched;
    };
    lib->sin_batch(xs.data(), got.data(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      check("sin", lib->sin(xs[i]), got[i]);
    }
    lib->cos_batch(xs.data(), got.data(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      check("cos", lib->cos(xs[i]), got[i]);
    }
    lib->exp_batch(xs.data(), got.data(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      check("exp", lib->exp(xs[i]), got[i]);
    }
    std::vector<double> pos(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      pos[i] = std::fabs(xs[i]) + 1e-3;
    }
    lib->log_batch(pos.data(), got.data(), pos.size());
    for (std::size_t i = 0; i < pos.size(); ++i) {
      check("log", lib->log(pos[i]), got[i]);
    }
    lib->linear_to_decibels_batch(pos.data(), got.data(), pos.size());
    for (std::size_t i = 0; i < pos.size(); ++i) {
      check("lin2db", lib->linear_to_decibels(pos[i]), got[i]);
    }
  }
}

TEST(MathLibraryTest, DeterministicAcrossInstances) {
  const auto a = make_math_library(MathVariant::kTable);
  const auto b = make_math_library(MathVariant::kTable);
  for (double x = -5.0; x <= 5.0; x += 0.1) {
    EXPECT_EQ(a->sin(x), b->sin(x));
    EXPECT_EQ(a->exp(x), b->exp(x));
  }
}

}  // namespace
}  // namespace wafp::dsp
