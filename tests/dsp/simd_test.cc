#include "dsp/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "dsp/kernels_internal.h"

namespace wafp::dsp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kQNan = std::numeric_limits<double>::quiet_NaN();

// Sizes chosen to exercise empty input, sub-vector tails, exact vector
// multiples for 2/4/8-wide lanes, and a render-quantum-sized run.
const std::vector<std::size_t> kSizes = {0, 1, 2, 3, 5, 7, 8, 9, 16, 31, 128};

std::vector<float> random_f32(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-8.0F, 8.0F);
  std::vector<float> out(n);
  for (auto& v : out) v = dist(rng);
  if (n >= 8) {
    // Edge lanes: the kernels must treat these exactly like scalar code.
    out[1] = -0.0F;
    out[3] = std::numeric_limits<float>::quiet_NaN();
    out[5] = std::numeric_limits<float>::infinity();
    out[7] = 1e-41F;  // denormal
  }
  return out;
}

std::vector<double> random_f64(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-8.0, 8.0);
  std::vector<double> out(n);
  for (auto& v : out) v = dist(rng);
  return out;
}

template <typename T>
void expect_bitwise_equal(const std::vector<T>& got, const std::vector<T>& want,
                          const char* what, std::size_t n) {
  ASSERT_EQ(got.size(), want.size());
  if (!got.empty()) {
    EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(T)), 0)
        << what << " diverges from scalar at n=" << n;
  }
}

std::vector<SimdBackend> backends_under_test() {
  return {SimdBackend::kScalar, SimdBackend::kSse2, SimdBackend::kAvx2};
}

TEST(SimdDispatchTest, ParseRecognisesExactlyTheThreeBackends) {
  EXPECT_EQ(parse_simd_backend("scalar"), SimdBackend::kScalar);
  EXPECT_EQ(parse_simd_backend("sse2"), SimdBackend::kSse2);
  EXPECT_EQ(parse_simd_backend("avx2"), SimdBackend::kAvx2);
  EXPECT_FALSE(parse_simd_backend("").has_value());
  EXPECT_FALSE(parse_simd_backend("AVX2").has_value());
  EXPECT_FALSE(parse_simd_backend("sse4.2").has_value());
  EXPECT_FALSE(parse_simd_backend("scalar ").has_value());
}

TEST(SimdDispatchTest, ToStringRoundTrips) {
  for (const auto b : backends_under_test()) {
    const auto parsed = parse_simd_backend(to_string(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
}

TEST(SimdDispatchTest, ResolvePrefersSupportedOverride) {
  const SimdBackend detected = detect_simd_backend();
  // No override / junk override -> detected.
  EXPECT_EQ(resolve_simd_backend(detected, nullptr), detected);
  EXPECT_EQ(resolve_simd_backend(detected, ""), detected);
  EXPECT_EQ(resolve_simd_backend(detected, "turbo"), detected);
  // Scalar is supported everywhere, so it always wins as an override.
  EXPECT_EQ(resolve_simd_backend(detected, "scalar"), SimdBackend::kScalar);
  // A supported non-scalar override wins; an unsupported one is ignored.
  for (const auto b : {SimdBackend::kSse2, SimdBackend::kAvx2}) {
    const auto resolved =
        resolve_simd_backend(SimdBackend::kScalar, to_string(b).data());
    if (simd_backend_supported(b)) {
      EXPECT_EQ(resolved, b);
    } else {
      EXPECT_EQ(resolved, SimdBackend::kScalar);
    }
  }
}

TEST(SimdDispatchTest, ActiveBackendIsSupportedAndStable) {
  const SimdBackend active = active_simd_backend();
  EXPECT_TRUE(simd_backend_supported(active));
  EXPECT_EQ(active_simd_backend(), active);
  EXPECT_EQ(simd_ops().backend, simd_ops_for(active).backend);
}

TEST(SimdDispatchTest, UnsupportedRequestFallsBackToScalarTable) {
  for (const auto b : backends_under_test()) {
    const SimdOps& ops = simd_ops_for(b);
    if (simd_backend_supported(b)) {
      EXPECT_EQ(ops.backend, b);
    } else {
      EXPECT_EQ(ops.backend, SimdBackend::kScalar);
    }
  }
}

TEST(SimdKernelTest, TransparentKernelsBitIdenticalAcrossBackends) {
  const SimdOps& ref = simd_ops_for(SimdBackend::kScalar);
  for (const auto backend : backends_under_test()) {
    const SimdOps& ops = simd_ops_for(backend);
    for (const std::size_t n : kSizes) {
      const auto a = random_f32(n, 1);
      const auto b = random_f32(n, 2);
      const auto d64 = random_f64(n, 3);
      const auto w64 = random_f64(n, 4);

      std::vector<float> got(n), want(n);
      ops.vmul_f32(got.data(), a.data(), b.data(), n);
      ref.vmul_f32(want.data(), a.data(), b.data(), n);
      expect_bitwise_equal(got, want, "vmul_f32", n);

      got = a;
      want = a;
      ops.vadd_f32(got.data(), b.data(), n);
      ref.vadd_f32(want.data(), b.data(), n);
      expect_bitwise_equal(got, want, "vadd_f32", n);

      got = a;
      want = a;
      ops.vmac_f32(got.data(), b.data(), 0.7F, n);
      ref.vmac_f32(want.data(), b.data(), 0.7F, n);
      expect_bitwise_equal(got, want, "vmac_f32", n);

      got = a;
      want = a;
      ops.vscale_f32(got.data(), -1.3F, n);
      ref.vscale_f32(want.data(), -1.3F, n);
      expect_bitwise_equal(got, want, "vscale_f32", n);

      std::vector<double> got64 = d64;
      std::vector<double> want64 = d64;
      ops.vscale_f64(got64.data(), 0.031, n);
      ref.vscale_f64(want64.data(), 0.031, n);
      expect_bitwise_equal(got64, want64, "vscale_f64", n);

      ops.vabs_f32(got.data(), a.data(), n);
      ref.vabs_f32(want.data(), a.data(), n);
      expect_bitwise_equal(got, want, "vabs_f32", n);

      got = b;
      want = b;
      ops.vabs_max_f32(got.data(), a.data(), n);
      ref.vabs_max_f32(want.data(), a.data(), n);
      expect_bitwise_equal(got, want, "vabs_max_f32", n);

      const float got_max = ops.vmax_abs_f32(a.data(), n);
      const float want_max = ref.vmax_abs_f32(a.data(), n);
      EXPECT_EQ(std::memcmp(&got_max, &want_max, sizeof(float)), 0)
          << "vmax_abs_f32 diverges at n=" << n;

      ops.vwindow_f32(got.data(), d64.data(), w64.data(), n);
      ref.vwindow_f32(want.data(), d64.data(), w64.data(), n);
      expect_bitwise_equal(got, want, "vwindow_f32", n);

      for (const bool fused : {false, true}) {
        ops.vmag_f32(got.data(), a.data(), b.data(), 0.25F, fused, n);
        ref.vmag_f32(want.data(), a.data(), b.data(), 0.25F, fused, n);
        expect_bitwise_equal(got, want, fused ? "vmag_f32/fused" : "vmag_f32",
                             n);
      }

      got = a;
      want = a;
      ops.vsmooth_f32(got.data(), b.data(), 0.8F, 0.2F, n);
      ref.vsmooth_f32(want.data(), b.data(), 0.8F, 0.2F, n);
      expect_bitwise_equal(got, want, "vsmooth_f32", n);
    }
  }
}

TEST(SimdKernelTest, ButterflyKernelsBitIdenticalAcrossBackends) {
  const SimdOps& ref = simd_ops_for(SimdBackend::kScalar);
  for (const auto backend : backends_under_test()) {
    const SimdOps& ops = simd_ops_for(backend);
    for (const std::size_t half : {std::size_t{1}, std::size_t{3},
                                   std::size_t{4}, std::size_t{8},
                                   std::size_t{13}, std::size_t{64}}) {
      const auto re0 = random_f32(2 * half, 11);
      const auto im0 = random_f32(2 * half, 12);
      const auto wr = random_f32(half, 13);
      const auto wi = random_f32(half, 14);

      auto re_got = re0;
      auto im_got = im0;
      auto re_want = re0;
      auto im_want = im0;
      ops.butterfly_f32(re_got.data(), im_got.data(), half, wr.data(),
                        wi.data());
      ref.butterfly_f32(re_want.data(), im_want.data(), half, wr.data(),
                        wi.data());
      expect_bitwise_equal(re_got, re_want, "butterfly_f32/re", half);
      expect_bitwise_equal(im_got, im_want, "butterfly_f32/im", half);

      const auto dre0 = random_f64(2 * half, 15);
      const auto dim0 = random_f64(2 * half, 16);
      const auto dwr = random_f64(half, 17);
      const auto dwi = random_f64(half, 18);
      auto dre_got = dre0;
      auto dim_got = dim0;
      auto dre_want = dre0;
      auto dim_want = dim0;
      ops.butterfly_f64(dre_got.data(), dim_got.data(), half, dwr.data(),
                        dwi.data());
      ref.butterfly_f64(dre_want.data(), dim_want.data(), half, dwr.data(),
                        dwi.data());
      expect_bitwise_equal(dre_got, dre_want, "butterfly_f64/re", half);
      expect_bitwise_equal(dim_got, dim_want, "butterfly_f64/im", half);
    }
  }
}

std::vector<double> scheme_probe_inputs() {
  std::vector<double> x = random_f64(96, 21);
  // Trig stress: near multiples of pi/2 where quadrant selection flips, and
  // large arguments where the two-step reduction loses accuracy gracefully.
  const double half_pi = 1.57079632679489661923;
  for (int k = -8; k <= 8; ++k) {
    x.push_back(k * half_pi);
    x.push_back(k * half_pi + 1e-9);
  }
  x.insert(x.end(), {0.0, -0.0, 1e-308, 4.9e-324, 1e3, -1e3, 1e6, -1e6,
                     // exp saturation boundary and beyond
                     699.9999, 700.0, 700.0001, -700.0001, 710.0, -745.0,
                     // log structure: around 1, around sqrt(1/2), huge/tiny
                     0.5, 0.7071, 0.70711, 1.0, 1.0000001, 2.0, 1e308,
                     kInf, -kInf, kQNan});
  return x;
}

TEST(SimdKernelTest, FmaSchemeBatchesBitIdenticalAcrossBackends) {
  const auto x = scheme_probe_inputs();
  const SimdOps& ref = simd_ops_for(SimdBackend::kScalar);
  using BatchFn = void (*)(const double*, double*, std::size_t);
  const std::vector<std::pair<const char*, BatchFn SimdOps::*>> kernels = {
      {"vsin_fma", &SimdOps::vsin_fma},
      {"vcos_fma", &SimdOps::vcos_fma},
      {"vexp_fma", &SimdOps::vexp_fma},
      {"vlog_fma", &SimdOps::vlog_fma},
  };
  for (const auto backend : backends_under_test()) {
    const SimdOps& ops = simd_ops_for(backend);
    for (const auto& [name, fn] : kernels) {
      for (const std::size_t n : kSizes) {
        if (n > x.size()) continue;
        std::vector<double> got(n), want(n);
        (ops.*fn)(x.data(), got.data(), n);
        (ref.*fn)(x.data(), want.data(), n);
        expect_bitwise_equal(got, want, name, n);
      }
      // Full probe set, including the offset starts a batched caller sees.
      std::vector<double> got(x.size()), want(x.size());
      (ops.*fn)(x.data(), got.data(), x.size());
      (ref.*fn)(x.data(), want.data(), x.size());
      expect_bitwise_equal(got, want, name, x.size());
    }
  }
}

TEST(SimdSchemeTest, FmaSchemeTracksLibmOnModerateArguments) {
  // The FMA scheme rounds its *argument* through a float lane, so the error
  // budget is the single-precision input ulp propagated through the
  // function: |x| * 2^-25 * |f'(x)| plus the double-precision polynomial
  // error underneath.
  for (double x = -20.0; x <= 20.0; x += 0.0137) {
    const double in_ulp = std::fabs(x) * 6e-8 + 1e-13;
    EXPECT_NEAR(simd_detail::sin_fma_one(x), std::sin(x), in_ulp)
        << "x=" << x;
    EXPECT_NEAR(simd_detail::cos_fma_one(x), std::cos(x), in_ulp)
        << "x=" << x;
    EXPECT_NEAR(simd_detail::exp_fma_one(x), std::exp(x),
                std::exp(x) * in_ulp)
        << "x=" << x;
  }
  for (double x = 1e-3; x <= 1e3; x *= 1.37) {
    // log(x * (1 + eps)) = log(x) + eps, so input rounding gives a flat
    // absolute error of ~2^-25 regardless of magnitude.
    EXPECT_NEAR(simd_detail::log_fma_one(x), std::log(x), 1e-7)
        << "x=" << x;
  }
}

TEST(SimdSchemeTest, EstrinSchemeTracksLibmOnModerateArguments) {
  // The Estrin scheme rounds its *result* through a float lane: the error
  // is one single-precision ulp of the result, i.e. ~|f(x)| * 2^-25.
  for (double x = -20.0; x <= 20.0; x += 0.0137) {
    EXPECT_NEAR(simd_detail::sin_estrin_one(x), std::sin(x), 1e-7)
        << "x=" << x;
    EXPECT_NEAR(simd_detail::cos_estrin_one(x), std::cos(x), 1e-7)
        << "x=" << x;
    EXPECT_NEAR(simd_detail::exp_estrin_one(x), std::exp(x),
                std::exp(x) * 1e-7 + 1e-300)
        << "x=" << x;
  }
  for (double x = 1e-3; x <= 1e3; x *= 1.37) {
    EXPECT_NEAR(simd_detail::log_estrin_one(x), std::log(x),
                std::fabs(std::log(x)) * 1e-7 + 1e-9)
        << "x=" << x;
  }
}

TEST(SimdSchemeTest, SchemesAreDistinctFromEachOtherAndFromLibm) {
  // The two schemes are fingerprint surfaces: over a probe sweep they must
  // disagree in the low bits with each other and with the host libm.
  int estrin_vs_fma = 0;
  int fma_vs_libm = 0;
  int estrin_vs_libm = 0;
  int probes = 0;
  for (double x = 0.11; x <= 50.0; x += 0.173) {
    ++probes;
    const double f = simd_detail::sin_fma_one(x);
    const double e = simd_detail::sin_estrin_one(x);
    const double l = std::sin(x);
    estrin_vs_fma += (std::memcmp(&f, &e, sizeof(double)) != 0);
    fma_vs_libm += (std::memcmp(&f, &l, sizeof(double)) != 0);
    estrin_vs_libm += (std::memcmp(&e, &l, sizeof(double)) != 0);
  }
  EXPECT_GT(estrin_vs_fma, probes / 20);
  EXPECT_GT(fma_vs_libm, probes / 20);
  EXPECT_GT(estrin_vs_libm, probes / 20);
}

TEST(SimdSchemeTest, ExpFmaSaturationAndSpecials) {
  EXPECT_EQ(simd_detail::exp_fma_one(701.0), HUGE_VAL);
  EXPECT_EQ(simd_detail::exp_fma_one(-701.0), 0.0);
  EXPECT_EQ(simd_detail::exp_fma_one(kInf), HUGE_VAL);
  EXPECT_EQ(simd_detail::exp_fma_one(-kInf), 0.0);
  EXPECT_TRUE(std::isnan(simd_detail::exp_fma_one(kQNan)));
  EXPECT_EQ(simd_detail::exp_fma_one(0.0), 1.0);
}

TEST(SimdSchemeTest, LogFmaSpecials) {
  EXPECT_EQ(simd_detail::log_fma_one(0.0), -HUGE_VAL);
  EXPECT_EQ(simd_detail::log_fma_one(-0.0), -HUGE_VAL);
  EXPECT_TRUE(std::isnan(simd_detail::log_fma_one(-1.0)));
  EXPECT_TRUE(std::isnan(simd_detail::log_fma_one(kQNan)));
  EXPECT_EQ(simd_detail::log_fma_one(kInf), kInf);
  EXPECT_EQ(simd_detail::log_fma_one(1.0), 0.0);
  // Denormal input routes through the 2^54 rescale.
  const double denorm = 4.9406564584124654e-324;
  EXPECT_NEAR(simd_detail::log_fma_one(denorm), std::log(denorm), 1e-10);
}

}  // namespace
}  // namespace wafp::dsp
