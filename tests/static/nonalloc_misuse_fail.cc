// Compile-FAILURE fixture for the function-effects smoke test.
//
// This WAFP_NONALLOCATING function allocates. Under
// `clang -Werror=function-effects` (clang 19+) it must NOT compile; the
// CMake try_compile in tests/CMakeLists.txt asserts exactly that. If this
// file ever starts compiling on a toolchain where the probe succeeded, the
// annotation layer has silently stopped guarding the hot path — the same
// failure mode the thread-safety smoke guards against for locking.
#include <vector>

#include "util/function_effects.h"

namespace {

int allocate_on_hot_path(std::vector<int>& v) WAFP_NONALLOCATING {
  v.push_back(1);  // BAD: allocation inside a nonallocating function
  return v.back();
}

}  // namespace

int main() {
  std::vector<int> v;
  return allocate_on_hot_path(v);
}
