// Compile-SUCCESS fixture for the thread-safety smoke test.
//
// Correctly disciplined use of the annotated primitives: every guarded
// access under a MutexLock, condition waits through CondVar on the held
// mutex. Must compile cleanly under `clang -Wthread-safety
// -Werror=thread-safety`; together with mutex_misuse_fail.cc this pins
// both directions of the analysis (accepts good code, rejects bad code).
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void increment() {
    wafp::util::MutexLock lock(mu_);
    ++value_;
    cv_.notify_all();
  }

  void wait_for_positive() {
    wafp::util::MutexLock lock(mu_);
    while (value_ <= 0) cv_.wait(mu_);
  }

  [[nodiscard]] int value() {
    wafp::util::MutexLock lock(mu_);
    return value_;
  }

 private:
  wafp::util::Mutex mu_;
  wafp::util::CondVar cv_;
  int value_ WAFP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.increment();
  c.wait_for_positive();
  return c.value() == 1 ? 0 : 1;
}
