// Compile-SUCCESS fixture for the function-effects smoke test.
//
// Disciplined hot-path code: a WAFP_NONALLOCATING function that only does
// arithmetic and calls other nonallocating functions. Under
// `clang -Werror=function-effects` (clang 19+, probed by the root
// CMakeLists) this must compile cleanly; the try_compile in
// tests/CMakeLists.txt asserts that. On toolchains without the analysis
// the macros are no-ops and the smoke test is skipped — wafp_lint is the
// enforcement layer there.
#include <cstddef>

#include "util/function_effects.h"

namespace {

float scale_sample(float x, float gain) WAFP_NONALLOCATING {
  return x * gain;
}

void scale_block(float* samples, std::size_t n,
                 float gain) WAFP_NONALLOCATING {
  for (std::size_t i = 0; i < n; ++i) {
    samples[i] = scale_sample(samples[i], gain);
  }
}

}  // namespace

int main() {
  float block[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  scale_block(block, 4, 0.5f);
  return static_cast<int>(block[0]);
}
