// Compile-FAILURE fixture for the thread-safety smoke test.
//
// This file accesses a WAFP_GUARDED_BY member without holding its mutex.
// Under `clang -Wthread-safety -Werror=thread-safety` it must NOT compile;
// the CMake try_compile in tests/CMakeLists.txt asserts exactly that. If
// this file ever starts compiling on Clang, the annotation layer has
// silently stopped guarding anything — which is the failure mode this
// smoke test exists to catch.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void increment_without_lock() {
    ++value_;  // BAD: guarded write, no lock held -> -Wthread-safety error
  }

  void unlock_twice() {
    mu_.lock();
    mu_.unlock();
    mu_.unlock();  // BAD: releasing a capability that is not held
  }

 private:
  wafp::util::Mutex mu_;
  int value_ WAFP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.increment_without_lock();
  c.unlock_twice();
  return 0;
}
