#include "collation/disjoint_set.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/rng.h"

namespace wafp::collation {
namespace {

TEST(DisjointSetTest, FreshElementsAreSingletons) {
  DisjointSet ds(5);
  EXPECT_EQ(ds.component_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ds.find(i), i);
    EXPECT_EQ(ds.component_size(i), 1u);
  }
}

TEST(DisjointSetTest, UniteMergesAndCounts) {
  DisjointSet ds(4);
  EXPECT_TRUE(ds.unite(0, 1));
  EXPECT_EQ(ds.component_count(), 3u);
  EXPECT_TRUE(ds.connected(0, 1));
  EXPECT_FALSE(ds.connected(0, 2));
  EXPECT_EQ(ds.component_size(0), 2u);

  EXPECT_FALSE(ds.unite(1, 0));  // already merged
  EXPECT_EQ(ds.component_count(), 3u);
}

TEST(DisjointSetTest, TransitiveConnectivity) {
  DisjointSet ds(6);
  ds.unite(0, 1);
  ds.unite(2, 3);
  ds.unite(1, 2);
  EXPECT_TRUE(ds.connected(0, 3));
  EXPECT_EQ(ds.component_size(0), 4u);
  EXPECT_EQ(ds.component_count(), 3u);  // {0,1,2,3}, {4}, {5}
}

TEST(DisjointSetTest, AddGrowsStructure) {
  DisjointSet ds;
  const std::size_t a = ds.add();
  const std::size_t b = ds.add();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(ds.component_count(), 2u);
  ds.unite(a, b);
  EXPECT_EQ(ds.component_count(), 1u);
}

TEST(DisjointSetTest, ChainCollapsesWithPathCompression) {
  DisjointSet ds(1000);
  for (std::size_t i = 1; i < 1000; ++i) ds.unite(i - 1, i);
  EXPECT_EQ(ds.component_count(), 1u);
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(ds.find(i), ds.find(0));
  }
  EXPECT_EQ(ds.component_size(42), 1000u);
}

/// Property sweep: random union sequences must agree with a naive
/// label-propagation implementation.
class DisjointSetRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisjointSetRandomTest, MatchesNaiveImplementation) {
  constexpr std::size_t n = 200;
  DisjointSet ds(n);
  std::vector<std::size_t> naive(n);
  for (std::size_t i = 0; i < n; ++i) naive[i] = i;

  util::Rng rng(GetParam());
  for (int op = 0; op < 400; ++op) {
    const auto a = static_cast<std::size_t>(rng.next_below(n));
    const auto b = static_cast<std::size_t>(rng.next_below(n));
    ds.unite(a, b);
    const std::size_t from = naive[a];
    const std::size_t to = naive[b];
    if (from != to) {
      for (auto& label : naive) {
        if (label == from) label = to;
      }
    }
  }

  std::map<std::size_t, std::size_t> naive_sizes;
  for (const std::size_t label : naive) ++naive_sizes[label];
  EXPECT_EQ(ds.component_count(), naive_sizes.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      ASSERT_EQ(ds.connected(i, j), naive[i] == naive[j])
          << i << " vs " << j;
    }
    EXPECT_EQ(ds.component_size(i), naive_sizes[naive[i]]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointSetRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace wafp::collation
