#include "collation/fingerprint_graph.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace wafp::collation {
namespace {

util::Digest efp(int i) {
  return util::sha256("efp-" + std::to_string(i));
}

/// The paper's Fig. 4 example: 9 elementary fingerprints across 4 users.
///   U1 -- eFP1, eFP2, eFP3        \  cluster 1 (U1, U2 share eFP3)
///   U2 -- eFP3, eFP4, eFP5        /
///   U3 -- eFP6, eFP7              -- cluster 2 (unique)
///   U4 -- eFP8, eFP9              -- cluster 3 (unique)
FingerprintGraph build_fig4_graph() {
  FingerprintGraph graph;
  graph.add_observation(1, efp(1));
  graph.add_observation(1, efp(2));
  graph.add_observation(1, efp(3));
  graph.add_observation(2, efp(3));
  graph.add_observation(2, efp(4));
  graph.add_observation(2, efp(5));
  graph.add_observation(3, efp(6));
  graph.add_observation(3, efp(7));
  graph.add_observation(4, efp(8));
  graph.add_observation(4, efp(9));
  return graph;
}

TEST(FingerprintGraphTest, PaperFig4Example) {
  const FingerprintGraph graph = build_fig4_graph();
  EXPECT_EQ(graph.user_count(), 4u);
  EXPECT_EQ(graph.fingerprint_count(), 9u);
  // "we thus end up with 3 distinct fingerprints for the 4 users"
  EXPECT_EQ(graph.cluster_count(), 3u);
  EXPECT_TRUE(graph.same_cluster(1, 2));
  EXPECT_FALSE(graph.same_cluster(1, 3));
  EXPECT_FALSE(graph.same_cluster(3, 4));
}

TEST(FingerprintGraphTest, PaperFig4DynamicMerge) {
  // "consider a new user U5 who has elementary fingerprints eFP6 and eFP8.
  //  This merges existing second and third user clusters into one."
  FingerprintGraph graph = build_fig4_graph();
  graph.add_observation(5, efp(6));
  graph.add_observation(5, efp(8));
  EXPECT_EQ(graph.cluster_count(), 2u);
  EXPECT_TRUE(graph.same_cluster(3, 4));
  EXPECT_TRUE(graph.same_cluster(3, 5));
  EXPECT_FALSE(graph.same_cluster(1, 5));
}

TEST(FingerprintGraphTest, ClusterUserCounts) {
  const FingerprintGraph graph = build_fig4_graph();
  std::vector<std::size_t> counts = graph.cluster_user_counts();
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts, (std::vector<std::size_t>{1, 1, 2}));
}

TEST(FingerprintGraphTest, ExtractClusteringLabels) {
  const FingerprintGraph graph = build_fig4_graph();
  const std::vector<std::uint32_t> users = {1, 2, 3, 4};
  const Clustering clustering = graph.extract_clustering(users);
  ASSERT_EQ(clustering.labels.size(), 4u);
  EXPECT_EQ(clustering.num_clusters, 3);
  EXPECT_EQ(clustering.labels[0], clustering.labels[1]);  // U1, U2 collide
  EXPECT_NE(clustering.labels[0], clustering.labels[2]);
  EXPECT_NE(clustering.labels[2], clustering.labels[3]);
}

TEST(FingerprintGraphTest, UnseenUserGetsFreshLabel) {
  const FingerprintGraph graph = build_fig4_graph();
  const std::vector<std::uint32_t> users = {1, 99};
  const Clustering clustering = graph.extract_clustering(users);
  EXPECT_EQ(clustering.num_clusters, 2);
  EXPECT_NE(clustering.labels[0], clustering.labels[1]);
}

TEST(FingerprintGraphTest, RepeatObservationIsIdempotent) {
  FingerprintGraph graph;
  for (int i = 0; i < 10; ++i) graph.add_observation(1, efp(1));
  EXPECT_EQ(graph.cluster_count(), 1u);
  EXPECT_EQ(graph.fingerprint_count(), 1u);
}

TEST(FingerprintGraphTest, MatchFindsTrainingCluster) {
  const FingerprintGraph graph = build_fig4_graph();
  // Probe with one of U2's fingerprints: must land in U1/U2's component.
  const std::vector<util::Digest> probe = {efp(4)};
  const auto matched = graph.match(probe);
  ASSERT_TRUE(matched.has_value());
  EXPECT_EQ(*matched, *graph.user_component(2));
  EXPECT_EQ(*matched, *graph.user_component(1));
}

TEST(FingerprintGraphTest, MatchUnknownProbeFails) {
  const FingerprintGraph graph = build_fig4_graph();
  const std::vector<util::Digest> probe = {efp(1000)};
  EXPECT_FALSE(graph.match(probe).has_value());
}

TEST(FingerprintGraphTest, MatchMajorityVote) {
  const FingerprintGraph graph = build_fig4_graph();
  // Two hits in U3's cluster, one in U4's: majority wins.
  const std::vector<util::Digest> probe = {efp(6), efp(7), efp(8)};
  const auto matched = graph.match(probe);
  ASSERT_TRUE(matched.has_value());
  EXPECT_EQ(*matched, *graph.user_component(3));
}

TEST(FingerprintGraphTest, UserComponentForUnknownUser) {
  const FingerprintGraph graph = build_fig4_graph();
  EXPECT_FALSE(graph.user_component(12345).has_value());
}

TEST(FingerprintGraphTest, ScalesToManyUsers) {
  // §3.2's scalability claim: insertion stays cheap; sanity-check the
  // structure with 50k users x 3 observations.
  FingerprintGraph graph;
  for (std::uint32_t u = 0; u < 50000; ++u) {
    // Users share a platform fingerprint per group of 100 -> 500 clusters.
    graph.add_observation(u, efp(static_cast<int>(u % 500)));
    graph.add_observation(u, efp(static_cast<int>(1000000 + u)));  // unique
    graph.add_observation(u, efp(static_cast<int>(u % 500)));
  }
  EXPECT_EQ(graph.cluster_count(), 500u);
  EXPECT_TRUE(graph.same_cluster(0, 500));
  EXPECT_FALSE(graph.same_cluster(0, 1));
}

TEST(FingerprintGraphMergeTest, MergingShardExportsReproducesTheGlobalGraph) {
  // Partition Fig. 4's edges by fingerprint hash across 3 "shards" (no
  // edge spans a shard; users do), then merge every shard export into one
  // graph: the global partition must come back exactly.
  const FingerprintGraph global = build_fig4_graph();
  FingerprintGraph shards[3];
  for (int e = 1; e <= 9; ++e) {
    const std::uint32_t user = e <= 3 ? 1u : (e <= 5 ? 2u : (e <= 7 ? 3u : 4u));
    shards[efp(e).prefix64() % 3].add_observation(user, efp(e));
  }
  // U2 also saw eFP3 (the Fig. 4 bridge), on whatever shard owns eFP3.
  shards[efp(3).prefix64() % 3].add_observation(2, efp(3));

  FingerprintGraph merged;
  for (const FingerprintGraph& shard : shards) {
    merged.merge_state(shard.export_state());
  }
  EXPECT_EQ(merged.component_checksum(), global.component_checksum());
  EXPECT_EQ(merged.cluster_count(), global.cluster_count());
  EXPECT_EQ(merged.user_count(), global.user_count());
  EXPECT_EQ(merged.fingerprint_count(), global.fingerprint_count());
}

TEST(FingerprintGraphMergeTest, MergeIsIdempotentAndOrderIndependent) {
  const FingerprintGraph global = build_fig4_graph();
  const FingerprintGraph::Export state = global.export_state();

  FingerprintGraph twice;
  twice.merge_state(state);
  twice.merge_state(state);  // idempotent
  EXPECT_EQ(twice.component_checksum(), global.component_checksum());

  // Merging into a non-empty graph with overlapping entities unites them.
  FingerprintGraph seeded;
  seeded.add_observation(1, efp(100));  // user 1 exists before the merge
  seeded.merge_state(state);
  EXPECT_TRUE(seeded.same_cluster(1, 2));
  EXPECT_EQ(seeded.fingerprint_count(), global.fingerprint_count() + 1);
}

TEST(FingerprintGraphMergeTest, InconsistentExportsAreRejected) {
  const FingerprintGraph global = build_fig4_graph();
  FingerprintGraph target;
  {
    FingerprintGraph::Export bad = global.export_state();
    bad.roots.pop_back();  // node count mismatch
    EXPECT_THROW(target.merge_state(bad), std::invalid_argument);
  }
  {
    FingerprintGraph::Export bad = global.export_state();
    bad.roots.back() = bad.roots.size() + 5;  // out-of-range root
    EXPECT_THROW(target.merge_state(bad), std::invalid_argument);
  }
  {
    FingerprintGraph::Export bad = global.export_state();
    bad.users.back().second = bad.roots.size() + 1;  // out-of-range node
    EXPECT_THROW(target.merge_state(bad), std::invalid_argument);
  }
}

}  // namespace
}  // namespace wafp::collation
