#include "collation/expiring_graph.h"

#include <gtest/gtest.h>

namespace wafp::collation {
namespace {

util::Digest efp(int i) { return util::sha256("exp-" + std::to_string(i)); }

TEST(ExpiringGraphTest, BehavesLikePlainGraphWithoutExpiry) {
  ExpiringFingerprintGraph graph(64);
  graph.add_observation(1, efp(1), 10);
  graph.add_observation(1, efp(2), 11);
  graph.add_observation(2, efp(2), 12);
  graph.add_observation(3, efp(3), 13);
  EXPECT_EQ(graph.active_user_count(), 3u);
  EXPECT_EQ(graph.cluster_count(), 2u);
  EXPECT_TRUE(graph.same_cluster(1, 2));
  EXPECT_FALSE(graph.same_cluster(1, 3));
}

TEST(ExpiringGraphTest, ExpiryDisconnectsStaleBridges) {
  ExpiringFingerprintGraph graph(64);
  // Users 1 and 2 were joined only by an old shared fingerprint.
  graph.add_observation(1, efp(1), 5);   // old
  graph.add_observation(2, efp(1), 5);   // old
  graph.add_observation(1, efp(10), 50);  // fresh personal prints
  graph.add_observation(2, efp(20), 50);
  EXPECT_TRUE(graph.same_cluster(1, 2));

  graph.expire_before(20);
  EXPECT_FALSE(graph.same_cluster(1, 2));
  EXPECT_EQ(graph.cluster_count(), 2u);
  EXPECT_EQ(graph.active_user_count(), 2u);
}

TEST(ExpiringGraphTest, UsersVanishWhenAllObservationsExpire) {
  ExpiringFingerprintGraph graph(64);
  graph.add_observation(1, efp(1), 1);
  graph.add_observation(2, efp(2), 100);
  EXPECT_EQ(graph.active_user_count(), 2u);
  graph.expire_before(50);
  EXPECT_EQ(graph.active_user_count(), 1u);
  EXPECT_EQ(graph.cluster_count(), 1u);
  EXPECT_FALSE(graph.user_component(1).has_value());
  EXPECT_TRUE(graph.user_component(2).has_value());
}

TEST(ExpiringGraphTest, ReobservationRefreshesTimestamp) {
  ExpiringFingerprintGraph graph(64);
  graph.add_observation(1, efp(1), 10);
  graph.add_observation(1, efp(1), 90);  // refreshed
  graph.expire_before(50);
  EXPECT_EQ(graph.active_user_count(), 1u);  // survived thanks to refresh
  graph.expire_before(95);
  EXPECT_EQ(graph.active_user_count(), 0u);
}

TEST(ExpiringGraphTest, MatchAgainstLiveGraph) {
  ExpiringFingerprintGraph graph(64);
  graph.add_observation(1, efp(1), 10);
  graph.add_observation(1, efp(2), 10);
  graph.add_observation(2, efp(3), 10);

  const std::vector<util::Digest> probe = {efp(2)};
  const auto hit = graph.match(probe);
  const auto expected = graph.user_component(1);
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(expected.has_value());
  EXPECT_TRUE(graph.nodes_connected(*hit, *expected));

  const std::vector<util::Digest> unknown = {efp(999)};
  EXPECT_FALSE(graph.match(unknown).has_value());
}

TEST(ExpiringGraphTest, MatchIgnoresExpiredFingerprints) {
  ExpiringFingerprintGraph graph(64);
  graph.add_observation(1, efp(1), 10);
  graph.add_observation(1, efp(2), 95);
  graph.expire_before(50);
  const std::vector<util::Digest> stale_probe = {efp(1)};
  EXPECT_FALSE(graph.match(stale_probe).has_value());
  const std::vector<util::Digest> live_probe = {efp(2)};
  EXPECT_TRUE(graph.match(live_probe).has_value());
}

TEST(ExpiringGraphTest, SlidingWindowChurn) {
  // Simulate a fingerprinter keeping a 100-tick window over a population
  // of 10 platforms x 20 users with repeated visits.
  ExpiringFingerprintGraph graph(4096);
  std::uint64_t now = 0;
  for (int round = 0; round < 30; ++round) {
    now += 10;  // each round is one "day"; the window covers 10 rounds
    for (std::uint32_t user = 0; user < 200; ++user) {
      graph.add_observation(user, efp(static_cast<int>(user % 10)), now);
    }
    graph.expire_before(now > 100 ? now - 100 : 0);
  }
  // All users revisit within the window, so the 10 platform clusters stand.
  EXPECT_EQ(graph.cluster_count(), 10u);
  EXPECT_EQ(graph.active_user_count(), 200u);

  // Stop the visits; expire everything.
  graph.expire_before(now + 1);
  EXPECT_EQ(graph.active_user_count(), 0u);
  EXPECT_EQ(graph.cluster_count(), 0u);
}

TEST(ExpiringGraphTest, CutoffIsExclusive) {
  // expire_before(c) drops timestamps strictly below c: an observation
  // stamped exactly at the cutoff survives, so expire_before(now - window)
  // keeps the closed interval [now - window, now] live.
  ExpiringFingerprintGraph graph(64);
  graph.add_observation(1, efp(1), 19);  // strictly below: expires
  graph.add_observation(2, efp(2), 20);  // exactly at cutoff: survives
  graph.add_observation(3, efp(3), 21);  // above: survives
  graph.expire_before(20);
  EXPECT_FALSE(graph.user_component(1).has_value());
  EXPECT_TRUE(graph.user_component(2).has_value());
  EXPECT_TRUE(graph.user_component(3).has_value());
  EXPECT_EQ(graph.active_user_count(), 2u);
}

TEST(ExpiringGraphTest, RefreshExactlyAtCutoffSurvives) {
  // Boundary regression: a pair first observed below the cutoff and then
  // refreshed *exactly at* the cutoff must survive -- the stale expiry-queue
  // entry from the first observation has to be recognised as superseded.
  ExpiringFingerprintGraph graph(64);
  graph.add_observation(1, efp(1), 10);
  graph.add_observation(1, efp(1), 20);  // refresh lands on the cutoff
  graph.expire_before(20);
  EXPECT_EQ(graph.active_user_count(), 1u);
  EXPECT_EQ(graph.observation_count(), 1u);
  // One tick later the (single) refreshed timestamp finally ages out.
  graph.expire_before(21);
  EXPECT_EQ(graph.active_user_count(), 0u);
}

TEST(ExpiringGraphTest, OutOfOrderRefreshKeepsNewestTimestamp) {
  // Timestamps may arrive out of order; the pair's lifetime is governed by
  // its newest observation, not its latest-arriving one.
  ExpiringFingerprintGraph graph(64);
  graph.add_observation(1, efp(1), 50);
  graph.add_observation(1, efp(1), 30);  // older refresh: no-op on expiry
  graph.expire_before(40);
  EXPECT_EQ(graph.active_user_count(), 1u);
  graph.expire_before(51);
  EXPECT_EQ(graph.active_user_count(), 0u);
}

TEST(ExpiringGraphTest, LiveObservationsRoundTrip) {
  ExpiringFingerprintGraph graph(64);
  graph.add_observation(1, efp(1), 10);
  graph.add_observation(2, efp(1), 15);
  graph.add_observation(2, efp(2), 12);
  graph.add_observation(3, efp(3), 20);
  graph.add_observation(1, efp(1), 30);  // refresh: newest timestamp wins
  graph.expire_before(12);               // drops nothing but exercises state

  const auto observations = graph.live_observations();
  ASSERT_EQ(observations.size(), 4u);
  // Sorted by (timestamp, user, efp); the refreshed pair reports 30.
  EXPECT_EQ(observations[0].timestamp, 12u);
  EXPECT_EQ(observations.back().timestamp, 30u);
  EXPECT_EQ(observations.back().user, 1u);

  const auto restored =
      ExpiringFingerprintGraph::from_observations(64, observations);
  EXPECT_EQ(restored.active_user_count(), graph.active_user_count());
  EXPECT_EQ(restored.observation_count(), graph.observation_count());
  EXPECT_EQ(restored.cluster_count(), graph.cluster_count());
  EXPECT_EQ(restored.same_cluster(1, 2), graph.same_cluster(1, 2));
  EXPECT_EQ(restored.same_cluster(1, 3), graph.same_cluster(1, 3));
  EXPECT_EQ(restored.live_observations(), observations);
}

TEST(ExpiringGraphTest, CapacityExhaustionThrows) {
  ExpiringFingerprintGraph graph(3);
  graph.add_observation(1, efp(1), 1);   // 2 nodes
  graph.add_observation(1, efp(2), 1);   // 3 nodes
  EXPECT_THROW(graph.add_observation(2, efp(3), 1), std::length_error);
}

}  // namespace
}  // namespace wafp::collation
