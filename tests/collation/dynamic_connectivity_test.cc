#include "collation/dynamic_connectivity.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "collation/euler_tour_forest.h"
#include "util/rng.h"

namespace wafp::collation {
namespace {

/// Naive reference graph: connectivity by BFS, recomputed per query.
class NaiveGraph {
 public:
  explicit NaiveGraph(std::size_t n) : adjacency_(n) {}

  bool insert(std::uint32_t u, std::uint32_t v) {
    if (u == v || adjacency_[u].contains(v)) return false;
    adjacency_[u].insert(v);
    adjacency_[v].insert(u);
    return true;
  }
  bool erase(std::uint32_t u, std::uint32_t v) {
    if (!adjacency_[u].contains(v)) return false;
    adjacency_[u].erase(v);
    adjacency_[v].erase(u);
    return true;
  }
  [[nodiscard]] bool connected(std::uint32_t u, std::uint32_t v) const {
    return component_of(u).contains(v);
  }
  [[nodiscard]] std::set<std::uint32_t> component_of(std::uint32_t u) const {
    std::set<std::uint32_t> seen = {u};
    std::vector<std::uint32_t> stack = {u};
    while (!stack.empty()) {
      const std::uint32_t x = stack.back();
      stack.pop_back();
      for (const std::uint32_t y : adjacency_[x]) {
        if (seen.insert(y).second) stack.push_back(y);
      }
    }
    return seen;
  }
  [[nodiscard]] std::size_t component_count() const {
    std::set<std::uint32_t> seen;
    std::size_t count = 0;
    for (std::uint32_t u = 0; u < adjacency_.size(); ++u) {
      if (seen.contains(u)) continue;
      ++count;
      for (const std::uint32_t x : component_of(u)) seen.insert(x);
    }
    return count;
  }

 private:
  std::vector<std::set<std::uint32_t>> adjacency_;
};

TEST(EulerTourForestTest, LinkCutConnectivity) {
  EulerTourForest forest(6, 1);
  EXPECT_FALSE(forest.connected(0, 1));
  forest.link(0, 1);
  forest.link(1, 2);
  forest.link(3, 4);
  EXPECT_TRUE(forest.connected(0, 2));
  EXPECT_FALSE(forest.connected(0, 3));
  EXPECT_EQ(forest.component_size(0), 3u);
  EXPECT_EQ(forest.component_size(3), 2u);
  EXPECT_EQ(forest.component_size(5), 1u);

  forest.cut(1, 2);
  EXPECT_FALSE(forest.connected(0, 2));
  EXPECT_TRUE(forest.connected(0, 1));
  EXPECT_EQ(forest.component_size(2), 1u);
}

TEST(EulerTourForestTest, RelinkAfterCut) {
  EulerTourForest forest(4, 2);
  forest.link(0, 1);
  forest.link(2, 3);
  forest.link(1, 2);
  EXPECT_TRUE(forest.connected(0, 3));
  forest.cut(1, 2);
  forest.link(0, 3);  // reconnect through the other ends
  EXPECT_TRUE(forest.connected(1, 2));
  EXPECT_EQ(forest.component_size(0), 4u);
}

TEST(EulerTourForestTest, FlaggedVertexSearch) {
  EulerTourForest forest(5, 3);
  forest.link(0, 1);
  forest.link(1, 2);
  EXPECT_FALSE(forest.find_flagged_vertex(0).has_value());
  forest.set_vertex_flag(2, true);
  const auto hit = forest.find_flagged_vertex(0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 2u);
  // Flags are per component.
  EXPECT_FALSE(forest.find_flagged_vertex(3).has_value());
  forest.set_vertex_flag(2, false);
  EXPECT_FALSE(forest.find_flagged_vertex(0).has_value());
}

TEST(EulerTourForestTest, FlaggedEdgeSearch) {
  EulerTourForest forest(4, 4);
  forest.link(0, 1);
  forest.link(1, 2);
  forest.set_edge_flag(1, 2, true);
  const auto hit = forest.find_flagged_edge(0);
  ASSERT_TRUE(hit.has_value());
  const auto [a, b] = *hit;
  EXPECT_TRUE((a == 1 && b == 2) || (a == 2 && b == 1));
  forest.set_edge_flag(1, 2, false);
  EXPECT_FALSE(forest.find_flagged_edge(0).has_value());
}

/// Randomized differential test of the forest alone (links/cuts chosen so
/// the structure stays a forest).
TEST(EulerTourForestTest, RandomizedAgainstNaive) {
  constexpr std::size_t n = 40;
  EulerTourForest forest(n, 5);
  NaiveGraph naive(n);
  std::set<std::pair<std::uint32_t, std::uint32_t>> tree_edges;
  util::Rng rng(99);

  for (int op = 0; op < 3000; ++op) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(n));
    const auto v = static_cast<std::uint32_t>(rng.next_below(n));
    if (u == v) continue;
    if (!forest.connected(u, v)) {
      forest.link(u, v);
      naive.insert(u, v);
      tree_edges.insert({std::min(u, v), std::max(u, v)});
    } else if (!tree_edges.empty() && rng.next_bool(0.5)) {
      // Cut a random existing tree edge.
      auto it = tree_edges.begin();
      std::advance(it, rng.next_below(tree_edges.size()));
      forest.cut(it->first, it->second);
      naive.erase(it->first, it->second);
      tree_edges.erase(it);
    }
    // Spot-check connectivity + sizes.
    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    ASSERT_EQ(forest.connected(a, b), naive.connected(a, b))
        << "op " << op << " pair " << a << "," << b;
    ASSERT_EQ(forest.component_size(a), naive.component_of(a).size())
        << "op " << op;
  }
}

TEST(DynamicConnectivityTest, BasicInsertDelete) {
  DynamicConnectivity dc(5);
  EXPECT_EQ(dc.component_count(), 5u);
  EXPECT_TRUE(dc.insert_edge(0, 1));
  EXPECT_TRUE(dc.insert_edge(1, 2));
  EXPECT_EQ(dc.component_count(), 3u);
  EXPECT_TRUE(dc.connected(0, 2));

  EXPECT_TRUE(dc.delete_edge(0, 1));
  EXPECT_FALSE(dc.connected(0, 2));
  EXPECT_EQ(dc.component_count(), 4u);
}

TEST(DynamicConnectivityTest, ReplacementEdgeFound) {
  // Delete a tree edge when a parallel path exists: must stay connected.
  DynamicConnectivity dc(4);
  dc.insert_edge(0, 1);
  dc.insert_edge(1, 2);
  dc.insert_edge(2, 3);
  dc.insert_edge(3, 0);  // cycle
  EXPECT_EQ(dc.component_count(), 1u);
  EXPECT_TRUE(dc.delete_edge(0, 1));
  EXPECT_TRUE(dc.connected(0, 1));  // via 0-3-2-1
  EXPECT_EQ(dc.component_count(), 1u);
  EXPECT_TRUE(dc.delete_edge(2, 3));
  EXPECT_FALSE(dc.connected(0, 1));
}

TEST(DynamicConnectivityTest, DuplicateAndSelfEdgesRejected) {
  DynamicConnectivity dc(3);
  EXPECT_TRUE(dc.insert_edge(0, 1));
  EXPECT_FALSE(dc.insert_edge(0, 1));
  EXPECT_FALSE(dc.insert_edge(1, 0));
  EXPECT_FALSE(dc.insert_edge(2, 2));
  EXPECT_FALSE(dc.delete_edge(0, 2));
  EXPECT_TRUE(dc.has_edge(1, 0));
}

TEST(DynamicConnectivityTest, ComponentSizes) {
  DynamicConnectivity dc(6);
  dc.insert_edge(0, 1);
  dc.insert_edge(1, 2);
  dc.insert_edge(3, 4);
  EXPECT_EQ(dc.component_size(0), 3u);
  EXPECT_EQ(dc.component_size(4), 2u);
  EXPECT_EQ(dc.component_size(5), 1u);
}

class DynamicConnectivityRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicConnectivityRandomTest, MatchesNaiveUnderChurn) {
  constexpr std::size_t n = 48;
  DynamicConnectivity dc(n, GetParam());
  NaiveGraph naive(n);
  std::set<std::pair<std::uint32_t, std::uint32_t>> live_edges;
  util::Rng rng(GetParam() * 7919 + 13);

  for (int op = 0; op < 2500; ++op) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(n));
    const auto v = static_cast<std::uint32_t>(rng.next_below(n));
    const bool do_delete = !live_edges.empty() && rng.next_bool(0.45);
    if (do_delete) {
      auto it = live_edges.begin();
      std::advance(it, rng.next_below(live_edges.size()));
      ASSERT_TRUE(dc.delete_edge(it->first, it->second));
      naive.erase(it->first, it->second);
      live_edges.erase(it);
    } else if (u != v) {
      const bool inserted = dc.insert_edge(u, v);
      ASSERT_EQ(inserted, naive.insert(u, v));
      if (inserted) live_edges.insert({std::min(u, v), std::max(u, v)});
    }

    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    ASSERT_EQ(dc.connected(a, b), naive.connected(a, b)) << "op " << op;
    if (op % 50 == 0) {
      ASSERT_EQ(dc.component_count(), naive.component_count()) << "op " << op;
      ASSERT_EQ(dc.component_size(a), naive.component_of(a).size())
          << "op " << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicConnectivityRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DynamicConnectivityTest, DenseThenTeardown) {
  // Build a complete-ish graph, then delete every edge; component count
  // must return to n.
  constexpr std::size_t n = 20;
  DynamicConnectivity dc(n);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      dc.insert_edge(u, v);
      edges.emplace_back(u, v);
    }
  }
  EXPECT_EQ(dc.component_count(), 1u);
  for (const auto& [u, v] : edges) ASSERT_TRUE(dc.delete_edge(u, v));
  EXPECT_EQ(dc.component_count(), n);
  EXPECT_EQ(dc.edge_count(), 0u);
}

}  // namespace
}  // namespace wafp::collation
