// Crash-recovery property tests (ISSUE satellite): kill the service after
// every k-th submission of a 500-submission trace, recover from snapshot +
// WAL, and require the final connected components to be bit-identical (via
// FingerprintGraph::component_checksum) to an uninterrupted run -- including
// under duplicate/reorder fault schedules.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "service/collation_service.h"

namespace wafp::service {
namespace {

constexpr std::size_t kTraceLength = 500;
constexpr std::size_t kUsers = 37;
constexpr std::size_t kFamilies = 9;

std::vector<RawSubmission> make_trace() {
  std::vector<std::string> family_hex(kFamilies);
  for (std::size_t p = 0; p < kFamilies; ++p) {
    family_hex[p] = util::sha256("cr-family-" + std::to_string(p)).hex();
  }
  std::vector<RawSubmission> trace;
  trace.reserve(kTraceLength);
  for (std::size_t i = 0; i < kTraceLength; ++i) {
    RawSubmission raw;
    raw.user = static_cast<std::uint32_t>(i % kUsers);
    raw.vector = static_cast<std::uint32_t>(fingerprint::VectorId::kHybrid);
    raw.timestamp = i;  // globally increasing => per-user monotone
    // Mostly the user's family digest (drives cluster merges), with
    // deterministic per-user noise digests mixed in.
    if (i % 11 == 0) {
      raw.efp_hex = util::sha256("cr-noise-" + std::to_string(i)).hex();
    } else {
      raw.efp_hex = family_hex[raw.user % kFamilies];
    }
    trace.push_back(std::move(raw));
  }
  return trace;
}

/// Checksum of an uninterrupted in-memory run over the trace.
std::uint64_t uninterrupted_checksum(const std::vector<RawSubmission>& trace) {
  CollationService svc(ServiceConfig{});
  for (const auto& raw : trace) {
    EXPECT_TRUE(svc.submit(raw).accepted());
  }
  svc.pump();
  return svc.component_checksum();
}

ServiceConfig durable_config(const std::string& dir, FaultPlan faults = {}) {
  ServiceConfig config;
  config.state_dir = dir;
  config.snapshot_every = 64;  // force several snapshot+WAL-truncate cycles
  config.faults = faults;
  return config;
}

/// Feed `trace` through a durable service, crashing (and recovering) after
/// every k-th submission. Every submission is pumped to the WAL before a
/// crash can hit, so recovery must reproduce the full partition.
std::uint64_t interrupted_checksum(const std::vector<RawSubmission>& trace,
                                   std::size_t k, const std::string& dir,
                                   FaultPlan faults = {}) {
  std::filesystem::remove_all(dir);
  auto svc =
      std::make_unique<CollationService>(durable_config(dir, faults));
  std::size_t recoveries = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_TRUE(svc->submit(trace[i]).accepted()) << "submission " << i;
    svc->pump();  // durable before the crash window opens
    if ((i + 1) % k == 0) {
      svc->crash();  // drops in-memory state, skips shutdown checkpoint
      svc = std::make_unique<CollationService>(durable_config(dir, faults));
      ++recoveries;
    }
  }
  svc->drain_and_checkpoint();
  EXPECT_EQ(recoveries, trace.size() / k);
  EXPECT_GT(svc->stats().recovered_from_snapshot +
                svc->stats().recovered_from_wal,
            0u);
  const std::uint64_t checksum = svc->component_checksum();
  svc.reset();
  std::filesystem::remove_all(dir);
  return checksum;
}

TEST(CrashRecoveryTest, KilledEverySeventhSubmissionMatchesCleanRun) {
  const auto trace = make_trace();
  const std::uint64_t clean = uninterrupted_checksum(trace);
  EXPECT_EQ(interrupted_checksum(trace, 7, "cr_state_k7"), clean);
}

TEST(CrashRecoveryTest, KilledEveryFiftiethSubmissionMatchesCleanRun) {
  const auto trace = make_trace();
  const std::uint64_t clean = uninterrupted_checksum(trace);
  EXPECT_EQ(interrupted_checksum(trace, 50, "cr_state_k50"), clean);
}

TEST(CrashRecoveryTest, CrashImmediatelyAfterEverySubmission) {
  // The brutal schedule: k=1 restarts the service 500 times. Shortened
  // trace keeps the test fast; the property is the same.
  auto trace = make_trace();
  trace.resize(120);
  const std::uint64_t clean = uninterrupted_checksum(trace);
  EXPECT_EQ(interrupted_checksum(trace, 1, "cr_state_k1"), clean);
}

TEST(CrashRecoveryTest, ParityHoldsUnderDuplicateAndReorderFaults) {
  const auto trace = make_trace();
  const std::uint64_t clean = uninterrupted_checksum(trace);
  FaultPlan faults;
  faults.duplicate_every = 5;
  faults.reorder_every = 9;
  EXPECT_EQ(interrupted_checksum(trace, 13, "cr_state_faulty", faults),
            clean);
}

TEST(CrashRecoveryTest, RecoverySurvivesTornWalTail) {
  const std::string dir = "cr_state_torn";
  std::filesystem::remove_all(dir);
  const auto trace = make_trace();
  std::uint64_t before = 0;
  {
    CollationService svc(durable_config(dir));
    for (std::size_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(svc.submit(trace[i]).accepted());
    }
    svc.pump();
    before = svc.component_checksum();
    svc.crash();
  }
  {
    // Torn tail: a crash mid-append leaves a partial record on disk.
    std::ofstream wal(std::filesystem::path(dir) / "submissions.wal",
                      std::ios::binary | std::ios::app);
    wal << "12,6,999,deadbeef";
  }
  CollationService svc(durable_config(dir));
  EXPECT_EQ(svc.component_checksum(), before);
  svc.crash();
  std::filesystem::remove_all(dir);
}

ServiceConfig wal_only_config(const std::string& dir) {
  ServiceConfig config;
  config.state_dir = dir;
  config.snapshot_every = 0;  // keep every record in the WAL
  return config;
}

TEST(CrashRecoveryTest, AppendsAfterTornTailSurviveTheNextRecovery) {
  // Regression: recovery used to leave the torn partial line in place, so
  // the first post-recovery append merged into it; the *next* recovery then
  // stopped at that merged line and silently discarded every valid, acked
  // record appended after the tear.
  const std::string dir = "cr_state_torn_append";
  std::filesystem::remove_all(dir);
  const auto trace = make_trace();
  {
    CollationService svc(wal_only_config(dir));
    for (std::size_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(svc.submit(trace[i]).accepted());
    }
    svc.pump();
    svc.crash();
  }
  {
    // Crash mid-append: a partial record with no trailing newline.
    std::ofstream wal(std::filesystem::path(dir) / "submissions.wal",
                      std::ios::binary | std::ios::app);
    wal << "12,6,999,deadbeef";
  }
  {
    CollationService svc(wal_only_config(dir));
    EXPECT_EQ(svc.stats().wal_tail_lines_dropped, 1u);
    for (std::size_t i = 50; i < 100; ++i) {
      ASSERT_TRUE(svc.submit(trace[i]).accepted());
    }
    svc.pump();
    svc.crash();
  }
  CollationService svc(wal_only_config(dir));
  EXPECT_EQ(svc.stats().recovered_from_wal, 100u);
  const std::vector<RawSubmission> first_hundred(trace.begin(),
                                                 trace.begin() + 100);
  EXPECT_EQ(svc.component_checksum(), uninterrupted_checksum(first_hundred));
  svc.crash();
  std::filesystem::remove_all(dir);
}

TEST(CrashRecoveryTest, HeaderlessWalIsRepairedNotPoisonous) {
  // Regression: a pre-existing empty (0-byte) WAL used to make every later
  // append land in a headerless file that the next replay discarded
  // wholesale.
  const std::string dir = "cr_state_headerless";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  { std::ofstream wal(std::filesystem::path(dir) / "submissions.wal"); }
  const auto trace = make_trace();
  {
    CollationService svc(wal_only_config(dir));
    for (std::size_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(svc.submit(trace[i]).accepted());
    }
    svc.pump();
    svc.crash();
  }
  CollationService svc(wal_only_config(dir));
  EXPECT_EQ(svc.stats().recovered_from_wal, 20u);
  svc.crash();
  std::filesystem::remove_all(dir);
}

TEST(CrashRecoveryTest, CorruptSnapshotIsReportedNotSilentlyUsed) {
  const std::string dir = "cr_state_corrupt";
  std::filesystem::remove_all(dir);
  const auto trace = make_trace();
  {
    FaultPlan faults;
    faults.corrupt_snapshot = true;
    CollationService svc(durable_config(dir, faults));
    for (std::size_t i = 0; i < 200; ++i) {
      ASSERT_TRUE(svc.submit(trace[i]).accepted());
    }
    svc.pump();  // crosses snapshot_every => writes a (corrupted) snapshot
    EXPECT_GT(svc.stats().snapshots_written, 0u);
    svc.crash();
  }
  EXPECT_THROW(CollationService svc(durable_config(dir)),
               SnapshotCorruptError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wafp::service
