#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "collation/fingerprint_graph.h"
#include "service/snapshot.h"
#include "service/wal.h"

namespace wafp::service {
namespace {

util::Digest efp(int i) { return util::sha256("ws-" + std::to_string(i)); }

Submission sub(std::uint32_t user, int print, std::uint64_t ts) {
  Submission s;
  s.user = user;
  s.vector = fingerprint::VectorId::kFft;
  s.timestamp = ts;
  s.efp = efp(print);
  return s;
}

class TempDir {
 public:
  explicit TempDir(std::string name) : path_(std::move(name)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string file(const char* name) const {
    return (std::filesystem::path(path_) / name).string();
  }

 private:
  std::string path_;
};

TEST(WalTest, AppendReplayRoundTrip) {
  TempDir dir("wal_test_rt");
  const std::string path = dir.file("log.wal");
  {
    Wal wal(path);
    EXPECT_TRUE(wal.append(sub(1, 1, 10)));
    EXPECT_TRUE(wal.append(sub(2, 1, 11)));
    EXPECT_TRUE(wal.append(sub(3, 2, 12)));
  }
  const WalReplay replay = Wal::replay(path);
  EXPECT_TRUE(replay.header_ok);
  EXPECT_EQ(replay.corrupt_tail_lines, 0u);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0].user, 1u);
  EXPECT_EQ(replay.records[1].timestamp, 11u);
  EXPECT_EQ(replay.records[2].efp, efp(2));
  EXPECT_EQ(replay.records[2].vector, fingerprint::VectorId::kFft);
}

TEST(WalTest, MissingFileIsEmptyReplay) {
  const WalReplay replay = Wal::replay("does_not_exist_894.wal");
  EXPECT_TRUE(replay.header_ok);
  EXPECT_TRUE(replay.records.empty());
}

TEST(WalTest, TornTailIsDroppedNotPoisonous) {
  TempDir dir("wal_test_torn");
  const std::string path = dir.file("log.wal");
  {
    Wal wal(path);
    EXPECT_TRUE(wal.append(sub(1, 1, 10)));
    EXPECT_TRUE(wal.append(sub(2, 2, 11)));
  }
  {
    // Simulate a crash mid-append: half a record, no newline.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "3,5,12,abcd";
  }
  const WalReplay replay = Wal::replay(path);
  EXPECT_TRUE(replay.header_ok);
  ASSERT_EQ(replay.records.size(), 2u);  // intact prefix survives
  EXPECT_EQ(replay.corrupt_tail_lines, 1u);
}

TEST(WalTest, BitFlippedRecordFailsItsCrc) {
  TempDir dir("wal_test_crc");
  const std::string path = dir.file("log.wal");
  {
    Wal wal(path);
    EXPECT_TRUE(wal.append(sub(1, 1, 10)));
  }
  // Corrupt one hex digit of the stored digest.
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(20);
  char c = 0;
  file.seekg(20);
  file.get(c);
  file.seekp(20);
  file.put(c == 'a' ? 'b' : 'a');
  file.close();
  const WalReplay replay = Wal::replay(path);
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.corrupt_tail_lines, 1u);
}

TEST(WalTest, InjectedAppendFailureWritesNothing) {
  TempDir dir("wal_test_inject");
  const std::string path = dir.file("log.wal");
  Wal wal(path);
  EXPECT_FALSE(wal.append(sub(1, 1, 10), /*inject_failure=*/true));
  EXPECT_TRUE(wal.append(sub(1, 1, 10)));  // retry path works
  const WalReplay replay = Wal::replay(path);
  ASSERT_EQ(replay.records.size(), 1u);  // exactly once
}

TEST(WalTest, FsyncModeRoundTripsAndTimesTheSync) {
  TempDir dir("wal_test_fsync");
  const std::string path = dir.file("log.wal");
  obs::MetricsRegistry reg;
  {
    Wal wal(path, &reg, /*fsync_writes=*/true);
    EXPECT_TRUE(wal.fsync_writes());
    EXPECT_TRUE(wal.append(sub(1, 1, 10)));
    EXPECT_TRUE(wal.append(sub(2, 2, 11)));
    EXPECT_TRUE(wal.append(sub(3, 3, 12)));
  }
  const WalReplay replay = Wal::replay(path);
  EXPECT_TRUE(replay.header_ok);
  ASSERT_EQ(replay.records.size(), 3u);
  // Every append flushed AND fdatasynced (POSIX; elsewhere the sync
  // degrades to a no-op but is still timed per the mode contract).
  EXPECT_EQ(reg.histogram("wafp_wal_flush_ns").snapshot().count, 3u);
#ifdef __unix__
  EXPECT_EQ(reg.histogram("wafp_wal_fsync_ns").snapshot().count, 3u);
#endif
}

TEST(WalTest, FlushOnlyModeNeverTouchesTheFsyncHistogram) {
  TempDir dir("wal_test_flushonly");
  const std::string path = dir.file("log.wal");
  obs::MetricsRegistry reg;
  Wal wal(path, &reg);  // default: flush-only, the honest-bench mode
  EXPECT_FALSE(wal.fsync_writes());
  EXPECT_TRUE(wal.append(sub(1, 1, 10)));
  EXPECT_TRUE(wal.append(sub(2, 2, 11)));
  EXPECT_EQ(reg.histogram("wafp_wal_flush_ns").snapshot().count, 2u);
  EXPECT_EQ(reg.histogram("wafp_wal_fsync_ns").snapshot().count, 0u);
}

TEST(WalTest, FsyncModeSurvivesResetAndInjectedFailure) {
  TempDir dir("wal_test_fsync_reset");
  const std::string path = dir.file("log.wal");
  Wal wal(path, nullptr, /*fsync_writes=*/true);
  EXPECT_TRUE(wal.append(sub(1, 1, 10)));
  EXPECT_FALSE(wal.append(sub(2, 2, 11), /*inject_failure=*/true));
  EXPECT_TRUE(wal.append(sub(2, 2, 11)));  // retry after failure works
  wal.reset();                             // truncation keeps the same inode
  EXPECT_TRUE(wal.append(sub(3, 3, 12)));
  const WalReplay replay = Wal::replay(path);
  EXPECT_TRUE(replay.header_ok);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].user, 3u);
}

TEST(FingerprintGraphExportTest, ImportPreservesComponents) {
  collation::FingerprintGraph graph;
  graph.add_observation(1, efp(1));
  graph.add_observation(2, efp(1));  // 1-2 share a print
  graph.add_observation(2, efp(2));
  graph.add_observation(3, efp(3));  // singleton
  const auto restored =
      collation::FingerprintGraph::import_state(graph.export_state());
  EXPECT_EQ(restored.user_count(), graph.user_count());
  EXPECT_EQ(restored.fingerprint_count(), graph.fingerprint_count());
  EXPECT_EQ(restored.cluster_count(), graph.cluster_count());
  EXPECT_TRUE(restored.same_cluster(1, 2));
  EXPECT_FALSE(restored.same_cluster(1, 3));
  EXPECT_EQ(restored.component_checksum(), graph.component_checksum());
}

TEST(FingerprintGraphExportTest, ChecksumIsInsertionOrderInvariant) {
  collation::FingerprintGraph a;
  a.add_observation(1, efp(1));
  a.add_observation(2, efp(1));
  a.add_observation(3, efp(9));
  collation::FingerprintGraph b;
  b.add_observation(3, efp(9));
  b.add_observation(2, efp(1));
  b.add_observation(1, efp(1));
  EXPECT_EQ(a.component_checksum(), b.component_checksum());

  collation::FingerprintGraph c;  // different partition: all merged
  c.add_observation(1, efp(1));
  c.add_observation(2, efp(1));
  c.add_observation(3, efp(1));
  c.add_observation(3, efp(9));
  EXPECT_NE(a.component_checksum(), c.component_checksum());
}

TEST(FingerprintGraphExportTest, ImportRejectsInconsistentState) {
  collation::FingerprintGraph graph;
  graph.add_observation(1, efp(1));
  auto state = graph.export_state();
  state.roots.push_back(99);  // node count no longer matches
  EXPECT_THROW((void)collation::FingerprintGraph::import_state(state),
               std::invalid_argument);
}

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  collation::FingerprintGraph graph;
  graph.add_observation(7, efp(1));
  graph.add_observation(8, efp(1));
  graph.add_observation(9, efp(4));
  SnapshotState state;
  state.applied = 42;
  state.user_clocks = {{7, 100}, {8, 105}, {9, 99}};
  state.graph = graph.export_state();

  const SnapshotState decoded = decode_snapshot(encode_snapshot(state));
  EXPECT_EQ(decoded.applied, 42u);
  EXPECT_EQ(decoded.user_clocks, state.user_clocks);
  const auto restored =
      collation::FingerprintGraph::import_state(decoded.graph);
  EXPECT_EQ(restored.component_checksum(), graph.component_checksum());
}

TEST(SnapshotTest, WriteLoadRoundTrip) {
  TempDir dir("snap_test_rt");
  const std::string path = dir.file("graph.snapshot");
  collation::FingerprintGraph graph;
  graph.add_observation(1, efp(1));
  SnapshotState state;
  state.applied = 1;
  state.graph = graph.export_state();
  ASSERT_TRUE(write_snapshot(path, state));
  const auto loaded = load_snapshot(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->applied, 1u);
}

TEST(SnapshotTest, MissingSnapshotIsNullopt) {
  EXPECT_FALSE(load_snapshot("does_not_exist_894.snapshot").has_value());
}

TEST(SnapshotTest, CorruptionIsDetected) {
  TempDir dir("snap_test_corrupt");
  const std::string path = dir.file("graph.snapshot");
  collation::FingerprintGraph graph;
  for (int i = 0; i < 20; ++i) {
    graph.add_observation(static_cast<std::uint32_t>(i), efp(i % 5));
  }
  SnapshotState state;
  state.applied = 20;
  state.graph = graph.export_state();
  ASSERT_TRUE(write_snapshot(path, state));
  corrupt_snapshot_file(path);
  EXPECT_THROW((void)load_snapshot(path), SnapshotCorruptError);
}

TEST(SnapshotTest, TruncationIsDetected) {
  TempDir dir("snap_test_trunc");
  const std::string path = dir.file("graph.snapshot");
  collation::FingerprintGraph graph;
  graph.add_observation(1, efp(1));
  SnapshotState state;
  state.graph = graph.export_state();
  ASSERT_TRUE(write_snapshot(path, state));
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW((void)load_snapshot(path), SnapshotCorruptError);
}

}  // namespace
}  // namespace wafp::service
