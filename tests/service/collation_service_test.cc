#include "service/collation_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "service/validator.h"

namespace wafp::service {
namespace {

util::Digest efp(int i) { return util::sha256("svc-" + std::to_string(i)); }

RawSubmission raw_of(std::uint32_t user, int print, std::uint64_t ts) {
  RawSubmission raw;
  raw.user = user;
  raw.vector = static_cast<std::uint32_t>(fingerprint::VectorId::kAm);
  raw.timestamp = ts;
  raw.efp_hex = efp(print).hex();
  return raw;
}

TEST(ValidatorTest, HashFormat) {
  EXPECT_TRUE(is_valid_efp_hex(efp(1).hex()));
  EXPECT_FALSE(is_valid_efp_hex(""));
  EXPECT_FALSE(is_valid_efp_hex("abc"));                       // too short
  EXPECT_FALSE(is_valid_efp_hex(std::string(64, 'g')));        // not hex
  EXPECT_FALSE(is_valid_efp_hex(std::string(63, 'a') + "A"));  // uppercase
  EXPECT_FALSE(is_valid_efp_hex(std::string(65, 'a')));        // too long
  const auto parsed = parse_efp_hex(efp(7).hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, efp(7));  // hex -> digest -> hex round trip
}

TEST(ValidatorTest, VectorIds) {
  EXPECT_TRUE(is_known_vector(
      static_cast<std::uint32_t>(fingerprint::VectorId::kDc)));
  EXPECT_TRUE(is_known_vector(
      static_cast<std::uint32_t>(fingerprint::VectorId::kDistortion)));
  EXPECT_FALSE(is_known_vector(99));
  EXPECT_FALSE(is_known_vector(0xFFFFFFFFu));
}

TEST(ValidatorTest, TimestampMonotonicPerUser) {
  SubmissionValidator validator;
  Submission out;
  EXPECT_EQ(validator.validate(raw_of(1, 1, 100), out), Reject::kNone);
  validator.observe_timestamp(1, 100);
  // Equal timestamps are fine (several vectors per visit).
  EXPECT_EQ(validator.validate(raw_of(1, 2, 100), out), Reject::kNone);
  // Going backwards is not.
  EXPECT_EQ(validator.validate(raw_of(1, 3, 99), out),
            Reject::kTimestampRegression);
  // Other users are unaffected.
  EXPECT_EQ(validator.validate(raw_of(2, 3, 1), out), Reject::kNone);
}

TEST(CollationServiceTest, RejectsMalformedInputWithTypedErrors) {
  CollationService svc(ServiceConfig{});
  auto bad_hash = raw_of(1, 1, 1);
  bad_hash.efp_hex = "not-a-hash";
  EXPECT_EQ(svc.submit(bad_hash).reason, Reject::kMalformedHash);

  auto bad_vector = raw_of(1, 1, 1);
  bad_vector.vector = 1234;
  EXPECT_EQ(svc.submit(bad_vector).reason, Reject::kUnknownVector);

  ASSERT_TRUE(svc.submit(raw_of(1, 1, 50)).accepted());
  EXPECT_EQ(svc.submit(raw_of(1, 2, 49)).reason,
            Reject::kTimestampRegression);

  const auto stats = svc.stats();
  EXPECT_EQ(stats.rejected_hash, 1u);
  EXPECT_EQ(stats.rejected_vector, 1u);
  EXPECT_EQ(stats.rejected_timestamp, 1u);
  EXPECT_EQ(stats.accepted, 1u);
}

TEST(CollationServiceTest, BoundedQueueBackpressure) {
  ServiceConfig config;
  config.queue_capacity = 4;
  CollationService svc(std::move(config));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(svc.submit(raw_of(1, i, 1)).accepted());
  }
  EXPECT_EQ(svc.submit(raw_of(1, 9, 1)).reason, Reject::kQueueFull);
  // A backpressure rejection must not advance the user clock: the same
  // submission is accepted after the queue drains.
  EXPECT_EQ(svc.pump(), 4u);
  EXPECT_TRUE(svc.submit(raw_of(1, 9, 1)).accepted());
}

TEST(CollationServiceTest, PumpAppliesToGraph) {
  CollationService svc(ServiceConfig{});
  ASSERT_TRUE(svc.submit(raw_of(1, 10, 1)).accepted());
  ASSERT_TRUE(svc.submit(raw_of(2, 10, 1)).accepted());
  ASSERT_TRUE(svc.submit(raw_of(3, 30, 1)).accepted());
  EXPECT_EQ(svc.graph().user_count(), 0u);  // nothing applied yet
  EXPECT_EQ(svc.pump(), 3u);
  EXPECT_EQ(svc.graph().user_count(), 3u);
  EXPECT_TRUE(svc.graph().same_cluster(1, 2));
  EXPECT_FALSE(svc.graph().same_cluster(1, 3));
}

TEST(CollationServiceTest, DuplicatesAndReorderingDoNotChangeComponents) {
  // Reference run: clean network.
  CollationService clean(ServiceConfig{});
  // Faulty run: every 3rd submission duplicated, every 5th reordered.
  ServiceConfig faulty_cfg;
  faulty_cfg.faults.duplicate_every = 3;
  faulty_cfg.faults.reorder_every = 5;
  CollationService faulty(std::move(faulty_cfg));

  for (std::uint32_t user = 0; user < 40; ++user) {
    for (int it = 0; it < 3; ++it) {
      const auto raw = raw_of(user, static_cast<int>(user % 7), it);
      ASSERT_TRUE(clean.submit(raw).accepted());
      ASSERT_TRUE(faulty.submit(raw).accepted());
    }
  }
  clean.pump();
  faulty.pump();
  EXPECT_GT(faulty.stats().duplicated_by_fault, 0u);
  EXPECT_EQ(clean.component_checksum(), faulty.component_checksum());
}

TEST(CollationServiceTest, DroppedSubmissionsChangeTheGraph) {
  ServiceConfig lossy_cfg;
  lossy_cfg.faults.drop_every = 2;
  CollationService lossy(std::move(lossy_cfg));
  for (std::uint32_t user = 0; user < 10; ++user) {
    ASSERT_TRUE(lossy.submit(raw_of(user, static_cast<int>(user), 1))
                    .accepted());
  }
  lossy.pump();
  const auto stats = lossy.stats();
  EXPECT_EQ(stats.accepted, 10u);
  EXPECT_EQ(stats.dropped_by_fault, 5u);
  EXPECT_EQ(stats.applied, 5u);
  EXPECT_EQ(lossy.graph().user_count(), 5u);
}

TEST(CollationServiceTest, TransientAppendFailureRetriesWithBackoff) {
  const std::string dir = "svc_test_retry_state";
  std::filesystem::remove_all(dir);
  std::vector<std::chrono::milliseconds> sleeps;
  ServiceConfig config;
  config.state_dir = dir;
  config.faults.fail_append_at = 2;  // second record fails once
  config.retry_backoff = std::chrono::milliseconds(3);
  config.sleeper = [&sleeps](std::chrono::milliseconds d) {
    sleeps.push_back(d);
  };
  CollationService svc(std::move(config));
  ASSERT_TRUE(svc.submit(raw_of(1, 1, 1)).accepted());
  ASSERT_TRUE(svc.submit(raw_of(1, 2, 2)).accepted());
  EXPECT_EQ(svc.pump(), 2u);  // both applied despite the transient failure
  EXPECT_EQ(svc.stats().wal_retries, 1u);
  ASSERT_EQ(sleeps.size(), 1u);
  EXPECT_EQ(sleeps[0], std::chrono::milliseconds(3));  // base backoff
  // The WAL holds both records (read before shutdown checkpoints/truncates).
  const auto replay = Wal::replay(
      (std::filesystem::path(dir) / "submissions.wal").string());
  EXPECT_TRUE(replay.header_ok);
  EXPECT_EQ(replay.records.size(), 2u);
  svc.crash();  // skip the destructor checkpoint before deleting the dir
  std::filesystem::remove_all(dir);
}

TEST(CollationServiceTest, HardAppendFailureSurfacesTypedError) {
  const std::string dir = "svc_test_hard_state";
  std::filesystem::remove_all(dir);
  std::vector<std::chrono::milliseconds> sleeps;
  ServiceConfig config;
  config.state_dir = dir;
  config.max_append_retries = 2;
  config.retry_backoff = std::chrono::milliseconds(1);
  config.faults.fail_append_hard_at = 1;
  config.sleeper = [&sleeps](std::chrono::milliseconds d) {
    sleeps.push_back(d);
  };
  CollationService svc(std::move(config));
  ASSERT_TRUE(svc.submit(raw_of(1, 1, 1)).accepted());
  EXPECT_THROW(svc.pump(), WalAppendError);
  // Exponential backoff between the 3 attempts: 1ms then 2ms.
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], std::chrono::milliseconds(1));
  EXPECT_EQ(sleeps[1], std::chrono::milliseconds(2));
  // The submission was not applied (durability before visibility)...
  EXPECT_EQ(svc.stats().applied, 0u);
  EXPECT_EQ(svc.graph().user_count(), 0u);
  // ...but stays queued: once the disk heals, pumping applies it.
  EXPECT_EQ(svc.pump(), 1u);
  EXPECT_EQ(svc.graph().user_count(), 1u);
  svc.crash();  // skip the destructor checkpoint; state dir is removed next
  std::filesystem::remove_all(dir);
}

TEST(CollationServiceTest, BackgroundWorkerDrainsQueue) {
  CollationService svc(ServiceConfig{});
  svc.start();
  for (std::uint32_t user = 0; user < 50; ++user) {
    for (int it = 0; it < 2; ++it) {
      auto result = svc.submit(raw_of(user, static_cast<int>(user % 5), it));
      while (result.reason == Reject::kQueueFull) {
        result = svc.submit(raw_of(user, static_cast<int>(user % 5), it));
      }
      ASSERT_TRUE(result.accepted());
    }
  }
  svc.stop();
  svc.pump();  // whatever the worker had not reached yet
  EXPECT_EQ(svc.stats().applied, 100u);
  EXPECT_EQ(svc.graph().user_count(), 50u);
}

TEST(CollationServiceTest, WorkerSurvivesHardAppendFailure) {
  // Regression: a WalAppendError escaping the worker's thread function
  // called std::terminate, killing the whole process instead of surfacing
  // the typed error through stats.
  const std::string dir = "svc_test_worker_hard_state";
  std::filesystem::remove_all(dir);
  ServiceConfig config;
  config.state_dir = dir;
  config.max_append_retries = 1;
  config.faults.fail_append_hard_at = 1;
  config.sleeper = [](std::chrono::milliseconds) {};
  CollationService svc(std::move(config));
  svc.start();
  ASSERT_TRUE(svc.submit(raw_of(1, 1, 1)).accepted());
  for (int i = 0; i < 5000 && svc.stats().wal_append_failures == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(svc.stats().wal_append_failures, 1u);
  EXPECT_EQ(svc.stats().applied, 0u);  // not durable => not applied
  // The submission stayed queued and the fault ordinal has passed; a
  // restarted worker drains it.
  svc.start();
  for (int i = 0; i < 5000 && svc.stats().applied == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  svc.stop();
  EXPECT_EQ(svc.stats().applied, 1u);
  EXPECT_EQ(svc.graph().user_count(), 1u);
  svc.crash();  // skip the destructor checkpoint; state dir is removed next
  std::filesystem::remove_all(dir);
}

TEST(CollationServiceTest, FsyncWalModeAppliesAndRecoversIdentically) {
  const std::string dir = "svc_test_fsync_state";
  std::filesystem::remove_all(dir);
  std::uint64_t checksum = 0;
  {
    ServiceConfig config;
    config.state_dir = dir;
    config.fsync_wal = true;
    config.snapshot_every = 0;  // keep every record in the WAL
    CollationService svc(std::move(config));
    for (std::uint32_t user = 0; user < 8; ++user) {
      ASSERT_TRUE(
          svc.submit(raw_of(user, static_cast<int>(user % 3), 1)).accepted());
    }
    EXPECT_EQ(svc.pump(), 8u);
    checksum = svc.component_checksum();
    svc.crash();  // recovery must come from the synced WAL alone
  }
  ServiceConfig recover_cfg;
  recover_cfg.state_dir = dir;
  recover_cfg.fsync_wal = true;
  CollationService recovered(std::move(recover_cfg));
  EXPECT_EQ(recovered.component_checksum(), checksum);
  EXPECT_EQ(recovered.stats().recovered_from_wal, 8u);
  recovered.crash();
  std::filesystem::remove_all(dir);
}

TEST(CollationServiceDeathTest, ConcurrentPumpTripsTheOwnerGuard) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Deterministic double entry, no thread race needed: the first pump's
  // retry backoff sleeper re-enters pump() on the same thread, which is
  // exactly the overlap the single-caller contract forbids.
  EXPECT_DEATH(
      {
        ServiceConfig config;
        config.state_dir = "svc_test_pump_guard_state";
        config.faults.fail_append_at = 1;  // force one retry (and a sleep)
        CollationService* reentrant = nullptr;
        config.sleeper = [&reentrant](std::chrono::milliseconds) {
          (void)reentrant->pump();
        };
        CollationService svc(std::move(config));
        reentrant = &svc;
        (void)svc.submit(raw_of(1, 1, 1));
        (void)svc.pump();
      },
      "pump entered while another pump is in flight");
  std::filesystem::remove_all("svc_test_pump_guard_state");
}

TEST(CollationServiceTest, SequentialPumpsNeverTripTheGuard) {
  // The guard must only fire on *overlapping* pumps: back-to-back serial
  // pumps (including via drain_and_checkpoint and after an exception) are
  // the documented workflow.
  CollationService svc(ServiceConfig{});
  ASSERT_TRUE(svc.submit(raw_of(1, 1, 1)).accepted());
  EXPECT_EQ(svc.pump(1), 1u);
  ASSERT_TRUE(svc.submit(raw_of(1, 2, 2)).accepted());
  EXPECT_EQ(svc.pump(), 1u);
  EXPECT_EQ(svc.pump(), 0u);  // empty queue, still no trip
  svc.drain_and_checkpoint();
  EXPECT_EQ(svc.graph().user_count(), 1u);
}

TEST(CollationServiceTest, ShutdownAfterCrashRejectsSubmissions) {
  CollationService svc(ServiceConfig{});
  ASSERT_TRUE(svc.submit(raw_of(1, 1, 1)).accepted());
  svc.crash();
  EXPECT_EQ(svc.submit(raw_of(1, 2, 2)).reason, Reject::kShutdown);
  EXPECT_EQ(svc.graph().user_count(), 0u);
}

}  // namespace
}  // namespace wafp::service
