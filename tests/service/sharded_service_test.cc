// ShardedCollationService unit + fault-matrix tests: the shard layout pin,
// per-shard torn-WAL-tail repair, cross-shard migration accounting, the
// merged-view epoch cache, and the CollationEngine seam both engines sit
// behind. Whole-suite parity against the brute-force oracle lives in
// tests/conformance/sharded_oracle_test.cc; this file exercises the parts
// of the sharded engine a checksum cannot see.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "service/sharded_collation_service.h"
#include "service/snapshot.h"
#include "testing/oracles.h"

namespace wafp::testing {
namespace {

using service::CollationEngine;
using service::RawSubmission;
using service::ServiceConfig;
using service::ShardedCollationService;
using service::ShardedServiceConfig;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sharded_svc_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void run_trace(CollationEngine& svc,
               const std::vector<RawSubmission>& trace) {
  for (const RawSubmission& raw : trace) {
    ASSERT_TRUE(svc.submit(raw).accepted());
  }
  svc.pump();
}

TEST(ShardedServiceTest, ShardCountMismatchIsAHardDiagnosableError) {
  const std::string dir = temp_dir("layout");
  {
    ServiceConfig config;
    config.state_dir = dir;
    const auto svc = service::make_engine(config, 4);
    run_trace(*svc, make_submission_trace(1, 40));
    svc->drain_and_checkpoint();
  }
  ServiceConfig config;
  config.state_dir = dir;
  try {
    const auto svc = service::make_engine(config, 2);
    FAIL() << "reopening a 4-shard layout with 2 shards must throw";
  } catch (const service::ShardLayoutError& e) {
    // The message must diagnose the mismatch, not just refuse.
    EXPECT_NE(std::string(e.what()).find('4'), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find('2'), std::string::npos) << e.what();
  }
  // The pinned count still works.
  const auto svc = service::make_engine(config, 4);
  EXPECT_GT(svc->user_count(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ShardedServiceTest, SingleEngineLayoutIsRejectedBySharded) {
  const std::string dir = temp_dir("single_layout");
  {
    ServiceConfig config;
    config.state_dir = dir;
    const auto svc = service::make_engine(config, /*shards=*/0);
    run_trace(*svc, make_submission_trace(2, 40));
    svc->drain_and_checkpoint();
  }
  ServiceConfig config;
  config.state_dir = dir;
  EXPECT_THROW((void)service::make_engine(config, 4),
               service::ShardLayoutError);
  std::filesystem::remove_all(dir);
}

TEST(ShardedServiceTest, PerShardTornWalTailsAreRepairedOnRecovery) {
  const std::string dir = temp_dir("torn");
  const auto trace = make_submission_trace(3, 120);
  const auto make_config = [&] {
    ServiceConfig config;
    config.state_dir = dir;
    config.snapshot_every = 0;  // keep every record in the shard WALs
    return config;
  };
  constexpr std::size_t kShards = 4;
  std::uint64_t before = 0;
  {
    const auto svc = service::make_engine(make_config(), kShards);
    run_trace(*svc, trace);
    before = svc->component_checksum();
    svc->crash();
  }
  // Crash mid-append on EVERY shard: each shard WAL gets its own partial
  // trailing record, and each shard must repair its own tail.
  std::size_t torn = 0;
  for (std::size_t i = 0; i < kShards; ++i) {
    const auto wal_path = std::filesystem::path(service::shard_dir(dir, i)) /
                          "submissions.wal";
    if (!std::filesystem::exists(wal_path)) continue;
    std::ofstream wal(wal_path, std::ios::binary | std::ios::app);
    wal << "12,6,999,deadbeef";
    ++torn;
  }
  ASSERT_GT(torn, 0u);
  const auto svc = service::make_engine(make_config(), kShards);
  EXPECT_EQ(svc->component_checksum(), before);
  EXPECT_EQ(svc->stats().wal_tail_lines_dropped, torn);
  svc->crash();
  std::filesystem::remove_all(dir);
}

TEST(ShardedServiceTest, CorruptShardSnapshotFailsRecoveryLoudly) {
  const std::string dir = temp_dir("corrupt");
  const auto make_config = [&] {
    ServiceConfig config;
    config.state_dir = dir;
    config.snapshot_every = 8;
    config.faults.corrupt_snapshot = true;  // rot every written snapshot
    return config;
  };
  {
    const auto svc = service::make_engine(make_config(), 2);
    run_trace(*svc, make_submission_trace(4, 60));
    svc->drain_and_checkpoint();
    svc->crash();  // skip the destructor's checkpoint
  }
  // Parallel and serial recovery must both surface the corruption.
  for (const bool parallel : {true, false}) {
    ShardedServiceConfig config;
    config.base = make_config();
    config.base.faults.corrupt_snapshot = false;
    config.shards = 2;
    config.parallel_recovery = parallel;
    EXPECT_THROW({ ShardedCollationService probe(config); },
                 service::SnapshotCorruptError)
        << (parallel ? "parallel" : "serial") << " recovery";
  }
  std::filesystem::remove_all(dir);
}

TEST(ShardedServiceTest, CrossShardUsersAreCountedAsMigrations) {
  constexpr std::size_t kShards = 2;
  // One user, many distinct digests: with 2 shards the prefix64 routing
  // splits them across both shards with near certainty.
  std::vector<RawSubmission> trace;
  bool spans_both = false;
  std::uint64_t mask = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    RawSubmission raw;
    raw.user = 7;
    raw.vector = 0;
    raw.timestamp = i;
    raw.efp_hex = test_digest(i).hex();
    mask |= std::uint64_t{1} << service::shard_for_digest(
                digest_from_hex(raw.efp_hex), kShards);
    trace.push_back(std::move(raw));
  }
  spans_both = mask == 0b11;
  ASSERT_TRUE(spans_both) << "test digests all routed to one shard";

  ShardedServiceConfig config;
  config.shards = kShards;
  ShardedCollationService svc(config);
  run_trace(svc, trace);
  const auto stats = svc.sharded_stats();
  EXPECT_EQ(stats.shards, kShards);
  EXPECT_EQ(stats.cross_shard_users, 1u);
  EXPECT_GE(stats.migration_records, 1u);
  // The user's fingerprints all share one merged component regardless of
  // which shard holds each edge.
  EXPECT_EQ(svc.cluster_count(), 1u);
  EXPECT_EQ(svc.user_count(), 1u);
  EXPECT_EQ(svc.fingerprint_count(), trace.size());
}

TEST(ShardedServiceTest, MergedViewRebuildsOnlyWhenShardsApply) {
  ShardedServiceConfig config;
  config.shards = 4;
  ShardedCollationService svc(config);
  const auto trace = make_submission_trace(5, 80);
  for (const RawSubmission& raw : trace) {
    ASSERT_TRUE(svc.submit(raw).accepted());
  }
  svc.pump();
  (void)svc.component_checksum();
  (void)svc.cluster_count();
  (void)svc.user_count();
  // Three queries against an unchanged partition = one epoch build.
  EXPECT_EQ(svc.sharded_stats().merged_view_builds, 1u);
  RawSubmission raw;
  raw.user = 1;
  raw.vector = 0;
  raw.timestamp = 1'000'000;
  raw.efp_hex = test_digest(999).hex();
  ASSERT_TRUE(svc.submit(raw).accepted());
  svc.pump();
  (void)svc.component_checksum();
  EXPECT_EQ(svc.sharded_stats().merged_view_builds, 2u);
}

TEST(ShardedServiceTest, UncachedMergedViewStaysCorrect) {
  ShardedServiceConfig config;
  config.shards = 2;
  config.cache_merged_view = false;
  ShardedCollationService svc(config);
  const auto trace = make_submission_trace(6, 80);
  run_trace(svc, trace);
  const std::uint64_t oracle = brute_force_submission_checksum(trace);
  EXPECT_EQ(svc.component_checksum(), oracle);
  EXPECT_EQ(svc.component_checksum(), oracle);
  // Every query rebuilt the transient view.
  EXPECT_EQ(svc.sharded_stats().merged_view_builds, 2u);
}

TEST(ShardedServiceTest, PumpHonorsTheRecordBudget) {
  ShardedServiceConfig config;
  config.shards = 4;
  ShardedCollationService svc(config);
  const auto trace = make_submission_trace(7, 60);
  for (const RawSubmission& raw : trace) {
    ASSERT_TRUE(svc.submit(raw).accepted());
  }
  EXPECT_EQ(svc.pump(10), 10u);
  EXPECT_EQ(svc.pump(), trace.size() - 10);
  EXPECT_EQ(svc.stats().applied, trace.size());
}

TEST(ShardedServiceTest, PerShardQueueBackpressureSurfacesAsQueueFull) {
  ShardedServiceConfig config;
  config.shards = 2;
  config.base.queue_capacity = 4;
  ShardedCollationService svc(config);
  // Identical digest = one shard; the 5th+ submission must bounce.
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (std::uint64_t i = 0; i < 10; ++i) {
    RawSubmission raw;
    raw.user = static_cast<std::uint32_t>(i);
    raw.vector = 0;
    raw.timestamp = i;
    raw.efp_hex = test_digest(42).hex();
    const auto result = svc.submit(raw);
    if (result.accepted()) {
      ++accepted;
    } else {
      ASSERT_EQ(result.reason, service::Reject::kQueueFull);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(rejected, 6u);
  EXPECT_EQ(svc.stats().rejected_queue_full, 6u);
  svc.pump();
  EXPECT_EQ(svc.stats().applied, 4u);
}

TEST(ShardedServiceTest, BackgroundWorkersDrainAllShards) {
  ShardedServiceConfig config;
  config.shards = 4;
  ShardedCollationService svc(config);
  const auto trace = make_submission_trace(8, 200);
  svc.start();
  for (const RawSubmission& raw : trace) {
    auto result = svc.submit(raw);
    while (result.reason == service::Reject::kQueueFull) {
      result = svc.submit(raw);
    }
    ASSERT_TRUE(result.accepted());
  }
  svc.drain_and_checkpoint();
  EXPECT_EQ(svc.stats().applied, trace.size());
  EXPECT_EQ(svc.component_checksum(), brute_force_submission_checksum(trace));
}

TEST(ShardedServiceTest, EngineFactorySelectsTheRequestedEngine) {
  const ServiceConfig config;
  const auto single = service::make_engine(config, 0);
  const auto sharded = service::make_engine(config, 3);
  EXPECT_NE(dynamic_cast<service::CollationService*>(single.get()), nullptr);
  const auto* as_sharded =
      dynamic_cast<ShardedCollationService*>(sharded.get());
  ASSERT_NE(as_sharded, nullptr);
  EXPECT_EQ(as_sharded->shard_count(), 3u);
}

TEST(ShardedServiceTest, SubmitResultToStringCoversEveryOutcome) {
  ShardedServiceConfig config;
  config.shards = 2;
  config.base.queue_capacity = 1;
  ShardedCollationService svc(config);
  RawSubmission good;
  good.user = 1;
  good.vector = 0;
  good.timestamp = 5;
  good.efp_hex = test_digest(1).hex();
  EXPECT_EQ(service::to_string(svc.submit(good)), "accepted");
  RawSubmission bad_hash = good;
  bad_hash.efp_hex = "nope";
  EXPECT_EQ(service::to_string(svc.submit(bad_hash)), "malformed hash");
  RawSubmission bad_vector = good;
  bad_vector.vector = 10'000;
  EXPECT_EQ(service::to_string(svc.submit(bad_vector)), "unknown vector");
  RawSubmission regression = good;
  regression.timestamp = 1;
  regression.efp_hex = test_digest(2).hex();
  EXPECT_EQ(service::to_string(svc.submit(regression)),
            "timestamp regression");
  RawSubmission full = good;
  full.timestamp = 6;
  EXPECT_EQ(service::to_string(svc.submit(full)), "queue full");
  svc.crash();
  EXPECT_EQ(service::to_string(svc.submit(good)), "shutting down");
}

}  // namespace
}  // namespace wafp::testing
