// Smoke test that the umbrella header is self-contained and the advertised
// top-level workflow compiles and runs against it alone.
#include "wafp.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeaderTest, EndToEndWorkflowCompiles) {
  using namespace wafp;

  platform::DeviceCatalog catalog;
  platform::Population users(catalog, 8, 123);
  fingerprint::RenderCache cache;
  fingerprint::FingerprintCollector collector(cache);

  collation::FingerprintGraph graph;
  for (const platform::StudyUser& user : users.users()) {
    graph.add_observation(
        user.id, collector.collect(user, fingerprint::VectorId::kDc, 0));
  }
  EXPECT_GT(graph.cluster_count(), 0u);
  EXPECT_LE(graph.cluster_count(), 8u);

  const std::vector<int> labels =
      graph.extract_clustering(std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6,
                                                          7})
          .labels;
  const analysis::DiversityStats stats =
      analysis::diversity_from_labels(labels);
  EXPECT_LE(stats.normalized, 1.0);
}

}  // namespace
