#include "obs/span.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace wafp::obs {
namespace {

TEST(SpanTest, DepthAndPathTrackNesting) {
  MetricsRegistry reg;
  EXPECT_EQ(ScopedSpan::depth(), 0u);
  EXPECT_EQ(ScopedSpan::current_path(), "");
  {
    ScopedSpan outer(reg, "outer");
    EXPECT_EQ(ScopedSpan::depth(), 1u);
    EXPECT_EQ(ScopedSpan::current_path(), "outer");
    {
      ScopedSpan inner(reg, "inner");
      EXPECT_EQ(ScopedSpan::depth(), 2u);
      EXPECT_EQ(ScopedSpan::current_path(), "outer/inner");
    }
    EXPECT_EQ(ScopedSpan::depth(), 1u);
    EXPECT_EQ(ScopedSpan::current_path(), "outer");
  }
  EXPECT_EQ(ScopedSpan::depth(), 0u);
  EXPECT_EQ(ScopedSpan::current_path(), "");
}

TEST(SpanTest, CaptureRecordsCompletionOrderAndPaths) {
  MetricsRegistry reg;
  ScopedTraceCapture capture;
  {
    ScopedSpan outer(reg, "collect");
    { ScopedSpan inner(reg, "render"); }
    { ScopedSpan inner(reg, "digest"); }
  }
  { ScopedSpan solo(reg, "report"); }
  const auto& events = capture.events();
  ASSERT_EQ(events.size(), 4u);
  // Inner spans complete before the outer span that contains them.
  EXPECT_EQ(events[0].path, "collect/render");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].path, "collect/digest");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].path, "collect");
  EXPECT_EQ(events[2].depth, 0u);
  EXPECT_EQ(events[3].path, "report");
  EXPECT_EQ(events[3].depth, 0u);
}

TEST(SpanTest, ManualClockGivesExactDurations) {
  MetricsRegistry reg;
  ManualClock clock(1'000);
  reg.set_clock(clock.fn());
  ScopedTraceCapture capture;
  {
    ScopedSpan outer(reg, "outer");  // starts at 1000
    clock.advance(10);
    {
      ScopedSpan inner(reg, "inner");  // starts at 1010
      clock.advance(5);
    }  // ends at 1015
    clock.advance(100);
  }  // ends at 1115
  const auto& events = capture.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].path, "outer/inner");
  EXPECT_EQ(events[0].start_ns, 1'010u);
  EXPECT_EQ(events[0].end_ns, 1'015u);
  EXPECT_EQ(events[1].path, "outer");
  EXPECT_EQ(events[1].start_ns, 1'000u);
  EXPECT_EQ(events[1].end_ns, 1'115u);
}

TEST(SpanTest, ObservesIntoSpanHistogramFamily) {
  MetricsRegistry reg;
  ManualClock clock(0);
  reg.set_clock(clock.fn());
  {
    ScopedSpan span(reg, "stage");
    clock.advance(2'000'000);  // 2ms
  }
  Histogram& h =
      reg.histogram("wafp_span_ns", "", label("span", "stage"));
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 2'000'000u);
  const std::string text = reg.render_text();
  EXPECT_NE(text.find("wafp_span_ns_count{span=\"stage\"} 1"),
            std::string::npos)
      << text;
}

TEST(SpanTest, MacroExpandsToAScopedSpan) {
  MetricsRegistry reg;
  ScopedTraceCapture capture;
  {
    WAFP_SPAN_IN(reg, "macro_stage");
    EXPECT_EQ(ScopedSpan::depth(), 1u);
  }
  ASSERT_EQ(capture.events().size(), 1u);
  EXPECT_EQ(capture.events()[0].path, "macro_stage");
}

TEST(SpanTest, NestedCapturesInnermostWins) {
  MetricsRegistry reg;
  ScopedTraceCapture outer_capture;
  {
    ScopedTraceCapture inner_capture;
    { ScopedSpan s(reg, "only_inner_sees_this"); }
    EXPECT_EQ(inner_capture.events().size(), 1u);
  }
  { ScopedSpan s(reg, "outer_sees_this"); }
  ASSERT_EQ(outer_capture.events().size(), 1u);
  EXPECT_EQ(outer_capture.events()[0].path, "outer_sees_this");
}

}  // namespace
}  // namespace wafp::obs
