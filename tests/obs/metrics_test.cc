#include "obs/metrics.h"

// wafp-lint: allow-file(metric-name): the wafp_a/.../wafp_z families here
// are synthetic names exercising the registry API itself, not real series.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"

namespace wafp::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ShardedIncrementsUnderEightThreadContention) {
  Counter c;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(7);
  g.add(-9);
  EXPECT_EQ(g.value(), -2);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  const std::array<std::uint64_t, 2> bounds = {100, 200};
  Histogram h(bounds);
  h.observe(100);  // on the boundary -> first bucket (le="100")
  h.observe(101);  // just above -> second bucket
  h.observe(250);  // above all bounds -> overflow
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 451u);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  const std::array<std::uint64_t, 1> bounds = {100};
  Histogram h(bounds);
  for (int i = 0; i < 10; ++i) h.observe(1);  // all in the first bucket
  const auto snap = h.snapshot();
  // Linear interpolation across [0, 100] with all mass in one bucket.
  EXPECT_DOUBLE_EQ(snap.p50(), 50.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
}

TEST(HistogramTest, QuantileWalksCumulativeBuckets) {
  const std::array<std::uint64_t, 3> bounds = {10, 20, 30};
  Histogram h(bounds);
  // 5 observations <= 10, 4 in (10, 20], 1 in (20, 30].
  for (int i = 0; i < 5; ++i) h.observe(5);
  for (int i = 0; i < 4; ++i) h.observe(15);
  h.observe(25);
  const auto snap = h.snapshot();
  // p50: target 5 of 10 -> exactly exhausts the first bucket.
  EXPECT_DOUBLE_EQ(snap.p50(), 10.0);
  // p95: target 9.5; cumulative through the second bucket is 9, so the
  // remaining 0.5 falls halfway into the single-count [20, 30] bucket.
  EXPECT_NEAR(snap.quantile(0.95), 25.0, 1e-9);
}

TEST(HistogramTest, OverflowSaturatesAtLastFiniteBound) {
  const std::array<std::uint64_t, 2> bounds = {10, 20};
  Histogram h(bounds);
  h.observe(1000);
  h.observe(2000);
  const auto snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(snap.p50(), 20.0);
}

TEST(HistogramTest, EmptyHistogramReportsZeroQuantiles) {
  const std::array<std::uint64_t, 1> bounds = {10};
  Histogram h(bounds);
  EXPECT_DOUBLE_EQ(h.snapshot().p99(), 0.0);
}

TEST(LabelTest, EscapesQuotesBackslashesAndNewlines) {
  EXPECT_EQ(label("vector", "dc"), "vector=\"dc\"");
  EXPECT_EQ(label("k", "a\"b\\c"), "k=\"a\\\"b\\\\c\"");
  // A raw '\n' in a label value would terminate the exposition line early
  // and corrupt every sample after it; it must render as the two
  // characters '\' 'n'.
  EXPECT_EQ(label("k", "a\nb"), "k=\"a\\nb\"");
  EXPECT_EQ(label("k", "\n"), "k=\"\\n\"");
  // Compositions: an escaped quote right before a newline stays unambiguous.
  EXPECT_EQ(label("ua", "Mozilla \"5.0\"\n\\x"),
            "ua=\"Mozilla \\\"5.0\\\"\\n\\\\x\"");
}

TEST(RegistryTest, SameFamilyAndLabelsReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("wafp_x_total", "help");
  Counter& b = reg.counter("wafp_x_total");
  EXPECT_EQ(&a, &b);
  Counter& labeled = reg.counter("wafp_x_total", "", label("vector", "dc"));
  EXPECT_NE(&a, &labeled);
}

TEST(RegistryTest, HistogramDefaultsToLatencyBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("wafp_y_ns");
  EXPECT_EQ(h.bounds().size(),
            MetricsRegistry::default_latency_bounds_ns().size());
  EXPECT_EQ(h.bounds().front(), 1'000u);
  EXPECT_EQ(h.bounds().back(), 5'000'000'000u);
}

TEST(RegistryTest, ManualClockDrivesNowNs) {
  MetricsRegistry reg;
  ManualClock clock(100);
  reg.set_clock(clock.fn());
  EXPECT_EQ(reg.now_ns(), 100u);
  clock.advance(50);
  EXPECT_EQ(reg.now_ns(), 150u);
  reg.set_clock(nullptr);  // back to the steady clock
  const std::uint64_t a = reg.now_ns();
  const std::uint64_t b = reg.now_ns();
  EXPECT_LE(a, b);
}

// The text-export golden: a small registry with known values must render
// exactly this Prometheus exposition (sorted families, cumulative
// histogram buckets, +Inf, _sum/_count).
constexpr std::string_view kGoldenText =
    "# HELP wafp_a_total Things counted\n"
    "# TYPE wafp_a_total counter\n"
    "wafp_a_total 3\n"
    "wafp_a_total{vector=\"dc\"} 1\n"
    "# HELP wafp_b_depth Queue depth\n"
    "# TYPE wafp_b_depth gauge\n"
    "wafp_b_depth -2\n"
    "# HELP wafp_c_ns Latency\n"
    "# TYPE wafp_c_ns histogram\n"
    "wafp_c_ns_bucket{le=\"100\"} 1\n"
    "wafp_c_ns_bucket{le=\"200\"} 2\n"
    "wafp_c_ns_bucket{le=\"+Inf\"} 3\n"
    "wafp_c_ns_sum 450\n"
    "wafp_c_ns_count 3\n"
    "# HELP wafp_d_total Hostile labels\n"
    "# TYPE wafp_d_total counter\n"
    "wafp_d_total{ua=\"Mozilla \\\"5.0\\\"\\nlike \\\\Gecko\"} 1\n"
    "# HELP wafp_e_ns Never observed\n"
    "# TYPE wafp_e_ns histogram\n"
    "wafp_e_ns_bucket{le=\"100\"} 0\n"
    "wafp_e_ns_bucket{le=\"+Inf\"} 0\n"
    "wafp_e_ns_sum 0\n"
    "wafp_e_ns_count 0\n";

TEST(RegistryTest, TextExportMatchesGolden) {
  MetricsRegistry reg;
  reg.counter("wafp_a_total", "Things counted").inc(3);
  reg.counter("wafp_a_total", "", label("vector", "dc")).inc();
  reg.gauge("wafp_b_depth", "Queue depth").set(-2);
  const std::array<std::uint64_t, 2> bounds = {100, 200};
  Histogram& h = reg.histogram("wafp_c_ns", "Latency", "", bounds);
  h.observe(50);
  h.observe(150);
  h.observe(250);
  // A label value with an embedded quote, newline, and backslash must come
  // out as one well-formed exposition line.
  reg.counter("wafp_d_total", "Hostile labels",
              label("ua", "Mozilla \"5.0\"\nlike \\Gecko"))
      .inc();
  // A registered-but-never-observed histogram still renders a complete
  // (all-zero) bucket series.
  const std::array<std::uint64_t, 1> bounds_e = {100};
  reg.histogram("wafp_e_ns", "Never observed", "", bounds_e);
  EXPECT_EQ(reg.render_text(), kGoldenText);
}

TEST(RegistryTest, JsonExportFlattensUnlabeledScalars) {
  MetricsRegistry reg;
  reg.counter("wafp_a_total", "Things counted").inc(3);
  const std::array<std::uint64_t, 1> bounds = {100};
  reg.histogram("wafp_c_ns", "Latency", "", bounds).observe(50);
  const std::string json = reg.render_json();
  EXPECT_NE(json.find("\"wafp_a_total\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wafp_c_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\": 50"), std::string::npos) << json;
}

TEST(RegistryTest, JsonExportHandlesZeroObservationHistograms) {
  MetricsRegistry reg;
  const std::array<std::uint64_t, 2> bounds = {100, 200};
  reg.histogram("wafp_empty_ns", "Registered, never observed", "", bounds);
  reg.histogram("wafp_empty_ns", "", label("vector", "dc"), bounds);
  const std::string json = reg.render_json();
  // Both instruments render full snapshots with zero counts and zero
  // quantiles — not NaN, not a division blowup, not an omitted family.
  EXPECT_NE(json.find("\"wafp_empty_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"vector=\\\"dc\\\"\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 0, \"sum\": 0, \"p50\": 0, \"p95\": 0, "
                      "\"p99\": 0"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(RegistryTest, HistogramObserveIsSafeUnderContention) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("wafp_z_ns");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.observe(1'000 * (t + 1));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.snapshot().count, kThreads * kPerThread);
}

}  // namespace
}  // namespace wafp::obs
