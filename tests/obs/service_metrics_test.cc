// End-to-end observability: a CollationService wired to a private
// MetricsRegistry must move its queue-depth gauge, ingest->apply latency,
// and WAL timing families as submissions flow through pump().
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "service/collation_service.h"
#include "util/hash.h"

namespace wafp::service {
namespace {

class TempDir {
 public:
  explicit TempDir(std::string name) : path_(std::move(name)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

RawSubmission raw_of(std::uint32_t user, int print, std::uint64_t ts) {
  RawSubmission raw;
  raw.user = user;
  raw.vector = static_cast<std::uint32_t>(fingerprint::VectorId::kAm);
  raw.timestamp = ts;
  raw.efp_hex = util::sha256("obs-" + std::to_string(print)).hex();
  return raw;
}

TEST(ServiceMetricsTest, QueueDepthGaugeTracksSubmitAndPump) {
  obs::MetricsRegistry reg;
  ServiceConfig cfg;
  cfg.metrics = &reg;
  CollationService svc(cfg);

  obs::Gauge& depth = reg.gauge("wafp_service_queue_depth");
  EXPECT_EQ(depth.value(), 0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(svc.submit(raw_of(1, i, 10 + i)).reason, Reject::kNone);
  }
  EXPECT_EQ(depth.value(), 5);
  EXPECT_EQ(svc.pump(2), 2u);
  EXPECT_EQ(depth.value(), 3);
  EXPECT_EQ(svc.pump(), 3u);
  EXPECT_EQ(depth.value(), 0);
}

TEST(ServiceMetricsTest, IngestApplyLatencyUsesInjectedClock) {
  obs::MetricsRegistry reg;
  obs::ManualClock clock(1'000);
  reg.set_clock(clock.fn());
  ServiceConfig cfg;
  cfg.metrics = &reg;
  CollationService svc(cfg);

  ASSERT_EQ(svc.submit(raw_of(7, 1, 1)).reason, Reject::kNone);
  clock.advance(5'000);  // submission sits queued for exactly 5us
  ASSERT_EQ(svc.pump(), 1u);

  const auto snap =
      reg.histogram("wafp_service_ingest_apply_ns").snapshot();
  ASSERT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 5'000u);
  EXPECT_EQ(reg.counter("wafp_service_applied_total").value(), 1u);
}

TEST(ServiceMetricsTest, WalTimingsAndCountersMoveDuringDurablePump) {
  TempDir dir("obs_service_metrics_wal");
  obs::MetricsRegistry reg;
  ServiceConfig cfg;
  cfg.state_dir = dir.path();
  cfg.snapshot_every = 2;
  cfg.metrics = &reg;
  {
    CollationService svc(cfg);
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(svc.submit(raw_of(2, i, 100 + i)).reason, Reject::kNone);
    }
    ASSERT_EQ(svc.pump(), 4u);
    EXPECT_EQ(reg.counter("wafp_wal_appends_total").value(), 4u);
    EXPECT_EQ(reg.counter("wafp_wal_retries_total").value(), 0u);
    EXPECT_EQ(reg.histogram("wafp_wal_append_ns").snapshot().count, 4u);
    EXPECT_EQ(reg.histogram("wafp_wal_flush_ns").snapshot().count, 4u);
    // fsync_wal defaults off, so the real-fsync histogram must stay empty.
    EXPECT_EQ(reg.histogram("wafp_wal_fsync_ns").snapshot().count, 0u);
    // snapshot_every=2 -> at least one snapshot was taken and timed.
    EXPECT_GE(reg.histogram("wafp_service_snapshot_ns").snapshot().count,
              1u);
  }

  // Reconstructing on the same state_dir records the recovery counters:
  // the destructor checkpointed, so all 4 submissions come back from the
  // snapshot and none from the WAL.
  obs::MetricsRegistry recovery_reg;
  ServiceConfig recover_cfg;
  recover_cfg.state_dir = dir.path();
  recover_cfg.metrics = &recovery_reg;
  CollationService recovered(recover_cfg);
  EXPECT_EQ(
      recovery_reg.counter("wafp_service_recovered_from_snapshot_total")
          .value(),
      4u);
  EXPECT_EQ(
      recovery_reg.counter("wafp_service_recovered_from_wal_total").value(),
      0u);
}

TEST(ServiceMetricsTest, RetryCounterMovesWhenAppendsFail) {
  TempDir dir("obs_service_metrics_retry");
  obs::MetricsRegistry reg;
  ServiceConfig cfg;
  cfg.state_dir = dir.path();
  cfg.metrics = &reg;
  cfg.faults.fail_append_at = 1;  // first append fails once, then succeeds
  cfg.sleeper = [](std::chrono::milliseconds) {};
  CollationService svc(cfg);

  ASSERT_EQ(svc.submit(raw_of(3, 1, 1)).reason, Reject::kNone);
  ASSERT_EQ(svc.pump(), 1u);
  EXPECT_EQ(reg.counter("wafp_wal_retries_total").value(), 1u);
  // Only the successful attempt counts as an append, but both attempts
  // are timed.
  EXPECT_EQ(reg.counter("wafp_wal_appends_total").value(), 1u);
  EXPECT_EQ(reg.histogram("wafp_wal_append_ns").snapshot().count, 2u);
}

TEST(ServiceMetricsTest, RenderTextExportsTheServiceFamilies) {
  obs::MetricsRegistry reg;
  ServiceConfig cfg;
  cfg.metrics = &reg;
  CollationService svc(cfg);
  ASSERT_EQ(svc.submit(raw_of(9, 1, 1)).reason, Reject::kNone);
  ASSERT_EQ(svc.pump(), 1u);

  const std::string text = reg.render_text();
  for (const char* family :
       {"wafp_service_queue_depth", "wafp_service_ingest_apply_ns",
        "wafp_service_applied_total", "wafp_wal_appends_total"}) {
    EXPECT_NE(text.find(family), std::string::npos)
        << "missing family " << family;
  }
}

}  // namespace
}  // namespace wafp::service
