#include "study/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/csv.h"

namespace wafp::study {
namespace {

StudyConfig small_config() {
  StudyConfig cfg;
  cfg.num_users = 40;
  cfg.iterations = 6;
  cfg.seed = 1234;
  return cfg;
}

/// Collect once; datasets are immutable.
const Dataset& small_dataset() {
  static const Dataset ds = Dataset::collect(small_config());
  return ds;
}

TEST(DatasetTest, ShapesMatchConfig) {
  const Dataset& ds = small_dataset();
  EXPECT_EQ(ds.num_users(), 40u);
  EXPECT_EQ(ds.iterations(), 6u);
  EXPECT_EQ(ds.users().size(), 40u);
  for (const fingerprint::VectorId id : fingerprint::audio_vector_ids()) {
    EXPECT_EQ(ds.audio_observations(0, id).size(), 6u);
  }
}

TEST(DatasetTest, ObservationAccessorsConsistent) {
  const Dataset& ds = small_dataset();
  for (std::size_t u = 0; u < 5; ++u) {
    for (const fingerprint::VectorId id : fingerprint::audio_vector_ids()) {
      const auto all = ds.audio_observations(u, id);
      for (std::uint32_t it = 0; it < 6; ++it) {
        EXPECT_EQ(all[it], ds.audio_observation(u, id, it));
      }
    }
  }
}

TEST(DatasetTest, CollectionIsDeterministic) {
  const Dataset again = Dataset::collect(small_config());
  const Dataset& ds = small_dataset();
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    for (const fingerprint::VectorId id : fingerprint::audio_vector_ids()) {
      for (std::uint32_t it = 0; it < ds.iterations(); ++it) {
        ASSERT_EQ(ds.audio_observation(u, id, it),
                  again.audio_observation(u, id, it));
      }
    }
    EXPECT_EQ(ds.static_observation(u, fingerprint::VectorId::kCanvas),
              again.static_observation(u, fingerprint::VectorId::kCanvas));
  }
}

TEST(DatasetTest, DcObservationsAreStablePerUser) {
  const Dataset& ds = small_dataset();
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    const auto all = ds.audio_observations(u, fingerprint::VectorId::kDc);
    for (const util::Digest& d : all) EXPECT_EQ(d, all[0]);
  }
}

TEST(DatasetTest, CsvRoundTrip) {
  const std::string path = "test_dataset_roundtrip.csv";
  const Dataset& ds = small_dataset();
  ASSERT_TRUE(ds.save_csv(path));

  const Dataset loaded = Dataset::load_or_collect(small_config(), path);
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    for (const fingerprint::VectorId id : fingerprint::audio_vector_ids()) {
      for (std::uint32_t it = 0; it < ds.iterations(); ++it) {
        ASSERT_EQ(loaded.audio_observation(u, id, it),
                  ds.audio_observation(u, id, it));
      }
    }
    for (const fingerprint::VectorId id :
         {fingerprint::VectorId::kCanvas, fingerprint::VectorId::kFonts,
          fingerprint::VectorId::kUserAgent, fingerprint::VectorId::kMathJs}) {
      ASSERT_EQ(loaded.static_observation(u, id), ds.static_observation(u, id));
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadRejectsMismatchedConfig) {
  const std::string path = "test_dataset_mismatch.csv";
  ASSERT_TRUE(small_dataset().save_csv(path));

  StudyConfig other = small_config();
  other.seed = 9999;
  // Mismatch -> recollect (and overwrite); digests must then match a fresh
  // collection under the new seed, not the old file.
  const Dataset loaded = Dataset::load_or_collect(other, path);
  const Dataset fresh = Dataset::collect(other);
  EXPECT_EQ(loaded.audio_observation(0, fingerprint::VectorId::kDc, 0),
            fresh.audio_observation(0, fingerprint::VectorId::kDc, 0));
  std::remove(path.c_str());
}

TEST(DatasetTest, ProfilesCsvExport) {
  const std::string path = "test_profiles.csv";
  ASSERT_TRUE(small_dataset().save_profiles_csv(path));
  const auto rows = util::read_csv_file(path);
  ASSERT_EQ(rows.size(), 41u);  // header + 40 users
  EXPECT_EQ(rows[0][0], "user");
  EXPECT_EQ(rows[1].size(), 13u);
  EXPECT_TRUE(rows[1][11].starts_with("Mozilla/5.0"));
  std::remove(path.c_str());
}

TEST(DatasetTest, FollowupConfigDiffers) {
  const StudyConfig followup = StudyConfig::followup();
  EXPECT_EQ(followup.num_users, 528u);
  EXPECT_NE(followup.seed, StudyConfig{}.seed);
}

TEST(DatasetTest, InvalidVectorAccessThrows) {
  const Dataset& ds = small_dataset();
  EXPECT_THROW((void)ds.audio_observation(0, fingerprint::VectorId::kCanvas, 0),
               std::invalid_argument);
  EXPECT_THROW(
      (void)ds.static_observation(0, fingerprint::VectorId::kDc),
      std::invalid_argument);
}

}  // namespace
}  // namespace wafp::study
