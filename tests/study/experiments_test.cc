#include "study/experiments.h"

#include <gtest/gtest.h>

#include <numeric>

namespace wafp::study {
namespace {

using fingerprint::VectorId;

/// A mid-sized study shared by all experiment tests (collected once).
const Dataset& study() {
  static const Dataset ds = [] {
    StudyConfig cfg;
    cfg.num_users = 250;
    cfg.iterations = 12;
    cfg.seed = 20212021;
    return Dataset::collect(cfg);
  }();
  return ds;
}

TEST(Table1Test, DcPerfectlyStableOthersNot) {
  const auto rows = table1_stability(study());
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows[0].id, VectorId::kDc);
  EXPECT_EQ(rows[0].min, 1u);
  EXPECT_EQ(rows[0].max, 1u);
  EXPECT_DOUBLE_EQ(rows[0].mean, 1.0);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].min, 1u) << "min must be 1 for every vector (Table 1)";
    EXPECT_GT(rows[i].max, 1u);
    EXPECT_GT(rows[i].mean, 1.0);
    EXPECT_LT(rows[i].max, study().iterations() + 1);
  }
}

TEST(Table1Test, ModulationVectorsFlakiest) {
  const auto rows = table1_stability(study());
  const double fft_mean = rows[1].mean;    // FFT
  const double am_mean = rows[5].mean;     // AM
  const double fm_mean = rows[6].mean;     // FM
  EXPECT_GT(am_mean, fft_mean);
  EXPECT_GT(fm_mean, fft_mean);
}

TEST(Fig3Test, HistogramSumsToUsersAndDecaysFromOne) {
  const auto histogram = fig3_distribution(study(), VectorId::kHybrid);
  const std::size_t total =
      std::accumulate(histogram.begin(), histogram.end(), std::size_t{0});
  EXPECT_EQ(total, study().num_users());
  ASSERT_GE(histogram.size(), 2u);
  // Most users have exactly one fingerprint; one > two.
  EXPECT_GT(histogram[0], study().num_users() / 3);
  EXPECT_GT(histogram[0], histogram[1]);
}

TEST(CollationTest, GraphCoversAllUsers) {
  const auto graph = build_graph(study(), VectorId::kHybrid, 0, 12);
  EXPECT_EQ(graph.user_count(), study().num_users());
  EXPECT_GT(graph.fingerprint_count(), 0u);
  EXPECT_LE(graph.cluster_count(), study().num_users());
}

TEST(CollationTest, CollatedClusteringHasFewerClustersThanRawDigests) {
  // Collation merges the multiple fickle digests of each user.
  const auto clustering = collated_clustering(study(), VectorId::kAm);
  std::set<util::Digest> raw;
  for (std::size_t u = 0; u < study().num_users(); ++u) {
    for (const auto& d : study().audio_observations(u, VectorId::kAm)) {
      raw.insert(d);
    }
  }
  EXPECT_LT(static_cast<std::size_t>(clustering.num_clusters), raw.size());
}

TEST(ClusterAgreementTest, HighForAllVectors) {
  for (const VectorId id : fingerprint::audio_vector_ids()) {
    const AgreementPoint point = cluster_agreement(study(), id, 4);
    EXPECT_GT(point.mean_ami, 0.9) << to_string(id);
    EXPECT_LE(point.mean_ami, 1.0 + 1e-9);
  }
}

TEST(ClusterAgreementTest, DcAgreementPerfect) {
  for (const std::size_t s : {2u, 3u, 6u}) {
    EXPECT_DOUBLE_EQ(cluster_agreement(study(), VectorId::kDc, s).mean_ami,
                     1.0);
  }
}

TEST(ClusterAgreementTest, LargerSubsetsAgreeAtLeastAsWell) {
  const double small =
      cluster_agreement(study(), VectorId::kHybrid, 2).mean_ami;
  const double large =
      cluster_agreement(study(), VectorId::kHybrid, 6).mean_ami;
  EXPECT_GE(large, small - 0.02);
}

TEST(MatchScoreTest, HighForAllVectorsAndSizes) {
  // Paper Table 6: minimum 0.9899 (s=3).
  for (const VectorId id : fingerprint::audio_vector_ids()) {
    for (const std::size_t s : {3u, 6u}) {
      const double score = fingerprint_match_score(study(), id, s);
      EXPECT_GT(score, 0.95) << to_string(id) << " s=" << s;
      EXPECT_LE(score, 1.0);
    }
  }
}

TEST(MatchScoreTest, DcMatchesPerfectly) {
  EXPECT_DOUBLE_EQ(fingerprint_match_score(study(), VectorId::kDc, 3), 1.0);
}

TEST(DiversityTest, PaperOrderingHolds) {
  // DC is the least diverse audio vector; Combined at least matches the
  // best single vector (Table 2 structure).
  const auto dc = vector_diversity(study(), VectorId::kDc);
  const auto fft = vector_diversity(study(), VectorId::kFft);
  const auto hybrid = vector_diversity(study(), VectorId::kHybrid);
  const auto combined = combined_audio_diversity(study());

  EXPECT_LT(dc.entropy, fft.entropy);
  EXPECT_GE(hybrid.distinct, fft.distinct);
  EXPECT_GE(combined.distinct, hybrid.distinct);
  EXPECT_GE(combined.entropy, hybrid.entropy - 1e-9);
}

TEST(DiversityTest, OtherVectorsFarMoreDiverseThanAudio) {
  // Table 2 vs Table 3: Canvas/Fonts/UA dwarf the audio vectors.
  const auto combined = combined_audio_diversity(study());
  for (const VectorId id :
       {VectorId::kCanvas, VectorId::kFonts, VectorId::kUserAgent}) {
    EXPECT_GT(vector_diversity(study(), id).entropy, combined.entropy)
        << to_string(id);
  }
}

TEST(DiversityTest, NormalizedEntropyInRange) {
  for (const VectorId id : fingerprint::audio_vector_ids()) {
    const auto stats = vector_diversity(study(), id);
    EXPECT_GE(stats.normalized, 0.0);
    EXPECT_LE(stats.normalized, 1.0);
    EXPECT_GE(stats.distinct, stats.unique);
  }
}

TEST(CrossVectorTest, FftFamilyMutuallyAligned) {
  // Fig. 9: the FFT-based vectors agree with one another far better than
  // with DC.
  const auto matrix = cross_vector_agreement(study());
  ASSERT_EQ(matrix.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(matrix[i][i], 1.0);
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_NEAR(matrix[i][j], matrix[j][i], 1e-12);
    }
  }
  // FFT (index 1) vs Hybrid (2) beats FFT vs DC (0).
  EXPECT_GT(matrix[1][2], matrix[1][0]);
  EXPECT_GT(matrix[1][2], 0.9);
}

TEST(UaSpanTest, ContradictsW3cClaim) {
  // §4: a significant share of multi-user UAs spans several audio
  // clusters, i.e. audio reveals information beyond the UA header.
  const UaSpanResult result = ua_span_analysis(study(), VectorId::kFft);
  EXPECT_GT(result.multi_user_uas, 0u);
  EXPECT_GT(result.spanning_uas, 0u);
  EXPECT_GE(result.multi_user_uas, result.spanning_uas);
  EXPECT_GE(result.max_clusters_single_ua, 2u);
}

TEST(AdditiveValueTest, AudioAddsEntropyToCanvasAndUa) {
  for (const VectorId id : {VectorId::kCanvas, VectorId::kUserAgent}) {
    const AdditiveResult result = additive_value(study(), id);
    EXPECT_GT(result.combined_entropy, result.base_entropy);
    EXPECT_GT(result.percent_increase, 0.0);
    EXPECT_LT(result.percent_increase, 100.0);
  }
}

TEST(PlatformComparisonTest, WindowsChromeNearOneToOne) {
  const auto rows = platform_comparison(study());
  ASSERT_FALSE(rows.empty());
  // Largest platform is Windows/Chrome; its Math JS diversity must be
  // minimal (Table 5).
  EXPECT_EQ(rows[0].platform, "Windows/Chrome");
  EXPECT_LE(rows[0].mathjs_distinct, 2u);
  EXPECT_GT(rows[0].users, study().num_users() / 2);
}

TEST(SubsetRankingTest, TopVectorsStableAcrossSubsets) {
  const auto rankings = subset_rankings(study(), 2);
  ASSERT_EQ(rankings.size(), 3u);  // 2 subsets + full
  for (const auto& ranking : rankings) {
    ASSERT_EQ(ranking.size(), 10u);
    // §5: the non-audio vectors always rank above the audio vectors, and DC
    // is always last.
    EXPECT_EQ(ranking.back(), "DC");
    const std::set<std::string> top3(ranking.begin(), ranking.begin() + 3);
    EXPECT_TRUE(top3.contains("Fonts"));
    EXPECT_TRUE(top3.contains("Canvas"));
    EXPECT_TRUE(top3.contains("User-Agent"));
  }
}

TEST(StaticLabelsTest, MatchDigestEquality) {
  const auto labels = static_labels(study(), VectorId::kUserAgent);
  ASSERT_EQ(labels.size(), study().num_users());
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = i + 1; j < 50; ++j) {
      const bool same_digest =
          study().static_observation(i, VectorId::kUserAgent) ==
          study().static_observation(j, VectorId::kUserAgent);
      EXPECT_EQ(labels[i] == labels[j], same_digest);
    }
  }
}

}  // namespace
}  // namespace wafp::study
