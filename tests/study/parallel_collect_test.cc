// The determinism contract of the parallel pipeline: collection partitions
// users across threads, and every digest is a pure function of (profile
// stack, derived per-(user,vector,iteration) seed), so any thread count
// must produce a byte-identical dataset. These tests are the acceptance
// gate for parallel Dataset::collect.
#include <gtest/gtest.h>

#include <cstring>

#include "study/dataset.h"
#include "study/experiments.h"
#include "util/thread_pool.h"

namespace wafp::study {
namespace {

StudyConfig config_with_threads(std::size_t threads) {
  StudyConfig cfg;
  cfg.num_users = 60;
  cfg.iterations = 8;
  cfg.seed = 7777;
  cfg.threads = threads;
  return cfg;
}

void expect_identical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  for (std::size_t u = 0; u < a.num_users(); ++u) {
    for (const fingerprint::VectorId id : fingerprint::audio_vector_ids()) {
      const auto oa = a.audio_observations(u, id);
      const auto ob = b.audio_observations(u, id);
      ASSERT_EQ(oa.size(), ob.size());
      ASSERT_EQ(0, std::memcmp(oa.data(), ob.data(),
                               oa.size() * sizeof(util::Digest)))
          << "audio digests differ for user " << u;
    }
    for (const fingerprint::VectorId id :
         {fingerprint::VectorId::kCanvas, fingerprint::VectorId::kFonts,
          fingerprint::VectorId::kUserAgent, fingerprint::VectorId::kMathJs}) {
      ASSERT_EQ(a.static_observation(u, id), b.static_observation(u, id))
          << "static digest differs for user " << u;
    }
  }
}

TEST(ParallelCollectTest, TwoThreadsBitIdenticalToSerial) {
  const Dataset serial = Dataset::collect(config_with_threads(1));
  const Dataset parallel = Dataset::collect(config_with_threads(2));
  expect_identical(serial, parallel);
}

TEST(ParallelCollectTest, EightThreadsBitIdenticalToSerial) {
  const Dataset serial = Dataset::collect(config_with_threads(1));
  const Dataset parallel = Dataset::collect(config_with_threads(8));
  expect_identical(serial, parallel);
}

TEST(ParallelCollectTest, FollowupConfigParity) {
  StudyConfig serial_cfg = StudyConfig::followup();
  serial_cfg.num_users = 50;  // follow-up seed/tuning, test-sized population
  serial_cfg.iterations = 6;
  serial_cfg.threads = 1;
  StudyConfig parallel_cfg = serial_cfg;
  parallel_cfg.threads = 8;
  expect_identical(Dataset::collect(serial_cfg),
                   Dataset::collect(parallel_cfg));
}

TEST(ParallelCollectTest, AnalysisMatchesSerialAnalysis) {
  // The analysis layer fans out on the shared pool; its outputs must not
  // depend on that pool's degree.
  const Dataset ds = Dataset::collect(config_with_threads(2));

  util::ThreadPool::set_shared_threads(1);
  const auto combined_serial = combined_audio_labels(ds);
  const auto agreement_serial =
      cluster_agreement(ds, fingerprint::VectorId::kHybrid, 2);
  const double match_serial =
      fingerprint_match_score(ds, fingerprint::VectorId::kHybrid, 2);
  const auto matrix_serial = cross_vector_agreement(ds);

  util::ThreadPool::set_shared_threads(4);
  EXPECT_EQ(combined_audio_labels(ds), combined_serial);
  const auto agreement_parallel =
      cluster_agreement(ds, fingerprint::VectorId::kHybrid, 2);
  EXPECT_EQ(agreement_parallel.mean_ami, agreement_serial.mean_ami);
  EXPECT_EQ(agreement_parallel.min_ami, agreement_serial.min_ami);
  EXPECT_EQ(fingerprint_match_score(ds, fingerprint::VectorId::kHybrid, 2),
            match_serial);
  EXPECT_EQ(cross_vector_agreement(ds), matrix_serial);

  util::ThreadPool::set_shared_threads(0);  // restore default for other tests
}

TEST(ParallelCollectTest, AudioVectorIdsOrderIsStable) {
  // Dataset::audio_vector_index assumes registry order == enum order; this
  // is the micro-assert guarding that table.
  const auto ids = fingerprint::audio_vector_ids();
  ASSERT_EQ(ids.size(), 7u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(ids[i]), i);
  }
  // And the accessor path built on it still works end to end.
  const Dataset ds = Dataset::collect(config_with_threads(2));
  EXPECT_EQ(ds.audio_observations(0, fingerprint::VectorId::kDc)[0],
            ds.audio_observation(0, fingerprint::VectorId::kDc, 0));
}

}  // namespace
}  // namespace wafp::study
