#include "study/service_parity.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace wafp::study {
namespace {

/// A small study shared by the parity tests (collected once).
const Dataset& study() {
  static const Dataset ds = [] {
    StudyConfig cfg;
    cfg.num_users = 60;
    cfg.iterations = 4;
    cfg.seed = 77021;
    return Dataset::collect(cfg);
  }();
  return ds;
}

TEST(ServiceParityTest, InMemoryServiceMatchesDirectGraph) {
  const auto report =
      service_collation_parity(study(), fingerprint::VectorId::kHybrid);
  EXPECT_EQ(report.submitted, report.accepted);
  EXPECT_EQ(report.accepted, report.applied);
  EXPECT_TRUE(report.match())
      << std::hex << report.direct_checksum << " vs "
      << report.service_checksum;
}

TEST(ServiceParityTest, ShardedEngineMatchesDirectGraph) {
  // The offline-study bridge must hold for the sharded engine too: replay
  // the dataset at several shard counts and demand bit-identical
  // partitions. Duplicate/reorder noise stays invisible here as well.
  service::FaultPlan faults;
  faults.duplicate_every = 5;
  faults.reorder_every = 3;
  for (const std::size_t shards : {1, 2, 8}) {
    const auto report = service_collation_parity(
        study(), fingerprint::VectorId::kHybrid, faults, /*state_dir=*/{},
        shards);
    EXPECT_EQ(report.submitted, report.accepted) << shards << " shards";
    // Injected duplicates are applied (idempotently) on top of the
    // accepted stream, so applied >= accepted here.
    EXPECT_GE(report.applied, report.accepted) << shards << " shards";
    EXPECT_TRUE(report.match())
        << shards << " shards: " << std::hex << report.direct_checksum
        << " vs " << report.service_checksum;
  }
}

TEST(ServiceParityTest, DurableServiceWithFaultsStillMatches) {
  const std::string dir = "study_parity_state";
  std::filesystem::remove_all(dir);
  service::FaultPlan faults;
  faults.duplicate_every = 4;
  faults.reorder_every = 7;
  const auto report = service_collation_parity(
      study(), fingerprint::VectorId::kHybrid, faults, dir);
  EXPECT_TRUE(report.match())
      << std::hex << report.direct_checksum << " vs "
      << report.service_checksum;
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wafp::study
