// Steady-state allocation audit for the render hot path (ISSUE 6): once a
// stack archetype has rendered, re-rendering it must not rebuild any engine
// part — no FFT twiddle tables, no FFT scratch growth, no periodic-wave
// table builds. The dsp/webaudio layers expose monotonic build counters
// precisely so this test can assert the deltas are zero instead of trusting
// that the caches "should" hit.
#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "fingerprint/vector.h"
#include "platform/catalog.h"
#include "util/rng.h"
#include "webaudio/periodic_wave.h"

namespace wafp::fingerprint {
namespace {

platform::PlatformProfile sampled_profile(std::uint64_t seed) {
  const platform::DeviceCatalog catalog;
  util::Rng rng(seed);
  return catalog.sample_profile(rng);
}

TEST(SteadyStateAllocTest, SecondRenderBuildsNoEngineParts) {
  const platform::PlatformProfile p = sampled_profile(5);

  // Warm pass: builds whatever shared parts this archetype needs (math
  // library, FFT engine + twiddles, wavetables) through the per-stack
  // memoization in PlatformProfile::make_engine_config.
  for (const VectorId id : audio_vector_ids()) {
    (void)audio_vector(id).run(p, {});
  }

  const dsp::FftCounters fft_before = dsp::fft_counters();
  const std::uint64_t waves_before = webaudio::periodic_wave_builds();

  // Steady-state pass: every engine part must come from a cache.
  for (const VectorId id : audio_vector_ids()) {
    (void)audio_vector(id).run(p, {});
  }

  const dsp::FftCounters fft_after = dsp::fft_counters();
  EXPECT_EQ(fft_after.twiddle_builds, fft_before.twiddle_builds);
  EXPECT_EQ(fft_after.scratch_growths, fft_before.scratch_growths);
  EXPECT_EQ(webaudio::periodic_wave_builds(), waves_before);
}

TEST(SteadyStateAllocTest, DistinctArchetypesStillShareWaveTables) {
  // Two users of the same stack archetype share one wavetable build; a
  // *different* math variant is a different archetype and is allowed to
  // build its own — but re-rendering either must build nothing new.
  const platform::PlatformProfile a = sampled_profile(11);
  platform::PlatformProfile b = a;
  b.audio.math = a.audio.math == dsp::MathVariant::kTable
                     ? dsp::MathVariant::kFastPoly
                     : dsp::MathVariant::kTable;

  (void)audio_vector(VectorId::kHybrid).run(a, {});
  (void)audio_vector(VectorId::kHybrid).run(b, {});

  const std::uint64_t waves_before = webaudio::periodic_wave_builds();
  (void)audio_vector(VectorId::kHybrid).run(a, {});
  (void)audio_vector(VectorId::kHybrid).run(b, {});
  EXPECT_EQ(webaudio::periodic_wave_builds(), waves_before);
}

}  // namespace
}  // namespace wafp::fingerprint
