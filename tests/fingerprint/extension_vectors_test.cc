#include <gtest/gtest.h>

#include "fingerprint/vector.h"
#include "platform/catalog.h"
#include "util/rng.h"

namespace wafp::fingerprint {
namespace {

platform::PlatformProfile reference_profile() {
  const platform::DeviceCatalog catalog;
  util::Rng rng(11);
  platform::PlatformProfile p = catalog.sample_profile(rng);
  p.audio = {};  // reference stack
  return p;
}

class ExtensionVectorTest : public ::testing::TestWithParam<VectorId> {};

TEST_P(ExtensionVectorTest, DeterministicAndRegistered) {
  const AudioFingerprintVector& vector = audio_vector(GetParam());
  EXPECT_EQ(vector.id(), GetParam());
  EXPECT_FALSE(is_static_vector(GetParam()));
  const platform::PlatformProfile p = reference_profile();
  EXPECT_EQ(vector.run(p, {}), vector.run(p, {}));
}

TEST_P(ExtensionVectorTest, SeesMathVariant) {
  const AudioFingerprintVector& vector = audio_vector(GetParam());
  platform::PlatformProfile a = reference_profile();
  platform::PlatformProfile b = a;
  b.audio.math = dsp::MathVariant::kFastPoly;
  EXPECT_NE(vector.run(a, {}), vector.run(b, {}));
}

TEST_P(ExtensionVectorTest, SeesFftBuild) {
  const AudioFingerprintVector& vector = audio_vector(GetParam());
  platform::PlatformProfile a = reference_profile();
  platform::PlatformProfile b = a;
  b.audio.fft = dsp::FftVariant::kSplitRadix;
  EXPECT_NE(vector.run(a, {}), vector.run(b, {}));
}

TEST_P(ExtensionVectorTest, RespondsToJitter) {
  const AudioFingerprintVector& vector = audio_vector(GetParam());
  EXPECT_GT(vector.jitter_susceptibility(), 0.0);
  const platform::PlatformProfile p = reference_profile();
  webaudio::RenderJitter jitter;
  jitter.state = 1;
  EXPECT_NE(vector.run(p, {}), vector.run(p, jitter));
}

INSTANTIATE_TEST_SUITE_P(Extensions, ExtensionVectorTest,
                         ::testing::ValuesIn(extension_vector_ids().begin(),
                                             extension_vector_ids().end()),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name) {
                             if (c == ' ') c = '_';
                           }
                           return name;
                         });

TEST(ExtensionVectorTest, NotPartOfThePaperSeven) {
  for (const VectorId id : extension_vector_ids()) {
    for (const VectorId paper : audio_vector_ids()) {
      EXPECT_NE(id, paper);
    }
  }
  EXPECT_EQ(extension_vector_ids().size(), 2u);
}

TEST(ExtensionVectorTest, DistinctFromPaperVectorsOnSameProfile) {
  const platform::PlatformProfile p = reference_profile();
  for (const VectorId ext : extension_vector_ids()) {
    const util::Digest d = audio_vector(ext).run(p, {});
    for (const VectorId paper : audio_vector_ids()) {
      EXPECT_NE(d, audio_vector(paper).run(p, {}));
    }
  }
}

}  // namespace
}  // namespace wafp::fingerprint
