#include "fingerprint/batch_renderer.h"

#include <gtest/gtest.h>

#include "fingerprint/vector.h"
#include "platform/catalog.h"
#include "util/rng.h"

namespace wafp::fingerprint {
namespace {

platform::PlatformProfile profile_with_math(dsp::MathVariant math) {
  const platform::DeviceCatalog catalog;
  util::Rng rng(29);
  platform::PlatformProfile p = catalog.sample_profile(rng);
  p.audio = {};
  p.audio.math = math;
  return p;
}

TEST(BatchRendererTest, DeduplicatesRepeatedRequests) {
  RenderCache cache;
  BatchRenderer batch(cache);
  const auto p = profile_with_math(dsp::MathVariant::kPrecise);
  const auto& vec = audio_vector(VectorId::kDc);
  batch.request(vec, p, 0);
  batch.request(vec, p, 0);
  batch.request(vec, p, 0);
  const BatchRenderStats stats = batch.render_all();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.classes, 1u);
  EXPECT_EQ(stats.archetypes, 1u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(BatchRendererTest, CountsClassesAndArchetypes) {
  RenderCache cache;
  BatchRenderer batch(cache);
  const auto a = profile_with_math(dsp::MathVariant::kPrecise);
  const auto b = profile_with_math(dsp::MathVariant::kSimdAvx2);
  for (const VectorId id : {VectorId::kDc, VectorId::kFft}) {
    batch.request(audio_vector(id), a, 0);
    batch.request(audio_vector(id), b, 0);
  }
  const BatchRenderStats stats = batch.render_all();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.classes, 4u);
  // Two distinct audio stacks -> two archetype groups.
  EXPECT_EQ(stats.archetypes, 2u);
  EXPECT_EQ(cache.entries(), 4u);
}

TEST(BatchRendererTest, WarmsCacheToPureHits) {
  RenderCache cache;
  BatchRenderer batch(cache);
  const auto p = profile_with_math(dsp::MathVariant::kTable);
  for (const VectorId id : audio_vector_ids()) {
    batch.request(audio_vector(id), p, 0);
  }
  const BatchRenderStats stats = batch.render_all();
  EXPECT_EQ(cache.misses(), stats.classes);
  // Every post-batch lookup is a hit and matches the direct render.
  for (const VectorId id : audio_vector_ids()) {
    const auto& vec = audio_vector(id);
    EXPECT_EQ(cache.get(vec, p, 0), vec.run(p, {}));
  }
  EXPECT_EQ(cache.misses(), stats.classes);
  EXPECT_EQ(cache.hits(), audio_vector_ids().size());
}

TEST(BatchRendererTest, RenderAllDrainsThePendingSet) {
  RenderCache cache;
  BatchRenderer batch(cache);
  const auto p = profile_with_math(dsp::MathVariant::kPrecise);
  batch.request(audio_vector(VectorId::kDc), p, 0);
  (void)batch.render_all();
  const BatchRenderStats again = batch.render_all();
  EXPECT_EQ(again.requests, 0u);
  EXPECT_EQ(again.classes, 0u);
  EXPECT_EQ(again.archetypes, 0u);
}

TEST(BatchRendererTest, ParallelRenderMatchesSerial) {
  const auto a = profile_with_math(dsp::MathVariant::kPrecise);
  const auto b = profile_with_math(dsp::MathVariant::kSimdSse2);

  RenderCache serial_cache;
  BatchRenderer serial(serial_cache);
  RenderCache parallel_cache;
  BatchRenderer parallel(parallel_cache);
  for (const VectorId id : audio_vector_ids()) {
    for (const auto* p : {&a, &b}) {
      serial.request(audio_vector(id), *p, 1);
      parallel.request(audio_vector(id), *p, 1);
    }
  }
  (void)serial.render_all(1);
  (void)parallel.render_all(4);
  for (const VectorId id : audio_vector_ids()) {
    for (const auto* p : {&a, &b}) {
      EXPECT_EQ(serial_cache.get(audio_vector(id), *p, 1),
                parallel_cache.get(audio_vector(id), *p, 1))
          << to_string(id);
    }
  }
}

// Degenerate hash mapping *every* class to one value: with it, any two
// distinct render classes collide. The renderer must still render both —
// dedup correctness rests on RenderClassKey::operator== (full-tuple
// equality), never on hash uniqueness.
struct ConstantHash {
  std::size_t operator()(const RenderClassKey&) const noexcept { return 7; }
};

TEST(BatchRendererTest, HashCollisionsNeverDropAClass) {
  // Regression: the renderer used to key its pending set by a bare 64-bit
  // fnv1a64_mix value, so two distinct (stack, vector, jitter) classes
  // landing on one hash silently dropped a render.
  RenderCache cache;
  BasicBatchRenderer<ConstantHash> batch(cache);
  const auto a = profile_with_math(dsp::MathVariant::kPrecise);
  const auto b = profile_with_math(dsp::MathVariant::kTable);
  // Distinct stacks, distinct vectors, distinct jitters: every pair of
  // these classes collides under ConstantHash.
  batch.request(audio_vector(VectorId::kDc), a, 0);
  batch.request(audio_vector(VectorId::kDc), b, 0);
  batch.request(audio_vector(VectorId::kFft), a, 0);
  batch.request(audio_vector(VectorId::kDc), a, 5);
  const BatchRenderStats stats = batch.render_all();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.classes, 4u);  // nothing merged, nothing dropped
  EXPECT_EQ(cache.entries(), 4u);
  // True duplicates still collapse even when everything shares one hash.
  batch.request(audio_vector(VectorId::kDc), a, 0);
  batch.request(audio_vector(VectorId::kDc), a, 0);
  const BatchRenderStats again = batch.render_all();
  EXPECT_EQ(again.classes, 1u);
  EXPECT_EQ(cache.entries(), 4u);  // pure hit, no new class
}

TEST(BatchRendererTest, EmptyRenderAllIsANoOp) {
  RenderCache cache;
  BatchRenderer batch(cache);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const BatchRenderStats stats = batch.render_all(threads);
    EXPECT_EQ(stats.requests, 0u);
    EXPECT_EQ(stats.classes, 0u);
    EXPECT_EQ(stats.archetypes, 0u);
  }
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(BatchRendererTest, StatsResetAcrossRequestRenderCycles) {
  RenderCache cache;
  BatchRenderer batch(cache);
  const auto p = profile_with_math(dsp::MathVariant::kPrecise);

  batch.request(audio_vector(VectorId::kDc), p, 0);
  batch.request(audio_vector(VectorId::kDc), p, 0);
  const BatchRenderStats first = batch.render_all();
  EXPECT_EQ(first.requests, 2u);
  EXPECT_EQ(first.classes, 1u);

  // A second cycle counts only its own requests; the request tally must
  // not leak across render_all() calls.
  batch.request(audio_vector(VectorId::kFft), p, 0);
  const BatchRenderStats second = batch.render_all();
  EXPECT_EQ(second.requests, 1u);
  EXPECT_EQ(second.classes, 1u);
  EXPECT_EQ(second.archetypes, 1u);

  // Re-requesting an already-rendered class is a new class for *this*
  // cycle (the pending set drained), served as a cache hit.
  const std::size_t misses_before = cache.misses();
  batch.request(audio_vector(VectorId::kDc), p, 0);
  const BatchRenderStats third = batch.render_all();
  EXPECT_EQ(third.classes, 1u);
  EXPECT_EQ(cache.misses(), misses_before);  // hit: no re-render
}

}  // namespace
}  // namespace wafp::fingerprint
