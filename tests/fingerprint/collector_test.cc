#include "fingerprint/collector.h"

#include <gtest/gtest.h>

#include <set>

#include "platform/catalog.h"
#include "platform/population.h"

namespace wafp::fingerprint {
namespace {

platform::StudyUser make_user(double flakiness, std::uint64_t seed = 42) {
  const platform::DeviceCatalog catalog;
  const platform::Population population(catalog, 1, seed);
  platform::StudyUser user = population.user(0);
  user.profile.fickle.flakiness = flakiness;
  user.profile.fickle.jitter_states = 4;
  user.profile.fickle.jitter_share = 0.85;
  return user;
}

TEST(CollectorTest, StableUserAlwaysStateZero) {
  RenderCache cache;
  FingerprintCollector collector(cache);
  const platform::StudyUser user = make_user(0.0);
  for (std::uint32_t it = 0; it < 50; ++it) {
    const auto jitter =
        collector.draw_jitter(user, audio_vector(VectorId::kHybrid), it);
    EXPECT_TRUE(jitter.is_stable());
  }
}

TEST(CollectorTest, DcNeverJittersEvenWhenFlaky) {
  RenderCache cache;
  FingerprintCollector collector(cache);
  const platform::StudyUser user = make_user(0.8);
  for (std::uint32_t it = 0; it < 50; ++it) {
    const auto jitter =
        collector.draw_jitter(user, audio_vector(VectorId::kDc), it);
    EXPECT_TRUE(jitter.is_stable());
  }
}

TEST(CollectorTest, DrawIsDeterministicPerIteration) {
  RenderCache cache;
  FingerprintCollector collector(cache);
  const platform::StudyUser user = make_user(0.5);
  const auto& vector = audio_vector(VectorId::kAm);
  for (std::uint32_t it = 0; it < 20; ++it) {
    const auto a = collector.draw_jitter(user, vector, it);
    const auto b = collector.draw_jitter(user, vector, it);
    EXPECT_EQ(a.state, b.state);
    EXPECT_EQ(a.chaos_seed, b.chaos_seed);
  }
}

TEST(CollectorTest, FlakyUserProducesEvents) {
  RenderCache cache;
  FingerprintCollector collector(cache);
  const platform::StudyUser user = make_user(0.6);
  const auto& vector = audio_vector(VectorId::kAm);
  int events = 0;
  for (std::uint32_t it = 0; it < 60; ++it) {
    const auto jitter = collector.draw_jitter(user, vector, it);
    if (!jitter.is_stable()) ++events;
  }
  EXPECT_GT(events, 20);
  EXPECT_LT(events, 60);  // the probability cap keeps some draws stable
}

TEST(CollectorTest, JitterStatesWithinConfiguredRange) {
  RenderCache cache;
  FingerprintCollector collector(cache);
  const platform::StudyUser user = make_user(0.7);
  const auto& vector = audio_vector(VectorId::kHybrid);
  for (std::uint32_t it = 0; it < 200; ++it) {
    const auto jitter = collector.draw_jitter(user, vector, it);
    EXPECT_LE(jitter.state, user.profile.fickle.jitter_states);
  }
}

TEST(CollectorTest, CollectMatchesRenderedPathForNonChaos) {
  // The cached fast path must agree bit-for-bit with direct rendering for
  // stable and jitter-state draws.
  RenderCache cache;
  FingerprintCollector collector(cache);
  const platform::StudyUser user = make_user(0.3);
  const auto& vector = audio_vector(VectorId::kHybrid);
  int compared = 0;
  for (std::uint32_t it = 0; it < 12; ++it) {
    const auto jitter = collector.draw_jitter(user, vector, it);
    if (jitter.chaos_seed != 0) continue;  // chaos uses the derived digest
    EXPECT_EQ(collector.collect(user, VectorId::kHybrid, it),
              collector.collect_rendered(user, VectorId::kHybrid, it))
        << "iteration " << it;
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST(CollectorTest, ChaosDigestsAreUniquePerIteration) {
  RenderCache cache;
  FingerprintCollector collector(cache);
  platform::StudyUser user = make_user(0.85);
  user.profile.fickle.jitter_share = 0.0;  // force chaos on every event
  std::set<util::Digest> chaos_digests;
  int chaos_count = 0;
  for (std::uint32_t it = 0; it < 40; ++it) {
    const auto jitter =
        collector.draw_jitter(user, audio_vector(VectorId::kAm), it);
    if (jitter.chaos_seed == 0) continue;
    chaos_digests.insert(collector.collect(user, VectorId::kAm, it));
    ++chaos_count;
  }
  EXPECT_GT(chaos_count, 10);
  EXPECT_EQ(chaos_digests.size(), static_cast<std::size_t>(chaos_count));
}

TEST(CollectorTest, RenderedChaosPathAlsoUnique) {
  // Ground truth: rendering through the engine's chaotic-glitch path
  // produces distinct digests too (the fast path is equivalent in equality
  // structure).
  RenderCache cache;
  FingerprintCollector collector(cache);
  platform::StudyUser user = make_user(0.85);
  user.profile.fickle.jitter_share = 0.0;
  std::set<util::Digest> digests;
  int chaos_count = 0;
  for (std::uint32_t it = 0; it < 8; ++it) {
    const auto jitter =
        collector.draw_jitter(user, audio_vector(VectorId::kFft), it);
    if (jitter.chaos_seed == 0) continue;
    digests.insert(collector.collect_rendered(user, VectorId::kFft, it));
    ++chaos_count;
  }
  EXPECT_GT(chaos_count, 2);
  EXPECT_EQ(digests.size(), static_cast<std::size_t>(chaos_count));
}

TEST(CollectorTest, CacheShrinksRenderCount) {
  RenderCache cache;
  FingerprintCollector collector(cache);
  const platform::StudyUser user = make_user(0.0);
  for (std::uint32_t it = 0; it < 10; ++it) {
    (void)collector.collect(user, VectorId::kDc, it);
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 9u);
}

TEST(CollectorTest, StaticVectorsStableAcrossIterations) {
  RenderCache cache;
  FingerprintCollector collector(cache);
  const platform::StudyUser user = make_user(0.8);
  const util::Digest first = collector.collect(user, VectorId::kCanvas, 0);
  for (std::uint32_t it = 1; it < 5; ++it) {
    EXPECT_EQ(collector.collect(user, VectorId::kCanvas, it), first);
  }
}

TEST(RenderCacheTest, SameStackSharesEntries) {
  // Two users on identical audio stacks share the cache entry — the
  // collision phenomenon the collation graph is built around.
  const platform::DeviceCatalog catalog;
  const platform::Population population(catalog, 40, 4242);
  RenderCache cache;
  const auto& vector = audio_vector(VectorId::kDc);
  std::set<std::string> distinct_keys;
  for (const auto& user : population.users()) {
    distinct_keys.insert(user.profile.audio.class_key());
    (void)cache.get(vector, user.profile, 0);
  }
  EXPECT_EQ(cache.entries(), distinct_keys.size());
  EXPECT_LT(cache.entries(), 40u);  // collisions exist
}

}  // namespace
}  // namespace wafp::fingerprint
