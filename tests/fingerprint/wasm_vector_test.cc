// The WebAssembly-style compute vector family through the registry: the
// catalogue lists it, dispatch reaches it with no special-casing, each
// battery responds to exactly its documented knobs, and the analysis layer
// picks the family up as one more label source (the §6 additive-value
// structure, no code changes required).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/entropy.h"
#include "fingerprint/vector_registry.h"
#include "platform/catalog.h"
#include "service/validator.h"
#include "testing/stacks.h"
#include "util/rng.h"

namespace wafp::fingerprint {
namespace {

platform::PlatformProfile portable_profile() {
  return testing::profile_for(testing::golden_stacks()[0].stack);
}

TEST(WasmVectorTest, RegistryEnumeratesTheComputeFamily) {
  const auto& registry = VectorRegistry::instance();
  EXPECT_EQ(registry.all().size(), 15u);
  ASSERT_EQ(registry.compute_ids().size(), 2u);
  EXPECT_EQ(registry.compute_ids()[0], VectorId::kWasmFloat);
  EXPECT_EQ(registry.compute_ids()[1], VectorId::kWasmSimd);
  // The family must not leak into the other slices.
  EXPECT_EQ(registry.audio_ids().size(), 7u);
  EXPECT_EQ(registry.extension_ids().size(), 2u);
  EXPECT_EQ(registry.static_ids().size(), 4u);

  for (const VectorId id : registry.compute_ids()) {
    const VectorEntry& entry = registry.entry(id);
    EXPECT_TRUE(entry.caps.compute);
    EXPECT_FALSE(entry.caps.audio);
    EXPECT_FALSE(entry.caps.jittery);
    EXPECT_FALSE(entry.caps.is_static());
    EXPECT_EQ(entry.vector, nullptr);  // no audio graph to render
    EXPECT_TRUE(is_compute_vector(id));
    EXPECT_FALSE(is_static_vector(id));
  }
  EXPECT_EQ(registry.find("WASM Float")->id, VectorId::kWasmFloat);
  EXPECT_EQ(registry.find("WASM SIMD")->id, VectorId::kWasmSimd);
}

TEST(WasmVectorTest, RegistryRunDispatchesWithoutSpecialCasing) {
  const platform::PlatformProfile profile = portable_profile();
  const auto& registry = VectorRegistry::instance();
  for (const VectorId id : registry.compute_ids()) {
    const util::Digest via_registry =
        registry.run(id, profile, webaudio::RenderJitter{});
    EXPECT_EQ(via_registry, run_compute_vector(id, profile))
        << to_string(id);
    // Compute vectors cannot waver: jitter state is ignored.
    const webaudio::RenderJitter skew{.state = 3, .chaos_seed = 99};
    EXPECT_EQ(registry.run(id, profile, skew), via_registry) << to_string(id);
  }
}

TEST(WasmVectorTest, ServiceValidatorKnowsTheFamily) {
  EXPECT_TRUE(service::is_known_vector(
      static_cast<std::uint32_t>(VectorId::kWasmFloat)));
  EXPECT_TRUE(service::is_known_vector(
      static_cast<std::uint32_t>(VectorId::kWasmSimd)));
  EXPECT_FALSE(service::is_known_vector(15));
}

TEST(WasmVectorTest, RunComputeVectorRejectsNonComputeIds) {
  const platform::PlatformProfile profile = portable_profile();
  EXPECT_THROW(
      { (void)run_compute_vector(VectorId::kDc, profile); },
      std::invalid_argument);
  EXPECT_THROW(
      { (void)run_compute_vector(VectorId::kCanvas, profile); },
      std::invalid_argument);
}

TEST(WasmVectorTest, FloatBatteryRespondsToMathAndFmaOnly) {
  platform::PlatformProfile profile = portable_profile();
  const util::Digest base =
      run_compute_vector(VectorId::kWasmFloat, profile);

  // Deterministic: same profile, same digest.
  EXPECT_EQ(run_compute_vector(VectorId::kWasmFloat, profile), base);

  // simd_tier is invisible to the scalar battery...
  profile.simd_tier = 3;
  EXPECT_EQ(run_compute_vector(VectorId::kWasmFloat, profile), base);

  // ...but the FMA contraction policy and the libm generation are not.
  profile.audio.fma_contraction = !profile.audio.fma_contraction;
  const util::Digest contracted =
      run_compute_vector(VectorId::kWasmFloat, profile);
  EXPECT_NE(contracted, base);
  profile = portable_profile();
  profile.audio.math = dsp::MathVariant::kTable;
  EXPECT_NE(run_compute_vector(VectorId::kWasmFloat, profile), base);
}

TEST(WasmVectorTest, SimdBatteryRespondsToEveryTier) {
  platform::PlatformProfile profile = portable_profile();
  std::set<std::string> digests;
  for (int tier = 0; tier <= 3; ++tier) {
    profile.simd_tier = tier;
    digests.insert(run_compute_vector(VectorId::kWasmSimd, profile).hex());
  }
  // Each tier folds reductions with a different association order, so all
  // four digests differ.
  EXPECT_EQ(digests.size(), 4u);
}

TEST(WasmVectorTest, AnalysisLayerPicksUpTheFamilyAdditively) {
  // The §6 additive-value structure with zero special-casing: digest the
  // family across a catalog population, combine with a coarse base label,
  // and the combined diversity can only grow.
  const platform::DeviceCatalog catalog;
  util::Rng rng(412);
  constexpr std::size_t kUsers = 400;

  std::vector<std::string> float_digests;
  std::vector<int> base_labels;  // math variant: coarse "browser build"
  float_digests.reserve(kUsers);
  for (std::size_t i = 0; i < kUsers; ++i) {
    const platform::PlatformProfile p = catalog.sample_profile(rng);
    float_digests.push_back(
        run_compute_vector(VectorId::kWasmFloat, p).hex());
    base_labels.push_back(static_cast<int>(p.audio.math));
  }
  std::vector<int> wasm_labels;
  {
    std::vector<std::string> sorted = float_digests;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (const std::string& d : float_digests) {
      wasm_labels.push_back(static_cast<int>(
          std::lower_bound(sorted.begin(), sorted.end(), d) -
          sorted.begin()));
    }
  }

  const analysis::DiversityStats base =
      analysis::diversity_from_labels(base_labels);
  const std::vector<std::vector<int>> sets = {base_labels, wasm_labels};
  const analysis::DiversityStats combined =
      analysis::diversity_from_labels(analysis::combine_labels(sets));
  EXPECT_GE(combined.distinct, base.distinct);
  EXPECT_GE(combined.entropy, base.entropy);
  // The battery separates at least the FMA axis within one math variant,
  // so the family genuinely adds information over the base label.
  EXPECT_GT(combined.distinct, base.distinct);
}

}  // namespace
}  // namespace wafp::fingerprint
