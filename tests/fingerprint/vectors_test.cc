#include "fingerprint/vector.h"

#include <gtest/gtest.h>

#include "platform/catalog.h"
#include "util/rng.h"

namespace wafp::fingerprint {
namespace {

platform::PlatformProfile profile_for_seed(std::uint64_t seed) {
  const platform::DeviceCatalog catalog;
  util::Rng rng(seed);
  return catalog.sample_profile(rng);
}

/// Two profiles with coarsely different audio stacks.
platform::PlatformProfile windows_profile() {
  platform::PlatformProfile p = profile_for_seed(3);
  p.audio = {};  // Blink/Windows defaults
  p.audio.math = dsp::MathVariant::kPrecise;
  return p;
}

platform::PlatformProfile android_profile() {
  platform::PlatformProfile p = profile_for_seed(3);
  p.audio = {};
  p.audio.math = dsp::MathVariant::kFastPoly;
  p.audio.fft = dsp::FftVariant::kRadix4;
  p.audio.fma_contraction = true;
  return p;
}

class AudioVectorTest : public ::testing::TestWithParam<VectorId> {};

TEST_P(AudioVectorTest, DeterministicGivenProfileAndJitter) {
  const AudioFingerprintVector& vector = audio_vector(GetParam());
  const platform::PlatformProfile p = windows_profile();
  EXPECT_EQ(vector.run(p, {}), vector.run(p, {}));
  webaudio::RenderJitter jitter;
  jitter.state = 2;
  EXPECT_EQ(vector.run(p, jitter), vector.run(p, jitter));
}

TEST_P(AudioVectorTest, DistinguishesCoarsePlatforms) {
  const AudioFingerprintVector& vector = audio_vector(GetParam());
  EXPECT_NE(vector.run(windows_profile(), {}),
            vector.run(android_profile(), {}));
}

TEST_P(AudioVectorTest, VectorsProduceDistinctDigestsOnSameProfile) {
  // Each vector hashes its own name + outputs, so no two vectors collide.
  const platform::PlatformProfile p = windows_profile();
  const util::Digest mine = audio_vector(GetParam()).run(p, {});
  for (const VectorId other : audio_vector_ids()) {
    if (other == GetParam()) continue;
    EXPECT_NE(mine, audio_vector(other).run(p, {}))
        << "collides with " << to_string(other);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAudioVectors, AudioVectorTest,
                         ::testing::ValuesIn(audio_vector_ids().begin(),
                                             audio_vector_ids().end()),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name) {
                             if (c == ' ' || c == '-') c = '_';
                           }
                           return name;
                         });

TEST(DcVectorTest, ImmuneToJitter) {
  // The paper's headline stability observation (Table 1): DC never wavers,
  // because its graph has no analyser.
  const AudioFingerprintVector& dc = audio_vector(VectorId::kDc);
  const platform::PlatformProfile p = windows_profile();
  const util::Digest stable = dc.run(p, {});
  for (std::uint32_t state = 1; state <= 5; ++state) {
    webaudio::RenderJitter jitter;
    jitter.state = state;
    EXPECT_EQ(dc.run(p, jitter), stable) << "state " << state;
  }
  webaudio::RenderJitter chaos;
  chaos.chaos_seed = 777;
  EXPECT_EQ(dc.run(p, chaos), stable);
  EXPECT_EQ(dc.jitter_susceptibility(), 0.0);
}

TEST(FftFamilyTest, JitterStateChangesDigest) {
  for (const VectorId id :
       {VectorId::kFft, VectorId::kHybrid, VectorId::kCustomSignal,
        VectorId::kMergedSignals, VectorId::kAm, VectorId::kFm}) {
    const AudioFingerprintVector& vector = audio_vector(id);
    EXPECT_GT(vector.jitter_susceptibility(), 0.0);
    const platform::PlatformProfile p = windows_profile();
    webaudio::RenderJitter jitter;
    jitter.state = 1;
    EXPECT_NE(vector.run(p, {}), vector.run(p, jitter))
        << to_string(id);
  }
}

TEST(FftFamilyTest, ChaosSeedChangesDigestUniquely) {
  const AudioFingerprintVector& fft = audio_vector(VectorId::kFft);
  const platform::PlatformProfile p = windows_profile();
  webaudio::RenderJitter chaos1;
  chaos1.chaos_seed = 1;
  webaudio::RenderJitter chaos2;
  chaos2.chaos_seed = 2;
  const util::Digest d0 = fft.run(p, {});
  const util::Digest d1 = fft.run(p, chaos1);
  const util::Digest d2 = fft.run(p, chaos2);
  EXPECT_NE(d0, d1);
  EXPECT_NE(d0, d2);
  EXPECT_NE(d1, d2);
}

TEST(FftFamilyTest, ModulationVectorsMostSusceptible) {
  // Table 1 ordering: DC < FFT < Hybrid/Custom < Merged < AM/FM.
  const double fft = audio_vector(VectorId::kFft).jitter_susceptibility();
  const double hybrid = audio_vector(VectorId::kHybrid).jitter_susceptibility();
  const double merged =
      audio_vector(VectorId::kMergedSignals).jitter_susceptibility();
  const double am = audio_vector(VectorId::kAm).jitter_susceptibility();
  EXPECT_LT(fft, hybrid + 1e-12);
  EXPECT_LT(hybrid, merged);
  EXPECT_LT(merged, am);
}

TEST(FftVectorTest, DoesNotSeeCompressorTuning) {
  // The FFT graph (Fig. 2) has no compressor, so compressor tunings must be
  // invisible to it — this is why the paper's FFT and DC vectors partition
  // users differently.
  platform::PlatformProfile a = windows_profile();
  platform::PlatformProfile b = a;
  b.audio.compressor.release_zone2 = 1.27;
  EXPECT_NE(a.audio.class_key(), b.audio.class_key());
  EXPECT_EQ(audio_vector(VectorId::kFft).run(a, {}),
            audio_vector(VectorId::kFft).run(b, {}));
  // ... while DC does see it.
  EXPECT_NE(audio_vector(VectorId::kDc).run(a, {}),
            audio_vector(VectorId::kDc).run(b, {}));
}

TEST(DcVectorTest, DoesNotSeeAnalyserTuning) {
  platform::PlatformProfile a = windows_profile();
  platform::PlatformProfile b = a;
  b.audio.analyser.blackman_alpha = 0.158;
  EXPECT_EQ(audio_vector(VectorId::kDc).run(a, {}),
            audio_vector(VectorId::kDc).run(b, {}));
  EXPECT_NE(audio_vector(VectorId::kFft).run(a, {}),
            audio_vector(VectorId::kFft).run(b, {}));
}

TEST(DcVectorTest, FftBuildAbsorbedByFloatWavetables) {
  // FFT implementation differences live below float resolution in the
  // oscillator wavetables, so the DC path cannot see them — matching the
  // paper's Table 5 (Windows/Chrome: one DC fingerprint across CPU
  // generations).
  platform::PlatformProfile a = windows_profile();
  platform::PlatformProfile b = a;
  b.audio.fft = dsp::FftVariant::kSplitRadix;
  EXPECT_EQ(audio_vector(VectorId::kDc).run(a, {}),
            audio_vector(VectorId::kDc).run(b, {}));
  EXPECT_NE(audio_vector(VectorId::kFft).run(a, {}),
            audio_vector(VectorId::kFft).run(b, {}));
}

TEST(AmVectorTest, SeesDeepCompressionTuning) {
  // Zone-4 release tunings are only reached under heavy modulation: AM
  // splits, Hybrid does not (the paper's Combined > single-vector effect).
  platform::PlatformProfile a = windows_profile();
  platform::PlatformProfile b = a;
  b.audio.compressor.release_zone4 = 3.35;
  EXPECT_EQ(audio_vector(VectorId::kHybrid).run(a, {}),
            audio_vector(VectorId::kHybrid).run(b, {}));
  EXPECT_NE(audio_vector(VectorId::kAm).run(a, {}),
            audio_vector(VectorId::kAm).run(b, {}));
}

TEST(VectorRegistryTest, NamesAndIds) {
  EXPECT_EQ(audio_vector_ids().size(), 7u);
  for (const VectorId id : audio_vector_ids()) {
    EXPECT_EQ(audio_vector(id).id(), id);
    EXPECT_FALSE(is_static_vector(id));
  }
  EXPECT_TRUE(is_static_vector(VectorId::kCanvas));
  EXPECT_TRUE(is_static_vector(VectorId::kMathJs));
  EXPECT_THROW((void)audio_vector(VectorId::kCanvas), std::invalid_argument);
}

TEST(StaticVectorTest, RunStaticRejectsAudioIds) {
  const platform::PlatformProfile p = windows_profile();
  EXPECT_THROW((void)run_static_vector(VectorId::kDc, p),
               std::invalid_argument);
  EXPECT_EQ(run_static_vector(VectorId::kUserAgent, p),
            util::sha256(p.user_agent()));
}

}  // namespace
}  // namespace wafp::fingerprint
