// Render-level contract of the SIMD-backed math variants (DESIGN.md §3g):
// kSimdSse2/kSimdAvx2 are fingerprint *surface*, so their rendered digests
// must diverge from the scalar variants and from each other, while staying
// perfectly self-deterministic — the same stack must produce the same bits
// on every run. (Bit-identity across the *executing* backend — WAFP_SIMD —
// is covered at the kernel layer in tests/dsp/simd_test.cc and by the CI
// conformance leg that re-runs the goldens under WAFP_SIMD=scalar.)
#include <gtest/gtest.h>

#include <vector>

#include "fingerprint/vector.h"
#include "platform/catalog.h"
#include "util/rng.h"

namespace wafp::fingerprint {
namespace {

platform::PlatformProfile profile_with_math(dsp::MathVariant math) {
  const platform::DeviceCatalog catalog;
  util::Rng rng(17);
  platform::PlatformProfile p = catalog.sample_profile(rng);
  p.audio = {};  // pin every other knob so only the math variant differs
  p.audio.math = math;
  return p;
}

constexpr dsp::MathVariant kSimdVariants[] = {dsp::MathVariant::kSimdSse2,
                                              dsp::MathVariant::kSimdAvx2};

// The oscillator/FFT-heavy vectors: every sample they render passes through
// the math library, so a scheme change must reach the digest.
constexpr VectorId kMathSensitiveVectors[] = {
    VectorId::kFft, VectorId::kHybrid, VectorId::kMergedSignals,
    VectorId::kAm};

TEST(SimdVariantRenderTest, SelfDeterministicAcrossRepeatedRenders) {
  for (const dsp::MathVariant variant : kSimdVariants) {
    const platform::PlatformProfile p = profile_with_math(variant);
    for (const VectorId id : audio_vector_ids()) {
      const AudioFingerprintVector& vector = audio_vector(id);
      const util::Digest first = vector.run(p, {});
      EXPECT_EQ(first, vector.run(p, {}))
          << to_string(id) << " unstable under "
          << dsp::to_string(variant);
    }
  }
}

TEST(SimdVariantRenderTest, DivergesFromScalarVariants) {
  // Each SIMD scheme must be a *new* audio class, not an alias of one of
  // the scalar schemes it shares a codebase with.
  constexpr dsp::MathVariant kScalarVariants[] = {
      dsp::MathVariant::kPrecise, dsp::MathVariant::kFdlibm,
      dsp::MathVariant::kFastPoly, dsp::MathVariant::kTable};
  for (const dsp::MathVariant simd : kSimdVariants) {
    const platform::PlatformProfile sp = profile_with_math(simd);
    for (const dsp::MathVariant scalar : kScalarVariants) {
      const platform::PlatformProfile pp = profile_with_math(scalar);
      for (const VectorId id : kMathSensitiveVectors) {
        const AudioFingerprintVector& vector = audio_vector(id);
        EXPECT_NE(vector.run(sp, {}), vector.run(pp, {}))
            << to_string(id) << ": " << dsp::to_string(simd)
            << " aliases " << dsp::to_string(scalar);
      }
    }
  }
}

TEST(SimdVariantRenderTest, Sse2AndAvx2SchemesDivergeFromEachOther) {
  const platform::PlatformProfile sse2 =
      profile_with_math(dsp::MathVariant::kSimdSse2);
  const platform::PlatformProfile avx2 =
      profile_with_math(dsp::MathVariant::kSimdAvx2);
  for (const VectorId id : kMathSensitiveVectors) {
    const AudioFingerprintVector& vector = audio_vector(id);
    EXPECT_NE(vector.run(sse2, {}), vector.run(avx2, {})) << to_string(id);
  }
}

TEST(SimdVariantRenderTest, JitterStatesStayDistinctUnderSimdMath) {
  // The fickleness model must keep working on the new archetypes: distinct
  // jitter states produce distinct digests, repeatably.
  const platform::PlatformProfile p =
      profile_with_math(dsp::MathVariant::kSimdAvx2);
  const AudioFingerprintVector& vector = audio_vector(VectorId::kHybrid);
  webaudio::RenderJitter a;
  a.state = 1;
  webaudio::RenderJitter b;
  b.state = 2;
  EXPECT_NE(vector.run(p, a), vector.run(p, b));
  EXPECT_EQ(vector.run(p, a), vector.run(p, a));
}

}  // namespace
}  // namespace wafp::fingerprint
