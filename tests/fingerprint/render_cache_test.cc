#include "fingerprint/render_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fingerprint/vector.h"
#include "platform/catalog.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wafp::fingerprint {
namespace {

std::vector<platform::PlatformProfile> sample_profiles(std::size_t n) {
  platform::DeviceCatalog catalog;
  util::Rng rng(99);
  std::vector<platform::PlatformProfile> profiles;
  profiles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    profiles.push_back(catalog.sample_profile(rng));
  }
  return profiles;
}

TEST(RenderCacheTest, HitOnRepeatLookup) {
  RenderCache cache;
  const auto profiles = sample_profiles(1);
  const auto& vec = audio_vector(VectorId::kDc);
  const util::Digest first = cache.get(vec, profiles[0], 0);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.entries(), 1u);
  const util::Digest second = cache.get(vec, profiles[0], 0);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(RenderCacheTest, DistinguishesVectorAndJitterState) {
  RenderCache cache;
  const auto profiles = sample_profiles(1);
  (void)cache.get(audio_vector(VectorId::kDc), profiles[0], 0);
  (void)cache.get(audio_vector(VectorId::kFft), profiles[0], 0);
  (void)cache.get(audio_vector(VectorId::kFft), profiles[0], 1);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(RenderCacheTest, MatchesDirectRender) {
  RenderCache cache;
  const auto profiles = sample_profiles(4);
  for (const auto& p : profiles) {
    for (const VectorId id : {VectorId::kDc, VectorId::kHybrid}) {
      const auto& vec = audio_vector(id);
      webaudio::RenderJitter jitter;
      jitter.state = 1;
      EXPECT_EQ(cache.get(vec, p, 1), vec.run(p, jitter));
    }
  }
}

TEST(RenderCacheTest, ConcurrentHammerStaysConsistent) {
  // Many threads hammering a small key space: every digest must match the
  // serial render, and the counters must reconcile with the lookup count.
  // With --gtest_filter under TSan this is the test that proves the shard
  // striping sound.
  RenderCache cache;
  const auto profiles = sample_profiles(6);
  const auto ids = audio_vector_ids();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kLookupsPerThread = 400;

  // Serial ground truth (separate cache).
  RenderCache reference;
  std::vector<util::Digest> expected;
  for (const auto& p : profiles) {
    for (const VectorId id : ids) {
      expected.push_back(reference.get(audio_vector(id), p, 2));
    }
  }

  util::ThreadPool pool(kThreads);
  std::atomic<std::size_t> mismatches{0};
  pool.parallel_for_each(kThreads, [&](std::size_t t) {
    util::Rng rng(1000 + t);
    for (std::size_t i = 0; i < kLookupsPerThread; ++i) {
      const std::size_t pi = rng.next_below(profiles.size());
      const std::size_t vi = rng.next_below(ids.size());
      const util::Digest& d =
          cache.get(audio_vector(ids[vi]), profiles[pi], 2);
      if (d != expected[pi * ids.size() + vi]) mismatches.fetch_add(1);
    }
  });

  EXPECT_EQ(mismatches.load(), 0u);
  // Every lookup was either a hit or a miss...
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kLookupsPerThread);
  // ...exactly one render per distinct key (call_once gating: racers wait
  // instead of re-rendering), and the key space bounds the entry count.
  EXPECT_EQ(cache.entries(), cache.misses());
  EXPECT_LE(cache.entries(), profiles.size() * ids.size());
  EXPECT_GE(cache.entries(), 1u);
}

}  // namespace
}  // namespace wafp::fingerprint
