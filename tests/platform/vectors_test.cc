#include "platform/synthetic_vectors.h"

#include <gtest/gtest.h>

#include "platform/canvas_sim.h"
#include "platform/catalog.h"
#include "platform/population.h"

namespace wafp::platform {
namespace {

PlatformProfile base_profile() {
  const DeviceCatalog catalog;
  util::Rng rng(1);
  return catalog.sample_profile(rng);
}

TEST(CanvasSimTest, Deterministic) {
  const PlatformProfile p = base_profile();
  EXPECT_EQ(canvas_fingerprint(p), canvas_fingerprint(p));
  EXPECT_EQ(render_canvas_scene(p), render_canvas_scene(p));
}

TEST(CanvasSimTest, SceneHasExpectedDimensions) {
  const auto pixels = render_canvas_scene(base_profile());
  EXPECT_EQ(pixels.size(), kCanvasWidth * kCanvasHeight * 4);
}

TEST(CanvasSimTest, SceneIsNotBlank) {
  const auto pixels = render_canvas_scene(base_profile());
  std::size_t non_zero = 0;
  for (const std::uint8_t b : pixels) non_zero += b != 0;
  EXPECT_GT(non_zero, pixels.size() / 2);
}

TEST(CanvasSimTest, GpuRendererChangesPixels) {
  PlatformProfile a = base_profile();
  PlatformProfile b = a;
  b.gpu_renderer = "ANGLE (Somebody Else's GPU)";
  EXPECT_NE(canvas_fingerprint(a), canvas_fingerprint(b));
}

TEST(CanvasSimTest, QuirkChangesPixels) {
  PlatformProfile a = base_profile();
  PlatformProfile b = a;
  b.canvas_quirk = a.canvas_quirk + 1;
  EXPECT_NE(canvas_fingerprint(a), canvas_fingerprint(b));
}

TEST(CanvasSimTest, EngineChangesPixels) {
  PlatformProfile a = base_profile();
  PlatformProfile b = a;
  b.engine = a.engine == BrowserEngine::kBlink ? BrowserEngine::kGecko
                                               : BrowserEngine::kBlink;
  EXPECT_NE(canvas_fingerprint(a), canvas_fingerprint(b));
}

TEST(CanvasSimTest, PointReleaseDoesNotChangePixels) {
  // Text rendering depends on the major version only.
  PlatformProfile a = base_profile();
  a.browser_version = "90.0.4430.93";
  PlatformProfile b = a;
  b.browser_version = "90.0.4430.85";
  EXPECT_EQ(canvas_fingerprint(a), canvas_fingerprint(b));
}

TEST(FontsTest, ExtraFontsChangeFingerprint) {
  PlatformProfile a = base_profile();
  a.extra_fonts = {10, 20};
  PlatformProfile b = a;
  b.extra_fonts = {10, 21};
  EXPECT_NE(fonts_fingerprint(a), fonts_fingerprint(b));
}

TEST(FontsTest, DetectionIncludesExtras) {
  PlatformProfile p = base_profile();
  p.extra_fonts = {7, 99};
  const auto detected = detect_fonts(p);
  EXPECT_TRUE(detected[7]);
  EXPECT_TRUE(detected[99]);
}

TEST(FontsTest, BaseStackHasPlausibleDensity) {
  PlatformProfile p = base_profile();
  p.extra_fonts.clear();
  const auto detected = detect_fonts(p);
  std::size_t installed = 0;
  for (const bool b : detected) installed += b;
  EXPECT_GT(installed, detected.size() / 5);
  EXPECT_LT(installed, detected.size() / 2);
}

TEST(FontsTest, FontProfileChangesFingerprint) {
  PlatformProfile a = base_profile();
  PlatformProfile b = a;
  b.font_profile = a.font_profile + 1;
  EXPECT_NE(fonts_fingerprint(a), fonts_fingerprint(b));
}

TEST(UserAgentTest, FingerprintIsHashOfHeader) {
  const PlatformProfile p = base_profile();
  EXPECT_EQ(user_agent_fingerprint(p), util::sha256(p.user_agent()));
}

TEST(MathJsTest, BatteryIsDeterministic) {
  const PlatformProfile p = base_profile();
  EXPECT_EQ(math_js_battery(p), math_js_battery(p));
  EXPECT_EQ(math_js_fingerprint(p), math_js_fingerprint(p));
}

TEST(MathJsTest, JsEngineMathChangesFingerprint) {
  PlatformProfile a = base_profile();
  a.js_math = dsp::MathVariant::kPrecise;
  PlatformProfile b = a;
  b.js_math = dsp::MathVariant::kFdlibm;
  EXPECT_NE(math_js_fingerprint(a), math_js_fingerprint(b));
}

TEST(MathJsTest, AtanBuildChangesFingerprint) {
  PlatformProfile a = base_profile();
  a.atan_build = 0;
  PlatformProfile b = a;
  b.atan_build = 1;
  PlatformProfile c = a;
  c.atan_build = 2;
  EXPECT_NE(math_js_fingerprint(a), math_js_fingerprint(b));
  EXPECT_NE(math_js_fingerprint(a), math_js_fingerprint(c));
  EXPECT_NE(math_js_fingerprint(b), math_js_fingerprint(c));
}

TEST(MathJsTest, AudioMathInvisibleToMathJs) {
  // The paper's Table 5 asymmetry: audio-stack libm differences must NOT
  // show in the Math JS fingerprint (the JS engine ships its own math).
  PlatformProfile a = base_profile();
  a.audio.math = dsp::MathVariant::kPrecise;
  PlatformProfile b = a;
  b.audio.math = dsp::MathVariant::kTable;
  EXPECT_EQ(math_js_fingerprint(a), math_js_fingerprint(b));
}

TEST(MathJsTest, BatteryValuesAreFinite) {
  for (const auto variant :
       {dsp::MathVariant::kPrecise, dsp::MathVariant::kFdlibm}) {
    PlatformProfile p = base_profile();
    p.js_math = variant;
    for (const double v : math_js_battery(p)) {
      EXPECT_TRUE(std::isfinite(v)) << to_string(variant);
    }
  }
}

}  // namespace
}  // namespace wafp::platform
