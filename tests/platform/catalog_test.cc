#include "platform/catalog.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "platform/population.h"

namespace wafp::platform {
namespace {

/// One shared 2093-user population (matching the study size) for the
/// distribution checks.
const Population& test_population() {
  static const DeviceCatalog catalog;
  static const Population population(catalog, 2093, 777);
  return population;
}

TEST(CatalogTest, OsMarginalsMatchPaper) {
  std::map<OsFamily, int> counts;
  for (const auto& u : test_population().users()) ++counts[u.profile.os];
  const double n = 2093.0;
  // Paper §2.3: Windows 78.5%, macOS 9.4%, Android 6.9%, Linux 5.2%.
  EXPECT_NEAR(counts[OsFamily::kWindows] / n, 0.785, 0.03);
  EXPECT_NEAR(counts[OsFamily::kMacOs] / n, 0.094, 0.02);
  EXPECT_NEAR(counts[OsFamily::kAndroid] / n, 0.069, 0.02);
  EXPECT_NEAR(counts[OsFamily::kLinux] / n, 0.052, 0.02);
}

TEST(CatalogTest, FirefoxShareMatchesPaper) {
  int firefox = 0;
  for (const auto& u : test_population().users()) {
    if (u.profile.browser == BrowserFamily::kFirefox) ++firefox;
  }
  // Paper §2.3: 9.6% Firefox, rest Chromium-family.
  EXPECT_NEAR(firefox / 2093.0, 0.096, 0.03);
}

TEST(CatalogTest, EngineConsistentWithBrowser) {
  for (const auto& u : test_population().users()) {
    if (u.profile.browser == BrowserFamily::kFirefox) {
      EXPECT_EQ(u.profile.engine, BrowserEngine::kGecko);
      EXPECT_EQ(u.profile.audio.fft, dsp::FftVariant::kSplitRadix);
    } else {
      EXPECT_EQ(u.profile.engine, BrowserEngine::kBlink);
    }
  }
}

TEST(CatalogTest, BrowserOsCombinationsAreRealistic) {
  for (const auto& u : test_population().users()) {
    const auto& p = u.profile;
    if (p.browser == BrowserFamily::kSamsungInternet ||
        p.browser == BrowserFamily::kSilk) {
      EXPECT_EQ(p.os, OsFamily::kAndroid);
    }
    if (p.browser == BrowserFamily::kYandex) {
      EXPECT_EQ(p.os, OsFamily::kWindows);
    }
    if (p.os == OsFamily::kAndroid) {
      EXPECT_FALSE(p.device_model.empty());
    } else {
      EXPECT_TRUE(p.device_model.empty());
    }
  }
}

TEST(CatalogTest, CountryPoolIsWide) {
  std::map<std::string, int> countries;
  for (const auto& u : test_population().users()) {
    ++countries[u.profile.country];
  }
  // Paper: 57 countries; US, India, Brazil, Italy each >= 100 participants.
  EXPECT_GE(countries.size(), 40u);
  EXPECT_GE(countries["US"], 100);
  EXPECT_GE(countries["IN"], 100);
  EXPECT_GE(countries["BR"], 100);
  EXPECT_GE(countries["IT"], 100);
}

TEST(CatalogTest, UserAgentsAreWellFormed) {
  for (const auto& u : test_population().users()) {
    const std::string ua = u.profile.user_agent();
    EXPECT_TRUE(ua.starts_with("Mozilla/5.0 (")) << ua;
    if (u.profile.engine == BrowserEngine::kGecko) {
      EXPECT_NE(ua.find("Firefox/"), std::string::npos) << ua;
    } else {
      EXPECT_NE(ua.find("AppleWebKit/537.36"), std::string::npos) << ua;
    }
  }
}

TEST(CatalogTest, DeterministicForSameSeed) {
  const DeviceCatalog catalog;
  const Population a(catalog, 50, 42);
  const Population b(catalog, 50, 42);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.user(i).profile.user_agent(), b.user(i).profile.user_agent());
    EXPECT_EQ(a.user(i).profile.audio.class_key(),
              b.user(i).profile.audio.class_key());
    EXPECT_EQ(a.user(i).seed, b.user(i).seed);
  }
}

TEST(CatalogTest, DifferentSeedsDiffer) {
  const DeviceCatalog catalog;
  const Population a(catalog, 50, 1);
  const Population b(catalog, 50, 2);
  int identical = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    if (a.user(i).profile.user_agent() == b.user(i).profile.user_agent()) {
      ++identical;
    }
  }
  EXPECT_LT(identical, 40);
}

TEST(CatalogTest, FicklenessMixtureHasThreeModes) {
  int stable = 0, low = 0, high = 0;
  for (const auto& u : test_population().users()) {
    const double f = u.profile.fickle.flakiness;
    if (f == 0.0) ++stable;
    else if (f < 0.2) ++low;
    else ++high;
  }
  EXPECT_NEAR(stable / 2093.0, 0.33, 0.05);
  EXPECT_GT(low, high);
  EXPECT_GT(high, 5);       // the heavy tail exists
  EXPECT_LT(high / 2093.0, 0.05);  // ... but is small
}

TEST(CatalogTest, WindowsChromeMainstreamSharesOneDcClass) {
  // Paper Table 5: 393 Windows/Chrome users -> one DC fingerprint. The
  // DC-visible part of the stack must be near-constant for mainstream
  // Windows Chrome.
  std::map<std::string, int> dc_keys;
  for (const auto& u : test_population().users()) {
    const auto& p = u.profile;
    if (p.os != OsFamily::kWindows || p.browser != BrowserFamily::kChrome) {
      continue;
    }
    // DC-visible knobs only (no FFT/twiddle/analyser fields).
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s|%d|%d|%.17g|%.17g|%.17g",
                  std::string(dsp::to_string(p.audio.math)).c_str(),
                  static_cast<int>(p.audio.denormal),
                  p.audio.fma_contraction ? 1 : 0,
                  p.audio.compressor.release_zone2,
                  p.audio.compressor.release_zone3,
                  p.audio.compressor.metering_release_seconds);
    ++dc_keys[buf];
  }
  // The dominant class holds the vast majority (legacy builds are the only
  // exception).
  int max_count = 0, total = 0;
  for (const auto& [key, count] : dc_keys) {
    max_count = std::max(max_count, count);
    total += count;
  }
  EXPECT_GT(max_count, total * 9 / 10);
}

TEST(CatalogTest, SimdTierIndependentOfBrowserVersion) {
  // The tier is a CPU property: within one browser version users must span
  // several tiers (this is what lets one UA cover many audio clusters).
  std::map<std::string, std::set<int>> tiers_by_version;
  for (const auto& u : test_population().users()) {
    const auto& p = u.profile;
    if (p.os == OsFamily::kWindows && p.browser == BrowserFamily::kChrome) {
      tiers_by_version[p.browser_version].insert(p.simd_tier);
    }
  }
  std::size_t multi_tier_versions = 0;
  for (const auto& [version, tiers] : tiers_by_version) {
    if (tiers.size() > 1) ++multi_tier_versions;
  }
  EXPECT_GE(multi_tier_versions, 3u);
}

TEST(CatalogTest, SimdBackedMathVariantsAppearOnLinuxBlinkOnly) {
  // DESIGN.md §3g: Linux Blink routes audio transcendentals through the
  // runtime-dispatched batch kernels, so the CPU tier picks the numeric
  // scheme — tier>=2 the fma scheme, tier 1 the Estrin scheme, tier 0 the
  // classic table kernels. A larger population than the study's 2093 makes
  // the rare tier-1 x86 Linux slice (~5% of ~5%) reliably non-empty.
  const DeviceCatalog catalog;
  const Population population(catalog, 8000, 123);
  std::size_t sse2 = 0;
  std::size_t avx2 = 0;
  for (const auto& u : population.users()) {
    const auto& p = u.profile;
    const bool simd_math = p.audio.math == dsp::MathVariant::kSimdSse2 ||
                           p.audio.math == dsp::MathVariant::kSimdAvx2;
    if (p.os == OsFamily::kLinux && p.engine == BrowserEngine::kBlink) {
      if (p.simd_tier >= 2) {
        EXPECT_EQ(p.audio.math, dsp::MathVariant::kSimdAvx2);
        ++avx2;
      } else if (p.simd_tier == 1) {
        EXPECT_EQ(p.audio.math, dsp::MathVariant::kSimdSse2);
        ++sse2;
      } else {
        EXPECT_EQ(p.audio.math, dsp::MathVariant::kTable);
      }
    } else {
      EXPECT_FALSE(simd_math)
          << to_string(p.os) << "/" << to_string(p.engine)
          << " carries a SIMD math variant";
    }
  }
  EXPECT_GT(avx2, 0u);
  EXPECT_GT(sse2, 0u);
}

TEST(CatalogTest, JsMathFollowsEngineNotOs) {
  for (const auto& u : test_population().users()) {
    if (u.profile.engine == BrowserEngine::kBlink) {
      EXPECT_EQ(u.profile.js_math, dsp::MathVariant::kPrecise);
    } else {
      EXPECT_EQ(u.profile.js_math, dsp::MathVariant::kFdlibm);
    }
  }
}

TEST(AudioStackTest, ClassKeyDistinguishesEveryKnob) {
  AudioStack base;
  const std::string base_key = base.class_key();

  AudioStack m = base;
  m.math = dsp::MathVariant::kTable;
  EXPECT_NE(m.class_key(), base_key);

  AudioStack f = base;
  f.fft = dsp::FftVariant::kBluestein;
  EXPECT_NE(f.class_key(), base_key);

  AudioStack t = base;
  t.twiddle = dsp::TwiddleMode::kRecurrence;
  EXPECT_NE(t.class_key(), base_key);

  AudioStack d = base;
  d.denormal = dsp::DenormalPolicy::kFlushToZero;
  EXPECT_NE(d.class_key(), base_key);

  AudioStack fm = base;
  fm.fma_contraction = true;
  EXPECT_NE(fm.class_key(), base_key);

  AudioStack c = base;
  c.compressor.release_zone4 += 0.01;
  EXPECT_NE(c.class_key(), base_key);

  AudioStack a = base;
  a.analyser.blackman_alpha = 0.158;
  EXPECT_NE(a.class_key(), base_key);

  AudioStack copy = base;
  EXPECT_EQ(copy.class_key(), base_key);
}

}  // namespace
}  // namespace wafp::platform
