// RenderService behavior: bit-identical parity with direct RenderCache
// renders across worker counts, deterministic cross-request coalescing,
// kQueueFull backpressure, ticket accounting, slab recycling, and the
// wafp_serve_* instrument wiring.
#include "serve/render_service.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fingerprint/vector.h"
#include "platform/catalog.h"
#include "util/rng.h"

namespace wafp::serve {
namespace {

using fingerprint::AudioFingerprintVector;
using fingerprint::RenderCache;
using fingerprint::VectorId;
using fingerprint::audio_vector;
using fingerprint::audio_vector_ids;

platform::PlatformProfile profile_with_math(dsp::MathVariant math) {
  const platform::DeviceCatalog catalog;
  util::Rng rng(29);
  platform::PlatformProfile p = catalog.sample_profile(rng);
  p.audio = {};
  p.audio.math = math;
  return p;
}

TEST(RenderServiceTest, ServedDigestsMatchDirectRendersAcrossWorkerCounts) {
  const auto a = profile_with_math(dsp::MathVariant::kPrecise);
  const auto b = profile_with_math(dsp::MathVariant::kTable);
  RenderCache direct_cache;

  for (const std::size_t workers : {1u, 2u, 8u}) {
    RenderCache cache;
    RenderServiceConfig config;
    config.workers = workers;
    RenderService service(cache, config);
    for (const VectorId id : audio_vector_ids()) {
      const AudioFingerprintVector& vec = audio_vector(id);
      for (const auto* p : {&a, &b}) {
        for (const std::uint32_t jitter : {0u, 3u}) {
          EXPECT_EQ(service.render(vec, *p, jitter),
                    direct_cache.get(vec, *p, jitter))
              << "workers=" << workers << " vector=" << vec.name()
              << " jitter=" << jitter;
        }
      }
    }
    service.stop();
  }
}

TEST(RenderServiceTest, DuplicateSubmissionsCoalesceOntoOneTask) {
  RenderCache cache;
  RenderServiceConfig config;
  config.start_workers = false;  // admit everything first: deterministic
  RenderService service(cache, config);
  const auto p = profile_with_math(dsp::MathVariant::kPrecise);
  const AudioFingerprintVector& vec = audio_vector(VectorId::kDc);

  std::vector<RenderService::Ticket> tickets(5);
  for (auto& ticket : tickets) {
    ASSERT_EQ(service.submit(vec, p, 0, ticket), Admit::kAccepted);
    ASSERT_TRUE(ticket.valid());
  }
  EXPECT_EQ(service.queue_depth(), 1u);

  ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.classes, 1u);
  EXPECT_EQ(stats.coalesced, 4u);
  EXPECT_DOUBLE_EQ(stats.coalesce_ratio(), 5.0);

  service.start();
  RenderCache direct_cache;
  const util::Digest expected = direct_cache.get(vec, p, 0);
  for (auto& ticket : tickets) {
    EXPECT_EQ(service.wait(ticket), expected);
    EXPECT_FALSE(ticket.valid());  // wait() consumes the ticket
  }
  stats = service.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(cache.misses(), 1u);  // one render served all five requests
}

TEST(RenderServiceTest, DistinctClassesDoNotCoalesce) {
  RenderCache cache;
  RenderServiceConfig config;
  config.start_workers = false;
  RenderService service(cache, config);
  const auto p = profile_with_math(dsp::MathVariant::kPrecise);

  RenderService::Ticket t0;
  RenderService::Ticket t1;
  ASSERT_EQ(service.submit(audio_vector(VectorId::kDc), p, 0, t0),
            Admit::kAccepted);
  ASSERT_EQ(service.submit(audio_vector(VectorId::kFft), p, 0, t1),
            Admit::kAccepted);
  EXPECT_EQ(service.queue_depth(), 2u);
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.classes, 2u);
  EXPECT_EQ(stats.coalesced, 0u);

  service.start();
  EXPECT_NE(service.wait(t0), service.wait(t1));
}

TEST(RenderServiceTest, FullQueueRejectsWithBackpressure) {
  RenderCache cache;
  RenderServiceConfig config;
  config.start_workers = false;
  config.queue_capacity = 1;
  RenderService service(cache, config);
  const auto p = profile_with_math(dsp::MathVariant::kPrecise);
  const AudioFingerprintVector& vec = audio_vector(VectorId::kDc);

  RenderService::Ticket first;
  ASSERT_EQ(service.submit(vec, p, 0, first), Admit::kAccepted);

  // A duplicate of the queued class still coalesces — it adds no work.
  RenderService::Ticket dup;
  EXPECT_EQ(service.submit(vec, p, 0, dup), Admit::kAccepted);

  // A new class exceeds the bound and is pushed back on the caller.
  RenderService::Ticket overflow;
  EXPECT_EQ(service.submit(vec, p, 1, overflow), Admit::kQueueFull);
  EXPECT_FALSE(overflow.valid());
  EXPECT_EQ(service.stats().rejected_queue_full, 1u);

  // Once a worker drains the queue, the resubmit is admitted.
  service.start();
  (void)service.wait(first);
  (void)service.wait(dup);
  EXPECT_EQ(service.render(vec, p, 1), RenderCache().get(vec, p, 1));
}

TEST(RenderServiceTest, StopDrainsEveryAdmittedTask) {
  RenderCache cache;
  RenderServiceConfig config;
  config.start_workers = false;
  RenderService service(cache, config);
  const auto p = profile_with_math(dsp::MathVariant::kPrecise);

  std::vector<RenderService::Ticket> tickets(audio_vector_ids().size());
  std::size_t i = 0;
  for (const VectorId id : audio_vector_ids()) {
    ASSERT_EQ(service.submit(audio_vector(id), p, 0, tickets[i++]),
              Admit::kAccepted);
  }
  service.start();
  service.stop();  // must not return before the queue is drained
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.stats().completed, tickets.size());
  for (auto& ticket : tickets) (void)service.wait(ticket);  // all done
}

TEST(RenderServiceTest, TaskSlotsRecycleThroughTheSlabPool) {
  RenderCache cache;
  RenderServiceConfig config;
  config.workers = 1;
  RenderService service(cache, config);
  const auto p = profile_with_math(dsp::MathVariant::kPrecise);
  const AudioFingerprintVector& vec = audio_vector(VectorId::kDc);

  // Serial render() keeps at most one task in flight, so hundreds of
  // requests must fit in the very first slab.
  for (std::uint32_t i = 0; i < 300; ++i) {
    (void)service.render(vec, p, i % 4);
  }
  EXPECT_EQ(service.slab_builds(), 1u);
}

TEST(RenderServiceTest, ConcurrentRendersStayBitIdenticalUnderContention) {
  RenderCache cache;
  RenderServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 2;  // small bound: exercise backpressure waits
  config.max_batch = 2;
  RenderService service(cache, config);
  const auto p = profile_with_math(dsp::MathVariant::kPrecise);

  RenderCache direct_cache;
  std::vector<util::Digest> expected;
  for (const VectorId id : audio_vector_ids()) {
    expected.push_back(direct_cache.get(audio_vector(id), p, 1));
  }

  constexpr std::size_t kThreads = 8;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        std::size_t i = 0;
        for (const VectorId id : audio_vector_ids()) {
          if (service.render(audio_vector(id), p, 1) != expected[i++]) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
  // 8 callers x 3 rounds of the same classes: one render each, the rest
  // coalesced or cache hits.
  EXPECT_EQ(cache.misses(), audio_vector_ids().size());
}

TEST(RenderServiceTest, StartAndStopAreIdempotentAndRestartable) {
  RenderCache cache;
  RenderService service(cache, {});
  const auto p = profile_with_math(dsp::MathVariant::kPrecise);
  const AudioFingerprintVector& vec = audio_vector(VectorId::kDc);

  service.start();  // already running: no-op
  EXPECT_EQ(service.render(vec, p, 0), RenderCache().get(vec, p, 0));
  service.stop();
  service.stop();  // already stopped: no-op
  service.start();  // restart serves again
  EXPECT_EQ(service.render(vec, p, 2), RenderCache().get(vec, p, 2));
}

TEST(RenderServiceTest, InstrumentsMirrorStats) {
  obs::MetricsRegistry registry;
  RenderCache cache(&registry);
  RenderServiceConfig config;
  config.start_workers = false;
  config.metrics = &registry;
  RenderService service(cache, config);
  const auto p = profile_with_math(dsp::MathVariant::kPrecise);
  const AudioFingerprintVector& vec = audio_vector(VectorId::kDc);

  std::vector<RenderService::Ticket> tickets(4);
  for (auto& ticket : tickets) {
    ASSERT_EQ(service.submit(vec, p, 0, ticket), Admit::kAccepted);
  }
  EXPECT_EQ(registry.counter("wafp_serve_requests_total").value(), 4u);
  EXPECT_EQ(registry.counter("wafp_serve_coalesced_total").value(), 3u);
  EXPECT_EQ(registry.counter("wafp_serve_classes_total").value(), 1u);
  EXPECT_EQ(registry.gauge("wafp_serve_queue_depth").value(), 1);

  service.start();
  for (auto& ticket : tickets) (void)service.wait(ticket);
  service.stop();

  EXPECT_EQ(registry.counter("wafp_serve_completed_total").value(), 1u);
  EXPECT_EQ(registry.gauge("wafp_serve_queue_depth").value(), 0);
  const auto joins =
      registry.histogram("wafp_serve_coalesced_per_class").snapshot();
  EXPECT_EQ(joins.count, 1u);  // one completed class...
  const auto batches = registry.histogram("wafp_serve_batch_size").snapshot();
  EXPECT_EQ(batches.count, 1u);  // ...rendered by one single-class batch
  const auto latency =
      registry.histogram("wafp_serve_request_ns").snapshot();
  EXPECT_EQ(latency.count, 1u);
}

}  // namespace
}  // namespace wafp::serve
