#include "serve/slab_pool.h"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

namespace wafp::serve {
namespace {

struct Slot {
  int value = 0;
  const char* tag = nullptr;
};

TEST(SlabPoolTest, AcquireHandsOutDistinctSlots) {
  SlabPool<Slot, 4> pool;
  std::unordered_set<Slot*> seen;
  std::vector<Slot*> held;
  for (int i = 0; i < 10; ++i) {
    Slot* slot = pool.acquire();
    EXPECT_TRUE(seen.insert(slot).second) << "slot handed out twice";
    held.push_back(slot);
  }
  EXPECT_EQ(pool.outstanding(), 10u);
  EXPECT_EQ(pool.slab_builds(), 3u);  // ceil(10 / 4)
  EXPECT_EQ(pool.capacity(), 12u);
  for (Slot* slot : held) pool.release(slot);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(SlabPoolTest, ReleaseResetsTheSlot) {
  SlabPool<Slot, 2> pool;
  Slot* slot = pool.acquire();
  slot->value = 42;
  slot->tag = "stale";
  pool.release(slot);
  // The recycled slot must come back value-initialized, never stale.
  Slot* again = pool.acquire();
  EXPECT_EQ(again, slot);  // LIFO free list recycles the hottest slot
  EXPECT_EQ(again->value, 0);
  EXPECT_EQ(again->tag, nullptr);
  pool.release(again);
}

TEST(SlabPoolTest, SteadyStateBuildsNoSlabs) {
  SlabPool<Slot, 8> pool;
  // Warm to a peak of 8 outstanding slots.
  std::vector<Slot*> held;
  for (int i = 0; i < 8; ++i) held.push_back(pool.acquire());
  for (Slot* slot : held) pool.release(slot);
  const std::uint64_t builds = pool.slab_builds();

  // Steady state: churn far more acquire/release cycles than the peak, at
  // or below the peak concurrency. No new slab may be built.
  for (int round = 0; round < 100; ++round) {
    held.clear();
    for (int i = 0; i < 8; ++i) held.push_back(pool.acquire());
    for (Slot* slot : held) pool.release(slot);
  }
  EXPECT_EQ(pool.slab_builds(), builds);
  EXPECT_EQ(pool.capacity(), 8u);
}

TEST(SlabPoolTest, PointersStayValidAcrossGrowth) {
  SlabPool<Slot, 2> pool;
  Slot* first = pool.acquire();
  first->value = 7;
  // Force several slab builds; the first slot must not move.
  std::vector<Slot*> more;
  for (int i = 0; i < 20; ++i) more.push_back(pool.acquire());
  EXPECT_EQ(first->value, 7);
  pool.release(first);
  for (Slot* slot : more) pool.release(slot);
}

}  // namespace
}  // namespace wafp::serve
