// Build-free audit for the serving path (extends the PR 6 render audit):
// once the service has rendered a request stream's classes, re-serving the
// same stream must build nothing — no FFT twiddle tables or scratch
// growth, no periodic-wave tables, no new cache entries, and no new task
// slabs. The counters are the proof; "should hit the caches" is not.
#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "fingerprint/vector.h"
#include "platform/catalog.h"
#include "serve/render_service.h"
#include "util/rng.h"
#include "webaudio/periodic_wave.h"

namespace wafp::serve {
namespace {

using fingerprint::VectorId;
using fingerprint::audio_vector;
using fingerprint::audio_vector_ids;

platform::PlatformProfile sampled_profile(std::uint64_t seed) {
  const platform::DeviceCatalog catalog;
  util::Rng rng(seed);
  return catalog.sample_profile(rng);
}

TEST(ServeSteadyStateTest, ReservingAWarmStreamBuildsNothing) {
  const platform::PlatformProfile a = sampled_profile(5);
  const platform::PlatformProfile b = sampled_profile(17);

  fingerprint::RenderCache cache;
  RenderServiceConfig config;
  config.workers = 2;
  RenderService service(cache, config);

  const auto serve_stream = [&] {
    for (const VectorId id : audio_vector_ids()) {
      for (const auto* p : {&a, &b}) {
        for (const std::uint32_t jitter : {0u, 1u}) {
          (void)service.render(audio_vector(id), *p, jitter);
        }
      }
    }
  };

  // Warm pass: builds whatever engine parts and task slabs the stream's
  // classes need.
  serve_stream();

  const dsp::FftCounters fft_before = dsp::fft_counters();
  const std::uint64_t waves_before = webaudio::periodic_wave_builds();
  const std::uint64_t slabs_before = service.slab_builds();
  const std::size_t misses_before = cache.misses();

  // Steady state: the identical stream again, twice for good measure.
  serve_stream();
  serve_stream();

  const dsp::FftCounters fft_after = dsp::fft_counters();
  EXPECT_EQ(fft_after.twiddle_builds, fft_before.twiddle_builds);
  EXPECT_EQ(fft_after.scratch_growths, fft_before.scratch_growths);
  EXPECT_EQ(webaudio::periodic_wave_builds(), waves_before);
  EXPECT_EQ(service.slab_builds(), slabs_before);
  EXPECT_EQ(cache.misses(), misses_before);  // zero renders happened at all
}

}  // namespace
}  // namespace wafp::serve
