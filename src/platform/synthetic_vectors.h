// Non-audio fingerprinting vectors used by the paper for comparison
// (Table 3) and for the additive-value analysis (§4): Canvas, JS-Font
// enumeration, User-Agent, and the Math JS battery from the follow-up study
// (Tables 4/5).
#pragma once

#include <vector>

#include "platform/profile.h"
#include "util/hash.h"

namespace wafp::platform {

/// SHA-256 of the User-Agent header string.
[[nodiscard]] util::Digest user_agent_fingerprint(
    const PlatformProfile& profile);

/// JS font-enumeration fingerprint: probes a fixed candidate list against
/// the profile's base font stack plus user-installed fonts, hashes the
/// detection bitmask (what fingerprintjs's font module effectively does).
[[nodiscard]] util::Digest fonts_fingerprint(const PlatformProfile& profile);

/// The candidate-by-candidate detection mask (exposed for tests/examples).
[[nodiscard]] std::vector<bool> detect_fonts(const PlatformProfile& profile);

/// Math JS battery (Saito et al. style): a fixed set of transcendental
/// evaluations through the platform's math library, plus atan computed via
/// the profile's atan-build identity. Returns the raw values.
[[nodiscard]] std::vector<double> math_js_battery(
    const PlatformProfile& profile);

/// SHA-256 of the battery values.
[[nodiscard]] util::Digest math_js_fingerprint(const PlatformProfile& profile);

}  // namespace wafp::platform
