#include "platform/synthetic_vectors.h"

#include <array>
#include <cmath>
#include <numbers>

namespace wafp::platform {
namespace {

/// Candidate list size for font probing (a superset of the lists real
/// scripts carry).
constexpr std::size_t kFontCandidates = 512;

/// Whether the base stack identified by `font_profile` ships candidate `i`.
/// Derived deterministically from the profile id; ~35% density like real
/// platform font sets.
bool base_stack_has_font(std::uint32_t font_profile, std::size_t i) {
  const std::uint64_t h = util::fnv1a64_mix(
      util::fnv1a64_mix(util::fnv1a64("base-font"), font_profile), i);
  return (h % 100) < 35;
}

}  // namespace

util::Digest user_agent_fingerprint(const PlatformProfile& profile) {
  return util::sha256(profile.user_agent());
}

std::vector<bool> detect_fonts(const PlatformProfile& profile) {
  std::vector<bool> detected(kFontCandidates, false);
  for (std::size_t i = 0; i < kFontCandidates; ++i) {
    detected[i] = base_stack_has_font(profile.font_profile, i);
  }
  for (const std::uint16_t extra : profile.extra_fonts) {
    if (extra < kFontCandidates) detected[extra] = true;
  }
  return detected;
}

util::Digest fonts_fingerprint(const PlatformProfile& profile) {
  const std::vector<bool> detected = detect_fonts(profile);
  std::vector<std::uint8_t> mask((kFontCandidates + 7) / 8, 0);
  for (std::size_t i = 0; i < detected.size(); ++i) {
    if (detected[i]) mask[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return util::sha256(std::span<const std::uint8_t>(mask));
}

std::vector<double> math_js_battery(const PlatformProfile& profile) {
  // The battery runs through the JS engine's math, not the audio libm.
  const auto math = dsp::make_math_library(profile.js_math);
  std::vector<double> values;
  values.reserve(40);

  // Transcendentals at the awkward arguments platform-probing scripts use.
  constexpr std::array kTrigArgs = {1.0e10, 123456.789, 0.5, 1.0,
                                    2.0 * std::numbers::pi * 1.0e5, -7.77};
  for (const double x : kTrigArgs) {
    values.push_back(math->sin(x));
    values.push_back(math->cos(x));
  }
  constexpr std::array kExpArgs = {100.0, -45.5, 0.0001, 1.0, 709.0 / 2.0};
  for (const double x : kExpArgs) {
    values.push_back(math->exp(x));
    values.push_back(math->expm1(x / 100.0));
  }
  constexpr std::array kLogArgs = {1.0e-5, 2.0, 10.0, 123456789.0};
  for (const double x : kLogArgs) {
    values.push_back(math->log(x));
    values.push_back(math->log10(x));
  }
  values.push_back(math->pow(std::numbers::pi, 100.1));
  values.push_back(math->pow(2.0, -100.3));
  values.push_back(math->tanh(0.7));
  values.push_back(math->tanh(3.3));
  values.push_back(math->sqrt(2.0));

  // atan through the build-specific identity — the knob that is visible to
  // Math JS probing but not to the audio path (Table 5's asymmetry).
  constexpr std::array kAtanArgs = {0.5, 2.2, 1.0e4, 0.0321};
  for (const double x : kAtanArgs) {
    double v = 0.0;
    switch (profile.atan_build) {
      case 0:
        v = math->atan(x);
        break;
      case 1:
        // pi/2 - atan(1/x) identity (valid for x > 0).
        v = std::numbers::pi / 2.0 - math->atan(1.0 / x);
        break;
      default:
        // Argument-halving identity.
        v = 2.0 * math->atan(x / (1.0 + math->sqrt(1.0 + x * x)));
        break;
    }
    values.push_back(v);
  }
  return values;
}

util::Digest math_js_fingerprint(const PlatformProfile& profile) {
  const std::vector<double> values = math_js_battery(profile);
  util::Sha256 hasher;
  hasher.update(std::span<const double>(values));
  return hasher.finish();
}

}  // namespace wafp::platform
