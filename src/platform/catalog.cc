#include "platform/catalog.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <string>

#include "util/hash.h"

namespace wafp::platform {
namespace {

using util::CategoricalSampler;
using util::Rng;

// ---------------------------------------------------------------------------
// Attribute pools. Values are period-appropriate (the study ran March-May
// 2021); exact strings only matter for UA/Canvas diversity, not semantics.
// ---------------------------------------------------------------------------

constexpr std::array kChromeVersions = {
    "90.0.4430.93",  "90.0.4430.85",  "89.0.4389.114", "89.0.4389.90",
    "89.0.4389.82",  "90.0.4430.72",  "88.0.4324.190", "88.0.4324.150",
    "88.0.4324.104", "87.0.4280.141", "87.0.4280.88",  "86.0.4240.198",
    "90.0.4430.91",  "89.0.4389.105", "88.0.4324.182", "87.0.4280.66",
    "86.0.4240.111", "85.0.4183.121", "84.0.4147.135", "83.0.4103.116",
    "81.0.4044.138", "80.0.3987.163", "90.0.4430.66",  "89.0.4389.72",
};

constexpr std::array kLegacyChromeVersions = {
    "79.0.3945.130", "78.0.3904.108", "77.0.3865.120", "76.0.3809.132",
    "75.0.3770.142", "74.0.3729.169", "72.0.3626.121", "70.0.3538.110",
    "68.0.3440.106", "65.0.3325.181", "63.0.3239.132", "60.0.3112.113",
    "55.0.2883.87",  "49.0.2623.112",
};

constexpr std::array kFirefoxVersions = {
    "87.0", "86.0", "88.0", "85.0", "78.0", "84.0",
    "86.0.1", "87.0.1", "82.0", "68.0",
};

constexpr std::array kSamsungVersions = {"13.2", "14.0", "12.1", "13.0",
                                         "11.2"};
constexpr std::array kSilkVersions = {"86.2.8", "85.3.6", "84.1.9"};

constexpr std::array kWindowsVersions = {"10.0", "6.1", "6.3"};
constexpr std::array kWindowsVersionWeights = {0.86, 0.08, 0.06};

constexpr std::array kMacVersions = {"10_15_7", "11_2_3", "11_3_1", "10_14_6",
                                     "11_4"};
constexpr std::array kMacVersionWeights = {0.40, 0.25, 0.18, 0.09, 0.08};

constexpr std::array kAndroidVersions = {"11", "10", "9", "8.1.0", "7.0"};
constexpr std::array kAndroidVersionWeights = {0.28, 0.36, 0.20, 0.10, 0.06};

constexpr std::array kAndroidDevices = {
    "SM-G973F",        "SM-A515F",      "SM-G991B",     "SM-A217F",
    "Redmi Note 8 Pro", "Redmi Note 9S", "M2102J20SG",   "Pixel 4a",
    "Pixel 5",         "moto g(8) power", "ONEPLUS A6013", "CPH2113",
    "SM-N975F",        "SM-A705FN",     "vivo 1904",    "RMX2193",
    "KFMUWI",          "KFTRWI",        "SM-T510",      "LM-K500",
    "HUAWEI P30",      "POCO X3",       "SM-M315F",     "Nokia 5.4",
};

constexpr std::array kWindowsGpus = {
    "ANGLE (Intel(R) UHD Graphics 620 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (Intel(R) HD Graphics 520 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (NVIDIA GeForce GTX 1050 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (NVIDIA GeForce GTX 1060 6GB Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (Intel(R) UHD Graphics 630 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (AMD Radeon(TM) Vega 8 Graphics Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (NVIDIA GeForce RTX 2060 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (Intel(R) HD Graphics 4000 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (AMD Radeon RX 580 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (Intel(R) HD Graphics 530 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (NVIDIA GeForce GTX 1650 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (Intel(R) HD Graphics 620 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (NVIDIA GeForce MX150 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (AMD Radeon(TM) R5 Graphics Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (NVIDIA GeForce GT 710 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (Intel(R) Iris(R) Xe Graphics Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (NVIDIA GeForce RTX 3070 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (AMD Radeon RX 5700 XT Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (Intel(R) HD Graphics 3000 Direct3D9Ex vs_3_0 ps_3_0)",
    "ANGLE (NVIDIA GeForce GTX 970 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (NVIDIA GeForce GTX 1080 Direct3D11 vs_5_0 ps_5_0)",
    "ANGLE (AMD Radeon(TM) Graphics Direct3D11 vs_5_0 ps_5_0)",
};

constexpr std::array kMacGpus = {
    "Intel Iris Plus Graphics 655",
    "Apple M1",
    "Intel UHD Graphics 630",
    "AMD Radeon Pro 5300M",
    "Intel Iris Plus Graphics 640",
    "AMD Radeon Pro 560X",
    "Intel HD Graphics 6000",
    "Apple M1 (8-core GPU)",
};

constexpr std::array kAndroidGpus = {
    "Adreno (TM) 640",  "Adreno (TM) 618", "Mali-G72 MP3",  "Adreno (TM) 612",
    "Mali-G76 MC4",     "Adreno (TM) 650", "Mali-G52 MC2",  "Adreno (TM) 506",
    "Mali-T830",        "Adreno (TM) 530", "PowerVR GE8320", "Mali-G77 MC9",
    "Adreno (TM) 610",  "Mali-G71 MP2",   "Adreno (TM) 540", "PowerVR GE8100",
    "Adreno (TM) 630",  "Mali-G57 MC3",
};

constexpr std::array kLinuxGpus = {
    "Mesa Intel(R) UHD Graphics 620 (KBL GT2)",
    "Mesa Intel(R) HD Graphics 520 (SKL GT2)",
    "Mesa DRI Intel(R) Haswell Mobile",
    "NVIDIA GeForce GTX 1050/PCIe/SSE2",
    "AMD RENOIR (DRM 3.40.0)",
    "Mesa Intel(R) Xe Graphics (TGL GT2)",
    "llvmpipe (LLVM 11.0.0, 256 bits)",
    "NVIDIA GeForce GTX 1650/PCIe/SSE2",
    "AMD Radeon RX 570 Series",
};

constexpr std::array kTopCountries = {"US", "IN", "BR", "IT"};
constexpr std::array kTopCountryWeights = {0.30, 0.20, 0.085, 0.075};
constexpr std::array kTailCountries = {
    "GB", "CA", "DE", "FR", "ES", "PT", "MX", "AR", "CO", "CL", "PE", "VE",
    "NL", "BE", "PL", "RO", "GR", "TR", "RU", "UA", "RS", "HU", "CZ", "SE",
    "NO", "FI", "DK", "IE", "AU", "NZ", "JP", "KR", "PH", "ID", "MY", "SG",
    "TH", "VN", "BD", "PK", "LK", "NP", "AE", "SA", "IL", "EG", "NG", "KE",
    "ZA", "MA", "GH", "TN", "JM",
};

/// Per-OS browser mix; Firefox marginal lands near the paper's 9.6%.
CategoricalSampler browser_sampler(OsFamily os) {
  switch (os) {
    case OsFamily::kWindows: {
      constexpr std::array w = {0.72, 0.13, 0.092, 0.043, 0.015};
      return CategoricalSampler(w);
    }
    case OsFamily::kMacOs: {
      constexpr std::array w = {0.80, 0.03, 0.13, 0.04, 0.0};
      return CategoricalSampler(w);
    }
    case OsFamily::kAndroid: {
      constexpr std::array w = {0.73, 0.0, 0.04, 0.02, 0.0, 0.19, 0.02};
      return CategoricalSampler(w);
    }
    case OsFamily::kLinux: {
      constexpr std::array w = {0.73, 0.0, 0.27};
      return CategoricalSampler(w);
    }
  }
  constexpr std::array w = {1.0};
  return CategoricalSampler(w);
}

BrowserFamily browser_from_index(OsFamily os, std::size_t idx) {
  // Index layout must match browser_sampler's weight ordering.
  static constexpr std::array<BrowserFamily, 7> kOrder = {
      BrowserFamily::kChrome,          BrowserFamily::kEdge,
      BrowserFamily::kFirefox,         BrowserFamily::kOpera,
      BrowserFamily::kYandex,          BrowserFamily::kSamsungInternet,
      BrowserFamily::kSilk,
  };
  (void)os;
  return kOrder[idx];
}

}  // namespace

DeviceCatalog::DeviceCatalog(CatalogTuning tuning)
    : tuning_(tuning),
      version_zipf_(kChromeVersions.size(), tuning.version_zipf_exponent),
      font_zipf_(tuning.font_pool_size, tuning.font_zipf_exponent),
      country_tail_zipf_(kTailCountries.size(), 1.1) {}

PlatformProfile DeviceCatalog::sample_profile(Rng& rng) const {
  PlatformProfile p;
  sample_identity(p, rng);

  // Out-of-date builds are far more common on Android (OEM builds lag
  // badly) than on auto-updating desktop Chrome — this is the source of
  // the paper's long tail of rare fingerprints while Windows/Chrome stays
  // a single DC class (Table 5).
  double legacy_rate = tuning_.legacy_build_rate;
  switch (p.os) {
    case OsFamily::kWindows: legacy_rate *= 0.35; break;
    case OsFamily::kMacOs: legacy_rate *= 2.0; break;
    case OsFamily::kAndroid: legacy_rate *= 5.0; break;
    case OsFamily::kLinux: legacy_rate *= 1.8; break;
  }
  const bool legacy =
      rng.next_bool(legacy_rate) && p.engine == BrowserEngine::kBlink;
  std::size_t version_index = 0;
  // Browser version string.
  switch (p.browser) {
    case BrowserFamily::kFirefox:
      version_index = std::min<std::size_t>(
          version_zipf_.sample(rng), kFirefoxVersions.size() - 1);
      p.browser_version = kFirefoxVersions[version_index];
      break;
    case BrowserFamily::kSamsungInternet:
      version_index = rng.next_below(kSamsungVersions.size());
      p.browser_version = kSamsungVersions[version_index];
      break;
    case BrowserFamily::kSilk:
      version_index = rng.next_below(kSilkVersions.size());
      p.browser_version = kSilkVersions[version_index];
      break;
    default:
      if (legacy) {
        version_index = rng.next_below(kLegacyChromeVersions.size());
        p.browser_version = kLegacyChromeVersions[version_index];
      } else {
        version_index = version_zipf_.sample(rng);
        p.browser_version = kChromeVersions[version_index];
      }
      break;
  }

  assign_audio_stack(p, rng, legacy, version_index);
  sample_graphics(p, rng);
  sample_fonts(p, rng);
  sample_fickleness(p, rng);
  sample_country(p, rng);
  return p;
}

void DeviceCatalog::sample_identity(PlatformProfile& p, Rng& rng) const {
  constexpr std::array kOsWeights = {0.785, 0.094, 0.069, 0.052};
  static const CategoricalSampler os_sampler{kOsWeights};
  p.os = static_cast<OsFamily>(os_sampler.sample(rng));

  const CategoricalSampler browsers = browser_sampler(p.os);
  p.browser = browser_from_index(p.os, browsers.sample(rng));
  p.engine = p.browser == BrowserFamily::kFirefox ? BrowserEngine::kGecko
                                                  : BrowserEngine::kBlink;

  switch (p.os) {
    case OsFamily::kWindows: {
      p.arch = rng.next_bool(0.97) ? CpuArch::kX86_64 : CpuArch::kArm64;
      static const CategoricalSampler vs{kWindowsVersionWeights};
      p.os_version = kWindowsVersions[vs.sample(rng)];
      break;
    }
    case OsFamily::kMacOs: {
      p.arch = rng.next_bool(0.55) ? CpuArch::kArm64 : CpuArch::kX86_64;
      static const CategoricalSampler vs{kMacVersionWeights};
      p.os_version = kMacVersions[vs.sample(rng)];
      break;
    }
    case OsFamily::kAndroid: {
      p.arch = rng.next_bool(0.85) ? CpuArch::kArm64 : CpuArch::kArm32;
      static const CategoricalSampler vs{kAndroidVersionWeights};
      p.os_version = kAndroidVersions[vs.sample(rng)];
      p.device_model = kAndroidDevices[util::ZipfSampler(
          kAndroidDevices.size(), tuning_.device_zipf_exponent)
                                           .sample(rng)];
      break;
    }
    case OsFamily::kLinux: {
      p.arch = CpuArch::kX86_64;
      p.os_version = "x86_64";
      break;
    }
  }
}

void DeviceCatalog::assign_audio_stack(PlatformProfile& p, Rng& rng,
                                       bool legacy,
                                       std::size_t version_index) const {
  AudioStack& a = p.audio;

  // --- Math library generation: engine + OS + OS release era. -------------
  if (p.engine == BrowserEngine::kGecko) {
    a.math = dsp::MathVariant::kFdlibm;
  } else {
    switch (p.os) {
      case OsFamily::kWindows:
        a.math = dsp::MathVariant::kPrecise;
        break;
      case OsFamily::kMacOs:
        // Apple's libm generation tracks the OS release.
        a.math = p.os_version.starts_with("10_")
                     ? dsp::MathVariant::kFdlibmLegacy
                     : dsp::MathVariant::kVectorized;
        break;
      case OsFamily::kAndroid:
        // Bionic kernels trimmed on pre-10 releases.
        a.math = (p.os_version == "9" || p.os_version == "8.1.0" ||
                  p.os_version == "7.0")
                     ? dsp::MathVariant::kFastPolyTrim
                     : dsp::MathVariant::kFastPoly;
        break;
      case OsFamily::kLinux:
        a.math = dsp::MathVariant::kTable;
        break;
    }
  }

  // --- FMA contraction: a build property of the browser binary. -----------
  switch (p.os) {
    case OsFamily::kWindows:
      a.fma_contraction = false;  // baseline x86-64 build
      break;
    case OsFamily::kMacOs:
    case OsFamily::kAndroid:
      a.fma_contraction = p.arch == CpuArch::kArm64;
      break;
    case OsFamily::kLinux:
      a.fma_contraction = true;
      break;
  }

  // --- Denormal policy of the render thread. ------------------------------
  switch (p.os) {
    case OsFamily::kWindows:
      a.denormal = dsp::DenormalPolicy::kFlushToZero;
      break;
    case OsFamily::kMacOs:
      a.denormal = p.arch == CpuArch::kX86_64
                       ? dsp::DenormalPolicy::kFlushToZero
                       : dsp::DenormalPolicy::kPreserve;
      break;
    case OsFamily::kAndroid:
      // Vendor kernels differ on arm64; arm32 builds never flush.
      a.denormal = (p.arch == CpuArch::kArm64 && rng.next_bool(0.3))
                       ? dsp::DenormalPolicy::kFlushToZero
                       : dsp::DenormalPolicy::kPreserve;
      break;
    case OsFamily::kLinux:
      a.denormal = dsp::DenormalPolicy::kFlushToZero;
      break;
  }

  // --- SIMD tier of the user's CPU (runtime property, not a build
  // property): real analyser FFTs dispatch on CPU features, so users with
  // identical browsers diverge here. x86 spans baseline SSE2 up to AVX2;
  // 64-bit ARM has two ASIMD generations; 32-bit ARM has one NEON path.
  switch (p.arch) {
    case CpuArch::kX86_64: {
      // Heavily skewed: most consumer CPUs land on the common AVX2 path.
      const double r = rng.next_double();
      p.simd_tier = r < 0.02 ? 0 : (r < 0.07 ? 1 : (r < 0.93 ? 2 : 3));
      break;
    }
    case CpuArch::kArm64:
      p.simd_tier = rng.next_bool(0.88) ? 2 : 1;
      break;
    case CpuArch::kArm32:
      p.simd_tier = 0;
      break;
  }

  // --- SIMD-dispatched libm (DESIGN.md §3g): Linux Blink builds route the
  // audio transcendentals through runtime-dispatched batch kernels, so the
  // *user's CPU tier* — not the build — picks the numeric scheme. This
  // splits otherwise identical Linux/Chrome builds into per-tier audio
  // classes, while tier-0 hosts keep the classic table-driven kernels.
  if (p.os == OsFamily::kLinux && p.engine == BrowserEngine::kBlink) {
    a.math = p.simd_tier >= 2   ? dsp::MathVariant::kSimdAvx2
             : p.simd_tier == 1 ? dsp::MathVariant::kSimdSse2
                                : dsp::MathVariant::kTable;
  }

  // --- FFT build: engine + runtime SIMD dispatch (analyser-visible only).
  if (p.engine == BrowserEngine::kGecko) {
    a.fft = dsp::FftVariant::kSplitRadix;
    a.twiddle = p.simd_tier >= 2 ? dsp::TwiddleMode::kRecurrence
                                 : dsp::TwiddleMode::kDirect;
  } else if (p.browser == BrowserFamily::kSilk ||
             p.browser == BrowserFamily::kYandex) {
    a.fft = dsp::FftVariant::kBluestein;
    a.twiddle = p.simd_tier >= 2 ? dsp::TwiddleMode::kRecurrence
                                 : dsp::TwiddleMode::kDirect;
  } else if (legacy) {
    static constexpr std::array<dsp::FftVariant, 5> kLegacyFfts = {
        dsp::FftVariant::kRadix2, dsp::FftVariant::kRadix4,
        dsp::FftVariant::kBluestein, dsp::FftVariant::kRadix2,
        dsp::FftVariant::kRadix4};
    const std::size_t slot = rng.next_below(tuning_.legacy_fft_pool);
    a.fft = kLegacyFfts[slot % kLegacyFfts.size()];
    a.twiddle = (slot / kLegacyFfts.size()) % 2 == 0
                    ? dsp::TwiddleMode::kRecurrence
                    : dsp::TwiddleMode::kDirect;
  } else {
    // Mainstream Blink: the dispatched kernel per tier.
    switch (p.simd_tier) {
      case 0:
        a.fft = dsp::FftVariant::kRadix2;
        a.twiddle = dsp::TwiddleMode::kDirect;
        break;
      case 1:
        a.fft = dsp::FftVariant::kRadix2;
        a.twiddle = dsp::TwiddleMode::kRecurrence;
        break;
      case 2:
        a.fft = dsp::FftVariant::kRadix4;
        a.twiddle = dsp::TwiddleMode::kDirect;
        break;
      default:
        a.fft = dsp::FftVariant::kRadix4;
        a.twiddle = dsp::TwiddleMode::kRecurrence;
        break;
    }
  }

  // --- Compressor tuning: engine/vendor base + legacy-era perturbations. --
  webaudio::CompressorTuning tuning;  // Blink default
  if (p.engine == BrowserEngine::kGecko) {
    tuning.makeup_exponent = 0.55;
    tuning.release_zone2 = 1.25;
    tuning.release_zone3 = 2.1;
  } else if (p.browser == BrowserFamily::kSamsungInternet) {
    tuning.release_zone4 = 3.24;
  } else if (p.browser == BrowserFamily::kYandex) {
    tuning.metering_release_seconds = 0.30;
  } else if (p.browser == BrowserFamily::kSilk) {
    tuning.pre_delay_seconds = 0.005;
  } else if (p.browser == BrowserFamily::kEdge) {
    tuning.release_zone3 = 2.01;  // vendor fork patch
  } else if (p.browser == BrowserFamily::kOpera) {
    tuning.metering_release_seconds = 0.318;
  }
  webaudio::AnalyserTuning analyser;  // spec defaults
  if (p.engine == BrowserEngine::kGecko) {
    analyser.smoothing = 0.79;  // Gecko's analyser pipeline differs
  } else if (version_index >= 18 && !legacy) {
    analyser.blackman_alpha = 0.158;  // older mainstream Blink era
  }
  if (legacy) {
    // Each legacy slot perturbs a distinct combination of kernel constants,
    // standing in for years of Chromium kernel revisions. Compressor
    // perturbations are DC-visible; window/smoothing perturbations are
    // analyser-visible; the zone-4 tweak only shows under deep compression
    // (AM/FM vectors).
    const std::size_t slot = rng.next_below(tuning_.legacy_tuning_pool);
    tuning.release_zone2 += 0.004 * static_cast<double>(slot % 7);
    tuning.metering_release_seconds +=
        0.002 * static_cast<double>((slot / 7) % 4);
    if (slot % 8 == 1) tuning.release_zone4 += 0.05;
    analyser.blackman_alpha += 0.0004 * static_cast<double>(slot % 6);
    analyser.smoothing += 0.0025 * static_cast<double>((slot / 6) % 4);
  }
  a.compressor = tuning;
  a.analyser = analyser;

  // --- JS-engine math (Math JS vector only; invisible to the audio
  // path). V8 ships its own OS-independent kernels, so every
  // Chromium-family browser lands on one Math JS fingerprint; SpiderMonkey
  // mixes its own kernels with system functions, giving Windows/Firefox
  // several builds (paper Table 5).
  p.atan_build = 0;
  if (p.engine == BrowserEngine::kBlink) {
    p.js_math = dsp::MathVariant::kPrecise;  // V8's single implementation
    if (rng.next_bool(0.02)) p.atan_build = 1;  // pre-standardization V8
  } else {
    p.js_math = dsp::MathVariant::kFdlibm;
    if (p.os == OsFamily::kWindows) {
      const double r = rng.next_double();
      p.atan_build = r < 0.60 ? 0 : (r < 0.85 ? 1 : 2);
    }
  }
}

void DeviceCatalog::sample_graphics(PlatformProfile& p, Rng& rng) const {
  const util::ZipfSampler gpu_zipf(
      [&] {
        switch (p.os) {
          case OsFamily::kWindows: return kWindowsGpus.size();
          case OsFamily::kMacOs: return kMacGpus.size();
          case OsFamily::kAndroid: return kAndroidGpus.size();
          case OsFamily::kLinux: return kLinuxGpus.size();
        }
        return std::size_t{1};
      }(),
      tuning_.gpu_zipf_exponent);
  const std::size_t gpu_idx = gpu_zipf.sample(rng);
  switch (p.os) {
    case OsFamily::kWindows: p.gpu_renderer = kWindowsGpus[gpu_idx]; break;
    case OsFamily::kMacOs: p.gpu_renderer = kMacGpus[gpu_idx]; break;
    case OsFamily::kAndroid: p.gpu_renderer = kAndroidGpus[gpu_idx]; break;
    case OsFamily::kLinux: p.gpu_renderer = kLinuxGpus[gpu_idx]; break;
  }

  static constexpr std::array<std::uint32_t, 5> kWinBuilds = {19042, 19041,
                                                              18363, 17763,
                                                              22000};
  switch (p.os) {
    case OsFamily::kWindows:
      p.os_build = kWinBuilds[std::min<std::size_t>(
          util::ZipfSampler(kWinBuilds.size(), 1.0).sample(rng),
          kWinBuilds.size() - 1)];
      break;
    default:
      p.os_build = static_cast<std::uint32_t>(
          util::fnv1a64(std::string(to_string(p.os)) + p.os_version) % 97);
      break;
  }

  // Driver AA/gamma quirk class: mostly determined by the GPU vendor, with
  // a rare per-device oddity.
  p.canvas_quirk = static_cast<std::uint32_t>(
      util::fnv1a64(p.gpu_renderer) % 4);
  if (rng.next_bool(0.01)) {
    p.canvas_quirk = 4 + static_cast<std::uint32_t>(rng.next_below(6));
  }
}

void DeviceCatalog::sample_fonts(PlatformProfile& p, Rng& rng) const {
  // Base stack: OS family + version + browser family + major version (the
  // browser ships and exposes its own font additions) + engine.
  const std::string major =
      p.browser_version.substr(0, p.browser_version.find('.'));
  std::uint64_t h = util::fnv1a64(to_string(p.os));
  h = util::fnv1a64_mix(h, util::fnv1a64(p.os_version));
  h = util::fnv1a64_mix(h, util::fnv1a64(to_string(p.browser)));
  h = util::fnv1a64_mix(h, util::fnv1a64(major));
  p.font_profile = static_cast<std::uint32_t>(h % 100000);
  if (p.engine == BrowserEngine::kGecko) p.font_profile += 1000000;

  p.extra_fonts.clear();
  if (rng.next_bool(tuning_.extra_font_rate)) {
    std::size_t count = 1;
    while (rng.next_bool(tuning_.extra_font_geometric_p) && count < 12) {
      ++count;
    }
    for (std::size_t i = 0; i < count; ++i) {
      p.extra_fonts.push_back(
          static_cast<std::uint16_t>(font_zipf_.sample(rng)));
    }
    std::sort(p.extra_fonts.begin(), p.extra_fonts.end());
    p.extra_fonts.erase(
        std::unique(p.extra_fonts.begin(), p.extra_fonts.end()),
        p.extra_fonts.end());
  }
}

void DeviceCatalog::sample_fickleness(PlatformProfile& p, Rng& rng) const {
  Fickleness& f = p.fickle;
  const double r = rng.next_double();
  if (r < tuning_.stable_user_share) {
    f.flakiness = 0.0;
    f.jitter_share = tuning_.low_flaky_jitter_share;
  } else if (r < tuning_.stable_user_share + tuning_.low_flaky_share) {
    f.flakiness = tuning_.low_flaky_min +
                  rng.next_double() *
                      (tuning_.low_flaky_max - tuning_.low_flaky_min);
    f.jitter_share = tuning_.low_flaky_jitter_share;
  } else {
    f.flakiness = tuning_.high_flaky_min +
                  rng.next_double() *
                      (tuning_.high_flaky_max - tuning_.high_flaky_min);
    f.jitter_share = tuning_.high_flaky_jitter_share;
  }
  // Mobile stacks fall into more distinct timing states.
  f.jitter_states = p.os == OsFamily::kAndroid
                        ? 4 + static_cast<std::uint32_t>(rng.next_below(5))
                        : 3 + static_cast<std::uint32_t>(rng.next_below(3));
}

void DeviceCatalog::sample_country(PlatformProfile& p, Rng& rng) const {
  double top_total = 0.0;
  for (const double w : kTopCountryWeights) top_total += w;
  if (rng.next_double() < top_total) {
    static const CategoricalSampler top{kTopCountryWeights};
    p.country = kTopCountries[top.sample(rng)];
  } else {
    p.country = kTailCountries[country_tail_zipf_.sample(rng)];
  }
}

}  // namespace wafp::platform
