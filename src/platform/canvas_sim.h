// Canvas-rendering simulation.
//
// The paper compares audio fingerprints against Canvas fingerprinting
// (Tables 2/3), which hashes the pixels of a rendered scene (text + shapes
// + gradients) whose exact bytes depend on the GPU/driver AA behaviour,
// gamma handling, font rasterization and browser engine. We cannot ship a
// full text/GPU rasterizer, so we render a small deterministic scene with a
// software rasterizer whose antialiasing pattern, gamma curve, rounding
// mode and glyph subpixel placement are driven by exactly those profile
// attributes — preserving the property that the fingerprint is a hash of
// rendered pixels with hardware/software-stack-dependent bits.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/profile.h"
#include "util/hash.h"

namespace wafp::platform {

inline constexpr std::size_t kCanvasWidth = 240;
inline constexpr std::size_t kCanvasHeight = 60;

/// Render the fingerprinting scene; returns RGBA8888, row-major.
[[nodiscard]] std::vector<std::uint8_t> render_canvas_scene(
    const PlatformProfile& profile);

/// SHA-256 of the rendered pixels (the Canvas fingerprint).
[[nodiscard]] util::Digest canvas_fingerprint(const PlatformProfile& profile);

}  // namespace wafp::platform
