// Population: the simulated participant pool — N users with deterministic
// per-user RNG streams (so iteration-level perturbation draws reproduce
// bit-for-bit across runs and across analysis binaries).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "platform/catalog.h"
#include "platform/profile.h"

namespace wafp::platform {

struct StudyUser {
  std::uint32_t id = 0;
  PlatformProfile profile;
  /// Root seed of this user's per-iteration randomness.
  std::uint64_t seed = 0;
};

class Population {
 public:
  /// Sample `size` users from the catalog, deterministically in `seed`.
  Population(const DeviceCatalog& catalog, std::size_t size,
             std::uint64_t seed);

  [[nodiscard]] std::span<const StudyUser> users() const { return users_; }
  [[nodiscard]] std::size_t size() const { return users_.size(); }
  [[nodiscard]] const StudyUser& user(std::size_t i) const {
    return users_[i];
  }

 private:
  std::vector<StudyUser> users_;
};

}  // namespace wafp::platform
