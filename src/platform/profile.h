// PlatformProfile: everything about one simulated participant's device that
// any fingerprinting vector can observe. This is the reproduction's
// substitute for the paper's 2093 real participants (§2.3): the catalog
// samples profiles whose attribute distributions match the study's
// marginals, and the audio-stack fields parameterize the from-scratch Web
// Audio engine exactly where real browsers differ.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dsp/denormal.h"
#include "dsp/fft.h"
#include "dsp/math_library.h"
#include "webaudio/engine_config.h"

namespace wafp::platform {

enum class OsFamily { kWindows, kMacOs, kAndroid, kLinux };
enum class BrowserFamily {
  kChrome,
  kFirefox,
  kEdge,
  kOpera,
  kSamsungInternet,
  kSilk,
  kYandex,
};
enum class BrowserEngine { kBlink, kGecko };
enum class CpuArch { kX86_64, kArm64, kArm32 };

[[nodiscard]] std::string_view to_string(OsFamily v);
[[nodiscard]] std::string_view to_string(BrowserFamily v);
[[nodiscard]] std::string_view to_string(BrowserEngine v);
[[nodiscard]] std::string_view to_string(CpuArch v);

/// The audio-visible build knobs (see DESIGN.md "substitutions"): these are
/// the only fields that can influence a rendered audio buffer, so two users
/// with equal AudioStack + jitter state produce bit-identical fingerprints.
struct AudioStack {
  dsp::MathVariant math = dsp::MathVariant::kPrecise;
  dsp::FftVariant fft = dsp::FftVariant::kRadix2;
  dsp::TwiddleMode twiddle = dsp::TwiddleMode::kDirect;
  webaudio::CompressorTuning compressor;
  webaudio::AnalyserTuning analyser;
  dsp::DenormalPolicy denormal = dsp::DenormalPolicy::kPreserve;
  bool fma_contraction = false;

  friend bool operator==(const AudioStack&, const AudioStack&) = default;

  /// Canonical serialization of every knob; used in exports and in tests
  /// asserting which vectors can see which knobs.
  [[nodiscard]] std::string class_key() const;

  /// FNV-1a over every knob's bit pattern: an allocation-free stand-in for
  /// hashing class_key(). The render cache pairs it with operator== on the
  /// full struct, so hash collisions cannot alias two distinct stacks.
  [[nodiscard]] std::uint64_t class_hash() const;
};

/// Per-user instability model (paper §3.1 "fickleness"); see
/// webaudio::RenderJitter for the mechanism.
struct Fickleness {
  /// Per-iteration probability scale of any perturbation event; 0 for the
  /// ~half of users whose 30 iterations are identical (Fig. 3).
  double flakiness = 0.0;
  /// How many distinct platform-determined jitter states this stack can
  /// fall into (shared across users of the same stack).
  std::uint32_t jitter_states = 3;
  /// Fraction of perturbation events that are recurring jitter states; the
  /// remainder are one-off chaotic glitches with unique digests.
  double jitter_share = 0.85;
};

struct PlatformProfile {
  // Identity / UA-visible.
  OsFamily os = OsFamily::kWindows;
  std::string os_version;
  BrowserFamily browser = BrowserFamily::kChrome;
  std::string browser_version;
  BrowserEngine engine = BrowserEngine::kBlink;
  CpuArch arch = CpuArch::kX86_64;
  std::string device_model;  // Android only; empty elsewhere

  AudioStack audio;

  /// SIMD tier of the user's CPU (0 = baseline .. 3 = widest vectors).
  /// Real analyser FFTs dispatch on CPU features at runtime, so this knob
  /// is independent of the UA string — it is what makes one User-Agent
  /// span many audio clusters (paper §4) and what gives audio
  /// fingerprinting additive value over UA/Canvas.
  int simd_tier = 0;

  /// The JS engine's math implementation. Distinct from the audio stack's
  /// libm: V8 ships its own fdlibm port (identical on every OS), while
  /// SpiderMonkey mixes its own kernels with system functions. This is why
  /// the paper's follow-up found Math JS far *less* diverse than Web Audio
  /// (Table 4) with a near-1:1 Windows/Chrome correspondence but 3 Math JS
  /// builds under Windows/Firefox (Table 5).
  dsp::MathVariant js_math = dsp::MathVariant::kPrecise;

  /// JS-engine atan sub-build: changes how atan is computed in the Math JS
  /// battery but is invisible to the audio path (the engine never calls
  /// atan).
  int atan_build = 0;

  // Canvas / font-visible attributes.
  std::string gpu_renderer;
  std::uint32_t os_build = 0;
  std::uint32_t font_profile = 0;           // base font stack id
  std::vector<std::uint16_t> extra_fonts;   // user-installed fonts (sorted)
  std::uint32_t canvas_quirk = 0;           // driver AA/gamma quirk class

  Fickleness fickle;
  std::string country;

  /// Navigator-style User-Agent header string.
  [[nodiscard]] std::string user_agent() const;

  /// Build an EngineConfig carrying this profile's audio stack (jitter left
  /// at the stable default; the fingerprinting layer sets it per render).
  [[nodiscard]] webaudio::EngineConfig make_engine_config() const;
};

}  // namespace wafp::platform
