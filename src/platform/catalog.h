// DeviceCatalog: samples PlatformProfiles whose attribute distributions
// match the paper's participant pool (§2.3: 2093 users; Windows 78.5%,
// macOS 9.4%, Android 6.9%, Linux 5.2%; Firefox 9.6% vs Chromium-family
// 90.4%; 57 countries with US/India/Brazil/Italy heading the list).
//
// The catalog is hierarchical: OS -> browser -> CPU architecture ->
// build-level audio knobs. Audio-stack assignments follow the reproduction
// substitution documented in DESIGN.md: each (engine, OS, build era)
// carries a specific math library generation, FFT build, FMA-contraction
// flag, denormal policy, and compressor tuning, so the *number and relative
// popularity* of audio-distinguishable stacks lands in the regime of the
// paper's Tables 2, 4 and 5. A small share of users runs out-of-date
// ("legacy") builds drawn from larger tuning pools — they supply the long
// tail of rare and unique fingerprints.
#pragma once

#include <cstddef>
#include <cstdint>

#include "platform/profile.h"
#include "util/rng.h"

namespace wafp::platform {

/// The calibration levers. Defaults are tuned so a 2093-user population
/// reproduces the shape of the paper's diversity results; EXPERIMENTS.md
/// records the measured values.
struct CatalogTuning {
  /// Share of users on out-of-date browser builds (long-tail source).
  double legacy_build_rate = 0.030;
  /// Distinct legacy compressor/analyser tuning slots (tail classes).
  std::size_t legacy_tuning_pool = 36;
  /// Distinct legacy FFT builds (analyser-visible tail classes).
  std::size_t legacy_fft_pool = 10;

  /// Fickleness mixture (paper §3.1 / Fig. 3): a stable mass, a lightly
  /// flaky mass (mostly recurring jitter states), and a small heavily
  /// flaky tail (mostly one-off chaotic digests).
  double stable_user_share = 0.33;
  double low_flaky_share = 0.658;
  double low_flaky_min = 0.008;
  double low_flaky_max = 0.105;
  double high_flaky_min = 0.50;
  double high_flaky_max = 0.72;
  double low_flaky_jitter_share = 0.88;
  double high_flaky_jitter_share = 0.15;

  /// Fonts vector: users with at least one user-installed font.
  double extra_font_rate = 0.50;
  double extra_font_geometric_p = 0.45;  // count = 1 + Geometric(p)
  std::size_t font_pool_size = 280;
  double font_zipf_exponent = 0.9;

  /// UA/Canvas attribute skews.
  double version_zipf_exponent = 1.5;
  double gpu_zipf_exponent = 1.1;
  double device_zipf_exponent = 1.2;
};

class DeviceCatalog {
 public:
  explicit DeviceCatalog(CatalogTuning tuning = {});

  /// Sample one participant's device. Deterministic in the RNG stream.
  [[nodiscard]] PlatformProfile sample_profile(util::Rng& rng) const;

  [[nodiscard]] const CatalogTuning& tuning() const { return tuning_; }

 private:
  void sample_identity(PlatformProfile& p, util::Rng& rng) const;
  void assign_audio_stack(PlatformProfile& p, util::Rng& rng,
                          bool legacy, std::size_t version_index) const;
  void sample_graphics(PlatformProfile& p, util::Rng& rng) const;
  void sample_fonts(PlatformProfile& p, util::Rng& rng) const;
  void sample_fickleness(PlatformProfile& p, util::Rng& rng) const;
  void sample_country(PlatformProfile& p, util::Rng& rng) const;

  CatalogTuning tuning_;
  util::ZipfSampler version_zipf_;
  util::ZipfSampler font_zipf_;
  util::ZipfSampler country_tail_zipf_;
};

}  // namespace wafp::platform
