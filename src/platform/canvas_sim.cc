#include "platform/canvas_sim.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/portable_math.h"

namespace wafp::platform {
namespace {

struct Rgba {
  double r = 0.0, g = 0.0, b = 0.0, a = 1.0;
};

/// Working surface in linear double precision; quantization to bytes is the
/// driver-dependent step.
class Surface {
 public:
  Surface() : pixels_(kCanvasWidth * kCanvasHeight) {}

  void blend(std::size_t x, std::size_t y, const Rgba& c, double coverage) {
    if (x >= kCanvasWidth || y >= kCanvasHeight) return;
    Rgba& dst = pixels_[y * kCanvasWidth + x];
    const double alpha = c.a * coverage;
    dst.r = dst.r * (1.0 - alpha) + c.r * alpha;
    dst.g = dst.g * (1.0 - alpha) + c.g * alpha;
    dst.b = dst.b * (1.0 - alpha) + c.b * alpha;
    dst.a = std::min(1.0, dst.a + alpha);
  }

  [[nodiscard]] const Rgba& at(std::size_t x, std::size_t y) const {
    return pixels_[y * kCanvasWidth + x];
  }

 private:
  std::vector<Rgba> pixels_;
};

/// Driver-quirk-dependent supersampling pattern for edge coverage.
struct AaProfile {
  int grid = 2;           // NxN supersamples
  double subpixel_bias = 0.0;
  double gamma = 2.2;
  bool round_half_up = true;  // byte quantization rounding mode
};

AaProfile aa_profile_for(const PlatformProfile& p) {
  AaProfile aa;
  switch (p.canvas_quirk % 4) {
    case 0: aa.grid = 2; aa.gamma = 2.2; break;
    case 1: aa.grid = 4; aa.gamma = 2.2; break;
    case 2: aa.grid = 2; aa.gamma = 2.15; break;
    case 3: aa.grid = 3; aa.gamma = 2.25; break;
  }
  if (p.canvas_quirk >= 4) {
    // Rare per-device oddities: shifted sample grid.
    aa.subpixel_bias = 0.07 * static_cast<double>(p.canvas_quirk - 3);
  }
  aa.round_half_up = p.engine == BrowserEngine::kBlink;
  return aa;
}

/// Coverage of pixel (x, y) by the disc centred at (cx, cy) with radius r,
/// via the AA profile's supersample grid.
double disc_coverage(double x, double y, double cx, double cy, double r,
                     const AaProfile& aa) {
  int hit = 0;
  const int n = aa.grid;
  for (int sy = 0; sy < n; ++sy) {
    for (int sx = 0; sx < n; ++sx) {
      const double px =
          x + (sx + 0.5) / n + aa.subpixel_bias;
      const double py = y + (sy + 0.5) / n;
      const double dx = px - cx;
      const double dy = py - cy;
      if (dx * dx + dy * dy <= r * r) ++hit;
    }
  }
  return static_cast<double>(hit) / static_cast<double>(n * n);
}

/// Coverage of pixel (x, y) by a thick line segment.
double segment_coverage(double x, double y, double x0, double y0, double x1,
                        double y1, double width, const AaProfile& aa) {
  int hit = 0;
  const int n = aa.grid;
  const double vx = x1 - x0;
  const double vy = y1 - y0;
  const double len2 = vx * vx + vy * vy;
  for (int sy = 0; sy < n; ++sy) {
    for (int sx = 0; sx < n; ++sx) {
      const double px = x + (sx + 0.5) / n + aa.subpixel_bias;
      const double py = y + (sy + 0.5) / n;
      double t = len2 > 0.0 ? ((px - x0) * vx + (py - y0) * vy) / len2 : 0.0;
      t = std::clamp(t, 0.0, 1.0);
      const double dx = px - (x0 + t * vx);
      const double dy = py - (y0 + t * vy);
      if (dx * dx + dy * dy <= width * width / 4.0) ++hit;
    }
  }
  return static_cast<double>(hit) / static_cast<double>(n * n);
}

void draw_disc(Surface& s, double cx, double cy, double r, const Rgba& c,
               const AaProfile& aa) {
  const auto x0 = static_cast<std::size_t>(std::max(0.0, cx - r - 1.0));
  const auto y0 = static_cast<std::size_t>(std::max(0.0, cy - r - 1.0));
  for (std::size_t y = y0; y < kCanvasHeight && y <= cy + r + 1.0; ++y) {
    for (std::size_t x = x0; x < kCanvasWidth && x <= cx + r + 1.0; ++x) {
      const double cov = disc_coverage(static_cast<double>(x),
                                       static_cast<double>(y), cx, cy, r, aa);
      if (cov > 0.0) s.blend(x, y, c, cov);
    }
  }
}

void draw_segment(Surface& s, double x0, double y0, double x1, double y1,
                  double width, const Rgba& c, const AaProfile& aa) {
  const auto min_x = static_cast<std::size_t>(
      std::max(0.0, std::min(x0, x1) - width));
  const auto max_x = static_cast<std::size_t>(
      std::min<double>(kCanvasWidth - 1, std::max(x0, x1) + width));
  const auto min_y = static_cast<std::size_t>(
      std::max(0.0, std::min(y0, y1) - width));
  const auto max_y = static_cast<std::size_t>(
      std::min<double>(kCanvasHeight - 1, std::max(y0, y1) + width));
  for (std::size_t y = min_y; y <= max_y; ++y) {
    for (std::size_t x = min_x; x <= max_x; ++x) {
      const double cov =
          segment_coverage(static_cast<double>(x), static_cast<double>(y), x0,
                           y0, x1, y1, width, aa);
      if (cov > 0.0) s.blend(x, y, c, cov);
    }
  }
}

/// Draw one pseudo-glyph: a few strokes whose geometry derives from the
/// glyph code and whose subpixel placement derives from the font stack
/// (hinting) — the stand-in for text rasterization differences.
void draw_glyph(Surface& s, double origin_x, double baseline, char glyph,
                std::uint64_t hinting_seed, const Rgba& c,
                const AaProfile& aa) {
  std::uint64_t state =
      util::fnv1a64_mix(hinting_seed, static_cast<std::uint64_t>(glyph));
  auto next_frac = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 40) / static_cast<double>(1 << 24);
  };
  const double hint_dx = (next_frac() - 0.5) * 0.35;  // subpixel hinting
  const double hint_dy = (next_frac() - 0.5) * 0.25;

  const int strokes = 2 + (glyph % 3);
  double px = origin_x + hint_dx;
  double py = baseline + hint_dy;
  for (int i = 0; i < strokes; ++i) {
    const double nx = origin_x + hint_dx + next_frac() * 6.0;
    const double ny = baseline + hint_dy - next_frac() * 12.0;
    draw_segment(s, px, py, nx, ny, 1.4, c, aa);
    px = nx;
    py = ny;
  }
}

std::uint8_t quantize(double linear, const AaProfile& aa) {
  // Gamma-encode then quantize with the engine's rounding behaviour. The
  // gamma flavour is a *profile* parameter (aa.gamma, round_half_up); the
  // pow itself must be render-neutral or the build host's libm would leak
  // into every simulated platform's canvas hash.
  const double encoded =
      util::portable_pow(std::clamp(linear, 0.0, 1.0), 1.0 / aa.gamma) * 255.0;
  return static_cast<std::uint8_t>(aa.round_half_up
                                       ? std::floor(encoded + 0.5)
                                       : std::floor(encoded));
}

}  // namespace

std::vector<std::uint8_t> render_canvas_scene(const PlatformProfile& profile) {
  const AaProfile aa = aa_profile_for(profile);
  Surface surface;

  // 1. Background gradient (fingerprintjs draws a gradient-filled rect).
  for (std::size_t y = 0; y < kCanvasHeight; ++y) {
    for (std::size_t x = 0; x < kCanvasWidth; ++x) {
      const double t = static_cast<double>(x) / (kCanvasWidth - 1);
      const Rgba c{1.0 - 0.6 * t, 0.4 + 0.1 * t, 0.0 + 0.9 * t, 1.0};
      surface.blend(x, y, c, 1.0);
    }
  }

  // 2. Overlapping translucent discs exercise the blender.
  draw_disc(surface, 50.0, 30.0, 22.0, {0.1, 0.7, 0.3, 0.55}, aa);
  draw_disc(surface, 70.0, 34.0, 18.0, {0.9, 0.2, 0.6, 0.45}, aa);

  // 3. Pseudo-text: glyph strokes with hinting driven by the text
  //    rasterization stack: OS family + engine + browser *major* version
  //    (point releases do not change text rendering).
  const std::string major_version =
      profile.browser_version.substr(0, profile.browser_version.find('.'));
  const std::uint64_t hinting_seed = util::fnv1a64_mix(
      util::fnv1a64_mix(util::fnv1a64("hinting"),
                        util::fnv1a64(to_string(profile.os)) ^
                            util::fnv1a64(to_string(profile.engine))),
      util::fnv1a64(major_version));
  const std::string text = "Cwm fjordbank glyphs 1.7";
  double pen_x = 95.0;
  for (const char glyph : text) {
    if (glyph != ' ') {
      draw_glyph(surface, pen_x, 42.0, glyph, hinting_seed,
                 {0.05, 0.05, 0.12, 0.95}, aa);
    }
    pen_x += 5.6;
  }

  // 4. A GPU-dependent dither stripe (drivers disagree on gradient
  //    dithering) seeded by the renderer string.
  const std::uint64_t dither_seed = util::fnv1a64(profile.gpu_renderer);
  for (std::size_t x = 0; x < kCanvasWidth; ++x) {
    const double wobble =
        static_cast<double>((dither_seed >> (x % 48)) & 0x7) / 64.0;
    surface.blend(x, kCanvasHeight - 4, {wobble, wobble, wobble, 0.3}, 1.0);
  }

  // Quantize with the profile's gamma/rounding behaviour.
  std::vector<std::uint8_t> out;
  out.reserve(kCanvasWidth * kCanvasHeight * 4);
  for (std::size_t y = 0; y < kCanvasHeight; ++y) {
    for (std::size_t x = 0; x < kCanvasWidth; ++x) {
      const Rgba& c = surface.at(x, y);
      out.push_back(quantize(c.r, aa));
      out.push_back(quantize(c.g, aa));
      out.push_back(quantize(c.b, aa));
      out.push_back(static_cast<std::uint8_t>(
          std::clamp(c.a, 0.0, 1.0) * 255.0));
    }
  }
  return out;
}

util::Digest canvas_fingerprint(const PlatformProfile& profile) {
  const std::vector<std::uint8_t> pixels = render_canvas_scene(profile);
  util::Sha256 hasher;
  hasher.update(std::span<const std::uint8_t>(pixels));
  return hasher.finish();
}

}  // namespace wafp::platform
