// WebAssembly-style compute fingerprints (Guri & Fibert, PAPERS.md): a
// wasm module's float results depend on the browser binary the module is
// compiled into — the libm generation its f32/f64 kernels lower onto, the
// FMA contraction policy of the build, and the SIMD lane width the runtime
// selects for v128 reductions. Neither battery renders audio: they probe
// the *compute* surface of the same per-platform knobs the audio stack
// exposes, which is exactly why the collation graph should absorb them
// like any other vector class.
//
// Determinism contract (mirrors synthetic_vectors.h): every value is a
// pure function of the profile — WASM Float of (audio.math,
// audio.fma_contraction), WASM SIMD of those plus simd_tier — and all
// transcendentals route through dsp::make_math_library, never the host
// libm, so the batteries are bit-stable across build hosts.
#pragma once

#include <vector>

#include "platform/profile.h"

namespace wafp::platform {

/// Scalar battery: transcendental evaluations at fixed awkward arguments,
/// each f64 result emitted as a head/residual f32 pair so every libm bit
/// reaches the digest, plus f32 Horner polynomials whose rounding exposes
/// the build's FMA contraction policy.
[[nodiscard]] std::vector<float> wasm_float_battery(
    const PlatformProfile& profile);

/// v128 battery: lane-wise arithmetic folded by horizontal reductions whose
/// association order follows the runtime's widest reduction (4^simd_tier
/// accumulators: tier 0 = scalar fold, 1 = 4, 2 = 16, 3 = 64). Same data,
/// different parenthesisation, different f32 roundings — the compute-side
/// analogue of the analyser FFT's SIMD dispatch.
[[nodiscard]] std::vector<float> wasm_simd_battery(
    const PlatformProfile& profile);

}  // namespace wafp::platform
