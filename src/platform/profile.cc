#include "platform/profile.h"

#include <bit>
#include <cstdio>
#include <map>
#include <sstream>
#include <tuple>

#include "util/hash.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "webaudio/periodic_wave_cache.h"

namespace wafp::platform {
namespace {

/// Process-wide memo for the heavyweight, immutable engine parts. Math
/// libraries are stateless; FFT engines guard their twiddle cache with a
/// mutex and keep scratch thread-local; wave caches are mutex-guarded — so
/// every profile of the same stack archetype can share one instance of
/// each. Sharing is digest-neutral (the parts are deterministic values);
/// it turns per-render twiddle/wavetable builds into per-archetype ones.
struct SharedEngineParts {
  using FftKey = std::tuple<dsp::FftVariant, dsp::TwiddleMode, dsp::MathVariant>;

  util::Mutex mu;
  std::map<dsp::MathVariant, std::shared_ptr<const dsp::MathLibrary>> math
      WAFP_GUARDED_BY(mu);
  std::map<FftKey, std::shared_ptr<const dsp::FftEngine>> fft
      WAFP_GUARDED_BY(mu);
  std::map<FftKey, std::shared_ptr<webaudio::PeriodicWaveCache>> waves
      WAFP_GUARDED_BY(mu);
};

SharedEngineParts& shared_engine_parts() {
  static SharedEngineParts parts;
  return parts;
}

}  // namespace

std::string_view to_string(OsFamily v) {
  switch (v) {
    case OsFamily::kWindows: return "Windows";
    case OsFamily::kMacOs: return "macOS";
    case OsFamily::kAndroid: return "Android";
    case OsFamily::kLinux: return "Linux";
  }
  return "unknown";
}

std::string_view to_string(BrowserFamily v) {
  switch (v) {
    case BrowserFamily::kChrome: return "Chrome";
    case BrowserFamily::kFirefox: return "Firefox";
    case BrowserFamily::kEdge: return "Edge";
    case BrowserFamily::kOpera: return "Opera";
    case BrowserFamily::kSamsungInternet: return "SamsungInternet";
    case BrowserFamily::kSilk: return "Silk";
    case BrowserFamily::kYandex: return "Yandex";
  }
  return "unknown";
}

std::string_view to_string(BrowserEngine v) {
  switch (v) {
    case BrowserEngine::kBlink: return "Blink";
    case BrowserEngine::kGecko: return "Gecko";
  }
  return "unknown";
}

std::string_view to_string(CpuArch v) {
  switch (v) {
    case CpuArch::kX86_64: return "x86_64";
    case CpuArch::kArm64: return "arm64";
    case CpuArch::kArm32: return "arm32";
  }
  return "unknown";
}

std::string AudioStack::class_key() const {
  std::ostringstream key;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g",
                compressor.pre_delay_seconds,
                compressor.metering_release_seconds, compressor.release_zone1,
                compressor.release_zone2, compressor.release_zone3,
                compressor.release_zone4, compressor.makeup_exponent,
                compressor.knee_solver_tolerance, analyser.blackman_alpha,
                analyser.smoothing);
  key << dsp::to_string(math) << '|' << dsp::to_string(fft) << '|'
      << dsp::to_string(twiddle) << '|'
      << (denormal == dsp::DenormalPolicy::kFlushToZero ? "ftz" : "ieee")
      << '|' << (fma_contraction ? "fma" : "mul+add") << '|' << buf;
  return key.str();
}

std::uint64_t AudioStack::class_hash() const {
  auto mix_double = [](std::uint64_t h, double v) {
    return util::fnv1a64_mix(h, std::bit_cast<std::uint64_t>(v));
  };
  std::uint64_t h = util::fnv1a64("wafp-audio-stack");
  h = util::fnv1a64_mix(h, static_cast<std::uint64_t>(math));
  h = util::fnv1a64_mix(h, static_cast<std::uint64_t>(fft));
  h = util::fnv1a64_mix(h, static_cast<std::uint64_t>(twiddle));
  h = util::fnv1a64_mix(h, static_cast<std::uint64_t>(denormal));
  h = util::fnv1a64_mix(h, fma_contraction ? 1u : 0u);
  h = mix_double(h, compressor.pre_delay_seconds);
  h = mix_double(h, compressor.metering_release_seconds);
  h = mix_double(h, compressor.release_zone1);
  h = mix_double(h, compressor.release_zone2);
  h = mix_double(h, compressor.release_zone3);
  h = mix_double(h, compressor.release_zone4);
  h = mix_double(h, compressor.makeup_exponent);
  h = mix_double(h, compressor.knee_solver_tolerance);
  h = mix_double(h, analyser.blackman_alpha);
  h = mix_double(h, analyser.smoothing);
  return h;
}

std::string PlatformProfile::user_agent() const {
  std::ostringstream ua;
  ua << "Mozilla/5.0 (";
  switch (os) {
    case OsFamily::kWindows:
      ua << "Windows NT " << os_version;
      if (arch == CpuArch::kX86_64) ua << "; Win64; x64";
      break;
    case OsFamily::kMacOs:
      ua << "Macintosh; Intel Mac OS X " << os_version;
      break;
    case OsFamily::kAndroid:
      ua << "Linux; Android " << os_version;
      if (!device_model.empty()) ua << "; " << device_model;
      break;
    case OsFamily::kLinux:
      ua << "X11; Linux x86_64";
      break;
  }
  ua << ") ";

  if (engine == BrowserEngine::kGecko) {
    ua << "Gecko/20100101 Firefox/" << browser_version;
    return ua.str();
  }

  ua << "AppleWebKit/537.36 (KHTML, like Gecko) ";
  switch (browser) {
    case BrowserFamily::kChrome:
      ua << "Chrome/" << browser_version;
      break;
    case BrowserFamily::kEdge:
      ua << "Chrome/" << browser_version << " Edg/" << browser_version;
      break;
    case BrowserFamily::kOpera:
      ua << "Chrome/" << browser_version << " OPR/" << browser_version;
      break;
    case BrowserFamily::kSamsungInternet:
      ua << "SamsungBrowser/" << browser_version << " Chrome/87.0.4280.141";
      break;
    case BrowserFamily::kSilk:
      ua << "Silk/" << browser_version << " like Chrome/86.0.4240.198";
      break;
    case BrowserFamily::kYandex:
      ua << "Chrome/" << browser_version << " YaBrowser/21.3.0";
      break;
    case BrowserFamily::kFirefox:
      break;  // unreachable: Firefox is Gecko
  }
  ua << " Safari/537.36";
  if (os == OsFamily::kAndroid) ua << " Mobile";
  return ua.str();
}

webaudio::EngineConfig PlatformProfile::make_engine_config() const {
  webaudio::EngineConfig cfg;
  auto& parts = shared_engine_parts();
  const SharedEngineParts::FftKey key{audio.fft, audio.twiddle, audio.math};
  {
    util::MutexLock lock(parts.mu);
    auto& math = parts.math[audio.math];
    if (!math) math = dsp::make_math_library(audio.math);
    cfg.math = math;
    auto& fft = parts.fft[key];
    if (!fft) fft = dsp::make_fft_engine(audio.fft, cfg.math, audio.twiddle);
    cfg.fft = fft;
    auto& waves = parts.waves[key];
    if (!waves) waves = std::make_shared<webaudio::PeriodicWaveCache>();
    cfg.wave_cache = waves;
  }
  cfg.denormal = audio.denormal;
  cfg.fma_contraction = audio.fma_contraction;
  cfg.compressor = audio.compressor;
  cfg.analyser = audio.analyser;
  return cfg;
}

}  // namespace wafp::platform
