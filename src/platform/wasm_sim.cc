#include "platform/wasm_sim.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <numbers>
#include <span>

namespace wafp::platform {
namespace {

/// f32 multiply-add under the build's contraction policy. A contracted
/// build keeps the product at full precision through the add (modelled by
/// evaluating in double: a float product is exact in double, so the single
/// rounding happens at the final demotion); an uncontracted build rounds
/// the product to f32 first, exactly as -ffp-contract=off codegen does.
float madd(bool contracted, float a, float b, float c) {
  if (contracted) {
    return static_cast<float>(static_cast<double>(a) * b + c);
  }
  return a * b + c;
}

/// Emit a full-precision f64 observation as two f32 values: the rounded
/// head plus the scaled residual (Dekker-style split). A wasm module reads
/// f64 results bit-exactly through a Float64Array, so demoting to a single
/// f32 would erase exactly the low-order libm bits the battery exists to
/// observe — fdlibm and fastpoly agree to f32 precision at most arguments.
void push_f64(std::vector<float>& out, double x) {
  const auto hi = static_cast<float>(x);
  out.push_back(hi);
  out.push_back(static_cast<float>((x - static_cast<double>(hi)) * 0x1p30));
}

/// Deterministic lane data shared by both reductions of the SIMD battery:
/// a transcendental sweep through the profile's math library, demoted to
/// f32 the way a wasm module's f64 -> f32 stores are.
std::vector<float> lane_data(const dsp::MathLibrary& math, std::size_t n) {
  std::vector<float> data;
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 0.37 + 0.83 * static_cast<double>(i);
    data.push_back(static_cast<float>(math.sin(x) + 0.5 * math.cos(3.0 * x)));
  }
  return data;
}

/// Horizontal sum with `lanes`-wide association: partial sums accumulate
/// per lane, then fold pairwise — the reduction tree a v128/v256/v512
/// runtime emits. lanes == 1 degenerates to the strict left-to-right
/// scalar fold.
float lane_sum(std::span<const float> data, std::size_t lanes) {
  if (lanes <= 1) {
    float acc = 0.0f;
    for (const float v : data) acc += v;
    return acc;
  }
  std::vector<float> acc(lanes, 0.0f);
  for (std::size_t i = 0; i < data.size(); ++i) {
    acc[i % lanes] += data[i];
  }
  for (std::size_t width = lanes / 2; width >= 1; width /= 2) {
    for (std::size_t i = 0; i < width; ++i) acc[i] += acc[i + width];
    if (width == 1) break;
  }
  return acc[0];
}

/// Lane-wise dot product folded the same way, with the multiply-add inside
/// each lane honouring the contraction policy.
float lane_dot(std::span<const float> a, std::span<const float> b,
               std::size_t lanes, bool contracted) {
  if (lanes <= 1) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i) {
      acc = madd(contracted, a[i], b[i], acc);
    }
    return acc;
  }
  std::vector<float> acc(lanes, 0.0f);
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc[i % lanes] = madd(contracted, a[i], b[i], acc[i % lanes]);
  }
  for (std::size_t width = lanes / 2; width >= 1; width /= 2) {
    for (std::size_t i = 0; i < width; ++i) acc[i] += acc[i + width];
    if (width == 1) break;
  }
  return acc[0];
}

}  // namespace

std::vector<float> wasm_float_battery(const PlatformProfile& profile) {
  // Wasm f32 math lowers onto the browser binary's libm — the *audio*
  // stack's generation, not the JS engine's (a wasm module never calls
  // Math.*). That coupling is what lets a drift scenario watch a libm
  // upgrade move the compute fingerprint and the audio fingerprints
  // together.
  const auto math = dsp::make_math_library(profile.audio.math);
  const bool fma = profile.audio.fma_contraction;
  std::vector<float> values;
  values.reserve(58);

  constexpr std::array kArgs = {0.5,   1.0,     2.718281828, 123.456,
                                1.0e4, -0.9999, 0.0078125,   77.7};
  for (const double x : kArgs) {
    push_f64(values, math->sin(x));
    push_f64(values, math->exp(-x * 0.25));
    push_f64(values, math->log(1.0 + x * x));
  }
  push_f64(values, math->pow(std::numbers::pi, 7.5));
  push_f64(values, math->tanh(1.25));
  push_f64(values, math->sqrt(1.0e-7));

  // Horner chains over f32 state: every step is one multiply-add, so the
  // contraction policy changes the rounding at every degree.
  constexpr std::array kCoeffs = {1.0f,       -0.49997f, 0.0416666f,
                                  -0.0013888f, 2.48e-5f, -2.7557e-7f};
  for (const double x0 : {0.7, 1.9, 2.73, -1.31}) {
    const auto x = static_cast<float>(x0);
    float acc = kCoeffs[0];
    for (std::size_t i = 1; i < kCoeffs.size(); ++i) {
      acc = madd(fma, acc, x, kCoeffs[i]);
    }
    values.push_back(acc);
  }
  return values;
}

std::vector<float> wasm_simd_battery(const PlatformProfile& profile) {
  const auto math = dsp::make_math_library(profile.audio.math);
  const bool fma = profile.audio.fma_contraction;
  // Tier -> lane width of the widest reduction the runtime will emit.
  const std::size_t lanes = std::size_t{1}
                            << (2 * static_cast<std::size_t>(std::clamp(
                                    profile.simd_tier, 0, 3)));

  const std::vector<float> data = lane_data(*math, 256);
  std::vector<float> shifted(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    shifted[i] = data[(i + 17) % data.size()];
  }

  std::vector<float> values;
  values.reserve(12);
  // Reductions over nested prefixes: each prefix length exercises a
  // different ragged tail of the lane partition.
  for (const std::size_t n : {61UL, 128UL, 200UL, 256UL}) {
    const std::span<const float> head(data.data(), n);
    const std::span<const float> head_b(shifted.data(), n);
    values.push_back(lane_sum(head, lanes));
    values.push_back(lane_dot(head, head_b, lanes, fma));
  }
  // A second-order accumulation whose error feedback amplifies the
  // association-order differences instead of averaging them out.
  float feedback = 0.0f;
  for (const std::size_t n : {32UL, 96UL, 224UL}) {
    feedback = madd(fma, feedback, 0.875f,
                    lane_sum(std::span<const float>(data.data(), n), lanes));
  }
  values.push_back(feedback);
  return values;
}

}  // namespace wafp::platform
