#include "platform/population.h"

#include "util/rng.h"

namespace wafp::platform {

Population::Population(const DeviceCatalog& catalog, std::size_t size,
                       std::uint64_t seed) {
  users_.reserve(size);
  util::Rng root(util::derive_seed(seed, "population"));
  for (std::size_t i = 0; i < size; ++i) {
    StudyUser user;
    user.id = static_cast<std::uint32_t>(i);
    util::Rng user_rng = root.fork(i);
    user.profile = catalog.sample_profile(user_rng);
    user.seed = util::derive_seed(seed, 0x757365720000ULL + i);  // "user"+i
    users_.push_back(std::move(user));
  }
}

}  // namespace wafp::platform
