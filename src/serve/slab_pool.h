// SlabPool: slab-backed recycling allocator for the serving hot path.
//
// RenderService needs one Task slot per in-flight render class. Allocating
// those per request would put an operator-new on every admission — exactly
// the steady-state churn the PR 6 build-free audit exists to forbid. The
// pool instead carves slots out of fixed-size slabs and recycles them
// through a free list: slabs are only built while the pool grows toward the
// peak in-flight demand, and once capacity covers that peak, acquire() and
// release() touch nothing but the pre-reserved free list. The slab_builds()
// counter is the audit hook — a steady-state phase must leave it unchanged,
// the same way dsp::fft_counters() must not move across a warm re-render.
//
// Slots are pointer-stable for the pool's lifetime (slabs are never freed
// until destruction), so waiters can hold a Task* across the release of the
// admission lock. Not thread-safe: the caller serializes access under its
// own mutex, which RenderService already holds at every acquire/release.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.h"

namespace wafp::serve {

template <typename T, std::size_t kSlabSize = 64>
class SlabPool {
 public:
  static_assert(kSlabSize > 0, "a slab must hold at least one slot");

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// A default-initialized slot, recycled when available, slab-built when
  /// not. The pointer stays valid until the pool is destroyed.
  [[nodiscard]] T* acquire() {
    if (free_.empty()) grow();
    T* slot = free_.back();
    free_.pop_back();
    ++outstanding_;
    return slot;
  }

  /// Return a slot obtained from acquire(). The slot is value-reset so the
  /// next acquire never observes stale state. Never allocates: the free
  /// list is reserved to full capacity at every grow().
  void release(T* slot) {
    WAFP_CHECK(slot != nullptr) << "SlabPool::release of null slot";
    WAFP_CHECK(outstanding_ > 0)
        << "SlabPool::release without a matching acquire";
    *slot = T{};
    free_.push_back(slot);
    --outstanding_;
  }

  /// Monotonic count of slabs ever built — the steady-state audit counter.
  [[nodiscard]] std::uint64_t slab_builds() const {
    return static_cast<std::uint64_t>(slabs_.size());
  }
  /// Total slots across all slabs.
  [[nodiscard]] std::size_t capacity() const {
    return slabs_.size() * kSlabSize;
  }
  /// Slots currently acquired and not yet released.
  [[nodiscard]] std::size_t outstanding() const { return outstanding_; }

 private:
  void grow() {
    slabs_.push_back(std::make_unique<std::array<T, kSlabSize>>());
    // Reserve the free list to the new full capacity up front: release()
    // must never reallocate, or the "steady state allocates nothing" claim
    // would quietly depend on vector growth policy.
    free_.reserve(slabs_.size() * kSlabSize);
    for (T& slot : *slabs_.back()) free_.push_back(&slot);
  }

  std::vector<std::unique_ptr<std::array<T, kSlabSize>>> slabs_;
  std::vector<T*> free_;
  std::size_t outstanding_ = 0;
};

}  // namespace wafp::serve
