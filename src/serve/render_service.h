// RenderService: the continuous-batching render serving layer.
//
// The paper's workload is duplicate-heavy by construction: thousands of
// users share a handful of (audio stack, vector, jitter) render classes, so
// an online deployment that renders per request wastes nearly all of its
// work. This service generalizes the two existing dedup layers into a
// cross-request one:
//
//   admission  — a bounded queue with kQueueFull backpressure, mirroring
//                CollationService::submit's protocol: the caller backs off
//                and resubmits instead of growing an unbounded buffer.
//   coalescing — concurrent in-flight requests for one render class
//                collapse onto a single Task (RenderCache deduplicates
//                per-key with call_once; this deduplicates across callers
//                before a render is even scheduled, so N requests admit at
//                most one unit of queued work).
//   batching   — workers drain the queue in batches sorted archetype-major
//                (BatchRenderer's ordering) so consecutive renders share
//                engine parts, then render through the shared RenderCache —
//                which is what keeps served digests bit-identical to a
//                direct RenderCache::get.
//   recycling  — Task slots come from a SlabPool, so steady-state serving
//                allocates nothing (audited by slab_builds(), extending the
//                PR 6 build-free counter audit to the serving path).
//
// Threading contract: submit()/render()/wait() are thread-safe. stop()
// drains every queued task before returning, but callers must quiesce
// their own submitters first — a render() blocked on backpressure aborts
// (WAFP_CHECK) rather than deadlocking if the service stops under it, and
// a submit() racing the last worker's exit would wait until the next
// start(). Each accepted Ticket must be wait()ed exactly once; the digest
// reference returned stays valid for the RenderCache's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fingerprint/render_cache.h"
#include "obs/metrics.h"
#include "serve/slab_pool.h"
#include "util/function_effects.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace wafp::serve {

struct RenderServiceConfig {
  /// Queued-class bound; submit() returns kQueueFull beyond it. Coalesced
  /// joins never count against the bound — they add no queued work.
  std::size_t queue_capacity = 1024;

  /// Render worker threads. 0 = util::default_thread_count().
  std::size_t workers = 0;

  /// Most classes one worker drains per batch. Smaller batches spread load
  /// across workers; larger ones amortize wakeups and keep archetype runs
  /// together.
  std::size_t max_batch = 32;

  /// When false the constructor does not start(): tests and benches admit
  /// a whole request stream first (every duplicate coalesces
  /// deterministically) and only then start the workers.
  bool start_workers = true;

  /// Metrics sink; nullptr = obs::MetricsRegistry::global().
  obs::MetricsRegistry* metrics = nullptr;
};

enum class Admit { kAccepted, kQueueFull };

struct ServeStats {
  std::size_t requests = 0;   // accepted submissions
  std::size_t coalesced = 0;  // accepted submissions that joined an
                              // in-flight class instead of queueing work
  std::size_t classes = 0;    // tasks admitted (distinct in-flight classes)
  std::size_t completed = 0;  // tasks rendered
  std::size_t batches = 0;    // worker batches executed
  std::size_t rejected_queue_full = 0;

  /// Accepted requests per unit of queued work; > 1 on duplicate-heavy
  /// streams is the serving layer's whole reason to exist.
  [[nodiscard]] double coalesce_ratio() const {
    return classes == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(classes);
  }
};

class RenderService {
 private:
  struct Task;

 public:
  /// Handle for one accepted submission. Move-only so two owners can never
  /// drain the same task's waiter count; wait() consumes the ticket.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept : task_(o.task_) { o.task_ = nullptr; }
    Ticket& operator=(Ticket&& o) noexcept {
      task_ = o.task_;
      o.task_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    [[nodiscard]] bool valid() const { return task_ != nullptr; }

   private:
    friend class RenderService;
    explicit Ticket(Task* task) : task_(task) {}
    Task* task_ = nullptr;
  };

  /// The service renders through (and shares dedup with) `cache`, which
  /// must outlive it. Starts workers unless config.start_workers is false.
  explicit RenderService(fingerprint::RenderCache& cache,
                         RenderServiceConfig config = {});
  ~RenderService();

  RenderService(const RenderService&) = delete;
  RenderService& operator=(const RenderService&) = delete;

  /// Admit one render request. kAccepted fills `ticket` (coalescing onto an
  /// in-flight class when one exists); kQueueFull asks the caller to back
  /// off and resubmit, exactly like CollationService::submit.
  ///
  /// Lifetime: `vector` and `profile` are captured by pointer and must stay
  /// alive and unmoved until the class's render completes. Vectors from
  /// audio_vector()/VectorRegistry are process-lifetime singletons, so only
  /// `profile` needs care.
  Admit submit(const fingerprint::AudioFingerprintVector& vector,
               const platform::PlatformProfile& profile,
               std::uint32_t jitter_state, Ticket& ticket);

  /// Block until the ticket's render completes and return its digest
  /// (valid for the RenderCache's lifetime). Consumes the ticket; call
  /// exactly once per accepted submit. Requires workers to run eventually
  /// (start(), or start_workers at construction).
  const util::Digest& wait(Ticket& ticket);

  /// Blocking convenience: submit (sleeping out kQueueFull backpressure)
  /// then wait. Aborts rather than deadlocks if the service is stopping
  /// while the queue is full.
  const util::Digest& render(const fingerprint::AudioFingerprintVector& vector,
                             const platform::PlatformProfile& profile,
                             std::uint32_t jitter_state);

  /// Start the worker pool (idempotent). stop() drains the queue — every
  /// already-admitted task completes — then joins the workers (idempotent;
  /// the destructor stops too).
  void start();
  void stop();

  [[nodiscard]] ServeStats stats() const;
  /// Tasks admitted but not yet picked up by a worker.
  [[nodiscard]] std::size_t queue_depth() const;
  /// SlabPool slabs ever built — the serving half of the steady-state
  /// build-free audit (see tests/serve/serve_steady_state_test.cc).
  [[nodiscard]] std::uint64_t slab_builds() const;
  /// Worker-pool degree this service starts.
  [[nodiscard]] std::size_t worker_count() const { return worker_count_; }

 private:
  /// One in-flight render class. Slot-pooled; every field is guarded by
  /// mu_ (workers read vector/profile/key between the pop and the
  /// completion of a batch, when no submitter can touch the task — it left
  /// the queue, and coalescing joins only bump waiters/joins).
  struct Task {
    fingerprint::RenderClassKey key;
    const fingerprint::AudioFingerprintVector* vector = nullptr;
    const platform::PlatformProfile* profile = nullptr;
    const util::Digest* result = nullptr;
    bool done = false;
    std::size_t waiters = 0;  // accepted submits not yet drained by wait()
    std::size_t joins = 1;    // total submissions this task absorbed
    std::uint64_t admitted_ns = 0;
  };

  Admit submit_locked(const fingerprint::AudioFingerprintVector& vector,
                      const platform::PlatformProfile& profile,
                      std::uint32_t jitter_state, Ticket& ticket)
      WAFP_REQUIRES(mu_);
  void worker_loop();
  /// Renders a popped batch through the shared cache, outside mu_. This is
  /// the serving hot loop: on a warm cache it is lock-bump-and-return per
  /// task, and WAFP_NONALLOCATING makes wafp_lint hold it (and everything
  /// it reaches) to the steady-state build-free contract the slab/counter
  /// audits check dynamically.
  void render_batch(std::span<Task* const> batch) WAFP_NONALLOCATING;

  fingerprint::RenderCache& cache_;
  RenderServiceConfig config_;
  std::size_t worker_count_;

  obs::MetricsRegistry& metrics_;
  obs::Gauge& queue_depth_gauge_;
  obs::Histogram& batch_size_hist_;
  obs::Histogram& coalesced_per_class_hist_;
  obs::Histogram& request_ns_hist_;
  obs::Counter& requests_counter_;
  obs::Counter& coalesced_counter_;
  obs::Counter& classes_counter_;
  obs::Counter& completed_counter_;
  obs::Counter& batches_counter_;
  obs::Counter& rejected_counter_;

  mutable util::Mutex mu_;
  util::CondVar work_cv_;   // workers: queue went non-empty / stopping
  util::CondVar done_cv_;   // waiters: some batch completed
  util::CondVar space_cv_;  // backpressured render(): queue space freed
  std::deque<Task*> queue_ WAFP_GUARDED_BY(mu_);
  std::unordered_map<fingerprint::RenderClassKey, Task*,
                     fingerprint::RenderClassKeyHash>
      inflight_ WAFP_GUARDED_BY(mu_);
  SlabPool<Task> pool_ WAFP_GUARDED_BY(mu_);
  ServeStats stats_ WAFP_GUARDED_BY(mu_);
  bool stopping_ WAFP_GUARDED_BY(mu_) = false;

  util::Mutex workers_mu_;  // serializes start()/stop()
  std::vector<std::thread> threads_ WAFP_GUARDED_BY(workers_mu_);
};

}  // namespace wafp::serve
