#include "serve/render_service.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace wafp::serve {
namespace {

// Count-style histogram bounds (batch sizes, joins per class): powers of
// two up to far beyond max_batch, so p95 stays meaningful at either end.
constexpr std::uint64_t kCountBounds[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

}  // namespace

RenderService::RenderService(fingerprint::RenderCache& cache,
                             RenderServiceConfig config)
    : cache_(cache),
      config_(config),
      worker_count_(config.workers != 0 ? config.workers
                                        : util::default_thread_count()),
      metrics_(config.metrics ? *config.metrics
                              : obs::MetricsRegistry::global()),
      queue_depth_gauge_(metrics_.gauge(
          "wafp_serve_queue_depth",
          "Render classes admitted and waiting for a worker")),
      batch_size_hist_(metrics_.histogram(
          "wafp_serve_batch_size", "Classes per worker batch", {},
          kCountBounds)),
      coalesced_per_class_hist_(metrics_.histogram(
          "wafp_serve_coalesced_per_class",
          "Requests absorbed by one in-flight class at its completion", {},
          kCountBounds)),
      request_ns_hist_(metrics_.histogram(
          "wafp_serve_request_ns",
          "Class admission to render completion (ns)")),
      requests_counter_(metrics_.counter("wafp_serve_requests_total",
                                         "Render requests accepted")),
      coalesced_counter_(metrics_.counter(
          "wafp_serve_coalesced_total",
          "Accepted requests that joined an in-flight class")),
      classes_counter_(metrics_.counter(
          "wafp_serve_classes_total",
          "Render classes admitted to the work queue")),
      completed_counter_(metrics_.counter("wafp_serve_completed_total",
                                          "Render classes completed")),
      batches_counter_(metrics_.counter("wafp_serve_batches_total",
                                        "Worker batches executed")),
      rejected_counter_(metrics_.counter(
          "wafp_serve_rejected_queue_full_total",
          "Submissions rejected with kQueueFull backpressure")) {
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.start_workers) start();
}

RenderService::~RenderService() { stop(); }

Admit RenderService::submit_locked(
    const fingerprint::AudioFingerprintVector& vector,
    const platform::PlatformProfile& profile, std::uint32_t jitter_state,
    Ticket& ticket) {
  const fingerprint::RenderClassKey key =
      fingerprint::make_render_class_key(vector, profile, jitter_state);
  if (const auto it = inflight_.find(key); it != inflight_.end()) {
    // Continuous batching's core move: this request adds zero work. It
    // rides the already-admitted task, whether that task is still queued
    // or already rendering on a worker.
    Task* task = it->second;
    ++task->waiters;
    ++task->joins;
    ++stats_.requests;
    ++stats_.coalesced;
    requests_counter_.inc();
    coalesced_counter_.inc();
    ticket = Ticket(task);
    return Admit::kAccepted;
  }
  if (queue_.size() >= config_.queue_capacity) {
    ++stats_.rejected_queue_full;
    rejected_counter_.inc();
    return Admit::kQueueFull;
  }
  Task* task = pool_.acquire();
  task->key = key;
  task->vector = &vector;
  task->profile = &profile;
  task->admitted_ns = metrics_.now_ns();
  task->waiters = 1;
  task->joins = 1;
  inflight_.emplace(key, task);
  queue_.push_back(task);
  queue_depth_gauge_.set(static_cast<std::int64_t>(queue_.size()));
  ++stats_.requests;
  ++stats_.classes;
  requests_counter_.inc();
  classes_counter_.inc();
  ticket = Ticket(task);
  work_cv_.notify_one();
  return Admit::kAccepted;
}

Admit RenderService::submit(const fingerprint::AudioFingerprintVector& vector,
                            const platform::PlatformProfile& profile,
                            std::uint32_t jitter_state, Ticket& ticket) {
  util::MutexLock lock(mu_);
  return submit_locked(vector, profile, jitter_state, ticket);
}

const util::Digest& RenderService::wait(Ticket& ticket) {
  WAFP_CHECK(ticket.task_ != nullptr)
      << "RenderService::wait on an empty or already-waited ticket";
  Task* task = ticket.task_;
  ticket.task_ = nullptr;

  util::MutexLock lock(mu_);
  while (!task->done) done_cv_.wait(mu_);
  // The digest lives in the RenderCache (stable for its lifetime), so the
  // reference survives the task slot's recycling below.
  const util::Digest* result = task->result;
  WAFP_CHECK(task->waiters > 0)
      << "RenderService ticket accounting underflow";
  if (--task->waiters == 0) pool_.release(task);
  return *result;
}

const util::Digest& RenderService::render(
    const fingerprint::AudioFingerprintVector& vector,
    const platform::PlatformProfile& profile, std::uint32_t jitter_state) {
  Ticket ticket;
  {
    util::MutexLock lock(mu_);
    while (submit_locked(vector, profile, jitter_state, ticket) !=
           Admit::kAccepted) {
      // Waiting out backpressure only terminates while workers drain the
      // queue; if the service is stopping instead, fail loudly rather than
      // sleep forever on a condition nothing will signal.
      WAFP_CHECK(!stopping_)
          << "RenderService::render blocked on a full queue while the "
             "service is stopping";
      space_cv_.wait(mu_);
    }
  }
  return wait(ticket);
}

void RenderService::worker_loop() {
  std::vector<Task*> batch;
  batch.reserve(config_.max_batch);
  for (;;) {
    batch.clear();
    {
      util::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping && fully drained
      const std::size_t take = std::min(config_.max_batch, queue_.size());
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(queue_.front());
        queue_.pop_front();
      }
      queue_depth_gauge_.set(static_cast<std::int64_t>(queue_.size()));
    }
    space_cv_.notify_all();  // admission capacity just freed up

    // Archetype-major order (BatchRenderer's ordering): consecutive
    // renders share one platform's engine parts. Purely a locality knob —
    // every digest is a pure function of its own (stack, vector, jitter),
    // so batch composition and order can never change results.
    std::sort(batch.begin(), batch.end(), [](const Task* a, const Task* b) {
      if (a->key.stack_hash != b->key.stack_hash) {
        return a->key.stack_hash < b->key.stack_hash;
      }
      if (a->key.vector != b->key.vector) return a->key.vector < b->key.vector;
      return a->key.jitter < b->key.jitter;
    });

    // Render outside the lock: this is the expensive part, and the shared
    // RenderCache already serializes racers on a single cold key.
    render_batch(batch);

    {
      util::MutexLock lock(mu_);
      const std::uint64_t now = metrics_.now_ns();
      for (Task* task : batch) {
        task->done = true;
        inflight_.erase(task->key);
        coalesced_per_class_hist_.observe(task->joins);
        request_ns_hist_.observe(now - task->admitted_ns);
        ++stats_.completed;
        completed_counter_.inc();
      }
      ++stats_.batches;
      batch_size_hist_.observe(batch.size());
      batches_counter_.inc();
    }
    done_cv_.notify_all();
  }
}

void RenderService::render_batch(std::span<Task* const> batch)
    WAFP_NONALLOCATING {
  for (Task* task : batch) {
    task->result =
        &cache_.get(*task->vector, *task->profile, task->key.jitter);
  }
}

void RenderService::start() {
  util::MutexLock lock(workers_mu_);
  if (!threads_.empty()) return;
  {
    util::MutexLock qlock(mu_);
    stopping_ = false;
  }
  threads_.reserve(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void RenderService::stop() {
  util::MutexLock lock(workers_mu_);
  if (threads_.empty()) return;
  {
    util::MutexLock qlock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();  // wake backpressured render()s so they abort
  for (std::thread& worker : threads_) worker.join();
  threads_.clear();
}

ServeStats RenderService::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

std::size_t RenderService::queue_depth() const {
  util::MutexLock lock(mu_);
  return queue_.size();
}

std::uint64_t RenderService::slab_builds() const {
  util::MutexLock lock(mu_);
  return pool_.slab_builds();
}

}  // namespace wafp::serve
