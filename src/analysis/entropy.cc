#include "analysis/entropy.h"

#include <cmath>
#include <map>
#include <unordered_map>

#include "util/check.h"
#include "util/portable_math.h"

namespace wafp::analysis {

double shannon_entropy_bits(std::span<const std::size_t> cluster_sizes) {
  std::size_t total = 0;
  for (const std::size_t s : cluster_sizes) total += s;
  if (total == 0) return 0.0;
  double e = 0.0;
  for (const std::size_t s : cluster_sizes) {
    if (s == 0) continue;
    const double p = static_cast<double>(s) / static_cast<double>(total);
    e -= p * util::portable_log2(p);
  }
  return e;
}

double normalized_entropy(std::span<const std::size_t> cluster_sizes,
                          std::size_t total_users) {
  if (total_users < 2) return 0.0;
  return shannon_entropy_bits(cluster_sizes) /
         util::portable_log2(static_cast<double>(total_users));
}

DiversityStats diversity_from_labels(std::span<const int> labels) {
  std::unordered_map<int, std::size_t> counts;
  for (const int label : labels) ++counts[label];

  DiversityStats stats;
  stats.distinct = counts.size();
  std::vector<std::size_t> sizes;
  sizes.reserve(counts.size());
  for (const auto& [label, count] : counts) {
    sizes.push_back(count);
    if (count == 1) ++stats.unique;
  }
  stats.entropy = shannon_entropy_bits(sizes);
  stats.normalized = normalized_entropy(sizes, labels.size());
  return stats;
}

std::vector<int> combine_labels(std::span<const std::vector<int>> label_sets) {
  if (label_sets.empty()) return {};
  const std::size_t n = label_sets.front().size();
  for (const auto& set : label_sets) {
    WAFP_DCHECK(set.size() == n);
    (void)set;
  }

  std::map<std::vector<int>, int> tuple_ids;
  std::vector<int> combined;
  combined.reserve(n);
  std::vector<int> tuple(label_sets.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t v = 0; v < label_sets.size(); ++v) {
      tuple[v] = label_sets[v][i];
    }
    const auto [it, inserted] =
        tuple_ids.try_emplace(tuple, static_cast<int>(tuple_ids.size()));
    combined.push_back(it->second);
  }
  return combined;
}

}  // namespace wafp::analysis
