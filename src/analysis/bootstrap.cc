#include "analysis/bootstrap.h"

#include <algorithm>
#include <cmath>

namespace wafp::analysis {

BootstrapInterval bootstrap_labels(
    std::span<const int> labels,
    const std::function<double(std::span<const int>)>& statistic,
    std::size_t resamples, double confidence, std::uint64_t seed) {
  BootstrapInterval interval;
  interval.point = statistic(labels);
  if (labels.empty() || resamples == 0) return interval;

  util::Rng rng(seed);
  std::vector<double> values;
  values.reserve(resamples);
  std::vector<int> resample(labels.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < labels.size(); ++i) {
      resample[i] = labels[rng.next_below(labels.size())];
    }
    values.push_back(statistic(resample));
  }
  std::sort(values.begin(), values.end());

  const double alpha = (1.0 - confidence) / 2.0;
  const auto index = [&](double q) {
    const auto i = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    return values[std::min(i, values.size() - 1)];
  };
  interval.low = index(alpha);
  interval.high = index(1.0 - alpha);

  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - mean) * (v - mean);
  interval.std_error = std::sqrt(var / static_cast<double>(values.size()));
  return interval;
}

}  // namespace wafp::analysis
