#include "analysis/verification.h"

#include <stdexcept>
#include <unordered_map>

namespace wafp::analysis {
namespace {

/// C(n, 2) without overflow for the populations this repo simulates.
std::uint64_t pairs2(std::uint64_t n) { return n * (n - 1) / 2; }

}  // namespace

double VerificationCounts::fmr() const {
  if (imposter_trials == 0) return 0.0;
  return static_cast<double>(false_matches) /
         static_cast<double>(imposter_trials);
}

double VerificationCounts::fnmr() const {
  if (probes == 0) return 0.0;
  return static_cast<double>(false_non_matches) /
         static_cast<double>(probes);
}

VerificationCounts& VerificationCounts::operator+=(
    const VerificationCounts& other) {
  probes += other.probes;
  genuine_accepts += other.genuine_accepts;
  false_non_matches += other.false_non_matches;
  false_matches += other.false_matches;
  imposter_trials += other.imposter_trials;
  return *this;
}

PairChurn pair_churn(std::span<const int> previous,
                     std::span<const int> current) {
  if (previous.size() != current.size()) {
    throw std::invalid_argument("pair_churn: label vectors differ in length");
  }
  std::unordered_map<std::uint64_t, std::uint64_t> prev_counts;
  std::unordered_map<std::uint64_t, std::uint64_t> cur_counts;
  std::unordered_map<std::uint64_t, std::uint64_t> joint_counts;
  for (std::size_t i = 0; i < previous.size(); ++i) {
    const auto p = static_cast<std::uint64_t>(static_cast<std::uint32_t>(
        previous[i]));
    const auto c = static_cast<std::uint64_t>(static_cast<std::uint32_t>(
        current[i]));
    ++prev_counts[p];
    ++cur_counts[c];
    ++joint_counts[(p << 32) | c];
  }
  std::uint64_t prev_pairs = 0;
  std::uint64_t cur_pairs = 0;
  std::uint64_t joint_pairs = 0;
  for (const auto& [label, n] : prev_counts) prev_pairs += pairs2(n);
  for (const auto& [label, n] : cur_counts) cur_pairs += pairs2(n);
  for (const auto& [label, n] : joint_counts) joint_pairs += pairs2(n);

  PairChurn churn;
  // Pairs together in both partitions stay joint_pairs; what the previous
  // partition had beyond that was split apart, what the current one has
  // beyond it was merged together.
  churn.split_pairs = prev_pairs - joint_pairs;
  churn.merge_pairs = cur_pairs - joint_pairs;
  return churn;
}

}  // namespace wafp::analysis
