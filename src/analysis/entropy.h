// Diversity measures (paper §4): Shannon bit entropy and normalized
// entropy over fingerprint clusterings, plus tuple combination of vectors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wafp::analysis {

/// e = -sum_i (u_i / U) log2(u_i / U) over cluster sizes u_i.
[[nodiscard]] double shannon_entropy_bits(
    std::span<const std::size_t> cluster_sizes);

/// e / log2(U): 1 means every user is uniquely fingerprintable.
[[nodiscard]] double normalized_entropy(
    std::span<const std::size_t> cluster_sizes, std::size_t total_users);

/// The paper's per-vector diversity row (Tables 2-4).
struct DiversityStats {
  std::size_t distinct = 0;  // number of clusters
  std::size_t unique = 0;    // clusters with exactly one user
  double entropy = 0.0;      // Shannon bits
  double normalized = 0.0;   // entropy / log2(U)
};

/// Compute the row from dense cluster labels (one per user).
[[nodiscard]] DiversityStats diversity_from_labels(
    std::span<const int> labels);

/// Combine several clusterings into their tuple clustering (§4: "we simply
/// compute the diversity of tuples (f_i, g_i, h_i, ...)"); every input must
/// have the same length.
[[nodiscard]] std::vector<int> combine_labels(
    std::span<const std::vector<int>> label_sets);

}  // namespace wafp::analysis
