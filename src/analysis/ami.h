// Adjusted Mutual Information (Vinh, Epps, Bailey 2009/2010) — the
// chance-corrected clustering-agreement measure the paper uses for its
// stability analysis (§3.3, Fig. 5) and cross-vector comparison (Fig. 9).
// AMI = (MI - E[MI]) / (mean(H(U), H(V)) - E[MI]) with the expectation
// taken under the hypergeometric (permutation) model.
#pragma once

#include <span>
#include <vector>

namespace wafp::analysis {

/// Contingency table between two label vectors of equal length.
struct ContingencyTable {
  std::vector<std::vector<std::size_t>> cells;  // [cluster_a][cluster_b]
  std::vector<std::size_t> row_sums;
  std::vector<std::size_t> col_sums;
  std::size_t total = 0;
};

[[nodiscard]] ContingencyTable build_contingency(std::span<const int> a,
                                                 std::span<const int> b);

/// Mutual information (natural log).
[[nodiscard]] double mutual_information(const ContingencyTable& table);

/// Entropy (natural log) of the marginal given by `sums`.
[[nodiscard]] double marginal_entropy(std::span<const std::size_t> sums,
                                      std::size_t total);

/// Expected MI under the hypergeometric model (natural log).
[[nodiscard]] double expected_mutual_information(const ContingencyTable& table);

/// Adjusted Mutual Information with arithmetic-mean normalization (the
/// common default); 1 = identical clusterings, ~0 = chance agreement.
[[nodiscard]] double adjusted_mutual_information(std::span<const int> a,
                                                 std::span<const int> b);

/// Normalized Mutual Information (no chance correction), for comparison.
[[nodiscard]] double normalized_mutual_information(std::span<const int> a,
                                                   std::span<const int> b);

}  // namespace wafp::analysis
