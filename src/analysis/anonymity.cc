#include "analysis/anonymity.h"

#include <algorithm>
#include <unordered_map>

namespace wafp::analysis {

std::vector<std::size_t> anonymity_set_sizes(std::span<const int> labels) {
  std::unordered_map<int, std::size_t> counts;
  for (const int label : labels) ++counts[label];
  std::vector<std::size_t> sizes;
  sizes.reserve(labels.size());
  for (const int label : labels) sizes.push_back(counts[label]);
  return sizes;
}

AnonymityStats anonymity_from_labels(std::span<const int> labels) {
  AnonymityStats stats;
  if (labels.empty()) return stats;

  std::vector<std::size_t> sizes = anonymity_set_sizes(labels);
  std::sort(sizes.begin(), sizes.end());
  stats.min_k = sizes.front();
  stats.max_k = sizes.back();
  stats.median_k = sizes[sizes.size() / 2];

  double sum = 0.0;
  for (const std::size_t k : sizes) {
    if (k == 1) ++stats.unique_users;
    if (k < 5) ++stats.below_5;
    if (k < 20) ++stats.below_20;
    sum += static_cast<double>(k);
  }
  stats.expected_k = sum / static_cast<double>(sizes.size());
  return stats;
}

}  // namespace wafp::analysis
