// Verification metrics (FMR/FNMR) and partition-churn pair counts for the
// temporal-drift scenario suite (DESIGN.md §3k).
//
// The paper measures *identification*; the follow-up literature ("A
// Large-scale Empirical Analysis of Browser Fingerprints Properties for
// Web Authentication", PAPERS.md) frames the service-relevant question as
// *verification*: a probe fingerprint either re-matches its own enrolled
// identity (genuine trial) or collides with someone else's (imposter
// trial). These are the pure counting primitives — integer counts in,
// rates out — shared by the streamed scenario runner; the brute-force
// RefVerifier in tests/scenario re-derives the same numbers from the
// documented rules without touching this header's implementation details
// (the formulas below ARE the spec).
#pragma once

#include <cstdint>
#include <span>

namespace wafp::analysis {

/// Counts from one batch of verification trials. Each probed user
/// contributes one genuine trial and (enrolled_users - 1) imposter trials;
/// a probe whose matched cluster contains m enrolled users scores
/// (m - [own identity in cluster]) false matches.
struct VerificationCounts {
  std::uint64_t probes = 0;             // genuine trials
  std::uint64_t genuine_accepts = 0;    // matched own enrolled identity
  std::uint64_t false_non_matches = 0;  // probes - genuine_accepts
  std::uint64_t false_matches = 0;      // imposter collisions (see above)
  std::uint64_t imposter_trials = 0;    // probes * (enrolled - 1)

  /// False-match rate: false_matches / imposter_trials (0 when no trials).
  [[nodiscard]] double fmr() const;
  /// False-non-match rate: false_non_matches / probes (0 when no probes).
  [[nodiscard]] double fnmr() const;

  VerificationCounts& operator+=(const VerificationCounts& other);

  friend bool operator==(const VerificationCounts&,
                         const VerificationCounts&) = default;
};

/// Collation-stability churn between two epochs' cluster labelings of the
/// same users, counted over user *pairs* (the contingency-table reading of
/// Rand-index movement): a pair clustered together now but apart before is
/// a merge-pair, apart now but together before a split-pair. Zero churn
/// both ways iff the partitions are identical.
struct PairChurn {
  std::uint64_t merge_pairs = 0;
  std::uint64_t split_pairs = 0;

  friend bool operator==(const PairChurn&, const PairChurn&) = default;
};

/// Pair-count churn between dense label vectors of equal length. Runs in
/// O(n) via sum-of-C(n,2) over the label and joint-label histograms.
[[nodiscard]] PairChurn pair_churn(std::span<const int> previous,
                                   std::span<const int> current);

}  // namespace wafp::analysis
