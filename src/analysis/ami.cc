#include "analysis/ami.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"
#include "util/portable_math.h"
#include "util/stats.h"

namespace wafp::analysis {
namespace {

/// Remap arbitrary labels to dense 0..k-1.
std::vector<int> densify(std::span<const int> labels, std::size_t& k) {
  std::unordered_map<int, int> map;
  std::vector<int> out;
  out.reserve(labels.size());
  for (const int label : labels) {
    const auto [it, inserted] =
        map.try_emplace(label, static_cast<int>(map.size()));
    out.push_back(it->second);
  }
  k = map.size();
  return out;
}

}  // namespace

ContingencyTable build_contingency(std::span<const int> a,
                                   std::span<const int> b) {
  WAFP_DCHECK(a.size() == b.size());
  std::size_t ka = 0, kb = 0;
  const std::vector<int> da = densify(a, ka);
  const std::vector<int> db = densify(b, kb);

  ContingencyTable table;
  table.cells.assign(ka, std::vector<std::size_t>(kb, 0));
  table.row_sums.assign(ka, 0);
  table.col_sums.assign(kb, 0);
  table.total = a.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ++table.cells[da[i]][db[i]];
    ++table.row_sums[da[i]];
    ++table.col_sums[db[i]];
  }
  return table;
}

double mutual_information(const ContingencyTable& table) {
  const auto n = static_cast<double>(table.total);
  double mi = 0.0;
  for (std::size_t i = 0; i < table.row_sums.size(); ++i) {
    for (std::size_t j = 0; j < table.col_sums.size(); ++j) {
      const std::size_t nij = table.cells[i][j];
      if (nij == 0) continue;
      const double pij = static_cast<double>(nij) / n;
      const double pi = static_cast<double>(table.row_sums[i]) / n;
      const double pj = static_cast<double>(table.col_sums[j]) / n;
      mi += pij * util::portable_log(pij / (pi * pj));
    }
  }
  return std::max(0.0, mi);
}

double marginal_entropy(std::span<const std::size_t> sums, std::size_t total) {
  const auto n = static_cast<double>(total);
  double h = 0.0;
  for (const std::size_t s : sums) {
    if (s == 0) continue;
    const double p = static_cast<double>(s) / n;
    h -= p * util::portable_log(p);
  }
  return h;
}

double expected_mutual_information(const ContingencyTable& table) {
  // Vinh et al. (2009), Eq. for E[MI] under the hypergeometric model:
  // sum over all (i, j) and all feasible nij of
  //   (nij/N) * ln(N*nij / (a_i*b_j)) * P_hypergeometric(nij; N, a_i, b_j).
  const std::size_t n = table.total;
  const auto nd = static_cast<double>(n);
  const double ln_n_fact = util::ln_factorial(n);

  double emi = 0.0;
  for (const std::size_t ai : table.row_sums) {
    for (const std::size_t bj : table.col_sums) {
      const std::size_t lo =
          ai + bj > n ? ai + bj - n : std::size_t{1};
      const std::size_t hi = std::min(ai, bj);
      for (std::size_t nij = std::max<std::size_t>(lo, 1); nij <= hi; ++nij) {
        const double term1 = static_cast<double>(nij) / nd;
        const double term2 =
            util::portable_log(nd * static_cast<double>(nij) /
                     (static_cast<double>(ai) * static_cast<double>(bj)));
        const double ln_p =
            util::ln_factorial(ai) + util::ln_factorial(bj) +
            util::ln_factorial(n - ai) + util::ln_factorial(n - bj) -
            ln_n_fact - util::ln_factorial(nij) -
            util::ln_factorial(ai - nij) - util::ln_factorial(bj - nij) -
            util::ln_factorial(n - ai - bj + nij);
        emi += term1 * term2 * util::portable_exp(ln_p);
      }
    }
  }
  return emi;
}

double adjusted_mutual_information(std::span<const int> a,
                                   std::span<const int> b) {
  const ContingencyTable table = build_contingency(a, b);
  const double mi = mutual_information(table);
  const double h_a = marginal_entropy(table.row_sums, table.total);
  const double h_b = marginal_entropy(table.col_sums, table.total);
  // Degenerate cases: single-cluster partitions.
  if (h_a == 0.0 && h_b == 0.0) return 1.0;
  const double emi = expected_mutual_information(table);
  const double denom = 0.5 * (h_a + h_b) - emi;
  if (std::fabs(denom) < 1e-15) {
    return mi >= 0.5 * (h_a + h_b) ? 1.0 : 0.0;
  }
  return (mi - emi) / denom;
}

double normalized_mutual_information(std::span<const int> a,
                                     std::span<const int> b) {
  const ContingencyTable table = build_contingency(a, b);
  const double mi = mutual_information(table);
  const double h_a = marginal_entropy(table.row_sums, table.total);
  const double h_b = marginal_entropy(table.col_sums, table.total);
  if (h_a == 0.0 && h_b == 0.0) return 1.0;
  const double denom = 0.5 * (h_a + h_b);
  return denom > 0.0 ? mi / denom : 0.0;
}

}  // namespace wafp::analysis
