#include "analysis/conditional.h"

#include <cmath>

#include "analysis/ami.h"
#include "analysis/entropy.h"
#include "util/check.h"

namespace wafp::analysis {
namespace {

constexpr double kLn2 = 0.6931471805599453;

double entropy_bits_of(std::span<const int> labels) {
  return diversity_from_labels(labels).entropy;
}

}  // namespace

double mutual_information_bits(std::span<const int> x,
                               std::span<const int> y) {
  WAFP_DCHECK(x.size() == y.size());
  const ContingencyTable table = build_contingency(x, y);
  return mutual_information(table) / kLn2;  // nats -> bits
}

double conditional_entropy_bits(std::span<const int> x,
                                std::span<const int> y) {
  // H(X | Y) = H(X) - I(X; Y); clamp tiny negatives from rounding.
  const double h = entropy_bits_of(x) - mutual_information_bits(x, y);
  return h < 0.0 ? 0.0 : h;
}

std::vector<std::vector<double>> conditional_entropy_matrix(
    std::span<const std::vector<int>> label_sets) {
  const std::size_t n = label_sets.size();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      matrix[i][j] =
          i == j ? 0.0 : conditional_entropy_bits(label_sets[i], label_sets[j]);
    }
  }
  return matrix;
}

}  // namespace wafp::analysis
