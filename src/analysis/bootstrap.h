// Bootstrap confidence intervals for diversity estimates.
//
// The paper (§5 "Participant Pool Size") argues its entropy rankings are
// robust to the 2093-user sample size by re-running the analysis on four
// disjoint subsets. Bootstrap resampling is the sharper version of that
// robustness check: resample users with replacement and report the spread
// of the statistic.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.h"

namespace wafp::analysis {

struct BootstrapInterval {
  double point = 0.0;    // statistic on the full sample
  double low = 0.0;      // percentile lower bound
  double high = 0.0;     // percentile upper bound
  double std_error = 0.0;
};

/// Percentile-bootstrap interval for a statistic computed from per-user
/// labels. `statistic` maps a label vector to a scalar (e.g. Shannon
/// entropy); `confidence` in (0, 1), e.g. 0.95.
[[nodiscard]] BootstrapInterval bootstrap_labels(
    std::span<const int> labels,
    const std::function<double(std::span<const int>)>& statistic,
    std::size_t resamples, double confidence, std::uint64_t seed);

}  // namespace wafp::analysis
