// Conditional entropy between fingerprinting vectors: H(X | Y) answers
// "how much of vector X is left once a tracker already knows Y?" — the
// information-theoretic generalization of the paper's §4 additive-value
// analysis and the precise form of the W3C claim it refutes (the claim is
// H(audio | UA) ≈ 0; the paper—and this reproduction—measure it ≫ 0).
#pragma once

#include <span>
#include <vector>

namespace wafp::analysis {

/// H(X | Y) in bits, from dense per-user labels of equal length.
[[nodiscard]] double conditional_entropy_bits(std::span<const int> x,
                                              std::span<const int> y);

/// Mutual information I(X; Y) in bits.
[[nodiscard]] double mutual_information_bits(std::span<const int> x,
                                             std::span<const int> y);

/// Full pairwise conditional-entropy matrix: result[i][j] = H(X_i | X_j).
[[nodiscard]] std::vector<std::vector<double>> conditional_entropy_matrix(
    std::span<const std::vector<int>> label_sets);

}  // namespace wafp::analysis
