// Anonymity-set analysis: the privacy-facing reading of fingerprint
// diversity. A user's anonymity set is the cluster of users sharing their
// fingerprint; its size k is how many people they "hide among". This is
// the lens the paper's Mitigations discussion implies browser vendors use
// when weighing defenses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wafp::analysis {

struct AnonymityStats {
  /// Smallest / median / largest anonymity-set size across users.
  std::size_t min_k = 0;
  std::size_t median_k = 0;
  std::size_t max_k = 0;
  /// Users whose set size is exactly 1 (uniquely identified).
  std::size_t unique_users = 0;
  /// Users with k below 5 / below 20 (weakly protected).
  std::size_t below_5 = 0;
  std::size_t below_20 = 0;
  /// Expected anonymity-set size of a random user (size-biased mean).
  double expected_k = 0.0;

  /// Exact comparison (counts plus a deterministically-derived mean): the
  /// drift-scenario oracle asserts streamed and reference verifiers agree
  /// bit-for-bit, never within a tolerance.
  friend bool operator==(const AnonymityStats&, const AnonymityStats&) =
      default;
};

/// Compute anonymity statistics from dense cluster labels (one per user).
[[nodiscard]] AnonymityStats anonymity_from_labels(std::span<const int> labels);

/// Per-user anonymity-set sizes, aligned with `labels`.
[[nodiscard]] std::vector<std::size_t> anonymity_set_sizes(
    std::span<const int> labels);

}  // namespace wafp::analysis
