#include "webaudio/audio_node.h"

#include <stdexcept>

#include "webaudio/graph_validator.h"
#include "webaudio/offline_audio_context.h"

namespace wafp::webaudio {

AudioNode::AudioNode(OfflineAudioContext& context, std::size_t num_inputs,
                     std::size_t output_channels)
    : context_(context),
      inputs_(num_inputs),
      output_(output_channels, kRenderQuantumFrames) {}

void AudioNode::connect(AudioNode& destination, std::size_t input) {
  if (&destination.context_ != &context_) {
    throw std::invalid_argument(
        "AudioNode::connect: nodes belong to different contexts");
  }
  if (input >= destination.inputs_.size()) {
    throw std::out_of_range("AudioNode::connect: invalid input index");
  }
  validate_connection(*this, destination, input);
  destination.inputs_[input].push_back(this);
}

void AudioNode::connect(AudioParam& param) {
  AudioNode* owner = context_.owner_of(param);
  if (owner == nullptr) {
    throw std::invalid_argument(
        "AudioNode::connect: parameter belongs to a different context");
  }
  validate_param_connection(*this, *owner, param);
  param.add_input(this);
}

std::span<AudioNode* const> AudioNode::input_sources(std::size_t input) const {
  if (input >= inputs_.size()) {
    throw std::out_of_range("AudioNode::input_sources: invalid input index");
  }
  return inputs_[input];
}

void AudioNode::mix_input(std::size_t input, AudioBus& scratch) const {
  scratch.zero();
  for (const AudioNode* source : inputs_[input]) {
    scratch.sum_from(source->output());
  }
}

double AudioNode::sample_rate() const { return context_.sample_rate(); }

const dsp::MathLibrary& AudioNode::math() const { return context_.math(); }

}  // namespace wafp::webaudio
