#include "webaudio/periodic_wave_cache.h"

#include <string_view>

#include "util/hash.h"

namespace wafp::webaudio {
namespace {

std::string_view raw_bytes(std::span<const double> v) {
  return {reinterpret_cast<const char*>(v.data()), v.size_bytes()};
}

}  // namespace

std::shared_ptr<const PeriodicWave> PeriodicWaveCache::standard(
    OscillatorType type, double sample_rate, const EngineConfig& config) {
  const Key key{type, sample_rate};
  {
    util::MutexLock lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Build outside the lock: construction is deterministic, so if two
  // threads race the duplicates are value-identical and either may win.
  auto wave = PeriodicWave::standard(type, sample_rate, config);
  util::MutexLock lock(mu_);
  return cache_.emplace(key, std::move(wave)).first->second;
}

std::shared_ptr<const PeriodicWave> PeriodicWaveCache::custom(
    std::span<const double> real, std::span<const double> imag,
    double sample_rate, const EngineConfig& config, bool normalize) {
  std::uint64_t h = util::fnv1a64(raw_bytes(real));
  h = util::fnv1a64_mix(h, static_cast<std::uint64_t>(real.size()));
  h = util::fnv1a64_mix(h, raw_bytes(imag));
  const CustomKey key{h, sample_rate, normalize};
  {
    util::MutexLock lock(mu_);
    const auto it = custom_cache_.find(key);
    if (it != custom_cache_.end()) return it->second;
  }
  auto wave = std::make_shared<const PeriodicWave>(real, imag, sample_rate,
                                                   config, normalize);
  util::MutexLock lock(mu_);
  return custom_cache_.emplace(key, std::move(wave)).first->second;
}

}  // namespace wafp::webaudio
