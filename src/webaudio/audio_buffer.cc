#include "webaudio/audio_buffer.h"

#include <stdexcept>

namespace wafp::webaudio {

AudioBuffer::AudioBuffer(std::size_t channels, std::size_t length,
                         double sample_rate)
    : length_(length), sample_rate_(sample_rate) {
  if (channels == 0) throw std::invalid_argument("AudioBuffer: 0 channels");
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("AudioBuffer: non-positive sample rate");
  }
  channels_.resize(channels);
  for (auto& ch : channels_) ch.assign(length, 0.0f);
}

}  // namespace wafp::webaudio
