// Connect-time audio-graph validation.
//
// Every fingerprint digest is a pure function of (audio stack, vector,
// jitter) — but only if the graph the vector builds is the graph the
// renderer actually computes. A malformed graph used to surface late (a
// cycle threw std::runtime_error at start_rendering) or not at all (a
// channel mismatch silently up/down-mixed into a plausible-but-wrong
// signal). This validator moves those contracts to the moment the edge is
// created, where the offending call site is still on the stack:
//
//   * a connection that closes a cycle with no DelayNode in it can never
//     render (there is no topological order) — WAFP_CHECK-abort at
//     connect(). Cycles *through* a DelayNode are accepted here (real Web
//     Audio allows delay feedback); this engine's renderer still rejects
//     them at start_rendering() as an unsupported feature, but that is a
//     recoverable std::runtime_error, not a contract violation.
//   * ChannelMergerNode inputs must be mono (the merger stacks K mono
//     lanes into one K-channel bus; feeding it a stereo bus would average
//     channels and fake a lane).
//   * ChannelSplitterNode must select a channel its source actually
//     produces, otherwise it would extract silence.
//
// All checks are WAFP_CHECK (active in every build type): a bad graph must
// never produce a fingerprint.
#pragma once

#include <cstddef>

namespace wafp::webaudio {

class AudioNode;
class AudioParam;

/// True when `node` breaks feedback loops (i.e. is a DelayNode: it reads
/// from the past, so a cycle through it has a well-defined semantics).
[[nodiscard]] bool breaks_cycles(const AudioNode& node);

/// True when some upstream path source <- ... <- destination exists that
/// contains no DelayNode — i.e. adding the edge source -> destination
/// would close a delay-free (unrenderable) cycle. Walks both audio-input
/// and parameter-modulation edges.
[[nodiscard]] bool closes_delay_free_cycle(const AudioNode& source,
                                           const AudioNode& destination);

/// Validate the node edge source -> destination.input before it is added.
/// Aborts via WAFP_CHECK on a delay-free cycle or a channel-count rule
/// violation (merger wants mono, splitter wants its channel to exist).
void validate_connection(const AudioNode& source, const AudioNode& destination,
                         std::size_t input);

/// Validate the modulation edge source -> param before it is added.
/// `param_owner` is the node whose params() contains `param`. Aborts via
/// WAFP_CHECK on a delay-free cycle through the parameter edge.
void validate_param_connection(const AudioNode& source,
                               const AudioNode& param_owner,
                               const AudioParam& param);

}  // namespace wafp::webaudio
