// BiquadFilterNode: the Web Audio second-order IIR filter (Audio EQ
// Cookbook coefficients, computed per the Web Audio spec's parameter
// interpretation). Not used by the paper's seven vectors, but part of the
// real fingerprintable API surface — the filter's coefficient math runs
// through the platform MathLibrary, and getFrequencyResponse() exposes it
// to scripts directly, which is why we ship it and an extension vector
// built on it (see fingerprint/extension_vectors.cc).
#pragma once

#include <array>

#include "util/function_effects.h"
#include "webaudio/audio_node.h"

namespace wafp::webaudio {

enum class BiquadFilterType {
  kLowpass,
  kHighpass,
  kBandpass,
  kLowshelf,
  kHighshelf,
  kPeaking,
  kNotch,
  kAllpass,
};

[[nodiscard]] std::string_view to_string(BiquadFilterType t);

class BiquadFilterNode final : public AudioNode {
 public:
  explicit BiquadFilterNode(OfflineAudioContext& context,
                            std::size_t channels = 1);

  [[nodiscard]] std::string_view node_name() const override {
    return "BiquadFilterNode";
  }

  void set_type(BiquadFilterType type);
  [[nodiscard]] BiquadFilterType type() const { return type_; }

  /// Centre/corner frequency in Hz (default 350).
  [[nodiscard]] AudioParam& frequency() { return frequency_; }
  /// Quality factor; interpreted in dB for lowpass/highpass, linear
  /// otherwise (Web Audio spec).
  [[nodiscard]] AudioParam& q() { return q_; }
  /// Gain in dB (peaking/shelf types only).
  [[nodiscard]] AudioParam& gain() { return gain_; }
  /// Detune in cents applied to frequency.
  [[nodiscard]] AudioParam& detune() { return detune_; }

  std::vector<AudioParam*> params() override {
    return {&frequency_, &q_, &gain_, &detune_};
  }

  /// Complex response magnitude/phase at the given frequencies (Hz) —
  /// Web Audio's getFrequencyResponse. Arrays must share a length.
  void get_frequency_response(std::span<const float> frequencies,
                              std::span<float> mag_response,
                              std::span<float> phase_response);

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  struct Coefficients {
    double b0 = 1.0, b1 = 0.0, b2 = 0.0, a1 = 0.0, a2 = 0.0;
  };

  /// Recompute coefficients from the current (k-rate) parameter values.
  void update_coefficients(double when_time);

  BiquadFilterType type_ = BiquadFilterType::kLowpass;
  AudioParam frequency_;
  AudioParam q_;
  AudioParam gain_;
  AudioParam detune_;

  Coefficients coefficients_;
  double cached_frequency_ = -1.0;
  double cached_q_ = -1.0e99;
  double cached_gain_ = -1.0e99;
  double cached_detune_ = -1.0e99;
  bool coefficients_dirty_ = true;

  AudioBus input_scratch_;
  // Direct-form-I state per channel.
  struct ChannelState {
    double x1 = 0.0, x2 = 0.0, y1 = 0.0, y2 = 0.0;
  };
  std::array<ChannelState, kMaxChannels> state_{};
};

}  // namespace wafp::webaudio
