// DelayNode: fractional delay line with an a-rate delayTime parameter and
// linear interpolation between samples (the Web Audio processing model).
#pragma once

#include <vector>

#include "util/function_effects.h"
#include "webaudio/audio_node.h"

namespace wafp::webaudio {

class DelayNode final : public AudioNode {
 public:
  /// `max_delay_seconds` bounds delayTime (spec default 1.0).
  DelayNode(OfflineAudioContext& context, double max_delay_seconds = 1.0,
            std::size_t channels = 1);

  [[nodiscard]] std::string_view node_name() const override {
    return "DelayNode";
  }

  /// Delay in seconds, clamped to [0, maxDelay]; a-rate.
  [[nodiscard]] AudioParam& delay_time() { return delay_time_; }

  std::vector<AudioParam*> params() override { return {&delay_time_}; }

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  AudioParam delay_time_;
  AudioBus input_scratch_;
  std::vector<std::vector<float>> ring_;  // per channel
  std::size_t ring_frames_ = 0;
  std::size_t write_index_ = 0;
};

}  // namespace wafp::webaudio
