// DynamicsCompressorNode: the nonlinear stage exploited by the paper's DC
// vector (Fig. 1). The kernel is modelled on Blink's
// DynamicsCompressorKernel: a soft-knee static curve whose knee constant is
// found by a numeric solver, look-ahead pre-delay, attack/adaptive-release
// gain smoothing, makeup gain, and a gain-reduction meter.
//
// Every transcendental in the kernel (the exp of the knee curve, the pow of
// the slope region and makeup gain, the dB conversions) runs through the
// platform MathLibrary, and the CompressorTuning micro-variant models
// vendor/version differences — together these are what make the DC
// fingerprint differ across simulated platforms while staying perfectly
// stable on any one platform (no jitter enters this path).
#pragma once

#include <vector>

#include "util/function_effects.h"
#include "webaudio/audio_node.h"

namespace wafp::webaudio {

class DynamicsCompressorNode final : public AudioNode {
 public:
  explicit DynamicsCompressorNode(OfflineAudioContext& context,
                                  std::size_t channels = 1);

  [[nodiscard]] std::string_view node_name() const override {
    return "DynamicsCompressorNode";
  }

  /// Web Audio parameters (k-rate; defaults per spec).
  [[nodiscard]] AudioParam& threshold() { return threshold_; }  // dB, -24
  [[nodiscard]] AudioParam& knee() { return knee_; }            // dB, 30
  [[nodiscard]] AudioParam& ratio() { return ratio_; }          // 12
  [[nodiscard]] AudioParam& attack() { return attack_; }        // s, 0.003
  [[nodiscard]] AudioParam& release() { return release_; }      // s, 0.25

  /// Current gain reduction in dB (<= 0), Web Audio `reduction` attribute.
  [[nodiscard]] float reduction() const { return reduction_; }

  std::vector<AudioParam*> params() override {
    return {&threshold_, &knee_, &ratio_, &attack_, &release_};
  }

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  struct Curve {
    double linear_threshold = 0.0;
    double knee_end_linear = 0.0;
    double knee_end_db = 0.0;
    double slope = 1.0;
    double k = 1.0;
    double makeup_gain = 1.0;
  };

  /// Soft-knee curve below knee end (linear in, linear out).
  [[nodiscard]] double knee_curve(double x) const;
  /// Full static curve (knee + ratio-slope region).
  [[nodiscard]] double saturate(double x) const;
  /// Logarithmic slope (dB-out per dB-in) of knee_curve at x, estimated
  /// numerically exactly as Blink's solver does.
  [[nodiscard]] double knee_slope_at(double x, double k) const;
  /// Bisection solve for the knee constant giving slope 1/ratio at the end
  /// of the knee.
  [[nodiscard]] double solve_k() const;

  /// Recompute derived curve state when parameter values change.
  void update_curve(double when_time);

  AudioParam threshold_;
  AudioParam knee_;
  AudioParam ratio_;
  AudioParam attack_;
  AudioParam release_;

  Curve curve_;
  double cached_threshold_ = 1.0e99;  // force first update
  double cached_knee_ = 1.0e99;
  double cached_ratio_ = 1.0e99;

  AudioBus input_scratch_;
  std::vector<std::vector<float>> pre_delay_;  // per channel ring buffer
  std::size_t pre_delay_frames_ = 0;
  std::size_t pre_delay_index_ = 0;

  double compressor_gain_ = 1.0;
  double metering_gain_ = 1.0;
  float reduction_ = 0.0f;
};

}  // namespace wafp::webaudio
