#include "webaudio/script_processor_node.h"

#include <stdexcept>

#include "webaudio/offline_audio_context.h"

namespace wafp::webaudio {

ScriptProcessorNode::ScriptProcessorNode(OfflineAudioContext& context,
                                         std::size_t buffer_size,
                                         std::size_t channels)
    : AudioNode(context, /*num_inputs=*/1, channels),
      input_scratch_(channels, kRenderQuantumFrames) {
  // Spec: power of two in [256, 16384].
  if (buffer_size < 256 || buffer_size > 16384 ||
      (buffer_size & (buffer_size - 1)) != 0) {
    throw std::invalid_argument(
        "ScriptProcessorNode: buffer size must be a power of two in "
        "[256, 16384]");
  }
  block_.assign(buffer_size, 0.0f);
}

void ScriptProcessorNode::set_on_audio_process(AudioProcessCallback callback) {
  callback_ = std::move(callback);
}

void ScriptProcessorNode::process(std::size_t start_frame,
                                  std::size_t frames) {
  mix_input(0, input_scratch_);
  mutable_output().copy_from(input_scratch_);

  // Mono-mix into the pending block; fire the callback per completed block.
  const std::size_t channels = input_scratch_.channels();
  for (std::size_t i = 0; i < frames; ++i) {
    float acc = 0.0f;
    for (std::size_t c = 0; c < channels; ++c) {
      acc += input_scratch_.channel(c)[i];
    }
    block_[filled_++] = acc / static_cast<float>(channels);
    if (filled_ == block_.size()) {
      filled_ = 0;
      if (callback_) callback_(block_, start_frame + i + 1);
    }
  }
}

}  // namespace wafp::webaudio
