// The result of an offline render: per-channel float32 sample arrays,
// mirroring Web Audio's AudioBuffer. Fingerprint vectors hash these samples
// bit-exactly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wafp::webaudio {

class AudioBuffer {
 public:
  AudioBuffer(std::size_t channels, std::size_t length, double sample_rate);

  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  [[nodiscard]] std::size_t length() const { return length_; }
  [[nodiscard]] double sample_rate() const { return sample_rate_; }
  [[nodiscard]] double duration() const {
    return static_cast<double>(length_) / sample_rate_;
  }

  [[nodiscard]] std::span<float> channel(std::size_t c) {
    return channels_[c];
  }
  [[nodiscard]] std::span<const float> channel(std::size_t c) const {
    return channels_[c];
  }

 private:
  std::vector<std::vector<float>> channels_;
  std::size_t length_;
  double sample_rate_;
};

}  // namespace wafp::webaudio
