#include "webaudio/channel_merger_node.h"

#include <stdexcept>

#include "webaudio/offline_audio_context.h"

namespace wafp::webaudio {

ChannelMergerNode::ChannelMergerNode(OfflineAudioContext& context,
                                     std::size_t num_inputs)
    : AudioNode(context, num_inputs, num_inputs),
      input_scratch_(1, kRenderQuantumFrames) {
  if (num_inputs == 0 || num_inputs > kMaxChannels) {
    throw std::invalid_argument("ChannelMergerNode: bad input count");
  }
}

void ChannelMergerNode::process(std::size_t /*start_frame*/,
                                std::size_t frames) {
  AudioBus& out = mutable_output();
  for (std::size_t input = 0; input < num_inputs(); ++input) {
    mix_input(input, input_scratch_);  // mono-mixes each input slot
    const float* in = input_scratch_.channel(0);
    float* dst = out.channel(input);
    for (std::size_t i = 0; i < frames; ++i) dst[i] = in[i];
  }
}

}  // namespace wafp::webaudio
