#include "webaudio/oscillator_node.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "webaudio/offline_audio_context.h"
#include "webaudio/periodic_wave_cache.h"

namespace wafp::webaudio {

OscillatorNode::OscillatorNode(OfflineAudioContext& context,
                               OscillatorType type)
    : AudioNode(context, /*num_inputs=*/0, /*output_channels=*/1),
      type_(type),
      frequency_("frequency", 440.0, -context.sample_rate() / 2.0,
                 context.sample_rate() / 2.0),
      detune_("detune", 0.0, -153600.0, 153600.0) {
  if (type == OscillatorType::kCustom) {
    throw std::invalid_argument(
        "OscillatorNode: construct with a standard type, then call "
        "set_periodic_wave for custom waves");
  }
}

void OscillatorNode::set_type(OscillatorType type) {
  if (type == OscillatorType::kCustom) {
    throw std::invalid_argument(
        "OscillatorNode::set_type: use set_periodic_wave for custom waves");
  }
  type_ = type;
  wave_.reset();
}

void OscillatorNode::set_periodic_wave(
    std::shared_ptr<const PeriodicWave> wave) {
  if (!wave) {
    throw std::invalid_argument("OscillatorNode: null PeriodicWave");
  }
  type_ = OscillatorType::kCustom;
  wave_ = std::move(wave);
}

void OscillatorNode::start(double when) {
  if (started_) {
    throw std::runtime_error("OscillatorNode::start called twice");
  }
  started_ = true;
  start_time_ = when;
}

void OscillatorNode::stop(double when) {
  if (!started_) {
    throw std::runtime_error("OscillatorNode::stop before start");
  }
  stop_time_ = when;
}

void OscillatorNode::build_wave() {
  const auto& cfg = context().config();
  wave_ = cfg.wave_cache ? cfg.wave_cache->standard(type_, sample_rate(), cfg)
                         : PeriodicWave::standard(type_, sample_rate(), cfg);
}

void OscillatorNode::process(std::size_t start_frame, std::size_t frames) {
  AudioBus& out = mutable_output();
  out.zero();
  if (!started_) return;

  if (!wave_) {
    // First-quantum lazy build (cold path): steady-state renders are proven
    // build-free by the periodic_wave_builds() counter audit in the serve
    // steady-state test, so the allocation lives in a helper outside the
    // nonallocating contract.
    // wafp-lint: allow(nonallocating): first-quantum wave build (see above)
    build_wave();
  }

  std::array<float, kRenderQuantumFrames> freq_values;
  std::array<float, kRenderQuantumFrames> detune_values;
  const double start_time =
      static_cast<double>(start_frame) / sample_rate();
  frequency_.compute_values(std::span(freq_values.data(), frames), start_time,
                            sample_rate(), math());
  detune_.compute_values(std::span(detune_values.data(), frames), start_time,
                         sample_rate(), math());

  float* samples = out.channel(0);
  const double dt = 1.0 / sample_rate();

  // Constant-rate fast path: when neither param is automated this quantum
  // and every frame is live, the detune pow and the wavetable range
  // selection hoist out of the loop. Both are pure functions of the (now
  // constant) frequency, so the emitted samples are bit-identical to the
  // generic loop — only the phase recursion remains per sample.
  const bool freq_constant =
      std::all_of(freq_values.begin(), freq_values.begin() + frames,
                  [&](float v) { return v == freq_values[0]; });
  const bool detune_constant =
      std::all_of(detune_values.begin(), detune_values.begin() + frames,
                  [&](float v) { return v == detune_values[0]; });
  const double last_t =
      start_time + static_cast<double>(frames - 1) * dt;
  const bool all_live =
      frames > 0 && start_time >= start_time_ &&
      (stop_time_ < 0.0 || last_t < stop_time_);

  if (freq_constant && detune_constant && all_live) {
    double f = freq_values[0];
    if (detune_values[0] != 0.0f) {
      f *= math().pow(2.0, static_cast<double>(detune_values[0]) / 1200.0);
    }
    const auto sampler = wave_->constant_rate_sampler(f);
    const double dphase = f * dt;
    for (std::size_t i = 0; i < frames; ++i) {
      samples[i] = sampler(phase_);
      phase_ += dphase;
      phase_ -= std::floor(phase_);  // wrap to [0, 1)
    }
    return;
  }

  for (std::size_t i = 0; i < frames; ++i) {
    const double t = start_time + static_cast<double>(i) * dt;
    if (t < start_time_ || (stop_time_ >= 0.0 && t >= stop_time_)) {
      samples[i] = 0.0f;
      continue;
    }
    double f = freq_values[i];
    if (detune_values[i] != 0.0f) {
      f *= math().pow(2.0, static_cast<double>(detune_values[i]) / 1200.0);
    }
    samples[i] = wave_->sample(phase_, f);
    phase_ += f * dt;
    phase_ -= std::floor(phase_);  // wrap to [0, 1), handles negative f too
  }
}

}  // namespace wafp::webaudio
