#include "webaudio/periodic_wave.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/simd.h"
#include "util/check.h"
#include "util/portable_math.h"

namespace wafp::webaudio {
namespace {

constexpr double kPi = std::numbers::pi;

std::atomic<std::uint64_t> g_wave_builds{0};

/// Fourier sine coefficients b_k (k >= 1) of the spec waveforms. These are
/// exact rational-in-pi constants; platform flavour enters through the
/// inverse FFT and normalization, as in Blink.
double standard_sine_coefficient(OscillatorType type, std::size_t k) {
  const auto kd = static_cast<double>(k);
  switch (type) {
    case OscillatorType::kSine:
      return k == 1 ? 1.0 : 0.0;
    case OscillatorType::kSquare:
      return (k % 2 == 1) ? 4.0 / (kd * kPi) : 0.0;
    case OscillatorType::kSawtooth:
      return (k % 2 == 1 ? 1.0 : -1.0) * 2.0 / (kd * kPi);
    case OscillatorType::kTriangle:
      if (k % 2 == 0) return 0.0;
      return (k % 4 == 1 ? 1.0 : -1.0) * 8.0 / (kPi * kPi * kd * kd);
    case OscillatorType::kCustom:
      break;
  }
  return 0.0;
}

}  // namespace

std::string_view to_string(OscillatorType t) {
  switch (t) {
    case OscillatorType::kSine: return "sine";
    case OscillatorType::kSquare: return "square";
    case OscillatorType::kSawtooth: return "sawtooth";
    case OscillatorType::kTriangle: return "triangle";
    case OscillatorType::kCustom: return "custom";
  }
  return "unknown";
}

std::size_t PeriodicWave::max_partials_for_range(std::size_t r) {
  // Range 0 keeps 4 partials; each range doubles, up to kTableSize/4.
  return std::min<std::size_t>(std::size_t{4} << r, kTableSize / 4);
}

PeriodicWave::PeriodicWave(std::span<const double> real,
                           std::span<const double> imag, double sample_rate,
                           const EngineConfig& config, bool normalize)
    : sample_rate_(sample_rate), nyquist_(sample_rate / 2.0) {
  if (!config.fft || !config.math) {
    throw std::invalid_argument("PeriodicWave: config missing math/fft");
  }
  const std::size_t coeff_count = std::max(real.size(), imag.size());

  tables_.resize(kNumRanges);
  std::vector<double> re(kTableSize), im(kTableSize);
  for (std::size_t r = 0; r < kNumRanges; ++r) {
    const std::size_t partials =
        std::min(max_partials_for_range(r),
                 coeff_count == 0 ? std::size_t{0} : coeff_count - 1);
    std::fill(re.begin(), re.end(), 0.0);
    std::fill(im.begin(), im.end(), 0.0);
    // x_n = sum_k a_k cos(2 pi n k / N) + b_k sin(2 pi n k / N)
    // <=> X_k = (N/2)(a_k - i b_k), X_{N-k} = conj(X_k).
    for (std::size_t k = 1; k <= partials; ++k) {
      const double a = k < real.size() ? real[k] : 0.0;
      const double b = k < imag.size() ? imag[k] : 0.0;
      const double scale = static_cast<double>(kTableSize) / 2.0;
      re[k] = a * scale;
      im[k] = -b * scale;
      re[kTableSize - k] = a * scale;
      im[kTableSize - k] = b * scale;
    }
    config.fft->inverse(re, im);

    auto& table = tables_[r];
    table.resize(kTableSize + 1);
    for (std::size_t n = 0; n < kTableSize; ++n) {
      table[n] = static_cast<float>(re[n]);
    }
    table[kTableSize] = table[0];
  }

  if (normalize) {
    // Blink-style: one scale derived from the full-bandwidth table, applied
    // to every range so relative band-limiting is preserved. Both the
    // max-|x| reduction (order-independent, hence exact) and the rescale go
    // through the batch kernel layer.
    const dsp::SimdOps& ops = dsp::simd_ops();
    const auto& full = tables_.back();
    const float max_abs = ops.vmax_abs_f32(full.data(), full.size());
    if (max_abs > 0.0f) {
      const float scale = 1.0f / max_abs;
      for (auto& table : tables_) {
        ops.vscale_f32(table.data(), scale, table.size());
      }
    }
  }
  g_wave_builds.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t periodic_wave_builds() {
  return g_wave_builds.load(std::memory_order_relaxed);
}

std::shared_ptr<const PeriodicWave> PeriodicWave::standard(
    OscillatorType type, double sample_rate, const EngineConfig& config) {
  if (type == OscillatorType::kCustom) {
    throw std::invalid_argument(
        "PeriodicWave::standard: custom waves need explicit coefficients");
  }
  const std::size_t coeffs = kTableSize / 4 + 1;
  std::vector<double> real(coeffs, 0.0), imag(coeffs, 0.0);
  for (std::size_t k = 1; k < coeffs; ++k) {
    imag[k] = standard_sine_coefficient(type, k);
  }
  return std::make_shared<const PeriodicWave>(real, imag, sample_rate, config,
                                              /*normalize=*/true);
}

double PeriodicWave::range_position(double fundamental_hz) const {
  const double f = std::max(std::fabs(fundamental_hz), 1.0);
  const double allowed = std::max(nyquist_ / f, 1.0);
  // Range r admits 4 * 2^r partials; invert that relationship. Range
  // selection is render-neutral plumbing (Blink computes it with whatever
  // log2f it links, but for us a host-libm call here would fork committed
  // goldens across build hosts), so it uses the portable kernel — the
  // platform-flavoured math stays in the table synthesis above.
  const double pos = util::portable_log2(allowed / 4.0);
  return std::clamp(pos, 0.0, static_cast<double>(kNumRanges - 1));
}

float PeriodicWave::table_lookup(const std::vector<float>& table,
                                 double phase) {
  const double pos = phase * static_cast<double>(kTableSize);
  const auto idx = static_cast<std::size_t>(pos);
  const auto t = static_cast<float>(pos - static_cast<double>(idx));
  return table[idx] + t * (table[idx + 1] - table[idx]);
}

float PeriodicWave::sample(double phase, double fundamental_hz) const {
  WAFP_DCHECK(phase >= 0.0 && phase < 1.0);
  const double pos = range_position(fundamental_hz);
  const auto lower = static_cast<std::size_t>(pos);
  const auto frac = static_cast<float>(pos - static_cast<double>(lower));
  const float a = table_lookup(tables_[lower], phase);
  if (frac == 0.0f || lower + 1 >= kNumRanges) return a;
  const float b = table_lookup(tables_[lower + 1], phase);
  // Blend toward the less band-limited table as the fundamental drops.
  return a + frac * (b - a);
}

PeriodicWave::ConstantRateSampler PeriodicWave::constant_rate_sampler(
    double fundamental_hz) const {
  const double pos = range_position(fundamental_hz);
  const auto lower = static_cast<std::size_t>(pos);
  const auto frac = static_cast<float>(pos - static_cast<double>(lower));
  ConstantRateSampler s;
  s.lower_ = &tables_[lower];
  s.frac_ = frac;
  if (frac != 0.0f && lower + 1 < kNumRanges) s.upper_ = &tables_[lower + 1];
  return s;
}

}  // namespace wafp::webaudio
