#include "webaudio/iir_filter_node.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/denormal.h"
#include "webaudio/offline_audio_context.h"

namespace wafp::webaudio {

IIRFilterNode::IIRFilterNode(OfflineAudioContext& context,
                             std::vector<double> feedforward,
                             std::vector<double> feedback,
                             std::size_t channels)
    : AudioNode(context, /*num_inputs=*/1, channels),
      input_scratch_(channels, kRenderQuantumFrames) {
  if (feedforward.empty() || feedforward.size() > 20 || feedback.empty() ||
      feedback.size() > 20) {
    throw std::invalid_argument(
        "IIRFilterNode: coefficient arrays must have 1..20 entries");
  }
  if (feedback[0] == 0.0) {
    throw std::invalid_argument("IIRFilterNode: feedback[0] must be nonzero");
  }
  const bool all_zero = std::all_of(feedforward.begin(), feedforward.end(),
                                    [](double v) { return v == 0.0; });
  if (all_zero) {
    throw std::invalid_argument(
        "IIRFilterNode: feedforward must not be all zero");
  }

  // Normalize by a[0].
  const double a0 = feedback[0];
  b_.reserve(feedforward.size());
  for (const double b : feedforward) b_.push_back(b / a0);
  a_.reserve(feedback.size() - 1);
  for (std::size_t k = 1; k < feedback.size(); ++k) {
    a_.push_back(feedback[k] / a0);
  }

  x_history_.assign(channels, std::vector<double>(b_.size(), 0.0));
  y_history_.assign(channels, std::vector<double>(a_.size(), 0.0));
}

void IIRFilterNode::process(std::size_t /*start_frame*/, std::size_t frames) {
  mix_input(0, input_scratch_);
  AudioBus& out = mutable_output();
  const auto& cfg = context().config();

  for (std::size_t ch = 0; ch < out.channels(); ++ch) {
    const float* in = input_scratch_.channel(ch);
    float* dst = out.channel(ch);
    std::vector<double>& xh = x_history_[ch];
    std::vector<double>& yh = y_history_[ch];
    for (std::size_t i = 0; i < frames; ++i) {
      // Shift histories (order <= 20, so the naive shift is fine).
      for (std::size_t k = xh.size() - 1; k > 0; --k) xh[k] = xh[k - 1];
      xh[0] = static_cast<double>(in[i]);

      double y = 0.0;
      for (std::size_t k = 0; k < b_.size(); ++k) y += b_[k] * xh[k];
      for (std::size_t k = 0; k < a_.size(); ++k) y -= a_[k] * yh[k];
      y = dsp::flush_denormal(y, cfg.denormal);

      if (!yh.empty()) {
        for (std::size_t k = yh.size() - 1; k > 0; --k) yh[k] = yh[k - 1];
        yh[0] = y;
      }
      dst[i] = static_cast<float>(y);
    }
  }
}

void IIRFilterNode::get_frequency_response(
    std::span<const float> frequencies, std::span<float> mag_response,
    std::span<float> phase_response) const {
  if (frequencies.size() != mag_response.size() ||
      frequencies.size() != phase_response.size()) {
    throw std::invalid_argument(
        "IIRFilterNode::get_frequency_response: array lengths differ");
  }
  const auto& m = math();
  const double nyquist = sample_rate() / 2.0;
  for (std::size_t i = 0; i < frequencies.size(); ++i) {
    const double normalized =
        std::clamp(static_cast<double>(frequencies[i]) / nyquist, 0.0, 1.0);
    const double w = std::numbers::pi * normalized;
    double num_re = 0.0, num_im = 0.0, den_re = 1.0, den_im = 0.0;
    for (std::size_t k = 0; k < b_.size(); ++k) {
      const double phase = w * static_cast<double>(k);
      num_re += b_[k] * m.cos(phase);
      num_im -= b_[k] * m.sin(phase);
    }
    for (std::size_t k = 0; k < a_.size(); ++k) {
      const double phase = w * static_cast<double>(k + 1);
      den_re += a_[k] * m.cos(phase);
      den_im -= a_[k] * m.sin(phase);
    }
    const double den_mag2 = den_re * den_re + den_im * den_im;
    const double re = (num_re * den_re + num_im * den_im) / den_mag2;
    const double im = (num_im * den_re - num_re * den_im) / den_mag2;
    mag_response[i] = static_cast<float>(m.sqrt(re * re + im * im));
    // Through the variant atan2 (not host libm): the phase battery is
    // hashed into the filter-response fingerprint vector.
    phase_response[i] = static_cast<float>(m.atan2(im, re));
  }
}

}  // namespace wafp::webaudio
