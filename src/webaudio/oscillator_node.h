// OscillatorNode: the signal source of every fingerprinting vector in the
// paper (triangle @ 10 kHz for DC/FFT/Hybrid; four shapes for Merged
// Signals; carrier/modulator pairs for AM/FM).
#pragma once

#include <memory>

#include "util/function_effects.h"
#include "webaudio/audio_node.h"
#include "webaudio/periodic_wave.h"

namespace wafp::webaudio {

class OscillatorNode final : public AudioNode {
 public:
  OscillatorNode(OfflineAudioContext& context,
                 OscillatorType type = OscillatorType::kSine);

  [[nodiscard]] std::string_view node_name() const override {
    return "OscillatorNode";
  }

  /// Frequency in Hz; a-rate, accepts modulation connections (FM vector).
  [[nodiscard]] AudioParam& frequency() { return frequency_; }
  /// Detune in cents; applied as frequency * 2^(detune/1200).
  [[nodiscard]] AudioParam& detune() { return detune_; }

  [[nodiscard]] OscillatorType type() const { return type_; }

  /// Switch to one of the standard shapes (throws for kCustom; use
  /// set_periodic_wave instead).
  void set_type(OscillatorType type);

  /// Provide a custom wavetable (sets type to kCustom).
  void set_periodic_wave(std::shared_ptr<const PeriodicWave> wave);

  /// Schedule playback, seconds. start() may be called once.
  void start(double when = 0.0);
  void stop(double when);

  std::vector<AudioParam*> params() override {
    return {&frequency_, &detune_};
  }

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  /// First-quantum cold path: resolves the periodic wave (cache hit or
  /// build). Kept out of the WAFP_NONALLOCATING contract — see process().
  void build_wave();

  OscillatorType type_;
  std::shared_ptr<const PeriodicWave> wave_;
  AudioParam frequency_;
  AudioParam detune_;
  double phase_ = 0.0;  // normalized [0, 1)
  bool started_ = false;
  double start_time_ = 0.0;
  double stop_time_ = -1.0;  // < 0: never
};

}  // namespace wafp::webaudio
