#include "webaudio/gain_node.h"

#include <array>

#include "dsp/simd.h"
#include "webaudio/offline_audio_context.h"

namespace wafp::webaudio {

GainNode::GainNode(OfflineAudioContext& context, std::size_t channels)
    : AudioNode(context, /*num_inputs=*/1, channels),
      gain_("gain", 1.0, -1.0e9, 1.0e9),
      input_scratch_(channels, kRenderQuantumFrames) {}

void GainNode::process(std::size_t start_frame, std::size_t frames) {
  mix_input(0, input_scratch_);

  std::array<float, kRenderQuantumFrames> gain_values;
  const double start_time = static_cast<double>(start_frame) / sample_rate();
  gain_.compute_values(std::span(gain_values.data(), frames), start_time,
                       sample_rate(), math());

  AudioBus& out = mutable_output();
  const dsp::SimdOps& ops = dsp::simd_ops();
  for (std::size_t c = 0; c < out.channels(); ++c) {
    ops.vmul_f32(out.channel(c), input_scratch_.channel(c),
                 gain_values.data(), frames);
  }
}

}  // namespace wafp::webaudio
