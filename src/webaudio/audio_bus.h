// A fixed-size block of interleaved-by-channel float samples — the unit of
// data flowing between nodes during one render quantum. Web Audio renders in
// 128-frame quanta with float32 samples; we keep both choices since they are
// visible in fingerprint hashes.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace wafp::webaudio {

/// Frames per render quantum (Web Audio spec fixed value).
inline constexpr std::size_t kRenderQuantumFrames = 128;

/// Maximum channel count the engine carries (enough for the paper's
/// four-oscillator ChannelMerger graph).
inline constexpr std::size_t kMaxChannels = 8;

class AudioBus {
 public:
  explicit AudioBus(std::size_t channels = 1,
                    std::size_t frames = kRenderQuantumFrames);

  [[nodiscard]] std::size_t channels() const { return channels_; }
  [[nodiscard]] std::size_t frames() const { return frames_; }

  [[nodiscard]] float* channel(std::size_t c) { return data_[c].data(); }
  [[nodiscard]] const float* channel(std::size_t c) const {
    return data_[c].data();
  }

  void set_channel_count(std::size_t channels);
  void zero();

  /// Mix `source` into this bus (accumulating), applying Web Audio
  /// up/down-mix rules: mono -> N replicates; N -> mono averages; otherwise
  /// channels are matched index-wise and surplus source channels fold into
  /// the last destination channel.
  void sum_from(const AudioBus& source);

  /// Overwrite this bus with a copy of `source` (after channel mixing).
  void copy_from(const AudioBus& source);

 private:
  std::size_t channels_;
  std::size_t frames_;
  std::array<std::vector<float>, kMaxChannels> data_;
};

}  // namespace wafp::webaudio
