// Configuration binding an audio render to a simulated platform stack.
//
// A real browser's audio pipeline is parameterized by its build: which libm
// it links, which FFT library the analyser uses, FTZ mode of the render
// thread, vendor tweaks to the compressor, and the device sample rate. This
// struct is our stand-in for that build surface — the fingerprinting layer
// fills it from a PlatformProfile.
#pragma once

#include <cstdint>
#include <memory>

#include "dsp/denormal.h"
#include "dsp/fft.h"
#include "dsp/math_library.h"

namespace wafp::obs {
class MetricsRegistry;
}  // namespace wafp::obs

namespace wafp::webaudio {

class PeriodicWaveCache;

/// Micro-variants of the dynamics-compressor kernel, representing vendor /
/// version differences (Chromium revisions, Gecko's independent kernel).
struct CompressorTuning {
  /// Look-ahead delay applied to the signal path.
  double pre_delay_seconds = 0.006;
  /// One-pole time constant for the gain-reduction meter.
  double metering_release_seconds = 0.325;
  /// Release-time multipliers at the four adaptive-release fit points.
  double release_zone1 = 1.0;
  double release_zone2 = 1.2;
  double release_zone3 = 2.0;
  double release_zone4 = 3.3;
  /// Exponent of the makeup ("master") gain curve.
  double makeup_exponent = 0.6;
  /// Step factor of the knee-parameter bisection solver; coarser solvers
  /// settle on slightly different knee constants.
  double knee_solver_tolerance = 1e-7;

  friend bool operator==(const CompressorTuning&,
                         const CompressorTuning&) = default;
};

/// Micro-variants of the analyser's spectrum pipeline — window constants
/// and default smoothing changed across real browser releases, and they are
/// visible only to FFT-based vectors (the DC path has no analyser). This is
/// what makes the paper's FFT-family vectors more diverse than DC
/// (Table 2: 73-87 distinct vs 59).
struct AnalyserTuning {
  /// Blackman window alpha (0.16 is the textbook constant).
  double blackman_alpha = 0.16;
  /// Default smoothingTimeConstant (Web Audio spec default 0.8).
  double smoothing = 0.8;

  friend bool operator==(const AnalyserTuning&,
                         const AnalyserTuning&) = default;
};

/// Render-time perturbation state modelling the paper's observed
/// "fickleness" (§3.1): FFT-based vectors occasionally hash differently on
/// the same machine, which the authors attribute to the analysis path (the
/// DC vector never wavers). We model two mechanisms:
///
///  * `state` > 0 — a platform-determined capture-timing skew: the analyser
///    reads its FFT block at a slightly shifted ring-buffer offset. The same
///    (platform, state) pair always produces the same digest, so different
///    users on identical stacks can still collide — which is what makes the
///    paper's graph collation (§3.2) merge clusters.
///  * `chaos_seed` != 0 — a one-off transient glitch (scheduling hiccup /
///    load spike) that perturbs isolated analyser bins by one ULP; such
///    digests are effectively unique, giving the long tail of Table 1.
///
/// Both only touch the analyser path; the time-domain signal chain is
/// untouched, so DC-only fingerprints stay perfectly stable.
struct RenderJitter {
  std::uint32_t state = 0;
  std::uint64_t chaos_seed = 0;

  [[nodiscard]] bool is_stable() const { return state == 0 && chaos_seed == 0; }
};

/// Everything an OfflineAudioContext needs to know about the simulated
/// platform it renders on.
struct EngineConfig {
  std::shared_ptr<const dsp::MathLibrary> math;
  std::shared_ptr<const dsp::FftEngine> fft;
  dsp::DenormalPolicy denormal = dsp::DenormalPolicy::kPreserve;
  /// Whether hot multiply-accumulate kernels contract to fused
  /// multiply-adds (see dsp/fma.h).
  bool fma_contraction = false;
  CompressorTuning compressor;
  AnalyserTuning analyser;
  RenderJitter jitter;

  /// Shared wavetable cache (periodic_wave_cache.h). Waves depend only on
  /// `fft` and `math`, so configs built from the same platform stack should
  /// share one instance. nullptr = oscillators build waves per render
  /// (value-identical, just slower).
  std::shared_ptr<PeriodicWaveCache> wave_cache;

  /// Metrics sink for render instrumentation (per-node process time,
  /// whole-render latency). nullptr = obs::MetricsRegistry::global().
  /// Purely observational: digests are identical with any sink.
  obs::MetricsRegistry* metrics = nullptr;

  /// A config with host math, radix-2 FFT, and no jitter.
  [[nodiscard]] static EngineConfig reference();
};

}  // namespace wafp::webaudio
