#include "webaudio/offline_audio_context.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "dsp/fft.h"
#include "obs/metrics.h"

namespace wafp::webaudio {

EngineConfig EngineConfig::reference() {
  EngineConfig cfg;
  cfg.math = dsp::make_math_library(dsp::MathVariant::kPrecise);
  cfg.fft = dsp::make_fft_engine(dsp::FftVariant::kRadix2, cfg.math);
  return cfg;
}

OfflineAudioContext::OfflineAudioContext(std::size_t channels,
                                         std::size_t length,
                                         double sample_rate,
                                         EngineConfig config)
    : config_(std::move(config)), sample_rate_(sample_rate), length_(length) {
  if (channels == 0 || channels > kMaxChannels) {
    throw std::invalid_argument("OfflineAudioContext: bad channel count");
  }
  if (length == 0) {
    throw std::invalid_argument("OfflineAudioContext: zero length");
  }
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("OfflineAudioContext: bad sample rate");
  }
  if (!config_.math || !config_.fft) {
    throw std::invalid_argument("OfflineAudioContext: config missing math/fft");
  }
  target_ = std::make_unique<AudioBuffer>(channels, length, sample_rate);
  destination_ = &create<DestinationNode>(channels, *target_);
}

OfflineAudioContext::~OfflineAudioContext() = default;

AudioNode* OfflineAudioContext::owner_of(const AudioParam& param) const {
  for (const auto& node : nodes_) {
    for (const AudioParam* candidate : node->params()) {
      if (candidate == &param) return node.get();
    }
  }
  return nullptr;
}

std::vector<AudioNode*> OfflineAudioContext::topological_order() const {
  enum class Mark { kUnvisited, kInProgress, kDone };
  std::unordered_map<const AudioNode*, Mark> marks;
  std::vector<AudioNode*> order;
  order.reserve(nodes_.size());

  // Iterative DFS from the destination over audio and param edges.
  struct Frame {
    AudioNode* node;
    std::vector<AudioNode*> deps;
    std::size_t next_dep = 0;
  };

  auto collect_deps = [](AudioNode* node) {
    std::vector<AudioNode*> deps;
    for (std::size_t i = 0; i < node->num_inputs(); ++i) {
      for (AudioNode* src : node->input_sources(i)) deps.push_back(src);
    }
    for (AudioParam* param : node->params()) {
      for (AudioNode* src : param->inputs()) deps.push_back(src);
    }
    return deps;
  };

  std::vector<Frame> stack;
  stack.push_back({destination_, collect_deps(destination_)});
  marks[destination_] = Mark::kInProgress;

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_dep < frame.deps.size()) {
      AudioNode* dep = frame.deps[frame.next_dep++];
      const Mark mark = marks.contains(dep) ? marks[dep] : Mark::kUnvisited;
      if (mark == Mark::kInProgress) {
        throw std::runtime_error(
            "OfflineAudioContext: cycle in the audio graph");
      }
      if (mark == Mark::kUnvisited) {
        marks[dep] = Mark::kInProgress;
        stack.push_back({dep, collect_deps(dep)});
      }
    } else {
      marks[frame.node] = Mark::kDone;
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
  return order;  // sources first, destination last
}

AudioBuffer OfflineAudioContext::start_rendering() {
  if (rendered_) {
    throw std::runtime_error("OfflineAudioContext: already rendered");
  }
  rendered_ = true;

  const std::vector<AudioNode*> order = topological_order();

  // Per-node timing accumulates locally (two clock reads per node per
  // quantum) and is folded into the registry once per render, so the hot
  // loop never touches the registry maps. Purely observational: node
  // processing is identical with or without a metrics sink.
  obs::MetricsRegistry& reg =
      config_.metrics ? *config_.metrics : obs::MetricsRegistry::global();
  const std::uint64_t render_start_ns = reg.now_ns();
  std::vector<std::uint64_t> node_ns(order.size(), 0);

  for (current_frame_ = 0; current_frame_ < length_;
       current_frame_ += kRenderQuantumFrames) {
    const std::size_t frames =
        std::min(kRenderQuantumFrames, length_ - current_frame_);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const std::uint64_t t0 = reg.now_ns();
      order[i]->process(current_frame_, frames);
      node_ns[i] += reg.now_ns() - t0;
    }
  }

  // One observation per node *class* per render (matching how the paper
  // reasons about render load: which node types make a graph heavy).
  std::map<std::string_view, std::uint64_t> per_class;
  for (std::size_t i = 0; i < order.size(); ++i) {
    per_class[order[i]->node_name()] += node_ns[i];
  }
  for (const auto& [node_name, ns] : per_class) {
    reg.histogram("wafp_render_node_process_ns",
                  "Per-render process time by node class (ns)",
                  obs::label("node", node_name))
        .observe(ns);
  }
  reg.histogram("wafp_render_ns", "Whole-graph offline render duration (ns)")
      .observe(reg.now_ns() - render_start_ns);
  reg.counter("wafp_render_total", "Offline graph renders completed").inc();

  AudioBuffer result = std::move(*target_);
  target_.reset();
  return result;
}

DestinationNode::DestinationNode(OfflineAudioContext& context,
                                 std::size_t channels, AudioBuffer& target)
    : AudioNode(context, /*num_inputs=*/1, channels),
      target_(target),
      scratch_(channels, kRenderQuantumFrames) {}

void DestinationNode::process(std::size_t start_frame, std::size_t frames) {
  mix_input(0, scratch_);
  for (std::size_t c = 0; c < target_.channel_count(); ++c) {
    auto out = target_.channel(c);
    const float* in = scratch_.channel(c);
    for (std::size_t i = 0; i < frames; ++i) out[start_frame + i] = in[i];
  }
  mutable_output().copy_from(scratch_);
}

}  // namespace wafp::webaudio
