// PeriodicWave: band-limited wavetable synthesis, modelled on Blink's
// implementation — per-octave tables built by inverse FFT of a truncated
// Fourier series, with linear interpolation both within a table and between
// adjacent range tables. Because the tables are produced by the platform's
// FFT engine and math library, the oscillator's very first sample already
// carries the platform fingerprint.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "webaudio/engine_config.h"

namespace wafp::webaudio {

enum class OscillatorType { kSine, kSquare, kSawtooth, kTriangle, kCustom };

/// Process-wide count of PeriodicWave constructions. Building a wave runs
/// kNumRanges inverse FFTs, so the wave cache (periodic_wave_cache.h) should
/// hold this flat across repeated renders; the allocation-audit test asserts
/// exactly that.
[[nodiscard]] std::uint64_t periodic_wave_builds();

[[nodiscard]] std::string_view to_string(OscillatorType t);

class PeriodicWave {
 public:
  static constexpr std::size_t kTableSize = 4096;
  static constexpr std::size_t kNumRanges = 9;  // partials 4 .. 1024

  /// Web Audio constructor semantics: `real` are the cosine coefficients
  /// a_k and `imag` the sine coefficients b_k; index 0 (DC) is ignored.
  /// When `normalize` is set (the spec default), tables are scaled so the
  /// full-bandwidth waveform peaks at 1.
  PeriodicWave(std::span<const double> real, std::span<const double> imag,
               double sample_rate, const EngineConfig& config,
               bool normalize = true);

  /// Build one of the four spec-defined waveforms.
  [[nodiscard]] static std::shared_ptr<const PeriodicWave> standard(
      OscillatorType type, double sample_rate, const EngineConfig& config);

  /// Waveform value at `phase` in [0, 1) for the given fundamental; the
  /// fundamental picks (and blends) the band-limited range tables.
  [[nodiscard]] float sample(double phase, double fundamental_hz) const;

  /// Hoisted range selection for a constant fundamental: resolves the range
  /// tables and blend fraction once, then samples with exactly the same
  /// arithmetic as sample(). This is the oscillator's constant-rate fast
  /// path — it drops a log2 + clamp from every sample.
  class ConstantRateSampler {
   public:
    [[nodiscard]] float operator()(double phase) const {
      const float a = table_lookup(*lower_, phase);
      if (frac_ == 0.0f || upper_ == nullptr) return a;
      const float b = table_lookup(*upper_, phase);
      return a + frac_ * (b - a);
    }

   private:
    friend class PeriodicWave;
    const std::vector<float>* lower_ = nullptr;
    const std::vector<float>* upper_ = nullptr;  // null: no blend
    float frac_ = 0.0f;
  };

  [[nodiscard]] ConstantRateSampler constant_rate_sampler(
      double fundamental_hz) const;

  [[nodiscard]] double sample_rate() const { return sample_rate_; }

 private:
  /// Max partial count synthesized into range table `r`.
  [[nodiscard]] static std::size_t max_partials_for_range(std::size_t r);

  /// Continuous range position for a fundamental (0 = most band-limited).
  [[nodiscard]] double range_position(double fundamental_hz) const;

  [[nodiscard]] static float table_lookup(const std::vector<float>& table,
                                          double phase);

  double sample_rate_;
  double nyquist_;
  // kNumRanges tables of kTableSize+1 samples (first sample duplicated at
  // the end so lookup never wraps mid-interpolation).
  std::vector<std::vector<float>> tables_;
};

}  // namespace wafp::webaudio
