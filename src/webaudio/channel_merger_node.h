// ChannelMergerNode: combines K mono inputs into one K-channel stream —
// used by the paper's Merged Signals vector (Fig. 7) to stack four
// different-shaped oscillators into a single signal.
#pragma once

#include "util/function_effects.h"
#include "webaudio/audio_node.h"

namespace wafp::webaudio {

class ChannelMergerNode final : public AudioNode {
 public:
  ChannelMergerNode(OfflineAudioContext& context, std::size_t num_inputs = 6);

  [[nodiscard]] std::string_view node_name() const override {
    return "ChannelMergerNode";
  }

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  AudioBus input_scratch_;
};

}  // namespace wafp::webaudio
