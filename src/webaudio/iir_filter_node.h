// IIRFilterNode: the Web Audio general IIR filter with caller-supplied
// feedforward/feedback coefficients (up to order 20, per spec). Unlike
// BiquadFilterNode its coefficients are fixed at construction; it exists so
// scripts can realize arbitrary responses — and its double-precision
// recursion is one more implementation-defined surface.
#pragma once

#include <vector>

#include "util/function_effects.h"
#include "webaudio/audio_node.h"

namespace wafp::webaudio {

class IIRFilterNode final : public AudioNode {
 public:
  /// `feedforward` (b coefficients, 1..20 values, not all zero) and
  /// `feedback` (a coefficients, 1..20 values, a[0] != 0) define
  ///   a0*y[n] = sum_k b[k] x[n-k] - sum_{k>=1} a[k] y[n-k].
  /// Throws std::invalid_argument on out-of-spec coefficients.
  IIRFilterNode(OfflineAudioContext& context,
                std::vector<double> feedforward, std::vector<double> feedback,
                std::size_t channels = 1);

  [[nodiscard]] std::string_view node_name() const override {
    return "IIRFilterNode";
  }

  /// Complex response at the given frequencies (getFrequencyResponse).
  void get_frequency_response(std::span<const float> frequencies,
                              std::span<float> mag_response,
                              std::span<float> phase_response) const;

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  std::vector<double> b_;  // normalized feedforward
  // normalized feedback (a[0] == 1 implied, stored from a[1])
  std::vector<double> a_;
  AudioBus input_scratch_;
  // Per channel delay lines for x and y history.
  std::vector<std::vector<double>> x_history_;
  std::vector<std::vector<double>> y_history_;
};

}  // namespace wafp::webaudio
