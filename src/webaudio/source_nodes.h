// Small source/routing nodes: ConstantSourceNode, AudioBufferSourceNode,
// StereoPannerNode and ChannelSplitterNode — completing the Web Audio node
// set a downstream user of the engine expects.
#pragma once

#include <memory>

#include "util/function_effects.h"
#include "webaudio/audio_buffer.h"
#include "webaudio/audio_node.h"

namespace wafp::webaudio {

/// Emits its (modulatable) offset parameter as audio — the spec's
/// ConstantSourceNode, handy for control signals and DC offsets.
class ConstantSourceNode final : public AudioNode {
 public:
  explicit ConstantSourceNode(OfflineAudioContext& context);

  [[nodiscard]] std::string_view node_name() const override {
    return "ConstantSourceNode";
  }

  [[nodiscard]] AudioParam& offset() { return offset_; }
  std::vector<AudioParam*> params() override { return {&offset_}; }

  void start(double when = 0.0);
  void stop(double when);

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  AudioParam offset_;
  bool started_ = false;
  double start_time_ = 0.0;
  double stop_time_ = -1.0;
};

/// Plays a shared AudioBuffer, optionally looping, with a playbackRate
/// parameter (linear-interpolated resampling).
class AudioBufferSourceNode final : public AudioNode {
 public:
  explicit AudioBufferSourceNode(OfflineAudioContext& context);

  [[nodiscard]] std::string_view node_name() const override {
    return "AudioBufferSourceNode";
  }

  void set_buffer(std::shared_ptr<const AudioBuffer> buffer);
  void set_loop(bool loop) { loop_ = loop; }
  [[nodiscard]] bool loop() const { return loop_; }

  [[nodiscard]] AudioParam& playback_rate() { return playback_rate_; }
  std::vector<AudioParam*> params() override { return {&playback_rate_}; }

  void start(double when = 0.0);
  void stop(double when);

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  std::shared_ptr<const AudioBuffer> buffer_;
  AudioParam playback_rate_;
  bool loop_ = false;
  bool started_ = false;
  double start_time_ = 0.0;
  double stop_time_ = -1.0;
  double position_ = 0.0;  // in buffer frames
  bool finished_ = false;
};

/// Equal-power stereo panner: mono or stereo in, stereo out, pan in
/// [-1, 1] (a-rate). The cos/sin panning gains run through the platform
/// math library.
class StereoPannerNode final : public AudioNode {
 public:
  explicit StereoPannerNode(OfflineAudioContext& context);

  [[nodiscard]] std::string_view node_name() const override {
    return "StereoPannerNode";
  }

  [[nodiscard]] AudioParam& pan() { return pan_; }
  std::vector<AudioParam*> params() override { return {&pan_}; }

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  AudioParam pan_;
  AudioBus input_scratch_;
};

/// Extracts one channel of its input as a mono stream. (The Web Audio
/// ChannelSplitterNode exposes N outputs; this engine models one output
/// bus per node, so a splitter instance selects a single channel — create
/// one per channel to split fully.)
class ChannelSplitterNode final : public AudioNode {
 public:
  ChannelSplitterNode(OfflineAudioContext& context, std::size_t channel);

  [[nodiscard]] std::string_view node_name() const override {
    return "ChannelSplitterNode";
  }

  [[nodiscard]] std::size_t channel() const { return channel_; }

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  std::size_t channel_;
  AudioBus input_scratch_;
};

}  // namespace wafp::webaudio
