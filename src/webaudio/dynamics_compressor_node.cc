#include "webaudio/dynamics_compressor_node.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "dsp/denormal.h"
#include "dsp/fma.h"
#include "dsp/simd.h"
#include "webaudio/offline_audio_context.h"

namespace wafp::webaudio {
namespace {

/// Piecewise-linear interpolation of the adaptive-release multiplier
/// between the four tuning zone points at x = 0, 1, 2, 3. Piecewise (rather
/// than a global polynomial fit) so a vendor tweak to a deep-compression
/// zone is invisible to signals that never compress that far — which is why
/// the paper's Combined audio vector is more diverse than any single vector
/// (Table 2): the heavily-driven AM/FM graphs reach release zones the plain
/// Hybrid triangle never does.
double release_multiplier_at(const webaudio::CompressorTuning& tuning,
                             double x) {
  const double zones[4] = {tuning.release_zone1, tuning.release_zone2,
                           tuning.release_zone3, tuning.release_zone4};
  if (x <= 0.0) return zones[0];
  if (x >= 3.0) return zones[3];
  const auto lower = static_cast<std::size_t>(x);
  const double frac = x - static_cast<double>(lower);
  return zones[lower] + frac * (zones[lower + 1] - zones[lower]);
}

}  // namespace

DynamicsCompressorNode::DynamicsCompressorNode(OfflineAudioContext& context,
                                               std::size_t channels)
    : AudioNode(context, /*num_inputs=*/1, channels),
      threshold_("threshold", -24.0, -100.0, 0.0),
      knee_("knee", 30.0, 0.0, 40.0),
      ratio_("ratio", 12.0, 1.0, 20.0),
      attack_("attack", 0.003, 0.0, 1.0),
      release_("release", 0.25, 0.0, 1.0),
      input_scratch_(channels, kRenderQuantumFrames) {
  const auto& tuning = context.config().compressor;
  pre_delay_frames_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(tuning.pre_delay_seconds *
                                  context.sample_rate()));
  pre_delay_.resize(channels);
  for (auto& ring : pre_delay_) ring.assign(pre_delay_frames_, 0.0f);
}

double DynamicsCompressorNode::knee_curve(double x) const {
  if (x < curve_.linear_threshold) return x;
  const auto& m = math();
  return curve_.linear_threshold +
         (1.0 - m.exp(-curve_.k * (x - curve_.linear_threshold))) / curve_.k;
}

double DynamicsCompressorNode::knee_slope_at(double x, double k) const {
  // Logarithmic slope d(dB_out)/d(dB_in) = (x / y) * dy/dx, with dy/dx of
  // the knee curve evaluated analytically: exp(-k (x - threshold)).
  const auto& m = math();
  if (x <= curve_.linear_threshold) return 1.0;
  const double y = curve_.linear_threshold +
                   (1.0 - m.exp(-k * (x - curve_.linear_threshold))) / k;
  if (y <= 0.0) return 1.0;
  const double dy_dx = m.exp(-k * (x - curve_.linear_threshold));
  return (x / y) * dy_dx;
}

double DynamicsCompressorNode::solve_k() const {
  // Bisection on k so the log-slope at the knee end equals 1/ratio. The
  // slope decreases monotonically in k.
  const double target = curve_.slope;
  const double x = curve_.knee_end_linear;
  double lo = 1.0e-2;
  double hi = 1.0e4;
  const double tol = context().config().compressor.knee_solver_tolerance;
  // Degenerate knee (0 dB): hard threshold, any large k approximates it.
  if (curve_.knee_end_db <= cached_threshold_ + 1.0e-9) return hi;
  for (int iter = 0; iter < 200 && (hi - lo) > tol * lo; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (knee_slope_at(x, mid) > target) {
      lo = mid;  // slope too shallow-compressed; need larger k
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double DynamicsCompressorNode::saturate(double x) const {
  const auto& m = math();
  if (x < curve_.knee_end_linear) return knee_curve(x);
  // Beyond the knee: constant dB-slope region.
  const double x_db = m.linear_to_decibels(x);
  const double y_knee_db =
      m.linear_to_decibels(knee_curve(curve_.knee_end_linear));
  const double y_db = y_knee_db + curve_.slope * (x_db - curve_.knee_end_db);
  return m.decibels_to_linear(y_db);
}

void DynamicsCompressorNode::update_curve(double when_time) {
  const auto& m = math();
  const double threshold_db = threshold_.value_at_time(when_time, m);
  const double knee_db = knee_.value_at_time(when_time, m);
  const double ratio = std::max(1.0, ratio_.value_at_time(when_time, m));
  if (threshold_db == cached_threshold_ && knee_db == cached_knee_ &&
      ratio == cached_ratio_) {
    return;
  }
  cached_threshold_ = threshold_db;
  cached_knee_ = knee_db;
  cached_ratio_ = ratio;

  curve_.linear_threshold = m.decibels_to_linear(threshold_db);
  curve_.knee_end_db = threshold_db + knee_db;
  curve_.knee_end_linear = m.decibels_to_linear(curve_.knee_end_db);
  curve_.slope = 1.0 / ratio;
  curve_.k = solve_k();

  // Makeup gain from the full-range response, Blink-style.
  const double full_range_gain = saturate(1.0);
  const auto& tuning = context().config().compressor;
  curve_.makeup_gain =
      m.pow(1.0 / std::max(full_range_gain, 1.0e-6), tuning.makeup_exponent);
}

void DynamicsCompressorNode::process(std::size_t start_frame,
                                     std::size_t frames) {
  mix_input(0, input_scratch_);
  AudioBus& out = mutable_output();

  const auto& m = math();
  const auto& cfg = context().config();
  const double sr = sample_rate();
  const double when = static_cast<double>(start_frame) / sr;

  update_curve(when);

  const double attack_s = std::max(0.001, attack_.value_at_time(when, m));
  const double release_s = std::max(0.001, release_.value_at_time(when, m));
  const double attack_frames = attack_s * sr;
  const double base_release_frames = release_s * sr;
  const double attack_k = m.exp(-1.0 / attack_frames);
  const double metering_k =
      m.exp(-1.0 / (cfg.compressor.metering_release_seconds * sr));

  const std::size_t channels = out.channels();

  // Stage 1 — look-ahead detection, batched: per-frame max |x| across
  // channels through the abs-max kernel. abs_max_f32_ref mirrors
  // std::max(acc, |v|) exactly (NaN keeps the accumulator), so this stage
  // is bit-identical to the classic fused loop.
  const dsp::SimdOps& ops = dsp::simd_ops();
  std::array<float, kRenderQuantumFrames> frame_abs{};
  for (std::size_t c = 0; c < channels; ++c) {
    ops.vabs_max_f32(frame_abs.data(), input_scratch_.channel(c), frames);
  }

  // Stage 2 — the gain recursion. Inherently sequential (each frame's gain
  // feeds the next), so it stays scalar; results land in a per-frame gain
  // buffer for the vector-friendly output stage.
  std::array<float, kRenderQuantumFrames> total_gain;
  for (std::size_t i = 0; i < frames; ++i) {
    const double abs_input = static_cast<double>(frame_abs[i]);

    double desired_gain = 1.0;
    if (abs_input > 1.0e-12) {
      desired_gain = saturate(abs_input) / abs_input;
      desired_gain = std::min(desired_gain, 1.0);
    }

    if (desired_gain < compressor_gain_) {
      // Attack: fast approach toward more attenuation.
      compressor_gain_ =
          dsp::mul_add(attack_k, compressor_gain_,
                       (1.0 - attack_k) * desired_gain, cfg.fma_contraction);
    } else {
      // Release with adaptive multiplier: deeper compression releases on a
      // longer time constant (Blink's adaptive release).
      const double compression_db =
          -m.linear_to_decibels(std::max(compressor_gain_, 1.0e-9));
      const double x = std::clamp(compression_db / 12.0, 0.0, 3.0);
      const double multiplier =
          release_multiplier_at(cfg.compressor, x);
      const double release_k =
          m.exp(-1.0 / (base_release_frames * std::max(multiplier, 0.05)));
      compressor_gain_ =
          dsp::mul_add(release_k, compressor_gain_,
                       (1.0 - release_k) * desired_gain, cfg.fma_contraction);
    }
    compressor_gain_ = dsp::flush_denormal(compressor_gain_, cfg.denormal);

    // Metering: instant attack, slow release.
    if (compressor_gain_ < metering_gain_) {
      metering_gain_ = compressor_gain_;
    } else {
      metering_gain_ =
          metering_k * metering_gain_ + (1.0 - metering_k) * compressor_gain_;
    }

    total_gain[i] = static_cast<float>(compressor_gain_ * curve_.makeup_gain);
  }

  // Stage 3 — apply gain to the delayed signal, channel-major. Each
  // (channel, ring-slot) pair keeps its original read-then-write order, so
  // the fission is exact even when the pre-delay is shorter than a quantum.
  for (std::size_t c = 0; c < channels; ++c) {
    auto& ring = pre_delay_[c];
    const float* in = input_scratch_.channel(c);
    float* dst = out.channel(c);
    std::size_t idx = pre_delay_index_;
    for (std::size_t i = 0; i < frames; ++i) {
      float& delayed = ring[idx];
      const float output_sample = delayed * total_gain[i];
      delayed = in[i];
      dst[i] = dsp::flush_denormal(output_sample, cfg.denormal);
      idx = (idx + 1) % pre_delay_frames_;
    }
  }
  pre_delay_index_ = (pre_delay_index_ + frames) % pre_delay_frames_;
  reduction_ = static_cast<float>(
      m.linear_to_decibels(std::max(metering_gain_, 1.0e-9)));
}

}  // namespace wafp::webaudio
