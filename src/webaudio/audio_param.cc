#include "webaudio/audio_param.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"
#include "webaudio/audio_node.h"

namespace wafp::webaudio {

AudioParam::AudioParam(std::string name, double default_value,
                       double min_value, double max_value)
    : name_(std::move(name)),
      base_value_(default_value),
      min_value_(min_value),
      max_value_(max_value) {}

void AudioParam::set_value(double v) { base_value_ = v; }

void AudioParam::set_value_at_time(double value, double time) {
  if (!events_.empty() && time < events_.back().time) {
    throw std::invalid_argument("AudioParam: events must be non-decreasing");
  }
  events_.push_back({EventType::kSetValue, value, time});
}

void AudioParam::linear_ramp_to_value_at_time(double value, double end_time) {
  if (!events_.empty() && end_time < events_.back().time) {
    throw std::invalid_argument("AudioParam: events must be non-decreasing");
  }
  events_.push_back({EventType::kLinearRamp, value, end_time});
}

void AudioParam::exponential_ramp_to_value_at_time(double value,
                                                   double end_time) {
  if (value == 0.0) {
    throw std::invalid_argument("AudioParam: exponential ramp target is 0");
  }
  if (!events_.empty() && end_time < events_.back().time) {
    throw std::invalid_argument("AudioParam: events must be non-decreasing");
  }
  events_.push_back({EventType::kExponentialRamp, value, end_time});
}

void AudioParam::add_input(AudioNode* source) {
  WAFP_DCHECK(source != nullptr);
  inputs_.push_back(source);
}

double AudioParam::value_at_time(double time,
                                 const dsp::MathLibrary& math) const {
  if (events_.empty()) return base_value_;

  // Value and time the timeline held before the first event.
  double prev_value = base_value_;
  double prev_time = 0.0;

  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (time < e.time) {
      switch (e.type) {
        case EventType::kSetValue:
          // Holds the previous value until the event fires.
          return prev_value;
        case EventType::kLinearRamp: {
          if (e.time == prev_time) return e.value;
          const double frac = (time - prev_time) / (e.time - prev_time);
          return prev_value +
                 (e.value - prev_value) * std::clamp(frac, 0.0, 1.0);
        }
        case EventType::kExponentialRamp: {
          if (e.time == prev_time || prev_value == 0.0 ||
              (prev_value < 0.0) != (e.value < 0.0)) {
            return e.value;
          }
          const double frac = (time - prev_time) / (e.time - prev_time);
          return prev_value *
                 math.pow(e.value / prev_value, std::clamp(frac, 0.0, 1.0));
        }
      }
    }
    prev_value = e.value;
    prev_time = e.time;
  }
  return prev_value;
}

void AudioParam::compute_values(std::span<float> out, double start_time,
                                double sample_rate,
                                const dsp::MathLibrary& math) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double t = start_time + static_cast<double>(i) / sample_rate;
    out[i] = static_cast<float>(value_at_time(t, math));
  }
  // Audio-rate modulation: sum mono-mixed connected node outputs.
  for (const AudioNode* source : inputs_) {
    const AudioBus& bus = source->output();
    if (bus.channels() == 1) {
      const float* in = bus.channel(0);
      for (std::size_t i = 0; i < out.size() && i < bus.frames(); ++i) {
        out[i] += in[i];
      }
    } else {
      const float scale = 1.0f / static_cast<float>(bus.channels());
      for (std::size_t c = 0; c < bus.channels(); ++c) {
        const float* in = bus.channel(c);
        for (std::size_t i = 0; i < out.size() && i < bus.frames(); ++i) {
          out[i] += in[i] * scale;
        }
      }
    }
  }
  for (float& v : out) {
    v = std::clamp(v, static_cast<float>(min_value_),
                   static_cast<float>(max_value_));
  }
}

}  // namespace wafp::webaudio
