#include "webaudio/audio_bus.h"

#include <algorithm>
#include <stdexcept>

#include "dsp/simd.h"
#include "util/check.h"

namespace wafp::webaudio {

AudioBus::AudioBus(std::size_t channels, std::size_t frames)
    : channels_(channels), frames_(frames) {
  if (channels < 1 || channels > kMaxChannels) {
    throw std::invalid_argument("AudioBus: channel count out of range");
  }
  for (std::size_t c = 0; c < channels_; ++c) data_[c].assign(frames_, 0.0f);
}

void AudioBus::set_channel_count(std::size_t channels) {
  if (channels < 1 || channels > kMaxChannels) {
    throw std::invalid_argument("AudioBus: channel count out of range");
  }
  for (std::size_t c = channels_; c < channels; ++c) {
    data_[c].assign(frames_, 0.0f);
  }
  channels_ = channels;
}

void AudioBus::zero() {
  for (std::size_t c = 0; c < channels_; ++c) {
    std::fill(data_[c].begin(), data_[c].end(), 0.0f);
  }
}

void AudioBus::sum_from(const AudioBus& source) {
  WAFP_DCHECK(source.frames_ == frames_);
  const dsp::SimdOps& ops = dsp::simd_ops();
  if (source.channels_ == channels_) {
    for (std::size_t c = 0; c < channels_; ++c) {
      ops.vadd_f32(channel(c), source.channel(c), frames_);
    }
    return;
  }
  if (source.channels_ == 1) {
    // Mono -> N: replicate into every destination channel.
    for (std::size_t c = 0; c < channels_; ++c) {
      ops.vadd_f32(channel(c), source.channel(0), frames_);
    }
    return;
  }
  if (channels_ == 1) {
    // N -> mono: average.
    const float scale = 1.0f / static_cast<float>(source.channels_);
    for (std::size_t c = 0; c < source.channels_; ++c) {
      ops.vmac_f32(channel(0), source.channel(c), scale, frames_);
    }
    return;
  }
  // General mismatch: index-wise, folding surplus source channels into the
  // last destination channel.
  for (std::size_t c = 0; c < source.channels_; ++c) {
    const std::size_t dest = std::min(c, channels_ - 1);
    ops.vadd_f32(channel(dest), source.channel(c), frames_);
  }
}

void AudioBus::copy_from(const AudioBus& source) {
  zero();
  sum_from(source);
}

}  // namespace wafp::webaudio
