#include "webaudio/audio_bus.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace wafp::webaudio {

AudioBus::AudioBus(std::size_t channels, std::size_t frames)
    : channels_(channels), frames_(frames) {
  if (channels < 1 || channels > kMaxChannels) {
    throw std::invalid_argument("AudioBus: channel count out of range");
  }
  for (std::size_t c = 0; c < channels_; ++c) data_[c].assign(frames_, 0.0f);
}

void AudioBus::set_channel_count(std::size_t channels) {
  if (channels < 1 || channels > kMaxChannels) {
    throw std::invalid_argument("AudioBus: channel count out of range");
  }
  for (std::size_t c = channels_; c < channels; ++c) {
    data_[c].assign(frames_, 0.0f);
  }
  channels_ = channels;
}

void AudioBus::zero() {
  for (std::size_t c = 0; c < channels_; ++c) {
    std::fill(data_[c].begin(), data_[c].end(), 0.0f);
  }
}

void AudioBus::sum_from(const AudioBus& source) {
  WAFP_DCHECK(source.frames_ == frames_);
  if (source.channels_ == channels_) {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* in = source.channel(c);
      float* out = channel(c);
      for (std::size_t i = 0; i < frames_; ++i) out[i] += in[i];
    }
    return;
  }
  if (source.channels_ == 1) {
    // Mono -> N: replicate into every destination channel.
    const float* in = source.channel(0);
    for (std::size_t c = 0; c < channels_; ++c) {
      float* out = channel(c);
      for (std::size_t i = 0; i < frames_; ++i) out[i] += in[i];
    }
    return;
  }
  if (channels_ == 1) {
    // N -> mono: average.
    float* out = channel(0);
    const float scale = 1.0f / static_cast<float>(source.channels_);
    for (std::size_t c = 0; c < source.channels_; ++c) {
      const float* in = source.channel(c);
      for (std::size_t i = 0; i < frames_; ++i) out[i] += in[i] * scale;
    }
    return;
  }
  // General mismatch: index-wise, folding surplus source channels into the
  // last destination channel.
  for (std::size_t c = 0; c < source.channels_; ++c) {
    const std::size_t dest = std::min(c, channels_ - 1);
    const float* in = source.channel(c);
    float* out = channel(dest);
    for (std::size_t i = 0; i < frames_; ++i) out[i] += in[i];
  }
}

void AudioBus::copy_from(const AudioBus& source) {
  zero();
  sum_from(source);
}

}  // namespace wafp::webaudio
