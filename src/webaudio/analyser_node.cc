#include "webaudio/analyser_node.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include <algorithm>

#include "dsp/simd.h"
#include "dsp/window.h"
#include "util/check.h"
#include "util/rng.h"
#include "webaudio/offline_audio_context.h"

namespace wafp::webaudio {
namespace {

/// Ring capacity: enough for the largest fftSize plus the largest jitter
/// skew we ever apply.
constexpr std::size_t kRingFrames = 65536;

/// Frames of read-offset skew per jitter state; a small prime so different
/// states never alias onto each other across fft sizes.
constexpr std::size_t kSkewFramesPerState = 17;

/// Nudge a float by `ulps` representation steps (the chaotic glitch model).
float nudge_ulp(float v, int ulps) {
  float out = v;
  for (int i = 0; i < ulps; ++i) {
    out = std::nextafter(out, std::numeric_limits<float>::infinity());
  }
  for (int i = 0; i > ulps; --i) {
    out = std::nextafter(out, -std::numeric_limits<float>::infinity());
  }
  return out;
}

}  // namespace

AnalyserNode::AnalyserNode(OfflineAudioContext& context, std::size_t channels)
    : AudioNode(context, /*num_inputs=*/1, channels),
      input_scratch_(channels, kRenderQuantumFrames),
      smoothing_(context.config().analyser.smoothing),
      ring_(kRingFrames, 0.0f),
      smoothed_magnitudes_(fft_size_ / 2, 0.0) {}

void AnalyserNode::set_fft_size(std::size_t fft_size) {
  if (fft_size < 32 || fft_size > 32768 ||
      (fft_size & (fft_size - 1)) != 0) {
    throw std::invalid_argument(
        "AnalyserNode: fftSize must be a power of two in [32, 32768]");
  }
  fft_size_ = fft_size;
  smoothed_magnitudes_.assign(fft_size_ / 2, 0.0);
}

void AnalyserNode::set_smoothing_time_constant(double tau) {
  if (tau < 0.0 || tau >= 1.0) {
    throw std::invalid_argument(
        "AnalyserNode: smoothing must be in [0, 1)");
  }
  smoothing_ = tau;
}

void AnalyserNode::process(std::size_t /*start_frame*/, std::size_t frames) {
  mix_input(0, input_scratch_);
  mutable_output().copy_from(input_scratch_);

  const std::size_t channels = input_scratch_.channels();
  for (std::size_t i = 0; i < frames; ++i) {
    float acc = 0.0f;
    for (std::size_t c = 0; c < channels; ++c) {
      acc += input_scratch_.channel(c)[i];
    }
    ring_[write_index_] = acc / static_cast<float>(channels);
    write_index_ = (write_index_ + 1) % kRingFrames;
  }
}

void AnalyserNode::gather_block(std::span<double> block,
                                std::size_t skew) const {
  WAFP_DCHECK(block.size() == fft_size_);
  const std::size_t start =
      (write_index_ + kRingFrames - fft_size_ - skew) % kRingFrames;
  for (std::size_t i = 0; i < fft_size_; ++i) {
    block[i] = static_cast<double>(ring_[(start + i) % kRingFrames]);
  }
}

void AnalyserNode::get_float_frequency_data(std::span<float> out) {
  const auto& cfg = context().config();
  const auto& m = math();

  if (window_fft_size_ != fft_size_) {
    window_ = dsp::blackman_window(fft_size_, m, cfg.analyser.blackman_alpha);
    window_fft_size_ = fft_size_;
  }

  // 1. Gather the latest block; jitter state skews the read position.
  const std::size_t skew =
      static_cast<std::size_t>(cfg.jitter.state) * kSkewFramesPerState;
  const std::size_t bins = frequency_bin_count();
  block_scratch_.resize(fft_size_);
  re_scratch_.resize(fft_size_);
  im_scratch_.resize(fft_size_);
  mag_scratch_.resize(bins);
  db_lin_scratch_.resize(bins);
  db_scratch_.resize(bins);
  gather_block(block_scratch_, skew);

  // 2. Blackman window and FFT, both in float32 — as production analyser
  //    pipelines run (e.g. Blink's FFTFrame). Implementation rounding
  //    differences between FFT builds are therefore visible at the
  //    spectrum's leakage floor, which is what the FFT fingerprinting
  //    vector harvests. The window/magnitude/smoothing columns run through
  //    the batch kernel layer (dsp/simd.h), whose kernels are bit-identical
  //    to the classic per-sample loops on every backend.
  const dsp::SimdOps& ops = dsp::simd_ops();
  ops.vwindow_f32(re_scratch_.data(), block_scratch_.data(), window_.data(),
                  fft_size_);
  std::fill(im_scratch_.begin(), im_scratch_.end(), 0.0f);
  context().fft().forward(std::span<float>(re_scratch_),
                          std::span<float>(im_scratch_));

  // 3. Magnitude, exponential smoothing, dB conversion (Blink order), all
  //    at float precision.
  const float scale = 1.0f / static_cast<float>(fft_size_);
  const auto tau = static_cast<float>(smoothing_);
  ops.vmag_f32(mag_scratch_.data(), re_scratch_.data(), im_scratch_.data(),
               scale, cfg.fma_contraction, bins);
  ops.vsmooth_f32(smoothed_magnitudes_.data(), mag_scratch_.data(), tau,
                  1.0f - tau, bins);
  for (std::size_t k = 0; k < bins; ++k) {
    db_lin_scratch_[k] = static_cast<double>(smoothed_magnitudes_[k]);
  }
  m.linear_to_decibels_batch(db_lin_scratch_.data(), db_scratch_.data(), bins);
  const std::size_t out_bins = std::min(bins, out.size());
  for (std::size_t k = 0; k < out_bins; ++k) {
    out[k] = static_cast<float>(db_scratch_[k]);
  }

  // 4. Chaotic glitch: a one-off transient perturbs a handful of bins by a
  //    single ULP. Seeded per (render, capture) so every such digest is
  //    effectively unique — the long tail of the paper's Table 1.
  if (cfg.jitter.chaos_seed != 0) {
    util::Rng rng(util::derive_seed(cfg.jitter.chaos_seed, capture_counter_));
    const std::size_t hits = 3 + rng.next_below(4);
    for (std::size_t h = 0; h < hits; ++h) {
      const std::size_t bin = rng.next_below(std::min(bins, out.size()));
      const int direction = rng.next_bool(0.5) ? 1 : -1;
      out[bin] = nudge_ulp(out[bin], direction);
    }
  }
  ++capture_counter_;
}

void AnalyserNode::get_float_time_domain_data(std::span<float> out) const {
  block_scratch_.resize(fft_size_);
  gather_block(block_scratch_, /*skew=*/0);
  for (std::size_t i = 0; i < fft_size_ && i < out.size(); ++i) {
    out[i] = static_cast<float>(block_scratch_[i]);
  }
}

}  // namespace wafp::webaudio
