#include "webaudio/graph_validator.h"

#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"
#include "webaudio/audio_node.h"
#include "webaudio/audio_param.h"
#include "webaudio/channel_merger_node.h"
#include "webaudio/source_nodes.h"

namespace wafp::webaudio {

namespace {

/// Validation tallies (global registry: connect-time checks run before any
/// per-context metrics sink exists, and they are build-time rare). The
/// rejection counter is bumped *before* the WAFP_CHECK aborts so a crash
/// dump's metrics still show what the validator caught.
obs::Counter& validations_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "wafp_graph_validations_total",
      "Audio-graph edge validations performed at connect time");
  return c;
}

obs::Counter& rejections_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "wafp_graph_rejections_total",
      "Audio-graph edges rejected by the connect-time validator");
  return c;
}

}  // namespace

bool breaks_cycles(const AudioNode& node) {
  return node.node_name() == "DelayNode";
}

bool closes_delay_free_cycle(const AudioNode& source,
                             const AudioNode& destination) {
  // Either endpoint being a delay puts a delay in any cycle the new edge
  // closes.
  if (breaks_cycles(source) || breaks_cycles(destination)) return false;
  if (&source == &destination) return true;  // delay-free self-loop

  // DFS upstream from `source`: if `destination` is reachable through
  // non-delay nodes, destination already feeds source, so the new edge
  // source -> destination closes a delay-free loop. Delay nodes are not
  // expanded (any path through them carries a delay) and cannot match.
  std::unordered_set<const AudioNode*> visited;
  std::vector<const AudioNode*> stack{&source};
  visited.insert(&source);
  while (!stack.empty()) {
    const AudioNode* node = stack.back();
    stack.pop_back();
    const auto visit = [&](const AudioNode* up) -> bool {
      if (up == &destination) return true;
      if (!breaks_cycles(*up) && visited.insert(up).second) {
        stack.push_back(up);
      }
      return false;
    };
    for (std::size_t i = 0; i < node->num_inputs(); ++i) {
      for (const AudioNode* up : node->input_sources(i)) {
        if (visit(up)) return true;
      }
    }
    // params() is non-const by signature; modulation edges must be walked
    // too (the AM/FM vectors build cycles only a param edge could close).
    for (AudioParam* param : const_cast<AudioNode*>(node)->params()) {
      for (const AudioNode* up : param->inputs()) {
        if (visit(up)) return true;
      }
    }
  }
  return false;
}

void validate_connection(const AudioNode& source, const AudioNode& destination,
                         std::size_t input) {
  validations_counter().inc();
  const bool delay_free_cycle = closes_delay_free_cycle(source, destination);
  const bool merger_multichannel =
      destination.node_name() == "ChannelMergerNode" &&
      source.output().channels() != 1;
  const auto* splitter = dynamic_cast<const ChannelSplitterNode*>(&destination);
  const bool splitter_out_of_range =
      splitter != nullptr && splitter->channel() >= source.output().channels();
  if (delay_free_cycle || merger_multichannel || splitter_out_of_range) {
    rejections_counter().inc();
  }
  WAFP_CHECK(!delay_free_cycle)
      << source.node_name() << " -> " << destination.node_name() << " (input "
      << input << ") closes a cycle with no DelayNode in it; the graph "
      << "could never render";
  WAFP_CHECK(!merger_multichannel)
      << "ChannelMergerNode input " << input << " must be mono, got "
      << source.output().channels() << " channels from " << source.node_name();
  WAFP_CHECK(!splitter_out_of_range)
      << "ChannelSplitterNode selects channel "
      << (splitter ? splitter->channel() : 0) << " but " << source.node_name()
      << " only produces " << source.output().channels() << " channel(s)";
}

void validate_param_connection(const AudioNode& source,
                               const AudioNode& param_owner,
                               const AudioParam& param) {
  validations_counter().inc();
  const bool delay_free_cycle = closes_delay_free_cycle(source, param_owner);
  if (delay_free_cycle) rejections_counter().inc();
  WAFP_CHECK(!delay_free_cycle)
      << source.node_name() << " -> " << param_owner.node_name() << "."
      << param.name() << " closes a cycle with no DelayNode in it; the "
      << "graph could never render";
}

}  // namespace wafp::webaudio
