#include "webaudio/graph_validator.h"

#include <unordered_set>
#include <vector>

#include "util/check.h"
#include "webaudio/audio_node.h"
#include "webaudio/audio_param.h"
#include "webaudio/channel_merger_node.h"
#include "webaudio/source_nodes.h"

namespace wafp::webaudio {

bool breaks_cycles(const AudioNode& node) {
  return node.node_name() == "DelayNode";
}

bool closes_delay_free_cycle(const AudioNode& source,
                             const AudioNode& destination) {
  // Either endpoint being a delay puts a delay in any cycle the new edge
  // closes.
  if (breaks_cycles(source) || breaks_cycles(destination)) return false;
  if (&source == &destination) return true;  // delay-free self-loop

  // DFS upstream from `source`: if `destination` is reachable through
  // non-delay nodes, destination already feeds source, so the new edge
  // source -> destination closes a delay-free loop. Delay nodes are not
  // expanded (any path through them carries a delay) and cannot match.
  std::unordered_set<const AudioNode*> visited;
  std::vector<const AudioNode*> stack{&source};
  visited.insert(&source);
  while (!stack.empty()) {
    const AudioNode* node = stack.back();
    stack.pop_back();
    const auto visit = [&](const AudioNode* up) -> bool {
      if (up == &destination) return true;
      if (!breaks_cycles(*up) && visited.insert(up).second) {
        stack.push_back(up);
      }
      return false;
    };
    for (std::size_t i = 0; i < node->num_inputs(); ++i) {
      for (const AudioNode* up : node->input_sources(i)) {
        if (visit(up)) return true;
      }
    }
    // params() is non-const by signature; modulation edges must be walked
    // too (the AM/FM vectors build cycles only a param edge could close).
    for (AudioParam* param : const_cast<AudioNode*>(node)->params()) {
      for (const AudioNode* up : param->inputs()) {
        if (visit(up)) return true;
      }
    }
  }
  return false;
}

void validate_connection(const AudioNode& source, const AudioNode& destination,
                         std::size_t input) {
  WAFP_CHECK(!closes_delay_free_cycle(source, destination))
      << source.node_name() << " -> " << destination.node_name() << " (input "
      << input << ") closes a cycle with no DelayNode in it; the graph "
      << "could never render";
  if (destination.node_name() == "ChannelMergerNode") {
    WAFP_CHECK(source.output().channels() == 1)
        << "ChannelMergerNode input " << input << " must be mono, got "
        << source.output().channels() << " channels from "
        << source.node_name();
  }
  if (const auto* splitter =
          dynamic_cast<const ChannelSplitterNode*>(&destination)) {
    WAFP_CHECK(splitter->channel() < source.output().channels())
        << "ChannelSplitterNode selects channel " << splitter->channel()
        << " but " << source.node_name() << " only produces "
        << source.output().channels() << " channel(s)";
  }
}

void validate_param_connection(const AudioNode& source,
                               const AudioNode& param_owner,
                               const AudioParam& param) {
  WAFP_CHECK(!closes_delay_free_cycle(source, param_owner))
      << source.node_name() << " -> " << param_owner.node_name() << "."
      << param.name() << " closes a cycle with no DelayNode in it; the "
      << "graph could never render";
}

}  // namespace wafp::webaudio
