#include "webaudio/delay_node.h"

#include <array>
#include <cmath>
#include <stdexcept>

#include "webaudio/offline_audio_context.h"

namespace wafp::webaudio {

DelayNode::DelayNode(OfflineAudioContext& context, double max_delay_seconds,
                     std::size_t channels)
    : AudioNode(context, /*num_inputs=*/1, channels),
      delay_time_("delayTime", 0.0, 0.0, max_delay_seconds),
      input_scratch_(channels, kRenderQuantumFrames) {
  if (max_delay_seconds <= 0.0 || max_delay_seconds > 180.0) {
    throw std::invalid_argument("DelayNode: maxDelay out of (0, 180] s");
  }
  // One quantum of slack so a full-scale delay never reads the write head.
  ring_frames_ = static_cast<std::size_t>(
                     std::ceil(max_delay_seconds * context.sample_rate())) +
                 kRenderQuantumFrames;
  ring_.resize(channels);
  for (auto& ring : ring_) ring.assign(ring_frames_, 0.0f);
}

void DelayNode::process(std::size_t start_frame, std::size_t frames) {
  mix_input(0, input_scratch_);

  std::array<float, kRenderQuantumFrames> delay_values;
  const double start_time = static_cast<double>(start_frame) / sample_rate();
  delay_time_.compute_values(std::span(delay_values.data(), frames),
                             start_time, sample_rate(), math());

  AudioBus& out = mutable_output();
  for (std::size_t ch = 0; ch < out.channels(); ++ch) {
    float* dst = out.channel(ch);
    const float* in = input_scratch_.channel(ch);
    std::vector<float>& ring = ring_[ch];
    std::size_t w = write_index_;
    for (std::size_t i = 0; i < frames; ++i) {
      ring[w] = in[i];
      const double delay_frames =
          static_cast<double>(delay_values[i]) * sample_rate();
      const double read_pos = static_cast<double>(w) - delay_frames;
      // Wrap into [0, ring_frames_).
      double wrapped = std::fmod(read_pos, static_cast<double>(ring_frames_));
      if (wrapped < 0.0) wrapped += static_cast<double>(ring_frames_);
      // Seam guard: when delay_frames is tiny (below ~half an ulp of the
      // ring length), `ring_frames_ + wrapped_negative` rounds back up to
      // exactly ring_frames_, and idx0 would read one past the buffer. A
      // position that close to the seam is the just-written sample.
      if (wrapped >= static_cast<double>(ring_frames_)) wrapped = 0.0;
      const auto idx0 = static_cast<std::size_t>(wrapped);
      const std::size_t idx1 = (idx0 + 1) % ring_frames_;
      const auto frac = static_cast<float>(wrapped - static_cast<double>(idx0));
      // Linear interpolation between adjacent delayed samples.
      dst[i] = ring[idx0] + frac * (ring[idx1] - ring[idx0]);
      w = (w + 1) % ring_frames_;
    }
  }
  write_index_ = (write_index_ + frames) % ring_frames_;
}

}  // namespace wafp::webaudio
