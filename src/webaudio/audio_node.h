// AudioNode: base class for all processing nodes and the graph's edge
// bookkeeping. Nodes form the "Audio Graph" of the Web Audio API (§2 of the
// paper); the offline context walks the graph once per 128-frame quantum.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "util/function_effects.h"
#include "webaudio/audio_bus.h"
#include "webaudio/audio_param.h"

namespace wafp::webaudio {

class OfflineAudioContext;

class AudioNode {
 public:
  AudioNode(OfflineAudioContext& context, std::size_t num_inputs,
            std::size_t output_channels);
  virtual ~AudioNode() = default;

  AudioNode(const AudioNode&) = delete;
  AudioNode& operator=(const AudioNode&) = delete;

  [[nodiscard]] virtual std::string_view node_name() const = 0;

  /// Connect this node's output to `destination`'s input slot `input`.
  /// Throws std::out_of_range for an invalid slot and std::invalid_argument
  /// when the two nodes belong to different contexts.
  void connect(AudioNode& destination, std::size_t input = 0);

  /// Connect this node's output as an audio-rate modulation input of a
  /// parameter (must belong to a node of the same context).
  void connect(AudioParam& param);

  [[nodiscard]] std::size_t num_inputs() const { return inputs_.size(); }
  [[nodiscard]] std::span<AudioNode* const> input_sources(
      std::size_t input) const;

  /// The node's output for the current quantum.
  [[nodiscard]] const AudioBus& output() const { return output_; }

  /// Parameters of this node (for graph traversal over modulation edges).
  [[nodiscard]] virtual std::vector<AudioParam*> params() { return {}; }

  /// Called once per quantum, after all upstream nodes. `start_frame` is the
  /// absolute frame index of the quantum start, `frames` how many frames of
  /// the quantum are within the render length.
  virtual void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING = 0;

  [[nodiscard]] OfflineAudioContext& context() { return context_; }
  [[nodiscard]] const OfflineAudioContext& context() const { return context_; }

 protected:
  /// Sum all sources connected to input slot `input` into `scratch`
  /// (resizing its channel count to this node's preference first).
  void mix_input(std::size_t input, AudioBus& scratch) const;

  [[nodiscard]] AudioBus& mutable_output() { return output_; }
  [[nodiscard]] double sample_rate() const;
  [[nodiscard]] const dsp::MathLibrary& math() const;

 private:
  OfflineAudioContext& context_;
  std::vector<std::vector<AudioNode*>> inputs_;
  AudioBus output_;
};

}  // namespace wafp::webaudio
