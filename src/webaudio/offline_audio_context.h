// OfflineAudioContext: owns the audio graph, renders it quantum by quantum
// into an AudioBuffer — the C++ analogue of the construct every
// fingerprinting vector in the paper is built on.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/function_effects.h"
#include "webaudio/audio_buffer.h"
#include "webaudio/audio_node.h"
#include "webaudio/engine_config.h"

namespace wafp::webaudio {

class DestinationNode;

class OfflineAudioContext {
 public:
  /// `length` is the total number of frames to render.
  OfflineAudioContext(std::size_t channels, std::size_t length,
                      double sample_rate, EngineConfig config);
  ~OfflineAudioContext();

  OfflineAudioContext(const OfflineAudioContext&) = delete;
  OfflineAudioContext& operator=(const OfflineAudioContext&) = delete;

  /// Create a node owned by this context. NodeT's constructor must take
  /// (OfflineAudioContext&, Args...).
  template <typename NodeT, typename... Args>
  NodeT& create(Args&&... args) {
    auto node = std::make_unique<NodeT>(*this, std::forward<Args>(args)...);
    NodeT& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  [[nodiscard]] DestinationNode& destination() { return *destination_; }

  /// The node of this context whose params() contains `param`, or nullptr
  /// when the parameter belongs to no node here (e.g. another context).
  /// Used by connect-time validation of modulation edges.
  [[nodiscard]] AudioNode* owner_of(const AudioParam& param) const;
  [[nodiscard]] double sample_rate() const { return sample_rate_; }
  [[nodiscard]] std::size_t length() const { return length_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const dsp::MathLibrary& math() const { return *config_.math; }
  [[nodiscard]] const dsp::FftEngine& fft() const { return *config_.fft; }

  /// Absolute frame index of the current quantum start (valid during
  /// rendering).
  [[nodiscard]] std::size_t current_frame() const { return current_frame_; }
  [[nodiscard]] double current_time() const {
    return static_cast<double>(current_frame_) / sample_rate_;
  }

  /// Render the whole graph. May be called exactly once; walks the nodes
  /// reachable from the destination in topological order each quantum.
  /// Throws std::runtime_error on a graph cycle or repeated rendering.
  [[nodiscard]] AudioBuffer start_rendering();

 private:
  /// Topologically order all nodes reachable from the destination
  /// (following both audio and parameter-modulation edges).
  [[nodiscard]] std::vector<AudioNode*> topological_order() const;

  EngineConfig config_;
  double sample_rate_;
  std::size_t length_;
  std::vector<std::unique_ptr<AudioNode>> nodes_;
  DestinationNode* destination_ = nullptr;
  std::unique_ptr<AudioBuffer> target_;
  std::size_t current_frame_ = 0;
  bool rendered_ = false;
};

/// Terminal node: accumulates its input into the render target.
class DestinationNode final : public AudioNode {
 public:
  DestinationNode(OfflineAudioContext& context, std::size_t channels,
                  AudioBuffer& target);

  [[nodiscard]] std::string_view node_name() const override {
    return "AudioDestinationNode";
  }

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  AudioBuffer& target_;
  AudioBus scratch_;
};

}  // namespace wafp::webaudio
