// Shared cache of standard PeriodicWave tables.
//
// Building a wave runs kNumRanges inverse FFTs through the platform's math
// library, so rebuilding the same four spec waveforms for every oscillator
// of every render is the single largest avoidable cost in a population
// collect. One cache instance is attached to each distinct EngineConfig
// (see PlatformProfile::make_engine_config): waves only depend on the
// config's FFT engine and math library, so every render sharing a config
// can share its tables. Entries are immutable after construction and never
// evicted; the cache is safe to hit from concurrent render threads.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <tuple>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "webaudio/periodic_wave.h"

namespace wafp::webaudio {

class PeriodicWaveCache {
 public:
  /// The cached equivalent of PeriodicWave::standard(). `config` must be
  /// the config this cache is attached to — it is only consulted on a miss.
  [[nodiscard]] std::shared_ptr<const PeriodicWave> standard(
      OscillatorType type, double sample_rate, const EngineConfig& config);

  /// The cached equivalent of constructing a PeriodicWave from Fourier
  /// coefficients. Keyed by the raw coefficient bits, so value-identical
  /// spectra share one table set per cache (i.e. per stack archetype).
  [[nodiscard]] std::shared_ptr<const PeriodicWave> custom(
      std::span<const double> real, std::span<const double> imag,
      double sample_rate, const EngineConfig& config, bool normalize = true);

 private:
  using Key = std::pair<OscillatorType, double>;
  // (spectrum hash, sample rate, normalize)
  using CustomKey = std::tuple<std::uint64_t, double, bool>;

  mutable util::Mutex mu_;
  std::map<Key, std::shared_ptr<const PeriodicWave>> cache_
      WAFP_GUARDED_BY(mu_);
  std::map<CustomKey, std::shared_ptr<const PeriodicWave>> custom_cache_
      WAFP_GUARDED_BY(mu_);
};

}  // namespace wafp::webaudio
