// WaveShaperNode: nonlinear distortion by curve lookup, with the spec's
// 2x/4x oversampling modes (simplified resampler; see .cc). The shaping
// table interpolation and the oversampling filters are yet another
// implementation-defined numeric surface of the real API.
#pragma once

#include <vector>

#include "util/function_effects.h"
#include "webaudio/audio_node.h"

namespace wafp::webaudio {

enum class OverSampleType { kNone, k2x, k4x };

[[nodiscard]] std::string_view to_string(OverSampleType t);

class WaveShaperNode final : public AudioNode {
 public:
  explicit WaveShaperNode(OfflineAudioContext& context,
                          std::size_t channels = 1);

  [[nodiscard]] std::string_view node_name() const override {
    return "WaveShaperNode";
  }

  /// The shaping curve: input -1 maps to curve.front(), +1 to
  /// curve.back(), linear interpolation between. Empty curve = identity.
  /// Throws if fewer than 2 points.
  void set_curve(std::vector<float> curve);
  [[nodiscard]] const std::vector<float>& curve() const { return curve_; }

  void set_oversample(OverSampleType type) { oversample_ = type; }
  [[nodiscard]] OverSampleType oversample() const { return oversample_; }

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  [[nodiscard]] float shape(float x) const;

  std::vector<float> curve_;
  OverSampleType oversample_ = OverSampleType::kNone;
  AudioBus input_scratch_;
  // Last input sample per channel, for oversampling interpolation across
  // quantum boundaries.
  std::array<float, kMaxChannels> previous_sample_{};
};

}  // namespace wafp::webaudio
