// AudioParam: a named node parameter that supports both an automation
// timeline (setValueAtTime / ramps) and audio-rate modulation via node
// connections — the mechanism the paper's AM and FM vectors use (App. B:
// an oscillator drives a GainNode's gain, or another oscillator's
// frequency).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dsp/math_library.h"

namespace wafp::webaudio {

class AudioNode;

class AudioParam {
 public:
  AudioParam(std::string name, double default_value, double min_value,
             double max_value);

  [[nodiscard]] std::string_view name() const { return name_; }
  [[nodiscard]] double value() const { return base_value_; }
  [[nodiscard]] double min_value() const { return min_value_; }
  [[nodiscard]] double max_value() const { return max_value_; }

  /// Set the static (un-automated) value.
  void set_value(double v);

  /// Automation timeline, Web Audio semantics. Events must be scheduled
  /// with non-decreasing times; ramps interpolate from the previous event.
  void set_value_at_time(double value, double time);
  void linear_ramp_to_value_at_time(double value, double end_time);
  /// Exponential ramp; target and origin must be non-zero and same-signed.
  void exponential_ramp_to_value_at_time(double value, double end_time);

  /// Audio-rate modulation input (used by AudioNode::connect(param)).
  void add_input(AudioNode* source);
  [[nodiscard]] std::span<AudioNode* const> inputs() const { return inputs_; }
  [[nodiscard]] bool has_inputs() const { return !inputs_.empty(); }

  /// Compute the clamped per-frame parameter values for a render quantum
  /// starting at `start_time` seconds. Connected modulation inputs must
  /// already have been processed for this quantum; their (mono-mixed)
  /// outputs are summed onto the timeline value. Exponential ramps evaluate
  /// through `math`, so automation curves inherit the platform's libm.
  void compute_values(std::span<float> out, double start_time,
                      double sample_rate, const dsp::MathLibrary& math) const;

  /// Timeline value at one instant (no modulation inputs).
  [[nodiscard]] double value_at_time(double time,
                                     const dsp::MathLibrary& math) const;

 private:
  enum class EventType { kSetValue, kLinearRamp, kExponentialRamp };
  struct Event {
    EventType type;
    double value;
    double time;
  };

  std::string name_;
  double base_value_;
  double min_value_;
  double max_value_;
  std::vector<Event> events_;
  std::vector<AudioNode*> inputs_;
};

}  // namespace wafp::webaudio
