// GainNode: multiplies its input by the (possibly audio-rate modulated)
// gain parameter. The paper's vectors use it both as the zero-gain "mute"
// before the destination (Fig. 2: keeps fingerprinting inaudible) and as
// the modulated element of the AM vector (Fig. 8).
#pragma once

#include "util/function_effects.h"
#include "webaudio/audio_node.h"

namespace wafp::webaudio {

class GainNode final : public AudioNode {
 public:
  explicit GainNode(OfflineAudioContext& context, std::size_t channels = 1);

  [[nodiscard]] std::string_view node_name() const override {
    return "GainNode";
  }

  [[nodiscard]] AudioParam& gain() { return gain_; }

  std::vector<AudioParam*> params() override { return {&gain_}; }

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  AudioParam gain_;
  AudioBus input_scratch_;
};

}  // namespace wafp::webaudio
