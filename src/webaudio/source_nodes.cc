#include "webaudio/source_nodes.h"

#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/check.h"
#include "webaudio/offline_audio_context.h"

namespace wafp::webaudio {

/// --- ConstantSourceNode --------------------------------------------------

ConstantSourceNode::ConstantSourceNode(OfflineAudioContext& context)
    : AudioNode(context, /*num_inputs=*/0, /*output_channels=*/1),
      offset_("offset", 1.0, -1.0e9, 1.0e9) {}

void ConstantSourceNode::start(double when) {
  if (started_) {
    throw std::runtime_error("ConstantSourceNode::start called twice");
  }
  started_ = true;
  start_time_ = when;
}

void ConstantSourceNode::stop(double when) {
  if (!started_) {
    throw std::runtime_error("ConstantSourceNode::stop before start");
  }
  stop_time_ = when;
}

void ConstantSourceNode::process(std::size_t start_frame,
                                 std::size_t frames) {
  AudioBus& out = mutable_output();
  out.zero();
  if (!started_) return;

  std::array<float, kRenderQuantumFrames> values;
  const double start_time = static_cast<double>(start_frame) / sample_rate();
  offset_.compute_values(std::span(values.data(), frames), start_time,
                         sample_rate(), math());
  float* dst = out.channel(0);
  const double dt = 1.0 / sample_rate();
  for (std::size_t i = 0; i < frames; ++i) {
    const double t = start_time + static_cast<double>(i) * dt;
    if (t < start_time_ || (stop_time_ >= 0.0 && t >= stop_time_)) continue;
    dst[i] = values[i];
  }
}

/// --- AudioBufferSourceNode -----------------------------------------------

AudioBufferSourceNode::AudioBufferSourceNode(OfflineAudioContext& context)
    : AudioNode(context, /*num_inputs=*/0, /*output_channels=*/1),
      playback_rate_("playbackRate", 1.0, -32.0, 32.0) {}

void AudioBufferSourceNode::set_buffer(
    std::shared_ptr<const AudioBuffer> buffer) {
  if (!buffer) {
    throw std::invalid_argument("AudioBufferSourceNode: null buffer");
  }
  // Attaching a buffer is a connect-type operation: the node resamples by
  // linear interpolation (position advances by buffer_rate/context_rate),
  // which is only meaningful for sane rate ratios. Web Audio contexts and
  // buffers both live in [8 kHz, 96 kHz] (a 12x span); past 16x the
  // "resampled" signal is interpolation garbage that would still hash into
  // a plausible-looking fingerprint — fail loudly instead.
  const double ratio = buffer->sample_rate() / sample_rate();
  WAFP_CHECK(ratio >= 1.0 / 16.0 && ratio <= 16.0)
      << "buffer sample rate " << buffer->sample_rate()
      << " Hz is out of the supported resampling band of the context rate "
      << sample_rate() << " Hz";
  buffer_ = std::move(buffer);
  mutable_output().set_channel_count(buffer_->channel_count());
}

void AudioBufferSourceNode::start(double when) {
  if (started_) {
    throw std::runtime_error("AudioBufferSourceNode::start called twice");
  }
  started_ = true;
  start_time_ = when;
}

void AudioBufferSourceNode::stop(double when) {
  if (!started_) {
    throw std::runtime_error("AudioBufferSourceNode::stop before start");
  }
  stop_time_ = when;
}

void AudioBufferSourceNode::process(std::size_t start_frame,
                                    std::size_t frames) {
  AudioBus& out = mutable_output();
  out.zero();
  if (!started_ || finished_ || !buffer_) return;

  std::array<float, kRenderQuantumFrames> rate_values;
  const double start_time = static_cast<double>(start_frame) / sample_rate();
  playback_rate_.compute_values(std::span(rate_values.data(), frames),
                                start_time, sample_rate(), math());

  const auto length = static_cast<double>(buffer_->length());
  const double dt = 1.0 / sample_rate();
  for (std::size_t i = 0; i < frames; ++i) {
    const double t = start_time + static_cast<double>(i) * dt;
    if (t < start_time_ || (stop_time_ >= 0.0 && t >= stop_time_)) continue;
    if (position_ >= length || position_ < 0.0) {
      if (!loop_) {
        finished_ = true;
        break;
      }
      position_ = std::fmod(position_, length);
      if (position_ < 0.0) position_ += length;
    }
    const auto idx0 = static_cast<std::size_t>(position_);
    const std::size_t idx1 = loop_ ? (idx0 + 1) % buffer_->length()
                                   : std::min(idx0 + 1, buffer_->length() - 1);
    const auto frac = static_cast<float>(position_ - static_cast<double>(idx0));
    for (std::size_t ch = 0; ch < out.channels(); ++ch) {
      const auto samples = buffer_->channel(ch);
      out.channel(ch)[i] =
          samples[idx0] + frac * (samples[idx1] - samples[idx0]);
    }
    // Playback-rate scaling also accounts for buffer/context rate mismatch.
    position_ += static_cast<double>(rate_values[i]) *
                 (buffer_->sample_rate() / sample_rate());
  }
}

/// --- StereoPannerNode ----------------------------------------------------

StereoPannerNode::StereoPannerNode(OfflineAudioContext& context)
    : AudioNode(context, /*num_inputs=*/1, /*output_channels=*/2),
      pan_("pan", 0.0, -1.0, 1.0),
      input_scratch_(2, kRenderQuantumFrames) {}

void StereoPannerNode::process(std::size_t start_frame, std::size_t frames) {
  mix_input(0, input_scratch_);

  std::array<float, kRenderQuantumFrames> pan_values;
  const double start_time = static_cast<double>(start_frame) / sample_rate();
  pan_.compute_values(std::span(pan_values.data(), frames), start_time,
                      sample_rate(), math());

  AudioBus& out = mutable_output();
  const auto& m = math();
  const float* in_l = input_scratch_.channel(0);
  const float* in_r = input_scratch_.channel(1);
  for (std::size_t i = 0; i < frames; ++i) {
    // Spec stereo formula: pan <= 0 redistributes right into left.
    const double pan = pan_values[i];
    const double x = (pan <= 0.0 ? pan + 1.0 : pan) * std::numbers::pi / 2.0;
    const auto gain_l = static_cast<float>(m.cos(x));
    const auto gain_r = static_cast<float>(m.sin(x));
    if (pan <= 0.0) {
      out.channel(0)[i] = in_l[i] + in_r[i] * gain_l;
      out.channel(1)[i] = in_r[i] * gain_r;
    } else {
      out.channel(0)[i] = in_l[i] * gain_l;
      out.channel(1)[i] = in_r[i] + in_l[i] * gain_r;
    }
  }
}

/// --- ChannelSplitterNode -------------------------------------------------

ChannelSplitterNode::ChannelSplitterNode(OfflineAudioContext& context,
                                         std::size_t channel)
    : AudioNode(context, /*num_inputs=*/1, /*output_channels=*/1),
      channel_(channel),
      input_scratch_(kMaxChannels, kRenderQuantumFrames) {
  if (channel >= kMaxChannels) {
    throw std::invalid_argument("ChannelSplitterNode: channel out of range");
  }
}

void ChannelSplitterNode::process(std::size_t /*start_frame*/,
                                  std::size_t frames) {
  mix_input(0, input_scratch_);
  AudioBus& out = mutable_output();
  // Note: mix_input up-mixes mono sources to all scratch channels; for a
  // multi-channel source the selected channel carries its own data.
  const float* in = input_scratch_.channel(channel_);
  float* dst = out.channel(0);
  for (std::size_t i = 0; i < frames; ++i) dst[i] = in[i];
}

}  // namespace wafp::webaudio
