#include "webaudio/wave_shaper_node.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "webaudio/offline_audio_context.h"

namespace wafp::webaudio {

std::string_view to_string(OverSampleType t) {
  switch (t) {
    case OverSampleType::kNone: return "none";
    case OverSampleType::k2x: return "2x";
    case OverSampleType::k4x: return "4x";
  }
  return "unknown";
}

WaveShaperNode::WaveShaperNode(OfflineAudioContext& context,
                               std::size_t channels)
    : AudioNode(context, /*num_inputs=*/1, channels),
      input_scratch_(channels, kRenderQuantumFrames) {}

void WaveShaperNode::set_curve(std::vector<float> curve) {
  if (!curve.empty() && curve.size() < 2) {
    throw std::invalid_argument("WaveShaperNode: curve needs >= 2 points");
  }
  curve_ = std::move(curve);
}

float WaveShaperNode::shape(float x) const {
  if (curve_.empty()) return x;  // spec: null curve passes through
  // Map [-1, 1] onto the curve with linear interpolation; clamp outside.
  const auto n = static_cast<double>(curve_.size());
  const double v = (static_cast<double>(x) + 1.0) * 0.5 * (n - 1.0);
  if (v <= 0.0) return curve_.front();
  if (v >= n - 1.0) return curve_.back();
  const auto index = static_cast<std::size_t>(v);
  const auto frac = static_cast<float>(v - static_cast<double>(index));
  return curve_[index] + frac * (curve_[index + 1] - curve_[index]);
}

void WaveShaperNode::process(std::size_t /*start_frame*/,
                             std::size_t frames) {
  mix_input(0, input_scratch_);
  AudioBus& out = mutable_output();

  const int factor = oversample_ == OverSampleType::kNone ? 1
                     : oversample_ == OverSampleType::k2x ? 2
                                                          : 4;
  for (std::size_t ch = 0; ch < out.channels(); ++ch) {
    const float* in = input_scratch_.channel(ch);
    float* dst = out.channel(ch);
    if (factor == 1) {
      for (std::size_t i = 0; i < frames; ++i) dst[i] = shape(in[i]);
      continue;
    }
    // Simplified oversampling: linear-interpolation upsample between
    // consecutive input samples, shape each sub-sample, average back down.
    // (Real engines use polyphase FIRs; the averaging decimator keeps the
    // same structure — shape at a higher rate, then low-pass.)
    float prev = previous_sample_[ch];
    for (std::size_t i = 0; i < frames; ++i) {
      const float current = in[i];
      float acc = 0.0f;
      for (int s = 1; s <= factor; ++s) {
        const float t = static_cast<float>(s) / static_cast<float>(factor);
        acc += shape(prev + t * (current - prev));
      }
      dst[i] = acc / static_cast<float>(factor);
      prev = current;
    }
    previous_sample_[ch] = prev;
  }
}

}  // namespace wafp::webaudio
