#include "webaudio/biquad_filter_node.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/denormal.h"
#include "webaudio/offline_audio_context.h"

namespace wafp::webaudio {

std::string_view to_string(BiquadFilterType t) {
  switch (t) {
    case BiquadFilterType::kLowpass: return "lowpass";
    case BiquadFilterType::kHighpass: return "highpass";
    case BiquadFilterType::kBandpass: return "bandpass";
    case BiquadFilterType::kLowshelf: return "lowshelf";
    case BiquadFilterType::kHighshelf: return "highshelf";
    case BiquadFilterType::kPeaking: return "peaking";
    case BiquadFilterType::kNotch: return "notch";
    case BiquadFilterType::kAllpass: return "allpass";
  }
  return "unknown";
}

BiquadFilterNode::BiquadFilterNode(OfflineAudioContext& context,
                                   std::size_t channels)
    : AudioNode(context, /*num_inputs=*/1, channels),
      frequency_("frequency", 350.0, 0.0, context.sample_rate() / 2.0),
      q_("Q", 1.0, -700.0, 1500.0),
      gain_("gain", 0.0, -40.0, 40.0),
      detune_("detune", 0.0, -153600.0, 153600.0),
      input_scratch_(channels, kRenderQuantumFrames) {}

void BiquadFilterNode::set_type(BiquadFilterType type) {
  type_ = type;
  coefficients_dirty_ = true;
}

void BiquadFilterNode::update_coefficients(double when_time) {
  const auto& m = math();
  const double f0 = frequency_.value_at_time(when_time, m);
  const double q_value = q_.value_at_time(when_time, m);
  const double gain_db = gain_.value_at_time(when_time, m);
  const double detune = detune_.value_at_time(when_time, m);
  if (!coefficients_dirty_ && f0 == cached_frequency_ &&
      q_value == cached_q_ && gain_db == cached_gain_ &&
      detune == cached_detune_) {
    return;
  }
  cached_frequency_ = f0;
  cached_q_ = q_value;
  cached_gain_ = gain_db;
  cached_detune_ = detune;
  coefficients_dirty_ = false;

  const double nyquist = sample_rate() / 2.0;
  double frequency = f0;
  if (detune != 0.0) frequency *= m.pow(2.0, detune / 1200.0);
  // Normalized and clamped as the spec prescribes.
  const double normalized = std::clamp(frequency / nyquist, 0.0, 1.0);
  const double w0 = std::numbers::pi * normalized;
  const double cos_w0 = m.cos(w0);
  const double sin_w0 = m.sin(w0);

  // A (shelf/peaking amplitude) per spec.
  const double big_a = m.pow(10.0, gain_db / 40.0);

  Coefficients c;
  double a0 = 1.0;
  switch (type_) {
    case BiquadFilterType::kLowpass:
    case BiquadFilterType::kHighpass: {
      // Spec: Q in dB for these two types.
      const double resonance = m.pow(10.0, q_value / 20.0);
      const double alpha =
          sin_w0 / (2.0 * std::max(resonance, 1.0e-8));
      if (type_ == BiquadFilterType::kLowpass) {
        c.b0 = (1.0 - cos_w0) / 2.0;
        c.b1 = 1.0 - cos_w0;
        c.b2 = (1.0 - cos_w0) / 2.0;
      } else {
        c.b0 = (1.0 + cos_w0) / 2.0;
        c.b1 = -(1.0 + cos_w0);
        c.b2 = (1.0 + cos_w0) / 2.0;
      }
      a0 = 1.0 + alpha;
      c.a1 = -2.0 * cos_w0;
      c.a2 = 1.0 - alpha;
      break;
    }
    case BiquadFilterType::kBandpass: {
      const double q_lin = std::max(q_value, 1.0e-4);
      const double alpha = sin_w0 / (2.0 * q_lin);
      c.b0 = alpha;
      c.b1 = 0.0;
      c.b2 = -alpha;
      a0 = 1.0 + alpha;
      c.a1 = -2.0 * cos_w0;
      c.a2 = 1.0 - alpha;
      break;
    }
    case BiquadFilterType::kNotch: {
      const double q_lin = std::max(q_value, 1.0e-4);
      const double alpha = sin_w0 / (2.0 * q_lin);
      c.b0 = 1.0;
      c.b1 = -2.0 * cos_w0;
      c.b2 = 1.0;
      a0 = 1.0 + alpha;
      c.a1 = -2.0 * cos_w0;
      c.a2 = 1.0 - alpha;
      break;
    }
    case BiquadFilterType::kAllpass: {
      const double q_lin = std::max(q_value, 1.0e-4);
      const double alpha = sin_w0 / (2.0 * q_lin);
      c.b0 = 1.0 - alpha;
      c.b1 = -2.0 * cos_w0;
      c.b2 = 1.0 + alpha;
      a0 = 1.0 + alpha;
      c.a1 = -2.0 * cos_w0;
      c.a2 = 1.0 - alpha;
      break;
    }
    case BiquadFilterType::kPeaking: {
      const double q_lin = std::max(q_value, 1.0e-4);
      const double alpha = sin_w0 / (2.0 * q_lin);
      c.b0 = 1.0 + alpha * big_a;
      c.b1 = -2.0 * cos_w0;
      c.b2 = 1.0 - alpha * big_a;
      a0 = 1.0 + alpha / big_a;
      c.a1 = -2.0 * cos_w0;
      c.a2 = 1.0 - alpha / big_a;
      break;
    }
    case BiquadFilterType::kLowshelf:
    case BiquadFilterType::kHighshelf: {
      // Spec: shelf slope S = 1, Q ignored; the cookbook alpha reduces to
      // sin(w0)/2 * sqrt(2).
      const double alpha = sin_w0 / 2.0 * m.sqrt(2.0);
      const double two_sqrt_a_alpha = 2.0 * m.sqrt(big_a) * alpha;
      const double ap1 = big_a + 1.0;
      const double am1 = big_a - 1.0;
      if (type_ == BiquadFilterType::kLowshelf) {
        c.b0 = big_a * (ap1 - am1 * cos_w0 + two_sqrt_a_alpha);
        c.b1 = 2.0 * big_a * (am1 - ap1 * cos_w0);
        c.b2 = big_a * (ap1 - am1 * cos_w0 - two_sqrt_a_alpha);
        a0 = ap1 + am1 * cos_w0 + two_sqrt_a_alpha;
        c.a1 = -2.0 * (am1 + ap1 * cos_w0);
        c.a2 = ap1 + am1 * cos_w0 - two_sqrt_a_alpha;
      } else {
        c.b0 = big_a * (ap1 + am1 * cos_w0 + two_sqrt_a_alpha);
        c.b1 = -2.0 * big_a * (am1 + ap1 * cos_w0);
        c.b2 = big_a * (ap1 + am1 * cos_w0 - two_sqrt_a_alpha);
        a0 = ap1 - am1 * cos_w0 + two_sqrt_a_alpha;
        c.a1 = 2.0 * (am1 - ap1 * cos_w0);
        c.a2 = ap1 - am1 * cos_w0 - two_sqrt_a_alpha;
      }
      break;
    }
  }

  coefficients_.b0 = c.b0 / a0;
  coefficients_.b1 = c.b1 / a0;
  coefficients_.b2 = c.b2 / a0;
  coefficients_.a1 = c.a1 / a0;
  coefficients_.a2 = c.a2 / a0;
}

void BiquadFilterNode::process(std::size_t start_frame, std::size_t frames) {
  mix_input(0, input_scratch_);
  const double when = static_cast<double>(start_frame) / sample_rate();
  update_coefficients(when);

  AudioBus& out = mutable_output();
  const auto& cfg = context().config();
  const Coefficients& c = coefficients_;
  for (std::size_t ch = 0; ch < out.channels(); ++ch) {
    ChannelState& s = state_[ch];
    const float* in = input_scratch_.channel(ch);
    float* dst = out.channel(ch);
    for (std::size_t i = 0; i < frames; ++i) {
      const double x = static_cast<double>(in[i]);
      const double y =
          c.b0 * x + c.b1 * s.x1 + c.b2 * s.x2 - c.a1 * s.y1 - c.a2 * s.y2;
      s.x2 = s.x1;
      s.x1 = x;
      s.y2 = s.y1;
      s.y1 = dsp::flush_denormal(y, cfg.denormal);
      dst[i] = static_cast<float>(s.y1);
    }
  }
}

void BiquadFilterNode::get_frequency_response(
    std::span<const float> frequencies, std::span<float> mag_response,
    std::span<float> phase_response) {
  if (frequencies.size() != mag_response.size() ||
      frequencies.size() != phase_response.size()) {
    throw std::invalid_argument(
        "BiquadFilterNode::get_frequency_response: array lengths differ");
  }
  update_coefficients(context().current_time());
  const auto& m = math();
  const Coefficients& c = coefficients_;
  const double nyquist = sample_rate() / 2.0;
  for (std::size_t i = 0; i < frequencies.size(); ++i) {
    const double normalized =
        std::clamp(static_cast<double>(frequencies[i]) / nyquist, 0.0, 1.0);
    const double w = std::numbers::pi * normalized;
    // H(z) at z = e^{jw}: evaluate numerator/denominator as complex sums.
    const double cw = m.cos(w), sw = m.sin(w);
    const double c2w = m.cos(2.0 * w), s2w = m.sin(2.0 * w);
    const double num_re = c.b0 + c.b1 * cw + c.b2 * c2w;
    const double num_im = -(c.b1 * sw + c.b2 * s2w);
    const double den_re = 1.0 + c.a1 * cw + c.a2 * c2w;
    const double den_im = -(c.a1 * sw + c.a2 * s2w);
    const double den_mag2 = den_re * den_re + den_im * den_im;
    const double re = (num_re * den_re + num_im * den_im) / den_mag2;
    const double im = (num_im * den_re - num_re * den_im) / den_mag2;
    mag_response[i] = static_cast<float>(m.sqrt(re * re + im * im));
    // Through the variant atan2 (not host libm): the phase battery is
    // hashed into the filter-response fingerprint vector.
    phase_response[i] = static_cast<float>(m.atan2(im, re));
  }
}

}  // namespace wafp::webaudio
