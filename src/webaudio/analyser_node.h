// AnalyserNode: pass-through node exposing windowed-FFT frequency data —
// the heart of the paper's FFT fingerprinting vector (Fig. 2) and, per
// §3.1, the source of the fingerprints' apparent fickleness. The frequency
// pipeline follows Blink: time-domain ring buffer -> Blackman window ->
// FFT -> magnitude -> exponential smoothing -> dB conversion.
//
// The render jitter model (see engine_config.h) hooks in here and only
// here: a nonzero jitter state skews the ring-buffer read offset, and a
// chaos seed perturbs isolated output bins by one ULP. The time-domain
// signal path is never touched, so DC-only fingerprints stay stable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/function_effects.h"
#include "webaudio/audio_node.h"

namespace wafp::webaudio {

class AnalyserNode final : public AudioNode {
 public:
  explicit AnalyserNode(OfflineAudioContext& context,
                        std::size_t channels = 1);

  [[nodiscard]] std::string_view node_name() const override {
    return "AnalyserNode";
  }

  /// Power of two in [32, 32768]; default 2048.
  void set_fft_size(std::size_t fft_size);
  [[nodiscard]] std::size_t fft_size() const { return fft_size_; }
  [[nodiscard]] std::size_t frequency_bin_count() const {
    return fft_size_ / 2;
  }

  /// Smoothing factor in [0, 1); default 0.8 (Web Audio default).
  void set_smoothing_time_constant(double tau);
  [[nodiscard]] double smoothing_time_constant() const { return smoothing_; }

  /// Write frequency_bin_count() dB magnitudes of the most recent fftSize
  /// input frames into `out` (getFloatFrequencyData semantics).
  void get_float_frequency_data(std::span<float> out);

  /// Copy the most recent fftSize time-domain samples into `out`
  /// (getFloatTimeDomainData semantics).
  void get_float_time_domain_data(std::span<float> out) const;

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  /// Gather the latest fftSize ring samples, honouring the jitter skew.
  void gather_block(std::span<double> block, std::size_t skew) const;

  AudioBus input_scratch_;
  std::size_t fft_size_ = 2048;
  double smoothing_ = 0.8;
  std::vector<float> ring_;
  std::size_t write_index_ = 0;
  std::vector<float> smoothed_magnitudes_;
  std::vector<double> window_;        // cached per fftSize
  std::size_t window_fft_size_ = 0;   // size the cache was built for
  std::uint64_t capture_counter_ = 0; // distinguishes chaos draws per call

  // Capture scratch, grown to fftSize on first use so repeated captures
  // allocate nothing. `block_scratch_` is mutable because the const
  // time-domain getter shares it.
  mutable std::vector<double> block_scratch_;
  std::vector<float> re_scratch_;
  std::vector<float> im_scratch_;
  std::vector<float> mag_scratch_;
  std::vector<double> db_lin_scratch_;
  std::vector<double> db_scratch_;
};

}  // namespace wafp::webaudio
