// ScriptProcessorNode: delivers fixed-size blocks of the passing audio to a
// user callback, as the (deprecated but fingerprinting-beloved) Web Audio
// node of the same name does. The paper's FFT vector (Fig. 2) uses it to
// trigger AnalyserNode spectrum captures while the graph renders.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/function_effects.h"
#include "webaudio/audio_node.h"

namespace wafp::webaudio {

class ScriptProcessorNode final : public AudioNode {
 public:
  /// `block` is the mono-mixed input of the elapsed block; `when_frame` the
  /// absolute frame index at which the block completed.
  using AudioProcessCallback =
      std::function<void(std::span<const float> block, std::size_t when_frame)>;

  ScriptProcessorNode(OfflineAudioContext& context, std::size_t buffer_size,
                      std::size_t channels = 1);

  [[nodiscard]] std::string_view node_name() const override {
    return "ScriptProcessorNode";
  }

  void set_on_audio_process(AudioProcessCallback callback);

  [[nodiscard]] std::size_t buffer_size() const { return block_.size(); }

  void process(std::size_t start_frame, std::size_t frames)
      WAFP_NONALLOCATING override;

 private:
  AudioBus input_scratch_;
  std::vector<float> block_;
  std::size_t filled_ = 0;
  AudioProcessCallback callback_;
};

}  // namespace wafp::webaudio
