// Unified fingerprinting-vector registry.
//
// Historically the public API split the vector catalogue three ways —
// audio_vector_ids(), extension_vector_ids(), and the implicit "static"
// set hard-coded at every call site — and callers stitched the spans back
// together by hand. VectorRegistry collapses that into one lookup surface:
// resolve a VectorId (or its display name) to the vector instance plus its
// capability flags, and iterate whichever slice you need. The old free
// functions in vector.h remain as thin deprecated wrappers for one release.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "fingerprint/vector.h"

namespace wafp::fingerprint {

/// What a vector can do / how it behaves — the queryable version of the
/// knowledge that used to live in call-site comments.
struct VectorCapabilities {
  bool audio = false;      // renders through the webaudio engine
  bool jittery = false;    // susceptible to render-timing perturbation
  bool extension = false;  // beyond the paper's study set (§5 future work)
  bool compute = false;    // WebAssembly-style float battery (no audio graph)

  /// Static vectors digest the profile alone (Canvas/Fonts/UA/MathJS).
  [[nodiscard]] bool is_static() const { return !audio && !compute; }
};

struct VectorEntry {
  VectorId id = VectorId::kDc;
  std::string_view name;  // to_string(id)
  VectorCapabilities caps;
  /// The renderable instance for audio vectors; nullptr for static ones.
  const AudioFingerprintVector* vector = nullptr;
};

class VectorRegistry {
 public:
  /// The process-wide catalogue (vectors are stateless singletons).
  [[nodiscard]] static const VectorRegistry& instance();

  /// Every known vector, in VectorId enum order.
  [[nodiscard]] std::span<const VectorEntry> all() const { return entries_; }

  /// The paper's seven Web Audio vectors, in table order (enum order).
  [[nodiscard]] std::span<const VectorId> audio_ids() const {
    return audio_ids_;
  }
  /// The post-paper extension vectors (Filter Sweep, Distortion).
  [[nodiscard]] std::span<const VectorId> extension_ids() const {
    return extension_ids_;
  }
  /// The four non-audio comparison vectors (Canvas/Fonts/UA/MathJS).
  [[nodiscard]] std::span<const VectorId> static_ids() const {
    return static_ids_;
  }
  /// The WebAssembly-style compute vectors (WASM Float, WASM SIMD).
  [[nodiscard]] std::span<const VectorId> compute_ids() const {
    return compute_ids_;
  }

  /// Entry for `id`; throws std::invalid_argument for an unknown id.
  [[nodiscard]] const VectorEntry& entry(VectorId id) const;

  /// Entry by display name ("FFT", "Canvas", ...); nullptr when unknown.
  [[nodiscard]] const VectorEntry* find(std::string_view name) const;

  /// Unified dispatch: render an audio vector (honoring `jitter`) or digest
  /// a static one (jitter ignored — static vectors cannot waver).
  [[nodiscard]] util::Digest run(VectorId id,
                                 const platform::PlatformProfile& profile,
                                 const webaudio::RenderJitter& jitter) const;

 private:
  VectorRegistry();

  std::vector<VectorEntry> entries_;  // indexed by VectorId
  std::vector<VectorId> audio_ids_;
  std::vector<VectorId> extension_ids_;
  std::vector<VectorId> static_ids_;
  std::vector<VectorId> compute_ids_;
};

}  // namespace wafp::fingerprint
