// Implementations of the paper's seven Web Audio fingerprinting vectors
// (§2.1 Figs. 1-2, Appendix B Figs. 6-8). Each builds its audio graph on an
// OfflineAudioContext configured from the platform profile, renders one
// second at 44.1 kHz (offline contexts render at the *requested* rate, which
// is why hardware sample rates never show up in audio fingerprints), and
// hashes the characteristic outputs bit-exactly.
#include <array>
#include <functional>
#include <memory>
#include <numbers>
#include <vector>

#include "fingerprint/vector.h"
#include "fingerprint/vector_registry.h"
#include "webaudio/analyser_node.h"
#include "webaudio/channel_merger_node.h"
#include "webaudio/dynamics_compressor_node.h"
#include "webaudio/gain_node.h"
#include "webaudio/offline_audio_context.h"
#include "webaudio/oscillator_node.h"
#include "webaudio/periodic_wave.h"
#include "webaudio/periodic_wave_cache.h"
#include "webaudio/script_processor_node.h"

namespace wafp::fingerprint {
namespace {

using webaudio::AnalyserNode;
using webaudio::AudioNode;
using webaudio::ChannelMergerNode;
using webaudio::DynamicsCompressorNode;
using webaudio::EngineConfig;
using webaudio::GainNode;
using webaudio::OfflineAudioContext;
using webaudio::OscillatorNode;
using webaudio::OscillatorType;
using webaudio::PeriodicWave;
using webaudio::ScriptProcessorNode;

constexpr double kSampleRate = 44100.0;
constexpr std::size_t kRenderFrames = 44100;  // 1 second
constexpr std::size_t kScriptBufferFrames = 2048;

EngineConfig config_for(const platform::PlatformProfile& profile,
                        const webaudio::RenderJitter& jitter) {
  EngineConfig cfg = profile.make_engine_config();
  cfg.jitter = jitter;
  return cfg;
}

/// The paper's Custom Signal coefficients: "an array of 12 real and
/// imaginary values ... real values randomly selected between 0 and 1 and
/// imaginary values alternating between 0 and pi/2" (App. B). Fixed at
/// build time, as in the study's fingerprinting script.
constexpr std::array<double, 13> kCustomReal = {
    0.0,      0.709834, 0.184022, 0.935414, 0.462308, 0.558136, 0.071994,
    0.804589, 0.326981, 0.642917, 0.198276, 0.871063, 0.415229};

std::shared_ptr<const PeriodicWave> make_custom_wave(
    const OfflineAudioContext& ctx) {
  std::array<double, 13> imag{};
  for (std::size_t k = 1; k < imag.size(); ++k) {
    imag[k] = (k % 2 == 0) ? 0.0 : std::numbers::pi / 2.0;
  }
  // Route through the config's wave cache so repeated renders of the same
  // stack archetype reuse one table set instead of re-running kNumRanges
  // inverse FFTs per render (the steady-state allocation audit pins this).
  const EngineConfig& cfg = ctx.config();
  if (cfg.wave_cache) {
    return cfg.wave_cache->custom(kCustomReal, imag, kSampleRate, cfg);
  }
  return std::make_shared<const PeriodicWave>(kCustomReal, imag, kSampleRate,
                                              cfg);
}

/// --- DC (Fig. 1): oscillator -> dynamics compressor -> destination. -----
/// Fingerprint = hash of the rendered time-domain samples. No analyser in
/// the graph, so render jitter cannot touch it: perfectly stable (Table 1).
class DcVector final : public AudioFingerprintVector {
 public:
  VectorId id() const override { return VectorId::kDc; }
  double jitter_susceptibility() const override { return 0.0; }

  util::Digest run(const platform::PlatformProfile& profile,
                   const webaudio::RenderJitter& jitter,
                   std::vector<float>* capture) const override {
    OfflineAudioContext ctx(1, kRenderFrames, kSampleRate,
                            config_for(profile, jitter));
    auto& osc = ctx.create<OscillatorNode>(OscillatorType::kTriangle);
    osc.frequency().set_value(10000.0);
    auto& compressor = ctx.create<DynamicsCompressorNode>();
    osc.connect(compressor);
    compressor.connect(ctx.destination());
    osc.start(0.0);

    const webaudio::AudioBuffer rendered = ctx.start_rendering();
    DigestTap tap(name(), capture);
    tap.write(rendered.channel(0));
    return tap.finish();
  }
};

/// --- FFT (Fig. 2): oscillator -> analyser -> script processor ->
/// zero-gain -> destination; hash of the analyser's dB spectra captured on
/// every script-processor block.
class FftVector final : public AudioFingerprintVector {
 public:
  VectorId id() const override { return VectorId::kFft; }
  double jitter_susceptibility() const override { return 0.75; }

  util::Digest run(const platform::PlatformProfile& profile,
                   const webaudio::RenderJitter& jitter,
                   std::vector<float>* capture) const override {
    OfflineAudioContext ctx(1, kRenderFrames, kSampleRate,
                            config_for(profile, jitter));
    auto& osc = ctx.create<OscillatorNode>(OscillatorType::kTriangle);
    osc.frequency().set_value(10000.0);
    auto& analyser = ctx.create<AnalyserNode>();
    auto& script = ctx.create<ScriptProcessorNode>(kScriptBufferFrames);
    auto& mute = ctx.create<GainNode>();
    mute.gain().set_value(0.0);

    osc.connect(analyser);
    analyser.connect(script);
    script.connect(mute);
    mute.connect(ctx.destination());
    osc.start(0.0);

    DigestTap tap(name(), capture);
    std::vector<float> freq(analyser.frequency_bin_count());
    script.set_on_audio_process(
        [&](std::span<const float> /*block*/, std::size_t /*frame*/) {
          analyser.get_float_frequency_data(freq);
          tap.write(freq);
        });
    (void)ctx.start_rendering();
    return tap.finish();
  }
};

/// Shared scaffold of the hybrid family (Fig. 6): signal source ->
/// analyser -> dynamics compressor -> script processor -> zero-gain ->
/// destination. The digest covers both the compressor's time-domain blocks
/// (the "DC half") and the analyser's spectra (the "FFT half").
class HybridFamilyVector : public AudioFingerprintVector {
 public:
  util::Digest run(const platform::PlatformProfile& profile,
                   const webaudio::RenderJitter& jitter,
                   std::vector<float>* capture) const override {
    OfflineAudioContext ctx(1, kRenderFrames, kSampleRate,
                            config_for(profile, jitter));
    const std::size_t channels = signal_channels();
    auto& analyser = ctx.create<AnalyserNode>(channels);
    auto& compressor = ctx.create<DynamicsCompressorNode>(channels);
    auto& script = ctx.create<ScriptProcessorNode>(kScriptBufferFrames,
                                                   channels);
    auto& mute = ctx.create<GainNode>(channels);
    mute.gain().set_value(0.0);

    AudioNode& source = build_signal(ctx);
    source.connect(analyser);
    analyser.connect(compressor);
    compressor.connect(script);
    script.connect(mute);
    mute.connect(ctx.destination());

    DigestTap tap(name(), capture);
    std::vector<float> freq(analyser.frequency_bin_count());
    script.set_on_audio_process(
        [&](std::span<const float> block, std::size_t /*frame*/) {
          tap.write(block);  // compressor output (time domain)
          analyser.get_float_frequency_data(freq);
          tap.write(freq);
        });
    (void)ctx.start_rendering();
    return tap.finish();
  }

 protected:
  /// Build and start the signal chain; return the node feeding the
  /// analyser.
  virtual AudioNode& build_signal(OfflineAudioContext& ctx) const = 0;
  [[nodiscard]] virtual std::size_t signal_channels() const { return 1; }
};

class HybridVector final : public HybridFamilyVector {
 public:
  VectorId id() const override { return VectorId::kHybrid; }
  double jitter_susceptibility() const override { return 1.00; }

 protected:
  AudioNode& build_signal(OfflineAudioContext& ctx) const override {
    auto& osc = ctx.create<OscillatorNode>(OscillatorType::kTriangle);
    osc.frequency().set_value(10000.0);
    osc.start(0.0);
    return osc;
  }
};

/// Custom Signal (App. B): hybrid scaffold driven by a custom-shaped
/// PeriodicWave.
class CustomSignalVector final : public HybridFamilyVector {
 public:
  VectorId id() const override { return VectorId::kCustomSignal; }
  double jitter_susceptibility() const override { return 1.00; }

 protected:
  AudioNode& build_signal(OfflineAudioContext& ctx) const override {
    auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
    osc.set_periodic_wave(make_custom_wave(ctx));
    osc.frequency().set_value(10000.0);
    osc.start(0.0);
    return osc;
  }
};

/// Merged Signals (Fig. 7): all four spec waveforms at different
/// frequencies, combined by a ChannelMergerNode.
class MergedSignalsVector final : public HybridFamilyVector {
 public:
  VectorId id() const override { return VectorId::kMergedSignals; }
  double jitter_susceptibility() const override { return 1.90; }

 protected:
  std::size_t signal_channels() const override { return 4; }

  AudioNode& build_signal(OfflineAudioContext& ctx) const override {
    auto& merger = ctx.create<ChannelMergerNode>(4);
    const struct {
      OscillatorType type;
      double frequency;
    } kSignals[] = {
        {OscillatorType::kTriangle, 10000.0},
        {OscillatorType::kSine, 440.0},
        {OscillatorType::kSquare, 1880.0},
        {OscillatorType::kSawtooth, 22000.0},
    };
    for (std::size_t i = 0; i < 4; ++i) {
      auto& osc = ctx.create<OscillatorNode>(kSignals[i].type);
      osc.frequency().set_value(kSignals[i].frequency);
      osc.connect(merger, i);
      osc.start(0.0);
    }
    return merger;
  }
};

/// AM (Fig. 8): a 440 Hz sine carrier whose GainNode gain is modulated by
/// the summed triangle + square waves through a gain-60 stage.
class AmVector final : public HybridFamilyVector {
 public:
  VectorId id() const override { return VectorId::kAm; }
  double jitter_susceptibility() const override { return 3.20; }

 protected:
  AudioNode& build_signal(OfflineAudioContext& ctx) const override {
    auto& carrier = ctx.create<OscillatorNode>(OscillatorType::kSine);
    carrier.frequency().set_value(440.0);
    auto& carrier_gain = ctx.create<GainNode>();
    carrier_gain.gain().set_value(1.0);
    carrier.connect(carrier_gain);

    auto& mod_triangle = ctx.create<OscillatorNode>(OscillatorType::kTriangle);
    mod_triangle.frequency().set_value(10000.0);
    auto& mod_square = ctx.create<OscillatorNode>(OscillatorType::kSquare);
    mod_square.frequency().set_value(1880.0);
    auto& mod_gain = ctx.create<GainNode>();
    mod_gain.gain().set_value(60.0);
    mod_triangle.connect(mod_gain);
    mod_square.connect(mod_gain);
    mod_gain.connect(carrier_gain.gain());

    carrier.start(0.0);
    mod_triangle.start(0.0);
    mod_square.start(0.0);
    return carrier_gain;
  }
};

/// FM (App. B): same as AM, but the modulators drive the carrier's
/// frequency parameter instead of its amplitude.
class FmVector final : public HybridFamilyVector {
 public:
  VectorId id() const override { return VectorId::kFm; }
  double jitter_susceptibility() const override { return 3.25; }

 protected:
  AudioNode& build_signal(OfflineAudioContext& ctx) const override {
    auto& carrier = ctx.create<OscillatorNode>(OscillatorType::kSine);
    carrier.frequency().set_value(440.0);

    auto& mod_triangle = ctx.create<OscillatorNode>(OscillatorType::kTriangle);
    mod_triangle.frequency().set_value(10000.0);
    auto& mod_square = ctx.create<OscillatorNode>(OscillatorType::kSquare);
    mod_square.frequency().set_value(1880.0);
    auto& mod_gain = ctx.create<GainNode>();
    mod_gain.gain().set_value(60.0);
    mod_triangle.connect(mod_gain);
    mod_square.connect(mod_gain);
    mod_gain.connect(carrier.frequency());

    carrier.start(0.0);
    mod_triangle.start(0.0);
    mod_square.start(0.0);
    return carrier;
  }
};

}  // namespace

std::string_view to_string(VectorId id) {
  switch (id) {
    case VectorId::kDc: return "DC";
    case VectorId::kFft: return "FFT";
    case VectorId::kHybrid: return "Hybrid";
    case VectorId::kCustomSignal: return "Custom Signal";
    case VectorId::kMergedSignals: return "Merged Signals";
    case VectorId::kAm: return "AM";
    case VectorId::kFm: return "FM";
    case VectorId::kCanvas: return "Canvas";
    case VectorId::kFonts: return "Fonts";
    case VectorId::kUserAgent: return "User-Agent";
    case VectorId::kMathJs: return "Math JS";
    case VectorId::kFilterSweep: return "Filter Sweep";
    case VectorId::kDistortion: return "Distortion";
    case VectorId::kWasmFloat: return "WASM Float";
    case VectorId::kWasmSimd: return "WASM SIMD";
  }
  return "unknown";
}

// Defined in extension_vectors.cc.
const AudioFingerprintVector& extension_vector_instance(VectorId id);

std::span<const VectorId> audio_vector_ids() {
  // Deprecated wrapper: the registry owns the canonical catalogue now.
  return VectorRegistry::instance().audio_ids();
}

const AudioFingerprintVector& audio_vector(VectorId id) {
  static const DcVector dc;
  static const FftVector fft;
  static const HybridVector hybrid;
  static const CustomSignalVector custom;
  static const MergedSignalsVector merged;
  static const AmVector am;
  static const FmVector fm;
  switch (id) {
    case VectorId::kDc: return dc;
    case VectorId::kFft: return fft;
    case VectorId::kHybrid: return hybrid;
    case VectorId::kCustomSignal: return custom;
    case VectorId::kMergedSignals: return merged;
    case VectorId::kAm: return am;
    case VectorId::kFm: return fm;
    case VectorId::kFilterSweep:
    case VectorId::kDistortion:
      return extension_vector_instance(id);
    default:
      throw std::invalid_argument("audio_vector: not an audio vector id");
  }
}

}  // namespace wafp::fingerprint
