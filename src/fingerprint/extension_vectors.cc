// Extension fingerprinting vectors beyond the paper's seven (§5 closes by
// asking which *other* factors drive Web Audio fingerprintability; these
// probe API surfaces the study never exercised):
//
//  * Filter Sweep — a sawtooth pushed through a resonant peaking
//    BiquadFilter; the digest covers both the filtered audio and a
//    getFrequencyResponse battery, so the filter's coefficient math (libm
//    exp/pow/cos) is harvested directly.
//  * Distortion — a sine through a WaveShaper running 4x oversampling with
//    a tanh-shaped curve computed through the platform math library; the
//    resampler and the curve generation are both implementation-defined.
#include <numbers>

#include "fingerprint/vector.h"
#include "fingerprint/vector_registry.h"
#include "webaudio/analyser_node.h"
#include "webaudio/biquad_filter_node.h"
#include "webaudio/dynamics_compressor_node.h"
#include "webaudio/gain_node.h"
#include "webaudio/offline_audio_context.h"
#include "webaudio/oscillator_node.h"
#include "webaudio/script_processor_node.h"
#include "webaudio/wave_shaper_node.h"

namespace wafp::fingerprint {
namespace {

using webaudio::AnalyserNode;
using webaudio::BiquadFilterNode;
using webaudio::BiquadFilterType;
using webaudio::EngineConfig;
using webaudio::GainNode;
using webaudio::OfflineAudioContext;
using webaudio::OscillatorNode;
using webaudio::OscillatorType;
using webaudio::OverSampleType;
using webaudio::ScriptProcessorNode;
using webaudio::WaveShaperNode;

constexpr double kSampleRate = 44100.0;
constexpr std::size_t kRenderFrames = 44100;

EngineConfig config_for(const platform::PlatformProfile& profile,
                        const webaudio::RenderJitter& jitter) {
  EngineConfig cfg = profile.make_engine_config();
  cfg.jitter = jitter;
  return cfg;
}

class FilterSweepVector final : public AudioFingerprintVector {
 public:
  VectorId id() const override { return VectorId::kFilterSweep; }
  double jitter_susceptibility() const override { return 1.20; }

  util::Digest run(const platform::PlatformProfile& profile,
                   const webaudio::RenderJitter& jitter,
                   std::vector<float>* capture) const override {
    OfflineAudioContext ctx(1, kRenderFrames, kSampleRate,
                            config_for(profile, jitter));
    auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSawtooth);
    osc.frequency().set_value(220.0);
    auto& filter = ctx.create<BiquadFilterNode>();
    filter.set_type(BiquadFilterType::kPeaking);
    filter.frequency().set_value(2400.0);
    filter.q().set_value(8.0);
    filter.gain().set_value(12.0);
    // Sweep the centre across the render (exercises coefficient updates).
    filter.frequency().linear_ramp_to_value_at_time(6000.0, 1.0);
    auto& analyser = ctx.create<AnalyserNode>();
    auto& script = ctx.create<ScriptProcessorNode>(2048);
    auto& mute = ctx.create<GainNode>();
    mute.gain().set_value(0.0);
    osc.connect(filter);
    filter.connect(analyser);
    analyser.connect(script);
    script.connect(mute);
    mute.connect(ctx.destination());
    osc.start(0.0);

    DigestTap tap(name(), capture);
    std::vector<float> freq(analyser.frequency_bin_count());
    script.set_on_audio_process(
        [&](std::span<const float> block, std::size_t /*frame*/) {
          tap.write(block);
          analyser.get_float_frequency_data(freq);
          tap.write(freq);
        });
    (void)ctx.start_rendering();

    // getFrequencyResponse battery: 64 probe frequencies.
    std::vector<float> probe(64), mag(64), phase(64);
    for (std::size_t i = 0; i < probe.size(); ++i) {
      probe[i] = static_cast<float>(50.0 * static_cast<double>(i + 1));
    }
    filter.get_frequency_response(probe, mag, phase);
    tap.write(mag);
    tap.write(phase);
    return tap.finish();
  }
};

class DistortionVector final : public AudioFingerprintVector {
 public:
  VectorId id() const override { return VectorId::kDistortion; }
  double jitter_susceptibility() const override { return 1.30; }

  util::Digest run(const platform::PlatformProfile& profile,
                   const webaudio::RenderJitter& jitter,
                   std::vector<float>* capture) const override {
    OfflineAudioContext ctx(1, kRenderFrames, kSampleRate,
                            config_for(profile, jitter));
    auto& osc = ctx.create<OscillatorNode>(OscillatorType::kSine);
    osc.frequency().set_value(987.0);
    auto& drive = ctx.create<GainNode>();
    drive.gain().set_value(3.0);
    auto& shaper = ctx.create<WaveShaperNode>();
    shaper.set_oversample(OverSampleType::k4x);
    // tanh drive curve computed through the platform math library — curve
    // *generation* is part of the fingerprint surface, as real scripts
    // build curves with Math functions.
    const auto& m = ctx.math();
    std::vector<float> curve(257);
    for (std::size_t i = 0; i < curve.size(); ++i) {
      const double x = 2.0 * static_cast<double>(i) / 256.0 - 1.0;
      curve[i] = static_cast<float>(m.tanh(3.0 * x));
    }
    shaper.set_curve(std::move(curve));
    auto& analyser = ctx.create<AnalyserNode>();
    auto& script = ctx.create<ScriptProcessorNode>(2048);
    auto& mute = ctx.create<GainNode>();
    mute.gain().set_value(0.0);

    osc.connect(drive);
    drive.connect(shaper);
    shaper.connect(analyser);
    analyser.connect(script);
    script.connect(mute);
    mute.connect(ctx.destination());
    osc.start(0.0);

    DigestTap tap(name(), capture);
    std::vector<float> freq(analyser.frequency_bin_count());
    script.set_on_audio_process(
        [&](std::span<const float> block, std::size_t /*frame*/) {
          tap.write(block);
          analyser.get_float_frequency_data(freq);
          tap.write(freq);
        });
    (void)ctx.start_rendering();
    return tap.finish();
  }
};

}  // namespace

std::span<const VectorId> extension_vector_ids() {
  // Deprecated wrapper: the registry owns the canonical catalogue now.
  return VectorRegistry::instance().extension_ids();
}

const AudioFingerprintVector& extension_vector_instance(VectorId id) {
  static const FilterSweepVector filter_sweep;
  static const DistortionVector distortion;
  switch (id) {
    case VectorId::kFilterSweep: return filter_sweep;
    case VectorId::kDistortion: return distortion;
    default:
      throw std::invalid_argument(
          "extension_vector_instance: not an extension vector");
  }
}

}  // namespace wafp::fingerprint
