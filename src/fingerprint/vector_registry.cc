#include "fingerprint/vector_registry.h"

#include <array>
#include <stdexcept>

namespace wafp::fingerprint {

namespace {

constexpr std::array<VectorId, 15> kAllIds = {
    VectorId::kDc,           VectorId::kFft,
    VectorId::kHybrid,       VectorId::kCustomSignal,
    VectorId::kMergedSignals, VectorId::kAm,
    VectorId::kFm,           VectorId::kCanvas,
    VectorId::kFonts,        VectorId::kUserAgent,
    VectorId::kMathJs,       VectorId::kFilterSweep,
    VectorId::kDistortion,   VectorId::kWasmFloat,
    VectorId::kWasmSimd,
};

constexpr bool is_extension_vector(VectorId id) {
  return id == VectorId::kFilterSweep || id == VectorId::kDistortion;
}

}  // namespace

VectorRegistry::VectorRegistry() {
  entries_.reserve(kAllIds.size());
  for (const VectorId id : kAllIds) {
    VectorEntry e;
    e.id = id;
    e.name = to_string(id);
    e.caps.extension = is_extension_vector(id);
    if (is_compute_vector(id)) {
      e.caps.compute = true;
      compute_ids_.push_back(id);
    } else if (is_static_vector(id)) {
      static_ids_.push_back(id);
    } else {
      e.caps.audio = true;
      e.vector = &audio_vector(id);
      e.caps.jittery = e.vector->jitter_susceptibility() > 0.0;
      if (e.caps.extension) {
        extension_ids_.push_back(id);
      } else {
        audio_ids_.push_back(id);
      }
    }
    entries_.push_back(e);
  }
}

const VectorRegistry& VectorRegistry::instance() {
  static const VectorRegistry registry;
  return registry;
}

const VectorEntry& VectorRegistry::entry(VectorId id) const {
  const auto index = static_cast<std::size_t>(id);
  if (index >= entries_.size()) {
    throw std::invalid_argument("VectorRegistry: unknown vector id");
  }
  return entries_[index];
}

const VectorEntry* VectorRegistry::find(std::string_view name) const {
  for (const VectorEntry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

util::Digest VectorRegistry::run(VectorId id,
                                 const platform::PlatformProfile& profile,
                                 const webaudio::RenderJitter& jitter) const {
  const VectorEntry& e = entry(id);
  if (e.caps.compute) return run_compute_vector(id, profile);
  if (e.caps.is_static()) return run_static_vector(id, profile);
  return e.vector->run(profile, jitter);
}

}  // namespace wafp::fingerprint
