#include "fingerprint/render_cache.h"

namespace wafp::fingerprint {

RenderClassKey make_render_class_key(const AudioFingerprintVector& vector,
                                     const platform::PlatformProfile& profile,
                                     std::uint32_t jitter_state) {
  RenderClassKey key;
  key.stack = profile.audio;
  key.stack_hash = profile.audio.class_hash();
  key.vector = static_cast<std::uint32_t>(vector.id());
  key.jitter = jitter_state;
  return key;
}

RenderCache::RenderCache(obs::MetricsRegistry* metrics)
    : metrics_(metrics ? *metrics : obs::MetricsRegistry::global()),
      hit_counter_(metrics_.counter("wafp_cache_hits_total",
                                    "Render-cache lookups that found an "
                                    "existing entry")),
      miss_counter_(metrics_.counter("wafp_cache_misses_total",
                                     "Render-cache lookups that created the "
                                     "entry and rendered it")),
      dedup_wait_counter_(metrics_.counter(
          "wafp_cache_dedup_waits_total",
          "Render-cache hits that blocked on another thread's in-flight "
          "render of the same key")) {}

const util::Digest& RenderCache::get(const AudioFingerprintVector& vector,
                                     const platform::PlatformProfile& profile,
                                     std::uint32_t jitter_state) {
  const Key key = make_render_class_key(vector, profile, jitter_state);
  const std::size_t h = KeyHash{}(key);
  Shard& shard = shards_[h % kShards];

  Entry* entry = nullptr;
  bool created = false;
  {
    util::MutexLock lock(shard.mu);
    // Cold-key inserts only: after warmup every class is already present
    // and these lines are a pure lookup (the build-free steady state).
    // wafp-lint: allow(nonallocating): cold-key shard insert (miss path)
    auto [it, inserted] = shard.map.try_emplace(key);
    // wafp-lint: allow(nonallocating): cold-key entry allocation (miss path)
    if (inserted) it->second = std::make_unique<Entry>();
    entry = it->second.get();
    created = inserted;
  }
  if (created) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_counter_.inc();
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hit_counter_.inc();
    // A hit on an entry whose render hasn't published yet is about to park
    // inside call_once until the renderer finishes.
    if (!entry->ready.load(std::memory_order_acquire)) {
      dedup_wait_counter_.inc();
    }
  }

  // Render outside the shard lock: renders are the expensive part, and
  // holding the mutex across one would serialize every same-shard thread.
  // call_once makes concurrent racers on this key wait for one render
  // instead of duplicating it. On a warm entry the flag is already set and
  // this is a single acquire load — the lambda (and the cold render behind
  // it) never runs on the steady-state path.
  // wafp-lint: allow(nonallocating): cold-key render behind call_once
  std::call_once(entry->once, [&] { render_cold(*entry, vector, profile,
                                                jitter_state); });
  return entry->digest;
}

void RenderCache::render_cold(Entry& entry,
                              const AudioFingerprintVector& vector,
                              const platform::PlatformProfile& profile,
                              std::uint32_t jitter_state) {
  webaudio::RenderJitter jitter;
  jitter.state = jitter_state;
  const std::uint64_t t0 = metrics_.now_ns();
  entry.digest = vector.run(profile, jitter);
  metrics_
      .histogram("wafp_render_vector_ns",
                 "Cold-cache render duration per fingerprint vector (ns)",
                 obs::label("vector", vector.name()))
      .observe(metrics_.now_ns() - t0);
  entry.ready.store(true, std::memory_order_release);
}

std::size_t RenderCache::entries() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace wafp::fingerprint
