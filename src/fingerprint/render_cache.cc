#include "fingerprint/render_cache.h"

namespace wafp::fingerprint {

const util::Digest& RenderCache::get(const AudioFingerprintVector& vector,
                                     const platform::PlatformProfile& profile,
                                     std::uint32_t jitter_state) {
  Key key;
  key.stack = profile.audio;
  key.stack_hash = profile.audio.class_hash();
  key.vector = static_cast<std::uint32_t>(vector.id());
  key.jitter = jitter_state;

  const std::size_t h = KeyHash{}(key);
  Shard& shard = shards_[h % kShards];

  Entry* entry = nullptr;
  bool created = false;
  {
    util::MutexLock lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(key);
    if (inserted) it->second = std::make_unique<Entry>();
    entry = it->second.get();
    created = inserted;
  }
  (created ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);

  // Render outside the shard lock: renders are the expensive part, and
  // holding the mutex across one would serialize every same-shard thread.
  // call_once makes concurrent racers on this key wait for one render
  // instead of duplicating it.
  std::call_once(entry->once, [&] {
    webaudio::RenderJitter jitter;
    jitter.state = jitter_state;
    entry->digest = vector.run(profile, jitter);
  });
  return entry->digest;
}

std::size_t RenderCache::entries() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace wafp::fingerprint
