#include "fingerprint/render_cache.h"

namespace wafp::fingerprint {

const util::Digest& RenderCache::get(const AudioFingerprintVector& vector,
                                     const platform::PlatformProfile& profile,
                                     std::uint32_t jitter_state) {
  std::string key = profile.audio.class_key();
  key += '|';
  key += vector.name();
  key += '|';
  key += std::to_string(jitter_state);

  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  webaudio::RenderJitter jitter;
  jitter.state = jitter_state;
  util::Digest digest = vector.run(profile, jitter);
  return cache_.emplace(std::move(key), digest).first->second;
}

}  // namespace wafp::fingerprint
