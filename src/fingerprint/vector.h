// Fingerprinting vectors (paper §2.1): the three known audio vectors (DC,
// FFT, Hybrid), the paper's four new ones (Custom Signal, Merged Signals,
// AM, FM), and the comparison vectors (Canvas, Fonts, User-Agent, Math JS).
#pragma once

#include <array>
#include <span>
#include <string_view>
#include <vector>

#include "platform/profile.h"
#include "util/hash.h"
#include "webaudio/engine_config.h"

namespace wafp::fingerprint {

enum class VectorId {
  kDc,
  kFft,
  kHybrid,
  kCustomSignal,
  kMergedSignals,
  kAm,
  kFm,
  kCanvas,
  kFonts,
  kUserAgent,
  kMathJs,
  // Extension vectors beyond the paper (its §5 future work asks about
  // "other potential factors"): two more audio graphs harvesting node types
  // the seven study vectors never touch.
  kFilterSweep,  // BiquadFilterNode response + filtered audio
  kDistortion,   // WaveShaperNode with 4x oversampling
  // WebAssembly-style compute vectors (Guri & Fibert, PAPERS.md): float
  // batteries probing the browser binary's libm generation, FMA
  // contraction, and SIMD reduction width — no audio graph involved.
  kWasmFloat,  // scalar f32 transcendental + Horner battery
  kWasmSimd,   // v128 lane reductions (association order per simd_tier)
};

[[nodiscard]] std::string_view to_string(VectorId id);

/// The seven Web Audio vectors, in the paper's table order.
/// Deprecated: thin wrapper over VectorRegistry::instance().audio_ids()
/// (see fingerprint/vector_registry.h); will be removed next release.
[[nodiscard]] std::span<const VectorId> audio_vector_ids();

/// The post-paper extension vectors (see extension_vectors.cc).
/// Deprecated: thin wrapper over VectorRegistry::instance().extension_ids();
/// will be removed next release.
[[nodiscard]] std::span<const VectorId> extension_vector_ids();

/// Funnels a vector's characteristic output into its digest and, when a
/// capture buffer is supplied, records the exact float stream the digest
/// covers — in hash order. Every sample that can influence a fingerprint
/// goes through write(), so two renders with equal digests captured equal
/// streams, and two renders with different digests can be diffed down to
/// the first diverging sample (see src/testing/pcm_digest.h).
class DigestTap {
 public:
  DigestTap(std::string_view vector_name, std::vector<float>* capture)
      : capture_(capture) {
    hasher_.update(vector_name);
  }

  void write(std::span<const float> samples) {
    hasher_.update(samples);
    if (capture_ != nullptr) {
      capture_->insert(capture_->end(), samples.begin(), samples.end());
    }
  }

  /// Finalize; the tap must not be written to afterwards.
  [[nodiscard]] util::Digest finish() { return hasher_.finish(); }

 private:
  util::Sha256 hasher_;
  std::vector<float>* capture_;
};

/// One Web Audio fingerprinting vector: builds its audio graph on a
/// platform-configured OfflineAudioContext, renders, and hashes the
/// characteristic outputs.
class AudioFingerprintVector {
 public:
  virtual ~AudioFingerprintVector() = default;

  [[nodiscard]] virtual VectorId id() const = 0;
  [[nodiscard]] std::string_view name() const { return to_string(id()); }

  /// Relative sensitivity of this vector to render-timing perturbations
  /// (paper Table 1: DC never wavers; modulation vectors waver most, which
  /// the authors attribute to heavier render loads). Scales the per-user
  /// flakiness when the study harness draws each iteration's jitter.
  [[nodiscard]] virtual double jitter_susceptibility() const = 0;

  /// Render the vector's graph on the given platform with the given jitter
  /// state and return the fingerprint digest. Deterministic in
  /// (profile.audio, jitter).
  [[nodiscard]] util::Digest run(const platform::PlatformProfile& profile,
                                 const webaudio::RenderJitter& jitter) const {
    return run(profile, jitter, nullptr);
  }

  /// As above, additionally capturing the digested sample stream into
  /// `capture` (append-only; pass nullptr to skip). The digest is identical
  /// with or without capture — the conformance suite asserts it.
  [[nodiscard]] virtual util::Digest run(
      const platform::PlatformProfile& profile,
      const webaudio::RenderJitter& jitter,
      std::vector<float>* capture) const = 0;
};

/// Registry lookup (objects are stateless singletons).
[[nodiscard]] const AudioFingerprintVector& audio_vector(VectorId id);

/// Non-audio vectors share this entry point: digest from the profile alone.
[[nodiscard]] util::Digest run_static_vector(
    VectorId id, const platform::PlatformProfile& profile);

/// Compute (WebAssembly-style) vectors: digest from the profile alone, with
/// the battery's exact float stream optionally captured (append-only; pass
/// nullptr to skip) so the conformance goldens can diff them sample-exactly
/// like audio PCM. Throws std::invalid_argument for non-compute ids.
[[nodiscard]] util::Digest run_compute_vector(
    VectorId id, const platform::PlatformProfile& profile,
    std::vector<float>* capture = nullptr);

/// True for the four non-audio comparison vectors.
[[nodiscard]] constexpr bool is_static_vector(VectorId id) {
  return id == VectorId::kCanvas || id == VectorId::kFonts ||
         id == VectorId::kUserAgent || id == VectorId::kMathJs;
}

/// True for the WebAssembly-style compute vectors.
[[nodiscard]] constexpr bool is_compute_vector(VectorId id) {
  return id == VectorId::kWasmFloat || id == VectorId::kWasmSimd;
}

}  // namespace wafp::fingerprint
