// WebAssembly-style compute vectors (see platform/wasm_sim.h): digest the
// float batteries through the same DigestTap discipline as the audio
// vectors, so the conformance goldens can capture and diff the exact
// sample stream behind every digest.
#include <stdexcept>
#include <vector>

#include "fingerprint/vector.h"
#include "platform/wasm_sim.h"

namespace wafp::fingerprint {

util::Digest run_compute_vector(VectorId id,
                                const platform::PlatformProfile& profile,
                                std::vector<float>* capture) {
  std::vector<float> battery;
  switch (id) {
    case VectorId::kWasmFloat:
      battery = platform::wasm_float_battery(profile);
      break;
    case VectorId::kWasmSimd:
      battery = platform::wasm_simd_battery(profile);
      break;
    default:
      throw std::invalid_argument("run_compute_vector: not a compute vector");
  }
  DigestTap tap(to_string(id), capture);
  tap.write(battery);
  return tap.finish();
}

}  // namespace wafp::fingerprint
