// Non-audio comparison vectors (paper Tables 3-5): thin adapters over the
// platform-simulation implementations.
#include <stdexcept>

#include "fingerprint/vector.h"
#include "platform/canvas_sim.h"
#include "platform/synthetic_vectors.h"

namespace wafp::fingerprint {

util::Digest run_static_vector(VectorId id,
                               const platform::PlatformProfile& profile) {
  switch (id) {
    case VectorId::kCanvas:
      return platform::canvas_fingerprint(profile);
    case VectorId::kFonts:
      return platform::fonts_fingerprint(profile);
    case VectorId::kUserAgent:
      return platform::user_agent_fingerprint(profile);
    case VectorId::kMathJs:
      return platform::math_js_fingerprint(profile);
    default:
      throw std::invalid_argument(
          "run_static_vector: id is an audio vector; use audio_vector()");
  }
}

}  // namespace wafp::fingerprint
