// FingerprintCollector: plays the role of the study's fingerprinting web
// page for one participant — it produces the digest a given (user, vector,
// iteration) triple would have submitted, applying the per-user fickleness
// model (paper §3.1) to decide each iteration's render-jitter state.
#pragma once

#include <cstdint>

#include "fingerprint/render_cache.h"
#include "fingerprint/vector.h"
#include "platform/population.h"

namespace wafp::fingerprint {

struct CollectorStats {
  std::size_t stable_draws = 0;
  std::size_t jitter_draws = 0;
  std::size_t chaos_draws = 0;
};

class FingerprintCollector {
 public:
  explicit FingerprintCollector(RenderCache& cache) : cache_(cache) {}

  /// Deterministically draw the jitter state for (user, vector, iteration):
  /// an event occurs with probability min(0.93, flakiness * susceptibility);
  /// it is a recurring platform jitter state with probability jitter_share,
  /// otherwise a one-off chaotic glitch.
  [[nodiscard]] webaudio::RenderJitter draw_jitter(
      const platform::StudyUser& user, const AudioFingerprintVector& vector,
      std::uint32_t iteration);

  /// Fingerprint for one (user, vector, iteration). Audio vectors go
  /// through the render cache; for chaotic draws the digest is derived from
  /// the stable render plus the glitch entropy — equivalent in equality
  /// structure to the engine's chaos path (any ULP glitch yields a distinct
  /// digest), which collect_rendered() exercises for real.
  [[nodiscard]] util::Digest collect(const platform::StudyUser& user,
                                     VectorId id, std::uint32_t iteration);

  /// Ground-truth slow path: renders through the engine even for chaotic
  /// draws (used by tests and the quickstart example).
  [[nodiscard]] util::Digest collect_rendered(const platform::StudyUser& user,
                                              VectorId id,
                                              std::uint32_t iteration);

  [[nodiscard]] const CollectorStats& stats() const { return stats_; }
  [[nodiscard]] RenderCache& cache() { return cache_; }

 private:
  RenderCache& cache_;
  CollectorStats stats_;
};

}  // namespace wafp::fingerprint
