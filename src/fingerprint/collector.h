// FingerprintCollector: plays the role of the study's fingerprinting web
// page for one participant — it produces the digest a given (user, vector,
// iteration) triple would have submitted, applying the per-user fickleness
// model (paper §3.1) to decide each iteration's render-jitter state.
#pragma once

#include <cstdint>

#include "fingerprint/render_cache.h"
#include "fingerprint/vector.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "platform/population.h"

namespace wafp::fingerprint {

/// Snapshot of the collector's draw tallies. Returned by value from
/// FingerprintCollector::stats(); the live counters behind it are sharded
/// registry instruments, so reading a snapshot is safe while parallel_for
/// workers are still collecting. Counts are cumulative per metrics
/// registry: collectors sharing a registry (the default — the process
/// global) share tallies, which is what the study harness wants when it
/// fans one logical collection out across worker chunks.
struct CollectorStats {
  std::size_t stable_draws = 0;
  std::size_t jitter_draws = 0;
  std::size_t chaos_draws = 0;
};

/// How to build a FingerprintCollector. Instrumentation is injected here
/// rather than reached for globally, so tests can pin a private registry
/// and a manual clock (see obs::ManualClock) while production code leaves
/// both defaulted.
struct CollectorOptions {
  /// Required: the shared render memo (concurrency-safe; see render_cache.h).
  RenderCache* cache = nullptr;
  /// Metrics sink for draw counters and collect-latency histograms.
  /// nullptr = obs::MetricsRegistry::global().
  obs::MetricsRegistry* metrics = nullptr;
  /// Timestamp source for the collect-latency histogram; unset = the
  /// registry's clock (which tests can also override via
  /// MetricsRegistry::set_clock). Mirrors ServiceConfig::sleeper.
  obs::ClockFn clock;
};

class FingerprintCollector {
 public:
  explicit FingerprintCollector(const CollectorOptions& options);

  /// Deprecated: legacy constructor kept for source compatibility; wraps
  /// CollectorOptions{&cache} (global registry, registry clock). Prefer the
  /// options form; will be removed next release.
  explicit FingerprintCollector(RenderCache& cache);

  /// Deterministically draw the jitter state for (user, vector, iteration):
  /// an event occurs with probability min(0.93, flakiness * susceptibility);
  /// it is a recurring platform jitter state with probability jitter_share,
  /// otherwise a one-off chaotic glitch.
  [[nodiscard]] webaudio::RenderJitter draw_jitter(
      const platform::StudyUser& user, const AudioFingerprintVector& vector,
      std::uint32_t iteration);

  /// Fingerprint for one (user, vector, iteration). Audio vectors go
  /// through the render cache; for chaotic draws the digest is derived from
  /// the stable render plus the glitch entropy — equivalent in equality
  /// structure to the engine's chaos path (any ULP glitch yields a distinct
  /// digest), which collect_rendered() exercises for real.
  [[nodiscard]] util::Digest collect(const platform::StudyUser& user,
                                     VectorId id, std::uint32_t iteration);

  /// Ground-truth slow path: renders through the engine even for chaotic
  /// draws (used by tests and the quickstart example).
  [[nodiscard]] util::Digest collect_rendered(const platform::StudyUser& user,
                                              VectorId id,
                                              std::uint32_t iteration);

  /// Snapshot of the draw tallies (see CollectorStats for scope caveats).
  [[nodiscard]] CollectorStats stats() const;
  [[nodiscard]] RenderCache& cache() { return cache_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  [[nodiscard]] std::uint64_t now_ns() const {
    return clock_ ? clock_() : metrics_.now_ns();
  }

  RenderCache& cache_;
  obs::MetricsRegistry& metrics_;
  obs::ClockFn clock_;
  /// Registry instruments are heap-stable, so references resolved once at
  /// construction stay valid and keep collect() off the registry maps.
  obs::Counter& stable_counter_;
  obs::Counter& jitter_counter_;
  obs::Counter& chaos_counter_;
  obs::Histogram& collect_ns_;
};

}  // namespace wafp::fingerprint
