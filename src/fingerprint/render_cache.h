// RenderCache: memoizes audio fingerprint digests per (audio stack, vector,
// jitter state).
//
// Correctness rests on a property tests assert directly: a rendered digest
// is a pure function of the profile's AudioStack and the RenderJitter —
// nothing else in the profile can reach the audio engine. Two users on the
// same stack therefore share digests, which is both the paper's collision
// phenomenon (Fig. 4: users in one cluster) and what makes a 2093-user x 30
// iteration x 7 vector study tractable (a few hundred renders instead of
// 440k).
//
// Concurrency: the cache is striped into kShards mutex-guarded shards
// selected by the key hash, so parallel collection threads rarely contend
// on the map itself. Renders happen outside the shard lock under a
// per-entry std::call_once, so when two threads race on one cold key,
// exactly one renders and the other waits for that result — concurrent
// collection performs the same number of renders as serial collection.
// Returned references stay valid for the cache's lifetime: entries are
// heap-allocated and never erased.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "fingerprint/vector.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace wafp::fingerprint {

/// The render-equivalence class of one digest: the full AudioStack (exact
/// equality — a hash collision can never alias two stacks) plus its
/// precomputed class hash so probing re-hashes nothing, the vector id, and
/// the chaos-free jitter state. Shared by RenderCache's shards,
/// BatchRenderer's pending set, and serve::RenderService's coalescing map,
/// so "same class" means exactly the same thing at every dedup layer.
struct RenderClassKey {
  platform::AudioStack stack;
  std::uint64_t stack_hash = 0;
  std::uint32_t vector = 0;
  std::uint32_t jitter = 0;

  bool operator==(const RenderClassKey& o) const {
    return stack_hash == o.stack_hash && vector == o.vector &&
           jitter == o.jitter && stack == o.stack;
  }
};

struct RenderClassKeyHash {
  std::size_t operator()(const RenderClassKey& k) const noexcept {
    std::uint64_t h = k.stack_hash;
    h ^= (static_cast<std::uint64_t>(k.vector) << 32) | k.jitter;
    h *= 0x9E3779B97F4A7C15ULL;  // Fibonacci mix so shard index uses
    return static_cast<std::size_t>(h ^ (h >> 29));  // well-stirred bits
  }
};

/// The class key of `vector` rendered on `profile`'s stack with
/// `jitter_state` (chaos-free). Only profile.audio reaches the key — the
/// digest is a pure function of (AudioStack, vector, jitter), nothing else.
[[nodiscard]] RenderClassKey make_render_class_key(
    const AudioFingerprintVector& vector,
    const platform::PlatformProfile& profile, std::uint32_t jitter_state);

class RenderCache {
 public:
  static constexpr std::size_t kShards = 16;

  /// `metrics` is the sink for cache hit/miss/dedup-wait counters and the
  /// per-vector render-time histograms; nullptr means
  /// obs::MetricsRegistry::global(). Purely observational.
  explicit RenderCache(obs::MetricsRegistry* metrics = nullptr);

  /// Digest of `vector` on `profile`'s stack with the given jitter state
  /// (chaos-free); renders on first use. Safe to call concurrently.
  /// Steady-state contract: once a (stack, vector, jitter) class has been
  /// rendered, get() is a shard-map hit — no allocation, just the shard
  /// lock and counter bumps. wafp_lint's nonallocating check walks this
  /// path from the serve drain; the cold-key miss branch is the audited
  /// exception (see render_cold).
  const util::Digest& get(const AudioFingerprintVector& vector,
                          const platform::PlatformProfile& profile,
                          std::uint32_t jitter_state);

  /// Distinct (stack, vector, jitter) classes seen so far.
  [[nodiscard]] std::size_t entries() const;
  /// Lookups that found an existing entry (possibly waiting on its
  /// in-flight render).
  [[nodiscard]] std::size_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  /// Lookups that created the entry and rendered it; always == entries().
  [[nodiscard]] std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  using Key = RenderClassKey;
  using KeyHash = RenderClassKeyHash;
  struct Entry;

  /// Cold-key path, run under the entry's once_flag: the render itself
  /// plus first-touch creation of the per-vector latency histogram. Kept
  /// out of the nonallocating contract — steady state never reaches it
  /// (proven by the counter audits in the serve steady-state test).
  void render_cold(Entry& entry, const AudioFingerprintVector& vector,
                   const platform::PlatformProfile& profile,
                   std::uint32_t jitter_state);

  /// Heap-allocated so references survive rehashing and the once_flag has a
  /// stable address for waiters.
  struct Entry {
    std::once_flag once;
    /// Set (release) after `digest` is published; a hit that observes
    /// !ready is about to block on an in-flight render (a dedup wait).
    std::atomic<bool> ready{false};
    util::Digest digest;
  };
  struct Shard {
    mutable util::Mutex mu;
    /// Entries are pointees, not values: the map (bucket array, rehashing)
    /// is guarded, while each Entry's digest is published by its once_flag.
    std::unordered_map<Key, std::unique_ptr<Entry>, KeyHash> map
        WAFP_GUARDED_BY(mu);
  };

  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};

  /// Registry-backed mirrors of the per-instance tallies above (the
  /// per-instance atomics stay authoritative for `hits()`/`misses()`; the
  /// registry aggregates across every cache in the process). Counter
  /// references are resolved once at construction — instruments are
  /// heap-stable — so `get()` never touches the registry maps.
  obs::MetricsRegistry& metrics_;
  obs::Counter& hit_counter_;
  obs::Counter& miss_counter_;
  obs::Counter& dedup_wait_counter_;
};

}  // namespace wafp::fingerprint
