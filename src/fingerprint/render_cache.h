// RenderCache: memoizes audio fingerprint digests per (audio stack, vector,
// jitter state).
//
// Correctness rests on a property tests assert directly: a rendered digest
// is a pure function of the profile's AudioStack and the RenderJitter —
// nothing else in the profile can reach the audio engine. Two users on the
// same stack therefore share digests, which is both the paper's collision
// phenomenon (Fig. 4: users in one cluster) and what makes a 2093-user x 30
// iteration x 7 vector study tractable (a few hundred renders instead of
// 440k).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "fingerprint/vector.h"

namespace wafp::fingerprint {

class RenderCache {
 public:
  /// Digest of `vector` on `profile`'s stack with the given jitter state
  /// (chaos-free); renders on first use.
  const util::Digest& get(const AudioFingerprintVector& vector,
                          const platform::PlatformProfile& profile,
                          std::uint32_t jitter_state);

  [[nodiscard]] std::size_t entries() const { return cache_.size(); }
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }

 private:
  std::unordered_map<std::string, util::Digest> cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace wafp::fingerprint
