// BatchRenderer: archetype-grouped prewarm of the render cache.
//
// A population collect needs one render per distinct (audio stack, vector,
// jitter state) class, but the natural user-major iteration order discovers
// those classes scattered: cold renders interleave with hits, and parallel
// workers pile onto the same cold keys (dedup waits). The batch path
// inverts the order — callers enqueue every (vector, profile, jitter)
// request up front, the renderer deduplicates them into classes, sorts the
// classes by stack archetype, and renders each exactly once through the
// shared RenderCache. Grouping by archetype keeps one platform's engine
// parts (math library, FFT twiddles, wavetable cache — see
// PlatformProfile::make_engine_config) hot across consecutive renders, and
// gives parallel_for contiguous, balanced work. After render_all() the
// user-major pass is pure cache hits.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fingerprint/render_cache.h"
#include "util/thread_pool.h"

namespace wafp::fingerprint {

struct BatchRenderStats {
  std::size_t requests = 0;    // request() calls seen
  std::size_t classes = 0;     // distinct render classes enqueued
  std::size_t archetypes = 0;  // distinct stack archetypes among them
};

/// Dedup is keyed by the full RenderClassKey — exact stack equality, not a
/// 64-bit mix — so two distinct classes whose hashes collide still both
/// render (they merely share a bucket). `ClassHash` is a template parameter
/// only so a regression test can force every class onto one hash value and
/// prove that property; production code uses the BatchRenderer alias below.
template <typename ClassHash = RenderClassKeyHash>
class BasicBatchRenderer {
 public:
  explicit BasicBatchRenderer(RenderCache& cache) : cache_(cache) {}

  /// Record that the digest of `vector` on `profile`'s stack with
  /// `jitter_state` will be needed. Duplicate classes collapse to one.
  ///
  /// Lifetime: the renderer stores pointers, not copies — `vector` and
  /// `profile` must stay alive and unmoved until the render_all() that
  /// drains this request. Vectors from audio_vector()/VectorRegistry are
  /// stateless process-lifetime singletons, so only `profile` needs care.
  void request(const AudioFingerprintVector& vector,
               const platform::PlatformProfile& profile,
               std::uint32_t jitter_state) {
    ++requests_;
    pending_.try_emplace(make_render_class_key(vector, profile, jitter_state),
                         Request{&vector, &profile});
  }

  /// Render every pending class through the cache, grouped by stack
  /// archetype. `threads`: 1 = serial, 0 = util::default_thread_count().
  /// Safe to call repeatedly; each call drains the pending set.
  BatchRenderStats render_all(std::size_t threads = 1) {
    struct PendingClass {
      RenderClassKey key;
      Request req;
    };
    std::vector<PendingClass> classes;
    classes.reserve(pending_.size());
    for (const auto& [key, req] : pending_) {
      classes.push_back(PendingClass{key, req});
    }
    pending_.clear();

    // Archetype-major order: consecutive renders share engine parts, and
    // the contiguous chunks parallel_for hands out stay within few
    // archetypes.
    std::sort(classes.begin(), classes.end(),
              [](const PendingClass& a, const PendingClass& b) {
                if (a.key.stack_hash != b.key.stack_hash) {
                  return a.key.stack_hash < b.key.stack_hash;
                }
                if (a.key.vector != b.key.vector) {
                  return a.key.vector < b.key.vector;
                }
                return a.key.jitter < b.key.jitter;
              });

    BatchRenderStats stats;
    stats.requests = requests_;
    stats.classes = classes.size();
    for (std::size_t i = 0; i < classes.size(); ++i) {
      if (i == 0 ||
          classes[i].key.stack_hash != classes[i - 1].key.stack_hash) {
        ++stats.archetypes;
      }
    }
    requests_ = 0;

    auto render_range = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const PendingClass& pc = classes[i];
        (void)cache_.get(*pc.req.vector, *pc.req.profile, pc.key.jitter);
      }
    };
    if (threads == 1 || classes.empty()) {
      render_range(0, classes.size());
    } else {
      util::ThreadPool pool(threads);
      pool.parallel_for(classes.size(), render_range);
    }
    return stats;
  }

 private:
  struct Request {
    const AudioFingerprintVector* vector;
    const platform::PlatformProfile* profile;
  };

  RenderCache& cache_;
  std::unordered_map<RenderClassKey, Request, ClassHash> pending_;
  std::size_t requests_ = 0;
};

using BatchRenderer = BasicBatchRenderer<>;

extern template class BasicBatchRenderer<RenderClassKeyHash>;

}  // namespace wafp::fingerprint
