// BatchRenderer: archetype-grouped prewarm of the render cache.
//
// A population collect needs one render per distinct (audio stack, vector,
// jitter state) class, but the natural user-major iteration order discovers
// those classes scattered: cold renders interleave with hits, and parallel
// workers pile onto the same cold keys (dedup waits). The batch path
// inverts the order — callers enqueue every (vector, profile, jitter)
// request up front, the renderer deduplicates them into classes, sorts the
// classes by stack archetype, and renders each exactly once through the
// shared RenderCache. Grouping by archetype keeps one platform's engine
// parts (math library, FFT twiddles, wavetable cache — see
// PlatformProfile::make_engine_config) hot across consecutive renders, and
// gives parallel_for contiguous, balanced work. After render_all() the
// user-major pass is pure cache hits.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fingerprint/render_cache.h"

namespace wafp::fingerprint {

struct BatchRenderStats {
  std::size_t requests = 0;    // request() calls seen
  std::size_t classes = 0;     // distinct render classes enqueued
  std::size_t archetypes = 0;  // distinct stack archetypes among them
};

class BatchRenderer {
 public:
  explicit BatchRenderer(RenderCache& cache) : cache_(cache) {}

  /// Record that the digest of `vector` on `profile`'s stack with
  /// `jitter_state` will be needed. Duplicate classes collapse to one.
  void request(const AudioFingerprintVector& vector,
               const platform::PlatformProfile& profile,
               std::uint32_t jitter_state);

  /// Render every pending class through the cache, grouped by stack
  /// archetype. `threads`: 1 = serial, 0 = util::default_thread_count().
  /// Safe to call repeatedly; each call drains the pending set.
  BatchRenderStats render_all(std::size_t threads = 1);

 private:
  struct Request {
    const AudioFingerprintVector* vector;
    const platform::PlatformProfile* profile;
    std::uint32_t jitter;
    std::uint64_t stack_hash;
  };

  RenderCache& cache_;
  /// Dedup is keyed by (class_hash, vector, jitter) mixed into 64 bits. A
  /// hash collision merely drops a class from the prewarm — the cache
  /// renders it lazily on first real lookup — so correctness never rests
  /// on hash uniqueness.
  std::unordered_map<std::uint64_t, Request> pending_;
  std::size_t requests_ = 0;
};

}  // namespace wafp::fingerprint
