#include "fingerprint/collector.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace wafp::fingerprint {
namespace {

/// Hard cap on the per-iteration event probability: even the flakiest
/// browsers in the study repeated some fingerprints (Table 1's maximum is
/// 26 of 30, never 30).
constexpr double kMaxEventProbability = 0.88;

std::uint64_t draw_tag(VectorId id, std::uint32_t iteration) {
  return (static_cast<std::uint64_t>(id) << 32) | iteration;
}

/// Checked before any member binds to it: a null cache must fail loudly,
/// not dereference.
RenderCache& checked_cache(RenderCache* cache) {
  WAFP_CHECK(cache != nullptr) << "CollectorOptions::cache is required";
  return *cache;
}

CollectorOptions legacy_options(RenderCache& cache) {
  CollectorOptions options;
  options.cache = &cache;
  return options;
}

}  // namespace

FingerprintCollector::FingerprintCollector(RenderCache& cache)
    : FingerprintCollector(legacy_options(cache)) {}

FingerprintCollector::FingerprintCollector(const CollectorOptions& options)
    : cache_(checked_cache(options.cache)),
      metrics_(options.metrics ? *options.metrics
                               : obs::MetricsRegistry::global()),
      clock_(options.clock),
      stable_counter_(metrics_.counter(
          "wafp_collect_stable_draws_total",
          "Collector draws that resolved to the stable (no-jitter) state")),
      jitter_counter_(metrics_.counter(
          "wafp_collect_jitter_draws_total",
          "Collector draws that resolved to a recurring platform jitter "
          "state")),
      chaos_counter_(metrics_.counter(
          "wafp_collect_chaos_draws_total",
          "Collector draws that resolved to a one-off chaotic glitch")),
      collect_ns_(metrics_.histogram(
          "wafp_collect_ns", "FingerprintCollector::collect latency (ns)")) {}

webaudio::RenderJitter FingerprintCollector::draw_jitter(
    const platform::StudyUser& user, const AudioFingerprintVector& vector,
    std::uint32_t iteration) {
  webaudio::RenderJitter jitter;
  const platform::Fickleness& fickle = user.profile.fickle;
  const double p_event =
      std::min(kMaxEventProbability,
               fickle.flakiness * vector.jitter_susceptibility());
  if (p_event <= 0.0) return jitter;

  util::Rng rng(util::derive_seed(user.seed, draw_tag(vector.id(), iteration)));
  if (rng.next_double() >= p_event) return jitter;

  // Heavier render graphs glitch chaotically more often relative to their
  // recurring-state slips (the paper's CPU-load hypothesis), so the
  // effective jitter share shrinks with susceptibility.
  const double jitter_share = std::min(
      0.95, fickle.jitter_share / std::sqrt(vector.jitter_susceptibility()));
  if (rng.next_bool(jitter_share)) {
    // States are not equally likely: the first perturbation state is the
    // common one, higher states increasingly rare (quadratic bias). This
    // matches the paper's Fig. 3, where two-fingerprint users outnumber
    // three-fingerprint users.
    const double r = rng.next_double();
    jitter.state = 1 + static_cast<std::uint32_t>(
                           static_cast<double>(fickle.jitter_states) * r * r);
    if (jitter.state > fickle.jitter_states) {
      jitter.state = fickle.jitter_states;
    }
  } else {
    jitter.chaos_seed =
        util::derive_seed(user.seed, draw_tag(vector.id(), iteration) ^
                                         0xC4A05EEDULL);
  }
  return jitter;
}

util::Digest FingerprintCollector::collect(const platform::StudyUser& user,
                                           VectorId id,
                                           std::uint32_t iteration) {
  if (is_static_vector(id)) {
    return run_static_vector(id, user.profile);
  }
  const std::uint64_t t0 = now_ns();
  const AudioFingerprintVector& vector = audio_vector(id);
  const webaudio::RenderJitter jitter = draw_jitter(user, vector, iteration);

  if (jitter.chaos_seed != 0) {
    chaos_counter_.inc();
    // A chaotic glitch perturbs analyser bins by one ULP, so its digest is
    // distinct from every stable digest and from every other glitch; derive
    // it from the stable render plus the glitch entropy instead of paying
    // for a full render per glitch.
    const util::Digest& base = cache_.get(vector, user.profile, 0);
    util::Sha256 hasher;
    hasher.update(std::span<const std::uint8_t>(base.bytes));
    hasher.update("chaotic-glitch");
    hasher.update_u64(jitter.chaos_seed);
    util::Digest digest = hasher.finish();
    collect_ns_.observe(now_ns() - t0);
    return digest;
  }
  if (jitter.state != 0) {
    jitter_counter_.inc();
  } else {
    stable_counter_.inc();
  }
  const util::Digest& digest = cache_.get(vector, user.profile, jitter.state);
  collect_ns_.observe(now_ns() - t0);
  return digest;
}

util::Digest FingerprintCollector::collect_rendered(
    const platform::StudyUser& user, VectorId id, std::uint32_t iteration) {
  if (is_static_vector(id)) {
    return run_static_vector(id, user.profile);
  }
  const AudioFingerprintVector& vector = audio_vector(id);
  const webaudio::RenderJitter jitter = draw_jitter(user, vector, iteration);
  return vector.run(user.profile, jitter);
}

CollectorStats FingerprintCollector::stats() const {
  CollectorStats snapshot;
  snapshot.stable_draws = static_cast<std::size_t>(stable_counter_.value());
  snapshot.jitter_draws = static_cast<std::size_t>(jitter_counter_.value());
  snapshot.chaos_draws = static_cast<std::size_t>(chaos_counter_.value());
  return snapshot;
}

}  // namespace wafp::fingerprint
