#include "fingerprint/batch_renderer.h"

#include <algorithm>

#include "util/hash.h"
#include "util/thread_pool.h"

namespace wafp::fingerprint {

void BatchRenderer::request(const AudioFingerprintVector& vector,
                            const platform::PlatformProfile& profile,
                            std::uint32_t jitter_state) {
  ++requests_;
  const std::uint64_t stack_hash = profile.audio.class_hash();
  std::uint64_t key = util::fnv1a64_mix(stack_hash,
                                        static_cast<std::uint64_t>(vector.id()));
  key = util::fnv1a64_mix(key, jitter_state);
  pending_.try_emplace(key,
                       Request{&vector, &profile, jitter_state, stack_hash});
}

BatchRenderStats BatchRenderer::render_all(std::size_t threads) {
  std::vector<Request> classes;
  classes.reserve(pending_.size());
  for (const auto& [key, req] : pending_) classes.push_back(req);
  pending_.clear();

  // Archetype-major order: consecutive renders share engine parts, and the
  // contiguous chunks parallel_for hands out stay within few archetypes.
  std::sort(classes.begin(), classes.end(),
            [](const Request& a, const Request& b) {
              if (a.stack_hash != b.stack_hash) {
                return a.stack_hash < b.stack_hash;
              }
              if (a.vector->id() != b.vector->id()) {
                return a.vector->id() < b.vector->id();
              }
              return a.jitter < b.jitter;
            });

  BatchRenderStats stats;
  stats.requests = requests_;
  stats.classes = classes.size();
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (i == 0 || classes[i].stack_hash != classes[i - 1].stack_hash) {
      ++stats.archetypes;
    }
  }
  requests_ = 0;

  auto render_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const Request& req = classes[i];
      (void)cache_.get(*req.vector, *req.profile, req.jitter);
    }
  };
  if (threads == 1) {
    render_range(0, classes.size());
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(classes.size(), render_range);
  }
  return stats;
}

}  // namespace wafp::fingerprint
