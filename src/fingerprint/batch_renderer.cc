#include "fingerprint/batch_renderer.h"

namespace wafp::fingerprint {

// The production instantiation lives here so every translation unit that
// only uses the BatchRenderer alias links against one copy.
template class BasicBatchRenderer<RenderClassKeyHash>;

}  // namespace wafp::fingerprint
