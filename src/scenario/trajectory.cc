#include "scenario/trajectory.h"

#include <algorithm>
#include <memory>

#include "util/check.h"
#include "util/rng.h"

namespace wafp::scenario {

ScenarioPopulation::ScenarioPopulation(std::size_t num_users,
                                       std::uint64_t seed,
                                       const platform::CatalogTuning& tuning,
                                       DriftModel drift,
                                       double flakiness_override)
    : seed_(seed),
      drift_(drift),
      catalog_(std::make_unique<platform::DeviceCatalog>(tuning)),
      population_(std::make_unique<platform::Population>(*catalog_, num_users,
                                                         seed)) {
  if (flakiness_override >= 0.0) {
    // Population hands out const users; rebuild is unnecessary — the
    // override is applied on the copies user_at() returns, keyed here.
    override_flakiness_ = flakiness_override;
  }

  // The catalog ring: distinct enrolled stacks by ascending class_hash.
  // class_hash pairs with operator== in the render cache precisely because
  // it cannot alias distinct stacks in practice; sorting by it gives a
  // deterministic neighbor order that no enum-order accident can perturb.
  std::vector<platform::AudioStack> stacks;
  stacks.reserve(population_->size());
  for (const platform::StudyUser& user : population_->users()) {
    stacks.push_back(user.profile.audio);
  }
  std::sort(stacks.begin(), stacks.end(),
            [](const platform::AudioStack& a, const platform::AudioStack& b) {
              return a.class_hash() < b.class_hash();
            });
  for (const platform::AudioStack& s : stacks) {
    if (stack_ring_.empty() || !(stack_ring_.back() == s)) {
      stack_ring_.push_back(s);
    }
  }
  WAFP_CHECK(!stack_ring_.empty()) << "empty population";

  ring_index_.reserve(population_->size());
  for (const platform::StudyUser& user : population_->users()) {
    const std::uint64_t h = user.profile.audio.class_hash();
    const auto it = std::lower_bound(
        stack_ring_.begin(), stack_ring_.end(), h,
        [](const platform::AudioStack& s, std::uint64_t key) {
          return s.class_hash() < key;
        });
    WAFP_CHECK(it != stack_ring_.end() && *it == user.profile.audio)
        << "user stack missing from the catalog ring";
    ring_index_.push_back(
        static_cast<std::uint32_t>(it - stack_ring_.begin()));
  }
}

std::uint64_t ScenarioPopulation::advance(std::span<DriftState> states,
                                          std::uint32_t epoch) const {
  WAFP_CHECK(states.size() == population_->size())
      << "DriftState span does not cover the population";
  WAFP_CHECK(epoch >= 1) << "epoch 0 is enrollment; it never drifts";
  std::uint64_t events = 0;
  for (std::size_t u = 0; u < states.size(); ++u) {
    const auto user = static_cast<std::uint32_t>(u);
    DriftState& s = states[u];
    if (drift_event(drift_, user, epoch, DriftKind::kStackSwap)) {
      ++s.stack_steps;
      if (drift_.fresh_variants) {
        s.variant_salt =
            util::derive_seed(util::derive_seed(seed_, user), epoch);
      }
      ++events;
    }
    if (drift_event(drift_, user, epoch, DriftKind::kSimdTier)) {
      ++s.simd_steps;
      ++events;
    }
    if (drift_event(drift_, user, epoch, DriftKind::kJitterRegime)) {
      ++s.jitter_regime;
      ++events;
    }
  }
  return events;
}

DriftState ScenarioPopulation::state_at(std::size_t u,
                                        std::uint32_t epoch) const {
  DriftState state;
  const auto user = static_cast<std::uint32_t>(u);
  for (std::uint32_t e = 1; e <= epoch; ++e) {
    if (drift_event(drift_, user, e, DriftKind::kStackSwap)) {
      ++state.stack_steps;
      if (drift_.fresh_variants) {
        state.variant_salt =
            util::derive_seed(util::derive_seed(seed_, user), e);
      }
    }
    if (drift_event(drift_, user, e, DriftKind::kSimdTier)) {
      ++state.simd_steps;
    }
    if (drift_event(drift_, user, e, DriftKind::kJitterRegime)) {
      ++state.jitter_regime;
    }
  }
  return state;
}

platform::StudyUser ScenarioPopulation::user_at(
    std::size_t u, const DriftState& state) const {
  platform::StudyUser user = population_->user(u);
  if (override_flakiness_ >= 0.0) {
    user.profile.fickle.flakiness = override_flakiness_;
  }
  if (state.stack_steps > 0) {
    const std::size_t slot =
        (ring_index_[u] + state.stack_steps) % stack_ring_.size();
    user.profile.audio = stack_ring_[slot];
  }
  if (state.simd_steps > 0) {
    user.profile.simd_tier =
        static_cast<int>((static_cast<std::uint32_t>(user.profile.simd_tier) +
                          state.simd_steps) %
                         4);
  }
  if (state.jitter_regime > 0) {
    user.seed = util::derive_seed(user.seed, state.jitter_regime);
  }
  return user;
}

}  // namespace wafp::scenario
