// DriftModel: deterministic temporal drift for the longitudinal scenario
// suite (DESIGN.md §3k). Browsers upgrade, libm stacks swap, SIMD tiers
// change when users replace hardware, and jitter regimes shift with OS
// scheduler updates — the scenario models each as a per-(user, epoch)
// event drawn from an independent rate.
//
// Coupled-lattice determinism contract: the decision for (user, epoch,
// kind) compares a uniform u = drift_uniform(seed, user, epoch, kind) —
// a pure function of those four values, *independent of the rate* —
// against the kind's rate. Raising a rate therefore only ever adds events
// to the set drawn at the lower rate (u < r1 implies u < r2 for r1 <= r2),
// which is what makes FNMR structurally monotone in the drift rate and
// lets the metamorphic suite assert it without statistical slop.
#pragma once

#include <cstdint>

namespace wafp::scenario {

/// The drift event kinds, in replay order within an epoch.
enum class DriftKind : std::uint32_t {
  /// Browser/libm upgrade: the user's audio stack moves to the next
  /// neighbor in the scenario's catalog ring (see ScenarioPopulation).
  kStackSwap = 0,
  /// Hardware replacement: simd_tier steps to the next tier (mod 4).
  kSimdTier = 1,
  /// OS/scheduler update: the per-user jitter stream is re-keyed.
  kJitterRegime = 2,
};

inline constexpr std::uint32_t kDriftKinds = 3;

struct DriftModel {
  /// Per-epoch per-user event probabilities, each in [0, 1].
  double stack_swap_rate = 0.0;
  double simd_tier_rate = 0.0;
  double jitter_regime_rate = 0.0;

  /// Synthetic-source only: a stack swap lands on a never-seen variant
  /// (fresh per-(user, epoch) salt) instead of a catalog neighbor. This is
  /// the worst case for verification — every swap guarantees unseen
  /// digests — and the configuration under which FNMR monotonicity is
  /// exact rather than typical.
  bool fresh_variants = false;

  /// Seed of the drift lattice; independent of the population seed so the
  /// same cohort can be replayed under different drift histories.
  std::uint64_t seed = 0x57AFD21F;

  [[nodiscard]] double rate(DriftKind kind) const;
};

/// The lattice uniform for (user, epoch, kind) in [0, 1); pure in its
/// arguments and independent of every rate.
[[nodiscard]] double drift_uniform(const DriftModel& model, std::uint32_t user,
                                   std::uint32_t epoch, DriftKind kind);

/// Event decision: drift_uniform < rate(kind). Epoch 0 is enrollment and
/// never drifts (callers only ask for epochs >= 1).
[[nodiscard]] bool drift_event(const DriftModel& model, std::uint32_t user,
                               std::uint32_t epoch, DriftKind kind);

}  // namespace wafp::scenario
