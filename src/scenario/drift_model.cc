#include "scenario/drift_model.h"

#include <stdexcept>

#include "util/rng.h"

namespace wafp::scenario {

double DriftModel::rate(DriftKind kind) const {
  switch (kind) {
    case DriftKind::kStackSwap: return stack_swap_rate;
    case DriftKind::kSimdTier: return simd_tier_rate;
    case DriftKind::kJitterRegime: return jitter_regime_rate;
  }
  throw std::invalid_argument("DriftModel::rate: unknown drift kind");
}

double drift_uniform(const DriftModel& model, std::uint32_t user,
                     std::uint32_t epoch, DriftKind kind) {
  std::uint64_t h = util::derive_seed(model.seed, user);
  h = util::derive_seed(h, epoch);
  h = util::derive_seed(h, static_cast<std::uint64_t>(kind));
  // Top 53 bits to a double in [0, 1) — the standard xoshiro conversion.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool drift_event(const DriftModel& model, std::uint32_t user,
                 std::uint32_t epoch, DriftKind kind) {
  return drift_uniform(model, user, epoch, kind) < model.rate(kind);
}

}  // namespace wafp::scenario
