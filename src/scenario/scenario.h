// ScenarioRunner: streams a drift scenario through a CollationEngine and
// scores verification per epoch (DESIGN.md §3k).
//
// Verification spec (normative — the brute-force RefVerifier in
// tests/scenario re-implements exactly this, from this text, sharing no
// code with the runner's engine path):
//
//   * Epoch 0 is enrollment: ingest only, no probes.
//   * For every epoch e >= 1, BEFORE ingesting epoch e:
//       - For each user u in ascending logical order, the probe is u's
//         epoch-e digests in vector order. Each digest is matched
//         INDIVIDUALLY (single-digest match = the cluster containing that
//         digest, or none — no tie is possible); the winner is the cluster
//         with the most per-digest votes, ties broken in favor of the
//         cluster whose first vote came earliest in probe order.
//       - Genuine trial: accept iff winner == u's own enrolled cluster.
//         No winner, or a different cluster, is a false non-match.
//       - Imposter trials: every probe scores (enrolled_users - 1) trials;
//         a winner cluster holding m enrolled users scores
//         m - (u in winner ? 1 : 0) false matches.
//   * AFTER ingesting epoch e (and at enrollment), per-user cluster labels
//     are read back, densified in first-seen order, and scored:
//     anonymity-set stats (analysis::anonymity_from_labels) and pair-count
//     churn against the previous epoch's labels (analysis::pair_churn).
//
// All metrics depend only on the equality structure of cluster ids, never
// their values, so single-loop and sharded engines — whose internal ids
// differ — must produce identical VerificationEpoch records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/anonymity.h"
#include "analysis/verification.h"
#include "obs/metrics.h"
#include "scenario/observe.h"
#include "scenario/trajectory.h"
#include "service/collation_service.h"

namespace wafp::scenario {

struct ScenarioConfig {
  std::size_t num_users = 512;
  /// Total epochs including enrollment (epoch 0); >= 1.
  std::uint32_t epochs = 12;
  std::uint64_t seed = 2021;
  platform::CatalogTuning tuning;
  DriftModel drift;
  ObservationSource source = ObservationSource::kSynthetic;
  /// Empty = default_scenario_vectors() (7 audio + 2 compute).
  std::vector<fingerprint::VectorId> vectors;

  /// Engine selection, as service::make_engine: 0 = single loop, >= 1 =
  /// that many shards. config.service.state_dir empty = in-memory.
  std::size_t shards = 0;
  service::ServiceConfig service;
  /// Crash + recover the engine after every k ingested epochs (0 = never);
  /// requires a non-empty state_dir.
  std::uint32_t kill_every = 0;

  /// Digest-generation parallelism (0 = default_thread_count()); any value
  /// produces bit-identical results.
  std::size_t threads = 1;

  /// Submission timestamps: epoch e stamps base + e * stride. Metrics are
  /// invariant under any relabeling (stride >= 1) — asserted by the
  /// metamorphic suite.
  std::uint64_t timestamp_base = 1;
  std::uint64_t timestamp_stride = 1;

  /// Non-zero: logical users are mapped to engine ids through a seeded
  /// permutation. Metrics are permutation-invariant (metamorphic suite).
  std::uint64_t user_id_salt = 0;

  /// >= 0 pins every user's fickleness (see ScenarioPopulation).
  double flakiness_override = -1.0;

  /// Metrics sink for the wafp_scenario_* instruments; nullptr = global.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One epoch's scorecard. Epoch 0 carries enrollment state only (zero
/// verification counts, zero churn).
struct VerificationEpoch {
  std::uint32_t epoch = 0;
  analysis::VerificationCounts verification;
  analysis::PairChurn churn;
  analysis::AnonymityStats anonymity;
  std::size_t cluster_count = 0;  // clusters holding >= 1 user
  std::uint64_t drift_events = 0;

  friend bool operator==(const VerificationEpoch&,
                         const VerificationEpoch&) = default;
};

struct ScenarioResult {
  std::vector<VerificationEpoch> epochs;
  std::uint64_t component_checksum = 0;
  std::uint64_t drift_events = 0;
  service::ServiceStats stats;

  /// Aggregate counts over all probe epochs.
  [[nodiscard]] analysis::VerificationCounts totals() const;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(const ScenarioConfig& config);

  /// Run the whole scenario. Deterministic in the config across thread
  /// counts and engine shapes (see class comment).
  [[nodiscard]] ScenarioResult run();

  [[nodiscard]] const ScenarioPopulation& population() const {
    return *population_;
  }

 private:
  ScenarioConfig config_;
  std::unique_ptr<ScenarioPopulation> population_;
  std::vector<std::uint32_t> engine_ids_;  // logical user -> engine id
};

}  // namespace wafp::scenario
