// ScenarioPopulation: a study population plus per-user drift trajectories
// over discrete epochs (DESIGN.md §3k).
//
// Epoch 0 is enrollment: every user carries the exact profile the catalog
// sampled (bit-identical to what study::Dataset::collect sees for the same
// (num_users, seed, tuning) — the zero-drift tie-back depends on it).
// Epochs >= 1 replay drift events from the DriftModel in (epoch, user,
// kind) order; the cumulative effect is a small DriftState per user from
// which the evolved StudyUser is reconstructed:
//
//   * kStackSwap moves the user's audio stack forward along the "catalog
//     ring": the distinct audio stacks present in the enrolled population,
//     sorted by class_hash (a deterministic, population-derived neighbor
//     structure). With DriftModel::fresh_variants, the swap instead keys a
//     fresh variant salt = derive(derive(population seed, user), epoch) —
//     synthetic digests then land on never-seen classes.
//   * kSimdTier steps profile.simd_tier to (tier + steps) mod 4.
//   * kJitterRegime re-keys the user's per-iteration jitter stream: the
//     effective collection seed is the base seed for regime 0 (bit-compat
//     with the static study) and derive_seed(base, regime) afterwards.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "platform/catalog.h"
#include "platform/population.h"
#include "scenario/drift_model.h"

namespace wafp::scenario {

/// Cumulative drift effects for one user (all zero at enrollment).
struct DriftState {
  std::uint32_t stack_steps = 0;
  std::uint32_t simd_steps = 0;
  std::uint32_t jitter_regime = 0;
  /// fresh_variants only: salt of the most recent swap (0 = none yet).
  std::uint64_t variant_salt = 0;

  friend bool operator==(const DriftState&, const DriftState&) = default;
};

class ScenarioPopulation {
 public:
  /// Sample the cohort exactly as the static study would; `flakiness
  /// override` >= 0 pins every user's fickleness (the FNMR-monotonicity
  /// test uses 0 to remove jitter noise from the comparison).
  ScenarioPopulation(std::size_t num_users, std::uint64_t seed,
                     const platform::CatalogTuning& tuning, DriftModel drift,
                     double flakiness_override = -1.0);

  [[nodiscard]] std::size_t size() const { return population_->size(); }
  [[nodiscard]] const DriftModel& drift() const { return drift_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const platform::StudyUser& base_user(std::size_t u) const {
    return population_->user(u);
  }
  /// The catalog ring (distinct enrolled stacks by ascending class_hash).
  [[nodiscard]] std::span<const platform::AudioStack> stack_ring() const {
    return stack_ring_;
  }

  /// Advance every user's DriftState by epoch `epoch`'s events (epoch >= 1;
  /// `states` must hold size() entries, previously advanced to epoch - 1).
  /// Returns the number of drift events applied.
  std::uint64_t advance(std::span<DriftState> states,
                        std::uint32_t epoch) const;

  /// DriftState of one user at `epoch` (replays 1..epoch; O(epoch)).
  [[nodiscard]] DriftState state_at(std::size_t u, std::uint32_t epoch) const;

  /// The evolved StudyUser: drifted profile + regime-keyed seed. With a
  /// zero DriftState this is bit-identical to base_user(u).
  [[nodiscard]] platform::StudyUser user_at(std::size_t u,
                                            const DriftState& state) const;

 private:
  std::uint64_t seed_ = 0;
  DriftModel drift_;
  double override_flakiness_ = -1.0;
  std::unique_ptr<platform::DeviceCatalog> catalog_;
  std::unique_ptr<platform::Population> population_;
  std::vector<platform::AudioStack> stack_ring_;
  std::vector<std::uint32_t> ring_index_;  // per user: base stack's slot
};

}  // namespace wafp::scenario
