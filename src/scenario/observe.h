// ScenarioStream: the deterministic observation stream of a drift scenario
// — for each epoch, every (user, vector) fingerprint digest the cohort
// would submit, in user-major vector-minor order (DESIGN.md §3k).
//
// Two digest sources share the stream interface:
//
//   * kRendered routes audio vectors through the real
//     FingerprintCollector (shared RenderCache, iteration = epoch) and
//     compute vectors through run_compute_vector. With zero drift this
//     reproduces study::Dataset::collect digests bit-for-bit — the §6
//     tie-back the metamorphic suite asserts.
//   * kSynthetic derives digests by hashing the drift-visible class
//     material directly (documented below), skipping DSP entirely so the
//     soak bench can stream 100k+ users.
//
// Synthetic digest spec (normative; the scenario oracle replays it):
//   audio vector v of a user whose evolved stack has class hash H, salt S
//   (DriftState::variant_salt), jitter state j:
//       SHA-256("wafp-scenario-efp", u64(v), u64(H ^ S), u64(j))
//   where j is drawn per (effective seed, epoch, v): an event occurs with
//   probability min(0.9, flakiness * susceptibility(v)); a recurring event
//   picks j in [1, jitter_states], otherwise the digest is chaotic — the
//   draw's unique u64 is appended, making it distinct from every other
//   digest. No event leaves j = 0.
//   WASM Float:  SHA-256(tag, u64(v), u64(H ^ S))          (no jitter)
//   WASM SIMD:   SHA-256(tag, u64(v), u64(H ^ S), u64(simd_tier))
#pragma once

#include <cstdint>
#include <vector>

#include "fingerprint/collector.h"
#include "fingerprint/render_cache.h"
#include "fingerprint/vector.h"
#include "scenario/trajectory.h"
#include "util/hash.h"

namespace wafp::scenario {

enum class ObservationSource { kSynthetic, kRendered };

struct Observation {
  std::uint32_t user = 0;  // logical (pre-permutation) user index
  fingerprint::VectorId vector = fingerprint::VectorId::kDc;
  util::Digest digest;
};

class ScenarioStream {
 public:
  /// `vectors` must name audio or compute vectors only; `threads`
  /// parallelizes digest generation (0 = default_thread_count(), any value
  /// yields a bit-identical stream).
  ScenarioStream(const ScenarioPopulation& population,
                 ObservationSource source,
                 std::vector<fingerprint::VectorId> vectors,
                 std::size_t threads);

  /// The observations of epoch `e`. Must be called with e = 0, 1, 2, ...
  /// in order (the stream advances its drift states incrementally).
  [[nodiscard]] std::vector<Observation> epoch(std::uint32_t e);

  /// Drift events applied so far (cumulative over generated epochs).
  [[nodiscard]] std::uint64_t drift_events() const { return drift_events_; }

  /// Current per-user drift states (valid for the last generated epoch).
  [[nodiscard]] std::span<const DriftState> states() const { return states_; }

  [[nodiscard]] std::span<const fingerprint::VectorId> vectors() const {
    return vectors_;
  }

 private:
  [[nodiscard]] util::Digest synthetic_digest(
      const platform::StudyUser& user, const DriftState& state,
      fingerprint::VectorId id, std::uint32_t epoch) const;

  const ScenarioPopulation& population_;
  ObservationSource source_;
  std::vector<fingerprint::VectorId> vectors_;
  std::size_t threads_ = 1;
  std::uint32_t next_epoch_ = 0;
  std::uint64_t drift_events_ = 0;
  std::vector<DriftState> states_;
  // Rendered source only.
  std::unique_ptr<fingerprint::RenderCache> cache_;
  std::unique_ptr<fingerprint::FingerprintCollector> collector_;
};

/// The default scenario vector set: the paper's seven audio vectors plus
/// the two WebAssembly-style compute vectors.
[[nodiscard]] std::vector<fingerprint::VectorId> default_scenario_vectors();

}  // namespace wafp::scenario
