#include "scenario/scenario.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "service/sharded_collation_service.h"
#include "util/check.h"
#include "util/rng.h"

namespace wafp::scenario {
namespace {

/// Submit with the standard backpressure loop (kQueueFull = pump + retry).
void submit_pumping(service::CollationEngine& engine,
                    const service::RawSubmission& raw) {
  auto result = engine.submit(raw);
  while (result.reason == service::Reject::kQueueFull) {
    engine.pump();
    result = engine.submit(raw);
  }
  WAFP_CHECK(result.accepted())
      << "scenario submission rejected: "
      << service::to_string(result);
}

/// The documented per-digest plurality rule (scenario.h): most votes wins,
/// ties to the cluster whose first vote came earliest in probe order.
std::optional<std::size_t> plurality_winner(
    const std::vector<std::optional<std::size_t>>& votes) {
  std::vector<std::size_t> order;            // clusters by first vote
  std::unordered_map<std::size_t, std::size_t> counts;
  for (const auto& v : votes) {
    if (!v.has_value()) continue;
    auto [it, inserted] = counts.try_emplace(*v, 0);
    if (inserted) order.push_back(*v);
    ++it->second;
  }
  std::optional<std::size_t> winner;
  std::size_t best = 0;
  for (const std::size_t cluster : order) {
    if (counts[cluster] > best) {
      best = counts[cluster];
      winner = cluster;
    }
  }
  return winner;
}

}  // namespace

analysis::VerificationCounts ScenarioResult::totals() const {
  analysis::VerificationCounts sum;
  for (const VerificationEpoch& e : epochs) sum += e.verification;
  return sum;
}

ScenarioRunner::ScenarioRunner(const ScenarioConfig& config)
    : config_(config),
      population_(std::make_unique<ScenarioPopulation>(
          config.num_users, config.seed, config.tuning, config.drift,
          config.flakiness_override)) {
  WAFP_CHECK(config_.epochs >= 1) << "a scenario needs at least enrollment";
  WAFP_CHECK(config_.timestamp_stride >= 1)
      << "timestamp relabeling must stay strictly increasing across epochs";
  WAFP_CHECK(config_.kill_every == 0 || !config_.service.state_dir.empty())
      << "kill-every-k recovery needs a durable state_dir";

  // Logical -> engine user ids: identity by default, else the permutation
  // induced by sorting the users' derived keys (ties impossible: the key
  // includes the index).
  engine_ids_.resize(population_->size());
  std::iota(engine_ids_.begin(), engine_ids_.end(), 0U);
  if (config_.user_id_salt != 0) {
    std::vector<std::uint32_t> slots = engine_ids_;
    std::sort(slots.begin(), slots.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const std::uint64_t ka =
                    util::derive_seed(config_.user_id_salt, a);
                const std::uint64_t kb =
                    util::derive_seed(config_.user_id_salt, b);
                return ka != kb ? ka < kb : a < b;
              });
    for (std::size_t rank = 0; rank < slots.size(); ++rank) {
      engine_ids_[slots[rank]] = static_cast<std::uint32_t>(rank);
    }
  }
}

ScenarioResult ScenarioRunner::run() {
  obs::MetricsRegistry& metrics = config_.metrics != nullptr
                                      ? *config_.metrics
                                      : obs::MetricsRegistry::global();
  obs::Counter& epochs_total = metrics.counter(
      "wafp_scenario_epochs_total", "drift-scenario epochs processed");
  obs::Counter& probes_total = metrics.counter(
      "wafp_scenario_probes_total", "verification probes (genuine trials)");
  obs::Counter& false_matches_total =
      metrics.counter("wafp_scenario_false_matches_total",
                      "imposter collisions across all probes");
  obs::Counter& false_non_matches_total =
      metrics.counter("wafp_scenario_false_non_matches_total",
                      "genuine probes that missed their own cluster");
  obs::Counter& drift_events_total = metrics.counter(
      "wafp_scenario_drift_events_total", "drift events applied");
  obs::Histogram& epoch_ns = metrics.histogram(
      "wafp_scenario_epoch_ns", "wall time per scenario epoch (ns)");

  ScenarioStream stream(*population_, config_.source, config_.vectors,
                        config_.threads);
  std::unique_ptr<service::CollationEngine> engine =
      service::make_engine(config_.service, config_.shards);

  const std::size_t users = population_->size();
  ScenarioResult result;
  result.epochs.reserve(config_.epochs);
  std::vector<int> previous_labels;
  std::uint64_t previous_drift_events = 0;

  // Per-epoch label read-back: engine-internal cluster ids, densified in
  // ascending logical-user order. Everything downstream consumes only the
  // labels' equality structure.
  const auto read_labels = [&](std::vector<int>& labels) {
    labels.resize(users);
    std::unordered_map<std::size_t, int> dense;
    for (std::size_t u = 0; u < users; ++u) {
      const auto component = engine->user_component(engine_ids_[u]);
      WAFP_CHECK(component.has_value())
          << "enrolled user " << u << " missing from the collated state";
      const auto [it, inserted] =
          dense.try_emplace(*component, static_cast<int>(dense.size()));
      labels[u] = it->second;
    }
    return dense.size();
  };

  for (std::uint32_t e = 0; e < config_.epochs; ++e) {
    const std::uint64_t t0 = metrics.now_ns();
    const std::vector<Observation> observations = stream.epoch(e);
    const std::uint64_t timestamp =
        config_.timestamp_base + config_.timestamp_stride * e;

    VerificationEpoch epoch;
    epoch.epoch = e;

    if (e >= 1) {
      // Probe BEFORE ingest, against the state as of epoch e - 1. Build
      // the enrolled cluster census once (O(users)), then score each
      // user's plurality winner against it.
      std::vector<std::optional<std::size_t>> own(users);
      std::unordered_map<std::size_t, std::uint64_t> census;
      for (std::size_t u = 0; u < users; ++u) {
        own[u] = engine->user_component(engine_ids_[u]);
        WAFP_CHECK(own[u].has_value())
            << "enrolled user " << u << " missing from the collated state";
        ++census[*own[u]];
      }
      const std::size_t per_user = stream.vectors().size();
      std::vector<std::optional<std::size_t>> votes(per_user);
      for (std::size_t u = 0; u < users; ++u) {
        for (std::size_t v = 0; v < per_user; ++v) {
          const Observation& obs = observations[u * per_user + v];
          votes[v] = engine->match({&obs.digest, 1});
        }
        const std::optional<std::size_t> winner = plurality_winner(votes);
        ++epoch.verification.probes;
        epoch.verification.imposter_trials += users - 1;
        if (winner.has_value() && *winner == *own[u]) {
          ++epoch.verification.genuine_accepts;
        } else {
          ++epoch.verification.false_non_matches;
        }
        if (winner.has_value()) {
          const auto it = census.find(*winner);
          const std::uint64_t members =
              it == census.end() ? 0 : it->second;
          epoch.verification.false_matches +=
              members - (*winner == *own[u] ? 1 : 0);
        }
      }
    }

    // Ingest epoch e (user-major, vector-minor — the stream's order).
    for (const Observation& obs : observations) {
      service::RawSubmission raw;
      raw.user = engine_ids_[obs.user];
      raw.vector = static_cast<std::uint32_t>(obs.vector);
      raw.timestamp = timestamp;
      raw.efp_hex = obs.digest.hex();
      submit_pumping(*engine, raw);
    }
    engine->pump();

    // Post-ingest partition scoring.
    std::vector<int> labels;
    epoch.cluster_count = read_labels(labels);
    epoch.anonymity = analysis::anonymity_from_labels(labels);
    if (e >= 1) epoch.churn = analysis::pair_churn(previous_labels, labels);
    previous_labels = std::move(labels);

    epoch.drift_events = stream.drift_events() - previous_drift_events;
    previous_drift_events = stream.drift_events();

    epochs_total.inc();
    probes_total.inc(epoch.verification.probes);
    false_matches_total.inc(epoch.verification.false_matches);
    false_non_matches_total.inc(epoch.verification.false_non_matches);
    drift_events_total.inc(epoch.drift_events);
    epoch_ns.observe(metrics.now_ns() - t0);
    result.epochs.push_back(epoch);

    // Kill-every-k soak: checkpoint nothing, die, recover from WAL +
    // snapshots — every later probe and label read-back must be oblivious.
    if (config_.kill_every != 0 && (e + 1) % config_.kill_every == 0 &&
        e + 1 < config_.epochs) {
      engine->crash();
      engine.reset();
      engine = service::make_engine(config_.service, config_.shards);
    }
  }

  engine->drain_and_checkpoint();
  result.component_checksum = engine->component_checksum();
  result.drift_events = stream.drift_events();
  result.stats = engine->stats();
  return result;
}

}  // namespace wafp::scenario
