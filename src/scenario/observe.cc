#include "scenario/observe.h"

#include <algorithm>

#include "fingerprint/vector_registry.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wafp::scenario {
namespace {

/// Synthetic-source cap on the per-iteration jitter-event probability;
/// documented in observe.h (deliberately independent of the collector's
/// rendered-path cap — the two sources share structure, not bits).
constexpr double kMaxSyntheticEventProbability = 0.9;

}  // namespace

std::vector<fingerprint::VectorId> default_scenario_vectors() {
  const auto& registry = fingerprint::VectorRegistry::instance();
  std::vector<fingerprint::VectorId> ids;
  ids.insert(ids.end(), registry.audio_ids().begin(),
             registry.audio_ids().end());
  ids.insert(ids.end(), registry.compute_ids().begin(),
             registry.compute_ids().end());
  return ids;
}

ScenarioStream::ScenarioStream(const ScenarioPopulation& population,
                               ObservationSource source,
                               std::vector<fingerprint::VectorId> vectors,
                               std::size_t threads)
    : population_(population),
      source_(source),
      vectors_(std::move(vectors)),
      threads_(threads),
      states_(population.size()) {
  if (vectors_.empty()) vectors_ = default_scenario_vectors();
  const auto& registry = fingerprint::VectorRegistry::instance();
  for (const fingerprint::VectorId id : vectors_) {
    const auto& caps = registry.entry(id).caps;
    WAFP_CHECK(caps.audio || caps.compute)
        << "scenario vectors must be audio or compute, got "
        << fingerprint::to_string(id);
  }
  if (source_ == ObservationSource::kRendered) {
    cache_ = std::make_unique<fingerprint::RenderCache>();
    fingerprint::CollectorOptions options;
    options.cache = cache_.get();
    collector_ = std::make_unique<fingerprint::FingerprintCollector>(options);
  }
}

util::Digest ScenarioStream::synthetic_digest(const platform::StudyUser& user,
                                              const DriftState& state,
                                              fingerprint::VectorId id,
                                              std::uint32_t epoch) const {
  const std::uint64_t class_material =
      user.profile.audio.class_hash() ^ state.variant_salt;
  util::Sha256 h;
  h.update("wafp-scenario-efp");
  h.update_u64(static_cast<std::uint64_t>(id));
  h.update_u64(class_material);
  if (id == fingerprint::VectorId::kWasmFloat) return h.finish();
  if (id == fingerprint::VectorId::kWasmSimd) {
    h.update_u64(static_cast<std::uint64_t>(user.profile.simd_tier));
    return h.finish();
  }

  // Audio vector: draw the jitter state from the regime-keyed seed.
  const auto& entry = fingerprint::VectorRegistry::instance().entry(id);
  const double susceptibility = entry.vector->jitter_susceptibility();
  const double p = std::min(kMaxSyntheticEventProbability,
                            user.profile.fickle.flakiness * susceptibility);
  util::Rng rng(util::derive_seed(util::derive_seed(user.seed, epoch),
                                  static_cast<std::uint64_t>(id)));
  std::uint64_t jitter_state = 0;
  bool chaos = false;
  if (p > 0.0 && rng.next_bool(p)) {
    if (rng.next_bool(user.profile.fickle.jitter_share)) {
      jitter_state =
          1 + rng.next_below(std::max<std::uint32_t>(
                  1, user.profile.fickle.jitter_states));
    } else {
      chaos = true;
    }
  }
  h.update_u64(jitter_state);
  if (chaos) {
    // One-off glitch: fold in enough identity to make the digest unique
    // across (user, epoch) and a chaotic draw unique within them.
    h.update_u64(user.id);
    h.update_u64(epoch);
    h.update_u64(rng.next_u64());
  }
  return h.finish();
}

std::vector<Observation> ScenarioStream::epoch(std::uint32_t e) {
  WAFP_CHECK(e == next_epoch_)
      << "ScenarioStream epochs must be generated in order; expected "
      << next_epoch_ << ", got " << e;
  ++next_epoch_;
  if (e >= 1) drift_events_ += population_.advance(states_, e);

  const std::size_t users = population_.size();
  std::vector<Observation> observations(users * vectors_.size());
  const auto collect_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t u = begin; u < end; ++u) {
      const platform::StudyUser user = population_.user_at(u, states_[u]);
      for (std::size_t v = 0; v < vectors_.size(); ++v) {
        Observation& obs = observations[u * vectors_.size() + v];
        obs.user = static_cast<std::uint32_t>(u);
        obs.vector = vectors_[v];
        if (source_ == ObservationSource::kSynthetic) {
          obs.digest = synthetic_digest(user, states_[u], vectors_[v], e);
        } else if (fingerprint::is_compute_vector(vectors_[v])) {
          obs.digest =
              fingerprint::run_compute_vector(vectors_[v], user.profile);
        } else {
          obs.digest = collector_->collect(user, vectors_[v], e);
        }
      }
    }
  };
  if (threads_ == 1) {
    collect_range(0, users);
  } else {
    util::ThreadPool pool(threads_);
    pool.parallel_for(users, collect_range);
  }
  return observations;
}

}  // namespace wafp::scenario
