#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>

#include "util/check.h"

namespace wafp::obs {

namespace detail {

std::size_t thread_shard_seed() {
  thread_local const std::size_t seed =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return seed;
}

}  // namespace detail

Histogram::Histogram(std::span<const std::uint64_t> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  WAFP_CHECK(!bounds_.empty()) << "Histogram needs at least one bucket bound";
  WAFP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
             std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                 bounds_.end())
      << "Histogram bounds must be strictly increasing";
  for (Shard& s : shards_) {
    s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

std::size_t Histogram::bucket_index(std::uint64_t value) const {
  // First bound >= value; the overflow bucket is bounds_.size().
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      snap.counts[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.count += s.count.load(std::memory_order_relaxed);
  }
  return snap;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t c = counts[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      const double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double hi = i < bounds.size()
                            ? static_cast<double>(bounds[i])
                            : static_cast<double>(bounds.back());
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  return static_cast<double>(bounds.back());
}

std::string label(std::string_view key, std::string_view value) {
  std::string out;
  out.reserve(key.size() + value.size() + 3);
  out.append(key);
  out.append("=\"");
  for (const char c : value) {
    // Prometheus exposition format: label values escape backslash, quote,
    // and line-feed (a raw '\n' would terminate the sample line early and
    // corrupt the whole scrape).
    if (c == '\n') {
      out.append("\\n");
      continue;
    }
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::span<const std::uint64_t> MetricsRegistry::default_latency_bounds_ns() {
  static constexpr std::array<std::uint64_t, 20> kBounds = {
      1'000ULL,          2'000ULL,         5'000ULL,
      10'000ULL,         20'000ULL,        50'000ULL,
      100'000ULL,        200'000ULL,       500'000ULL,
      1'000'000ULL,      2'000'000ULL,     5'000'000ULL,
      10'000'000ULL,     20'000'000ULL,    50'000'000ULL,
      100'000'000ULL,    200'000'000ULL,   500'000'000ULL,
      1'000'000'000ULL,  5'000'000'000ULL,
  };
  return kBounds;
}

MetricsRegistry::Instrument& MetricsRegistry::instrument(
    std::string_view family, std::string_view help, std::string_view labels,
    Kind kind, std::span<const std::uint64_t> bounds) {
  WAFP_CHECK(!family.empty()) << "metric family name must not be empty";
  util::MutexLock lock(mu_);
  auto fam_it = families_.find(family);
  if (fam_it == families_.end()) {
    fam_it = families_.emplace(std::string(family), Family{}).first;
    fam_it->second.help = std::string(help);
    fam_it->second.kind = kind;
  }
  Family& fam = fam_it->second;
  WAFP_CHECK(fam.kind == kind)
      << "metric family '" << std::string(family)
      << "' re-registered under a different kind";
  auto [inst_it, inserted] =
      fam.instruments.try_emplace(std::string(labels));
  if (inserted) {
    inst_it->second = std::make_unique<Instrument>();
    switch (kind) {
      case Kind::kCounter:
        inst_it->second->counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        inst_it->second->gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        inst_it->second->histogram = std::make_unique<Histogram>(
            bounds.empty() ? default_latency_bounds_ns() : bounds);
        break;
    }
  }
  return *inst_it->second;
}

Counter& MetricsRegistry::counter(std::string_view family,
                                  std::string_view help,
                                  std::string_view labels) {
  return *instrument(family, help, labels, Kind::kCounter, {}).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view family, std::string_view help,
                              std::string_view labels) {
  return *instrument(family, help, labels, Kind::kGauge, {}).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view family,
                                      std::string_view help,
                                      std::string_view labels,
                                      std::span<const std::uint64_t> bounds) {
  return *instrument(family, help, labels, Kind::kHistogram, bounds).histogram;
}

void MetricsRegistry::set_clock(ClockFn fn) {
  auto boxed = fn ? std::make_unique<ClockFn>(std::move(fn)) : nullptr;
  util::MutexLock lock(mu_);
  clock_.store(boxed.get(), std::memory_order_release);
  if (boxed) retired_clocks_.push_back(std::move(boxed));
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

/// `name{labels}` or bare `name` when there are no labels; `extra` is an
/// optional additional label (the histogram `le`).
void append_series(std::string& out, std::string_view name,
                   std::string_view labels, std::string_view extra = {}) {
  out += name;
  if (!labels.empty() || !extra.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
}

/// JSON string literal (escapes quotes, backslashes, control chars).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string MetricsRegistry::render_text() const {
  util::MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) {
      out += "# HELP ";
      out += name;
      out += ' ';
      out += fam.help;
      out += '\n';
    }
    out += "# TYPE ";
    out += name;
    out += ' ';
    switch (fam.kind) {
      case Kind::kCounter: out += "counter\n"; break;
      case Kind::kGauge: out += "gauge\n"; break;
      case Kind::kHistogram: out += "histogram\n"; break;
    }
    for (const auto& [labels, inst] : fam.instruments) {
      switch (fam.kind) {
        case Kind::kCounter:
          append_series(out, name, labels);
          out += ' ';
          append_u64(out, inst->counter->value());
          out += '\n';
          break;
        case Kind::kGauge:
          append_series(out, name, labels);
          out += ' ';
          append_i64(out, inst->gauge->value());
          out += '\n';
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot snap = inst->histogram->snapshot();
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
            cum += snap.counts[i];
            std::string le = "le=\"";
            char buf[24];
            std::snprintf(buf, sizeof(buf), "%" PRIu64, snap.bounds[i]);
            le += buf;
            le += '"';
            append_series(out, std::string(name) + "_bucket", labels, le);
            out += ' ';
            append_u64(out, cum);
            out += '\n';
          }
          append_series(out, std::string(name) + "_bucket", labels,
                        "le=\"+Inf\"");
          out += ' ';
          append_u64(out, snap.count);
          out += '\n';
          append_series(out, std::string(name) + "_sum", labels);
          out += ' ';
          append_u64(out, snap.sum);
          out += '\n';
          append_series(out, std::string(name) + "_count", labels);
          out += ' ';
          append_u64(out, snap.count);
          out += '\n';
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  util::MutexLock lock(mu_);
  std::string out = "{";
  bool first_family = true;
  for (const auto& [name, fam] : families_) {
    if (!first_family) out += ", ";
    first_family = false;
    out += '\n';
    out += "    ";
    append_json_string(out, name);
    out += ": ";
    const bool flat = fam.kind != Kind::kHistogram &&
                      fam.instruments.size() == 1 &&
                      fam.instruments.begin()->first.empty();
    if (!flat) out += '{';
    bool first_inst = true;
    for (const auto& [labels, inst] : fam.instruments) {
      if (!flat) {
        if (!first_inst) out += ", ";
        first_inst = false;
        append_json_string(out, labels);
        out += ": ";
      }
      switch (fam.kind) {
        case Kind::kCounter: append_u64(out, inst->counter->value()); break;
        case Kind::kGauge: append_i64(out, inst->gauge->value()); break;
        case Kind::kHistogram: {
          const Histogram::Snapshot snap = inst->histogram->snapshot();
          out += "{\"count\": ";
          append_u64(out, snap.count);
          out += ", \"sum\": ";
          append_u64(out, snap.sum);
          out += ", \"p50\": ";
          append_double(out, snap.p50());
          out += ", \"p95\": ";
          append_double(out, snap.p95());
          out += ", \"p99\": ";
          append_double(out, snap.p99());
          out += '}';
          break;
        }
      }
    }
    if (!flat) out += '}';
  }
  out += "\n  }";
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace wafp::obs
