#include "obs/span.h"

namespace wafp::obs {

namespace {

// Thread-local span state. The stack stores the open span names; the path
// string is rebuilt lazily on demand (span close / current_path), keeping
// span open/close allocation-light.
thread_local std::vector<std::string>* t_stack = nullptr;
thread_local ScopedTraceCapture* t_capture = nullptr;

std::vector<std::string>& stack() {
  if (t_stack == nullptr) t_stack = new std::vector<std::string>();
  return *t_stack;
}

std::string join_path(const std::vector<std::string>& names) {
  std::string path;
  for (const std::string& name : names) {
    if (!path.empty()) path += '/';
    path += name;
  }
  return path;
}

}  // namespace

ScopedSpan::ScopedSpan(std::string_view name)
    : ScopedSpan(MetricsRegistry::global(), name) {}

ScopedSpan::ScopedSpan(MetricsRegistry& registry, std::string_view name)
    : registry_(registry), start_ns_(registry.now_ns()) {
  stack().emplace_back(name);
}

ScopedSpan::~ScopedSpan() {
  const std::uint64_t end_ns = registry_.now_ns();
  std::vector<std::string>& s = stack();
  const std::string path = join_path(s);
  const std::size_t depth = s.size() - 1;
  s.pop_back();
  registry_
      .histogram("wafp_span_ns", "Trace span duration in nanoseconds",
                 label("span", path))
      .observe(end_ns - start_ns_);
  if (t_capture != nullptr) {
    t_capture->events_.push_back(SpanEvent{path, depth, start_ns_, end_ns});
  }
}

std::size_t ScopedSpan::depth() { return stack().size(); }

std::string ScopedSpan::current_path() { return join_path(stack()); }

ScopedTraceCapture::ScopedTraceCapture() : prev_(t_capture) {
  t_capture = this;
}

ScopedTraceCapture::~ScopedTraceCapture() { t_capture = prev_; }

}  // namespace wafp::obs
