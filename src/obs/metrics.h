// Lock-cheap metrics registry: the observability spine of the pipeline.
//
// The paper's headline numbers hinge on *where* time and fickleness enter
// the render/collate pipeline (render load is the authors' own causal
// hypothesis for FFT wavering, §3.1), and the ROADMAP's production target
// needs per-stage cost visibility. This registry gives every layer —
// webaudio renderer, render cache/collector, collation service — a shared
// vocabulary of monotonic counters, gauges, and fixed-bucket latency
// histograms, exported as a Prometheus-style text dump (render_text) and a
// JSON block the bench binaries embed into their BENCH_*.json.
//
// Concurrency model (the PR 3 thread-safety gate still holds):
//   * The registration maps are the only mutex-guarded state
//     (WAFP_GUARDED_BY(mu_)); they are touched once per call site, which
//     caches the returned reference.
//   * The hot paths — Counter::inc, Gauge::set/add, Histogram::observe —
//     are wait-free: relaxed atomics on cache-line-padded shards selected
//     by a per-thread index, so 8 collection workers never contend.
//   * Returned references stay valid for the registry's lifetime
//     (instruments are heap-allocated and never erased), mirroring
//     RenderCache's entry-stability contract.
//
// Determinism: metrics only *observe* the pipeline (timings, tallies);
// nothing reads them back into a digest, so an instrumented 8-thread
// Dataset::collect stays bit-identical to serial. The clock is injectable
// (set_clock, mirroring ServiceConfig::sleeper) so tests assert exact
// durations.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace wafp::obs {

namespace detail {
/// Stable per-thread shard selector (hashed thread id, cached per thread).
[[nodiscard]] std::size_t thread_shard_seed();
}  // namespace detail

/// Monotonic counter, sharded to keep concurrent increments off each
/// other's cache lines. value() sums the shards (racy reads see a
/// consistent-enough snapshot: every inc lands in exactly one shard).
class Counter {
 public:
  static constexpr std::size_t kShards = 16;  // power of two

  void inc(std::uint64_t n = 1) {
    shards_[detail::thread_shard_seed() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Point-in-time signed value (queue depth, live entry count).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram for latency-style values (nanoseconds by
/// convention). Bucket upper bounds are fixed at registration; observe()
/// is wait-free (sharded relaxed atomics). Quantiles are estimated by
/// linear interpolation inside the target bucket — exact enough for
/// p50/p95/p99 trend lines, and deterministic given the same observations.
class Histogram {
 public:
  static constexpr std::size_t kShards = 8;  // power of two

  /// `bounds` must be strictly increasing upper bucket bounds; values above
  /// the last bound land in an implicit overflow bucket.
  explicit Histogram(std::span<const std::uint64_t> bounds);

  void observe(std::uint64_t value) {
    Shard& s = shards_[detail::thread_shard_seed() & (kShards - 1)];
    s.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::span<const std::uint64_t> bounds() const {
    return bounds_;
  }

  struct Snapshot {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /// Interpolated quantile, q in [0, 1]. Values in the overflow bucket
    /// saturate at the largest finite bound; an empty histogram reports 0.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double p50() const { return quantile(0.50); }
    [[nodiscard]] double p95() const { return quantile(0.95); }
    [[nodiscard]] double p99() const { return quantile(0.99); }
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  [[nodiscard]] std::size_t bucket_index(std::uint64_t value) const;

  std::vector<std::uint64_t> bounds_;
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;  // bounds_.size() + 1
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> count{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Renders `key="value"` for use as a metric label (quotes, backslashes,
/// and newlines in `value` are escaped per the Prometheus exposition
/// format). Concatenate multiple labels with ','.
[[nodiscard]] std::string label(std::string_view key, std::string_view value);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-register. The same (family, labels) pair always returns the
  /// same instrument; `help` is recorded on first registration. Registering
  /// an existing family under a different kind is a contract violation
  /// (WAFP_CHECK). Call sites should cache the returned reference — lookup
  /// takes the registry mutex, the instrument itself is wait-free.
  Counter& counter(std::string_view family, std::string_view help = {},
                   std::string_view labels = {});
  Gauge& gauge(std::string_view family, std::string_view help = {},
               std::string_view labels = {});
  /// Empty `bounds` selects default_latency_bounds_ns(). Bounds are fixed by
  /// the family's first registration.
  Histogram& histogram(std::string_view family, std::string_view help = {},
                       std::string_view labels = {},
                       std::span<const std::uint64_t> bounds = {});

  /// 1 µs .. 5 s in a 1-2-5 progression — wide enough for node-process
  /// times at the bottom and full study collections at the top.
  [[nodiscard]] static std::span<const std::uint64_t>
  default_latency_bounds_ns();

  /// Replace the time source (tests; pass nullptr to restore the steady
  /// clock). Safe to call while other threads read now_ns(): previous
  /// clocks are retired, not freed, until the registry is destroyed.
  void set_clock(ClockFn fn);
  [[nodiscard]] std::uint64_t now_ns() const {
    const ClockFn* fn = clock_.load(std::memory_order_acquire);
    return fn ? (*fn)() : steady_now_ns();
  }

  /// Prometheus text exposition: deterministic family order (sorted), with
  /// # HELP / # TYPE headers and _bucket/_sum/_count rows for histograms.
  [[nodiscard]] std::string render_text() const;

  /// One JSON object for embedding into BENCH_*.json: unlabeled counters
  /// and gauges flatten to numbers, labeled ones to {label: value} objects,
  /// histograms to {label: {count, sum, p50, p95, p99}} objects.
  [[nodiscard]] std::string render_json() const;

  /// The process-wide default registry (what WAFP_SPAN and un-injected
  /// subsystems record into).
  [[nodiscard]] static MetricsRegistry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    Kind kind = Kind::kCounter;
    // Keyed by the rendered label string ("" for unlabeled); std::map keeps
    // the export deterministic.
    std::map<std::string, std::unique_ptr<Instrument>> instruments;
  };

  Instrument& instrument(std::string_view family, std::string_view help,
                         std::string_view labels, Kind kind,
                         std::span<const std::uint64_t> bounds);

  mutable util::Mutex mu_;
  std::map<std::string, Family, std::less<>> families_ WAFP_GUARDED_BY(mu_);
  /// Lock-free clock slot; retired clocks stay alive so a concurrent
  /// now_ns() can never touch a freed function object.
  std::atomic<const ClockFn*> clock_{nullptr};
  std::vector<std::unique_ptr<ClockFn>> retired_clocks_ WAFP_GUARDED_BY(mu_);
};

}  // namespace wafp::obs
