// Injectable time source for the observability layer.
//
// Every duration the metrics registry records flows through a ClockFn so
// tests (and deterministic replays) can substitute a manual clock — the
// same pattern ServiceConfig::sleeper uses for retry backoff. The default
// is the monotonic steady clock in nanoseconds; wall-clock time never
// enters a metric, so dumps are comparable across restarts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>

namespace wafp::obs {

/// Monotonic nanoseconds since an arbitrary epoch (steady_clock).
[[nodiscard]] inline std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A time source: returns "now" in nanoseconds. Must be monotone
/// non-decreasing and safe to call from any thread.
using ClockFn = std::function<std::uint64_t()>;

/// Deterministic clock for tests: time only moves when advance() is called.
/// Thread-safe (reads and advances are atomic), so it can drive spans on
/// worker threads too.
class ManualClock {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0) : ns_(start_ns) {}

  [[nodiscard]] std::uint64_t now_ns() const {
    return ns_.load(std::memory_order_acquire);
  }
  void advance(std::uint64_t delta_ns) {
    ns_.fetch_add(delta_ns, std::memory_order_acq_rel);
  }

  /// A ClockFn view of this clock. The clock must outlive the function.
  [[nodiscard]] ClockFn fn() {
    return [this] { return now_ns(); };
  }

 private:
  std::atomic<std::uint64_t> ns_;
};

}  // namespace wafp::obs
