// Lightweight RAII trace spans.
//
//   void render() {
//     WAFP_SPAN("render/fft");       // records into MetricsRegistry::global()
//     ...
//   }
//
// Each thread keeps its own span stack, so nested spans compose into a
// path ("collect/render/fft") that becomes the `span` label of the
// wafp_span_ns histogram family when the span closes. Spans are strictly
// scoped (LIFO per thread) and cost two clock reads plus one histogram
// observe; timing flows through the owning registry's injectable clock, so
// tests drive spans with a ManualClock and assert exact durations and
// ordering (ScopedTraceCapture).
//
// Spans never feed back into the pipeline: an instrumented render produces
// bit-identical digests with or without them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace wafp::obs {

/// One completed span, as seen by ScopedTraceCapture.
struct SpanEvent {
  std::string path;       // "outer/inner" — the nesting at completion time
  std::size_t depth = 0;  // 0 = top-level
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

class ScopedSpan {
 public:
  /// Records into MetricsRegistry::global().
  explicit ScopedSpan(std::string_view name);
  /// Records into `registry` (tests, per-service registries).
  ScopedSpan(MetricsRegistry& registry, std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Current nesting depth of this thread's span stack.
  [[nodiscard]] static std::size_t depth();
  /// "a/b/c" path of the currently open spans on this thread ("" if none).
  [[nodiscard]] static std::string current_path();

 private:
  MetricsRegistry& registry_;
  std::uint64_t start_ns_;
};

/// Test hook: while alive, every span completed on this thread is appended
/// to events() (in completion order — inner spans land before the outer
/// span that contains them). Captures nest: the innermost capture wins.
class ScopedTraceCapture {
 public:
  ScopedTraceCapture();
  ~ScopedTraceCapture();

  ScopedTraceCapture(const ScopedTraceCapture&) = delete;
  ScopedTraceCapture& operator=(const ScopedTraceCapture&) = delete;

  [[nodiscard]] const std::vector<SpanEvent>& events() const {
    return events_;
  }

 private:
  friend class ScopedSpan;
  std::vector<SpanEvent> events_;
  ScopedTraceCapture* prev_ = nullptr;
};

#define WAFP_OBS_CONCAT2(a, b) a##b
#define WAFP_OBS_CONCAT(a, b) WAFP_OBS_CONCAT2(a, b)

/// Open a span for the rest of the enclosing scope, recorded into the
/// global registry.
#define WAFP_SPAN(name) \
  ::wafp::obs::ScopedSpan WAFP_OBS_CONCAT(wafp_span_, __LINE__)(name)

/// Same, recorded into an explicit registry.
#define WAFP_SPAN_IN(registry, name)                                 \
  ::wafp::obs::ScopedSpan WAFP_OBS_CONCAT(wafp_span_, __LINE__)((registry), \
                                                               (name))

}  // namespace wafp::obs
