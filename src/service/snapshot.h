// Checksummed snapshots of the collation state.
//
// A snapshot captures the full service state — the fingerprint graph's
// partition (via FingerprintGraph::export_state), the per-user timestamp
// clocks, and the applied-submission count — under a whole-file FNV-1a
// checksum. Writes go to `<path>.tmp` first and are renamed into place, so
// a crash mid-write leaves the previous snapshot intact; a snapshot that
// rots on disk afterwards is *detected* (checksum mismatch => typed
// SnapshotCorruptError), never silently half-loaded.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "collation/fingerprint_graph.h"
#include "service/types.h"

namespace wafp::service {

struct SnapshotState {
  std::uint64_t applied = 0;  // submissions folded into the graph so far
  std::vector<std::pair<std::uint32_t, std::uint64_t>> user_clocks;
  collation::FingerprintGraph::Export graph;
};

/// Thrown when a snapshot file exists but fails structural or checksum
/// validation. Recovery treats this as fatal: the WAL was truncated when
/// the snapshot was written, so the lost prefix is not reconstructible.
class SnapshotCorruptError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialize to a string (exposed for tests; stable, deterministic output).
[[nodiscard]] std::string encode_snapshot(const SnapshotState& state);

/// Parse + verify; throws SnapshotCorruptError on any mismatch.
[[nodiscard]] SnapshotState decode_snapshot(const std::string& text);

/// Write atomically (tmp file + rename). Returns false on I/O failure.
[[nodiscard]] bool write_snapshot(const std::string& path,
                                  const SnapshotState& state);

/// Load a snapshot if `path` exists; nullopt when absent (fresh service).
/// Throws SnapshotCorruptError when present but invalid.
[[nodiscard]] std::optional<SnapshotState> load_snapshot(
    const std::string& path);

/// Deterministic corruption hook: XOR one mid-file byte. Used by the
/// fault-injection plan so recovery-failure paths are testable.
void corrupt_snapshot_file(const std::string& path);

}  // namespace wafp::service
