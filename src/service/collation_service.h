// CollationService: the library-grade online collation engine behind
// examples/tracking_server.cpp.
//
// The paper's collation scheme (§3.2) is an online algorithm — submissions
// stream in and the user↔fingerprint bipartite graph merges clusters as
// they arrive. This service wraps that graph with what a production
// deployment needs and the happy-path demo lacked:
//
//   validate -> enqueue (bounded, backpressure) -> WAL append (retry with
//   backoff) -> apply to graph -> periodic snapshot
//
// Durability model: WAL-before-apply, snapshot-then-truncate. Replay after
// a crash is idempotent (re-uniting an existing user↔fingerprint edge is a
// no-op for the partition), so the snapshot/WAL-truncation race loses
// nothing. Recovery = load snapshot (checksum-verified) + replay WAL;
// the resulting components are bit-identical to an uninterrupted run,
// witnessed by FingerprintGraph::component_checksum().
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>

#include "collation/fingerprint_graph.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "service/engine.h"
#include "service/fault_injection.h"
#include "service/snapshot.h"
#include "service/types.h"
#include "service/validator.h"
#include "service/wal.h"

namespace wafp::service {

struct ServiceConfig {
  /// Directory for WAL + snapshot; empty = volatile in-memory service.
  std::string state_dir;

  /// Ingest queue bound; submit() returns kQueueFull beyond it.
  std::size_t queue_capacity = 4096;

  /// Snapshot after this many applied submissions (0 = never snapshot;
  /// recovery then replays the whole WAL).
  std::size_t snapshot_every = 1024;

  /// When true, every WAL append fdatasync()s to disk so records survive an
  /// OS crash, not just a process crash. Default off: benches and tests
  /// measure the flush-only path honestly, and recovery parity never
  /// depended on fd-level sync (the kill model is process death).
  bool fsync_wal = false;

  /// WAL append retry policy for transient failures: total attempts =
  /// 1 + max_append_retries, sleeping retry_backoff * 2^attempt between.
  std::size_t max_append_retries = 3;
  std::chrono::milliseconds retry_backoff{1};

  /// Injectable sleeper so tests assert the backoff schedule without
  /// wall-clock waits; defaults to std::this_thread::sleep_for.
  std::function<void(std::chrono::milliseconds)> sleeper;

  /// Metrics sink for queue depth, ingest->apply latency, WAL timings,
  /// snapshot duration, and recovery counters. nullptr =
  /// obs::MetricsRegistry::global(). Purely observational; pair with
  /// MetricsRegistry::set_clock for deterministic latency tests.
  obs::MetricsRegistry* metrics = nullptr;

  FaultPlan faults;
};

/// Thrown when a WAL append keeps failing past the retry budget: the
/// submission cannot be made durable, so it is not applied.
class WalAppendError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CollationService : public CollationEngine {
 public:
  /// Construction runs recovery when state_dir holds prior state. Throws
  /// SnapshotCorruptError if the snapshot exists but fails verification.
  explicit CollationService(ServiceConfig config);
  ~CollationService() override;

  CollationService(const CollationService&) = delete;
  CollationService& operator=(const CollationService&) = delete;

  /// Validate and enqueue one raw submission. Thread-safe. kQueueFull asks
  /// the caller to back off and resubmit (pump() drains the queue).
  SubmitResult submit(const RawSubmission& raw) override;

  /// Drain up to `max_records` queued submissions into the WAL + graph.
  /// Returns the number applied. Call from one thread at a time (the
  /// background worker counts as that thread while running); the contract
  /// is enforced — a second concurrent caller trips a WAFP_CHECK abort
  /// rather than silently corrupting the mutex-free pump-owned state.
  std::size_t pump(std::size_t max_records = SIZE_MAX) override;

  /// Background ingestion: a worker thread pumps until stop(). submit()
  /// keeps working concurrently. If a WAL append exhausts its retry budget
  /// the worker records the failure (stats().wal_append_failures) and parks
  /// itself instead of terminating the process; the failed submission stays
  /// queued, and start() may be called again to resume.
  void start() override;
  void stop() override;

  /// Flush everything queued, then snapshot if state is dirty. The orderly
  /// shutdown path (the destructor calls it for persistent services).
  void drain_and_checkpoint() override;

  /// Fault hook: abandon all in-memory state *without* checkpointing, as a
  /// kill -9 would. The next service constructed on the same state_dir
  /// recovers from snapshot + WAL. (In-memory-only services lose
  /// everything, which is the point.)
  void crash() override;

  [[nodiscard]] ServiceStats stats() const override;

  /// Newest timestamp any user's clock has reached (0 if none). Lets a
  /// resuming producer pick timestamps that clear the recovered clocks
  /// instead of tripping kTimestampRegression.
  [[nodiscard]] std::uint64_t max_observed_timestamp() const override;

  /// All recovered/observed per-user clocks (unsorted). The sharded router
  /// max-merges these across shards at recovery to re-arm its global
  /// validator.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint64_t>>
  user_clocks() const;

  /// The live collation graph. Queries are safe against a stopped or
  /// pump()-quiescent service; see FingerprintGraph for the threading rules.
  [[nodiscard]] const collation::FingerprintGraph& graph() const {
    return graph_;
  }

  /// Component checksum of the current graph (crash-recovery witness).
  [[nodiscard]] std::uint64_t component_checksum() const override {
    return graph_.component_checksum();
  }

  [[nodiscard]] std::size_t cluster_count() const override {
    return graph_.cluster_count();
  }
  [[nodiscard]] std::size_t user_count() const override {
    return graph_.user_count();
  }
  [[nodiscard]] std::size_t fingerprint_count() const override {
    return graph_.fingerprint_count();
  }
  [[nodiscard]] std::vector<std::size_t> cluster_user_counts()
      const override {
    return graph_.cluster_user_counts();
  }

  /// Probe matching, forwarded to the graph (§3.3 "fingerprint match").
  [[nodiscard]] std::optional<std::size_t> match(
      std::span<const util::Digest> probe) const override {
    return graph_.match(probe);
  }

  [[nodiscard]] std::optional<std::size_t> user_component(
      std::uint32_t user) const override {
    return graph_.user_component(user);
  }

 private:
  /// One queued record plus its enqueue timestamp, so pump() can observe
  /// the ingest->apply latency the moment a submission reaches the graph.
  struct QueuedSubmission {
    Submission s;
    std::uint64_t enqueued_ns = 0;
  };

  [[nodiscard]] std::string wal_path() const;
  [[nodiscard]] std::string snapshot_path() const;
  void recover();
  void append_with_retry(const Submission& s);
  void apply(const Submission& s);
  void maybe_snapshot();
  void checkpoint();

  // Pump-thread-owned state: graph_, wal_, applied_since_snapshot_ and the
  // append ordinal of fault_clock_ are only touched by the single thread
  // allowed inside pump() (see pump()'s contract) plus the constructor's
  // recovery path; they carry no mutex on purpose — readers of graph() must
  // quiesce the service first, exactly as documented above.
  ServiceConfig config_;

  /// Resolved metrics sink plus instrument references (heap-stable in the
  /// registry, so resolving once at construction keeps the hot paths off
  /// the registry maps).
  obs::MetricsRegistry& metrics_;
  obs::Gauge& queue_depth_gauge_;
  obs::Histogram& ingest_apply_ns_;
  obs::Histogram& wal_append_ns_;
  obs::Histogram& snapshot_ns_;
  obs::Counter& wal_appends_counter_;
  obs::Counter& wal_retries_counter_;
  obs::Counter& applied_counter_;
  obs::Counter& recovered_snapshot_counter_;
  obs::Counter& recovered_wal_counter_;

  collation::FingerprintGraph graph_;
  /// Null while the service runs without durable state (empty state_dir).
  /// unique_ptr rather than optional: clang-tidy's
  /// bugprone-unchecked-optional-access cannot see that the null checks in
  /// pump-thread methods dominate every dereference, and a pointer states
  /// the either-absent-or-stable ownership more directly anyway.
  std::unique_ptr<Wal> wal_;
  FaultClock fault_clock_;
  std::uint64_t applied_since_snapshot_ = 0;

  mutable util::Mutex mu_;
  SubmissionValidator validator_ WAFP_GUARDED_BY(mu_);
  std::deque<QueuedSubmission> queue_ WAFP_GUARDED_BY(mu_);
  ServiceStats stats_ WAFP_GUARDED_BY(mu_);
  bool crashed_ WAFP_GUARDED_BY(mu_) = false;

  util::Mutex worker_mu_;  // serializes join/launch of worker_
  std::thread worker_ WAFP_GUARDED_BY(worker_mu_);
  std::atomic<bool> running_{false};
  /// Owner flag backing pump()'s single-caller contract; set for the
  /// duration of each pump() call and WAFP_CHECKed on entry.
  std::atomic<bool> pump_active_{false};
};

}  // namespace wafp::service
