#include "service/validator.h"

namespace wafp::service {
namespace {

/// -1 for non-hex; tolerates only lowercase, matching Digest::hex().
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

bool is_valid_efp_hex(std::string_view hex) {
  if (hex.size() != 64) return false;
  for (const char c : hex) {
    if (hex_nibble(c) < 0) return false;
  }
  return true;
}

bool is_known_vector(std::uint32_t raw) {
  return fingerprint::to_string(static_cast<fingerprint::VectorId>(raw)) !=
         "unknown";
}

std::optional<util::Digest> parse_efp_hex(std::string_view hex) {
  if (!is_valid_efp_hex(hex)) return std::nullopt;
  util::Digest d;
  for (std::size_t i = 0; i < d.bytes.size(); ++i) {
    d.bytes[i] = static_cast<std::uint8_t>((hex_nibble(hex[2 * i]) << 4) |
                                           hex_nibble(hex[2 * i + 1]));
  }
  return d;
}

Reject SubmissionValidator::validate(const RawSubmission& raw,
                                     Submission& out) const {
  const auto digest = parse_efp_hex(raw.efp_hex);
  if (!digest.has_value()) return Reject::kMalformedHash;
  if (!is_known_vector(raw.vector)) return Reject::kUnknownVector;
  const auto it = last_timestamp_.find(raw.user);
  if (it != last_timestamp_.end() && raw.timestamp < it->second) {
    return Reject::kTimestampRegression;
  }
  out.user = raw.user;
  out.vector = static_cast<fingerprint::VectorId>(raw.vector);
  out.timestamp = raw.timestamp;
  out.efp = *digest;
  return Reject::kNone;
}

void SubmissionValidator::observe_timestamp(std::uint32_t user,
                                            std::uint64_t timestamp) {
  auto [it, inserted] = last_timestamp_.try_emplace(user, timestamp);
  if (!inserted && timestamp > it->second) it->second = timestamp;
}

std::optional<std::uint64_t> SubmissionValidator::last_timestamp(
    std::uint32_t user) const {
  const auto it = last_timestamp_.find(user);
  if (it == last_timestamp_.end()) return std::nullopt;
  return it->second;
}

}  // namespace wafp::service
