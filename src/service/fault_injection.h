// Deterministic fault-injection hooks for the collation service.
//
// Robustness claims that cannot be exercised in CI are wishes, not
// properties. Every failure mode the service defends against — lossy or
// duplicating networks, reordered delivery, a disk that fails an append, a
// snapshot that rots on disk, a process that dies mid-ingest — can be
// scheduled here *deterministically* (counter-based, no clocks, no RNG), so
// the crash-recovery parity tests replay the exact same fault schedule on
// every run.
#pragma once

#include <cstdint>

namespace wafp::service {

/// All counters are 1-based ordinals over the relevant event stream and
/// 0 disables the fault. Faults compose; each is evaluated independently.
struct FaultPlan {
  /// Drop every Nth *accepted* submission before it reaches the queue
  /// (simulates client/network loss; the collation result legitimately
  /// changes, which tests assert).
  std::uint64_t drop_every = 0;

  /// Enqueue every Nth accepted submission twice (duplicate delivery; must
  /// NOT change the collated components — add_observation is idempotent).
  std::uint64_t duplicate_every = 0;

  /// Swap every Nth accepted submission with the one enqueued after it
  /// (pairwise reordering; must not change components either).
  std::uint64_t reorder_every = 0;

  /// Fail WAL append number N transiently: the first attempt reports
  /// failure, the retry succeeds. Exercises the retry/backoff policy.
  std::uint64_t fail_append_at = 0;

  /// Fail every Nth WAL append transiently (as above, recurring).
  std::uint64_t fail_append_every = 0;

  /// Fail *every attempt* of WAL append number N, including retries —
  /// the submission surfaces as a hard ingest error.
  std::uint64_t fail_append_hard_at = 0;

  /// Flip one byte of the snapshot file right after it is written, so the
  /// next recovery must detect the corruption via checksum.
  bool corrupt_snapshot = false;
};

/// Per-service mutable fault state (the plan is immutable config; the
/// counters advance as events happen).
struct FaultClock {
  std::uint64_t accepted = 0;  // accepted-submission ordinal
  std::uint64_t appends = 0;   // WAL append-attempt ordinal (per record)

  /// True when ordinal `n` (1-based) matches a `every`-style period.
  [[nodiscard]] static bool hits(std::uint64_t n, std::uint64_t every) {
    return every != 0 && n % every == 0;
  }
};

}  // namespace wafp::service
