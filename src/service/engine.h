// CollationEngine: the engine-agnostic API of the online collation
// subsystem (DESIGN.md §3j).
//
// The paper's collation scheme (§3.2) is one algorithm — an online union
// over the user↔fingerprint bipartite graph — but it admits more than one
// execution strategy: a single apply loop over one graph with one WAL
// (CollationService), or a fingerprint-hash-partitioned fleet of shards
// with per-shard WALs and a cross-shard merge (ShardedCollationService).
// Everything above the engine — the tracking-server CLI, the study parity
// bridge, the oracle tests, the throughput benches — programs against this
// interface, so engines are drop-in replacements for each other and every
// correctness bar (brute-force oracles, component-checksum parity,
// kill-every-k recovery) applies to all of them unchanged.
//
// Contract notes shared by every engine:
//   * submit() is thread-safe; kQueueFull is backpressure, not failure —
//     the caller pumps (or waits for the background workers) and resubmits.
//   * pump() may be called from at most one thread at a time, and never
//     while start()ed workers are running (engines enforce this loudly).
//   * The query surface (counts, match, user_component, checksum) reads the
//     collated state and requires the engine quiescent: stopped, or no
//     pump() in flight. Engines do not snapshot-isolate queries.
//   * component_checksum() is the canonical order-independent partition
//     witness (FingerprintGraph::component_checksum spec); two engines fed
//     the same applied observations MUST report the same checksum, whatever
//     their internal layout.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "service/types.h"
#include "util/hash.h"

namespace wafp::service {

class CollationEngine {
 public:
  virtual ~CollationEngine() = default;

  /// Validate and enqueue one raw submission (thread-safe; see class
  /// comment for the kQueueFull backpressure contract).
  virtual SubmitResult submit(const RawSubmission& raw) = 0;

  /// Drain up to `max_records` queued submissions into durable storage and
  /// the collation state; returns the number applied. Single caller only.
  virtual std::size_t pump(std::size_t max_records) = 0;

  /// Convenience: drain everything currently queued.
  std::size_t pump() { return pump(SIZE_MAX); }

  /// Background ingestion workers (one per apply loop). submit() keeps
  /// working concurrently; stop() joins the workers.
  virtual void start() = 0;
  virtual void stop() = 0;

  /// Flush everything queued, then checkpoint durable engines. The orderly
  /// shutdown path.
  virtual void drain_and_checkpoint() = 0;

  /// Fault hook: abandon all in-memory state without checkpointing, as a
  /// kill -9 would. The next engine constructed on the same state_dir
  /// recovers from its durable state.
  virtual void crash() = 0;

  [[nodiscard]] virtual ServiceStats stats() const = 0;

  /// Newest timestamp any user's clock has reached (0 if none); lets a
  /// resuming producer clear the recovered clocks.
  [[nodiscard]] virtual std::uint64_t max_observed_timestamp() const = 0;

  // --- Collated-state queries (engine quiescent; see class comment) -----

  /// Canonical partition checksum (crash-recovery and cross-engine parity
  /// witness).
  [[nodiscard]] virtual std::uint64_t component_checksum() const = 0;

  /// Number of collated fingerprints = connected components.
  [[nodiscard]] virtual std::size_t cluster_count() const = 0;

  [[nodiscard]] virtual std::size_t user_count() const = 0;
  [[nodiscard]] virtual std::size_t fingerprint_count() const = 0;

  /// Number of users in each cluster (unordered; fingerprint-only
  /// components excluded).
  [[nodiscard]] virtual std::vector<std::size_t> cluster_user_counts()
      const = 0;

  /// Probe matching (§3.3 "fingerprint match"): the component id the
  /// majority of known probe fingerprints belong to. Component ids are
  /// engine-internal — only comparable against user_component() of the
  /// same engine with no applies in between.
  [[nodiscard]] virtual std::optional<std::size_t> match(
      std::span<const util::Digest> probe) const = 0;

  /// Component id of a user (for comparing against match()).
  [[nodiscard]] virtual std::optional<std::size_t> user_component(
      std::uint32_t user) const = 0;

 protected:
  CollationEngine() = default;
  CollationEngine(const CollationEngine&) = delete;
  CollationEngine& operator=(const CollationEngine&) = delete;
};

}  // namespace wafp::service
