#include "service/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "service/validator.h"
#include "util/hash.h"

namespace wafp::service {
namespace {

constexpr std::string_view kHeader = "wafp-snapshot v1";

std::string checksum_hex(std::string_view body) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(util::fnv1a64(body)));
  return buf;
}

/// Pulls one whitespace-delimited token; throws on EOF.
template <typename T>
T expect(std::istream& in, const char* what) {
  T value;
  if (!(in >> value)) {
    throw SnapshotCorruptError(std::string("snapshot: missing ") + what);
  }
  return value;
}

void expect_keyword(std::istream& in, std::string_view keyword) {
  const auto token = expect<std::string>(in, "keyword");
  if (token != keyword) {
    throw SnapshotCorruptError("snapshot: expected '" + std::string(keyword) +
                               "', got '" + token + "'");
  }
}

}  // namespace

std::string encode_snapshot(const SnapshotState& state) {
  std::ostringstream body;
  body << kHeader << '\n';
  body << "applied " << state.applied << '\n';
  auto clocks = state.user_clocks;
  std::sort(clocks.begin(), clocks.end());
  body << "clocks " << clocks.size() << '\n';
  for (const auto& [user, ts] : clocks) body << user << ' ' << ts << '\n';
  body << "users " << state.graph.users.size() << '\n';
  for (const auto& [user, node] : state.graph.users) {
    body << user << ' ' << node << '\n';
  }
  body << "efps " << state.graph.fingerprints.size() << '\n';
  for (const auto& [efp, node] : state.graph.fingerprints) {
    body << efp.hex() << ' ' << node << '\n';
  }
  body << "roots " << state.graph.roots.size() << '\n';
  for (const std::size_t root : state.graph.roots) body << root << '\n';
  std::string text = body.str();
  text += "checksum " + checksum_hex(text) + '\n';
  return text;
}

SnapshotState decode_snapshot(const std::string& text) {
  // Verify the whole-file checksum before parsing anything else.
  const std::size_t mark = text.rfind("checksum ");
  if (mark == std::string::npos || mark + 9 + 16 > text.size()) {
    throw SnapshotCorruptError("snapshot: missing checksum trailer");
  }
  const std::string_view body(text.data(), mark);
  const std::string_view stored(text.data() + mark + 9, 16);
  if (stored != checksum_hex(body)) {
    throw SnapshotCorruptError("snapshot: checksum mismatch");
  }

  std::istringstream in{std::string(body)};
  std::string header_word, header_version;
  in >> header_word >> header_version;
  if (header_word + " " + header_version != kHeader) {
    throw SnapshotCorruptError("snapshot: bad header");
  }

  SnapshotState state;
  expect_keyword(in, "applied");
  state.applied = expect<std::uint64_t>(in, "applied count");
  expect_keyword(in, "clocks");
  const auto num_clocks = expect<std::size_t>(in, "clock count");
  state.user_clocks.reserve(num_clocks);
  for (std::size_t i = 0; i < num_clocks; ++i) {
    const auto user = expect<std::uint32_t>(in, "clock user");
    const auto ts = expect<std::uint64_t>(in, "clock timestamp");
    state.user_clocks.emplace_back(user, ts);
  }
  expect_keyword(in, "users");
  const auto num_users = expect<std::size_t>(in, "user count");
  state.graph.users.reserve(num_users);
  for (std::size_t i = 0; i < num_users; ++i) {
    const auto user = expect<std::uint32_t>(in, "user id");
    const auto node = expect<std::size_t>(in, "user node");
    state.graph.users.emplace_back(user, node);
  }
  expect_keyword(in, "efps");
  const auto num_efps = expect<std::size_t>(in, "efp count");
  state.graph.fingerprints.reserve(num_efps);
  for (std::size_t i = 0; i < num_efps; ++i) {
    const auto hex = expect<std::string>(in, "efp hex");
    const auto digest = parse_efp_hex(hex);
    if (!digest.has_value()) {
      throw SnapshotCorruptError("snapshot: bad efp hex");
    }
    const auto node = expect<std::size_t>(in, "efp node");
    state.graph.fingerprints.emplace_back(*digest, node);
  }
  expect_keyword(in, "roots");
  const auto num_roots = expect<std::size_t>(in, "root count");
  state.graph.roots.reserve(num_roots);
  for (std::size_t i = 0; i < num_roots; ++i) {
    state.graph.roots.push_back(expect<std::size_t>(in, "root"));
  }
  return state;
}

bool write_snapshot(const std::string& path, const SnapshotState& state) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << encode_snapshot(state);
    out.flush();
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

std::optional<SnapshotState> load_snapshot(const std::string& path) {
  if (!std::filesystem::exists(path)) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotCorruptError("snapshot: unreadable file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return decode_snapshot(buffer.str());
}

void corrupt_snapshot_file(const std::string& path) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!file) return;
  file.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(file.tellg());
  if (size <= 0) return;
  const std::streamoff offset = size / 2;
  file.seekg(offset);
  char byte = 0;
  file.get(byte);
  file.seekp(offset);
  file.put(static_cast<char>(byte ^ 0x20));
  file.flush();
}

}  // namespace wafp::service
