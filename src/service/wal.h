// Write-ahead submission log.
//
// Every accepted submission is appended (and flushed) here *before* it is
// applied to the in-memory collation graph, so a crash loses at most the
// one submission whose append never completed. Records are CSV rows
//
//   user,vector,timestamp,efp_hex,crc16hex
//
// with a per-record FNV-1a checksum over the canonical field string. Replay
// parses with util::parse_csv, verifies each record, and stops at the first
// invalid one — a torn tail (partial final write) is detected and dropped
// rather than poisoning the graph. A torn (or headerless) log must then be
// repaired *before* reopening for append: appending onto a partial final
// line would merge the new record into the torn line, and the next replay
// would stop there and silently discard everything written after the tear.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "service/types.h"

namespace wafp::service {

/// Per-record checksum, exposed for tests.
[[nodiscard]] std::uint64_t wal_record_crc(const Submission& s);

/// Serialize one record (no trailing newline), exposed for tests.
[[nodiscard]] std::string wal_record_line(const Submission& s);

struct WalReplay {
  std::vector<Submission> records;
  std::size_t corrupt_tail_lines = 0;  // lines dropped at the torn tail
  bool header_ok = false;

  /// True when the on-disk log does not end at a fully valid record (torn
  /// tail, missing header, or empty file) and must be rewritten before it
  /// is safe to append to.
  [[nodiscard]] bool needs_repair() const {
    return !header_ok || corrupt_tail_lines > 0;
  }
};

class Wal {
 public:
  /// Opens (creating if absent) the log at `path` for appending. `metrics`
  /// receives the per-append flush/sync timing histograms; nullptr =
  /// obs::MetricsRegistry::global(). When `fsync_writes` is true every
  /// append additionally fdatasync()s the log, so a record survives an OS
  /// crash, not just a process crash (POSIX only; elsewhere the flag
  /// degrades to flush-only and the fsync histogram stays empty).
  explicit Wal(std::string path, obs::MetricsRegistry* metrics = nullptr,
               bool fsync_writes = false);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Append one record, flush, and (in fsync mode) sync to disk. Returns
  /// false when the write fails — either a real stream/sync error or
  /// `inject_failure` (the deterministic fault hook; nothing is written in
  /// that case, modeling an I/O error caught before the record hit the
  /// disk). After a failure the stream is reopened so a retry can succeed.
  [[nodiscard]] bool append(const Submission& s, bool inject_failure = false);

  /// Whether appends fdatasync after flushing.
  [[nodiscard]] bool fsync_writes() const { return fsync_writes_; }

  /// Truncate the log (called after a snapshot captured its contents).
  void reset();

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Parse and verify the log at `path`. Missing file = empty replay with
  /// header_ok=true (a fresh service has no log yet).
  [[nodiscard]] static WalReplay replay(const std::string& path);

  /// Atomically rewrite the log at `path` to exactly the header plus
  /// `replay.records` (temp file + rename), dropping the torn tail and
  /// restoring a missing header. No-op when `replay` needs no repair.
  /// Returns false if the rewrite itself failed (log left untouched).
  static bool repair(const std::string& path, const WalReplay& replay);

 private:
  void open_for_append();
  /// fdatasync the log's descriptor (lazily opened). False on sync failure;
  /// trivially true on platforms without POSIX descriptors.
  [[nodiscard]] bool sync_to_disk();

  std::string path_;
  std::ofstream out_;
  bool fsync_writes_ = false;
  /// POSIX descriptor used only for fdatasync; fsync flushes the inode's
  /// dirty pages regardless of which descriptor wrote them, so the ofstream
  /// keeps its buffered-write path. -1 until fsync mode first needs it.
  int sync_fd_ = -1;
  obs::MetricsRegistry& metrics_;
  /// Flush-to-OS time per append: the userspace-buffer-to-page-cache cost
  /// of WAL-before-apply, split out from the full append so queue stalls
  /// can be attributed. This is NOT a disk sync — see fsync_ns_.
  obs::Histogram& flush_ns_;
  /// fdatasync time per append; only observed when fsync_writes is on.
  obs::Histogram& fsync_ns_;
};

}  // namespace wafp::service
