#include "service/wal.h"

#include <cstdio>
#include <filesystem>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "service/validator.h"
#include "util/csv.h"

namespace wafp::service {
namespace {

constexpr std::string_view kHeader = "wafp-wal v1";

std::string canonical_fields(const Submission& s) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%u|%u|%llu|",
                static_cast<unsigned>(s.user),
                static_cast<unsigned>(s.vector),
                static_cast<unsigned long long>(s.timestamp));
  return std::string(buf) + s.efp.hex();
}

std::string crc_hex(std::uint64_t crc) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(crc));
  return buf;
}

/// Strict decimal parse into a uint64; rejects empty/overlong/non-digit.
bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

}  // namespace

std::uint64_t wal_record_crc(const Submission& s) {
  return util::fnv1a64(canonical_fields(s));
}

std::string wal_record_line(const Submission& s) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%u,%u,%llu,",
                static_cast<unsigned>(s.user),
                static_cast<unsigned>(s.vector),
                static_cast<unsigned long long>(s.timestamp));
  return std::string(buf) + s.efp.hex() + ',' + crc_hex(wal_record_crc(s));
}

Wal::Wal(std::string path, obs::MetricsRegistry* metrics, bool fsync_writes)
    : path_(std::move(path)),
      fsync_writes_(fsync_writes),
      metrics_(metrics ? *metrics : obs::MetricsRegistry::global()),
      flush_ns_(metrics_.histogram("wafp_wal_flush_ns",
                                   "Per-append WAL flush-to-OS time (ns); "
                                   "page cache, not disk")),
      fsync_ns_(metrics_.histogram("wafp_wal_fsync_ns",
                                   "Per-append fdatasync-to-disk time (ns); "
                                   "observed only in fsync mode")) {
  const bool fresh = !std::filesystem::exists(path_);
  open_for_append();
  if (fresh && out_) {
    out_ << kHeader << '\n';
    out_.flush();
    if (fsync_writes_) (void)sync_to_disk();
  }
}

Wal::~Wal() {
#ifdef __unix__
  if (sync_fd_ >= 0) ::close(sync_fd_);
#endif
}

void Wal::open_for_append() {
  out_.close();
  out_.clear();
  out_.open(path_, std::ios::binary | std::ios::app);
}

bool Wal::sync_to_disk() {
#ifdef __unix__
  if (sync_fd_ < 0) {
    // fdatasync flushes every dirty page of the inode, not just writes made
    // through this descriptor, so a dedicated O_WRONLY handle is enough and
    // the buffered ofstream path stays untouched. The descriptor survives
    // reset(): truncation reopens the same path, hence the same inode.
    sync_fd_ = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
    if (sync_fd_ < 0) return false;
  }
  return ::fdatasync(sync_fd_) == 0;
#else
  return true;  // no POSIX descriptor: fsync mode degrades to flush-only
#endif
}

bool Wal::append(const Submission& s, bool inject_failure) {
  if (inject_failure) {
    // Model an I/O error surfaced before the record reached the disk; the
    // reopen mirrors what a real handler would do with a failed descriptor.
    open_for_append();
    return false;
  }
  if (!out_) open_for_append();
  out_ << wal_record_line(s) << '\n';
  const std::uint64_t t0 = metrics_.now_ns();
  out_.flush();
  flush_ns_.observe(metrics_.now_ns() - t0);
  if (!out_) {
    open_for_append();
    return false;
  }
  if (fsync_writes_) {
    const std::uint64_t t1 = metrics_.now_ns();
    const bool synced = sync_to_disk();
    fsync_ns_.observe(metrics_.now_ns() - t1);
    if (!synced) {
      open_for_append();
      return false;
    }
  }
  return true;
}

void Wal::reset() {
  out_.close();
  out_.clear();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  out_ << kHeader << '\n';
  out_.flush();
  if (fsync_writes_) (void)sync_to_disk();
}

bool Wal::repair(const std::string& path, const WalReplay& replay) {
  if (!replay.needs_repair()) return true;
  const std::string tmp = path + ".repair";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << kHeader << '\n';
    for (const Submission& s : replay.records) {
      out << wal_record_line(s) << '\n';
    }
    out.flush();
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

WalReplay Wal::replay(const std::string& path) {
  WalReplay result;
  if (!std::filesystem::exists(path)) {
    result.header_ok = true;  // fresh service: nothing to replay
    return result;
  }
  const auto rows = util::read_csv_file(path);
  if (rows.empty() || rows[0].size() != 1 || rows[0][0] != kHeader) {
    result.corrupt_tail_lines = rows.size();
    return result;
  }
  result.header_ok = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    Submission s;
    std::uint64_t user = 0, vector = 0;
    if (row.size() != 5 || !parse_u64(row[0], user) || user > UINT32_MAX ||
        !parse_u64(row[1], vector) ||
        !is_known_vector(static_cast<std::uint32_t>(vector)) ||
        !parse_u64(row[2], s.timestamp)) {
      result.corrupt_tail_lines = rows.size() - i;
      break;
    }
    const auto digest = parse_efp_hex(row[3]);
    if (!digest.has_value()) {
      result.corrupt_tail_lines = rows.size() - i;
      break;
    }
    s.user = static_cast<std::uint32_t>(user);
    s.vector = static_cast<fingerprint::VectorId>(vector);
    s.efp = *digest;
    if (row[4] != crc_hex(wal_record_crc(s))) {
      result.corrupt_tail_lines = rows.size() - i;
      break;
    }
    result.records.push_back(s);
  }
  return result;
}

}  // namespace wafp::service
