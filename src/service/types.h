// Wire-level types and typed errors for the online collation service.
//
// The service ingests *raw* submissions — untrusted text straight off the
// measurement endpoint, as the paper's Firebase backend received them — and
// only hands validated, parsed `Submission`s to the collation graph. Every
// rejection is a typed reason, never UB or a silent drop.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fingerprint/vector.h"
#include "util/hash.h"

namespace wafp::service {

/// A submission as received from a client: fingerprint hash still in hex,
/// nothing trusted yet.
struct RawSubmission {
  std::uint32_t user = 0;
  std::uint32_t vector = 0;     // numeric fingerprint::VectorId
  std::uint64_t timestamp = 0;  // client-claimed, validated per user
  std::string efp_hex;          // 64 lowercase hex chars (SHA-256)
};

/// A validated submission: the digest is parsed, the vector id is known.
struct Submission {
  std::uint32_t user = 0;
  fingerprint::VectorId vector = fingerprint::VectorId::kDc;
  std::uint64_t timestamp = 0;
  util::Digest efp;
};

/// Why a submission was not accepted. kNone means it was.
enum class Reject {
  kNone,
  kMalformedHash,        // not 64 lowercase hex chars
  kUnknownVector,        // numeric id outside the registry
  kTimestampRegression,  // older than the user's latest accepted timestamp
  kQueueFull,            // bounded ingest queue at capacity (backpressure)
  kShutdown,             // service is stopping; resubmit after restart
};

/// Human-readable reject reason. The single place submit outcomes become
/// strings (CLI, tests, benches); implemented as an exhaustive switch with
/// no default, so adding a Reject enumerator without a string is a
/// compile-time -Wswitch error, never a silent "unknown".
[[nodiscard]] std::string_view to_string(Reject r);

/// Result of CollationEngine::submit(). Accepted submissions are queued,
/// not yet applied; rejected ones carry the reason.
struct SubmitResult {
  Reject reason = Reject::kNone;
  [[nodiscard]] bool accepted() const { return reason == Reject::kNone; }
};

/// Same mapping for a full result ("accepted" iff result.accepted()).
[[nodiscard]] std::string_view to_string(const SubmitResult& result);

/// Observable counters, mostly for tests and the CLI.
struct ServiceStats {
  std::uint64_t submitted = 0;       // submit() calls
  std::uint64_t accepted = 0;        // passed validation, enqueued
  std::uint64_t rejected_hash = 0;
  std::uint64_t rejected_vector = 0;
  std::uint64_t rejected_timestamp = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t dropped_by_fault = 0;     // fault-injected network drops
  std::uint64_t duplicated_by_fault = 0;  // fault-injected duplicates
  std::uint64_t applied = 0;              // reached the collation graph
  std::uint64_t wal_appends = 0;          // successful WAL record writes
  std::uint64_t wal_retries = 0;          // transient append failures retried
  std::uint64_t wal_append_failures = 0;  // retry budget exhausted (worker)
  std::uint64_t wal_tail_lines_dropped = 0;  // torn lines repaired at recovery
  std::uint64_t snapshots_written = 0;
  std::uint64_t recovered_from_snapshot = 0;  // submissions restored
  std::uint64_t recovered_from_wal = 0;       // submissions replayed
};

}  // namespace wafp::service
