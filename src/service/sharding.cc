#include "service/sharding.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace wafp::service {
namespace {

constexpr std::string_view kMetaHeader = "wafp-shards v1";

/// Parse shards.meta. Returns 0 on any structural problem (0 is never a
/// valid shard count, so it doubles as the error value); the caller turns
/// that into a diagnosable ShardLayoutError with the file path.
std::size_t parse_shard_meta(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return 0;
  std::string header;
  std::string count_line;
  if (!std::getline(in, header) || header != kMetaHeader) return 0;
  if (!std::getline(in, count_line)) return 0;
  if (count_line.rfind("shards,", 0) != 0) return 0;
  std::size_t value = 0;
  std::istringstream fields(count_line.substr(7));
  if (!(fields >> value) || !fields.eof()) return 0;
  return value;
}

}  // namespace

std::string shard_dir(const std::string& root, std::size_t index) {
  return (std::filesystem::path(root) / ("shard-" + std::to_string(index)))
      .string();
}

std::string shard_meta_path(const std::string& root) {
  return (std::filesystem::path(root) / "shards.meta").string();
}

void write_shard_meta(const std::string& root, std::size_t shard_count) {
  const std::string path = shard_meta_path(root);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << kMetaHeader << "\n"
        << "shards," << shard_count << "\n";
    if (!out.good()) {
      throw ShardLayoutError("cannot write shard layout metadata at " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw ShardLayoutError("cannot install shard layout metadata at " + path +
                           ": " + ec.message());
  }
}

void check_or_pin_shard_layout(const std::string& root,
                               std::size_t shard_count) {
  std::filesystem::create_directories(root);
  const std::string meta = shard_meta_path(root);
  if (std::filesystem::exists(meta)) {
    const std::size_t recorded = parse_shard_meta(meta);
    if (recorded == 0) {
      throw ShardLayoutError("unreadable shard layout metadata at " + meta +
                             " — refusing to guess a shard count");
    }
    if (recorded != shard_count) {
      throw ShardLayoutError(
          "shard layout mismatch at " + root + ": state was written with " +
          std::to_string(recorded) + " shard(s) but the engine was "
          "configured with " + std::to_string(shard_count) +
          "; reopening under a different modulus would misroute WAL replay");
    }
    return;
  }
  // No meta: the directory must be fresh. A single-engine layout or stray
  // shard directories mean prior state whose routing we cannot know.
  if (std::filesystem::exists(std::filesystem::path(root) /
                              "submissions.wal")) {
    throw ShardLayoutError(
        root + " holds single-engine CollationService state "
        "(submissions.wal); it cannot be opened as a sharded state dir");
  }
  for (std::size_t i = 0; i < 2; ++i) {
    // Probing shard-0/shard-1 catches every plausible orphaned layout:
    // any shard count >= 1 writes shard-0.
    if (std::filesystem::exists(shard_dir(root, i))) {
      throw ShardLayoutError(root + " holds shard state but no shards.meta; "
                             "refusing to guess its layout");
    }
  }
  write_shard_meta(root, shard_count);
}

}  // namespace wafp::service
