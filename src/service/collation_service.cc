#include "service/collation_service.h"

#include <algorithm>
#include <filesystem>
#include <memory>

#include "obs/span.h"
#include "util/check.h"

namespace wafp::service {

CollationService::CollationService(ServiceConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics ? *config_.metrics
                               : obs::MetricsRegistry::global()),
      queue_depth_gauge_(metrics_.gauge(
          "wafp_service_queue_depth", "Submissions waiting in the ingest "
                                      "queue")),
      ingest_apply_ns_(metrics_.histogram(
          "wafp_service_ingest_apply_ns",
          "Latency from submit() enqueue to graph apply (ns)")),
      wal_append_ns_(metrics_.histogram(
          "wafp_wal_append_ns",
          "One WAL append attempt, write through flush (ns)")),
      snapshot_ns_(metrics_.histogram("wafp_service_snapshot_ns",
                                      "Checkpoint (snapshot write + WAL "
                                      "truncate) duration (ns)")),
      wal_appends_counter_(metrics_.counter("wafp_wal_appends_total",
                                            "Successful WAL record writes")),
      wal_retries_counter_(metrics_.counter(
          "wafp_wal_retries_total", "Transient WAL append failures retried")),
      applied_counter_(metrics_.counter(
          "wafp_service_applied_total",
          "Submissions applied to the collation graph (excluding recovery "
          "replay)")),
      recovered_snapshot_counter_(metrics_.counter(
          "wafp_service_recovered_from_snapshot_total",
          "Submissions restored from the snapshot at recovery")),
      recovered_wal_counter_(metrics_.counter(
          "wafp_service_recovered_from_wal_total",
          "Submissions replayed from the WAL at recovery")) {
  if (!config_.sleeper) {
    config_.sleeper = [](std::chrono::milliseconds d) {
      std::this_thread::sleep_for(d);
    };
  }
  if (!config_.state_dir.empty()) {
    std::filesystem::create_directories(config_.state_dir);
    recover();
    // Open the WAL for appending only after replay read it.
    wal_ = std::make_unique<Wal>(wal_path(), &metrics_, config_.fsync_wal);
  }
}

CollationService::~CollationService() {
  stop();
  bool crashed = false;
  {
    util::MutexLock lock(mu_);
    crashed = crashed_;
  }
  if (!crashed && wal_ != nullptr) {
    try {
      drain_and_checkpoint();
    } catch (...) {
      // Destructors must not throw; an uncheckpointed tail stays in the
      // WAL, which recovery replays — nothing durable is lost.
    }
  }
}

std::string CollationService::wal_path() const {
  return (std::filesystem::path(config_.state_dir) / "submissions.wal")
      .string();
}

std::string CollationService::snapshot_path() const {
  return (std::filesystem::path(config_.state_dir) / "graph.snapshot")
      .string();
}

void CollationService::recover() {
  WAFP_SPAN_IN(metrics_, "service/recover");
  // Runs from the constructor, before any other thread can exist; the lock
  // is uncontended and exists so validator_/stats_ writes satisfy their
  // GUARDED_BY(mu_) contract without an analysis escape hatch.
  util::MutexLock lock(mu_);
  const auto snapshot = load_snapshot(snapshot_path());
  if (snapshot.has_value()) {
    graph_ = collation::FingerprintGraph::import_state(snapshot->graph);
    for (const auto& [user, ts] : snapshot->user_clocks) {
      validator_.observe_timestamp(user, ts);
    }
    stats_.applied = snapshot->applied;
    stats_.recovered_from_snapshot = snapshot->applied;
    recovered_snapshot_counter_.inc(snapshot->applied);
  }
  const WalReplay replay = Wal::replay(wal_path());
  for (const Submission& s : replay.records) {
    validator_.observe_timestamp(s.user, s.timestamp);
    graph_.add_observation(s.user, s.efp);
    ++stats_.applied;
    ++stats_.recovered_from_wal;
    ++applied_since_snapshot_;
  }
  recovered_wal_counter_.inc(replay.records.size());
  // A torn tail (or missing header) must be rewritten away before the WAL
  // reopens for append: a record appended onto a partial final line would
  // merge with it, and the *next* replay would stop at that merged line and
  // silently discard every valid record written after the tear.
  if (replay.needs_repair()) {
    Wal::repair(wal_path(), replay);
    stats_.wal_tail_lines_dropped += replay.corrupt_tail_lines;
  }
  // Note: if a crash hit between snapshot rename and WAL truncation, the
  // replayed records overlap the snapshot. add_observation is idempotent on
  // the partition, so the components are still exact; only the applied
  // counter can overcount across that narrow window.
}

SubmitResult CollationService::submit(const RawSubmission& raw) {
  util::MutexLock lock(mu_);
  ++stats_.submitted;
  if (crashed_) return {Reject::kShutdown};

  Submission s;
  const Reject reason = validator_.validate(raw, s);
  switch (reason) {
    case Reject::kMalformedHash: ++stats_.rejected_hash; return {reason};
    case Reject::kUnknownVector: ++stats_.rejected_vector; return {reason};
    case Reject::kTimestampRegression:
      ++stats_.rejected_timestamp;
      return {reason};
    default: break;
  }
  if (queue_.size() >= config_.queue_capacity) {
    ++stats_.rejected_queue_full;
    return {Reject::kQueueFull};
  }

  ++stats_.accepted;
  validator_.observe_timestamp(s.user, s.timestamp);
  const std::uint64_t ordinal = ++fault_clock_.accepted;
  if (FaultClock::hits(ordinal, config_.faults.drop_every)) {
    // Network loss after the ack: the submission never reaches the queue.
    ++stats_.dropped_by_fault;
    return {Reject::kNone};
  }
  const QueuedSubmission qs{s, metrics_.now_ns()};
  queue_.push_back(qs);
  if (FaultClock::hits(ordinal, config_.faults.duplicate_every)) {
    queue_.push_back(qs);  // duplicate delivery (may exceed the bound by one)
    ++stats_.duplicated_by_fault;
  }
  if (FaultClock::hits(ordinal, config_.faults.reorder_every) &&
      queue_.size() >= 2) {
    std::swap(queue_[queue_.size() - 1], queue_[queue_.size() - 2]);
  }
  queue_depth_gauge_.set(static_cast<std::int64_t>(queue_.size()));
  return {Reject::kNone};
}

void CollationService::append_with_retry(const Submission& s) {
  if (wal_ == nullptr) return;
  const std::uint64_t ordinal = ++fault_clock_.appends;
  const bool hard = ordinal == config_.faults.fail_append_hard_at;
  const bool transient =
      ordinal == config_.faults.fail_append_at ||
      FaultClock::hits(ordinal, config_.faults.fail_append_every);
  for (std::size_t attempt = 0; attempt <= config_.max_append_retries;
       ++attempt) {
    const bool inject = hard || (transient && attempt == 0);
    const std::uint64_t t0 = metrics_.now_ns();
    const bool ok = wal_->append(s, inject);
    wal_append_ns_.observe(metrics_.now_ns() - t0);
    if (ok) {
      wal_appends_counter_.inc();
      {
        util::MutexLock lock(mu_);
        ++stats_.wal_appends;
      }
      return;
    }
    wal_retries_counter_.inc();
    {
      util::MutexLock lock(mu_);
      ++stats_.wal_retries;
    }
    if (attempt < config_.max_append_retries) {
      config_.sleeper(config_.retry_backoff * (1u << attempt));
    }
  }
  throw WalAppendError("WAL append failed after " +
                       std::to_string(1 + config_.max_append_retries) +
                       " attempts");
}

std::size_t CollationService::pump(std::size_t max_records) {
  // Enforce the single-caller contract: pump-owned state (graph_, wal_,
  // applied_since_snapshot_) is mutex-free by design, so a second
  // concurrent caller is memory corruption, not a performance bug. Abort
  // loudly instead.
  WAFP_CHECK(!pump_active_.exchange(true, std::memory_order_acquire))
      << "CollationService::pump entered while another pump is in flight; "
         "exactly one caller (or the background worker) may pump at a time";
  struct PumpOwner {
    std::atomic<bool>& active;
    ~PumpOwner() { active.store(false, std::memory_order_release); }
  } owner{pump_active_};

  std::size_t applied = 0;
  while (applied < max_records) {
    QueuedSubmission qs;
    {
      util::MutexLock lock(mu_);
      if (queue_.empty() || crashed_) break;
      qs = queue_.front();
      queue_.pop_front();
      queue_depth_gauge_.set(static_cast<std::int64_t>(queue_.size()));
    }
    try {
      append_with_retry(qs.s);
    } catch (...) {
      // Not durable => not applied. Requeue at the front so a later pump
      // (or an operator intervention) can retry in order.
      util::MutexLock lock(mu_);
      queue_.push_front(qs);
      queue_depth_gauge_.set(static_cast<std::int64_t>(queue_.size()));
      throw;
    }
    apply(qs.s);
    ingest_apply_ns_.observe(metrics_.now_ns() - qs.enqueued_ns);
    ++applied;
    maybe_snapshot();
  }
  return applied;
}

void CollationService::apply(const Submission& s) {
  graph_.add_observation(s.user, s.efp);
  ++applied_since_snapshot_;
  applied_counter_.inc();
  util::MutexLock lock(mu_);
  ++stats_.applied;
}

void CollationService::maybe_snapshot() {
  if (wal_ == nullptr || config_.snapshot_every == 0) return;
  if (applied_since_snapshot_ < config_.snapshot_every) return;
  checkpoint();
}

void CollationService::checkpoint() {
  if (wal_ == nullptr) return;
  WAFP_SPAN_IN(metrics_, "service/checkpoint");
  const std::uint64_t t0 = metrics_.now_ns();
  SnapshotState state;
  {
    // mu_ also covers validator_: submit() writes user clocks concurrently.
    util::MutexLock lock(mu_);
    state.applied = stats_.applied;
    state.user_clocks.assign(validator_.clocks().begin(),
                             validator_.clocks().end());
  }
  state.graph = graph_.export_state();
  if (!write_snapshot(snapshot_path(), state)) return;  // keep WAL intact
  if (config_.faults.corrupt_snapshot) {
    corrupt_snapshot_file(snapshot_path());
  }
  wal_->reset();
  applied_since_snapshot_ = 0;
  snapshot_ns_.observe(metrics_.now_ns() - t0);
  util::MutexLock lock(mu_);
  ++stats_.snapshots_written;
}

void CollationService::drain_and_checkpoint() {
  stop();
  while (pump() > 0) {
  }
  if (wal_ != nullptr && applied_since_snapshot_ > 0) checkpoint();
}

void CollationService::crash() {
  stop();
  util::MutexLock lock(mu_);
  crashed_ = true;
  queue_.clear();
  queue_depth_gauge_.set(0);
  graph_ = collation::FingerprintGraph();
}

void CollationService::start() {
  if (running_.exchange(true)) return;
  util::MutexLock lock(worker_mu_);
  if (worker_.joinable()) worker_.join();  // reap a self-stopped worker
  worker_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      std::size_t applied = 0;
      try {
        applied = pump(256);
      } catch (const WalAppendError&) {
        // pump() already requeued the submission. An exception escaping a
        // thread function would std::terminate the process, so record the
        // hard failure and park the worker; queued work stays intact for a
        // manual pump() or a restarted worker to retry. Clear running_
        // *before* publishing the stat so an observer that sees the failure
        // count can immediately start() a replacement worker.
        running_.store(false, std::memory_order_relaxed);
        {
          util::MutexLock lock(mu_);
          ++stats_.wal_append_failures;
        }
        break;
      }
      if (applied == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  });
}

void CollationService::stop() {
  running_.store(false, std::memory_order_relaxed);
  util::MutexLock lock(worker_mu_);
  if (worker_.joinable()) worker_.join();
}

ServiceStats CollationService::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

std::uint64_t CollationService::max_observed_timestamp() const {
  util::MutexLock lock(mu_);
  std::uint64_t newest = 0;
  for (const auto& [user, ts] : validator_.clocks()) {
    newest = std::max(newest, ts);
  }
  return newest;
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
CollationService::user_clocks() const {
  util::MutexLock lock(mu_);
  return {validator_.clocks().begin(), validator_.clocks().end()};
}

}  // namespace wafp::service
