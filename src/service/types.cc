#include "service/types.h"

#include "util/check.h"

namespace wafp::service {

std::string_view to_string(Reject r) {
  // Exhaustive on purpose: no default case, so a new enumerator is a
  // -Wswitch diagnostic here rather than a silently unmapped reject.
  switch (r) {
    case Reject::kNone: return "accepted";
    case Reject::kMalformedHash: return "malformed hash";
    case Reject::kUnknownVector: return "unknown vector";
    case Reject::kTimestampRegression: return "timestamp regression";
    case Reject::kQueueFull: return "queue full";
    case Reject::kShutdown: return "shutting down";
  }
  WAFP_CHECK(false) << "unhandled Reject value "
                    << static_cast<int>(r);
  return "unreachable";
}

std::string_view to_string(const SubmitResult& result) {
  return to_string(result.reason);
}

}  // namespace wafp::service
