#include "service/sharded_collation_service.h"

#include <bit>
#include <exception>
#include <thread>
#include <utility>

#include "util/check.h"

namespace wafp::service {
namespace {

/// Round-robin pump granularity: small enough that no shard's queue starves
/// behind another's backlog, large enough to amortize the virtual call.
constexpr std::size_t kPumpChunk = 256;

}  // namespace

ShardedCollationService::ShardedCollationService(ShardedServiceConfig config)
    : config_(std::move(config)),
      metrics_(config_.base.metrics != nullptr
                   ? *config_.base.metrics
                   : obs::MetricsRegistry::global()),
      submissions_counter_(metrics_.counter(
          "wafp_shard_submissions_total",
          "Router-level submit() calls on the sharded collation engine")),
      migrations_counter_(metrics_.counter(
          "wafp_shard_migrations_total",
          "Durable cross-shard migration records (a user's first fingerprint "
          "routed to a shard they were not yet resident on)")),
      cross_shard_users_gauge_(metrics_.gauge(
          "wafp_shard_cross_shard_users",
          "Users currently resident on more than one shard")),
      view_builds_counter_(metrics_.counter(
          "wafp_shard_merged_view_builds_total",
          "Merged global graph view rebuilds (epoch cache misses)")),
      view_build_ns_(metrics_.histogram(
          "wafp_shard_merged_view_build_ns",
          "Merged global graph view rebuild duration (ns)")),
      recovery_ns_(metrics_.histogram(
          "wafp_shard_recovery_ns",
          "Per-shard recovery duration at engine construction (ns)")) {
  WAFP_CHECK(config_.shards >= 1 && config_.shards <= kMaxShards)
      << "shard count " << config_.shards << " outside [1, " << kMaxShards
      << "]";
  const bool durable = !config_.base.state_dir.empty();
  if (durable) {
    check_or_pin_shard_layout(config_.base.state_dir, config_.shards);
  }

  auto shard_config = [&](std::size_t index) {
    ServiceConfig c = config_.base;
    c.metrics = &metrics_;
    c.state_dir =
        durable ? shard_dir(config_.base.state_dir, index) : std::string();
    // Network faults (drop/duplicate) run at the router on *global*
    // accepted ordinals so the fault schedule matches the single-shard
    // engine; only storage faults and reordering stay per shard.
    c.faults.drop_every = 0;
    c.faults.duplicate_every = 0;
    return c;
  };

  // Each shard recovers its own snapshot + WAL at construction; with
  // several durable shards that is embarrassingly parallel.
  shards_.resize(config_.shards);
  auto build_shard = [&](std::size_t index) {
    const std::uint64_t t0 = metrics_.now_ns();
    shards_[index] = std::make_unique<CollationService>(shard_config(index));
    recovery_ns_.observe(metrics_.now_ns() - t0);
  };
  if (config_.parallel_recovery && durable && config_.shards > 1) {
    std::vector<std::exception_ptr> errors(config_.shards);
    std::vector<std::thread> workers;
    workers.reserve(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i) {
      workers.emplace_back([&, i] {
        try {
          build_shard(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (std::thread& w : workers) w.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  } else {
    for (std::size_t i = 0; i < config_.shards; ++i) build_shard(i);
  }

  // Re-arm the router from recovered shard state: global per-user clocks
  // are the max over shard clocks (observe_timestamp max-merges), and
  // residency masks come straight from the shard graphs.
  util::MutexLock lock(mu_);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    for (const auto& [user, ts] : shards_[i]->user_clocks()) {
      validator_.observe_timestamp(user, ts);
    }
    for (const auto& [user, node] : shards_[i]->graph().export_state().users) {
      note_residency_locked(user, i);
    }
  }
  // Recovery-time residency expansions are not migrations — forget them.
  migration_records_ = 0;
}

ShardedCollationService::~ShardedCollationService() {
  // Stop the shard workers before the members unwind; each shard's own
  // destructor then drains + checkpoints (unless crashed), exactly as a
  // standalone service would.
  stop();
}

SubmitResult ShardedCollationService::submit(const RawSubmission& raw) {
  util::MutexLock lock(mu_);
  submissions_counter_.inc();
  ++stats_.submitted;
  if (crashed_) return {Reject::kShutdown};

  Submission s;
  const Reject reason = validator_.validate(raw, s);
  switch (reason) {
    case Reject::kMalformedHash:
      ++stats_.rejected_hash;
      return {reason};
    case Reject::kUnknownVector:
      ++stats_.rejected_vector;
      return {reason};
    case Reject::kTimestampRegression:
      ++stats_.rejected_timestamp;
      return {reason};
    case Reject::kNone:
      break;
    case Reject::kQueueFull:
    case Reject::kShutdown:
      WAFP_CHECK(false) << "validator returned pipeline-stage reject "
                        << to_string(reason);
  }

  const std::size_t target = shard_for_digest(s.efp, shards_.size());

  // Peek the next global fault ordinal without committing it: a queue-full
  // rejection must consume no ordinal and observe no timestamp, matching
  // the single engine (the caller's resubmit then lands on the same
  // schedule slot).
  const std::uint64_t ordinal = fault_clock_.accepted + 1;
  const bool drop = FaultClock::hits(ordinal, config_.base.faults.drop_every);
  if (!drop) {
    const SubmitResult forwarded = shards_[target]->submit(raw);
    if (forwarded.reason == Reject::kQueueFull) {
      ++stats_.rejected_queue_full;
      return forwarded;
    }
    // The router already validated globally; the shard's own validator is
    // strictly weaker (its clocks are a subset), so any other rejection is
    // a bug, not backpressure.
    WAFP_CHECK(forwarded.accepted())
        << "shard " << target << " rejected a router-validated submission: "
        << to_string(forwarded);
  }
  fault_clock_.accepted = ordinal;
  ++stats_.accepted;
  validator_.observe_timestamp(s.user, s.timestamp);
  if (drop) {
    // Simulated network loss: acknowledged upstream, never reaches a shard.
    ++stats_.dropped_by_fault;
    return {Reject::kNone};
  }
  note_residency_locked(s.user, target);
  if (FaultClock::hits(ordinal, config_.base.faults.duplicate_every)) {
    ++stats_.duplicated_by_fault;
    // Duplicate delivery routes identically (same digest); if it bounces
    // off a full shard queue the duplicate is simply lost, which is fine —
    // duplicates are semantically invisible either way.
    (void)shards_[target]->submit(raw);
  }
  return {Reject::kNone};
}

std::size_t ShardedCollationService::pump(std::size_t max_records) {
  // Round-robin in bounded chunks until every shard reports an empty
  // queue (or the budget runs out). WalAppendError from a shard
  // propagates; the failed record stays queued on that shard, same as the
  // single engine's contract.
  std::size_t total = 0;
  bool progress = true;
  while (progress && total < max_records) {
    progress = false;
    for (const auto& shard : shards_) {
      if (total >= max_records) break;
      const std::size_t budget = std::min(kPumpChunk, max_records - total);
      const std::size_t pumped = shard->pump(budget);
      total += pumped;
      if (pumped > 0) progress = true;
    }
  }
  return total;
}

void ShardedCollationService::start() {
  for (const auto& shard : shards_) shard->start();
}

void ShardedCollationService::stop() {
  for (const auto& shard : shards_) shard->stop();
}

void ShardedCollationService::drain_and_checkpoint() {
  for (const auto& shard : shards_) shard->drain_and_checkpoint();
}

void ShardedCollationService::crash() {
  for (const auto& shard : shards_) shard->crash();
  util::MutexLock lock(mu_);
  crashed_ = true;
  residency_.clear();
  cross_shard_users_ = 0;
  cross_shard_users_gauge_.set(0);
  generation_.fetch_add(1, std::memory_order_relaxed);
}

ServiceStats ShardedCollationService::stats() const {
  ServiceStats s;
  {
    util::MutexLock lock(mu_);
    s = stats_;
  }
  // Ingest-side counters above are router-truth (shard-level submitted /
  // accepted would double-count router forwards); everything from the WAL
  // down lives on the shards.
  for (const auto& shard : shards_) {
    const ServiceStats ss = shard->stats();
    s.applied += ss.applied;
    s.wal_appends += ss.wal_appends;
    s.wal_retries += ss.wal_retries;
    s.wal_append_failures += ss.wal_append_failures;
    s.wal_tail_lines_dropped += ss.wal_tail_lines_dropped;
    s.snapshots_written += ss.snapshots_written;
    s.recovered_from_snapshot += ss.recovered_from_snapshot;
    s.recovered_from_wal += ss.recovered_from_wal;
  }
  return s;
}

ShardedStats ShardedCollationService::sharded_stats() const {
  ShardedStats s;
  s.shards = shards_.size();
  {
    util::MutexLock lock(mu_);
    s.migration_records = migration_records_;
    s.cross_shard_users = cross_shard_users_;
  }
  {
    util::MutexLock lock(view_mu_);
    s.merged_view_builds = view_builds_;
  }
  return s;
}

std::uint64_t ShardedCollationService::max_observed_timestamp() const {
  util::MutexLock lock(mu_);
  std::uint64_t max_ts = 0;
  for (const auto& [user, ts] : validator_.clocks()) {
    if (ts > max_ts) max_ts = ts;
  }
  return max_ts;
}

std::uint64_t ShardedCollationService::component_checksum() const {
  return with_merged_view(
      [](const collation::FingerprintGraph& g) {
        return g.component_checksum();
      });
}

std::size_t ShardedCollationService::cluster_count() const {
  return with_merged_view(
      [](const collation::FingerprintGraph& g) { return g.cluster_count(); });
}

std::size_t ShardedCollationService::user_count() const {
  return with_merged_view(
      [](const collation::FingerprintGraph& g) { return g.user_count(); });
}

std::size_t ShardedCollationService::fingerprint_count() const {
  return with_merged_view([](const collation::FingerprintGraph& g) {
    return g.fingerprint_count();
  });
}

std::vector<std::size_t> ShardedCollationService::cluster_user_counts() const {
  return with_merged_view([](const collation::FingerprintGraph& g) {
    return g.cluster_user_counts();
  });
}

std::optional<std::size_t> ShardedCollationService::match(
    std::span<const util::Digest> probe) const {
  return with_merged_view(
      [probe](const collation::FingerprintGraph& g) { return g.match(probe); });
}

std::optional<std::size_t> ShardedCollationService::user_component(
    std::uint32_t user) const {
  return with_merged_view([user](const collation::FingerprintGraph& g) {
    return g.user_component(user);
  });
}

void ShardedCollationService::note_residency_locked(std::uint32_t user,
                                                    std::size_t shard) {
  const std::uint64_t bit = std::uint64_t{1} << shard;
  auto [it, inserted] = residency_.try_emplace(user, bit);
  if (inserted || (it->second & bit) != 0) return;
  it->second |= bit;
  ++migration_records_;
  migrations_counter_.inc();
  if (std::popcount(it->second) == 2) {
    ++cross_shard_users_;
    cross_shard_users_gauge_.set(
        static_cast<std::int64_t>(cross_shard_users_));
  }
}

void ShardedCollationService::refresh_view_locked() const {
  std::vector<std::uint64_t> epoch;
  epoch.reserve(shards_.size() + 1);
  epoch.push_back(generation_.load(std::memory_order_relaxed));
  for (const auto& shard : shards_) {
    // Applied count is the graph-mutation epoch: the shard graph changes
    // iff a record was applied, and crashes bump the generation above.
    epoch.push_back(shard->stats().applied);
  }
  if (view_ != nullptr && view_epoch_ == epoch) return;
  const std::uint64_t t0 = metrics_.now_ns();
  auto fresh = std::make_unique<collation::FingerprintGraph>();
  for (const auto& shard : shards_) {
    fresh->merge_state(shard->graph().export_state());
  }
  view_ = std::move(fresh);
  view_epoch_ = std::move(epoch);
  ++view_builds_;
  view_builds_counter_.inc();
  view_build_ns_.observe(metrics_.now_ns() - t0);
}

std::unique_ptr<CollationEngine> make_engine(const ServiceConfig& base,
                                             std::size_t shards) {
  if (shards == 0) return std::make_unique<CollationService>(base);
  ShardedServiceConfig config;
  config.base = base;
  config.shards = shards;
  return std::make_unique<ShardedCollationService>(std::move(config));
}

}  // namespace wafp::service
