// Shard routing and on-disk layout metadata for the sharded collation
// engine (DESIGN.md §3j).
//
// The bipartite user↔fingerprint graph is partitioned by *fingerprint*
// hash: every edge (user, efp) lives on exactly one shard, so elementary
// fingerprints never span shards and users are the only cross-shard glue.
// The routing function is part of the durable format — records in shard
// k's WAL are only replayed into shard k — so a state directory written
// with one shard count must never be opened with another. A `shards.meta`
// file pins the layout and recovery hard-fails on any mismatch with a
// typed, diagnosable ShardLayoutError instead of silently misrouting.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/hash.h"

namespace wafp::service {

/// Thrown when a state directory's recorded shard layout conflicts with
/// the configuration trying to open it (different shard count, foreign or
/// unreadable metadata, or a single-engine layout). Recovery refuses to
/// proceed: replaying shard k's WAL under a different modulus would route
/// edges to the wrong graphs and silently corrupt the partition.
class ShardLayoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The routing function: which shard owns every edge bearing this
/// elementary fingerprint. Stable across runs (it feeds the durable
/// layout); uniform because the digest is already a SHA-256.
[[nodiscard]] inline std::size_t shard_for_digest(const util::Digest& efp,
                                                  std::size_t shard_count) {
  return static_cast<std::size_t>(efp.prefix64() % shard_count);
}

/// Subdirectory of the engine root that shard `index` persists into.
[[nodiscard]] std::string shard_dir(const std::string& root,
                                    std::size_t index);

/// Path of the layout-pinning metadata file under `root`.
[[nodiscard]] std::string shard_meta_path(const std::string& root);

/// Record `shard_count` in root's shards.meta (atomic tmp+rename). Throws
/// ShardLayoutError on I/O failure — an unpinned layout is not safe to
/// write shard state under.
void write_shard_meta(const std::string& root, std::size_t shard_count);

/// Validate `root` against `shard_count` before any shard recovers:
///   * fresh directory (no meta, no shard state) => writes the meta;
///   * meta present and matching                 => ok;
///   * meta present but different count, meta unparseable, shard state
///     with no meta, or a single-engine layout (submissions.wal) in root
///     => throws ShardLayoutError naming the conflict.
void check_or_pin_shard_layout(const std::string& root,
                               std::size_t shard_count);

}  // namespace wafp::service
