// ShardedCollationService: the partitioned collation engine (DESIGN.md
// §3j) — the same validate -> queue -> WAL -> graph pipeline as
// CollationService, scaled out over N fingerprint-hash shards.
//
// Layout. Every edge (user, efp) of the bipartite graph lives on exactly
// one shard, chosen by shard_for_digest(efp): elementary fingerprints
// never span shards, so *users* are the only cross-shard glue. Each shard
// is a full CollationService — its own bounded ingest queue, CRC-checked
// WAL with torn-tail repair, checksum-verified snapshots with periodic
// compaction (WAL truncation), and its own apply worker under start().
//
// Router. submit() validates once, globally (per-user monotone clocks span
// shards — a per-shard clock would be a weaker guarantee), then routes to
// the owning shard. The router also runs the *network* fault schedule
// (drop/duplicate) on global accepted ordinals, so a fault plan produces
// the same drop model on this engine as on the single-shard one — the
// brute-force oracle for one is the oracle for both. Storage faults
// (append failures, snapshot corruption) run per shard, where the storage
// is.
//
// Cross-shard union protocol. A user whose fingerprints land on several
// shards must merge those shards' local components into one global
// cluster. No distributed transaction is needed: the WAL append on the new
// shard *is* the durable migration record (user identity is
// content-addressed glue — any replay of the shard WALs reconstructs the
// same residency), and the router merely tracks user->shard residency and
// counts migrations. The global partition is materialized lazily at epoch
// boundaries: queries fold each shard's partition export into one merged
// FingerprintGraph (FingerprintGraph::merge_state), cached against a
// per-shard applied-count epoch vector and rebuilt only when some shard
// applied new records. Memory stays bounded: per-user router state is a
// clock plus a 64-bit residency mask, the merged view is a transient that
// is dropped on staleness (and never even cached with
// cache_merged_view=false), and per-shard WALs are compacted away by
// snapshots.
//
// Recovery. Construction recovers every shard in parallel (each shard
// replays its own snapshot + WAL and repairs its own torn tail), then
// re-arms the router's global clocks by max-merging the shards' recovered
// per-user clocks and rebuilds residency from the shard graphs. A state
// directory written under a different shard count is a hard
// ShardLayoutError (see sharding.h), never a silent misroute.
//
// Correctness bar: component_checksum() over the merged view must equal a
// single CollationService's checksum for the same applied observations —
// at any shard count, under faults, and across kill-every-k crash
// recovery (tests/conformance/sharded_oracle_test.cc).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "collation/fingerprint_graph.h"
#include "obs/metrics.h"
#include "service/collation_service.h"
#include "service/engine.h"
#include "service/sharding.h"
#include "service/types.h"
#include "service/validator.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace wafp::service {

struct ShardedServiceConfig {
  /// Per-shard configuration template. state_dir is the *engine root*
  /// (shard i persists under <state_dir>/shard-<i>; empty = volatile);
  /// queue_capacity and snapshot_every apply per shard; faults follow the
  /// split documented above (drop/duplicate at the router on global
  /// ordinals, reorder and storage faults per shard).
  ServiceConfig base;

  /// Number of shards, 1..64 (the residency mask is one word). The shard
  /// count is pinned into the state dir's shards.meta on first use.
  std::size_t shards = 4;

  /// Recover shards concurrently at construction (one thread per shard).
  bool parallel_recovery = true;

  /// Keep the merged global view alive between queries while no shard has
  /// applied new records. Off = rebuild per query and free it afterwards
  /// (minimal steady-state memory; global queries become O(graph) each).
  bool cache_merged_view = true;
};

/// Router-level extras beyond the aggregated ServiceStats.
struct ShardedStats {
  std::size_t shards = 0;
  std::uint64_t migration_records = 0;  // user first seen on an extra shard
  std::uint64_t cross_shard_users = 0;  // users resident on >1 shard now
  std::uint64_t merged_view_builds = 0;
};

class ShardedCollationService final : public CollationEngine {
 public:
  /// Largest supported shard count (residency masks are std::uint64_t).
  static constexpr std::size_t kMaxShards = 64;

  /// Construction validates the on-disk layout (ShardLayoutError on a
  /// shard-count mismatch) and recovers every shard; rethrows the first
  /// shard recovery error (e.g. SnapshotCorruptError).
  explicit ShardedCollationService(ShardedServiceConfig config);
  ~ShardedCollationService() override;

  SubmitResult submit(const RawSubmission& raw) override;
  std::size_t pump(std::size_t max_records = SIZE_MAX) override;
  void start() override;
  void stop() override;
  void drain_and_checkpoint() override;
  void crash() override;

  /// Aggregated stats: ingest-side counters (submitted/accepted/rejects/
  /// fault drops) are router-level; apply/WAL/snapshot/recovery counters
  /// are summed over the shards.
  [[nodiscard]] ServiceStats stats() const override;
  [[nodiscard]] ShardedStats sharded_stats() const;

  [[nodiscard]] std::uint64_t max_observed_timestamp() const override;

  [[nodiscard]] std::uint64_t component_checksum() const override;
  [[nodiscard]] std::size_t cluster_count() const override;
  [[nodiscard]] std::size_t user_count() const override;
  [[nodiscard]] std::size_t fingerprint_count() const override;
  [[nodiscard]] std::vector<std::size_t> cluster_user_counts() const override;
  [[nodiscard]] std::optional<std::size_t> match(
      std::span<const util::Digest> probe) const override;
  [[nodiscard]] std::optional<std::size_t> user_component(
      std::uint32_t user) const override;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Direct shard access for tests and diagnostics (same quiescence rules
  /// as the shard's own query surface).
  [[nodiscard]] const CollationService& shard(std::size_t index) const {
    return *shards_[index];
  }

 private:
  void note_residency_locked(std::uint32_t user, std::size_t shard)
      WAFP_REQUIRES(mu_);

  /// Rebuild the merged global view if any shard applied records since the
  /// cached epoch (or the engine crashed/recovered).
  void refresh_view_locked() const WAFP_REQUIRES(view_mu_);

  /// Run `fn` against the merged global view under view_mu_; drops the
  /// view afterwards when caching is disabled.
  template <typename Fn>
  auto with_merged_view(Fn&& fn) const {
    util::MutexLock lock(view_mu_);
    refresh_view_locked();
    auto result = fn(*view_);
    if (!config_.cache_merged_view) {
      view_.reset();
      view_epoch_.clear();
    }
    return result;
  }

  ShardedServiceConfig config_;

  obs::MetricsRegistry& metrics_;
  obs::Counter& submissions_counter_;
  obs::Counter& migrations_counter_;
  obs::Gauge& cross_shard_users_gauge_;
  obs::Counter& view_builds_counter_;
  obs::Histogram& view_build_ns_;
  obs::Histogram& recovery_ns_;

  /// Construction-immutable after the constructor returns.
  std::vector<std::unique_ptr<CollationService>> shards_;

  mutable util::Mutex mu_;
  SubmissionValidator validator_ WAFP_GUARDED_BY(mu_);
  /// user -> bitmask of shards holding at least one of their fingerprints.
  std::unordered_map<std::uint32_t, std::uint64_t> residency_
      WAFP_GUARDED_BY(mu_);
  ServiceStats stats_ WAFP_GUARDED_BY(mu_);
  std::uint64_t migration_records_ WAFP_GUARDED_BY(mu_) = 0;
  std::uint64_t cross_shard_users_ WAFP_GUARDED_BY(mu_) = 0;
  FaultClock fault_clock_ WAFP_GUARDED_BY(mu_);
  bool crashed_ WAFP_GUARDED_BY(mu_) = false;

  /// Bumped on crash() so the view epoch can't alias a pre-crash state.
  std::atomic<std::uint64_t> generation_{0};

  mutable util::Mutex view_mu_;
  mutable std::unique_ptr<collation::FingerprintGraph> view_
      WAFP_GUARDED_BY(view_mu_);
  /// [generation, shard 0 applied, shard 1 applied, ...] at build time.
  mutable std::vector<std::uint64_t> view_epoch_ WAFP_GUARDED_BY(view_mu_);
  mutable std::uint64_t view_builds_ WAFP_GUARDED_BY(view_mu_) = 0;
};

/// Engine factory: `shards` == 0 builds the single-loop CollationService,
/// >= 1 builds a ShardedCollationService with that many shards (1 included
/// — a one-shard engine exercises the router/merge machinery and must
/// agree with the single engine bit-for-bit). `base.state_dir` keeps its
/// engine-specific meaning (service dir vs shard root).
[[nodiscard]] std::unique_ptr<CollationEngine> make_engine(
    const ServiceConfig& base, std::size_t shards);

}  // namespace wafp::service
