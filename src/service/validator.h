// Submission validation: the trust boundary between the network and the
// collation graph. Everything downstream (WAL, snapshots, the graph) may
// assume a `Submission` is well-formed because it can only be produced here.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "service/types.h"

namespace wafp::service {

/// Stateful validator: tracks the newest accepted timestamp per user so
/// client-claimed clocks must be non-decreasing *per user* (equal is fine —
/// several vectors are submitted per visit). Cross-user ordering is
/// unconstrained; real submissions interleave arbitrarily.
class SubmissionValidator {
 public:
  /// Validate `raw`; on success fills `out`. Does NOT record the
  /// timestamp — callers call observe_timestamp() once the submission is
  /// actually admitted, so a rejection further down the pipeline (e.g.
  /// queue backpressure) leaves the user's clock untouched.
  [[nodiscard]] Reject validate(const RawSubmission& raw,
                                Submission& out) const;

  /// Re-arm the per-user clocks from recovered state (crash recovery replays
  /// the WAL through the validator too, so post-recovery ingest keeps the
  /// same monotonicity guarantee the uninterrupted run had).
  void observe_timestamp(std::uint32_t user, std::uint64_t timestamp);

  [[nodiscard]] std::optional<std::uint64_t> last_timestamp(
      std::uint32_t user) const;

  /// All per-user clocks (snapshotted alongside the graph).
  [[nodiscard]] const std::unordered_map<std::uint32_t, std::uint64_t>&
  clocks() const {
    return last_timestamp_;
  }

 private:
  std::unordered_map<std::uint32_t, std::uint64_t> last_timestamp_;
};

/// Stateless pieces, exposed for tests.
[[nodiscard]] bool is_valid_efp_hex(std::string_view hex);
[[nodiscard]] bool is_known_vector(std::uint32_t raw);
[[nodiscard]] std::optional<util::Digest> parse_efp_hex(std::string_view hex);

}  // namespace wafp::service
