// Umbrella header for the webaudio-fp library: a C++ reproduction of
// "Your Speaker or My Snooper? Measuring the Effectiveness of Web Audio
// Browser Fingerprints" (IMC '22). Include this to get the full public API;
// fine-grained headers remain available for leaner builds.
//
// Layering (each layer only depends on those above it):
//   util       -> hashing, deterministic RNG, CSV, tables
//   dsp        -> FFT engines, math-library variants, windows, FMA/denormal
//   webaudio   -> the offline Web Audio rendering engine
//   platform   -> the simulated browser/device population
//   fingerprint-> the paper's 7 vectors (+ extensions), render cache,
//                 fickleness model
//   collation  -> the paper's user<->fingerprint graph (+ dynamic
//                 connectivity / expiring variant)
//   analysis   -> entropy, AMI, anonymity sets
//   study      -> dataset collection and every paper experiment
#pragma once

#include "util/csv.h"          // IWYU pragma: export
#include "util/hash.h"         // IWYU pragma: export
#include "util/rng.h"          // IWYU pragma: export
#include "util/stats.h"        // IWYU pragma: export
#include "util/table.h"        // IWYU pragma: export
#include "util/wav.h"          // IWYU pragma: export

#include "dsp/denormal.h"      // IWYU pragma: export
#include "dsp/fft.h"           // IWYU pragma: export
#include "dsp/fma.h"           // IWYU pragma: export
#include "dsp/math_library.h"  // IWYU pragma: export
#include "dsp/window.h"        // IWYU pragma: export

#include "webaudio/analyser_node.h"            // IWYU pragma: export
#include "webaudio/audio_buffer.h"             // IWYU pragma: export
#include "webaudio/audio_bus.h"                // IWYU pragma: export
#include "webaudio/audio_node.h"               // IWYU pragma: export
#include "webaudio/audio_param.h"              // IWYU pragma: export
#include "webaudio/biquad_filter_node.h"       // IWYU pragma: export
#include "webaudio/channel_merger_node.h"      // IWYU pragma: export
#include "webaudio/delay_node.h"               // IWYU pragma: export
#include "webaudio/dynamics_compressor_node.h" // IWYU pragma: export
#include "webaudio/engine_config.h"            // IWYU pragma: export
#include "webaudio/gain_node.h"                // IWYU pragma: export
#include "webaudio/iir_filter_node.h"          // IWYU pragma: export
#include "webaudio/offline_audio_context.h"    // IWYU pragma: export
#include "webaudio/oscillator_node.h"          // IWYU pragma: export
#include "webaudio/periodic_wave.h"            // IWYU pragma: export
#include "webaudio/script_processor_node.h"    // IWYU pragma: export
#include "webaudio/source_nodes.h"             // IWYU pragma: export
#include "webaudio/wave_shaper_node.h"         // IWYU pragma: export

#include "platform/canvas_sim.h"         // IWYU pragma: export
#include "platform/catalog.h"            // IWYU pragma: export
#include "platform/population.h"         // IWYU pragma: export
#include "platform/profile.h"            // IWYU pragma: export
#include "platform/synthetic_vectors.h"  // IWYU pragma: export

#include "fingerprint/collector.h"     // IWYU pragma: export
#include "fingerprint/render_cache.h"  // IWYU pragma: export
#include "fingerprint/vector.h"        // IWYU pragma: export

#include "collation/disjoint_set.h"          // IWYU pragma: export
#include "collation/dynamic_connectivity.h"  // IWYU pragma: export
#include "collation/expiring_graph.h"        // IWYU pragma: export
#include "collation/fingerprint_graph.h"     // IWYU pragma: export

#include "analysis/ami.h"        // IWYU pragma: export
#include "analysis/anonymity.h"  // IWYU pragma: export
#include "analysis/bootstrap.h"  // IWYU pragma: export
#include "analysis/conditional.h"  // IWYU pragma: export
#include "analysis/entropy.h"    // IWYU pragma: export

#include "study/dataset.h"      // IWYU pragma: export
#include "study/experiments.h"  // IWYU pragma: export
#include "study/report.h"       // IWYU pragma: export
