// Deterministic pseudo-random generation for the study simulator.
//
// Every stochastic decision in the reproduction (population sampling, jitter
// states, chaotic glitches) is driven by named, seeded streams so that the
// whole 2093-user study is bit-reproducible run to run.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace wafp::util {

/// SplitMix64: used to derive stream seeds from a master seed plus a label.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Derive a child seed from (seed, label) deterministically.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed,
                                        std::string_view label);
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed,
                                        std::uint64_t index);

/// xoshiro256** 1.0 — fast, high-quality, deterministic across platforms
/// (unlike std::mt19937 distributions, whose results are unspecified).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool next_bool(double p_true);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic; no cached spare).
  double next_gaussian();

  /// Fork a deterministically-derived child stream.
  [[nodiscard]] Rng fork(std::string_view label) const;
  [[nodiscard]] Rng fork(std::uint64_t index) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

/// O(1) sampling from a fixed categorical distribution (Walker/Vose alias
/// method). Used for drawing device archetypes from the weighted catalog.
class CategoricalSampler {
 public:
  /// Weights need not be normalized; they must be non-negative with a
  /// positive sum.
  explicit CategoricalSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
};

/// Zipf(s) over ranks {1..n}; used to give attribute values (browser builds,
/// GPU models, ...) the long-tailed popularity seen in real populations.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Returns a rank in [0, n).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace wafp::util
