#include "util/rng.h"

#include <bit>
#include <cmath>
#include <numbers>
#include <numeric>

#include "util/check.h"
#include "util/hash.h"
#include "util/portable_math.h"

namespace wafp::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t seed, std::string_view label) {
  std::uint64_t mixed = fnv1a64_mix(fnv1a64(label), seed);
  return splitmix64(mixed);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t mixed = fnv1a64_mix(seed ^ 0xa5a5a5a5a5a5a5a5ULL, index);
  return splitmix64(mixed);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  // Seed the four xoshiro words from SplitMix64 as recommended by the
  // xoshiro authors; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  WAFP_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  WAFP_DCHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_gaussian() {
  // Box-Muller; discard the second variate to keep the stream stateless.
  // log/cos go through the portable kernels, not host libm: gaussian draws
  // feed jitter render inputs, so host-libm bits here would make committed
  // golden digests a function of the build host (std::sqrt stays — IEEE
  // requires it correctly rounded on every host).
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * portable_log(u1)) *
         portable_cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::fork(std::string_view label) const {
  return Rng(derive_seed(seed_, label));
}

Rng Rng::fork(std::uint64_t index) const {
  return Rng(derive_seed(seed_, index));
}

CategoricalSampler::CategoricalSampler(std::span<const double> weights) {
  const std::size_t n = weights.size();
  WAFP_DCHECK(n > 0);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  WAFP_DCHECK(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<std::size_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const std::size_t i : large) prob_[i] = 1.0;
  for (const std::size_t i : small) prob_[i] = 1.0;
}

std::size_t CategoricalSampler::sample(Rng& rng) const {
  const std::size_t column = rng.next_below(prob_.size());
  return rng.next_double() < prob_[column] ? column : alias_[column];
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  WAFP_DCHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Portable pow for the same reason as next_gaussian: the Zipf CDF
    // shapes which platform every simulated user draws.
    acc += 1.0 / portable_pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = acc;
  }
  for (double& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

}  // namespace wafp::util
