#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>

namespace wafp::util {
namespace {

/// Set while a thread is executing pool work; reentrant parallel_for from
/// such a thread must run inline (a worker blocking on its own pool's queue
/// would deadlock once all workers wait on each other).
thread_local bool t_in_pool_task = false;

std::unique_ptr<ThreadPool>& shared_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

std::size_t parse_thread_count(std::string_view text) {
  constexpr std::size_t kMaxThreads = 4096;
  const auto fail = [text](const char* why) {
    throw std::invalid_argument("invalid thread count \"" +
                                std::string(text) + "\": " + why);
  };
  if (text.empty()) fail("empty");
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') fail("not a decimal integer");
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (kMaxThreads - digit) / 10) fail("exceeds the 4096 cap");
    value = value * 10 + digit;
  }
  if (value == 0) fail("must be at least 1");
  return value;
}

std::size_t default_thread_count() {
  if (const char* env = std::getenv("WAFP_THREADS")) {
    return parse_thread_count(env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    t_in_pool_task = true;
    task();
    t_in_pool_task = false;
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) {
    grain = std::max<std::size_t>(1, n / (thread_count() * 8));
  }
  const std::size_t chunks = (n + grain - 1) / grain;

  // Degree-1 pools and reentrant calls run every chunk inline, in order.
  if (workers_.empty() || t_in_pool_task || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * grain;
      fn(begin, std::min(n, begin + grain));
    }
    return;
  }

  // Shared chunk-claiming state: workers and the caller race to claim chunk
  // indices; each claimed chunk maps to a fixed [begin, end) range, so the
  // partition never depends on who ran what.
  struct Run {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> pending{0};  // claimed but unfinished runners
    Mutex error_mu;
    std::exception_ptr error WAFP_GUARDED_BY(error_mu);
    Mutex done_mu;
    CondVar done_cv;
  };
  auto run = std::make_shared<Run>();

  auto drain = [run, n, grain, chunks, &fn] {
    for (;;) {
      const std::size_t c = run->next.fetch_add(1);
      if (c >= chunks) return;
      const std::size_t begin = c * grain;
      try {
        fn(begin, std::min(n, begin + grain));
      } catch (...) {
        {
          MutexLock lock(run->error_mu);
          if (!run->error) run->error = std::current_exception();
        }
        run->next.store(chunks);  // abandon unstarted chunks
        return;
      }
    }
  };

  const std::size_t runners =
      std::min(workers_.size(), chunks > 0 ? chunks - 1 : 0);
  run->pending.store(runners);
  {
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < runners; ++i) {
      // The task captures `run` by value: it stays alive even if a worker
      // only gets scheduled after the caller finished every chunk itself.
      queue_.emplace_back([run, drain] {
        drain();
        if (run->pending.fetch_sub(1) == 1) {
          MutexLock done_lock(run->done_mu);
          run->done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  drain();  // the calling thread participates

  {
    MutexLock lock(run->done_mu);
    while (run->pending.load() != 0) run->done_cv.wait(run->done_mu);
  }
  std::exception_ptr error;
  {
    MutexLock lock(run->error_mu);
    error = run->error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for_each(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for(
      n,
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      1);
}

ThreadPool& ThreadPool::shared() {
  auto& slot = shared_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::set_shared_threads(std::size_t threads) {
  shared_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace wafp::util
