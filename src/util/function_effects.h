// Function-effect annotations: the hot-path purity contract.
//
// WAFP_NONALLOCATING marks a function as part of the render pipeline's
// build-free steady state: no allocation, deallocation, or exception may
// execute in (or be reachable from) it. WAFP_NONBLOCKING is the stricter
// form that additionally forbids locking. PR 6/7 proved these properties
// dynamically — counter audits over fft twiddle/periodic-wave/slab build
// counters — but only per-host and only after the fact; the annotations
// turn the same contract into something a static pass proves over the
// whole tree before any golden runs.
//
// Two enforcement layers, matching the thread_annotations.h pattern:
//   1. Clang >= 19 with -Wfunction-effects: the macros expand to
//      [[clang::nonallocating]] / [[clang::nonblocking]] and the compiler
//      verifies the transitive property exactly. CMake probes for
//      -Werror=function-effects and defines WAFP_ENABLE_FUNCTION_EFFECTS
//      only when the toolchain has it (the attribute alone is not enough —
//      without the warning pass it is inert, and older clangs reject the
//      spelling).
//   2. Everywhere else the macros expand to nothing and tools/lint's
//      wafp_lint `nonallocating` check walks the call graph from every
//      annotated function, flagging reachable allocation, locking, I/O,
//      and throw constructs it recognizes (a conservative lexical
//      approximation of the clang analysis; see DESIGN.md §3i).
//
// Placement: after the parameter list and noexcept-specifier, before any
// virt-specifier — `void process(...) WAFP_NONALLOCATING override;`.
// Annotate the canonical declaration (usually the header); wafp_lint
// matches definitions to annotated declarations by qualified name.
//
// Cold paths that are provably build-free at steady state but not on first
// touch (lazy twiddle tables, cache-miss inserts) are suppressed at the
// call site with a reasoned pragma:
//   // wafp-lint: allow(nonallocating): first-quantum lazy build, audited
//   // by periodic_wave_builds() counters at steady state.
#pragma once

#if defined(WAFP_ENABLE_FUNCTION_EFFECTS) && defined(__clang__) && \
    defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::nonallocating) && \
    __has_cpp_attribute(clang::nonblocking)
#define WAFP_NONALLOCATING [[clang::nonallocating]]
#define WAFP_NONBLOCKING [[clang::nonblocking]]
#endif
#endif

#ifndef WAFP_NONALLOCATING
#define WAFP_NONALLOCATING  // no-op: wafp_lint enforces the contract
#define WAFP_NONBLOCKING    // no-op: wafp_lint enforces the contract
#endif
