// Clang thread-safety-analysis annotation macros.
//
// These attach locking contracts to types and functions so `clang
// -Wthread-safety` proves at compile time that every access to shared
// mutable state happens under the mutex that guards it — the concurrency
// invariants the parallel study pipeline (bit-identical parallel parity)
// and the collation service (crash-recovery checksums) rely on become type
// errors instead of data races. On compilers without the attribute family
// (GCC, MSVC) every macro expands to nothing, so annotated code builds
// everywhere; the analysis itself runs in the dedicated Clang CI job (see
// DESIGN.md "Static analysis & invariants").
//
// Naming follows the de-facto standard set by abseil/base/thread_annotations.h
// so the vocabulary is familiar: GUARDED_BY for data, REQUIRES for
// preconditions, ACQUIRE/RELEASE for lock transitions, CAPABILITY /
// SCOPED_CAPABILITY for the mutex types themselves.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define WAFP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WAFP_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define WAFP_CAPABILITY(x) WAFP_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define WAFP_SCOPED_CAPABILITY WAFP_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be read or written while holding `x`.
#define WAFP_GUARDED_BY(x) WAFP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* may only be touched while holding `x`.
#define WAFP_PT_GUARDED_BY(x) WAFP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: caller must hold the given capabilities.
#define WAFP_REQUIRES(...) \
  WAFP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function precondition: caller must NOT hold the given capabilities
/// (deadlock prevention for self-locking functions).
#define WAFP_EXCLUDES(...) WAFP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capabilities and holds them on return.
#define WAFP_ACQUIRE(...) \
  WAFP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases capabilities the caller held on entry.
#define WAFP_RELEASE(...) \
  WAFP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; holds it iff the return value equals
/// the first macro argument.
#define WAFP_TRY_ACQUIRE(...) \
  WAFP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the mutex guarding its result.
#define WAFP_RETURN_CAPABILITY(x) WAFP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is correct for reasons the analysis
/// cannot see (init/teardown paths, lock-free handoff). Use sparingly and
/// leave a comment explaining why at every use site.
#define WAFP_NO_THREAD_SAFETY_ANALYSIS \
  WAFP_THREAD_ANNOTATION(no_thread_safety_analysis)
