#include "util/portable_math.h"

#include <cmath>
#include <limits>
#include <numbers>

namespace wafp::util {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kLn2 = std::numbers::ln2;
constexpr double kInvLn2 = 1.4426950408889634074;  // 1/ln2

// Cody-Waite split constants: the value is represented as hi + lo where hi
// carries the leading bits exactly, so k*hi subtracts without rounding for
// the small k the repo's argument ranges produce.
constexpr double kPio2Hi = 1.57079632679489655800e+00;
constexpr double kPio2Lo = 6.12323399573676603587e-17;
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;

/// Reduce x to r in [-pi/4, pi/4], returning the quadrant index mod 4.
int trig_reduce(double x, double& r) {
  const double k_real = std::nearbyint(x / (kPi / 2.0));
  const auto k = static_cast<long long>(k_real);
  r = (x - k_real * kPio2Hi) - k_real * kPio2Lo;
  return static_cast<int>(((k % 4) + 4) % 4);
}

/// Taylor sin on [-pi/4, pi/4]. 10 terms beyond x: the first dropped term
/// is x^23/23! < 1e-22 at the interval edge — far below 1 ulp.
double sin_kernel(double x) {
  const double z = x * x;
  double acc = 0.0;
  for (int n = 10; n >= 1; --n) {
    const double c = -1.0 / static_cast<double>((2 * n) * (2 * n + 1));
    acc = c * (1.0 + acc) * z;
  }
  return x * (1.0 + acc);
}

/// Taylor cos on [-pi/4, pi/4], same depth as sin_kernel.
double cos_kernel(double x) {
  const double z = x * x;
  double acc = 0.0;
  for (int n = 10; n >= 1; --n) {
    const double c = -1.0 / static_cast<double>((2 * n - 1) * (2 * n));
    acc = c * (1.0 + acc) * z;
  }
  return 1.0 + acc;
}

}  // namespace

double portable_sin(double x) {
  if (!std::isfinite(x)) return std::numeric_limits<double>::quiet_NaN();
  double r = 0.0;
  switch (trig_reduce(x, r)) {
    case 0: return sin_kernel(r);
    case 1: return cos_kernel(r);
    case 2: return -sin_kernel(r);
    default: return -cos_kernel(r);
  }
}

double portable_cos(double x) {
  if (!std::isfinite(x)) return std::numeric_limits<double>::quiet_NaN();
  double r = 0.0;
  switch (trig_reduce(x, r)) {
    case 0: return cos_kernel(r);
    case 1: return -sin_kernel(r);
    case 2: return -cos_kernel(r);
    default: return sin_kernel(r);
  }
}

double portable_exp(double x) {
  if (std::isnan(x)) return x;
  if (x > 709.0) return std::numeric_limits<double>::infinity();
  if (x < -745.0) return 0.0;
  const double k_real = std::nearbyint(x * kInvLn2);
  const auto k = static_cast<int>(k_real);
  const double r = (x - k_real * kLn2Hi) - k_real * kLn2Lo;
  // Degree-18 Taylor on |r| <= ln2/2: truncation < 2e-26.
  double acc = 1.0;
  for (int n = 18; n >= 1; --n) {
    acc = 1.0 + acc * r / static_cast<double>(n);
  }
  return std::ldexp(acc, k);
}

double portable_log(double x) {
  if (std::isnan(x)) return x;
  if (x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return -std::numeric_limits<double>::infinity();
  if (std::isinf(x)) return x;
  int e = 0;
  double m = std::frexp(x, &e);  // m in [0.5, 1), both exact
  if (m < std::numbers::sqrt2 / 2.0) {
    m *= 2.0;
    --e;
  }
  // atanh series: ln(m) = 2(s + s^3/3 + ...), s = (m-1)/(m+1), |s| <= 0.172.
  // 12 terms beyond s: the first dropped term is s^27/27 < 3e-21 * s.
  const double s = (m - 1.0) / (m + 1.0);
  const double z = s * s;
  double acc = 0.0;
  for (int n = 12; n >= 1; --n) {
    acc = z * (1.0 / static_cast<double>(2 * n + 1) + acc);
  }
  return 2.0 * s * (1.0 + acc) + static_cast<double>(e) * kLn2;
}

double portable_log2(double x) {
  if (std::isnan(x)) return x;
  if (x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return -std::numeric_limits<double>::infinity();
  if (std::isinf(x)) return x;
  int e = 0;
  double m = std::frexp(x, &e);
  if (m < std::numbers::sqrt2 / 2.0) {
    m *= 2.0;
    --e;
  }
  const double s = (m - 1.0) / (m + 1.0);
  const double z = s * s;
  double acc = 0.0;
  for (int n = 12; n >= 1; --n) {
    acc = z * (1.0 / static_cast<double>(2 * n + 1) + acc);
  }
  // Exact integer part + mantissa log scaled into base 2. m == 1 gives an
  // exact zero series, so powers of two come out exactly integral.
  return static_cast<double>(e) + (2.0 * s * (1.0 + acc)) * kInvLn2;
}

double portable_pow(double base, double exponent) {
  if (exponent == 0.0) return 1.0;
  if (base == 0.0) {
    return exponent > 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  if (base < 0.0) {
    const double rounded = std::nearbyint(exponent);
    if (rounded != exponent) return std::numeric_limits<double>::quiet_NaN();
    const double magnitude = portable_exp(exponent * portable_log(-base));
    const bool odd = std::fmod(rounded, 2.0) != 0.0;
    return odd ? -magnitude : magnitude;
  }
  return portable_exp(exponent * portable_log(base));
}

}  // namespace wafp::util
