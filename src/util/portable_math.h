// Deterministic from-scratch transcendentals for render-neutral call sites.
//
// The repo's core invariant — enforced at lint time by wafp_lint's
// no-host-libm check (tools/lint/) — is that no code on or near the render
// path calls the host's libm transcendentals: those are exactly the
// per-host codepath differences the paper blames for fingerprint diversity
// (§5), so linking them would make our *own* committed digests a function
// of the build host's libm. Platform-flavoured math goes through
// dsp::MathLibrary; everything else that still needs a transcendental
// (range selection, RNG shaping, analysis entropy/AMI terms) uses these
// kernels instead. They are one fixed algorithm, not a variant surface:
// every host computes bit-identical results.
//
// Accuracy: all kernels target near-1-ulp over the argument ranges the
// repo produces (|x| within a few periods for trig — the range reduction
// is Cody-Waite, not Payne-Hanek). They are not correctly rounded, and
// they intentionally do not match any host libm bit-for-bit; what matters
// is that they match *themselves* everywhere.
#pragma once

#include <cstddef>

namespace wafp::util {

/// sin/cos with Cody-Waite pi/2 reduction + high-degree Taylor kernels.
/// Accurate to ~1 ulp for |x| up to a few hundred; NaN for non-finite x.
[[nodiscard]] double portable_sin(double x);
[[nodiscard]] double portable_cos(double x);

/// exp via k*ln2 Cody-Waite reduction + degree-18 Taylor kernel.
[[nodiscard]] double portable_exp(double x);

/// Natural log via exact mantissa/exponent split (frexp) and the atanh
/// series on [sqrt(1/2), sqrt(2)). Full libm edge semantics: log(0) = -inf,
/// log(x<0) = NaN, log(inf) = inf.
[[nodiscard]] double portable_log(double x);

/// log2 derived from portable_log with the exponent separated exactly, so
/// exact powers of two return exact integers.
[[nodiscard]] double portable_log2(double x);

/// pow via portable_exp(e * portable_log(b)) with the usual special cases
/// (zero base, integral exponents of negative bases).
[[nodiscard]] double portable_pow(double base, double exponent);

}  // namespace wafp::util
