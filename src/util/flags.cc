#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/check.h"

namespace wafp::util {

FlagParser::FlagParser(std::string_view program, std::string_view description)
    : program_(program), description_(description) {}

void FlagParser::flag(std::string_view name, bool* value,
                      std::string_view help) {
  add_flag(name, help, *value ? "true" : "false", /*is_switch=*/true,
           [value](std::string_view) {
             *value = true;
             return true;
           });
}

void FlagParser::flag(std::string_view name, std::string* value,
                      std::string_view help) {
  add_flag(name, help, *value, /*is_switch=*/false,
           [value](std::string_view text) {
             value->assign(text);
             return true;
           });
}

void FlagParser::flag(std::string_view name, double* value,
                      std::string_view help) {
  add_flag(name, help, std::to_string(*value), /*is_switch=*/false,
           [value](std::string_view text) {
             const std::string copy(text);
             char* end = nullptr;
             const double parsed = std::strtod(copy.c_str(), &end);
             if (end == copy.c_str() || *end != '\0') return false;
             *value = parsed;
             return true;
           });
}

void FlagParser::positional(std::string_view name, std::size_t* value,
                            std::string_view help, std::size_t min) {
  WAFP_CHECK(!has_positional_) << "only one positional argument is supported";
  has_positional_ = true;
  positional_name_ = name;
  positional_help_ = help;
  positional_value_ = value;
  positional_min_ = min;
}

void FlagParser::add_flag(std::string_view name, std::string_view help,
                          std::string default_text, bool is_switch,
                          std::function<bool(std::string_view)> set) {
  WAFP_CHECK(name.size() > 2 && name[0] == '-' && name[1] == '-')
      << "flag names must start with --, got " << name;
  WAFP_CHECK(find(name) == nullptr) << "duplicate flag " << name;
  Flag f;
  f.name = name;
  f.help = help;
  f.default_text = std::move(default_text);
  f.is_switch = is_switch;
  f.set = std::move(set);
  flags_.push_back(std::move(f));
}

FlagParser::Flag* FlagParser::find(std::string_view name) {
  for (Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::string FlagParser::usage_line() const {
  std::string line = "usage: " + program_;
  if (has_positional_) line += " [" + positional_name_ + "]";
  for (const Flag& f : flags_) {
    line += " [" + f.name + (f.is_switch ? "]" : " V]");
  }
  return line;
}

std::string FlagParser::help_text() const {
  std::string text = usage_line() + "\n";
  if (!description_.empty()) text += description_ + "\n";
  text += "\n";
  if (has_positional_) {
    text += "  " + positional_name_ + "\n        " + positional_help_ + "\n";
  }
  for (const Flag& f : flags_) {
    text += "  " + f.name + (f.is_switch ? "" : " VALUE") + "\n        " +
            f.help + " (default: " + f.default_text + ")\n";
  }
  return text;
}

bool FlagParser::parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

bool FlagParser::parse(int argc, char** argv) {
  bool saw_positional = false;
  const auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "%s: %s\n%s\n", program_.c_str(), message.c_str(),
                 usage_line().c_str());
    exit_code_ = 2;
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      exit_code_ = 0;
      return false;
    }
    if (arg.size() > 1 && arg[0] == '-') {
      // `--name=value` splits here; `--name value` consumes the next arg.
      const std::size_t eq = arg.find('=');
      const std::string_view name =
          eq == std::string_view::npos ? arg : arg.substr(0, eq);
      Flag* f = find(name);
      if (f == nullptr) {
        return fail("unrecognized flag: " + std::string(arg));
      }
      if (f->is_switch) {
        if (eq != std::string_view::npos) {
          return fail(f->name + " takes no value");
        }
        (void)f->set({});
        continue;
      }
      std::string_view value;
      if (eq != std::string_view::npos) {
        value = arg.substr(eq + 1);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return fail("flag " + f->name + " is missing its value");
      }
      if (!f->set(value)) {
        return fail("invalid value for " + f->name + ": " +
                    std::string(value));
      }
      continue;
    }
    if (!has_positional_ || saw_positional) {
      return fail("unexpected argument: " + std::string(arg));
    }
    std::uint64_t parsed = 0;
    if (!parse_u64(arg, parsed) || parsed < positional_min_) {
      return fail("invalid " + positional_name_ + ": " + std::string(arg));
    }
    *positional_value_ = static_cast<std::size_t>(parsed);
    saw_positional = true;
  }
  return true;
}

}  // namespace wafp::util
