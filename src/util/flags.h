// FlagParser: the one command-line parser for the repo's binaries.
//
// Every example and bench binary used to hand-roll the same strcmp/strtoul
// loop, and each copy re-discovered the same footguns (a typo'd flag
// falling through to a positional, a value-less flag eating the next
// argument, no --help). This parser centralizes the contract:
//
//   * typed flags bind directly to variables (bool switch, string,
//     unsigned integer, double) whose initial value is the default;
//   * both `--name value` and `--name=value` are accepted;
//   * unknown flags and flags missing their value are hard errors (exit
//     code 2), never silent fallthrough;
//   * --help / -h prints a generated usage text (flag, value placeholder,
//     help line, default) and exits 0;
//   * at most one optional *positional* argument is supported, which is
//     what the binaries actually use (a count), with full validation.
//
// Usage:
//   util::FlagParser flags("tracking_server", "Online collation demo.");
//   flags.flag("--state-dir", &state_dir, "persist WAL + snapshots here");
//   flags.flag("--fsync-wal", &fsync, "fdatasync every WAL append");
//   flags.positional("num_visitors", &n, "visitors to enrol", /*min=*/1);
//   if (!flags.parse(argc, argv)) return flags.exit_code();
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace wafp::util {

class FlagParser {
 public:
  FlagParser(std::string_view program, std::string_view description);

  /// Boolean switch: present = true; takes no value.
  void flag(std::string_view name, bool* value, std::string_view help);
  void flag(std::string_view name, std::string* value, std::string_view help);
  void flag(std::string_view name, double* value, std::string_view help);

  /// Any unsigned integer target (size_t, uint64_t, uint32_t, ...);
  /// rejects non-numeric text, trailing junk, and out-of-range values.
  template <typename T>
    requires(std::is_unsigned_v<T> && !std::is_same_v<T, bool>)
  void flag(std::string_view name, T* value, std::string_view help) {
    add_flag(name, help, std::to_string(*value), /*is_switch=*/false,
             [value](std::string_view text) {
               std::uint64_t parsed = 0;
               if (!parse_u64(text, parsed)) return false;
               if (parsed > std::uint64_t{std::numeric_limits<T>::max()}) {
                 return false;
               }
               *value = static_cast<T>(parsed);
               return true;
             });
  }

  /// Optional positional argument (an unsigned count >= `min`). At most one
  /// may be registered; a second registration is a programming error.
  void positional(std::string_view name, std::size_t* value,
                  std::string_view help, std::size_t min = 0);

  /// Parse argv. True = proceed with the program. False = stop and return
  /// exit_code(): 0 after --help, 2 after a usage error (already reported
  /// on stderr).
  [[nodiscard]] bool parse(int argc, char** argv);
  [[nodiscard]] int exit_code() const { return exit_code_; }

  /// The generated --help text (also printed by parse()).
  [[nodiscard]] std::string help_text() const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string default_text;
    bool is_switch = false;
    std::function<bool(std::string_view)> set;
  };

  void add_flag(std::string_view name, std::string_view help,
                std::string default_text, bool is_switch,
                std::function<bool(std::string_view)> set);
  [[nodiscard]] Flag* find(std::string_view name);
  [[nodiscard]] std::string usage_line() const;

  /// Strict decimal parse: the whole string, no sign, no overflow.
  static bool parse_u64(std::string_view text, std::uint64_t& out);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;

  bool has_positional_ = false;
  std::string positional_name_;
  std::string positional_help_;
  std::size_t* positional_value_ = nullptr;
  std::size_t positional_min_ = 0;

  int exit_code_ = 0;
};

}  // namespace wafp::util
