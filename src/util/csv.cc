#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace wafp::util {
namespace {

bool needs_quoting(std::string_view cell) {
  return cell.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quote(std::string_view cell) {
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

void CsvWriter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::str() const {
  std::ostringstream out;
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << (needs_quoting(row[i]) ? quote(row[i]) : row[i]);
    }
    out << '\n';
  }
  return out.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file << str();
  return static_cast<bool>(file);
}

CsvStreamWriter::CsvStreamWriter(const std::string& path)
    : out_(path, std::ios::binary) {}

void CsvStreamWriter::write_row(
    std::initializer_list<std::string_view> cells) {
  bool first = true;
  for (const std::string_view cell : cells) {
    if (!first) out_ << ',';
    first = false;
    if (needs_quoting(cell)) out_ << quote(cell);
    else out_ << cell;
  }
  out_ << '\n';
}

bool CsvStreamWriter::finish() {
  out_.flush();
  return static_cast<bool>(out_);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"' && !cell_started) {
      in_quotes = true;
      cell_started = true;
    } else if (c == ',') {
      end_cell();
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // A row terminator: CRLF counts once, and a lone CR (old-Mac endings,
      // or a cell that should have been quoted) ends the row too instead of
      // being silently dropped from the cell.
      end_row();
      if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
    } else {
      cell += c;
      cell_started = true;
    }
  }
  if (cell_started || !cell.empty() || !row.empty()) end_row();
  return rows;
}

std::vector<std::vector<std::string>> read_csv_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return {};
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_csv(buffer.str());
}

}  // namespace wafp::util
