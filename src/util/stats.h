// Small numeric helpers shared by the analysis modules.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

namespace wafp::util {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> values);

/// Population standard deviation; 0 for fewer than two values.
[[nodiscard]] double stddev(std::span<const double> values);

/// Minimum / maximum; both 0 for an empty span.
[[nodiscard]] double min_value(std::span<const double> values);
[[nodiscard]] double max_value(std::span<const double> values);

/// Count occurrences of each value.
template <typename T>
[[nodiscard]] std::map<T, std::size_t> value_counts(std::span<const T> values) {
  std::map<T, std::size_t> counts;
  for (const T& v : values) ++counts[v];
  return counts;
}

/// log2(n!) via lgamma; used by the expected-mutual-information computation.
[[nodiscard]] double log_factorial(std::size_t n);

/// Natural-log factorial.
[[nodiscard]] double ln_factorial(std::size_t n);

}  // namespace wafp::util
