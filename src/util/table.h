// ASCII table and bar-chart rendering for the benchmark harness: every
// table/figure of the paper is re-printed in the same row/series layout.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace wafp::util {

/// A simple text table with a header row; columns are auto-sized.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(std::size_t v);

  /// Render with column alignment and a separator under the header.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Horizontal text bar chart: one row per (label, value), bar scaled to the
/// maximum value. Used to re-plot the paper's figures in the terminal.
[[nodiscard]] std::string render_bar_chart(
    std::span<const std::string> labels, std::span<const double> values,
    std::size_t max_width = 50);

/// A (x, y) line series rendered as rows "x  y  <bar>"; good enough to
/// eyeball the shape of Fig. 5-style curves.
[[nodiscard]] std::string render_series(std::span<const double> xs,
                                        std::span<const double> ys,
                                        std::size_t max_width = 50);

/// Render a square matrix as a heatmap with one shaded cell per entry
/// (Fig. 9-style). Values are expected in [0, 1].
[[nodiscard]] std::string render_heatmap(std::span<const std::string> labels,
                                         const std::vector<std::vector<double>>&
                                             m);

}  // namespace wafp::util
