#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace wafp::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt(std::size_t v) { return std::to_string(v); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };

  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string render_bar_chart(std::span<const std::string> labels,
                             std::span<const double> values,
                             std::size_t max_width) {
  double max_v = 0.0;
  for (const double v : values) max_v = std::max(max_v, v);
  if (max_v <= 0.0) max_v = 1.0;

  std::size_t label_width = 0;
  for (const auto& l : labels) label_width = std::max(label_width, l.size());

  std::ostringstream out;
  for (std::size_t i = 0; i < labels.size() && i < values.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(
        std::round(values[i] / max_v * static_cast<double>(max_width)));
    out << labels[i] << std::string(label_width - labels[i].size(), ' ')
        << " | " << std::string(bar_len, '#') << " " << values[i] << "\n";
  }
  return out.str();
}

std::string render_series(std::span<const double> xs,
                          std::span<const double> ys, std::size_t max_width) {
  double max_v = 0.0;
  for (const double v : ys) max_v = std::max(max_v, v);
  if (max_v <= 0.0) max_v = 1.0;

  std::ostringstream out;
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(
        std::round(ys[i] / max_v * static_cast<double>(max_width)));
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%8.3f  %8.5f  ", xs[i], ys[i]);
    out << buf << std::string(bar_len, '*') << "\n";
  }
  return out.str();
}

std::string render_heatmap(std::span<const std::string> labels,
                           const std::vector<std::vector<double>>& m) {
  static constexpr const char* kShades[] = {" ", ".", ":", "-", "=", "+",
                                            "*", "#", "%", "@"};
  std::size_t label_width = 0;
  for (const auto& l : labels) label_width = std::max(label_width, l.size());

  std::ostringstream out;
  for (std::size_t r = 0; r < m.size(); ++r) {
    const std::string& label = r < labels.size() ? labels[r] : "";
    out << label << std::string(label_width - label.size(), ' ') << " ";
    for (const double v : m[r]) {
      const double clamped = std::clamp(v, 0.0, 1.0);
      const auto idx = static_cast<std::size_t>(std::round(clamped * 9.0));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "[%s %.2f]", kShades[idx], v);
      out << buf;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace wafp::util
