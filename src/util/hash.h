// SHA-256 and FNV-1a hashing used to digest rendered audio buffers into
// fingerprints, mirroring the hash step of the paper's fingerprinting vectors
// (Figs. 1, 2, 6-8: "... -> Hash -> Fingerprint").
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wafp::util {

/// A 256-bit message digest. Fingerprints throughout the library are Digests.
struct Digest {
  std::array<std::uint8_t, 32> bytes{};

  friend bool operator==(const Digest&, const Digest&) = default;
  friend auto operator<=>(const Digest&, const Digest&) = default;

  /// Lowercase hex rendering ("e3b0c442...").
  [[nodiscard]] std::string hex() const;

  /// Short (8-hex-char) prefix for human-readable reports.
  [[nodiscard]] std::string short_hex() const;

  /// First 8 bytes as a little-endian integer; convenient map key.
  [[nodiscard]] std::uint64_t prefix64() const;
};

/// Incremental SHA-256 (FIPS 180-4). Implemented from scratch; validated
/// against the standard test vectors in tests/util/hash_test.cc.
class Sha256 {
 public:
  Sha256();

  /// Absorb raw bytes.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  /// Absorb the raw IEEE-754 representation of a float/double span. This is
  /// how audio buffers are fingerprinted: bit-exact, so one-ULP differences
  /// between platform DSP stacks yield different digests.
  void update(std::span<const float> samples);
  void update(std::span<const double> samples);

  /// Absorb a little-endian 64-bit integer.
  void update_u64(std::uint64_t v);

  /// Finalize and return the digest. The object must not be reused after.
  [[nodiscard]] Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot helpers.
[[nodiscard]] Digest sha256(std::string_view data);
[[nodiscard]] Digest sha256(std::span<const std::uint8_t> data);
[[nodiscard]] Digest sha256(std::span<const float> samples);

/// FNV-1a 64-bit; used for cheap non-cryptographic keys (cache keys,
/// categorical attribute mixing), never as a fingerprint itself.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> data);

/// Mix an existing FNV state with more data (chained hashing).
[[nodiscard]] std::uint64_t fnv1a64_mix(std::uint64_t state,
                                        std::string_view data);
[[nodiscard]] std::uint64_t fnv1a64_mix(std::uint64_t state,
                                        std::uint64_t value);

/// Hex encode arbitrary bytes.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace wafp::util

template <>
struct std::hash<wafp::util::Digest> {
  std::size_t operator()(const wafp::util::Digest& d) const noexcept {
    return static_cast<std::size_t>(d.prefix64());
  }
};
