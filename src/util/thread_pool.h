// Fixed-size worker pool with a chunked parallel_for — the parallel
// execution layer for the study pipeline (collection and analysis).
//
// Determinism contract: parallel_for partitions [0, n) into contiguous
// chunks whose boundaries depend only on (n, grain); tasks write results
// into caller-owned slots addressed by index, so the combined result is
// bit-identical regardless of scheduling, thread count, or interleaving.
// Every digest in the study is a pure function of (profile stack, derived
// seed), which is what makes parallel collection equal to serial collection
// byte for byte (asserted by tests/study/parallel_collect_test.cc).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <string_view>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace wafp::util {

/// Strictly parse a thread-count string: decimal digits only, value in
/// [1, 4096]. Throws std::invalid_argument with a descriptive message on
/// anything else — empty strings, signs, trailing junk ("8x"), zero, or
/// overflowing values. Used for WAFP_THREADS so a typo'd environment fails
/// loudly instead of being silently truncated to a nonsense degree.
[[nodiscard]] std::size_t parse_thread_count(std::string_view text);

/// Parallelism degree to use when none is requested: the WAFP_THREADS
/// environment variable if set (validated by parse_thread_count; invalid
/// values throw std::invalid_argument), else hardware_concurrency.
[[nodiscard]] std::size_t default_thread_count();

class ThreadPool {
 public:
  /// `threads` is the total parallelism degree including the calling
  /// thread: a pool of degree T spawns T-1 workers and the caller executes
  /// chunks too, so degree 1 spawns nothing and runs everything inline.
  /// 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism degree (workers + calling thread), always >= 1.
  [[nodiscard]] std::size_t thread_count() const { return workers_.size() + 1; }

  /// Invoke fn(begin, end) over contiguous chunks covering [0, n).
  /// `grain` is the chunk length (0 = pick one targeting ~8 chunks per
  /// thread). Chunk boundaries are deterministic in (n, grain); execution
  /// order is not — callers must write results only into index-addressed
  /// slots. Blocks until every chunk ran. The first exception thrown by any
  /// chunk is rethrown here (remaining unstarted chunks are skipped).
  /// Reentrant calls from inside a chunk run inline on the calling worker,
  /// so nesting cannot deadlock the pool.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Convenience wrapper: fn(i) for each i in [0, n), one index per call.
  void parallel_for_each(std::size_t n,
                         const std::function<void(std::size_t)>& fn);

  /// Process-wide pool for the analysis layer, sized by
  /// default_thread_count() on first use (or set_shared_threads).
  [[nodiscard]] static ThreadPool& shared();

  /// Replace the shared pool with one of the given degree. Not thread-safe
  /// against concurrent shared() users — call between parallel regions
  /// (benchmarks sweeping thread counts, CLI flag handling at startup).
  static void set_shared_threads(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ WAFP_GUARDED_BY(mu_);
  bool stop_ WAFP_GUARDED_BY(mu_) = false;
};

}  // namespace wafp::util
