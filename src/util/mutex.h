// Annotated mutex / lock / condvar wrappers for thread-safety analysis.
//
// wafp::util::Mutex is a std::mutex carrying the CAPABILITY annotation, so
// members declared WAFP_GUARDED_BY(mu_) are compile-time checked on Clang:
// touching them without the lock is a -Wthread-safety error. MutexLock is
// the RAII guard (SCOPED_CAPABILITY), CondVar the matching condition
// variable (condition_variable_any, so it waits on the annotated Mutex
// directly — no unannotated unique_lock escape hatch in the middle of a
// guarded region).
//
// Style note: prefer `MutexLock lock(mu_);` over raw lock()/unlock() pairs;
// the scoped form is both exception-safe and what the analysis reasons
// about most precisely.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace wafp::util {

class WAFP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WAFP_ACQUIRE() { mu_.lock(); }
  void unlock() WAFP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() WAFP_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  std::mutex mu_;
};

/// RAII guard over an annotated Mutex (std::lock_guard analogue).
class WAFP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WAFP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() WAFP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to util::Mutex. wait() takes the mutex the
/// caller already holds (enforced by WAFP_REQUIRES) and re-holds it on
/// return, exactly like std::condition_variable — but without forcing the
/// caller through an unannotated std::unique_lock. Use the manual
/// `while (!pred) cv.wait(mu);` form: a predicate lambda cannot carry
/// REQUIRES annotations portably, the explicit loop can.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep, and re-acquire before returning.
  /// Spurious wakeups happen; always re-check the predicate in a loop.
  void wait(Mutex& mu) WAFP_REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace wafp::util
