// WAFP_CHECK / WAFP_DCHECK: uniform contract-check macros.
//
//   WAFP_CHECK(n > 0) << "need at least one frame, got " << n;
//
// On failure the full message — "WAFP_CHECK failed: <condition> at
// file:line[: <streamed context>]" — is written to stderr and the process
// aborts. Failing a check means an internal invariant is broken: the
// renderer would otherwise produce a plausible-but-wrong fingerprint, or
// the service would collate garbage, and the reproducibility claims
// (bit-identical parallel parity, AMI >= 0.986) would silently rot.
// Aborting loudly is the contract.
//
// WAFP_CHECK is always on, in every build type. WAFP_DCHECK follows
// assert() semantics: active unless NDEBUG (or always, with
// WAFP_FORCE_DCHECK defined); when inactive neither the condition nor the
// streamed operands are evaluated, but both still compile, so a disabled
// check can never hide a build break or an unused-variable warning.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace wafp::util {

namespace internal {

/// Accumulates the failure message; aborts when destroyed at the end of the
/// full expression (after every `<<` operand has been appended).
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << "WAFP_CHECK failed: " << condition << " at " << file << ":"
            << line;
  }

  CheckFailStream(const CheckFailStream&) = delete;
  CheckFailStream& operator=(const CheckFailStream&) = delete;

  [[noreturn]] ~CheckFailStream() {
    // '\n' + explicit flush (not std::endl): the message must hit the
    // stream before abort(), and lint bans endl on principle.
    std::cerr << stream_.str() << '\n' << std::flush;
    std::abort();
  }

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    if (!prefixed_) {
      stream_ << ": ";
      prefixed_ = true;
    }
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
  bool prefixed_ = false;
};

/// Swallows every streamed operand of a disabled WAFP_DCHECK. The operands
/// are compiled (so they stay warning-free and type-checked) but the
/// ternary's true branch means they are never evaluated at runtime.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// `&` binds looser than `<<`, so `Voidify() & stream << a << b` lets the
/// whole streamed chain build first, then collapses it to void — which is
/// what makes the macros usable inside a `? :` with a void arm.
struct Voidify {
  // Const refs so both shapes bind: a bare `Stream(...)` (prvalue, no
  // message operands) and `Stream(...) << a << b` (lvalue reference to the
  // still-alive temporary).
  void operator&(const CheckFailStream&) {}
  void operator&(const NullStream&) {}
};

}  // namespace internal

#if !defined(NDEBUG) || defined(WAFP_FORCE_DCHECK)
#define WAFP_DCHECK_IS_ON 1
#else
#define WAFP_DCHECK_IS_ON 0
#endif

/// True when WAFP_DCHECK is active in this build — lets tests branch
/// between "this dies" and "this is a no-op" without preprocessor soup.
inline constexpr bool kDcheckIsOn = WAFP_DCHECK_IS_ON == 1;

#define WAFP_CHECK(condition)                                        \
  (condition) ? (void)0                                              \
              : ::wafp::util::internal::Voidify() &                  \
                    ::wafp::util::internal::CheckFailStream(         \
                        __FILE__, __LINE__, #condition)

#if WAFP_DCHECK_IS_ON
#define WAFP_DCHECK(condition) WAFP_CHECK(condition)
#else
#define WAFP_DCHECK(condition)                  \
  true ? (void)0                                \
       : ::wafp::util::internal::Voidify() &    \
             (::wafp::util::internal::NullStream() << !(condition))
#endif

}  // namespace wafp::util
