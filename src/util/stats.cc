#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace wafp::util {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double min_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double ln_factorial(std::size_t n) {
  // std::lgamma writes the process-global signgam, which is a data race
  // when the analysis layer computes AMI terms from pool threads; the
  // reentrant variant returns the same value without the global.
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(static_cast<double>(n) + 1.0, &sign);
#else
  return std::lgamma(static_cast<double>(n) + 1.0);
#endif
}

double log_factorial(std::size_t n) {
  return ln_factorial(n) / std::log(2.0);
}

}  // namespace wafp::util
