#include "util/stats.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <numeric>

#include "util/portable_math.h"

namespace wafp::util {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double min_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double ln_factorial(std::size_t n) {
  // Deterministic replacement for lgamma_r: host lgamma implementations
  // differ across libms, and AMI/EMI sums thousands of these terms — the
  // portable kernels make the analysis figures bit-identical on every
  // build host. Thread-safety is preserved (no signgam global): the small-n
  // table is a function-local static (one-time magic-static init), and the
  // Stirling branch touches no shared state.
  static const std::array<double, 64> small = [] {
    std::array<double, 64> t{};
    double acc = 0.0;
    t[0] = 0.0;
    for (std::size_t k = 1; k < t.size(); ++k) {
      acc += portable_log(static_cast<double>(k));
      t[k] = acc;
    }
    return t;
  }();
  if (n < small.size()) return small[n];
  // Stirling series: ln n! = n ln n - n + ln(2 pi n)/2
  //   + 1/(12n) - 1/(360n^3) + 1/(1260n^5) - 1/(1680n^7).
  // At n >= 64 the first dropped term is < 5e-20 absolute.
  const auto x = static_cast<double>(n);
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  const double series =
      inv * (1.0 / 12.0 +
             inv2 * (-1.0 / 360.0 +
                     inv2 * (1.0 / 1260.0 + inv2 * (-1.0 / 1680.0))));
  return x * portable_log(x) - x +
         0.5 * portable_log(2.0 * std::numbers::pi * x) + series;
}

double log_factorial(std::size_t n) {
  return ln_factorial(n) / std::numbers::ln2;
}

}  // namespace wafp::util
