// Minimal RIFF/WAVE writer and reader (PCM16 and IEEE-float32), so rendered
// fingerprint signals can be exported for inspection in any audio tool and
// reference buffers can be loaded in tests/examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wafp::util {

struct WavData {
  std::uint32_t sample_rate = 44100;
  /// One vector per channel, equal lengths.
  std::vector<std::vector<float>> channels;
};

/// Write 32-bit IEEE-float WAV (format 3). Returns false on I/O failure or
/// empty/ragged channel data.
bool write_wav_f32(const std::string& path, const WavData& data);

/// Write 16-bit PCM WAV (format 1), clamping samples to [-1, 1].
bool write_wav_pcm16(const std::string& path, const WavData& data);

/// Read a WAV file written by either writer (PCM16 or float32, any channel
/// count). Returns empty channels on failure.
[[nodiscard]] WavData read_wav(const std::string& path);

}  // namespace wafp::util
