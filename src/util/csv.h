// Minimal CSV reading/writing: the study harness persists raw fingerprint
// datasets the way the paper's Firebase backend stored submissions, so the
// analysis stages can be re-run without re-rendering audio.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace wafp::util {

/// Writes rows of cells, quoting any cell containing a delimiter, quote, or
/// newline (RFC 4180 style).
class CsvWriter {
 public:
  void add_row(std::vector<std::string> cells);

  /// Serialize all rows to one string.
  [[nodiscard]] std::string str() const;

  /// Write to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Streams rows straight to a file as they are written (same RFC 4180
/// quoting as CsvWriter) — constant memory, unlike CsvWriter, which buffers
/// every row. Used for large exports such as the ~440k-row study dataset.
class CsvStreamWriter {
 public:
  explicit CsvStreamWriter(const std::string& path);

  /// False if the file could not be opened or a write failed.
  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  void write_row(std::initializer_list<std::string_view> cells);

  /// Flush and report the final stream state.
  bool finish();

 private:
  std::ofstream out_;
};

/// Parse CSV text (RFC 4180 quoting; LF, CRLF, or lone-CR line endings all
/// terminate a row — CR and LF inside quoted cells are preserved verbatim).
/// An unterminated quoted cell at end-of-file (including a lone trailing
/// quote) yields the content accumulated so far rather than being dropped.
/// Guarantee: parse_csv(CsvWriter::str()) round-trips every cell exactly,
/// for arbitrary cell bytes (tests/util/csv_test.cc, RoundTrip*).
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    const std::string& text);

/// Read and parse a CSV file; empty result if the file cannot be read.
[[nodiscard]] std::vector<std::vector<std::string>> read_csv_file(
    const std::string& path);

}  // namespace wafp::util
