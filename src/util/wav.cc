#include "util/wav.h"

#include <algorithm>
#include <cstring>
#include <fstream>

namespace wafp::util {
namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

bool valid(const WavData& data) {
  if (data.channels.empty() || data.sample_rate == 0) return false;
  const std::size_t frames = data.channels.front().size();
  if (frames == 0) return false;
  for (const auto& channel : data.channels) {
    if (channel.size() != frames) return false;
  }
  return true;
}

bool write_wav(const std::string& path, const WavData& data,
               bool float_format) {
  if (!valid(data)) return false;
  const auto channels = static_cast<std::uint16_t>(data.channels.size());
  const std::size_t frames = data.channels.front().size();
  const std::uint16_t bytes_per_sample = float_format ? 4 : 2;
  const std::uint32_t data_bytes =
      static_cast<std::uint32_t>(frames) * channels * bytes_per_sample;

  std::string out;
  out.reserve(44 + data_bytes);
  out += "RIFF";
  put_u32(out, 36 + data_bytes);
  out += "WAVE";
  out += "fmt ";
  put_u32(out, 16);
  put_u16(out, float_format ? 3 : 1);  // IEEE float / PCM
  put_u16(out, channels);
  put_u32(out, data.sample_rate);
  put_u32(out, data.sample_rate * channels * bytes_per_sample);  // byte rate
  put_u16(out, static_cast<std::uint16_t>(channels * bytes_per_sample));
  put_u16(out, static_cast<std::uint16_t>(bytes_per_sample * 8));
  out += "data";
  put_u32(out, data_bytes);

  for (std::size_t frame = 0; frame < frames; ++frame) {
    for (std::uint16_t c = 0; c < channels; ++c) {
      const float sample = data.channels[c][frame];
      if (float_format) {
        char bytes[4];
        std::memcpy(bytes, &sample, 4);
        out.append(bytes, 4);
      } else {
        const float clamped = std::clamp(sample, -1.0f, 1.0f);
        const auto pcm = static_cast<std::int16_t>(clamped * 32767.0f);
        put_u16(out, static_cast<std::uint16_t>(pcm));
      }
    }
  }

  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  return static_cast<bool>(file);
}

std::uint32_t get_u32(const std::string& in, std::size_t offset) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(in[offset + i]);
  }
  return v;
}

std::uint16_t get_u16(const std::string& in, std::size_t offset) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint8_t>(in[offset]) |
      (static_cast<std::uint8_t>(in[offset + 1]) << 8));
}

}  // namespace

bool write_wav_f32(const std::string& path, const WavData& data) {
  return write_wav(path, data, /*float_format=*/true);
}

bool write_wav_pcm16(const std::string& path, const WavData& data) {
  return write_wav(path, data, /*float_format=*/false);
}

WavData read_wav(const std::string& path) {
  WavData result;
  std::ifstream file(path, std::ios::binary);
  if (!file) return result;
  std::string in((std::istreambuf_iterator<char>(file)),
                 std::istreambuf_iterator<char>());
  if (in.size() < 44 || in.compare(0, 4, "RIFF") != 0 ||
      in.compare(8, 4, "WAVE") != 0) {
    return result;
  }

  // Walk chunks for fmt and data.
  std::uint16_t format = 0, channels = 0, bits = 0;
  std::uint32_t sample_rate = 0;
  std::size_t data_offset = 0, data_size = 0;
  std::size_t cursor = 12;
  while (cursor + 8 <= in.size()) {
    const std::string id = in.substr(cursor, 4);
    const std::uint32_t size = get_u32(in, cursor + 4);
    if (id == "fmt " && cursor + 8 + 16 <= in.size()) {
      format = get_u16(in, cursor + 8);
      channels = get_u16(in, cursor + 10);
      sample_rate = get_u32(in, cursor + 12);
      bits = get_u16(in, cursor + 22);
    } else if (id == "data") {
      data_offset = cursor + 8;
      data_size = size;
    }
    cursor += 8 + size + (size % 2);
  }
  if (channels == 0 || data_offset == 0 ||
      data_offset + data_size > in.size()) {
    return result;
  }
  const std::size_t bytes_per_sample = bits / 8;
  if (!((format == 1 && bits == 16) || (format == 3 && bits == 32))) {
    return result;
  }
  const std::size_t frames = data_size / (channels * bytes_per_sample);

  result.sample_rate = sample_rate;
  result.channels.assign(channels, std::vector<float>(frames));
  std::size_t pos = data_offset;
  for (std::size_t frame = 0; frame < frames; ++frame) {
    for (std::uint16_t c = 0; c < channels; ++c) {
      if (format == 3) {
        float v = 0.0f;
        std::memcpy(&v, in.data() + pos, 4);
        result.channels[c][frame] = v;
      } else {
        const auto pcm = static_cast<std::int16_t>(get_u16(in, pos));
        result.channels[c][frame] = static_cast<float>(pcm) / 32767.0f;
      }
      pos += bytes_per_sample;
    }
  }
  return result;
}

}  // namespace wafp::util
