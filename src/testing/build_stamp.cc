#include "testing/build_stamp.h"

// The three WAFP_STAMP_* macros are injected by src/testing/CMakeLists.txt
// from the configured toolchain; the fallbacks only exist so stray direct
// compilations still build.
#ifndef WAFP_STAMP_COMPILER
#define WAFP_STAMP_COMPILER "unknown"
#endif
#ifndef WAFP_STAMP_BUILD_TYPE
#define WAFP_STAMP_BUILD_TYPE "unknown"
#endif
#ifndef WAFP_STAMP_SANITIZER
#define WAFP_STAMP_SANITIZER "none"
#endif

namespace wafp::testing {

BuildStamp BuildStamp::current() {
  BuildStamp stamp;
  stamp.compiler = WAFP_STAMP_COMPILER;
  stamp.build_type = WAFP_STAMP_BUILD_TYPE;
  stamp.sanitizer = WAFP_STAMP_SANITIZER;
  if (stamp.sanitizer.empty()) stamp.sanitizer = "none";
  return stamp;
}

}  // namespace wafp::testing
