// Brute-force reference oracles for the collation layer.
//
// Each reference recomputes its answer from scratch (BFS over an explicit
// edge list, O(V·E) and proudly so) on every query, sharing no code with
// the production structures it checks — DisjointSet-backed
// FingerprintGraph, the HDT DynamicConnectivity, and
// ExpiringFingerprintGraph. A divergence under a randomized op sequence is
// therefore a real bug in one of the two sides, never a shared one.
//
// The one deliberately shared artifact is the *canonical checksum spec*:
// RefBipartiteGraph::component_checksum() re-implements the documented
// FingerprintGraph::component_checksum() recipe (per-component
// fnv1a64("comp") seed; sorted users mixed with tag 0xA0; sorted digests
// with tag 0xB0 per byte; sorted component hashes chained from
// fnv1a64("partition")) so the two sides can be compared through a single
// 64-bit witness — the same witness the collation service uses for
// crash-recovery parity.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string_view>
#include <vector>

#include "collation/expiring_graph.h"
#include "service/types.h"
#include "util/hash.h"

namespace wafp::testing {

/// Deterministic synthetic elementary fingerprint for oracle tests:
/// sha256("efp-<id>"). Equal ids always collide; distinct ids never do.
[[nodiscard]] util::Digest test_digest(std::uint64_t id);

/// Reference bipartite user <-> fingerprint graph. Edges carry the newest
/// observation timestamp (mirroring ExpiringFingerprintGraph's refresh
/// rule); with expiry unused it is also a FingerprintGraph reference.
class RefBipartiteGraph {
 public:
  void add_observation(std::uint32_t user, const util::Digest& efp,
                       std::uint64_t timestamp = 0);

  /// Drop edges with timestamp strictly below `cutoff` (exclusive bound,
  /// matching ExpiringFingerprintGraph::expire_before).
  void expire_before(std::uint64_t cutoff);

  [[nodiscard]] std::size_t observation_count() const { return edges_.size(); }
  [[nodiscard]] std::size_t active_user_count() const;
  [[nodiscard]] std::size_t active_fingerprint_count() const;

  /// Connected components of the live graph, recomputed by BFS.
  [[nodiscard]] std::size_t cluster_count() const;
  [[nodiscard]] bool same_cluster(std::uint32_t user_a,
                                  std::uint32_t user_b) const;

  /// Canonical partition checksum over the live graph (see file comment).
  [[nodiscard]] std::uint64_t component_checksum() const;

  /// Live edges sorted by (timestamp, user, digest) — directly comparable
  /// to ExpiringFingerprintGraph::live_observations().
  [[nodiscard]] std::vector<collation::ExpiringObservation> live_observations()
      const;

 private:
  struct Components;  // BFS scratch, defined in the .cc

  [[nodiscard]] Components compute_components() const;

  // (user, digest) -> newest timestamp. Ordered map: iteration order is
  // deterministic, so every recompute walks edges identically.
  std::map<std::pair<std::uint32_t, util::Digest>, std::uint64_t> edges_;
};

/// Reference for DynamicConnectivity: an explicit undirected edge set over
/// a fixed vertex count, with BFS connectivity per query.
class RefConnectivity {
 public:
  explicit RefConnectivity(std::size_t n) : adjacency_(n) {}

  [[nodiscard]] std::size_t vertex_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }
  [[nodiscard]] std::size_t component_count() const;

  /// Same no-op semantics as the production structure: false on self-loops
  /// and duplicates (insert) or absent edges (delete).
  bool insert_edge(std::uint32_t u, std::uint32_t v);
  bool delete_edge(std::uint32_t u, std::uint32_t v);

  [[nodiscard]] bool has_edge(std::uint32_t u, std::uint32_t v) const;
  [[nodiscard]] bool connected(std::uint32_t u, std::uint32_t v) const;
  [[nodiscard]] std::size_t component_size(std::uint32_t u) const;

 private:
  /// BFS from `start`, returning the reached vertex set.
  [[nodiscard]] std::vector<std::uint32_t> reach(std::uint32_t start) const;

  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::size_t edge_count_ = 0;
};

/// One step of a randomized collation workload.
struct CollationOp {
  enum class Kind : std::uint8_t { kObserve, kExpire };

  Kind kind = Kind::kObserve;
  std::uint32_t user = 0;      // kObserve
  std::uint64_t efp_id = 0;    // kObserve: argument to test_digest()
  std::uint64_t timestamp = 0; // kObserve: stamp; kExpire: cutoff
};

/// Deterministic op sequence for `seed`: observations over small user and
/// fingerprint pools (small enough that components merge constantly, the
/// regime the paper's collation step lives in), timestamps nondecreasing,
/// with occasional re-observations of known pairs. When `with_expiry` is
/// set, ~8% of ops are sliding-window expire_before cutoffs.
[[nodiscard]] std::vector<CollationOp> make_op_sequence(std::uint64_t seed,
                                                        std::size_t length,
                                                        bool with_expiry);

/// Deterministic service-level submission trace: make_op_sequence (no
/// expiry) rendered as RawSubmissions — vector ids cycling through the 7
/// audio vectors, op timestamps, test_digest hex. Shared by every engine
/// oracle suite so single-shard and sharded runs replay byte-identical
/// traces.
[[nodiscard]] std::vector<service::RawSubmission> make_submission_trace(
    std::uint64_t seed, std::size_t length);

/// Parse exactly the digest the service's validator parses from `hex`
/// (64 lowercase hex chars), so oracle graphs see the service's bytes.
[[nodiscard]] util::Digest digest_from_hex(std::string_view hex);

/// Brute-force partition checksum of a trace after the explicit network
/// drop model (drop every `drop_every`th submission, 1-based ordinals;
/// 0 = lossless). The oracle for CollationEngine::component_checksum().
[[nodiscard]] std::uint64_t brute_force_submission_checksum(
    std::span<const service::RawSubmission> trace,
    std::uint64_t drop_every = 0);

}  // namespace wafp::testing
