#include "testing/pcm_digest.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace wafp::testing {

namespace {

/// splitmix64-style avalanche; full 64-bit mixing per lane.
[[nodiscard]] std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

[[nodiscard]] std::uint32_t sample_bits(float v) {
  return std::bit_cast<std::uint32_t>(v);
}

}  // namespace

std::uint64_t rolling_digest64(std::span<const float> samples,
                               std::uint64_t seed) {
  std::uint64_t h = mix64(seed ^ (samples.size() * 0x9E3779B97F4A7C15ULL));
  for (const float v : samples) {
    h = mix64(h ^ sample_bits(v));
  }
  return h;
}

PcmFingerprint fingerprint_pcm(std::span<const float> samples) {
  PcmFingerprint fp;
  fp.count = samples.size();
  fp.rolling = rolling_digest64(samples);
  const std::size_t edge =
      std::min<std::size_t>(PcmFingerprint::kEdgeSamples, samples.size());
  fp.head.reserve(edge);
  fp.tail.reserve(edge);
  for (std::size_t i = 0; i < edge; ++i) {
    fp.head.push_back(sample_bits(samples[i]));
    fp.tail.push_back(sample_bits(samples[samples.size() - edge + i]));
  }
  for (std::size_t start = 0; start < samples.size();
       start += PcmFingerprint::kBlockSamples) {
    const std::size_t len = std::min<std::size_t>(
        PcmFingerprint::kBlockSamples, samples.size() - start);
    fp.blocks.push_back(rolling_digest64(samples.subspan(start, len)));
  }
  return fp;
}

std::optional<PcmDivergence> diverges_from(const PcmFingerprint& golden,
                                           std::span<const float> live) {
  const PcmFingerprint fresh = fingerprint_pcm(live);
  if (fresh == golden) return std::nullopt;

  PcmDivergence d;
  char buf[160];
  if (fresh.count != golden.count) {
    d.sample_index = std::min(fresh.count, golden.count);
    d.exact = true;
    std::snprintf(buf, sizeof(buf),
                  "stream length changed: golden %llu samples, live %llu",
                  static_cast<unsigned long long>(golden.count),
                  static_cast<unsigned long long>(fresh.count));
    d.detail = buf;
    return d;
  }
  // Exact index inside the head window.
  for (std::size_t i = 0; i < golden.head.size(); ++i) {
    if (fresh.head[i] != golden.head[i]) {
      d.sample_index = i;
      d.exact = true;
      std::snprintf(buf, sizeof(buf),
                    "first diverging sample index %zu (golden bits 0x%08x, "
                    "live bits 0x%08x)",
                    i, golden.head[i], fresh.head[i]);
      d.detail = buf;
      return d;
    }
  }
  // Block-resolved index in the interior. A divergence in the *final*
  // block overlaps the tail window, so refine it to a sample-exact index
  // there when the tail has one.
  const std::size_t nblocks = std::min(golden.blocks.size(),
                                       fresh.blocks.size());
  for (std::size_t b = 0; b < nblocks; ++b) {
    if (fresh.blocks[b] == golden.blocks[b]) continue;
    if (b + 1 == nblocks) {
      for (std::size_t i = 0; i < golden.tail.size(); ++i) {
        if (fresh.tail[i] != golden.tail[i]) {
          d.sample_index = golden.count - golden.tail.size() + i;
          d.exact = true;
          std::snprintf(buf, sizeof(buf),
                        "first diverging sample index %llu (golden bits "
                        "0x%08x, live bits 0x%08x)",
                        static_cast<unsigned long long>(d.sample_index),
                        golden.tail[i], fresh.tail[i]);
          d.detail = buf;
          return d;
        }
      }
    }
    d.sample_index = b * PcmFingerprint::kBlockSamples;
    d.exact = false;
    std::snprintf(
        buf, sizeof(buf),
        "first diverging sample in block %zu, samples [%llu, %llu)", b,
        static_cast<unsigned long long>(d.sample_index),
        static_cast<unsigned long long>(
            d.sample_index + PcmFingerprint::kBlockSamples));
    d.detail = buf;
    return d;
  }
  d.sample_index = 0;
  d.exact = false;
  d.detail = "rolling digest differs but no window localized it";
  return d;
}

}  // namespace wafp::testing
