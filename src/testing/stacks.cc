#include "testing/stacks.h"

#include <array>

#include "util/check.h"

namespace wafp::testing {

namespace {

/// Build the four stacks once. Each models a plausible browser build family
/// and, between them, they cover every knob class an audio render can see:
/// math kernels, FFT algorithm + twiddle scheme, denormal policy, FMA
/// contraction, compressor tuning, and analyser tuning.
std::array<GoldenStack, 4> make_stacks() {
  std::array<GoldenStack, 4> stacks;

  {
    // A mainstream Blink-flavoured build: fdlibm math, textbook radix-2
    // FFT, FTZ render thread (the typical x86 audio-thread setting).
    GoldenStack& s = stacks[0];
    s.name = "blink-fdlibm-radix2-ftz";
    s.stack.math = dsp::MathVariant::kFdlibm;
    s.stack.fft = dsp::FftVariant::kRadix2;
    s.stack.twiddle = dsp::TwiddleMode::kDirect;
    s.stack.denormal = dsp::DenormalPolicy::kFlushToZero;
    s.stack.fma_contraction = false;
  }
  {
    // A Gecko-flavoured build: independent compressor tuning constants,
    // split-radix FFT with recurrence twiddles, gradual underflow.
    GoldenStack& s = stacks[1];
    s.name = "gecko-fastpoly-splitradix";
    s.stack.math = dsp::MathVariant::kFastPoly;
    s.stack.fft = dsp::FftVariant::kSplitRadix;
    s.stack.twiddle = dsp::TwiddleMode::kRecurrence;
    s.stack.denormal = dsp::DenormalPolicy::kPreserve;
    s.stack.fma_contraction = false;
    s.stack.compressor.pre_delay_seconds = 0.0055;
    s.stack.compressor.metering_release_seconds = 0.30;
    s.stack.compressor.release_zone2 = 1.15;
    s.stack.compressor.makeup_exponent = 0.58;
    s.stack.analyser.smoothing = 0.78;
  }
  {
    // An ARM-ish mobile build: table-driven math, radix-4 FFT, FMA
    // contraction on (wide NEON MACs), coarser knee solver.
    GoldenStack& s = stacks[2];
    s.name = "mobile-table-radix4-fma";
    s.stack.math = dsp::MathVariant::kTable;
    s.stack.fft = dsp::FftVariant::kRadix4;
    s.stack.twiddle = dsp::TwiddleMode::kDirect;
    s.stack.denormal = dsp::DenormalPolicy::kPreserve;
    s.stack.fma_contraction = true;
    s.stack.compressor.knee_solver_tolerance = 1e-6;
  }
  {
    // A legacy long-tail build: float-precision vectorized math kernels,
    // Bluestein FFT, non-default Blackman window constant.
    GoldenStack& s = stacks[3];
    s.name = "legacy-vectorized-bluestein";
    s.stack.math = dsp::MathVariant::kVectorized;
    s.stack.fft = dsp::FftVariant::kBluestein;
    s.stack.twiddle = dsp::TwiddleMode::kRecurrence;
    s.stack.denormal = dsp::DenormalPolicy::kFlushToZero;
    s.stack.fma_contraction = false;
    s.stack.analyser.blackman_alpha = 0.161;
    s.stack.analyser.smoothing = 0.82;
    s.stack.compressor.release_zone4 = 3.45;
  }

  for (const GoldenStack& s : stacks) {
    WAFP_CHECK(s.stack.math != dsp::MathVariant::kPrecise)
        << "golden stack '" << std::string(s.name)
        << "' uses host libm (kPrecise); goldens must route all reference "
           "math through src/dsp/math_library to stay portable";
  }
  return stacks;
}

}  // namespace

std::span<const GoldenStack> golden_stacks() {
  static const std::array<GoldenStack, 4> stacks = make_stacks();
  return stacks;
}

const GoldenStack* find_golden_stack(std::string_view name) {
  for (const GoldenStack& s : golden_stacks()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

platform::PlatformProfile profile_for(const platform::AudioStack& stack) {
  platform::PlatformProfile profile;
  profile.audio = stack;
  return profile;
}

}  // namespace wafp::testing
