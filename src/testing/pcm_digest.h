// Sample-stream digests for conformance testing.
//
// A fingerprint digest (SHA-256) answers "did anything change?" but not
// *where*. The conformance suite therefore fingerprints the captured sample
// stream at three granularities: the raw bit patterns of the first and last
// 64 samples, a rolling 64-bit digest of the whole stream, and one rolling
// digest per fixed-size block. Comparing a live stream against a committed
// PcmFingerprint localizes a DSP regression to an exact sample index inside
// the head/tail windows and to a block-sized range elsewhere — without
// committing megabytes of raw PCM.
//
// All digests hash IEEE-754 bit patterns (never float values), so they are
// exact: a one-ULP change in any sample changes the fingerprint.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace wafp::testing {

/// Seeded xxhash-style rolling digest over float bit patterns: multiply /
/// xor-shift avalanche per lane, deterministic on every platform. Not
/// cryptographic — collisions only need to be unlikely, regressions are
/// adversarial to DSP code, not to the hash.
[[nodiscard]] std::uint64_t rolling_digest64(std::span<const float> samples,
                                             std::uint64_t seed = 0x9E3779B9u);

/// Multi-granularity digest of one captured sample stream.
struct PcmFingerprint {
  /// Samples per `blocks` entry.
  static constexpr std::size_t kBlockSamples = 2048;
  /// Raw samples kept verbatim at each end of the stream.
  static constexpr std::size_t kEdgeSamples = 64;

  std::uint64_t count = 0;    // total samples in the stream
  std::uint64_t rolling = 0;  // rolling_digest64 over the whole stream
  std::vector<std::uint32_t> head;    // bit patterns of first <=64 samples
  std::vector<std::uint32_t> tail;    // bit patterns of last <=64 samples
  std::vector<std::uint64_t> blocks;  // rolling digest per 2048-sample block

  friend bool operator==(const PcmFingerprint&,
                         const PcmFingerprint&) = default;
};

[[nodiscard]] PcmFingerprint fingerprint_pcm(std::span<const float> samples);

/// Where a live stream first departs from a committed fingerprint.
struct PcmDivergence {
  /// First diverging sample index. Exact inside the head/tail windows
  /// (when the final block diverges, the tail refines it to the first
  /// mismatch the tail window can see); elsewhere the start of the first
  /// diverging block (`exact` is false).
  std::uint64_t sample_index = 0;
  bool exact = false;
  std::string detail;  // human-readable one-liner for test failures
};

/// Compare a live stream against a committed fingerprint. Returns nullopt
/// when they agree bit-for-bit; otherwise the most precise localization the
/// fingerprint supports. The comparison is exact by construction — there is
/// no tolerance parameter on purpose (see testing/compare.h).
[[nodiscard]] std::optional<PcmDivergence> diverges_from(
    const PcmFingerprint& golden, std::span<const float> live);

}  // namespace wafp::testing
