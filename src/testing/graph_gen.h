// Seeded structured Web Audio graph generator.
//
// Promoted from the ad-hoc generator in tests/webaudio/engine_fuzz_test.cc
// so every suite (engine fuzz, conformance fuzz, corpus replay) draws from
// the same distribution. The generator is random-but-valid: graphs are
// acyclic by construction (edges only point from earlier-created nodes to
// later ones), ChannelMergerNode inputs are always mono, and
// ChannelSplitterNode always selects a channel its source produces — so
// every generated graph passes the connect-time validator and renders.
//
// Determinism contract: the whole graph (topology, node parameters,
// context shape) is a pure function of (seed, config). Committed corpus
// digests additionally fix config = portable_engine_config(), which routes
// all math through src/dsp/math_library (never host libm).
#pragma once

#include <cstdint>

#include "webaudio/audio_buffer.h"
#include "webaudio/engine_config.h"

namespace wafp::testing {

/// Build the graph for `seed` and render it on `config`. Throws only on
/// engine contract violations — a throw is itself a fuzz finding.
[[nodiscard]] webaudio::AudioBuffer render_seeded_graph(
    std::uint64_t seed, webaudio::EngineConfig config);

/// Fixed portable render platform for committed digests: fdlibm math,
/// radix-2 FFT, flush-to-zero, no jitter. Bit-identical on every
/// conforming host/toolchain (unlike EngineConfig::reference(), which
/// links the host libm).
[[nodiscard]] webaudio::EngineConfig portable_engine_config();

/// rolling_digest64 over all channels of the `seed` render on the portable
/// config — the quantity recorded in tests/conformance/corpus entries.
[[nodiscard]] std::uint64_t seeded_graph_digest(std::uint64_t seed);

}  // namespace wafp::testing
